module explink

go 1.22
