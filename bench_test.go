// Package explink's root benchmark harness: one benchmark per table and
// figure of the paper (regenerating its rows/series through the exp drivers)
// plus micro-benchmarks for the hot paths of the optimizer and the
// simulator. Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks use the experiment drivers in quick mode so a
// full -bench pass stays in the minutes range; `expbench` runs them at full
// fidelity and prints the tables.
package explink

import (
	"context"
	"testing"

	"explink/internal/anneal"
	"explink/internal/bnb"
	"explink/internal/core"
	"explink/internal/dnc"
	"explink/internal/exp"
	"explink/internal/model"
	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// ---- Per-figure/table harnesses (Section 5 of the paper) ----

func BenchmarkFig5LatencyVsC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ParsecLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7RuntimeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SyntheticTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig8(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9PowerPerBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10StaticBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11BandwidthImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12VsOptimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2WorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table2(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppSpecific(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AppSpec(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations and extensions ----

func BenchmarkAblationGenerator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationGenerator(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationRouting(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationBypass(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBottleneckAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Bottleneck(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Robustness(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.LoadLatency(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroarch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Microarch(exp.QuickOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Optimizer micro-benchmarks ----

func BenchmarkRowEval8(b *testing.B) {
	row := topo.HFBRow(8)
	p := model.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.RowMean(row, p)
	}
}

func BenchmarkRowEval16(b *testing.B) {
	row := topo.HFBRow(16)
	p := model.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.RowMean(row, p)
	}
}

func BenchmarkAnnealFullSchedule8x8C4(b *testing.B) {
	p := model.DefaultParams()
	obj := func(r topo.Row) float64 { return model.RowMean(r, p) }
	sch := anneal.DefaultSchedule()
	for i := 0; i < b.N; i++ {
		m := topo.NewConnMatrix(8, 4)
		anneal.Minimize(context.Background(), m, obj, sch, stats.NewRNG(uint64(i)), false)
	}
}

func BenchmarkDnCInitial16(b *testing.B) {
	p := model.DefaultParams()
	for i := 0; i < b.N; i++ {
		dnc.Initial(16, 4, p)
	}
}

func BenchmarkBnBOptimalP84(b *testing.B) {
	p := model.DefaultParams()
	for i := 0; i < b.N; i++ {
		bnb.OptimalRow(8, 4, p)
	}
}

func BenchmarkOptimize8x8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.NewSolver(model.DefaultConfig(8))
		if _, _, err := s.Optimize(context.Background(), core.DCSA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimize8x8Seq pins Workers to 1; the delta against
// BenchmarkOptimize8x8 (which uses GOMAXPROCS workers) is the parallel C-sweep
// speedup. Both produce bit-identical placements.
func BenchmarkOptimize8x8Seq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.NewSolver(model.DefaultConfig(8))
		s.Workers = 1
		if _, _, err := s.Optimize(context.Background(), core.DCSA); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Simulator micro-benchmarks ----

func benchSim(b *testing.B, t topo.Topology, c int, rate float64) {
	b.Helper()
	cfg := sim.NewConfig(t, c, traffic.UniformRandom(t.N()), rate)
	cfg.Warmup, cfg.Measure, cfg.Drain = 500, 3000, 10000
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

func BenchmarkSimMesh8x8(b *testing.B)   { benchSim(b, topo.Mesh(8), 1, 0.02) }
func BenchmarkSimHFB8x8(b *testing.B)    { benchSim(b, topo.HFB(8), 4, 0.02) }
func BenchmarkSimMesh16x16(b *testing.B) { benchSim(b, topo.Mesh(16), 1, 0.01) }

func BenchmarkSimSaturated8x8(b *testing.B) {
	cfg := sim.NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.4)
	cfg.Warmup, cfg.Measure, cfg.Drain = 500, 2000, 1000
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
