// Command expbench regenerates the paper's evaluation: every figure and
// table of Section 5, printed as plain-text tables whose rows/series match
// what the paper plots.
//
// Usage:
//
//	expbench                 # run everything at full fidelity
//	expbench -exp fig5       # one experiment (fig5..fig12, table2, appspec)
//	expbench -quick          # reduced budgets (seconds instead of minutes)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"explink/internal/exp"
)

type runner struct {
	name string
	desc string
	run  func(exp.Options) (string, error)
}

func runners() []runner {
	return []runner{
		{"fig5", "latency vs link limit C (Mesh, HFB, OnlySA, D&C_SA, L_D, L_S)", func(o exp.Options) (string, error) {
			r, err := exp.Fig5(o)
			if err != nil {
				return "", err
			}
			out := r.Render()
			for _, h := range r.Headlines() {
				out += fmt.Sprintf("headline %dx%d: %.1f%% vs Mesh, %.1f%% vs HFB, OnlySA +%.1f%%\n",
					h.N, h.N, h.VsMesh, h.VsHFB, h.OnlySAOver)
			}
			return out, nil
		}},
		{"fig6", "per-PARSEC-benchmark latency on 8x8 (simulated)", func(o exp.Options) (string, error) {
			r, err := exp.Fig6(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig7", "placement quality vs normalized runtime", func(o exp.Options) (string, error) {
			r, err := exp.Fig7(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig8", "synthetic traffic latency and throughput (simulated)", func(o exp.Options) (string, error) {
			r, err := exp.Fig8(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig9", "router power per benchmark (simulated + power model)", func(o exp.Options) (string, error) {
			r, err := exp.Fig9(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig10", "router static power breakdown", func(o exp.Options) (string, error) {
			r, err := exp.Fig10(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig11", "impact of bisection bandwidth (2K vs 8K Gb/s)", func(o exp.Options) (string, error) {
			r, err := exp.Fig11(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig12", "D&C_SA vs exhaustive optimal", func(o exp.Options) (string, error) {
			r, err := exp.Fig12(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"table2", "maximum zero-load packet latency", func(o exp.Options) (string, error) {
			r, err := exp.Table2(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"appspec", "application-specific re-optimization (Section 5.6.4)", func(o exp.Options) (string, error) {
			r, err := exp.AppSpec(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"abgen", "ablation: connection-matrix vs naive SA candidate generator (Section 4.4.2)", func(o exp.Options) (string, error) {
			r, err := exp.AblationGenerator(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"abroute", "ablation: XY vs O1TURN routing (Section 4.2)", func(o exp.Options) (string, error) {
			r, err := exp.AblationRouting(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"abbypass", "ablation: physical express links vs pipeline bypass (Section 2.1)", func(o exp.Options) (string, error) {
			r, err := exp.AblationBypass(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"bottleneck", "channel-load analysis behind Fig. 8b's throughput gap (Section 5.4)", func(o exp.Options) (string, error) {
			r, err := exp.Bottleneck(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"robust", "extension: latency degradation under express-link failures", func(o exp.Options) (string, error) {
			r, err := exp.Robustness(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"loadlat", "load-latency curves connecting Fig. 8a and Fig. 8b", func(o exp.Options) (string, error) {
			r, err := exp.LoadLatency(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"microarch", "router sensitivity: VC count (Section 2.2) and buffer budget (Section 4.6)", func(o exp.Options) (string, error) {
			r, err := exp.Microarch(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
}

func main() {
	var (
		which   = flag.String("exp", "all", "experiment to run: all, or one of fig5..fig12, table2, appspec, ...")
		quick   = flag.Bool("quick", false, "reduced budgets for a fast smoke run")
		seed    = flag.Uint64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		outDir  = flag.String("out", "", "also write each experiment's output to <dir>/<name>.txt")
		timeout = flag.Duration("timeout", 0, "abort the whole suite after this wall-clock duration (0 = no limit)")
		audit   = flag.Bool("audit", false, "run every simulation with the per-cycle invariant auditor enabled")
	)
	flag.Parse()

	rs := runners()
	if *list {
		for _, r := range rs {
			fmt.Printf("%-8s %s\n", r.name, r.desc)
		}
		return
	}

	opts := exp.DefaultOptions()
	opts.Quick = *quick
	opts.Seed = *seed
	opts.Audit = *audit
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Ctx = ctx
	}

	ran := 0
	for _, r := range rs {
		if *which != "all" && !strings.EqualFold(*which, r.name) {
			continue
		}
		ran++
		start := time.Now()
		out, err := r.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expbench %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("### %s — %s\n\n%s\n(%.1fs)\n\n", r.name, r.desc, out, time.Since(start).Seconds())
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, r.name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "expbench: unknown experiment %q (use -list)\n", *which)
		os.Exit(1)
	}
}
