// Command expbench regenerates the paper's evaluation: every figure and
// table of Section 5, printed as plain-text tables whose rows/series match
// what the paper plots. Experiments come from the declarative registry in
// internal/exp; every placement solve is routed through a shared
// content-addressed cache, so a suite run computes each distinct placement
// exactly once and a warm -cache-dir run skips annealing entirely with
// bit-identical output.
//
// Usage:
//
//	expbench                        # run everything at full fidelity
//	expbench -exp fig5,fig11        # a comma-separated subset (see -list)
//	expbench -quick                 # reduced budgets (seconds instead of minutes)
//	expbench -json                  # structured JSON results instead of text
//	expbench -cache-dir .explink    # persist placement solves across runs
//	expbench -debug-addr :6060      # live /metrics, /debug/vars and pprof
//	expbench -progress run.jsonl    # JSON-lines progress events
//
// Progress, timings and cache statistics go to stderr; stdout carries only
// the results, so runs with identical inputs produce byte-identical stdout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"

	"explink/internal/anneal"
	"explink/internal/api"
	"explink/internal/core"
	"explink/internal/exp"
	"explink/internal/obs"
	"explink/internal/runctl"
	"explink/internal/sim"
	"explink/internal/stats"
)

// selectExperiments resolves the -exp argument ("all" or a comma-separated
// name list) through the shared service-layer selector, so the flag and the
// daemon's /v1/exp endpoint accept exactly the same names.
func selectExperiments(arg string) ([]exp.Experiment, error) {
	return api.SelectExperiments(strings.Split(arg, ","))
}

// validateParallel rejects a non-positive -parallel at parse time with a
// config-typed error; the silent upper clamp to GOMAXPROCS stays separate
// because over-asking is harmless while zero workers would deadlock.
func validateParallel(p int) error {
	if p < 1 {
		return fmt.Errorf("-parallel %d must be at least 1: %w", p, runctl.ErrConfig)
	}
	return nil
}

// progressWriter opens the -progress destination: "-" or "stderr" select
// stderr, anything else is created (truncated) as a file. The returned closer
// is a no-op for stderr.
func progressWriter(dest string) (io.Writer, func() error, error) {
	switch dest {
	case "-", "stderr":
		return os.Stderr, func() error { return nil }, nil
	default:
		f, err := os.Create(dest)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		which    = flag.String("exp", "all", "experiments to run: all, or a comma-separated list (see -list)")
		quick    = flag.Bool("quick", false, "reduced budgets for a fast smoke run")
		seed     = flag.Uint64("seed", 1, "random seed")
		replicas = flag.Int("replicas", 1, "seed replicas per simulated operating point (batched engine; 1 = single seed)")
		list     = flag.Bool("list", false, "list experiments and exit")
		outDir   = flag.String("out", "", "also write each experiment's output to <dir>/<name>.txt (and .json with -json)")
		timeout  = flag.Duration("timeout", 0, "abort the whole suite after this wall-clock duration (0 = no limit)")
		audit    = flag.Bool("audit", false, "run every simulation with the per-cycle invariant auditor enabled")
		jsonOut  = flag.Bool("json", false, "emit structured JSON results (a JSON array on stdout instead of text)")
		cacheDir = flag.String("cache-dir", "", "persist placement solves under this directory; a warm run re-solves nothing")
		parallel = flag.Int("parallel", 1, "run up to this many experiments concurrently (results still print in order)")
		debug    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
		progress = flag.String("progress", "", "write JSON-lines progress events to this file (\"-\" for stderr)")
	)
	flag.Parse()

	if err := validateParallel(*parallel); err != nil {
		fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
		return 1
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-11s %-22s %s\n", e.Name, e.Section, e.Desc)
		}
		return 0
	}

	sel, err := selectExperiments(*which)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
		return 1
	}

	// Ctrl-C / SIGTERM cancels the run context: in-flight solves and
	// simulations fail with runctl.ErrCancelled, finished experiments still
	// print, and the exit code is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	store, err := core.NewPlacementStore(*cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
		return 1
	}

	if *debug != "" {
		reg := obs.NewRegistry()
		sim.EnableMetrics(reg)
		anneal.EnableMetrics(reg)
		core.EnableMetrics(reg)
		exp.EnableMetrics(reg)
		store.Register(reg)
		srv, err := obs.ServeDebug(*debug, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "expbench: debug server listening on http://%s\n", srv.Addr)
	}

	var events *obs.EventWriter
	if *progress != "" {
		w, closeFn, err := progressWriter(*progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
			return 1
		}
		defer closeFn()
		events = obs.NewEventWriter(w)
	}

	opts := exp.DefaultOptions()
	opts.Quick = *quick
	opts.Seed = *seed
	opts.Audit = *audit
	opts.Store = store
	opts.Replicas = *replicas

	if *parallel > runtime.GOMAXPROCS(0) {
		*parallel = runtime.GOMAXPROCS(0)
	}
	results := exp.RunAll(ctx, sel, opts, *parallel, events)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
			return 1
		}
	}

	failed := 0
	var reports []*stats.Report
	for _, oc := range results {
		if oc.Err != nil {
			failed++
			msg := "expbench %s: %v\n"
			if errors.Is(oc.Err, runctl.ErrCancelled) {
				msg = "expbench %s: interrupted: %v\n"
			}
			fmt.Fprintf(os.Stderr, msg, oc.Exp.Name, oc.Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "expbench: %s finished in %.1fs\n", oc.Exp.Name, oc.Elapsed.Seconds())
		reports = append(reports, oc.Rep)
		text := oc.Rep.Render()
		if !*jsonOut {
			fmt.Printf("### %s — %s\n\n%s\n", oc.Exp.Name, oc.Exp.Desc, text)
		}
		if *outDir != "" {
			if err := os.WriteFile(filepath.Join(*outDir, oc.Exp.Name+".txt"), []byte(text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
				return 1
			}
			if *jsonOut {
				buf, err := oc.Rep.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
					return 1
				}
				if err := os.WriteFile(filepath.Join(*outDir, oc.Exp.Name+".json"), buf, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
					return 1
				}
			}
		}
	}
	if *jsonOut {
		buf, err := stats.ReportsJSON(reports)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expbench: %v\n", err)
			return 1
		}
		os.Stdout.Write(buf)
	}

	fmt.Fprintf(os.Stderr, "expbench: placement cache: %s\n", store.Counters())
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "expbench: %d of %d experiments failed\n", failed, len(results))
		return 1
	}
	return 0
}
