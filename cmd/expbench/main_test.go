package main

import (
	"strings"
	"testing"

	"explink/internal/exp"
)

func TestRunnersRegistry(t *testing.T) {
	rs := runners()
	want := []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "table2", "appspec", "abgen", "abroute", "abbypass",
		"bottleneck", "robust", "loadlat", "microarch"}
	if len(rs) != len(want) {
		t.Fatalf("got %d runners, want %d", len(rs), len(want))
	}
	for i, r := range rs {
		if r.name != want[i] {
			t.Fatalf("runner %d is %q, want %q", i, r.name, want[i])
		}
		if r.desc == "" || r.run == nil {
			t.Fatalf("runner %q incomplete", r.name)
		}
	}
}

// The cheap analytic experiments run end to end through the registry; the
// simulator-heavy ones are covered by internal/exp's own tests.
func TestRunnersExecuteQuick(t *testing.T) {
	opts := exp.QuickOptions()
	for _, r := range runners() {
		switch r.name {
		case "fig5", "fig11", "fig12", "table2", "abgen":
			out, err := r.run(opts)
			if err != nil {
				t.Fatalf("%s: %v", r.name, err)
			}
			if !strings.Contains(out, "==") || len(out) < 100 {
				t.Fatalf("%s: suspicious output %q", r.name, out[:min(len(out), 80)])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
