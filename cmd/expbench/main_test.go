package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"explink/internal/core"
	"explink/internal/exp"
	"explink/internal/runctl"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(exp.All()) {
		t.Fatalf("all selected %d of %d", len(all), len(exp.All()))
	}

	sel, err := selectExperiments("fig11, FIG5")
	if err != nil {
		t.Fatal(err)
	}
	// Registry order wins over argument order.
	if len(sel) != 2 || sel[0].Name != "fig5" || sel[1].Name != "fig11" {
		t.Fatalf("selection = %v", sel)
	}

	if _, err := selectExperiments("fig5,nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := selectExperiments(" , "); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// The scheduler keeps results in registry order, shares one placement store
// across experiments, and reports per-experiment errors without dropping the
// successes.
func TestRunAllOrderAndCache(t *testing.T) {
	sel, err := selectExperiments("fig5,table2")
	if err != nil {
		t.Fatal(err)
	}
	store, err := core.NewPlacementStore("")
	if err != nil {
		t.Fatal(err)
	}
	opts := exp.QuickOptions()
	opts.Store = store
	results := runAll(context.Background(), sel, opts, 2)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, oc := range results {
		if oc.err != nil {
			t.Fatalf("%s: %v", oc.exp.Name, oc.err)
		}
		if oc.exp.Name != sel[i].Name || oc.rep.Name != sel[i].Name {
			t.Fatalf("slot %d holds %s/%s, want %s", i, oc.exp.Name, oc.rep.Name, sel[i].Name)
		}
		if !strings.Contains(oc.rep.Render(), "==") {
			t.Fatalf("%s: suspicious render", oc.exp.Name)
		}
	}
	c := store.Counters()
	if c.Solves == 0 {
		t.Fatal("no solves recorded")
	}
	// fig5 and table2 sweep the same link limits on the same sizes: the
	// second experiment must reuse the first one's solves.
	if c.Hits == 0 {
		t.Fatalf("experiments did not share the cache: %v", c)
	}
}

func TestRunAllCancelled(t *testing.T) {
	sel, err := selectExperiments("fig5")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := exp.QuickOptions()
	opts.Ctx = ctx
	results := runAll(ctx, sel, opts, 1)
	if results[0].err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(results[0].err, runctl.ErrCancelled) {
		t.Fatalf("error not in the cancellation taxonomy: %v", results[0].err)
	}
}
