package main

import (
	"errors"
	"testing"

	"explink/internal/exp"
	"explink/internal/runctl"
)

func TestValidateParallel(t *testing.T) {
	for _, p := range []int{1, 2, 1024} {
		if err := validateParallel(p); err != nil {
			t.Fatalf("-parallel %d rejected: %v", p, err)
		}
	}
	for _, p := range []int{0, -1, -100} {
		err := validateParallel(p)
		if err == nil {
			t.Fatalf("-parallel %d accepted", p)
		}
		if !errors.Is(err, runctl.ErrConfig) {
			t.Fatalf("-parallel %d: error %v is not ErrConfig-typed", p, err)
		}
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(exp.All()) {
		t.Fatalf("all selected %d of %d", len(all), len(exp.All()))
	}

	sel, err := selectExperiments("fig11, FIG5")
	if err != nil {
		t.Fatal(err)
	}
	// Registry order wins over argument order.
	if len(sel) != 2 || sel[0].Name != "fig5" || sel[1].Name != "fig11" {
		t.Fatalf("selection = %v", sel)
	}

	if _, err := selectExperiments("fig5,nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := selectExperiments(" , "); err == nil {
		t.Fatal("empty selection accepted")
	}
}
