// Command explinkd is the placement-as-a-service daemon: the solver,
// evaluator, cycle simulator and experiment suite of the repo served from
// one long-running process over HTTP/JSON (default) or JSON-lines on
// stdin/stdout (-stdio, the external-timing-engine protocol).
//
// Hot placement queries answer from the shared placement store; concurrent
// cold requests for the same placement are single-flighted into one solve.
// SIGINT/SIGTERM drains gracefully: the daemon stops admitting (new work
// gets 503 "draining"), cancels in-flight runs so they return partial
// results with Truncated reasons, waits up to -drain-timeout, and exits 0.
//
//	explinkd -addr 127.0.0.1:8351 -cache-dir /tmp/placements
//	curl -s localhost:8351/v1/solve -d '{"n":8,"c":5}'
//	echo '{"id":1,"op":"eval","req":{"n":8,"c":2,"express":[{"s":0,"e":7}]}}' | explinkd -stdio
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"explink/internal/core"
	"explink/internal/exp"
	"explink/internal/obs"
	"explink/internal/serve"
	"explink/internal/sim"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8351", "HTTP listen address")
		stdio        = flag.Bool("stdio", false, "serve JSON-lines on stdin/stdout instead of HTTP")
		cacheDir     = flag.String("cache-dir", "", "persist placement solves under this directory (empty = memory-only)")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently running requests (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("queue", 64, "max requests waiting for a slot before 503 (negative = no queue)")
		rate         = flag.Float64("ratelimit", 0, "per-client requests per second (0 = unlimited)")
		burst        = flag.Int("burst", 8, "per-client burst allowance for -ratelimit")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		debugAddr    = flag.String("debug-addr", "", "also serve /metrics + pprof on this address")
		progress     = flag.Bool("progress", false, "emit JSON-lines lifecycle events on stderr")
	)
	flag.Parse()
	if err := run(*addr, *stdio, *cacheDir, *maxInflight, *maxQueue, *rate, *burst, *drainTimeout, *debugAddr, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "explinkd:", err)
		os.Exit(1)
	}
}

func run(addr string, stdio bool, cacheDir string, maxInflight, maxQueue int, rate float64, burst int, drainTimeout time.Duration, debugAddr string, progress bool) error {
	store, err := core.NewPlacementStore(cacheDir)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	sim.EnableMetrics(reg)
	exp.EnableMetrics(reg)
	defer func() {
		sim.EnableMetrics(nil)
		exp.EnableMetrics(nil)
	}()
	var ev *obs.EventWriter
	if progress {
		ev = obs.NewEventWriter(os.Stderr)
	}
	srv := serve.New(serve.Config{
		Store:       store,
		MaxInflight: maxInflight,
		MaxQueue:    maxQueue,
		RatePerSec:  rate,
		Burst:       burst,
		Reg:         reg,
		Events:      ev,
	})
	if debugAddr != "" {
		ds, err := obs.ServeDebug(debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "explinkd: debug server on http://%s/metrics\n", ds.Addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if stdio {
		// Drain rides the same signal: BeginDrain stops admitting and
		// cancels in-flight work; ServeStdio returns once stragglers finish.
		go func() {
			<-ctx.Done()
			srv.BeginDrain()
		}()
		err = srv.ServeStdio(ctx, os.Stdin, os.Stdout)
		if ctx.Err() != nil {
			err = nil // a signal-initiated drain is a clean exit
		}
	} else {
		err = serveHTTP(ctx, srv, addr, drainTimeout)
	}
	fmt.Fprintf(os.Stderr, "explinkd: placement cache: %s\n", store.Counters())
	return err
}

func serveHTTP(ctx context.Context, srv *serve.Server, addr string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "explinkd: listening on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Drain: stop admitting, cancel in-flight work (partial results flow
	// back with Truncated reasons), then give handlers -drain-timeout to
	// write their responses before the listener is torn down.
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutdownErr := hs.Shutdown(sctx)
	if err := srv.Drain(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "explinkd: drain timeout; exiting with requests in flight")
	}
	if shutdownErr != nil && shutdownErr != http.ErrServerClosed && sctx.Err() == nil {
		return shutdownErr
	}
	return nil
}
