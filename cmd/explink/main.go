// Command explink optimizes express-link placement for an n x n mesh NoC
// under a bisection-bandwidth budget, the end-to-end flow of the paper.
//
// Usage:
//
//	explink -n 8                  # sweep all feasible C, print the best design
//	explink -n 8 -c 4             # solve one link limit
//	explink -n 8 -algo OnlySA     # ablation: SA from a random start
//	explink -n 8 -json            # machine-readable output
//	explink -n 8 -diagram         # ASCII picture of the placement
//	explink -n 8 -power           # sim-free power report for the best design
//	explink -n 8 -pareto          # multi-objective placement frontier
//	explink -n 8 -pareto -objectives latency,power
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"explink/internal/anneal"
	"explink/internal/api"
	"explink/internal/core"
	"explink/internal/obs"
	"explink/internal/power"
	"explink/internal/route"
	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func main() {
	var (
		n       = flag.Int("n", 8, "network size (n x n routers)")
		c       = flag.Int("c", 0, "link limit C; 0 sweeps all feasible values")
		algo    = flag.String("algo", "D&C_SA", "placement algorithm: D&C_SA, OnlySA or InitOnly")
		seed    = flag.Uint64("seed", 1, "random seed")
		moves   = flag.Int("moves", 0, "override SA move budget (0 keeps the paper's 10^4)")
		base    = flag.Int("base", 256, "link width in bits the bisection budget affords at C=1")
		jsonOut = flag.Bool("json", false, "emit JSON instead of tables")
		diagram = flag.Bool("diagram", false, "print an ASCII diagram of the chosen row placement")
		matrix  = flag.Bool("matrix", false, "print the connection matrix of the chosen placement")
		tables  = flag.Bool("tables", false, "print the per-router routing tables (Fig. 3b)")
		timeout = flag.Duration("timeout", 0, "abort the optimization after this wall-clock duration (0 = no limit)")
		audit   = flag.Bool("audit", false, "self-check the chosen design with a short audited simulation")
		pareto  = flag.Bool("pareto", false, "solve the multi-objective placement frontier instead of one best design")
		objs    = flag.String("objectives", "latency,power,wiring", "comma-separated frontier dimensions for -pareto")
		archive = flag.Int("archive", 0, "bound the per-C non-dominated archive for -pareto (0 = annealer default)")
		powerRe = flag.Bool("power", false, "print the sim-free power report (static + wiring breakdown) for the solved placement")
		debug   = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	if *debug != "" {
		reg := obs.NewRegistry()
		sim.EnableMetrics(reg)
		anneal.EnableMetrics(reg)
		core.EnableMetrics(reg)
		srv, err := obs.ServeDebug(*debug, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "explink: debug server listening on http://%s\n", srv.Addr)
	}

	// Ctrl-C / SIGTERM cancels the optimization through the runctl taxonomy
	// instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pareto {
		runPareto(ctx, *n, *c, *objs, *seed, *moves, *base, *archive, *jsonOut)
		return
	}

	// The flags map 1:1 onto the service request schema; the solve (and the
	// -json encoding below) runs through the same internal/api path as the
	// explinkd daemon, so the two emit byte-identical documents.
	req := api.SolveRequest{N: *n, C: *c, Algo: *algo, Seed: *seed, Moves: *moves, BaseWidth: *base}
	if err := req.Validate(); err != nil {
		fatal(err)
	}
	s, err := req.Solver(nil)
	if err != nil {
		fatal(err)
	}
	cfg := s.Cfg
	best, all, err := req.Solve(ctx, nil)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		if err := api.NewSolveResponse(best, all).Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	t := stats.NewTable(fmt.Sprintf("%s placement for %dx%d (base width %db)", *algo, *n, *n, *base),
		"C", "width(b)", "L_D", "L_S", "L_avg", "evals", "express links")
	for _, sol := range all {
		t.AddRowf(sol.C, sol.Eval.Width, sol.Eval.Head, sol.Eval.Ser, sol.Eval.Total, sol.Evals, sol.Row.String())
	}
	fmt.Print(t.String())
	mesh, err := cfg.EvalRow(topo.MeshRow(*n), 1)
	if err == nil && mesh.Total > 0 {
		fmt.Printf("\nbest: C=%d  L_avg=%.2f cycles  (%.1f%% below the mesh's %.2f)\n",
			best.C, best.Eval.Total, 100*(1-best.Eval.Total/mesh.Total), mesh.Total)
	}
	if *powerRe {
		// The same sim-free evaluator the frontier's power/wiring dimensions
		// use, applied to the single chosen design.
		cost := power.DefaultModel().PlacementCost(best.Row, best.Eval.Width)
		fmt.Printf("\npower: %s\n", cost)
	}
	if *diagram {
		fmt.Printf("\n%s\n", best.Row.Diagram())
	}
	if *matrix {
		m, err := topo.MatrixFromRow(best.Row, best.C)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s", m.String())
	}
	if *tables {
		fmt.Printf("\n%s", route.FormatTables(best.Row, cfg.Params.Route()))
	}
	if *audit {
		// Self-verification: replay a short uniform-random workload through
		// the chosen design with the invariant auditor enabled; any engine or
		// placement inconsistency fails loudly instead of skewing results.
		sc := sim.NewConfig(s.Topology(best), best.C, traffic.UniformRandom(*n), 0.02)
		sc.Seed = *seed
		sc.Warmup, sc.Measure, sc.Drain = 500, 2000, 10000
		sc.Audit = true
		simr, err := sim.New(sc)
		if err != nil {
			fatal(err)
		}
		res, err := simr.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("audit simulation: %w", err))
		}
		fmt.Printf("\naudit: %d cycles simulated with all invariants holding (lat=%.2f cycles)\n",
			res.Cycles, res.AvgPacketLatency)
	}
}

// runPareto is the -pareto flow: the frontier counterpart of the scalar
// solve, running through the same api.ParetoRequest path as the daemon's
// /v1/pareto endpoint so `-json` output is byte-identical by construction.
func runPareto(ctx context.Context, n, c int, objectives string, seed uint64, moves, base, archive int, jsonOut bool) {
	req := api.ParetoRequest{N: n, C: c, Objectives: splitObjectives(objectives), Seed: seed, Moves: moves, BaseWidth: base, ArchiveCap: archive}
	req.Normalize()
	if err := req.Validate(); err != nil {
		fatal(err)
	}
	f, err := req.Solve(ctx, nil)
	if err != nil {
		fatal(err)
	}

	if jsonOut {
		if err := api.NewParetoResponse(f).Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	dims := make([]string, len(f.Objectives))
	for i, o := range f.Objectives {
		dims[i] = string(o)
	}
	labels := make([]string, len(f.Entries))
	points := make([][]float64, len(f.Entries))
	for i, e := range f.Entries {
		labels[i] = fmt.Sprintf("C=%d %s", e.C, e.Row.String())
		points[i] = e.Objs
	}
	t := stats.FrontierTable(fmt.Sprintf("Pareto frontier for %dx%d (base width %db)", n, n, base),
		dims, labels, points)
	fmt.Print(t.String())
	fmt.Printf("\n%d non-dominated placements, %d evaluations\n", len(f.Entries), f.Evals)
}

// splitObjectives turns the -objectives flag into the request's list form; a
// blank flag means core's all-dimensions default.
func splitObjectives(arg string) []string {
	if strings.TrimSpace(arg) == "" {
		return nil
	}
	return strings.Split(arg, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explink:", err)
	os.Exit(1)
}
