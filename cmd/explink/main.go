// Command explink optimizes express-link placement for an n x n mesh NoC
// under a bisection-bandwidth budget, the end-to-end flow of the paper.
//
// Usage:
//
//	explink -n 8                  # sweep all feasible C, print the best design
//	explink -n 8 -c 4             # solve one link limit
//	explink -n 8 -algo OnlySA     # ablation: SA from a random start
//	explink -n 8 -json            # machine-readable output
//	explink -n 8 -diagram         # ASCII picture of the placement
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"explink/internal/anneal"
	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/obs"
	"explink/internal/route"
	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func main() {
	var (
		n       = flag.Int("n", 8, "network size (n x n routers)")
		c       = flag.Int("c", 0, "link limit C; 0 sweeps all feasible values")
		algo    = flag.String("algo", "D&C_SA", "placement algorithm: D&C_SA, OnlySA or InitOnly")
		seed    = flag.Uint64("seed", 1, "random seed")
		moves   = flag.Int("moves", 0, "override SA move budget (0 keeps the paper's 10^4)")
		base    = flag.Int("base", 256, "link width in bits the bisection budget affords at C=1")
		jsonOut = flag.Bool("json", false, "emit JSON instead of tables")
		diagram = flag.Bool("diagram", false, "print an ASCII diagram of the chosen row placement")
		matrix  = flag.Bool("matrix", false, "print the connection matrix of the chosen placement")
		tables  = flag.Bool("tables", false, "print the per-router routing tables (Fig. 3b)")
		timeout = flag.Duration("timeout", 0, "abort the optimization after this wall-clock duration (0 = no limit)")
		audit   = flag.Bool("audit", false, "self-check the chosen design with a short audited simulation")
		debug   = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	if *debug != "" {
		reg := obs.NewRegistry()
		sim.EnableMetrics(reg)
		anneal.EnableMetrics(reg)
		core.EnableMetrics(reg)
		srv, err := obs.ServeDebug(*debug, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "explink: debug server listening on http://%s\n", srv.Addr)
	}

	// Ctrl-C / SIGTERM cancels the optimization through the runctl taxonomy
	// instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := model.DefaultConfig(*n)
	cfg.BW.BaseWidth = *base
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	s := core.NewSolver(cfg)
	s.Seed = *seed
	if *moves > 0 {
		s.Sched = s.Sched.WithMoves(*moves)
	}

	var (
		best core.RowSolution
		all  []core.RowSolution
		err  error
	)
	if *c > 0 {
		best, err = s.SolveRow(ctx, *c, core.Algorithm(*algo))
		all = []core.RowSolution{best}
	} else {
		best, all, err = s.Optimize(ctx, core.Algorithm(*algo))
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		emitJSON(best, all)
		return
	}

	t := stats.NewTable(fmt.Sprintf("%s placement for %dx%d (base width %db)", *algo, *n, *n, *base),
		"C", "width(b)", "L_D", "L_S", "L_avg", "evals", "express links")
	for _, sol := range all {
		t.AddRowf(sol.C, sol.Eval.Width, sol.Eval.Head, sol.Eval.Ser, sol.Eval.Total, sol.Evals, sol.Row.String())
	}
	fmt.Print(t.String())
	mesh, err := cfg.EvalRow(topo.MeshRow(*n), 1)
	if err == nil && mesh.Total > 0 {
		fmt.Printf("\nbest: C=%d  L_avg=%.2f cycles  (%.1f%% below the mesh's %.2f)\n",
			best.C, best.Eval.Total, 100*(1-best.Eval.Total/mesh.Total), mesh.Total)
	}
	if *diagram {
		fmt.Printf("\n%s\n", best.Row.Diagram())
	}
	if *matrix {
		m, err := topo.MatrixFromRow(best.Row, best.C)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s", m.String())
	}
	if *tables {
		fmt.Printf("\n%s", route.FormatTables(best.Row, cfg.Params.Route()))
	}
	if *audit {
		// Self-verification: replay a short uniform-random workload through
		// the chosen design with the invariant auditor enabled; any engine or
		// placement inconsistency fails loudly instead of skewing results.
		sc := sim.NewConfig(s.Topology(best), best.C, traffic.UniformRandom(*n), 0.02)
		sc.Seed = *seed
		sc.Warmup, sc.Measure, sc.Drain = 500, 2000, 10000
		sc.Audit = true
		simr, err := sim.New(sc)
		if err != nil {
			fatal(err)
		}
		res, err := simr.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("audit simulation: %w", err))
		}
		fmt.Printf("\naudit: %d cycles simulated with all invariants holding (lat=%.2f cycles)\n",
			res.Cycles, res.AvgPacketLatency)
	}
}

type jsonSolution struct {
	C       int         `json:"c"`
	Width   int         `json:"widthBits"`
	Head    float64     `json:"headLatency"`
	Ser     float64     `json:"serializationLatency"`
	Total   float64     `json:"totalLatency"`
	Evals   int64       `json:"evaluations"`
	Express []topo.Span `json:"expressLinks"`
}

func emitJSON(best core.RowSolution, all []core.RowSolution) {
	conv := func(s core.RowSolution) jsonSolution {
		return jsonSolution{
			C: s.C, Width: s.Eval.Width, Head: s.Eval.Head, Ser: s.Eval.Ser,
			Total: s.Eval.Total, Evals: s.Evals, Express: s.Row.Canonical().Express,
		}
	}
	out := struct {
		Best jsonSolution   `json:"best"`
		All  []jsonSolution `json:"all"`
	}{Best: conv(best)}
	for _, s := range all {
		out.All = append(out.All, conv(s))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explink:", err)
	os.Exit(1)
}
