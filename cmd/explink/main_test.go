package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"testing"

	"explink/internal/core"
	"explink/internal/model"
)

func TestEmitJSON(t *testing.T) {
	s := core.NewSolver(model.DefaultConfig(8))
	best, all, err := s.Optimize(context.Background(), core.DCSA)
	if err != nil {
		t.Fatal(err)
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	emitJSON(best, all)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}

	var out struct {
		Best jsonSolution   `json:"best"`
		All  []jsonSolution `json:"all"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Best.C != best.C || out.Best.Total != best.Eval.Total {
		t.Fatalf("best mismatch: %+v vs %+v", out.Best, best)
	}
	if len(out.All) != len(all) {
		t.Fatalf("all length %d, want %d", len(out.All), len(all))
	}
	if len(out.Best.Express) != len(best.Row.Express) {
		t.Fatalf("express spans %d, want %d", len(out.Best.Express), len(best.Row.Express))
	}
}
