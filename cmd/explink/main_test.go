package main

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"explink/internal/api"
	"explink/internal/core"
	"explink/internal/model"
)

func TestJSONOutput(t *testing.T) {
	s := core.NewSolver(model.DefaultConfig(8))
	best, all, err := s.Optimize(context.Background(), core.DCSA)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := api.NewSolveResponse(best, all).Encode(&buf); err != nil {
		t.Fatal(err)
	}

	var out struct {
		Best api.Solution   `json:"best"`
		All  []api.Solution `json:"all"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Best.C != best.C || out.Best.Total != best.Eval.Total {
		t.Fatalf("best mismatch: %+v vs %+v", out.Best, best)
	}
	if len(out.All) != len(all) {
		t.Fatalf("all length %d, want %d", len(out.All), len(all))
	}
	if len(out.Best.Express) != len(best.Row.Express) {
		t.Fatalf("express spans %d, want %d", len(out.Best.Express), len(best.Row.Express))
	}
}

func TestSplitObjectives(t *testing.T) {
	if got := splitObjectives(""); got != nil {
		t.Fatalf("blank flag: %v", got)
	}
	if got := splitObjectives("  "); got != nil {
		t.Fatalf("whitespace flag: %v", got)
	}
	got := splitObjectives("latency,power,wiring")
	if len(got) != 3 || got[0] != "latency" || got[2] != "wiring" {
		t.Fatalf("default split: %v", got)
	}
}

// TestCLIParetoMatchesAPIRequest mirrors TestCLISolveMatchesAPIRequest for
// the frontier path: the flag-built ParetoRequest is deterministic and its
// encoding carries every point the frontier holds.
func TestCLIParetoMatchesAPIRequest(t *testing.T) {
	req := api.ParetoRequest{N: 6, C: 2, Objectives: splitObjectives("latency,power,wiring"), Moves: 1500}
	req.Normalize()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	f1, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := api.NewParetoResponse(f1).Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := api.NewParetoResponse(f2).Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two solves of the same pareto request differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if len(f1.Entries) == 0 {
		t.Fatal("empty frontier")
	}
}

// TestCLISolveMatchesAPIRequest pins the byte-identity contract: the flag
// path (an api.SolveRequest built from flag values) and a daemon-style
// request for the same parameters produce identical solutions.
func TestCLISolveMatchesAPIRequest(t *testing.T) {
	req := api.SolveRequest{N: 6, C: 3, Algo: "D&C_SA", Seed: 1, BaseWidth: 256}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	best1, all1, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	best2, all2, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := api.NewSolveResponse(best1, all1).Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := api.NewSolveResponse(best2, all2).Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two solves of the same request differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}
