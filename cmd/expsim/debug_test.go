package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestDebugAddrScrape is the end-to-end observability check: build the real
// expsim binary, run it with -debug-addr on an ephemeral port, scrape
// /metrics while a long run is in flight, and assert the simulator's core
// series are present. This exercises the whole chain — flag parsing,
// EnableMetrics, the 512-cycle publish cadence inside Run, and the
// Prometheus-text exposition — the way an operator would use it.
func TestDebugAddrScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the expsim binary")
	}
	bin := filepath.Join(t.TempDir(), "expsim")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A long measurement phase keeps the process alive while we scrape; the
	// run is killed as soon as the assertions are done.
	cmd := exec.Command(bin,
		"-debug-addr", "127.0.0.1:0",
		"-n", "4", "-topo", "mesh", "-pattern", "UR", "-rate", "0.01",
		"-warmup", "1000", "-measure", "100000000", "-drain", "1000")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The bound address is announced on stderr before the run starts.
	addrRe := regexp.MustCompile(`listening on http://(\S+)`)
	var addr string
	sc := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	found := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				found <- m[1]
				break
			}
		}
		// Keep draining so the child never blocks on a full stderr pipe.
		io.Copy(io.Discard, stderr)
	}()
	select {
	case addr = <-found:
	case <-deadline:
		t.Fatal("debug server address never announced on stderr")
	}

	scrape := func() (string, error) {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %s", resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	// The sim publishes on a 512-cycle cadence, so poll until the counters
	// show up (well under a second at 4x4 mesh speed).
	want := []string{
		"sim_runs_started_total",
		`sim_cycles_total{phase="measure"}`,
		"sim_flits_injected_total",
		"sim_packets_delivered_total",
		"sim_active_routers",
		"sim_in_flight_flits",
	}
	var body string
	ok := false
	for end := time.Now().Add(30 * time.Second); time.Now().Before(end); time.Sleep(100 * time.Millisecond) {
		body, err = scrape()
		if err != nil {
			continue
		}
		ok = true
		for _, name := range want {
			if !strings.Contains(body, name) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
	}
	if !ok {
		t.Fatalf("metrics never exposed the expected series %v; last scrape (err=%v):\n%s", want, err, body)
	}

	// /debug/vars must serve the same registry through expvar.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(vars), "explink") {
		t.Fatalf("/debug/vars missing the explink snapshot:\n%s", vars)
	}
	_ = os.Remove(bin)
}
