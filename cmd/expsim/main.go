// Command expsim runs the cycle-accurate NoC simulator on a chosen topology,
// traffic pattern and injection rate, printing latency, throughput,
// contention and power estimates.
//
// Usage:
//
//	expsim -n 8 -topo mesh -pattern UR -rate 0.02
//	expsim -n 8 -topo dcsa -pattern canneal            # PARSEC proxy
//	expsim -n 8 -topo hfb -pattern TP -saturate        # throughput search
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"explink/internal/anneal"
	"explink/internal/api"
	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/obs"
	"explink/internal/power"
	"explink/internal/sim"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func main() {
	var (
		n        = flag.Int("n", 8, "network size (n x n)")
		topoName = flag.String("topo", "mesh", "topology: mesh, hfb, fb, or dcsa (optimized placement)")
		pattern  = flag.String("pattern", "UR", "traffic: UR, TP, BR, BC, SH, TOR, NBR, hotspot, or a PARSEC name")
		rate     = flag.Float64("rate", 0.02, "injection rate (packets/node/cycle)")
		seed     = flag.Uint64("seed", 1, "random seed")
		warmup   = flag.Int("warmup", 2000, "warmup cycles")
		measure  = flag.Int("measure", 10000, "measurement cycles")
		drain    = flag.Int("drain", 40000, "max drain cycles")
		saturate = flag.Bool("saturate", false, "search for the saturation throughput instead of a single run")
		replicas = flag.Int("replicas", 1, "run this many seed replicas on the batched engine and report the aggregate")
		showPow  = flag.Bool("power", true, "print the power estimate")
		heatmap  = flag.Bool("heatmap", false, "print the per-router link-utilization heatmap after the run")
		saveTr   = flag.String("savetrace", "", "record the workload and write it as JSON to this file")
		loadTr   = flag.String("loadtrace", "", "replay a JSON trace instead of generating traffic")
		timeout  = flag.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = no limit)")
		audit    = flag.Bool("audit", false, "run with the per-cycle invariant auditor enabled")
		debug    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:6060)")
	)
	flag.Parse()

	if *debug != "" {
		reg := obs.NewRegistry()
		sim.EnableMetrics(reg)
		anneal.EnableMetrics(reg)
		core.EnableMetrics(reg)
		srv, err := obs.ServeDebug(*debug, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "expsim: debug server listening on http://%s\n", srv.Addr)
	}

	// Fail fast on malformed run-shape flags with the same runctl.ErrConfig
	// classification the daemon applies to request bodies; downstream code
	// would otherwise tolerate some of these (a zero -measure divides
	// throughput by zero, -replicas 0 silently means one).
	if err := api.ValidateSimParams(*warmup, *measure, *drain, *replicas, *rate); err != nil {
		fatal(err)
	}

	if *saturate && *loadTr != "" {
		// A trace fixes the injection schedule, so there is no offered rate to
		// sweep; silently ignoring one flag would misreport the other.
		fatal(fmt.Errorf("-saturate and -loadtrace are mutually exclusive: a replayed trace has a fixed injection schedule"))
	}

	// Ctrl-C / SIGTERM cancels the simulation through the runctl taxonomy
	// instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	tp, c, err := buildTopo(ctx, *topoName, *n, *seed)
	if err != nil {
		fatal(err)
	}
	pat, prate, err := buildPattern(*pattern, *n, *rate)
	if err != nil {
		fatal(err)
	}

	cfg := sim.NewConfig(tp, c, pat, prate)
	cfg.Seed = *seed
	cfg.Warmup, cfg.Measure, cfg.Drain = *warmup, *measure, *drain
	cfg.Audit = *audit
	if *saveTr != "" {
		cfg.RecordTrace = true
	}
	if *loadTr != "" {
		f, err := os.Open(*loadTr)
		if err != nil {
			fatal(err)
		}
		tr, err := sim.LoadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		tr.Name = filepath.Base(*loadTr)
		cfg.Trace = tr
		cfg.Pattern = nil
		cfg.InjectionRate = 0
		fmt.Printf("replaying trace %s (%d packets) on %s\n", tr.Name, len(tr.Entries), tp.Name)
	}

	if *replicas > 1 && *saveTr != "" {
		// Trace recording is per-simulator; with several replicas there is no
		// single workload to save.
		fatal(fmt.Errorf("-savetrace needs a single run; drop -replicas or set it to 1"))
	}

	if *saturate {
		satOpts := sim.DefaultSaturationOpts()
		satOpts.Replicas = *replicas
		sweep, err := sim.FindSaturation(ctx, cfg, satOpts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("topology %s, pattern %s:\n", tp.Name, pat.Name())
		for _, p := range sweep.Points {
			fmt.Printf("  rate %.4f: latency %.2f, accepted %.4f pkt/node/cy, drained=%v\n",
				p.Rate, p.Result.AvgPacketLatency, p.Result.ThroughputPackets, p.Result.Drained)
		}
		fmt.Printf("saturation throughput: %.4f packets/node/cycle (at offered %.4f)\n",
			sweep.Saturation, sweep.SatRate)
		fmt.Printf("simulated %d cycles in %v (%.0f cycles/sec)\n",
			sweep.SimCycles, sweep.WallTime.Round(time.Millisecond), sweep.CyclesPerSec)
		return
	}

	if *replicas > 1 {
		b, err := sim.NewBatch(cfg, sim.ReplicaSeeds(cfg.Seed, *replicas))
		if err != nil {
			fatal(err)
		}
		results, agg, err := b.Run(ctx, 0)
		if err != nil {
			fatal(err)
		}
		res := sim.AggregateReplicas(results)
		fmt.Println(res.String())
		fmt.Printf("  p95=%d p99=%d max=%d cycles, measured packets=%d (across %d replicas)\n",
			res.P95Latency, res.P99Latency, res.MaxLatency, res.MeasuredPackets, *replicas)
		for i, r := range results {
			fmt.Printf("  replica %d: latency %.2f, accepted %.4f pkt/node/cy, drained=%v\n",
				i, r.AvgPacketLatency, r.ThroughputPackets, r.Drained)
		}
		fmt.Printf("  simulated %s\n", agg)
		if *heatmap {
			fmt.Print(b.Replicas()[0].UtilizationHeatmap())
		}
		return
	}

	s, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := s.Run(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.String())
	fmt.Printf("  p95=%d p99=%d max=%d cycles, measured packets=%d\n",
		res.P95Latency, res.P99Latency, res.MaxLatency, res.MeasuredPackets)
	fmt.Printf("  simulated %d cycles in %v (%.0f cycles/sec)\n",
		res.Cycles, res.WallTime.Round(time.Millisecond), res.CyclesPerSec)
	if *showPow {
		w, err := model.DefaultBandwidth().Width(c)
		if err == nil {
			rep, perr := power.DefaultModel().Estimate(tp, w, res)
			if perr == nil {
				fmt.Println("  " + rep.String())
				if e, eerr := power.DefaultModel().EnergyOf(rep, res); eerr == nil {
					fmt.Println("  " + e.String())
				}
			}
		}
	}
	if *heatmap {
		fmt.Print(s.UtilizationHeatmap())
	}
	if *saveTr != "" {
		f, err := os.Create(*saveTr)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := s.RecordedTrace().Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("trace with %d packets written to %s\n",
			res.Counts.PacketsInjected, *saveTr)
	}
}

// buildTopo and buildPattern are thin aliases over the shared service-layer
// builders (internal/api), kept so the CLI reads naturally; the daemon's
// /v1/sim endpoint resolves names through exactly the same code.
func buildTopo(ctx context.Context, name string, n int, seed uint64) (topo.Topology, int, error) {
	return api.BuildTopology(ctx, name, n, seed, nil)
}

func buildPattern(name string, n int, rate float64) (traffic.Pattern, float64, error) {
	return api.BuildPattern(name, n, rate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "expsim:", err)
	os.Exit(1)
}
