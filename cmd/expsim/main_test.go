package main

import (
	"context"
	"testing"
)

func TestBuildTopo(t *testing.T) {
	cases := []struct {
		name  string
		wantC int
	}{
		{"mesh", 1},
		{"hfb", 4},
		{"fb", 16},
	}
	for _, c := range cases {
		tp, limit, err := buildTopo(context.Background(), c.name, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if limit != c.wantC {
			t.Fatalf("%s: C = %d, want %d", c.name, limit, c.wantC)
		}
		if err := tp.Validate(limit); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
	if _, _, err := buildTopo(context.Background(), "ring", 8, 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBuildTopoDCSA(t *testing.T) {
	tp, c, err := buildTopo(context.Background(), "dcsa", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c < 2 || c > 16 {
		t.Fatalf("optimized C = %d", c)
	}
	if err := tp.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPattern(t *testing.T) {
	for _, name := range []string{"UR", "TP", "BR", "BC", "SH", "TOR", "NBR", "hotspot"} {
		pat, rate, err := buildPattern(name, 8, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pat == nil || rate != 0.02 {
			t.Fatalf("%s: pattern %v rate %g", name, pat, rate)
		}
	}
	// PARSEC names carry their own injection rate.
	pat, rate, err := buildPattern("canneal", 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pat.Name() != "canneal" || rate == 0.5 {
		t.Fatalf("parsec lookup: %s at %g", pat.Name(), rate)
	}
	if _, _, err := buildPattern("doom", 8, 0.1); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}
