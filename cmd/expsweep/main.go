// Command expsweep scales an expbench suite across a worker fleet without
// changing what it computes. A coordinator decomposes the suite into work
// units (one experiment each), serves them over the /v1/work endpoints with
// heartbeat-extended leases, journals completions to a checkpoint file, and
// prints the merged registry-order report — byte-identical to what a local
// `expbench -exp ...` run would have written to stdout. Workers are thin
// loops over the same experiment registry; pointing the fleet at a shared
// -cache-dir makes every placement solve compute exactly once fleet-wide.
//
// Coordinator (also runs -workers in-process executors):
//
//	expsweep -exp all -quick -workers 2 -journal sweep.jnl -cache-dir /tmp/pl
//	expsweep -exp fig5,fig11 -addr 127.0.0.1:8352 -workers 0   # remote-only
//
// Worker (connects to a coordinator's HTTP surface):
//
//	expsweep -worker -connect http://127.0.0.1:8352 -cache-dir /tmp/pl
//
// Fault tolerance: a worker killed mid-unit stops heartbeating and its lease
// is re-issued after -lease-ttl; a coordinator killed mid-suite restarts
// from -journal with only the unfinished units re-leased ("resumed N/M
// units" on stderr). Results, progress and cache statistics go to stderr;
// stdout carries only the merged report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"explink/internal/core"
	"explink/internal/exp"
	"explink/internal/fabric"
	"explink/internal/obs"
	"explink/internal/runctl"
	"explink/internal/serve"
	"explink/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		// Coordinator-side flags (mirror expbench where they overlap).
		which    = flag.String("exp", "all", "experiments to sweep: all, or a comma-separated list")
		quick    = flag.Bool("quick", false, "reduced budgets for a fast smoke run")
		seed     = flag.Uint64("seed", 1, "random seed")
		replicas = flag.Int("replicas", 1, "seed replicas per simulated operating point")
		jsonOut  = flag.Bool("json", false, "emit structured JSON results (a JSON array on stdout instead of text)")
		journal  = flag.String("journal", "", "checkpoint completed units to this file; a restarted coordinator resumes from it")
		addr     = flag.String("addr", "", "serve /v1/work to remote workers on this address (empty = in-process workers only)")
		workers  = flag.Int("workers", 1, "in-process workers to run alongside the coordinator (0 = remote workers only)")
		leaseTTL = flag.Duration("lease-ttl", 15*time.Second, "how long a lease survives without a heartbeat before its unit is re-issued")

		// Worker-side flags.
		workerMode = flag.Bool("worker", false, "run as a worker: lease units from -connect until the suite is done")
		connect    = flag.String("connect", "", "coordinator base URL for -worker (e.g. http://127.0.0.1:8352)")
		workerID   = flag.String("id", "", "worker id reported in leases (default host:pid)")

		// Shared flags.
		cacheDir = flag.String("cache-dir", "", "persist placement solves under this directory; share it across the fleet to deduplicate solves")
		progress = flag.Bool("progress", false, "emit JSON-lines lifecycle events on stderr")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM drains: workers complete their in-flight unit as
	// cancelled (the coordinator re-queues it) and exit; a coordinator
	// reports whatever finished and leaves the journal ready for resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	store, err := core.NewPlacementStore(*cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expsweep: %v\n", err)
		return 1
	}
	var events *obs.EventWriter
	if *progress {
		events = obs.NewEventWriter(os.Stderr)
	}

	if *workerMode {
		return runWorker(ctx, *connect, *workerID, store, events)
	}
	return runCoordinator(ctx, coordinatorConfig{
		which: *which, quick: *quick, seed: *seed, replicas: *replicas,
		jsonOut: *jsonOut, journal: *journal, addr: *addr,
		workers: *workers, leaseTTL: *leaseTTL,
	}, store, events)
}

// runWorker is the -worker entry: lease-run-complete against a remote
// coordinator until the suite is done (exit 0), the process is drained
// (exit 0 — the in-flight unit was handed back as cancelled), or the
// coordinator stays unreachable (exit 1).
func runWorker(ctx context.Context, connect, id string, store *core.PlacementStore, events *obs.EventWriter) int {
	if connect == "" {
		fmt.Fprintln(os.Stderr, "expsweep: -worker requires -connect")
		return 1
	}
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := &fabric.Worker{
		Client: &fabric.HTTPClient{Base: connect},
		ID:     id,
		Store:  store,
		Events: events,
	}
	err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "expsweep: worker %s: placement cache: %s\n", id, store.Counters())
	switch {
	case err == nil:
		return 0
	case errors.Is(err, runctl.ErrCancelled) && ctx.Err() != nil:
		return 0 // signal-initiated drain is a clean exit
	default:
		fmt.Fprintf(os.Stderr, "expsweep: worker %s: %v\n", id, err)
		return 1
	}
}

type coordinatorConfig struct {
	which    string
	quick    bool
	seed     uint64
	replicas int
	jsonOut  bool
	journal  string
	addr     string
	workers  int
	leaseTTL time.Duration
}

// runCoordinator owns one campaign: build the suite, resume from the
// journal, serve remote workers and/or run local ones, then render the
// merged outcomes exactly as a local expbench run would have.
func runCoordinator(ctx context.Context, cfg coordinatorConfig, store *core.PlacementStore, events *obs.EventWriter) int {
	suite, err := fabric.SuiteOf(strings.Split(cfg.which, ","), cfg.quick, cfg.seed, cfg.replicas)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expsweep: %v\n", err)
		return 1
	}
	if cfg.workers <= 0 && cfg.addr == "" {
		fmt.Fprintln(os.Stderr, "expsweep: nothing would execute units: need -workers >= 1 or -addr for remote workers")
		return 1
	}
	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Suite:       suite,
		JournalPath: cfg.journal,
		LeaseTTL:    cfg.leaseTTL,
		Events:      events,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "expsweep: %v\n", err)
		return 1
	}
	defer coord.Close()
	if n := coord.Resumed(); n > 0 {
		fmt.Fprintf(os.Stderr, "expsweep: resumed %d/%d units from %s\n", n, len(suite.Experiments), cfg.journal)
	}

	// Remote-worker surface: a full serve.Server with the coordinator
	// mounted at /v1/work (the solve/eval/sim endpoints ride along for
	// free, sharing the same store).
	if cfg.addr != "" {
		srv := serve.New(serve.Config{Store: store, Events: events, Coordinator: coord})
		ln, err := net.Listen("tcp", cfg.addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expsweep: %v\n", err)
			return 1
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			hs.Shutdown(sctx)
		}()
		fmt.Fprintf(os.Stderr, "expsweep: serving work units on http://%s\n", ln.Addr())
	}

	// In-process workers drive the coordinator directly — same protocol, no
	// HTTP hop — and share the process-wide store.
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		w := &fabric.Worker{
			Client: coord,
			ID:     fmt.Sprintf("local-%d", i),
			Store:  store,
			Events: events,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, runctl.ErrCancelled) {
				fmt.Fprintf(os.Stderr, "expsweep: %v\n", err)
			}
		}()
	}

	waitErr := coord.WaitDone(ctx)
	wg.Wait()
	if waitErr != nil && cfg.journal != "" {
		fmt.Fprintf(os.Stderr, "expsweep: interrupted; resume with the same flags and -journal %s\n", cfg.journal)
	}

	outcomes, err := coord.Outcomes()
	if err != nil {
		fmt.Fprintf(os.Stderr, "expsweep: %v\n", err)
		return 1
	}
	return render(outcomes, cfg.jsonOut, store)
}

// render prints merged outcomes with expbench's exact stdout format, so a
// sweep's report is byte-comparable against a local run.
func render(outcomes []exp.Outcome, jsonOut bool, store *core.PlacementStore) int {
	failed := 0
	var reports []*stats.Report
	for _, oc := range outcomes {
		if oc.Err != nil {
			failed++
			msg := "expsweep %s: %v\n"
			if errors.Is(oc.Err, runctl.ErrCancelled) {
				msg = "expsweep %s: interrupted: %v\n"
			}
			fmt.Fprintf(os.Stderr, msg, oc.Exp.Name, oc.Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "expsweep: %s finished in %.1fs\n", oc.Exp.Name, oc.Elapsed.Seconds())
		reports = append(reports, oc.Rep)
		if !jsonOut {
			fmt.Printf("### %s — %s\n\n%s\n", oc.Exp.Name, oc.Exp.Desc, oc.Rep.Render())
		}
	}
	if jsonOut {
		buf, err := stats.ReportsJSON(reports)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expsweep: %v\n", err)
			return 1
		}
		os.Stdout.Write(buf)
	}
	fmt.Fprintf(os.Stderr, "expsweep: placement cache: %s\n", store.Counters())
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "expsweep: %d of %d experiments failed\n", failed, len(outcomes))
		return 1
	}
	return 0
}
