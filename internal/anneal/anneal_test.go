package anneal

import (
	"context"
	"math"
	"testing"

	"explink/internal/bnb"
	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
)

var p = model.DefaultParams()

func rowObj(r topo.Row) float64 { return model.RowMean(r, p) }

func TestDefaultScheduleMatchesTable1(t *testing.T) {
	s := DefaultSchedule()
	if s.T0 != 10 || s.Moves != 10000 || s.CoolEvery != 1000 || s.CoolDiv != 2 {
		t.Fatalf("schedule = %+v", s)
	}
}

func TestWithMoves(t *testing.T) {
	s := DefaultSchedule().WithMoves(1000)
	if s.Moves != 1000 || s.CoolEvery != 100 {
		t.Fatalf("scaled schedule = %+v", s)
	}
	tiny := DefaultSchedule().WithMoves(5)
	if tiny.CoolEvery < 1 {
		t.Fatalf("cool-every must stay positive: %+v", tiny)
	}
}

func TestWithMovesTinyBudgetRounding(t *testing.T) {
	// Regression: budgets far below the original CoolEvery round the scaled
	// cadence to zero, which the clamp must lift back to 1 so the schedule
	// still cools; the run must also remain well-defined end to end.
	for _, moves := range []int{1, 2, 3, 4} {
		s := DefaultSchedule().WithMoves(moves)
		if s.Moves != moves {
			t.Fatalf("WithMoves(%d) kept %d moves", moves, s.Moves)
		}
		if s.CoolEvery != 1 {
			t.Fatalf("WithMoves(%d) cadence = %d, want 1", moves, s.CoolEvery)
		}
		m := topo.NewConnMatrix(8, 4)
		res := Minimize(context.Background(), m, rowObj, s, stats.NewRNG(17), false)
		if res.Evals != int64(moves)+1 {
			t.Fatalf("WithMoves(%d) run made %d evals", moves, res.Evals)
		}
	}
	// A zero-move base schedule has no cadence to scale and must not divide
	// by zero.
	z := Schedule{T0: 1, Moves: 0, CoolEvery: 0, CoolDiv: 2}.WithMoves(10)
	if z.Moves != 10 || z.CoolEvery != 0 {
		t.Fatalf("zero-base schedule scaled to %+v", z)
	}
}

func TestMinimizeMemoCounters(t *testing.T) {
	m := topo.NewConnMatrix(8, 4)
	res := Minimize(context.Background(), m, rowObj, DefaultSchedule(), stats.NewRNG(23), false)
	if res.MemoHits+res.MemoMisses != res.Evals {
		t.Fatalf("hits %d + misses %d != evals %d", res.MemoHits, res.MemoMisses, res.Evals)
	}
	// Flip/revert churn guarantees revisits over a 10^4-move schedule on a
	// 18-bit space.
	if res.MemoHits == 0 {
		t.Fatal("memo never hit")
	}
	if res.MemoMisses == 0 {
		t.Fatal("memo never missed")
	}
	// The memo must not distort the reported optimum: the best row's true
	// objective equals the recorded one.
	if got := rowObj(res.Row); got != res.Obj {
		t.Fatalf("memoized objective %v != recomputed %v", res.Obj, got)
	}
}

func TestMinimizeNoBits(t *testing.T) {
	// C=1 has an empty move space; the initial state must come back intact.
	m := topo.NewConnMatrix(8, 1)
	res := Minimize(context.Background(), m, rowObj, DefaultSchedule(), stats.NewRNG(1), false)
	if res.Evals != 1 {
		t.Fatalf("evals = %d", res.Evals)
	}
	if !res.Row.Equal(topo.MeshRow(8)) {
		t.Fatalf("row = %v", res.Row)
	}
}

func TestMinimizeImproves(t *testing.T) {
	m := topo.NewConnMatrix(8, 4) // start from mesh
	init := rowObj(m.Row())
	res := Minimize(context.Background(), m, rowObj, DefaultSchedule(), stats.NewRNG(7), false)
	if res.Obj >= init {
		t.Fatalf("SA failed to improve: %g >= %g", res.Obj, init)
	}
	if err := res.Row.Validate(4); err != nil {
		t.Fatal(err)
	}
	if res.Evals != int64(DefaultSchedule().Moves)+1 {
		t.Fatalf("evals = %d", res.Evals)
	}
}

func TestMinimizeDoesNotMutateInit(t *testing.T) {
	m := topo.NewConnMatrix(8, 4)
	snapshot := m.Clone()
	Minimize(context.Background(), m, rowObj, DefaultSchedule().WithMoves(500), stats.NewRNG(3), false)
	if !m.Equal(snapshot) {
		t.Fatal("initial matrix was mutated")
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	run := func() Result {
		m := topo.NewConnMatrix(8, 4)
		return Minimize(context.Background(), m, rowObj, DefaultSchedule(), stats.NewRNG(42), false)
	}
	a, b := run(), run()
	if a.Obj != b.Obj || !a.Row.Equal(b.Row) || a.Accepted != b.Accepted {
		t.Fatal("SA is not deterministic for a fixed seed")
	}
}

func TestMinimizeFindsOptimumSmall(t *testing.T) {
	// P(8,2) has a 64-state matrix space; a full SA run must find the global
	// optimum.
	opt := bnb.ExhaustiveMatrix(8, 2, p)
	m := topo.NewConnMatrix(8, 2)
	res := Minimize(context.Background(), m, rowObj, DefaultSchedule(), stats.NewRNG(5), false)
	if math.Abs(res.Obj-opt.Mean) > 1e-9 {
		t.Fatalf("SA found %g, optimum is %g", res.Obj, opt.Mean)
	}
}

func TestMinimizeHistoryMonotone(t *testing.T) {
	m := topo.NewConnMatrix(8, 4)
	res := Minimize(context.Background(), m, rowObj, DefaultSchedule(), stats.NewRNG(9), true)
	if len(res.History) < 2 {
		t.Fatalf("history too short: %v", res.History)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Best >= res.History[i-1].Best {
			t.Fatalf("history not strictly improving at %d: %v", i, res.History)
		}
		if res.History[i].Evals <= res.History[i-1].Evals {
			t.Fatalf("history evals not increasing at %d", i)
		}
	}
	last := res.History[len(res.History)-1].Best
	if last != res.Obj {
		t.Fatalf("history end %g != result %g", last, res.Obj)
	}
}

func TestMinimizeAcceptsUphillEarly(t *testing.T) {
	// With T0 = 10 the early phase must accept some uphill moves; a purely
	// greedy search would get stuck in the first local optimum.
	m := topo.NewConnMatrix(8, 4)
	res := Minimize(context.Background(), m, rowObj, DefaultSchedule(), stats.NewRNG(11), false)
	if res.Uphill == 0 {
		t.Fatal("no uphill moves accepted; annealing degenerated to greedy")
	}
}

func TestMinimizeZeroMoves(t *testing.T) {
	m := topo.NewConnMatrix(8, 4)
	res := Minimize(context.Background(), m, rowObj, Schedule{T0: 10, Moves: 0, CoolEvery: 1, CoolDiv: 2}, stats.NewRNG(1), false)
	if res.Evals != 1 || !res.Row.Equal(topo.MeshRow(8)) {
		t.Fatalf("zero-move run changed state: %v", res.Row)
	}
}

func TestMinimizeFromGoodInitNeverWorse(t *testing.T) {
	// Seeding with a strong placement must never return something worse:
	// best-so-far tracking guarantees it.
	good := bnb.OptimalRow(8, 3, p)
	m, err := topo.MatrixFromRow(good.Row, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := Minimize(context.Background(), m, rowObj, DefaultSchedule().WithMoves(2000), stats.NewRNG(13), false)
	if res.Obj > good.Mean+1e-9 {
		t.Fatalf("SA returned %g, worse than its seed %g", res.Obj, good.Mean)
	}
}
