package anneal

import (
	"context"
	"testing"

	"explink/internal/stats"
	"explink/internal/topo"
)

func TestNaiveImproves(t *testing.T) {
	mesh := topo.MeshRow(8)
	res := MinimizeNaive(mesh, 4, rowObj, DefaultSchedule(), stats.NewRNG(3))
	if res.Obj >= rowObj(mesh) {
		t.Fatalf("naive SA failed to improve: %g", res.Obj)
	}
	if err := res.Row.Validate(4); err != nil {
		t.Fatal(err)
	}
	if res.Moves != int64(DefaultSchedule().Moves) {
		t.Fatalf("moves = %d", res.Moves)
	}
	if res.Evals+res.Invalid < res.Moves {
		t.Fatalf("accounting broken: evals %d + invalid %d < moves %d", res.Evals, res.Invalid, res.Moves)
	}
}

func TestNaiveWastesMoves(t *testing.T) {
	// The Section 4.4.2 motivation: a meaningful share of naive candidates
	// is infeasible, especially at tight link limits.
	res := MinimizeNaive(topo.MeshRow(16), 2, rowObj, DefaultSchedule(), stats.NewRNG(5))
	frac := float64(res.Invalid) / float64(res.Moves)
	if frac < 0.2 {
		t.Fatalf("only %.1f%% of naive moves infeasible; expected substantial waste", 100*frac)
	}
	if err := res.Row.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveNeverWorseThanSeed(t *testing.T) {
	seed := topo.NewRow(8, topo.Span{From: 0, To: 4}, topo.Span{From: 4, To: 7})
	seedObj := rowObj(seed)
	res := MinimizeNaive(seed, 3, rowObj, DefaultSchedule().WithMoves(2000), stats.NewRNG(7))
	if res.Obj > seedObj+1e-9 {
		t.Fatalf("naive SA lost its seed: %g > %g", res.Obj, seedObj)
	}
}

func TestNaivePanicsOnInfeasibleSeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MinimizeNaive(topo.NewRow(8, topo.Span{From: 0, To: 4}), 1, rowObj, DefaultSchedule(), stats.NewRNG(1))
}

func TestMatrixGeneratorBeatsNaiveAtTightLimits(t *testing.T) {
	// At equal move budgets the always-feasible generator should not lose:
	// every one of its moves explores, while the naive generator discards a
	// large share. Averaged over seeds to damp SA noise.
	const budget = 600
	var matrixSum, naiveSum float64
	for seed := uint64(0); seed < 5; seed++ {
		sch := DefaultSchedule().WithMoves(budget)
		m := topo.NewConnMatrix(16, 2)
		mres := Minimize(context.Background(), m, rowObj, sch, stats.NewRNG(stats.MixSeed(seed, 1)), false)
		matrixSum += mres.Obj
		nres := MinimizeNaive(topo.MeshRow(16), 2, rowObj, sch, stats.NewRNG(stats.MixSeed(seed, 2)))
		naiveSum += nres.Obj
	}
	if matrixSum > naiveSum*1.02 {
		t.Fatalf("matrix generator (%.2f avg) worse than naive (%.2f avg)", matrixSum/5, naiveSum/5)
	}
}
