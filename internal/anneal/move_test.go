package anneal

import (
	"context"
	"os"
	"testing"
	"time"

	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
)

// TestMinimizeMoveResultConsistency pins the deferred best-state
// materialization: the returned Row must decode the returned Matrix, and the
// result must not alias the caller's initial matrix.
func TestMinimizeMoveResultConsistency(t *testing.T) {
	init := topo.NewConnMatrix(12, 4)
	rng := stats.NewRNG(3)
	init.Randomize(func() bool { return rng.Bool(0.5) })
	snapshot := init.Clone()
	res := MinimizeMove(context.Background(), init, model.NewIncObjective(p), DefaultSchedule().WithMoves(500), rng, false)
	if !init.Equal(snapshot) {
		t.Fatal("MinimizeMove mutated the initial matrix")
	}
	if !res.Row.Equal(res.Matrix.Row()) {
		t.Fatalf("Row %v does not decode Matrix %v", res.Row, res.Matrix)
	}
	res.Matrix.FlipAt(0)
	if !init.Equal(snapshot) {
		t.Fatal("result matrix aliases the initial matrix")
	}
}

// TestMinimizeMoveProtocolOrder drives MinimizeMove with a recording
// objective and checks the documented call protocol: Init once, then per move
// exactly one Flip followed by at most one Eval and exactly one Commit or
// Revert — the contract incremental implementations rely on to stay in step.
func TestMinimizeMoveProtocolOrder(t *testing.T) {
	rec := &recordingObjective{obj: rowObj, t: t}
	init := topo.NewConnMatrix(8, 3)
	rng := stats.NewRNG(9)
	init.Randomize(func() bool { return rng.Bool(0.5) })
	res := MinimizeMove(context.Background(), init, rec, DefaultSchedule().WithMoves(300), rng, false)
	if rec.open {
		t.Fatal("search ended with an open move")
	}
	if rec.inits != 1 {
		t.Fatalf("Init called %d times", rec.inits)
	}
	if rec.flips != rec.commits+rec.reverts {
		t.Fatalf("flips %d != commits %d + reverts %d", rec.flips, rec.commits, rec.reverts)
	}
	if int64(rec.evals)+1 != res.MemoMisses {
		t.Fatalf("evals %d+1 != memo misses %d", rec.evals, res.MemoMisses)
	}
	if int64(rec.commits) != res.Accepted {
		t.Fatalf("commits %d != accepted %d", rec.commits, res.Accepted)
	}
}

// recordingObjective mirrors the annealer's matrix like a real incremental
// objective (so values stay correct) while asserting protocol order.
type recordingObjective struct {
	obj                                   Objective
	t                                     *testing.T
	m                                     *topo.ConnMatrix
	last                                  int
	open                                  bool
	inits, flips, evals, commits, reverts int
}

func (r *recordingObjective) Init(m *topo.ConnMatrix) float64 {
	r.inits++
	r.m = m.Clone()
	return r.obj(r.m.Row())
}

func (r *recordingObjective) Flip(bit int) {
	if r.open {
		r.t.Fatal("Flip with a move already open")
	}
	r.open = true
	r.flips++
	r.last = bit
	r.m.FlipAt(bit)
}

func (r *recordingObjective) Eval() float64 {
	if !r.open {
		r.t.Fatal("Eval outside a move")
	}
	r.evals++
	return r.obj(r.m.Row())
}

func (r *recordingObjective) Commit() {
	if !r.open {
		r.t.Fatal("Commit without an open move")
	}
	r.open = false
	r.commits++
}

func (r *recordingObjective) Revert() {
	if !r.open {
		r.t.Fatal("Revert without an open move")
	}
	r.open = false
	r.reverts++
	r.m.FlipAt(r.last)
}

// TestSANotSlowerThanFull is the CI perf smoke for the annealing hot path:
// a full default schedule through the incremental objective must not lose to
// the full-evaluation objective. Gated behind EXPLINK_BENCH_SMOKE.
func TestSANotSlowerThanFull(t *testing.T) {
	if os.Getenv("EXPLINK_BENCH_SMOKE") == "" {
		t.Skip("set EXPLINK_BENCH_SMOKE=1 to run the perf smoke")
	}
	const n, c = 16, 4
	run := func(incremental bool) time.Duration {
		m := topo.NewConnMatrix(n, c)
		rng := stats.NewRNG(1)
		m.Randomize(func() bool { return rng.Bool(0.5) })
		t0 := time.Now()
		if incremental {
			MinimizeMove(context.Background(), m, model.NewIncObjective(p), DefaultSchedule(), rng, false)
		} else {
			Minimize(context.Background(), m, model.RowObjective(p), DefaultSchedule(), rng, false)
		}
		return time.Since(t0)
	}
	bestInc, bestFull := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 3; round++ {
		if d := run(true); d < bestInc {
			bestInc = d
		}
		if d := run(false); d < bestFull {
			bestFull = d
		}
	}
	t.Logf("SA n=%d C=%d: incremental %v, full %v (%.2fx)", n, c, bestInc, bestFull,
		float64(bestFull)/float64(bestInc))
	if float64(bestInc) > float64(bestFull)*1.10 {
		t.Fatalf("incremental SA slower than full eval: %v vs %v", bestInc, bestFull)
	}
}
