package anneal

import (
	"sync/atomic"
	"time"

	"explink/internal/obs"
)

// metricSet holds the annealer's exported instruments, shared by every
// concurrent Minimize in the process: counters aggregate, gauges reflect the
// most recent flush. Minimize batches updates at cooldown boundaries (and at
// search end) instead of per move, so instrumentation adds no per-move cost
// beyond what the schedule already pays.
type metricSet struct {
	searches   *obs.Counter    // anneal_searches_total
	searchTime *obs.Timer      // anneal_search_total / anneal_search_seconds_total
	moves      *obs.Counter    // anneal_moves_total
	evals      *obs.Counter    // anneal_evals_total
	memoHits   *obs.Counter    // anneal_memo_hits_total
	memoMisses *obs.Counter    // anneal_memo_misses_total
	accepted   *obs.Counter    // anneal_accepted_total
	uphill     *obs.Counter    // anneal_uphill_total
	temp       *obs.FloatGauge // anneal_temperature
	acceptRate *obs.FloatGauge // anneal_acceptance_ratio
	bestObj    *obs.FloatGauge // anneal_best_objective
}

var annealMet atomic.Pointer[metricSet]

// EnableMetrics registers the annealer's metrics on reg and turns on
// collection for every subsequent Minimize. Rates (evals/sec) fall out of
// anneal_evals_total and anneal_search_seconds_total; the temperature and
// acceptance-ratio gauges trace the most recently flushed search window.
// A nil registry disables metrics again.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		annealMet.Store(nil)
		return
	}
	annealMet.Store(&metricSet{
		searches:   reg.Counter("anneal_searches_total", "simulated-annealing searches run"),
		searchTime: reg.Timer("anneal_search", "simulated-annealing search wall time"),
		moves:      reg.Counter("anneal_moves_total", "SA moves proposed"),
		evals:      reg.Counter("anneal_evals_total", "objective queries (memo hits + misses)"),
		memoHits:   reg.Counter("anneal_memo_hits_total", "objective queries served from the state memo"),
		memoMisses: reg.Counter("anneal_memo_misses_total", "objective queries that paid a full evaluation"),
		accepted:   reg.Counter("anneal_accepted_total", "accepted moves"),
		uphill:     reg.Counter("anneal_uphill_total", "accepted moves with a worse objective"),
		temp:       reg.FloatGauge("anneal_temperature", "SA temperature at the last cooldown flush"),
		acceptRate: reg.FloatGauge("anneal_acceptance_ratio", "accepted/proposed moves of the last flushed search"),
		bestObj:    reg.FloatGauge("anneal_best_objective", "best objective of the last flushed search"),
	})
}

// obsTracker batches Minimize's statistics into the shared metric set,
// flushing the delta since the previous flush.
type obsTracker struct {
	m     *metricSet
	start time.Time
	moves int64 // moves proposed so far

	// counter values as of the previous flush
	flushedMoves, lastEvals, lastHits, lastMisses, lastAccepted, lastUphill int64
}

// newObsTracker returns nil when metrics are disabled; all methods are
// nil-safe so Minimize can call them unconditionally at its (cold) flush
// points.
func newObsTracker() *obsTracker {
	m := annealMet.Load()
	if m == nil {
		return nil
	}
	m.searches.Inc()
	return &obsTracker{m: m, start: time.Now()}
}

// flush publishes the delta between res and the previous flush plus the
// current temperature.
func (t *obsTracker) flush(res *Result, temp float64) {
	if t == nil {
		return
	}
	t.m.moves.Add(t.moves - t.flushedMoves)
	t.m.evals.Add(res.Evals - t.lastEvals)
	t.m.memoHits.Add(res.MemoHits - t.lastHits)
	t.m.memoMisses.Add(res.MemoMisses - t.lastMisses)
	t.m.accepted.Add(res.Accepted - t.lastAccepted)
	t.m.uphill.Add(res.Uphill - t.lastUphill)
	t.flushedMoves, t.lastEvals, t.lastHits = t.moves, res.Evals, res.MemoHits
	t.lastMisses, t.lastAccepted, t.lastUphill = res.MemoMisses, res.Accepted, res.Uphill
	t.m.temp.Set(temp)
	if t.moves > 0 {
		t.m.acceptRate.Set(float64(res.Accepted) / float64(t.moves))
	}
	t.m.bestObj.Set(res.Obj)
}

// done is the final flush plus the search timer observation.
func (t *obsTracker) done(res *Result, temp float64) {
	if t == nil {
		return
	}
	t.flush(res, temp)
	t.m.searchTime.Observe(time.Since(t.start))
}
