package anneal

import (
	"context"
	"math"
	"sort"

	"explink/internal/stats"
	"explink/internal/topo"
)

// Vector-objective simulated annealing: the same single-bit move walk as
// MinimizeMove, but the objective is k-dimensional and "best so far" becomes
// a bounded archive of mutually non-dominated states (AMOSA-style). With k=1
// the acceptance rule degenerates to the scalar one — accept iff Δ ≤ 0, else
// draw against e^{-Δ/T} — consuming the RNG stream identically, so
// MinimizePareto over VectorOf(mo) reproduces MinimizeMove bit for bit
// (pinned by TestMinimizeParetoScalarEquivalence).

// VectorMoveObjective scores the annealer's walk in k objective dimensions
// (lower is better in every dimension). The call protocol is exactly
// MoveObjective's — Init once, then per move one Flip, at most one Eval, and
// exactly one Commit or Revert — with values written into caller-provided
// buffers of length K() so the move loop stays allocation-free on the
// evaluation path.
type VectorMoveObjective interface {
	// K returns the number of objective dimensions; constant for the lifetime
	// of the objective and at least 1.
	K() int
	// Init adopts the initial state and writes its objective vector to dst.
	Init(m *topo.ConnMatrix, dst []float64)
	// Flip applies the single-bit move FlipAt(bit) to the tracked state.
	Flip(bit int)
	// Eval writes the objective vector of the tracked state to dst.
	Eval(dst []float64)
	// Commit accepts the pending move.
	Commit()
	// Revert undoes the pending move.
	Revert()
}

// VectorOf lifts a scalar MoveObjective to the 1-dimensional vector protocol.
// MinimizePareto over the lifted objective follows the exact trajectory
// MinimizeMove would, which is how the scalar search stays the k=1 special
// case rather than a separate algorithm.
func VectorOf(mo MoveObjective) VectorMoveObjective { return &scalarVector{mo: mo} }

type scalarVector struct{ mo MoveObjective }

func (s *scalarVector) K() int                                 { return 1 }
func (s *scalarVector) Init(m *topo.ConnMatrix, dst []float64) { dst[0] = s.mo.Init(m) }
func (s *scalarVector) Flip(bit int)                           { s.mo.Flip(bit) }
func (s *scalarVector) Eval(dst []float64)                     { dst[0] = s.mo.Eval() }
func (s *scalarVector) Commit()                                { s.mo.Commit() }
func (s *scalarVector) Revert()                                { s.mo.Revert() }

// DefaultArchiveCap bounds the non-dominated archive when ParetoOpts leaves
// ArchiveCap unset. Frontiers here are presentation artifacts (a trade-off
// table, a plot), so a few dozen well-spread points beat hundreds of near
// duplicates.
const DefaultArchiveCap = 32

// ParetoOpts configures MinimizePareto beyond the shared Schedule.
type ParetoOpts struct {
	// ArchiveCap bounds the archive size; when an insertion overflows it the
	// most crowded entry is pruned. <= 0 means DefaultArchiveCap.
	ArchiveCap int
	// Scales normalizes per-dimension deltas inside the acceptance rule:
	// the uphill draw uses max_d(Δ_d / Scales[d]) as the scalar Δ, so
	// dimensions with wildly different units (cycles vs watts vs bit-units)
	// share one temperature scale. nil or non-positive entries mean 1. Scales
	// never affect dominance, the archive, or which states are reachable
	// downhill — only the uphill acceptance probability.
	Scales []float64
}

// ParetoEntry is one archived placement with its objective vector.
type ParetoEntry struct {
	Matrix *topo.ConnMatrix
	Row    topo.Row
	Objs   []float64
}

// ParetoResult reports the final archive and the search statistics. The
// counters have the same semantics as Result's; Uphill counts accepted moves
// that were worse in at least one dimension.
type ParetoResult struct {
	// Entries are mutually non-dominated, with pairwise-distinct objective
	// vectors, sorted lexicographically by Objs — a deterministic function of
	// (init, objective, schedule, opts, seed).
	Entries       []ParetoEntry
	Evals         int64
	Accepted      int64
	Uphill        int64
	MemoHits      int64
	MemoMisses    int64
	ArchivePruned int64 // entries evicted by the crowding pruner
}

// archEntry is an archive slot; seq is the insertion sequence number, the
// deterministic tie-break everywhere order matters.
type archEntry struct {
	m    *topo.ConnMatrix
	objs []float64
	seq  int
}

// MinimizePareto runs archive-based multi-objective simulated annealing from
// the given initial matrix; the initial matrix is not modified. Moves,
// cooling, memoization, context cancellation and early stopping follow
// MinimizeMove exactly; what changes is acceptance (a candidate no worse in
// every dimension is accepted outright, otherwise one uphill draw against
// e^{-maxΔ/T} on the scale-normalized worst dimension) and best-state
// tracking (a bounded archive of non-dominated states, pruned by crowding
// distance). StopAfterNoImprove counts moves since the archive last changed.
//
// Determinism: one rng.Intn per move and one rng.Float64 per non-improving
// move, exactly like the scalar loop; the memo and the archive never touch
// the RNG, so same inputs + same seed give the same archive, byte for byte.
func MinimizePareto(ctx context.Context, init *topo.ConnMatrix, vo VectorMoveObjective, opts ParetoOpts, sch Schedule, rng *stats.RNG) ParetoResult {
	if ctx == nil {
		ctx = context.Background()
	}
	k := vo.K()
	archCap := opts.ArchiveCap
	if archCap <= 0 {
		archCap = DefaultArchiveCap
	}
	cur := init.Clone()
	curObjs := make([]float64, k)
	vo.Init(cur, curObjs)
	res := ParetoResult{Evals: 1, MemoMisses: 1}
	track := newObsTracker() // nil (free) unless EnableMetrics was called

	arch := make([]archEntry, 0, archCap+1)
	seq := 0
	arch, _ = archiveInsert(arch, cur, curObjs, &seq)

	bits := cur.Bits()
	if bits == 0 || sch.Moves <= 0 {
		finishPareto(&res, arch, track, sch.T0)
		return res
	}

	memo := make(map[string][]float64)
	keyBuf := cur.AppendKey(nil)
	memo[string(keyBuf)] = append([]float64(nil), curObjs...)

	candObjs := make([]float64, k)
	temp := sch.T0
	sinceImprove := 0
	for move := 1; move <= sch.Moves; move++ {
		if sch.StopAfterNoImprove > 0 && sinceImprove >= sch.StopAfterNoImprove {
			break
		}
		if ctx.Err() != nil {
			break
		}
		if track != nil {
			track.moves++
		}
		i := rng.Intn(bits)
		cur.FlipAt(i)
		vo.Flip(i)
		keyBuf[i>>3] ^= 1 << (i & 7)
		cand := candObjs
		if hit, ok := memo[string(keyBuf)]; ok {
			res.MemoHits++
			cand = hit
		} else {
			vo.Eval(candObjs)
			res.MemoMisses++
			if len(memo) < memoCap {
				memo[string(keyBuf)] = append([]float64(nil), candObjs...)
			}
		}
		res.Evals++

		// Acceptance: downhill-or-flat in every dimension is free; otherwise
		// one draw against the worst scale-normalized uphill delta. For k=1
		// this is exactly the scalar rule, same RNG consumption.
		noWorse := true
		maxDelta := math.Inf(-1)
		for d := 0; d < k; d++ {
			delta := cand[d] - curObjs[d]
			if delta > 0 {
				noWorse = false
			}
			if s := scaleAt(opts.Scales, d); s != 1 {
				delta /= s
			}
			if delta > maxDelta {
				maxDelta = delta
			}
		}
		accept := noWorse
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp(-maxDelta/temp)
		}
		sinceImprove++
		if accept {
			vo.Commit()
			res.Accepted++
			if !noWorse {
				res.Uphill++
			}
			copy(curObjs, cand)
			var inserted bool
			var pruned int
			arch, inserted = archiveInsert(arch, cur, curObjs, &seq)
			if inserted {
				sinceImprove = 0
				if len(arch) > archCap {
					arch, pruned = archivePrune(arch, archCap)
					res.ArchivePruned += int64(pruned)
				}
			}
		} else {
			cur.FlipAt(i)
			vo.Revert()
			keyBuf[i>>3] ^= 1 << (i & 7)
		}

		if sch.CoolEvery > 0 && move%sch.CoolEvery == 0 && sch.CoolDiv > 0 {
			temp /= sch.CoolDiv
			track.flush(paretoProxy(&res, arch), temp)
		}
	}
	finishPareto(&res, arch, track, temp)
	return res
}

// scaleAt returns the acceptance scale for dimension d: Scales[d] when it is
// present, positive and finite, else 1.
func scaleAt(scales []float64, d int) float64 {
	if d >= len(scales) {
		return 1
	}
	s := scales[d]
	if !(s > 0) || math.IsInf(s, 1) {
		return 1
	}
	return s
}

// archiveInsert adds state (cur, objs) to the archive unless an existing
// entry weakly dominates it (equal vectors included — the archive never holds
// duplicate objective vectors). On insertion, entries the candidate
// dominates are dropped and the matrix and vector are copied, so the archive
// owns its state. Reports whether the archive changed.
func archiveInsert(arch []archEntry, cur *topo.ConnMatrix, objs []float64, seq *int) ([]archEntry, bool) {
	for _, e := range arch {
		if stats.WeaklyDominates(e.objs, objs) {
			return arch, false
		}
	}
	keep := arch[:0]
	for _, e := range arch {
		if stats.Dominates(objs, e.objs) {
			continue
		}
		keep = append(keep, e)
	}
	*seq++
	return append(keep, archEntry{
		m:    cur.Clone(),
		objs: append([]float64(nil), objs...),
		seq:  *seq,
	}), true
}

// archivePrune evicts most-crowded entries (smallest NSGA-II crowding
// distance; ties evict the newest entry) until the archive fits cap.
// Extreme entries per dimension carry infinite distance, so the frontier's
// endpoints always survive.
func archivePrune(arch []archEntry, archCap int) ([]archEntry, int) {
	pruned := 0
	for len(arch) > archCap {
		d := crowding(arch)
		victim := 0
		for i := 1; i < len(arch); i++ {
			if d[i] < d[victim] || (d[i] == d[victim] && arch[i].seq > arch[victim].seq) {
				victim = i
			}
		}
		arch = append(arch[:victim], arch[victim+1:]...)
		pruned++
	}
	return arch, pruned
}

// crowding returns the NSGA-II crowding distance of every archive entry: per
// dimension, entries are sorted by value (insertion order breaks ties) and
// each interior entry accumulates the normalized gap between its neighbors;
// the two boundary entries get +Inf.
func crowding(arch []archEntry) []float64 {
	n := len(arch)
	d := make([]float64, n)
	if n <= 2 {
		for i := range d {
			d[i] = math.Inf(1)
		}
		return d
	}
	idx := make([]int, n)
	k := len(arch[0].objs)
	for dim := 0; dim < k; dim++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			va, vb := arch[idx[a]].objs[dim], arch[idx[b]].objs[dim]
			if va != vb {
				return va < vb
			}
			return arch[idx[a]].seq < arch[idx[b]].seq
		})
		lo, hi := arch[idx[0]].objs[dim], arch[idx[n-1]].objs[dim]
		d[idx[0]] = math.Inf(1)
		d[idx[n-1]] = math.Inf(1)
		if span := hi - lo; span > 0 {
			for i := 1; i < n-1; i++ {
				d[idx[i]] += (arch[idx[i+1]].objs[dim] - arch[idx[i-1]].objs[dim]) / span
			}
		}
	}
	return d
}

// finishPareto materializes the sorted entry list and flushes observability.
func finishPareto(res *ParetoResult, arch []archEntry, track *obsTracker, temp float64) {
	sort.Slice(arch, func(a, b int) bool {
		return stats.CompareLex(arch[a].objs, arch[b].objs) < 0
	})
	res.Entries = make([]ParetoEntry, len(arch))
	for i, e := range arch {
		res.Entries[i] = ParetoEntry{Matrix: e.m, Row: e.m.Row(), Objs: e.objs}
	}
	track.done(paretoProxy(res, arch), temp)
}

// paretoProxy adapts the pareto counters to the scalar Result shape the
// shared obsTracker flushes; the best-objective gauge reports the archive's
// lexicographic minimum in dimension 0.
func paretoProxy(res *ParetoResult, arch []archEntry) *Result {
	best := math.Inf(1)
	for _, e := range arch {
		if e.objs[0] < best {
			best = e.objs[0]
		}
	}
	return &Result{
		Obj:        best,
		Evals:      res.Evals,
		Accepted:   res.Accepted,
		Uphill:     res.Uphill,
		MemoHits:   res.MemoHits,
		MemoMisses: res.MemoMisses,
	}
}
