package anneal

import (
	"math"

	"explink/internal/stats"
	"explink/internal/topo"
)

// This file implements the naive candidate generator that Section 4.4.2
// argues against: annealing directly over the raw link space, where each
// move adds, deletes, stretches, or shortens a randomly selected express
// link. Such candidates frequently violate the cross-section limit and must
// be rejected, wasting moves — the inefficiency the connection-matrix space
// eliminates. It exists as an ablation baseline (see exp.AblationGenerator).

// NaiveResult reports a raw-space annealing run.
type NaiveResult struct {
	Row      topo.Row
	Obj      float64
	Evals    int64 // objective evaluations (valid candidates only)
	Invalid  int64 // generated candidates that violated the link limit
	Moves    int64 // total moves consumed (valid + invalid)
	Accepted int64
}

// MinimizeNaive anneals over the raw span space under link limit c, starting
// from init (which must satisfy the limit). Every generated candidate that
// violates the limit costs a move but no evaluation, mirroring how a naive
// implementation would discard it after the feasibility check.
func MinimizeNaive(init topo.Row, c int, obj Objective, sch Schedule, rng *stats.RNG) NaiveResult {
	if err := init.Validate(c); err != nil {
		panic("anneal: naive annealing seeded with an infeasible row: " + err.Error())
	}
	cur := init.Clone()
	curObj := obj(cur)
	res := NaiveResult{Row: cur.Clone(), Obj: curObj, Evals: 1}

	temp := sch.T0
	for move := 1; move <= sch.Moves; move++ {
		res.Moves++
		cand, ok := naiveMove(cur, rng)
		if !ok || cand.Validate(c) != nil {
			res.Invalid++
		} else {
			candObj := obj(cand)
			res.Evals++
			delta := candObj - curObj
			accept := delta <= 0
			if !accept && temp > 0 {
				accept = rng.Float64() < math.Exp(-delta/temp)
			}
			if accept {
				res.Accepted++
				cur, curObj = cand, candObj
				if candObj < res.Obj {
					res.Obj = candObj
					res.Row = cand.Clone()
				}
			}
		}
		if sch.CoolEvery > 0 && move%sch.CoolEvery == 0 && sch.CoolDiv > 0 {
			temp /= sch.CoolDiv
		}
	}
	res.Row = res.Row.Canonical()
	return res
}

// naiveMove applies one random add/delete/stretch/shorten edit. It returns
// ok=false when the edit cannot even be expressed (e.g. deleting from an
// empty placement), which also counts as a wasted move.
func naiveMove(cur topo.Row, rng *stats.RNG) (topo.Row, bool) {
	n := cur.N
	switch rng.Intn(4) {
	case 0: // add a uniformly random span
		if n < 3 {
			return topo.Row{}, false
		}
		from := rng.Intn(n - 2)
		to := from + 2 + rng.Intn(n-from-2)
		return cur.Add(topo.Span{From: from, To: to}), true
	case 1: // delete a random span
		if len(cur.Express) == 0 {
			return topo.Row{}, false
		}
		i := rng.Intn(len(cur.Express))
		out := cur.Clone()
		out.Express = append(out.Express[:i], out.Express[i+1:]...)
		return out, true
	case 2: // stretch a random endpoint outward
		if len(cur.Express) == 0 {
			return topo.Row{}, false
		}
		i := rng.Intn(len(cur.Express))
		out := cur.Clone()
		s := out.Express[i]
		if rng.Bool(0.5) {
			s.From--
		} else {
			s.To++
		}
		if !s.Valid(n) {
			return topo.Row{}, false
		}
		out.Express[i] = s
		return out, true
	default: // shorten a random endpoint inward
		if len(cur.Express) == 0 {
			return topo.Row{}, false
		}
		i := rng.Intn(len(cur.Express))
		out := cur.Clone()
		s := out.Express[i]
		if rng.Bool(0.5) {
			s.From++
		} else {
			s.To--
		}
		if !s.Valid(n) {
			return topo.Row{}, false
		}
		out.Express[i] = s
		return out, true
	}
}
