// Package anneal implements the simulated-annealing search of Section 4.4:
// the state is a connection matrix (so every candidate is feasible by
// construction), the candidate generator flips one uniformly random
// connection point per move, acceptance is exponential (e^{-ΔL/T}), and the
// cooling schedule divides the temperature by a constant every fixed number
// of moves (Table 1).
package anneal

import (
	"context"
	"math"

	"explink/internal/stats"
	"explink/internal/topo"
)

// Schedule is the SA parameter set of Table 1.
type Schedule struct {
	T0        float64 // initial temperature, in cycles of ΔL_avg
	Moves     int     // total number of moves m
	CoolEvery int     // moves between cooldowns, m_c
	CoolDiv   float64 // cooldown scale S_c (T <- T / S_c)
	// StopAfterNoImprove ends the search early once this many consecutive
	// moves fail to improve the best state (0 disables early stopping).
	// Useful when measuring convergence runtime rather than fixed budgets.
	StopAfterNoImprove int
}

// DefaultSchedule returns the paper's Table 1 parameters: T0 = 10 cycles,
// m = 10^4 moves, S_c = 2, m_c = 10^3.
func DefaultSchedule() Schedule {
	return Schedule{T0: 10, Moves: 10000, CoolEvery: 1000, CoolDiv: 2}
}

// WithMoves returns a copy of the schedule with a different move budget,
// keeping the cooldown cadence proportional so shorter runs still cool.
func (s Schedule) WithMoves(moves int) Schedule {
	out := s
	out.Moves = moves
	if s.Moves > 0 && s.CoolEvery > 0 {
		ratio := float64(moves) / float64(s.Moves)
		ce := int(math.Round(float64(s.CoolEvery) * ratio))
		if ce < 1 {
			ce = 1
		}
		out.CoolEvery = ce
	}
	return out
}

// Objective scores a decoded placement; lower is better. For P̃(n, C) it is
// the average row head latency (serialization is constant at fixed C).
type Objective func(topo.Row) float64

// Point records the best objective seen after a number of evaluations, used
// to draw the quality-vs-runtime curves of Fig. 7.
type Point struct {
	Evals int64
	Best  float64
}

// Result reports the best state found and the search statistics.
type Result struct {
	Matrix   *topo.ConnMatrix
	Row      topo.Row
	Obj      float64
	Evals    int64 // objective queries (includes the initial one)
	Accepted int64 // accepted moves
	Uphill   int64 // accepted moves with ΔL > 0
	// MemoHits counts objective queries served from the state memo (revisited
	// bit patterns, mostly flip/revert churn); MemoMisses counts queries that
	// paid a full routing evaluation. Evals == MemoHits + MemoMisses, so
	// MemoMisses is the Fig. 7-style measure of actual work done.
	MemoHits   int64
	MemoMisses int64
	History    []Point
}

// memoCap bounds the objective memo so pathological schedules cannot grow it
// without limit; at the paper's 10⁴ moves the cap is never approached.
const memoCap = 1 << 20

// Minimize runs simulated annealing from the given initial matrix. The
// initial matrix is not modified. When the matrix has no connection points
// (C = 1 or n <= 2) the initial state is returned unchanged. Pass record =
// true to collect the best-so-far history at every improvement.
//
// Cancelling ctx ends the search at the next move boundary; the best state
// found so far is returned (anytime semantics — the caller decides whether a
// truncated search is an error, see core.SolveRow).
//
// Objective values are memoized by connection-matrix bit pattern: a move that
// revisits a known state (typically the flip/revert churn around the current
// state) reuses the cached value instead of re-routing, and skips the matrix
// decode entirely. The memo never changes the search trajectory — revisited
// states score identically either way — so results are bit-for-bit equal to
// the unmemoized search.
func Minimize(ctx context.Context, init *topo.ConnMatrix, obj Objective, sch Schedule, rng *stats.RNG, record bool) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	cur := init.Clone()
	curRow := cur.Row()
	curObj := obj(curRow)
	res := Result{
		Matrix:     cur.Clone(),
		Row:        curRow,
		Obj:        curObj,
		Evals:      1,
		MemoMisses: 1,
	}
	if record {
		res.History = append(res.History, Point{Evals: 1, Best: curObj})
	}
	track := newObsTracker() // nil (free) unless EnableMetrics was called
	bits := cur.Bits()
	if bits == 0 || sch.Moves <= 0 {
		track.done(&res, sch.T0)
		return res
	}

	memo := make(map[string]float64)
	keyBuf := cur.AppendKey(nil)
	memo[string(keyBuf)] = curObj

	temp := sch.T0
	sinceImprove := 0
	for move := 1; move <= sch.Moves; move++ {
		if sch.StopAfterNoImprove > 0 && sinceImprove >= sch.StopAfterNoImprove {
			break
		}
		if ctx.Err() != nil {
			break // every move pays an objective eval, so per-move polling is cheap
		}
		if track != nil {
			track.moves++
		}
		i := rng.Intn(bits)
		cur.FlipAt(i)
		keyBuf = cur.AppendKey(keyBuf[:0])
		candObj, hit := memo[string(keyBuf)]
		if hit {
			res.MemoHits++
		} else {
			candObj = obj(cur.Row())
			res.MemoMisses++
			if len(memo) < memoCap {
				memo[string(keyBuf)] = candObj
			}
		}
		res.Evals++

		delta := candObj - curObj
		accept := delta <= 0
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp(-delta/temp)
		}
		sinceImprove++
		if accept {
			res.Accepted++
			if delta > 0 {
				res.Uphill++
			}
			curObj = candObj
			if candObj < res.Obj {
				res.Obj = candObj
				res.Matrix = cur.Clone()
				res.Row = cur.Row()
				sinceImprove = 0
				if record {
					res.History = append(res.History, Point{Evals: res.Evals, Best: candObj})
				}
			}
		} else {
			cur.FlipAt(i) // revert
		}

		if sch.CoolEvery > 0 && move%sch.CoolEvery == 0 && sch.CoolDiv > 0 {
			temp /= sch.CoolDiv
			track.flush(&res, temp) // cooldowns are the metrics cadence
		}
	}
	track.done(&res, temp)
	return res
}
