// Package anneal implements the simulated-annealing search of Section 4.4:
// the state is a connection matrix (so every candidate is feasible by
// construction), the candidate generator flips one uniformly random
// connection point per move, acceptance is exponential (e^{-ΔL/T}), and the
// cooling schedule divides the temperature by a constant every fixed number
// of moves (Table 1).
package anneal

import (
	"context"
	"math"

	"explink/internal/stats"
	"explink/internal/topo"
)

// Schedule is the SA parameter set of Table 1.
type Schedule struct {
	T0        float64 // initial temperature, in cycles of ΔL_avg
	Moves     int     // total number of moves m
	CoolEvery int     // moves between cooldowns, m_c
	CoolDiv   float64 // cooldown scale S_c (T <- T / S_c)
	// StopAfterNoImprove ends the search early once this many consecutive
	// moves fail to improve the best state (0 disables early stopping).
	// Useful when measuring convergence runtime rather than fixed budgets.
	StopAfterNoImprove int
}

// DefaultSchedule returns the paper's Table 1 parameters: T0 = 10 cycles,
// m = 10^4 moves, S_c = 2, m_c = 10^3.
func DefaultSchedule() Schedule {
	return Schedule{T0: 10, Moves: 10000, CoolEvery: 1000, CoolDiv: 2}
}

// WithMoves returns a copy of the schedule with a different move budget,
// keeping the cooldown cadence proportional so shorter runs still cool.
func (s Schedule) WithMoves(moves int) Schedule {
	out := s
	out.Moves = moves
	if s.Moves > 0 && s.CoolEvery > 0 {
		ratio := float64(moves) / float64(s.Moves)
		ce := int(math.Round(float64(s.CoolEvery) * ratio))
		if ce < 1 {
			ce = 1
		}
		out.CoolEvery = ce
	}
	return out
}

// Objective scores a decoded placement; lower is better. For P̃(n, C) it is
// the average row head latency (serialization is constant at fixed C).
type Objective func(topo.Row) float64

// MoveObjective is the move-aware counterpart of Objective: instead of
// scoring arbitrary rows from scratch, it follows the annealer's walk through
// the connection-matrix space move by move, which lets implementations (the
// route.Incremental-backed objectives in internal/model) re-route only the
// dirty region of each single-bit candidate.
//
// The annealer drives it with a strict protocol: Init once with the initial
// matrix, then for every move exactly one Flip followed by either Commit
// (move accepted) or Revert (move rejected), with at most one Eval in
// between. Eval is only called on memo misses, so implementations must keep
// their state in step inside Flip/Commit/Revert, not inside Eval. The matrix
// passed to Init is owned by the annealer and must not be retained or
// modified.
//
// Implementations must return values bit-identical to the equivalent
// Objective on the decoded row; the annealer's trajectory, memo behavior and
// result are then bit-for-bit independent of which interface scored it.
type MoveObjective interface {
	// Init adopts the initial state and returns its objective value.
	Init(m *topo.ConnMatrix) float64
	// Flip applies the single-bit move FlipAt(bit) to the tracked state.
	Flip(bit int)
	// Eval returns the objective value of the tracked state.
	Eval() float64
	// Commit accepts the pending move.
	Commit()
	// Revert undoes the pending move.
	Revert()
}

// funcObjective adapts a plain Objective to the move protocol: it tracks
// nothing and decodes the annealer's current matrix on every evaluation,
// exactly like the pre-move-aware search loop did.
type funcObjective struct {
	obj Objective
	m   *topo.ConnMatrix
}

func (f *funcObjective) Init(m *topo.ConnMatrix) float64 {
	f.m = m
	return f.obj(m.Row())
}
func (f *funcObjective) Flip(int)      {}
func (f *funcObjective) Eval() float64 { return f.obj(f.m.Row()) }
func (f *funcObjective) Commit()       {}
func (f *funcObjective) Revert()       {}

// Point records the best objective seen after a number of evaluations, used
// to draw the quality-vs-runtime curves of Fig. 7.
type Point struct {
	Evals int64
	Best  float64
}

// Result reports the best state found and the search statistics.
type Result struct {
	Matrix   *topo.ConnMatrix
	Row      topo.Row
	Obj      float64
	Evals    int64 // objective queries (includes the initial one)
	Accepted int64 // accepted moves
	Uphill   int64 // accepted moves with ΔL > 0
	// MemoHits counts objective queries served from the state memo (revisited
	// bit patterns, mostly flip/revert churn); MemoMisses counts queries that
	// paid a full routing evaluation. Evals == MemoHits + MemoMisses, so
	// MemoMisses is the Fig. 7-style measure of actual work done.
	MemoHits   int64
	MemoMisses int64
	History    []Point
}

// memoCap bounds the objective memo so pathological schedules cannot grow it
// without limit; at the paper's 10⁴ moves the cap is never approached.
const memoCap = 1 << 20

// Minimize runs simulated annealing from the given initial matrix. The
// initial matrix is not modified. When the matrix has no connection points
// (C = 1 or n <= 2) the initial state is returned unchanged. Pass record =
// true to collect the best-so-far history at every improvement.
//
// Cancelling ctx ends the search at the next move boundary; the best state
// found so far is returned (anytime semantics — the caller decides whether a
// truncated search is an error, see core.SolveRow).
//
// Objective values are memoized by connection-matrix bit pattern: a move that
// revisits a known state (typically the flip/revert churn around the current
// state) reuses the cached value instead of re-routing, and skips the matrix
// decode entirely. The memo never changes the search trajectory — revisited
// states score identically either way — so results are bit-for-bit equal to
// the unmemoized search.
func Minimize(ctx context.Context, init *topo.ConnMatrix, obj Objective, sch Schedule, rng *stats.RNG, record bool) Result {
	return MinimizeMove(ctx, init, &funcObjective{obj: obj}, sch, rng, record)
}

// MinimizeMove is Minimize with a move-aware objective: identical search,
// memo and result semantics, but the objective is informed of every flip,
// commit and revert so it can evaluate candidates incrementally instead of
// re-routing the whole row per memo miss. With bit-identical objective
// values (the MoveObjective contract) the two entry points produce
// bit-identical results.
//
// The best-so-far state lives in a single reusable buffer that improvements
// copy into; the result matrix and row are materialized once at return
// instead of cloning inside the accept path.
func MinimizeMove(ctx context.Context, init *topo.ConnMatrix, mo MoveObjective, sch Schedule, rng *stats.RNG, record bool) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	cur := init.Clone()
	curObj := mo.Init(cur)
	res := Result{
		Obj:        curObj,
		Evals:      1,
		MemoMisses: 1,
	}
	if record {
		res.History = append(res.History, Point{Evals: 1, Best: curObj})
	}
	track := newObsTracker() // nil (free) unless EnableMetrics was called
	bits := cur.Bits()
	best := cur.Clone() // best-so-far buffer, reused across improvements
	if bits == 0 || sch.Moves <= 0 {
		res.Matrix = best
		res.Row = best.Row()
		track.done(&res, sch.T0)
		return res
	}

	memo := make(map[string]float64)
	keyBuf := cur.AppendKey(nil)
	memo[string(keyBuf)] = curObj

	temp := sch.T0
	sinceImprove := 0
	for move := 1; move <= sch.Moves; move++ {
		if sch.StopAfterNoImprove > 0 && sinceImprove >= sch.StopAfterNoImprove {
			break
		}
		if ctx.Err() != nil {
			break // every move pays an objective eval, so per-move polling is cheap
		}
		if track != nil {
			track.moves++
		}
		i := rng.Intn(bits)
		cur.FlipAt(i)
		mo.Flip(i)
		// Maintain the packed memo key incrementally: AppendKey packs bit i
		// into byte i>>3 at position i&7, so a single-bit move is one XOR
		// rather than a full repack. The reject branch undoes it below.
		keyBuf[i>>3] ^= 1 << (i & 7)
		candObj, hit := memo[string(keyBuf)]
		if hit {
			res.MemoHits++
		} else {
			candObj = mo.Eval()
			res.MemoMisses++
			if len(memo) < memoCap {
				memo[string(keyBuf)] = candObj
			}
		}
		res.Evals++

		delta := candObj - curObj
		accept := delta <= 0
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp(-delta/temp)
		}
		sinceImprove++
		if accept {
			mo.Commit()
			res.Accepted++
			if delta > 0 {
				res.Uphill++
			}
			curObj = candObj
			if candObj < res.Obj {
				res.Obj = candObj
				best.Copy(cur)
				sinceImprove = 0
				if record {
					res.History = append(res.History, Point{Evals: res.Evals, Best: candObj})
				}
			}
		} else {
			cur.FlipAt(i) // revert
			mo.Revert()
			keyBuf[i>>3] ^= 1 << (i & 7)
		}

		if sch.CoolEvery > 0 && move%sch.CoolEvery == 0 && sch.CoolDiv > 0 {
			temp /= sch.CoolDiv
			track.flush(&res, temp) // cooldowns are the metrics cadence
		}
	}
	res.Matrix = best
	res.Row = best.Row()
	track.done(&res, temp)
	return res
}
