package anneal_test

import (
	"context"
	"fmt"
	"testing"

	"explink/internal/anneal"
	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
)

// BenchmarkMinimize times a full default SA schedule (10^4 moves) on the
// connection-matrix search space, the per-line unit of work behind
// core.SolveRow and core.SolveWeighted. The "full" variant re-routes every
// memo miss from scratch (the plain Objective fallback); the numbers backing
// BENCH_solver.json compare it against the incremental path at the same
// problem sizes.
func BenchmarkMinimize(b *testing.B) {
	for _, size := range []struct{ n, c int }{{8, 3}, {16, 4}, {32, 4}} {
		p := model.DefaultParams()
		b.Run(fmt.Sprintf("full/n%d_C%d", size.n, size.c), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				obj := model.RowObjective(p)
				m := topo.NewConnMatrix(size.n, size.c)
				rng := stats.NewRNG(1)
				m.Randomize(func() bool { return rng.Bool(0.5) })
				anneal.Minimize(context.Background(), m, obj, anneal.DefaultSchedule(), rng, false)
			}
		})
		b.Run(fmt.Sprintf("inc/n%d_C%d", size.n, size.c), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := topo.NewConnMatrix(size.n, size.c)
				rng := stats.NewRNG(1)
				m.Randomize(func() bool { return rng.Bool(0.5) })
				anneal.MinimizeMove(context.Background(), m, model.NewIncObjective(p), anneal.DefaultSchedule(), rng, false)
			}
		})
	}
}
