package anneal

import (
	"context"
	"math"
	"reflect"
	"testing"

	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
)

// TestMinimizeParetoScalarEquivalence pins the tentpole refactor contract:
// the scalar search is the k=1 special case of the vector search, not a
// sibling algorithm. MinimizePareto over VectorOf(mo) must consume the RNG
// stream identically to MinimizeMove and land on the same best state with
// bit-identical objective and counters.
func TestMinimizeParetoScalarEquivalence(t *testing.T) {
	cases := []struct {
		n, c  int
		seed  uint64
		moves int
	}{
		{8, 3, 1, 2000},
		{8, 3, 7, 2000},
		{12, 4, 42, 3000},
		{16, 2, 9, 1500},
		{6, 6, 5, 1000},
	}
	for _, tc := range cases {
		init := topo.NewConnMatrix(tc.n, tc.c)
		seedRNG := stats.NewRNG(tc.seed)
		init.Randomize(func() bool { return seedRNG.Bool(0.5) })
		sch := DefaultSchedule().WithMoves(tc.moves)

		scalar := MinimizeMove(context.Background(), init,
			model.NewIncObjective(p), sch, stats.NewRNG(tc.seed), false)
		vec := MinimizePareto(context.Background(), init,
			VectorOf(model.NewIncObjective(p)), ParetoOpts{}, sch, stats.NewRNG(tc.seed))

		if len(vec.Entries) != 1 {
			t.Fatalf("n=%d c=%d: k=1 archive holds %d entries, want 1", tc.n, tc.c, len(vec.Entries))
		}
		e := vec.Entries[0]
		if e.Objs[0] != scalar.Obj {
			t.Errorf("n=%d c=%d: pareto best %v != scalar best %v", tc.n, tc.c, e.Objs[0], scalar.Obj)
		}
		if !e.Row.Equal(scalar.Row) {
			t.Errorf("n=%d c=%d: pareto row %v != scalar row %v", tc.n, tc.c, e.Row, scalar.Row)
		}
		if vec.Evals != scalar.Evals || vec.Accepted != scalar.Accepted ||
			vec.Uphill != scalar.Uphill || vec.MemoHits != scalar.MemoHits ||
			vec.MemoMisses != scalar.MemoMisses {
			t.Errorf("n=%d c=%d: counters diverge: pareto {E%d A%d U%d H%d M%d} scalar {E%d A%d U%d H%d M%d}",
				tc.n, tc.c,
				vec.Evals, vec.Accepted, vec.Uphill, vec.MemoHits, vec.MemoMisses,
				scalar.Evals, scalar.Accepted, scalar.Uphill, scalar.MemoHits, scalar.MemoMisses)
		}
	}
}

// testVector is a deterministic synthetic 2-D objective over the matrix bit
// pattern: dimension 0 rewards fewer set bits, dimension 1 rewards more — a
// pure trade-off, so the non-dominated set is large and exercises the
// archive.
type testVector struct {
	m       *topo.ConnMatrix
	pending int
}

func (o *testVector) K() int { return 2 }
func (o *testVector) Init(m *topo.ConnMatrix, dst []float64) {
	o.m = m
	o.eval(dst)
}
func (o *testVector) Flip(bit int)       { o.pending = bit }
func (o *testVector) Eval(dst []float64) { o.eval(dst) }
func (o *testVector) Commit()            {}
func (o *testVector) Revert()            {}
func (o *testVector) eval(dst []float64) {
	ones := 0
	key := o.m.AppendKey(nil)
	for _, b := range key {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	dst[0] = float64(ones)
	dst[1] = float64(o.m.Bits() - ones)
}

// TestMinimizeParetoArchiveInvariants checks the archive contract on a
// genuinely multi-objective search: entries mutually non-dominated, distinct
// objective vectors, lexicographically sorted, size within the cap, and rows
// decoding their matrices.
func TestMinimizeParetoArchiveInvariants(t *testing.T) {
	init := topo.NewConnMatrix(10, 4)
	rng := stats.NewRNG(11)
	init.Randomize(func() bool { return rng.Bool(0.5) })
	res := MinimizePareto(context.Background(), init, &testVector{},
		ParetoOpts{ArchiveCap: 8}, DefaultSchedule().WithMoves(2000), stats.NewRNG(11))

	if len(res.Entries) == 0 || len(res.Entries) > 8 {
		t.Fatalf("archive size %d outside (0, 8]", len(res.Entries))
	}
	for i, a := range res.Entries {
		if !a.Row.Equal(a.Matrix.Row()) {
			t.Errorf("entry %d: row does not decode matrix", i)
		}
		for j, b := range res.Entries {
			if i != j && stats.WeaklyDominates(a.Objs, b.Objs) {
				t.Errorf("entry %d weakly dominates entry %d: %v vs %v", i, j, a.Objs, b.Objs)
			}
		}
		if i > 0 && stats.CompareLex(res.Entries[i-1].Objs, a.Objs) >= 0 {
			t.Errorf("entries not lex-sorted at %d: %v !< %v", i, res.Entries[i-1].Objs, a.Objs)
		}
	}
	// The pure trade-off objective forces more than 8 non-dominated states
	// through a 2000-move walk, so the pruner must have fired.
	if res.ArchivePruned == 0 {
		t.Error("expected the crowding pruner to fire on a capped archive")
	}
	// Crowding keeps the frontier's endpoints: the best-seen value in each
	// dimension must still be present.
	for d := 0; d < 2; d++ {
		best := math.Inf(1)
		for _, e := range res.Entries {
			if e.Objs[d] < best {
				best = e.Objs[d]
			}
		}
		if math.IsInf(best, 1) {
			t.Fatalf("no finite values in dim %d", d)
		}
	}
}

// TestMinimizeParetoDeterminism: same inputs + same seed → deep-equal
// archives, including entry order.
func TestMinimizeParetoDeterminism(t *testing.T) {
	run := func() ParetoResult {
		init := topo.NewConnMatrix(10, 4)
		rng := stats.NewRNG(3)
		init.Randomize(func() bool { return rng.Bool(0.5) })
		return MinimizePareto(context.Background(), init, &testVector{},
			ParetoOpts{ArchiveCap: 6}, DefaultSchedule().WithMoves(1500), stats.NewRNG(3))
	}
	a, b := run(), run()
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if !reflect.DeepEqual(a.Entries[i].Objs, b.Entries[i].Objs) {
			t.Errorf("entry %d objs differ: %v vs %v", i, a.Entries[i].Objs, b.Entries[i].Objs)
		}
		if !a.Entries[i].Row.Equal(b.Entries[i].Row) {
			t.Errorf("entry %d rows differ", i)
		}
	}
	if a.Evals != b.Evals || a.Accepted != b.Accepted || a.ArchivePruned != b.ArchivePruned {
		t.Errorf("counters differ: %+v vs %+v", a, b)
	}
}

// TestMinimizeParetoNoMoves pins the degenerate cases: an empty move budget
// or a zero-bit matrix returns an archive holding exactly the initial state.
func TestMinimizeParetoNoMoves(t *testing.T) {
	init := topo.NewConnMatrix(8, 3)
	rng := stats.NewRNG(2)
	init.Randomize(func() bool { return rng.Bool(0.5) })
	res := MinimizePareto(context.Background(), init, &testVector{},
		ParetoOpts{}, Schedule{T0: 10, Moves: 0}, stats.NewRNG(2))
	if len(res.Entries) != 1 || res.Evals != 1 {
		t.Fatalf("zero-move search: %d entries, %d evals", len(res.Entries), res.Evals)
	}
	if !res.Entries[0].Row.Equal(init.Row()) {
		t.Fatal("zero-move search did not return the initial state")
	}

	c1 := topo.NewConnMatrix(8, 1) // no connection points
	res = MinimizePareto(context.Background(), c1, &testVector{},
		ParetoOpts{}, DefaultSchedule(), stats.NewRNG(2))
	if len(res.Entries) != 1 {
		t.Fatalf("bitless search returned %d entries", len(res.Entries))
	}
}

// TestMinimizeParetoCancel: a pre-cancelled context returns immediately with
// the initial archive (anytime semantics, like the scalar loop).
func TestMinimizeParetoCancel(t *testing.T) {
	init := topo.NewConnMatrix(8, 3)
	rng := stats.NewRNG(4)
	init.Randomize(func() bool { return rng.Bool(0.5) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := MinimizePareto(ctx, init, &testVector{}, ParetoOpts{}, DefaultSchedule(), stats.NewRNG(4))
	if res.Evals != 1 || len(res.Entries) != 1 {
		t.Fatalf("cancelled search did work: %d evals, %d entries", res.Evals, len(res.Entries))
	}
}
