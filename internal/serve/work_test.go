package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"explink/internal/api"
	"explink/internal/runctl"
)

// stubCoordinator implements WorkCoordinator with canned behaviour, so the
// endpoint plumbing is testable without pulling internal/fabric into serve's
// dependency graph (the fabric end-to-end HTTP tests live in fabric).
type stubCoordinator struct {
	leases     int
	heartbeats int
	completes  []api.WorkCompleteRequest
}

func (s *stubCoordinator) Lease(_ context.Context, worker string) (api.WorkLeaseResponse, error) {
	s.leases++
	if worker == "reject-me" {
		return api.WorkLeaseResponse{}, fmt.Errorf("no units for you: %w", runctl.ErrConfig)
	}
	return api.WorkLeaseResponse{
		Status:     api.WorkStatusUnit,
		Unit:       &api.WorkUnit{Seq: 3, Name: "fig10", Quick: true, Seed: 1, Replicas: 1},
		Lease:      "lease-1",
		TTLSeconds: 15,
		SuiteID:    "deadbeef",
	}, nil
}

func (s *stubCoordinator) Heartbeat(context.Context, string) (api.WorkHeartbeatResponse, error) {
	s.heartbeats++
	return api.WorkHeartbeatResponse{Status: api.WorkStatusOK, TTLSeconds: 15}, nil
}

func (s *stubCoordinator) Complete(_ context.Context, req api.WorkCompleteRequest) (api.WorkCompleteResponse, error) {
	if err := req.Validate(); err != nil {
		return api.WorkCompleteResponse{}, err
	}
	s.completes = append(s.completes, req)
	return api.WorkCompleteResponse{Status: api.WorkStatusAccepted, Done: true}, nil
}

func TestWorkEndpoints(t *testing.T) {
	coord := &stubCoordinator{}
	_, ts := newTestServer(t, Config{Coordinator: coord})

	// Lease: the unit round-trips exactly.
	code, buf := post(t, ts.URL+"/v1/work/lease", `{"worker":"w0"}`)
	if code != http.StatusOK {
		t.Fatalf("lease status = %d: %s", code, buf)
	}
	var lease api.WorkLeaseResponse
	if err := json.Unmarshal(buf, &lease); err != nil {
		t.Fatal(err)
	}
	if lease.Status != api.WorkStatusUnit || lease.Unit == nil || lease.Unit.Seq != 3 || !lease.Unit.Quick {
		t.Fatalf("lease response = %+v", lease)
	}

	// Coordinator errors surface with their taxonomy status (config = 400).
	code, buf = post(t, ts.URL+"/v1/work/lease", `{"worker":"reject-me"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("rejected lease status = %d: %s", code, buf)
	}

	// Malformed bodies are config errors before the coordinator sees them.
	code, _ = post(t, ts.URL+"/v1/work/lease", `{"worker":"w0","typo":1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown-field lease status = %d", code)
	}
	code, _ = post(t, ts.URL+"/v1/work/heartbeat", `{}`)
	if code != http.StatusBadRequest {
		t.Fatalf("lease-less heartbeat status = %d", code)
	}
	code, _ = post(t, ts.URL+"/v1/work/complete", `{"seq":0,"name":"fig10"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("report-less completion status = %d", code)
	}
	if len(coord.completes) != 0 {
		t.Fatalf("invalid completion reached the coordinator: %+v", coord.completes)
	}

	// A valid completion lands with its raw report intact.
	code, buf = post(t, ts.URL+"/v1/work/complete", `{"lease":"lease-1","seq":3,"name":"fig10","report":{"name":"fig10","tables":null}}`)
	if code != http.StatusOK {
		t.Fatalf("complete status = %d: %s", code, buf)
	}
	var comp api.WorkCompleteResponse
	if err := json.Unmarshal(buf, &comp); err != nil {
		t.Fatal(err)
	}
	if comp.Status != api.WorkStatusAccepted || !comp.Done {
		t.Fatalf("complete response = %+v", comp)
	}
	if len(coord.completes) != 1 || string(coord.completes[0].Report) != `{"name":"fig10","tables":null}` {
		t.Fatalf("completion payload = %+v", coord.completes)
	}
}

// TestWorkEndpointsBypassDrain pins the design choice that work RPCs stay
// open during drain: a draining coordinator host must still accept the
// cancelled completions its workers hand back.
func TestWorkEndpointsBypassDrain(t *testing.T) {
	coord := &stubCoordinator{}
	srv, ts := newTestServer(t, Config{Coordinator: coord})
	srv.BeginDrain()

	code, _ := post(t, ts.URL+"/v1/work/heartbeat", `{"lease":"lease-1"}`)
	if code != http.StatusOK {
		t.Fatalf("heartbeat during drain = %d, want 200", code)
	}
	code, _ = post(t, ts.URL+"/v1/work/complete", `{"seq":3,"name":"fig10","error":{"kind":"cancelled","message":"drained"}}`)
	if code != http.StatusOK {
		t.Fatalf("completion during drain = %d, want 200", code)
	}
	if len(coord.completes) != 1 {
		t.Fatal("drained completion never reached the coordinator")
	}

	// The ordinary request surface still refuses (the gate is draining).
	code, _ = post(t, ts.URL+"/v1/solve", `{"n":6,"c":2}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain = %d, want 503", code)
	}
}

// TestWorkEndpointsAbsentWithoutCoordinator pins that a plain explinkd (no
// fabric) does not expose the work surface.
func TestWorkEndpointsAbsentWithoutCoordinator(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _ := post(t, ts.URL+"/v1/work/lease", `{}`)
	if code != http.StatusNotFound {
		t.Fatalf("work endpoint without coordinator = %d, want 404", code)
	}
}
