package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"explink/internal/api"
	"explink/internal/core"
	"explink/internal/obs"
	"explink/internal/runctl"
	"explink/internal/sim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf
}

// TestConcurrentColdSolveSingleFlight is the PR's acceptance e2e: two clients
// request the same cold placement concurrently; the store counters prove
// exactly one solve ran, and both responses are byte-identical to the
// equivalent `explink -json` output.
func TestConcurrentColdSolveSingleFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	const body = `{"n":6,"c":3}`

	var (
		wg    sync.WaitGroup
		codes [2]int
		resps [2][]byte
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], resps[i] = post(t, ts.URL+"/v1/solve", body)
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("client %d: status %d: %s", i, code, resps[i])
		}
	}
	if !bytes.Equal(resps[0], resps[1]) {
		t.Fatalf("concurrent responses differ:\n%s\nvs\n%s", resps[0], resps[1])
	}
	c := srv.Store().Counters()
	if c.Solves != 1 {
		t.Fatalf("store counters %s: want exactly one solve for two concurrent cold requests", c)
	}
	if c.Hits != 1 {
		t.Fatalf("store counters %s: want the second request answered as a hit", c)
	}

	// Byte-identity against the CLI path: the same request through the same
	// shared encoder is exactly what `explink -n 6 -c 3 -json` prints.
	req := api.SolveRequest{N: 6, C: 3}
	req.Normalize()
	best, all, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := api.NewSolveResponse(best, all).Encode(&cli); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resps[0], cli.Bytes()) {
		t.Fatalf("daemon response != CLI bytes:\n%s\nvs\n%s", resps[0], cli.String())
	}

	// A warm re-query answers from cache: same bytes, no new solve.
	code, warm := post(t, ts.URL+"/v1/solve", body)
	if code != http.StatusOK || !bytes.Equal(warm, resps[0]) {
		t.Fatalf("warm re-query diverged (status %d)", code)
	}
	if c := srv.Store().Counters(); c.Solves != 1 {
		t.Fatalf("warm re-query re-solved: %s", c)
	}
}

func TestEvalEndpointMatchesAPI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, buf := post(t, ts.URL+"/v1/eval", `{"n":8,"c":2,"express":[{"From":0,"To":7}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, buf)
	}
	var got api.EvalResponse
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf)
	}
	if got.C != 2 || got.Total <= 0 {
		t.Fatalf("eval response degenerate: %+v", got)
	}
}

func TestValidationAndErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		path, body string
		status     int
		kind       string
	}{
		{"/v1/solve", `{"n":1}`, http.StatusBadRequest, "config"},
		{"/v1/solve", `{"n":8,"algo":"magic"}`, http.StatusBadRequest, "config"},
		{"/v1/solve", `{"n":8,"typo":true}`, http.StatusBadRequest, "config"}, // unknown field
		{"/v1/solve", `not json`, http.StatusBadRequest, "config"},
		{"/v1/sim", `{"n":8,"measure":-1}`, http.StatusBadRequest, "config"},
		{"/v1/sim", `{"n":8,"rate":2}`, http.StatusBadRequest, "config"},
		{"/v1/sim", `{"n":8,"replicas":-1}`, http.StatusBadRequest, "config"},
		{"/v1/sim", `{"n":8,"topo":"ring"}`, http.StatusBadRequest, "config"},
		{"/v1/exp", `{"experiments":["nope"]}`, http.StatusBadRequest, "config"},
	}
	for _, c := range cases {
		code, buf := post(t, ts.URL+c.path, c.body)
		if code != c.status {
			t.Fatalf("%s %s: status %d, want %d: %s", c.path, c.body, code, c.status, buf)
		}
		var body struct {
			Error api.ErrorBody `json:"error"`
		}
		if err := json.Unmarshal(buf, &body); err != nil {
			t.Fatalf("%s: error body not JSON: %v\n%s", c.path, err, buf)
		}
		if body.Error.Kind != c.kind {
			t.Fatalf("%s: kind %q, want %q (%s)", c.path, body.Error.Kind, c.kind, buf)
		}
	}
}

func TestSimEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, buf := post(t, ts.URL+"/v1/sim",
		`{"n":4,"warmup":200,"measure":1000,"drain":5000}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, buf)
	}
	var resp api.SimResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.Result == nil || !resp.Result.Drained || resp.Result.MeasuredPackets == 0 {
		t.Fatalf("sim result degenerate: %+v", resp.Result)
	}
	if resp.Error != nil {
		t.Fatalf("unexpected error: %+v", resp.Error)
	}

	// Replica group: per-replica results plus the aggregate.
	code, buf = post(t, ts.URL+"/v1/sim",
		`{"n":4,"warmup":200,"measure":1000,"drain":5000,"replicas":3}`)
	if code != http.StatusOK {
		t.Fatalf("replicas status %d: %s", code, buf)
	}
	resp = api.SimResponse{}
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Replicas) != 3 || resp.Aggregate == nil {
		t.Fatalf("replica response shape wrong: %d replicas, aggregate %v",
			len(resp.Replicas), resp.Aggregate)
	}
}

// TestDrainDuringInflight pins the drain contract end to end: a long sim run
// admitted before BeginDrain returns 200 with a partial result carrying
// Truncated="cancelled", new admissions get 503 "draining", and Drain
// returns once the straggler is gone.
func TestDrainDuringInflight(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	type outcome struct {
		code int
		buf  []byte
	}
	done := make(chan outcome, 1)
	go func() {
		// Big enough to run for many seconds if never cancelled.
		code, buf := post(t, ts.URL+"/v1/sim",
			`{"n":8,"rate":0.05,"warmup":1000,"measure":100000000}`)
		done <- outcome{code, buf}
	}()

	// Wait for the request to actually hold a gate slot before draining.
	deadline := time.Now().Add(5 * time.Second)
	for srv.gate.inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let it simulate a few thousand cycles
	srv.BeginDrain()

	oc := <-done
	if oc.code != http.StatusOK {
		t.Fatalf("drained request: status %d: %s", oc.code, oc.buf)
	}
	var resp api.SimResponse
	if err := json.Unmarshal(oc.buf, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, oc.buf)
	}
	if resp.Result == nil || resp.Result.Truncated != sim.TruncatedCancelled {
		t.Fatalf("partial result missing its truncation reason: %+v", resp.Result)
	}
	if resp.Error == nil || resp.Error.Kind != "cancelled" {
		t.Fatalf("embedded error wrong: %+v", resp.Error)
	}

	// New work is refused while draining.
	code, buf := post(t, ts.URL+"/v1/solve", `{"n":6,"c":3}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain admission: status %d: %s", code, buf)
	}
	var body struct {
		Error api.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(buf, &body); err != nil || body.Error.Kind != "draining" {
		t.Fatalf("post-drain error body: %v %s", err, buf)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Health reports the drained state.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !bytes.Contains(hb, []byte(`"status": "draining"`)) {
		t.Fatalf("healthz after drain: %s", hb)
	}
}

func TestRateLimiting(t *testing.T) {
	_, ts := newTestServer(t, Config{RatePerSec: 0.001, Burst: 2})
	var saw429 bool
	for i := 0; i < 4; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/eval",
			strings.NewReader(`{"n":4,"c":1}`))
		req.Header.Set("X-Explink-Client", "hammer")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
		}
	}
	if !saw429 {
		t.Fatal("burst of 4 with burst=2 never rate limited")
	}
}

func TestGate(t *testing.T) {
	g := newGate(1, 1)
	rel1, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.inflight() != 1 {
		t.Fatalf("inflight %d", g.inflight())
	}

	// Second acquirer queues; third overflows the queue.
	got2 := make(chan error, 1)
	go func() {
		rel2, err := g.acquire(context.Background())
		if err == nil {
			defer rel2()
		}
		got2 <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for g.queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := g.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue overflow: %v", err)
	}

	// A queued waiter whose context dies reports cancellation.
	rel1()
	if err := <-got2; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}

	relHold, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := g.acquire(ctx)
		waitErr <- err
	}()
	for g.queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waitErr; !errors.Is(err, runctl.ErrCancelled) {
		t.Fatalf("cancelled waiter: %v", err)
	}

	// Drain fails waiters and future acquirers.
	drainErr := make(chan error, 1)
	go func() {
		_, err := g.acquire(context.Background())
		drainErr <- err
	}()
	for g.queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	g.beginDrain()
	g.beginDrain() // idempotent
	if err := <-drainErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("drained waiter: %v", err)
	}
	if _, err := g.acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire: %v", err)
	}
	relHold()
	if !g.draining() {
		t.Fatal("draining() false after beginDrain")
	}
}

func TestLimiter(t *testing.T) {
	l := newLimiter(1, 2)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst of 2 rejected")
	}
	if l.allow("a") {
		t.Fatal("third immediate request allowed")
	}
	if !l.allow("b") {
		t.Fatal("independent client throttled")
	}
	now = now.Add(1500 * time.Millisecond)
	if !l.allow("a") {
		t.Fatal("refilled token rejected")
	}
	if (*limiter)(nil).allow("x") != true {
		t.Fatal("nil limiter must allow")
	}
	if !newLimiter(0, 1).allow("x") {
		t.Fatal("disabled limiter must allow")
	}
}

func TestLimiterEviction(t *testing.T) {
	l := newLimiter(100, 1)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < limiterMaxClients; i++ {
		l.allow(fmt.Sprintf("client-%d", i))
	}
	if len(l.buckets) != limiterMaxClients {
		t.Fatalf("bucket count %d", len(l.buckets))
	}
	// Everything is stale after a long idle gap; the next new client
	// triggers eviction instead of unbounded growth.
	now = now.Add(time.Hour)
	l.allow("fresh")
	if len(l.buckets) >= limiterMaxClients {
		t.Fatalf("stale buckets not evicted: %d", len(l.buckets))
	}
}

// safeBuffer lets the race detector watch the event stream.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestConcurrentMetricsAndRequests is the satellite-4 race test: hammer
// /metrics (server mux and DebugServer) while requests run, close the
// DebugServer with a scrape in flight, and verify the event stream stayed
// line-atomic. Run with -race.
func TestConcurrentMetricsAndRequests(t *testing.T) {
	reg := obs.NewRegistry()
	events := &safeBuffer{}
	srv, ts := newTestServer(t, Config{Reg: reg, Events: obs.NewEventWriter(events)})

	ds, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				code, buf := post(t, ts.URL+"/v1/eval", `{"n":6,"c":2,"express":[{"From":0,"To":3}]}`)
				if code != http.StatusOK {
					t.Errorf("eval: status %d: %s", code, buf)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Errorf("metrics scrape: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !bytes.Contains(body, []byte("serve_requests_total")) {
					t.Errorf("scrape missing serve series:\n%.200s", body)
					return
				}
			}
		}()
	}
	// DebugServer.Close racing an in-flight scrape must not panic or hang;
	// errors after Close are expected and ignored.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			resp, err := http.Get("http://" + ds.Addr + "/metrics")
			if err != nil {
				return // server closed under us — the point of the test
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		ds.Close()
	}()
	wg.Wait()

	if t.Failed() {
		return
	}
	// Every emitted event line must parse alone: concurrent requests writing
	// through one EventWriter may interleave lines, never bytes.
	for _, line := range events.Lines() {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("event line not atomic: %v\n%q", err, line)
		}
	}
	_ = srv
}

func TestStoreCounterSingleFlightUnderHammer(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 8, MaxQueue: 32})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, buf := post(t, ts.URL+"/v1/solve", `{"n":6,"c":2}`)
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, buf)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	c := srv.Store().Counters()
	if c.Solves != 1 || c.Hits != 7 {
		t.Fatalf("eight concurrent identical solves: %s, want solves=1 hits=7", c)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		Status string             `json:"status"`
		Schema string             `json:"schema"`
		Cache  core.StoreCounters `json:"cache"`
	}
	if err := json.Unmarshal(buf, &h); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf)
	}
	if h.Status != "ok" || h.Schema != api.SchemaVersion {
		t.Fatalf("health %+v", h)
	}
}
