package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"explink/internal/api"
)

// TestParetoEndpointBytesMatchCLI is the tentpole's transport acceptance: the
// daemon's /v1/pareto bytes equal the CLI encoder's output for the same
// request, and a warm re-query answers from the store without solving.
func TestParetoEndpointBytesMatchCLI(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	const body = `{"n":6,"c":2,"moves":1500}`

	code, buf := post(t, ts.URL+"/v1/pareto", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, buf)
	}

	req := api.ParetoRequest{N: 6, C: 2, Moves: 1500}
	req.Normalize()
	f, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := api.NewParetoResponse(f).Encode(&cli); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, cli.Bytes()) {
		t.Fatalf("daemon response != CLI bytes:\n%s\nvs\n%s", buf, cli.String())
	}

	solves := srv.Store().Counters().Solves
	if solves == 0 {
		t.Fatal("cold pareto request solved nothing")
	}
	code, warm := post(t, ts.URL+"/v1/pareto", body)
	if code != http.StatusOK || !bytes.Equal(warm, buf) {
		t.Fatalf("warm re-query diverged (status %d)", code)
	}
	if got := srv.Store().Counters().Solves; got != solves {
		t.Fatalf("warm re-query re-solved: %d -> %d", solves, got)
	}
}

func TestParetoEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []string{
		`{"n":1}`,
		`{"n":8,"c":-1}`,
		`{"n":8,"objectives":["area"]}`,
		`{"n":8,"archiveCap":-1}`,
		`{"n":8,"typo":true}`,
		`not json`,
	}
	for _, body := range cases {
		code, buf := post(t, ts.URL+"/v1/pareto", body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", body, code, buf)
		}
		var eb struct {
			Error api.ErrorBody `json:"error"`
		}
		if err := json.Unmarshal(buf, &eb); err != nil || eb.Error.Kind != "config" {
			t.Fatalf("%s: error body %s (%v)", body, buf, err)
		}
	}
}

// TestStdioPareto drives the pareto op over the JSON-lines transport.
func TestStdioPareto(t *testing.T) {
	srv := New(Config{})
	ss := startStdio(t, srv)

	ss.send(t, `{"id":1,"op":"pareto","req":{"n":6,"c":2,"moves":1500}}`)
	resp := ss.recv(t)
	if !resp.OK || string(resp.ID) != "1" {
		t.Fatalf("pareto: %+v", resp)
	}
	var pr api.ParetoResponse
	if err := json.Unmarshal(resp.Result, &pr); err != nil {
		t.Fatalf("pareto result: %v\n%s", err, resp.Result)
	}
	if len(pr.Points) == 0 || pr.Evals <= 0 || len(pr.Objectives) != 3 {
		t.Fatalf("pareto result degenerate: %+v", pr)
	}

	// Malformed payloads stay config-typed on this transport too.
	ss.send(t, `{"id":2,"op":"pareto","req":{"n":8,"objectives":["area"]}}`)
	resp = ss.recv(t)
	if resp.OK || resp.Error == nil || resp.Error.Kind != "config" {
		t.Fatalf("bad pareto: %+v", resp)
	}

	ss.send(t, `{"id":3,"op":"shutdown"}`)
	ss.recv(t)
	if err := <-ss.done; err != nil {
		t.Fatal(err)
	}
}
