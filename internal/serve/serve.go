// Package serve is the daemon layer of the repo: a long-running placement
// service (cmd/explinkd) exposing the solver, the evaluator, the cycle
// simulator and the experiment suite over HTTP/JSON and JSON-lines-over-stdio.
//
// Every request funnels into the same internal/api request structs the CLI
// tools use, runs behind one bounded admission gate, and answers hot
// placement queries from the shared core.PlacementStore (concurrent cold
// requests for the same placement are single-flighted into one solve).
// Shutdown follows the runctl taxonomy: BeginDrain stops admitting (new work
// gets 503), cancels in-flight contexts so long runs return partial results
// with their Truncated reasons, and Drain waits for the stragglers.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"explink/internal/api"
	"explink/internal/core"
	"explink/internal/exp"
	"explink/internal/obs"
	"explink/internal/runctl"
	"explink/internal/sim"
	"explink/internal/stats"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is an
// /v1/eval traffic matrix (n=16 ⇒ 256×256 floats ≈ a few MB of JSON).
const maxBodyBytes = 32 << 20

// Config assembles a Server.
type Config struct {
	// Store is the shared placement cache; nil gets a fresh memory-only
	// store, so single-flight deduplication always works.
	Store *core.PlacementStore
	// MaxInflight bounds concurrently running requests (0 = GOMAXPROCS) and
	// MaxQueue bounds how many more may wait for a slot (0 = 64; negative =
	// no queue). Everything beyond the queue is rejected with 503.
	MaxInflight int
	MaxQueue    int
	// RatePerSec and Burst set the per-client token-bucket rate limit;
	// RatePerSec <= 0 disables it.
	RatePerSec float64
	Burst      int
	// Reg, when non-nil, receives the server's metrics (serve_* series) and
	// is scraped at GET /metrics on the server's own mux.
	Reg *obs.Registry
	// Events, when non-nil, receives server lifecycle events (server.start,
	// request.finish, server.drain) as JSON lines.
	Events *obs.EventWriter
	// Coordinator, when non-nil, mounts the sweep-fabric work endpoints
	// (POST /v1/work/lease, /v1/work/heartbeat, /v1/work/complete) backed by
	// it. See internal/fabric.
	Coordinator WorkCoordinator
}

// WorkCoordinator is the sweep-fabric surface a server can host: the
// lease/heartbeat/complete triple of internal/fabric's Coordinator. Declared
// here as an interface so the serve layer stays ignorant of fabric's
// internals (the dependency points fabric→serve at the binary level only).
type WorkCoordinator interface {
	Lease(ctx context.Context, worker string) (api.WorkLeaseResponse, error)
	Heartbeat(ctx context.Context, lease string) (api.WorkHeartbeatResponse, error)
	Complete(ctx context.Context, req api.WorkCompleteRequest) (api.WorkCompleteResponse, error)
}

// Server is the placement-as-a-service engine behind cmd/explinkd. Create
// with New, expose with Handler or ServeStdio, stop with BeginDrain + Drain.
type Server struct {
	store *core.PlacementStore
	gate  *gate
	lim   *limiter
	mux   *http.ServeMux
	met   *metrics
	ev    *obs.EventWriter

	// base is cancelled (with a cause matching runctl.ErrCancelled) by
	// BeginDrain; every admitted request's context is linked to it.
	base       context.Context
	cancelBase context.CancelCauseFunc
	wg         sync.WaitGroup
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store, _ = core.NewPlacementStore("") // "" never fails
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	base, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		store:      cfg.Store,
		gate:       newGate(cfg.MaxInflight, cfg.MaxQueue),
		lim:        newLimiter(cfg.RatePerSec, cfg.Burst),
		ev:         cfg.Events,
		base:       base,
		cancelBase: cancel,
	}
	s.met = newMetrics(cfg.Reg, s.gate)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /"+api.SchemaVersion+"/solve", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, "solve") })
	s.mux.HandleFunc("POST /"+api.SchemaVersion+"/eval", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, "eval") })
	s.mux.HandleFunc("POST /"+api.SchemaVersion+"/sim", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, "sim") })
	s.mux.HandleFunc("POST /"+api.SchemaVersion+"/exp", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, "exp") })
	s.mux.HandleFunc("POST /"+api.SchemaVersion+"/pareto", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, "pareto") })
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.Coordinator != nil {
		coord := cfg.Coordinator
		// Work RPCs bypass the gate and limiter on purpose: they are cheap
		// coordinator bookkeeping, and a heartbeat queued behind heavy solve
		// admission would expire the very lease it is trying to keep alive.
		// They also stay open during drain, so workers can hand back their
		// in-flight units as cancelled completions instead of timing out.
		s.mux.HandleFunc("POST /"+api.SchemaVersion+"/work/lease", func(w http.ResponseWriter, r *http.Request) {
			s.met.request("work")
			var req api.WorkLeaseRequest
			if err := s.decodeWork(w, r, &req); err != nil {
				return
			}
			req.Normalize()
			if err := req.Validate(); err != nil {
				s.writeError(w, "work", err)
				return
			}
			resp, err := coord.Lease(r.Context(), req.Worker)
			s.writeWork(w, resp, err)
		})
		s.mux.HandleFunc("POST /"+api.SchemaVersion+"/work/heartbeat", func(w http.ResponseWriter, r *http.Request) {
			s.met.request("work")
			var req api.WorkHeartbeatRequest
			if err := s.decodeWork(w, r, &req); err != nil {
				return
			}
			if err := req.Validate(); err != nil {
				s.writeError(w, "work", err)
				return
			}
			resp, err := coord.Heartbeat(r.Context(), req.Lease)
			s.writeWork(w, resp, err)
		})
		s.mux.HandleFunc("POST /"+api.SchemaVersion+"/work/complete", func(w http.ResponseWriter, r *http.Request) {
			s.met.request("work")
			var req api.WorkCompleteRequest
			if err := s.decodeWork(w, r, &req); err != nil {
				return
			}
			resp, err := coord.Complete(r.Context(), req)
			s.writeWork(w, resp, err)
		})
	}
	if cfg.Reg != nil {
		reg := cfg.Reg
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WritePrometheus(w)
		})
	}
	return s
}

// Handler returns the HTTP face of the server.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the shared placement store (its counters prove single-flight
// behaviour: two concurrent cold requests for one placement ⇒ Solves == 1).
func (s *Server) Store() *core.PlacementStore { return s.store }

// BeginDrain starts shutdown: the gate stops admitting (new requests get
// 503 "draining") and every in-flight request context is cancelled with a
// cause matching runctl.ErrCancelled, so long solves and sweeps return
// partial results carrying their Truncated reasons. Idempotent.
func (s *Server) BeginDrain() {
	s.gate.beginDrain()
	s.cancelBase(fmt.Errorf("serve: draining: %w", runctl.ErrCancelled))
	s.ev.Emit("server.drain", map[string]any{"inflight": s.gate.inflight(), "queued": s.gate.queued()})
}

// Drain blocks until every admitted request has finished, or ctx expires
// (returning an error matching runctl.ErrCancelled).
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return runctl.Cancelled(ctx)
	}
}

// handle is the one HTTP entry path: rate limit, admission gate, drain-aware
// context, dispatch by op, metrics and events on the way out.
func (s *Server) handle(w http.ResponseWriter, r *http.Request, op string) {
	s.met.request(op)
	if !s.lim.allow(clientKey(r)) {
		s.reject(w, op, ErrRateLimited)
		return
	}
	release, err := s.gate.acquire(r.Context())
	if err != nil {
		s.reject(w, op, err)
		return
	}
	s.wg.Add(1)
	ctx, cancel := context.WithCancelCause(r.Context())
	stop := context.AfterFunc(s.base, func() { cancel(context.Cause(s.base)) })
	start := time.Now()
	defer func() {
		stop()
		cancel(nil)
		release()
		s.met.observe(op, time.Since(start))
		s.ev.Emit("request.finish", map[string]any{"op": op, "seconds": time.Since(start).Seconds()})
		s.wg.Done()
	}()

	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	switch op {
	case "solve":
		s.handleSolve(ctx, w, r)
	case "eval":
		s.handleEval(ctx, w, r)
	case "sim":
		s.handleSim(ctx, w, r)
	case "exp":
		s.handleExp(ctx, w, r)
	case "pareto":
		s.handlePareto(ctx, w, r)
	}
}

func (s *Server) handlePareto(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req api.ParetoRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeError(w, "pareto", err)
		return
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		s.writeError(w, "pareto", err)
		return
	}
	f, err := req.Solve(ctx, s.store)
	if err != nil {
		s.writeError(w, "pareto", err)
		return
	}
	// Encode (not the sanitizer): these bytes must equal `explink -pareto -json`.
	w.Header().Set("Content-Type", "application/json")
	api.NewParetoResponse(f).Encode(w)
}

func (s *Server) handleSolve(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req api.SolveRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeError(w, "solve", err)
		return
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		s.writeError(w, "solve", err)
		return
	}
	best, all, err := req.Solve(ctx, s.store)
	if err != nil {
		s.writeError(w, "solve", err)
		return
	}
	// Encode (not the sanitizer): these bytes must equal `explink -json`.
	w.Header().Set("Content-Type", "application/json")
	api.NewSolveResponse(best, all).Encode(w)
}

func (s *Server) handleEval(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req api.EvalRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeError(w, "eval", err)
		return
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		s.writeError(w, "eval", err)
		return
	}
	resp, err := req.Eval()
	if err != nil {
		s.writeError(w, "eval", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	resp.Encode(w)
}

func (s *Server) handleSim(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req api.SimRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeError(w, "sim", err)
		return
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		s.writeError(w, "sim", err)
		return
	}
	resp, err := s.runSim(ctx, &req)
	if err != nil {
		// A run that got cut short (drain, deadline, deadlock) still carries
		// its partial measurements; report them with the classified error
		// embedded instead of discarding data behind a bare status code.
		if !resp.Partial() {
			s.writeError(w, "sim", err)
			return
		}
		resp.Error = api.ErrorBodyOf(err)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// runSim executes a (normalized, validated) SimRequest: one operating point,
// a replica group, or a saturation sweep. Shared by HTTP and stdio.
func (s *Server) runSim(ctx context.Context, req *api.SimRequest) (api.SimResponse, error) {
	var resp api.SimResponse
	cfg, err := req.Config(ctx, s.store)
	if err != nil {
		return resp, err
	}
	switch {
	case req.Saturate:
		opts := sim.DefaultSaturationOpts()
		if req.Replicas > 1 {
			opts.Replicas = req.Replicas
		}
		sr, err := sim.FindSaturation(ctx, cfg, opts)
		if len(sr.Points) > 0 || err == nil {
			resp.Sweep = &sr
		}
		return resp, err
	case req.Replicas > 1:
		b, err := sim.NewBatch(cfg, sim.ReplicaSeeds(cfg.Seed, req.Replicas))
		if err != nil {
			return resp, err
		}
		results, _, err := b.Run(ctx, 0)
		if len(results) > 0 {
			agg := sim.AggregateReplicas(results)
			resp.Replicas, resp.Aggregate = results, &agg
		}
		return resp, err
	default:
		sm, err := sim.New(cfg)
		if err != nil {
			return resp, err
		}
		res, err := sm.Run(ctx)
		resp.Result = &res
		return resp, err
	}
}

func (s *Server) handleExp(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req api.ExpRequest
	if err := decodeBody(r.Body, &req); err != nil {
		s.writeError(w, "exp", err)
		return
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		s.writeError(w, "exp", err)
		return
	}
	sel, err := api.SelectExperiments(req.Experiments)
	if err != nil {
		s.writeError(w, "exp", err)
		return
	}
	// From here the response is a chunked JSON-lines stream: progress events
	// as the suite runs, then one terminal suite.result line with every
	// report. The status is already committed, so a drain mid-suite shows up
	// as cancelled outcomes inside the terminal line, not as an HTTP error.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	ev := obs.NewEventWriter(flushWriter{w})
	res := s.runExp(ctx, sel, &req, ev)
	raw, _, err := stats.MarshalSanitized(res)
	if err != nil {
		ev.Emit("suite.result", map[string]any{"error": err.Error()})
		return
	}
	ev.Emit("suite.result", map[string]any{"failed": res.Failed, "result": json.RawMessage(raw)})
}

// runExp executes a (normalized, validated) ExpRequest over the selected
// experiments, streaming progress to ev. Shared by HTTP and stdio.
func (s *Server) runExp(ctx context.Context, sel []exp.Experiment, req *api.ExpRequest, ev *obs.EventWriter) api.ExpResult {
	opts := exp.DefaultOptions()
	opts.Quick = req.Quick
	opts.Seed = req.Seed
	opts.Replicas = req.Replicas
	opts.Store = s.store
	return api.ExpResultOf(exp.RunAll(ctx, sel, opts, req.Parallel, ev))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.gate.draining() {
		status = "draining"
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"schema":   api.SchemaVersion,
		"inflight": s.gate.inflight(),
		"queued":   s.gate.queued(),
		"cache":    s.store.Counters(),
	})
}

// reject writes an admission failure (draining/overloaded/rate-limited or a
// client disconnect while queued) and counts it.
func (s *Server) reject(w http.ResponseWriter, op string, err error) {
	s.met.reject(reasonOf(err))
	s.writeError(w, op, err)
}

// writeError maps err onto its HTTP status (serve admission sentinels first,
// then the runctl taxonomy via api.HTTPStatus) and writes the standard error
// body {"error":{"kind":...,"message":...}}.
func (s *Server) writeError(w http.ResponseWriter, op string, err error) {
	s.met.failure(op)
	status, kind := statusOf(err)
	body := map[string]any{"error": &api.ErrorBody{Kind: kind, Message: err.Error()}}
	s.writeJSON(w, status, body)
}

// writeJSON writes v as indented JSON through the stats sanitizer, so a
// non-finite float anywhere in a response degrades to null (with the paths
// reported in an X-Explink-Sanitized header) instead of failing the request.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf, notes, err := stats.MarshalIndentSanitized(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":{"kind":"internal","message":%q}}`, err.Error()), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if len(notes) > 0 {
		w.Header().Set("X-Explink-Sanitized", strings.Join(notes, "; "))
	}
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

// decodeWork reads a bounded work-RPC body, answering the config error
// itself; the caller just returns on non-nil.
func (s *Server) decodeWork(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := decodeBody(r.Body, v); err != nil {
		s.writeError(w, "work", err)
		return err
	}
	return nil
}

// writeWork answers one work RPC: coordinator errors follow the standard
// error surface, successes encode with json.Marshal (not the sanitizer — a
// completion echoes no floats that could be non-finite, and lease responses
// must round-trip the unit exactly).
func (s *Server) writeWork(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		s.writeError(w, "work", err)
		return
	}
	buf, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, "work", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

// statusOf resolves the HTTP status and wire kind of err: the serve-level
// admission sentinels map to 503/503/429, everything else follows the runctl
// taxonomy (api.HTTPStatus).
func statusOf(err error) (int, string) {
	switch reasonOf(err) {
	case "draining":
		return http.StatusServiceUnavailable, "draining"
	case "overloaded":
		return http.StatusServiceUnavailable, "overloaded"
	case "rate-limited":
		return http.StatusTooManyRequests, "rate-limited"
	}
	return api.HTTPStatus(err), api.Kind(err)
}

// reasonOf names the admission sentinel behind err, or "" for ordinary
// errors. errors.Is is deliberate: gate errors may arrive wrapped.
func reasonOf(err error) string {
	switch {
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrRateLimited):
		return "rate-limited"
	}
	return ""
}

// decodeBody parses a JSON request body strictly (unknown fields are config
// errors — they are almost always typos in a versioned schema).
func decodeBody(body io.Reader, v any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v: %w", err, runctl.ErrConfig)
	}
	return nil
}

// clientKey identifies a client for rate limiting: the X-Explink-Client
// header when present (clients sharing a NAT can self-identify), else the
// remote IP.
func clientKey(r *http.Request) string {
	if v := r.Header.Get("X-Explink-Client"); v != "" {
		return v
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// flushWriter flushes after every write so JSON-lines progress events cross
// the wire as they happen instead of sitting in the response buffer.
type flushWriter struct{ w http.ResponseWriter }

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}
