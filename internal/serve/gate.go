package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"explink/internal/runctl"
)

var (
	// ErrDraining rejects work admitted after BeginDrain: the daemon is
	// shutting down and stops accepting, per the drain contract.
	ErrDraining = errors.New("server draining")
	// ErrOverloaded rejects work when the admission queue is full: every
	// worker slot is busy and the bounded wait line is at capacity.
	ErrOverloaded = errors.New("server overloaded")
	// ErrRateLimited rejects a client that exceeded its request budget.
	ErrRateLimited = errors.New("client rate limited")
)

// gate is the bounded admission controller in front of every unit of daemon
// work: at most maxInflight requests run at once, at most maxQueue more wait
// for a slot, and everything beyond that is rejected immediately with
// ErrOverloaded so overload degrades into fast 503s instead of an unbounded
// goroutine pile-up. BeginDrain flips the gate closed: waiting and future
// acquisitions fail with ErrDraining while in-flight work keeps its slots
// until release.
type gate struct {
	sem     chan struct{}
	drainCh chan struct{}

	mu       sync.Mutex
	waiting  int
	maxQueue int
	drained  bool
}

func newGate(maxInflight, maxQueue int) *gate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{
		sem:      make(chan struct{}, maxInflight),
		drainCh:  make(chan struct{}),
		maxQueue: maxQueue,
	}
}

// acquire admits one unit of work, blocking in the bounded queue when every
// slot is busy. The caller must invoke the returned release exactly once.
// Rejections: ErrDraining after BeginDrain, ErrOverloaded when the queue is
// full, and a runctl.ErrCancelled wrap when ctx dies while queued.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	select {
	case <-g.drainCh:
		return nil, ErrDraining
	default:
	}
	// Fast path: a free slot, no queueing.
	select {
	case g.sem <- struct{}{}:
		return g.admit()
	default:
	}
	g.mu.Lock()
	if g.waiting >= g.maxQueue {
		g.mu.Unlock()
		return nil, ErrOverloaded
	}
	g.waiting++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
	}()
	select {
	case g.sem <- struct{}{}:
		return g.admit()
	case <-g.drainCh:
		return nil, ErrDraining
	case <-ctx.Done():
		return nil, runctl.Cancelled(ctx)
	}
}

// admit finalizes a successful semaphore acquisition. When the drain channel
// closed concurrently with the acquire, the select above picks an arm at
// random — a queued waiter could win the slot against an already-begun drain
// and be admitted in violation of the drain contract. Re-checking here makes
// the drain decisive: the slot is given back and the caller is rejected.
func (g *gate) admit() (func(), error) {
	select {
	case <-g.drainCh:
		<-g.sem
		return nil, ErrDraining
	default:
		return g.release, nil
	}
}

func (g *gate) release() { <-g.sem }

// beginDrain closes the gate; idempotent.
func (g *gate) beginDrain() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.drained {
		g.drained = true
		close(g.drainCh)
	}
}

// draining reports whether beginDrain has been called.
func (g *gate) draining() bool {
	select {
	case <-g.drainCh:
		return true
	default:
		return false
	}
}

// queued reports how many acquirers are waiting for a slot.
func (g *gate) queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}

// inflight reports how many slots are held.
func (g *gate) inflight() int { return len(g.sem) }

// limiter is a per-client token-bucket rate limiter: each client key gets
// `rate` requests per second with a burst allowance, lazily instantiated.
// The table is hard-capped at limiterMaxClients: inserting a new key at the
// cap first tries a full stale-bucket scan (at most once per
// limiterScanEvery, so a spoofed-client flood cannot buy an O(n) walk per
// request), then falls back to evicting the least-recently-seen bucket of a
// small random sample — the map never grows past the cap.
type limiter struct {
	rate  float64 // tokens per second; <= 0 disables the limiter
	burst float64

	mu       sync.Mutex
	buckets  map[string]*bucket
	lastScan time.Time        // last full evictStale walk
	now      func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

const (
	limiterMaxClients = 4096
	// limiterScanEvery spaces full O(n) stale scans; between scans the cap is
	// held by O(1) sampled eviction.
	limiterScanEvery = time.Second
	// limiterEvictSample is how many map entries the fallback eviction
	// inspects; Go's randomized map iteration order makes this an approximate
	// LRU draw (the Redis approach) at constant cost.
	limiterEvictSample = 8
)

func newLimiter(ratePerSec float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:    ratePerSec,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow consumes one token from key's bucket, reporting whether the request
// is within budget. A disabled limiter (rate <= 0) always allows.
func (l *limiter) allow(key string) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= limiterMaxClients {
			if now.Sub(l.lastScan) >= limiterScanEvery {
				l.evictStale(now)
				l.lastScan = now
			}
			// The scan may find nothing idle (a flood of fresh spoofed keys);
			// the cap is enforced regardless by evicting an approximately
			// least-recently-seen bucket.
			for len(l.buckets) >= limiterMaxClients {
				l.evictOldestSampled()
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictStale drops buckets that have been idle long enough to be full again
// (they carry no throttling state worth keeping). Called with l.mu held.
func (l *limiter) evictStale(now time.Time) {
	idle := time.Duration(l.burst/l.rate*float64(time.Second)) + time.Second
	for k, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, k)
		}
	}
}

// evictOldestSampled deletes the bucket with the oldest last-seen time among
// a limiterEvictSample-sized draw of the table (the whole table when
// smaller). Called with l.mu held on a non-empty table.
func (l *limiter) evictOldestSampled() {
	var (
		victim string
		oldest time.Time
		seen   int
	)
	for k, b := range l.buckets {
		if seen == 0 || b.last.Before(oldest) {
			victim, oldest = k, b.last
		}
		if seen++; seen >= limiterEvictSample {
			break
		}
	}
	if seen > 0 {
		delete(l.buckets, victim)
	}
}
