package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"explink/internal/api"
)

// stdioSession drives ServeStdio over in-process pipes and collects the
// response lines keyed by id.
type stdioSession struct {
	in   io.WriteCloser
	out  *bufio.Scanner
	done chan error
}

func startStdio(t *testing.T, s *Server) *stdioSession {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- s.ServeStdio(context.Background(), inR, outW)
		outW.Close()
	}()
	sc := bufio.NewScanner(outR)
	sc.Buffer(make([]byte, 64*1024), stdioMaxLine)
	return &stdioSession{in: inW, out: sc, done: done}
}

func (ss *stdioSession) send(t *testing.T, line string) {
	t.Helper()
	if _, err := io.WriteString(ss.in, line+"\n"); err != nil {
		t.Fatalf("write %q: %v", line, err)
	}
}

// recv reads the next response line and decodes it.
func (ss *stdioSession) recv(t *testing.T) stdioResponse {
	t.Helper()
	if !ss.out.Scan() {
		t.Fatalf("stdio output closed early: %v", ss.out.Err())
	}
	var resp stdioResponse
	if err := json.Unmarshal(ss.out.Bytes(), &resp); err != nil {
		t.Fatalf("response line not JSON: %v\n%s", err, ss.out.Text())
	}
	return resp
}

func TestStdioRoundTrip(t *testing.T) {
	srv := New(Config{})
	ss := startStdio(t, srv)

	// ping: ungated liveness, reports schema.
	ss.send(t, `{"id":1,"op":"ping"}`)
	resp := ss.recv(t)
	if !resp.OK || string(resp.ID) != "1" {
		t.Fatalf("ping: %+v", resp)
	}
	if !bytes.Contains(resp.Result, []byte(api.SchemaVersion)) {
		t.Fatalf("ping result missing schema: %s", resp.Result)
	}

	// solve: result matches the HTTP/CLI solution for the same request.
	ss.send(t, `{"id":"s1","op":"solve","req":{"n":6,"c":3}}`)
	resp = ss.recv(t)
	if !resp.OK || string(resp.ID) != `"s1"` {
		t.Fatalf("solve: %+v", resp)
	}
	var solved struct {
		Best api.Solution `json:"best"`
	}
	if err := json.Unmarshal(resp.Result, &solved); err != nil {
		t.Fatalf("solve result: %v\n%s", err, resp.Result)
	}
	if solved.Best.C != 3 || solved.Best.Total <= 0 {
		t.Fatalf("solve result degenerate: %+v", solved.Best)
	}

	// eval round-trips the solved placement.
	evalReq, _ := json.Marshal(map[string]any{
		"n": 6, "c": solved.Best.C, "express": solved.Best.Express,
	})
	ss.send(t, fmt.Sprintf(`{"id":2,"op":"eval","req":%s}`, evalReq))
	resp = ss.recv(t)
	if !resp.OK {
		t.Fatalf("eval: %+v", resp)
	}
	var ev api.EvalResponse
	if err := json.Unmarshal(resp.Result, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Total != solved.Best.Total {
		t.Fatalf("stdio eval %.4f != solve %.4f", ev.Total, solved.Best.Total)
	}

	// A non-JSON line answers with a config error instead of killing the loop.
	ss.send(t, `this is not json`)
	resp = ss.recv(t)
	if resp.OK || resp.Error == nil || resp.Error.Kind != "config" {
		t.Fatalf("garbage line: %+v", resp)
	}

	// Unknown op: config error, id echoed.
	ss.send(t, `{"id":9,"op":"dance"}`)
	resp = ss.recv(t)
	if resp.OK || resp.Error == nil || resp.Error.Kind != "config" || string(resp.ID) != "9" {
		t.Fatalf("unknown op: %+v", resp)
	}

	// Invalid request body: config error.
	ss.send(t, `{"id":10,"op":"solve","req":{"n":1}}`)
	resp = ss.recv(t)
	if resp.OK || resp.Error == nil || resp.Error.Kind != "config" {
		t.Fatalf("bad solve: %+v", resp)
	}

	// shutdown acknowledges and ends the loop cleanly.
	ss.send(t, `{"id":11,"op":"shutdown"}`)
	resp = ss.recv(t)
	if !resp.OK || string(resp.ID) != "11" {
		t.Fatalf("shutdown ack: %+v", resp)
	}
	select {
	case err := <-ss.done:
		if err != nil {
			t.Fatalf("ServeStdio after shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeStdio did not return after shutdown")
	}

	// The store served the solve: one cold solve, eval is analytic (no solve).
	if c := srv.Store().Counters(); c.Solves != 1 {
		t.Fatalf("counters %s", c)
	}
}

func TestStdioEOFEndsSession(t *testing.T) {
	srv := New(Config{})
	var out bytes.Buffer
	err := srv.ServeStdio(context.Background(), strings.NewReader(`{"id":1,"op":"ping"}`+"\n"), &syncWriter{w: &out})
	if err != nil {
		t.Fatalf("ServeStdio at EOF: %v", err)
	}
	if !strings.Contains(out.String(), `"ok":true`) {
		t.Fatalf("ping not answered before EOF: %s", out.String())
	}
}

func TestStdioDrainStopsReading(t *testing.T) {
	srv := New(Config{})
	ss := startStdio(t, srv)
	ss.send(t, `{"id":1,"op":"ping"}`)
	ss.recv(t)

	srv.BeginDrain()
	select {
	case err := <-ss.done:
		if err != nil {
			t.Fatalf("drained ServeStdio: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeStdio did not return after BeginDrain")
	}
}

// TestStdioConcurrentDispatch checks that responses are correlated by id, not
// order: many ops in flight at once, every line parses alone, every id comes
// back exactly once.
func TestStdioConcurrentDispatch(t *testing.T) {
	srv := New(Config{MaxInflight: 4, MaxQueue: 64})
	ss := startStdio(t, srv)

	const nReq = 16
	for i := 0; i < nReq; i++ {
		ss.send(t, fmt.Sprintf(`{"id":%d,"op":"eval","req":{"n":6,"c":2,"express":[{"From":0,"To":%d}]}}`, i, 2+i%4))
	}
	seen := map[string]bool{}
	for i := 0; i < nReq; i++ {
		resp := ss.recv(t)
		if !resp.OK {
			t.Fatalf("eval %s failed: %+v", resp.ID, resp.Error)
		}
		id := string(resp.ID)
		if seen[id] {
			t.Fatalf("id %s answered twice", id)
		}
		seen[id] = true
	}
	ss.send(t, `{"op":"shutdown"}`)
	ss.recv(t)
	if err := <-ss.done; err != nil {
		t.Fatal(err)
	}
}

// syncWriter makes a bytes.Buffer safe for the concurrent line writer.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
