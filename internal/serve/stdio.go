package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"explink/internal/api"
	"explink/internal/runctl"
	"explink/internal/stats"
)

// The stdio transport speaks newline-delimited JSON, the protocol shape an
// external timing engine (BookSim-style main-engine + service split) drives:
// one request object per line in, one response object per line out, matched
// by the client-chosen id. Requests dispatch concurrently through the same
// admission gate as HTTP, so response order is not request order — clients
// correlate by id.
//
//	→ {"id":1,"op":"solve","req":{"n":8,"c":5}}
//	← {"id":1,"ok":true,"result":{"best":{...},"all":[...]}}
//	→ {"id":2,"op":"eval","req":{"n":8,"c":3,"express":[...]}}
//	← {"id":2,"ok":false,"error":{"kind":"config","message":"..."}}
//
// Ops: solve, eval, sim, exp, pareto (api.SolveRequest/EvalRequest/
// SimRequest/ExpRequest/ParetoRequest payloads), ping (liveness + drain
// status, never gated) and shutdown (stop reading, finish in-flight work,
// exit the loop).

// stdioRequest is one inbound line.
type stdioRequest struct {
	// ID is echoed verbatim on the response; any JSON value works.
	ID json.RawMessage `json:"id,omitempty"`
	// Op selects the operation: solve, eval, sim, exp, pareto, ping,
	// shutdown.
	Op string `json:"op"`
	// Req is the op's request payload (same schema as the HTTP body).
	Req json.RawMessage `json:"req,omitempty"`
}

// stdioResponse is one outbound line. A truncated run (drain, deadlock) can
// carry both a partial Result and the classifying Error; OK reports whether
// the op completed cleanly.
type stdioResponse struct {
	ID     json.RawMessage `json:"id,omitempty"`
	OK     bool            `json:"ok"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *api.ErrorBody  `json:"error,omitempty"`
}

// stdioMaxLine bounds one request line (an /v1/eval traffic matrix is the
// largest legitimate payload).
const stdioMaxLine = maxBodyBytes

// ServeStdio runs the JSON-lines protocol over r/w until EOF, a shutdown op,
// ctx cancellation or BeginDrain, whichever comes first; it waits for
// in-flight ops before returning. Responses are written whole-line under a
// mutex, so concurrent ops never interleave bytes.
func (s *Server) ServeStdio(ctx context.Context, r io.Reader, w io.Writer) error {
	var (
		wmu sync.Mutex
		wg  sync.WaitGroup
	)
	write := func(resp stdioResponse) {
		buf, err := json.Marshal(resp)
		if err != nil {
			// Result was pre-sanitized; this is unreachable short of a broken
			// ID payload. Degrade to a bare error line.
			buf, _ = json.Marshal(stdioResponse{ID: resp.ID, Error: &api.ErrorBody{Kind: "internal", Message: err.Error()}})
		}
		wmu.Lock()
		defer wmu.Unlock()
		w.Write(append(buf, '\n'))
	}

	// The blocking line reader runs in its own goroutine so the dispatch
	// loop can also notice cancellation/drain; after either, the reader
	// goroutine dies with the process (or on stdin close).
	lines := make(chan []byte)
	readErr := make(chan error, 1)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64<<10), stdioMaxLine)
		for sc.Scan() {
			line := make([]byte, len(sc.Bytes()))
			copy(line, sc.Bytes())
			select {
			case lines <- line:
			case <-ctx.Done():
				return
			case <-s.base.Done():
				return
			}
		}
		readErr <- sc.Err()
	}()

	defer wg.Wait()
	for {
		select {
		case <-ctx.Done():
			return runctl.Cancelled(ctx)
		case <-s.base.Done():
			return nil // draining: stop admitting, finish in-flight (deferred wg.Wait)
		case line, ok := <-lines:
			if !ok {
				select {
				case err := <-readErr:
					return err
				default:
					return nil
				}
			}
			var req stdioRequest
			if err := json.Unmarshal(line, &req); err != nil {
				write(stdioResponse{Error: &api.ErrorBody{Kind: "config",
					Message: fmt.Sprintf("bad request line: %v", err)}})
				continue
			}
			switch req.Op {
			case "ping":
				status := "ok"
				if s.gate.draining() {
					status = "draining"
				}
				raw, _ := json.Marshal(map[string]string{"status": status, "schema": api.SchemaVersion})
				write(stdioResponse{ID: req.ID, OK: true, Result: raw})
			case "shutdown":
				write(stdioResponse{ID: req.ID, OK: true})
				return nil
			case "solve", "eval", "sim", "exp", "pareto":
				wg.Add(1)
				go func(req stdioRequest) {
					defer wg.Done()
					write(s.stdioDispatch(ctx, req))
				}(req)
			default:
				write(stdioResponse{ID: req.ID, Error: &api.ErrorBody{Kind: "config",
					Message: fmt.Sprintf("unknown op %q", req.Op)}})
			}
		}
	}
}

// stdioDispatch runs one gated op and builds its response line. It mirrors
// the HTTP path: same admission gate, same drain-aware context, same
// request types, same error taxonomy — only the framing differs.
func (s *Server) stdioDispatch(ctx context.Context, req stdioRequest) stdioResponse {
	s.met.request("stdio")
	release, err := s.gate.acquire(ctx)
	if err != nil {
		s.met.reject(reasonOf(err))
		return stdioError(req.ID, err)
	}
	s.wg.Add(1)
	rctx, cancel := context.WithCancelCause(ctx)
	stop := context.AfterFunc(s.base, func() { cancel(context.Cause(s.base)) })
	start := time.Now()
	defer func() {
		stop()
		cancel(nil)
		release()
		s.met.observe("stdio", time.Since(start))
		s.wg.Done()
	}()

	result, err := s.stdioRun(rctx, req)
	if result == nil {
		s.met.failure("stdio")
		return stdioError(req.ID, err)
	}
	raw, _, merr := stats.MarshalSanitized(result)
	if merr != nil {
		s.met.failure("stdio")
		return stdioError(req.ID, merr)
	}
	resp := stdioResponse{ID: req.ID, OK: err == nil, Result: raw}
	if err != nil {
		s.met.failure("stdio")
		resp.Error = api.ErrorBodyOf(err)
	}
	return resp
}

// stdioRun parses, validates and executes one op payload, returning the
// response value to marshal (nil means pure failure) and the run error. A
// truncated sim run returns both: partial data plus its classifying error.
func (s *Server) stdioRun(ctx context.Context, req stdioRequest) (any, error) {
	switch req.Op {
	case "solve":
		var sr api.SolveRequest
		if err := unmarshalReq(req.Req, &sr); err != nil {
			return nil, err
		}
		sr.Normalize()
		if err := sr.Validate(); err != nil {
			return nil, err
		}
		best, all, err := sr.Solve(ctx, s.store)
		if err != nil {
			return nil, err
		}
		return api.NewSolveResponse(best, all), nil
	case "eval":
		var er api.EvalRequest
		if err := unmarshalReq(req.Req, &er); err != nil {
			return nil, err
		}
		er.Normalize()
		if err := er.Validate(); err != nil {
			return nil, err
		}
		resp, err := er.Eval()
		if err != nil {
			return nil, err
		}
		return resp, nil
	case "sim":
		var mr api.SimRequest
		if err := unmarshalReq(req.Req, &mr); err != nil {
			return nil, err
		}
		mr.Normalize()
		if err := mr.Validate(); err != nil {
			return nil, err
		}
		resp, err := s.runSim(ctx, &mr)
		if err != nil && !resp.Partial() {
			return nil, err
		}
		resp.Error = api.ErrorBodyOf(err)
		return resp, err
	case "exp":
		var xr api.ExpRequest
		if err := unmarshalReq(req.Req, &xr); err != nil {
			return nil, err
		}
		xr.Normalize()
		if err := xr.Validate(); err != nil {
			return nil, err
		}
		sel, err := api.SelectExperiments(xr.Experiments)
		if err != nil {
			return nil, err
		}
		return s.runExp(ctx, sel, &xr, nil), nil
	case "pareto":
		var pr api.ParetoRequest
		if err := unmarshalReq(req.Req, &pr); err != nil {
			return nil, err
		}
		pr.Normalize()
		if err := pr.Validate(); err != nil {
			return nil, err
		}
		f, err := pr.Solve(ctx, s.store)
		if err != nil {
			return nil, err
		}
		return api.NewParetoResponse(f), nil
	}
	return nil, fmt.Errorf("unknown op %q: %w", req.Op, runctl.ErrConfig)
}

func stdioError(id json.RawMessage, err error) stdioResponse {
	_, kind := statusOf(err)
	return stdioResponse{ID: id, Error: &api.ErrorBody{Kind: kind, Message: err.Error()}}
}

// unmarshalReq parses an op payload strictly, classifying failures as config
// errors like the HTTP body decoder.
func unmarshalReq(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		raw = []byte("{}")
	}
	return decodeBody(bytes.NewReader(raw), v)
}
