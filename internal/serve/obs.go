package serve

import (
	"time"

	"explink/internal/obs"
)

// serveOps are the request kinds the server instruments; pre-registering
// every (series, label) pair keeps the hot path free of registry lookups.
var serveOps = []string{"solve", "eval", "sim", "exp", "pareto", "stdio", "work"}

// rejectReasons are the admission-failure classes (see reasonOf); "" —
// client disconnected while queued — is counted as "cancelled".
var rejectReasons = []string{"draining", "overloaded", "rate-limited", "cancelled"}

// metrics holds the server's exported instruments. All of them are nil-safe
// no-ops when the server was built without a registry.
type metrics struct {
	requests map[string]*obs.Counter // serve_requests_total{op}
	failures map[string]*obs.Counter // serve_failures_total{op}
	rejected map[string]*obs.Counter // serve_rejected_total{reason}
	timers   map[string]*obs.Timer   // serve_request_total/_seconds_total{op}
}

func newMetrics(reg *obs.Registry, g *gate) *metrics {
	m := &metrics{
		requests: make(map[string]*obs.Counter, len(serveOps)),
		failures: make(map[string]*obs.Counter, len(serveOps)),
		rejected: make(map[string]*obs.Counter, len(rejectReasons)),
		timers:   make(map[string]*obs.Timer, len(serveOps)),
	}
	for _, op := range serveOps {
		m.requests[op] = reg.Counter("serve_requests_total", "requests received", obs.L("op", op))
		m.failures[op] = reg.Counter("serve_failures_total", "requests that returned an error", obs.L("op", op))
		m.timers[op] = reg.Timer("serve_request", "request wall time", obs.L("op", op))
	}
	for _, reason := range rejectReasons {
		m.rejected[reason] = reg.Counter("serve_rejected_total", "requests rejected at admission", obs.L("reason", reason))
	}
	reg.Func("serve_inflight", "requests currently holding a gate slot", func() float64 { return float64(g.inflight()) })
	reg.Func("serve_queued", "requests waiting for a gate slot", func() float64 { return float64(g.queued()) })
	reg.Func("serve_draining", "1 while the server is draining", func() float64 {
		if g.draining() {
			return 1
		}
		return 0
	})
	return m
}

func (m *metrics) request(op string) { m.requests[op].Inc() }
func (m *metrics) failure(op string) { m.failures[op].Inc() }

func (m *metrics) reject(reason string) {
	if reason == "" {
		reason = "cancelled"
	}
	m.rejected[reason].Inc()
}

func (m *metrics) observe(op string, d time.Duration) { m.timers[op].Observe(d) }
