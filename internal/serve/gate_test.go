package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGateDrainRejectRace pins the drain contract under the exact race the
// old code lost: a queued waiter whose semaphore slot and the drain channel
// become ready at the same moment. Once beginDrain has returned, no waiter
// may be admitted — the select's random arm choice must not leak a slot past
// the drain. Run with -race; 200 iterations make the unfixed 50/50 arm pick
// fail with overwhelming probability.
func TestGateDrainRejectRace(t *testing.T) {
	for i := 0; i < 200; i++ {
		g := newGate(1, 4)
		rel, err := g.acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		waitErr := make(chan error, 1)
		go func() {
			_, err := g.acquire(context.Background())
			waitErr <- err
		}()
		deadline := time.Now().Add(2 * time.Second)
		for g.queued() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("waiter never queued")
			}
			time.Sleep(time.Microsecond)
		}
		// Drain first, then free the slot: both select arms are now ready
		// while the drain has definitely begun, so admission is a violation.
		g.beginDrain()
		rel()
		if err := <-waitErr; !errors.Is(err, ErrDraining) {
			t.Fatalf("iteration %d: queued waiter admitted after drain began: %v", i, err)
		}
		if g.inflight() != 0 {
			t.Fatalf("iteration %d: rejected waiter kept its slot", i)
		}
	}
}

// TestGateDrainFastPathRace covers the unqueued flavour of the same race:
// an acquirer that passes the initial drain check, then races beginDrain to
// the free slot. Whatever the interleaving, an acquirer that loses must get
// ErrDraining and the slot must end free.
func TestGateDrainFastPathRace(t *testing.T) {
	for i := 0; i < 200; i++ {
		g := newGate(1, 0)
		start := make(chan struct{})
		got := make(chan error, 1)
		go func() {
			<-start
			rel, err := g.acquire(context.Background())
			if err == nil {
				rel()
			}
			got <- err
		}()
		go func() {
			<-start
			g.beginDrain()
		}()
		close(start)
		err := <-got
		if err != nil && !errors.Is(err, ErrDraining) {
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
		if g.inflight() != 0 {
			t.Fatalf("iteration %d: slot leaked (admitted=%v)", i, err == nil)
		}
	}
}

// TestLimiterCapUnderFreshFlood pins the cap against the spoofed-client scan
// the old code lost to: every bucket fresh (nothing for evictStale to drop),
// new keys arriving faster than the scan interval. The table must never grow
// past limiterMaxClients.
func TestLimiterCapUnderFreshFlood(t *testing.T) {
	l := newLimiter(100, 1)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < limiterMaxClients+512; i++ {
		l.allow(fmt.Sprintf("spoof-%d", i))
		// Advance by far less than the idle threshold: every bucket stays
		// fresh, so only the sampled-eviction fallback can hold the cap.
		now = now.Add(time.Microsecond)
		if n := len(l.buckets); n > limiterMaxClients {
			t.Fatalf("bucket table grew past the cap: %d after %d keys", n, i+1)
		}
	}
	if n := len(l.buckets); n != limiterMaxClients {
		t.Fatalf("table below cap after flood: %d", n)
	}
}

// TestLimiterCapConcurrent hammers the limiter with distinct keys from many
// goroutines (run with -race): the cap must hold and no internal state may
// race.
func TestLimiterCapConcurrent(t *testing.T) {
	l := newLimiter(100, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2*limiterMaxClients/8; i++ {
				l.allow(fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	if n := len(l.buckets); n > limiterMaxClients {
		t.Fatalf("bucket table grew past the cap under concurrency: %d", n)
	}
}
