// Package traffic generates the workloads of the paper's evaluation
// (Section 5.1 and 5.4): the classic synthetic patterns (uniform random,
// transpose, bit-reverse, and friends) and synthetic proxies for the ten
// PARSEC 2.0 benchmarks. It also collects node-to-node traffic matrices for
// the application-specific flow of Section 5.6.4.
//
// Nodes are identified by id = y*n + x on an n x n network. A Pattern may
// return the source itself; callers drop such packets (a node does not use
// the network to talk to itself), which matches how gem5's synthetic
// injectors handle self-addressed traffic.
package traffic

import (
	"fmt"
	"math/bits"

	"explink/internal/stats"
)

// Pattern chooses a destination for each injected packet.
type Pattern interface {
	Name() string
	// Dest returns the destination node for a packet injected at src.
	// A return value equal to src means "drop this packet".
	Dest(src int, rng *stats.RNG) int
}

// uniform implements uniform-random traffic (UR).
type uniform struct{ nodes int }

// UniformRandom sends each packet to a destination drawn uniformly from all
// other nodes of an n x n network.
func UniformRandom(n int) Pattern { return uniform{nodes: n * n} }

// UniformRandomRect is UniformRandom over a rectangular w x h network.
func UniformRandomRect(w, h int) Pattern { return uniform{nodes: w * h} }

// UniformRandomN is UniformRandom over an arbitrary node count, for
// concentrated networks where several cores share each router.
func UniformRandomN(nodes int) Pattern { return uniform{nodes: nodes} }

func (u uniform) Name() string { return "UR" }

func (u uniform) Dest(src int, rng *stats.RNG) int {
	d := rng.Intn(u.nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// permutation wraps a fixed src->dst mapping (TP, BR, BC, shuffle, ...).
type permutation struct {
	name string
	dst  []int
}

func (p permutation) Name() string                   { return p.name }
func (p permutation) Dest(src int, _ *stats.RNG) int { return p.dst[src] }
func (p permutation) Mapping(src int) int            { return p.dst[src] }

func makePermutation(name string, n int, f func(x, y int) (int, int)) Pattern {
	dst := make([]int, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx, dy := f(x, y)
			dst[y*n+x] = dy*n + dx
		}
	}
	return permutation{name: name, dst: dst}
}

// Transpose sends (x, y) to (y, x); diagonal nodes inject nothing.
func Transpose(n int) Pattern {
	return makePermutation("TP", n, func(x, y int) (int, int) { return y, x })
}

// BitReverse sends node id to the id with its bits reversed. n must be a
// power of two.
func BitReverse(n int) Pattern {
	b := addrBits(n)
	return makePermutation("BR", n, func(x, y int) (int, int) {
		id := y*n + x
		rev := int(bits.Reverse64(uint64(id)) >> (64 - b))
		return rev % n, rev / n
	})
}

// BitComplement sends node id to its bitwise complement.
func BitComplement(n int) Pattern {
	b := addrBits(n)
	mask := (1 << b) - 1
	return makePermutation("BC", n, func(x, y int) (int, int) {
		id := (y*n + x) ^ mask
		return id % n, id / n
	})
}

// Shuffle sends node id to rotate-left-by-one of its address bits.
func Shuffle(n int) Pattern {
	b := addrBits(n)
	mask := (1 << b) - 1
	return makePermutation("SH", n, func(x, y int) (int, int) {
		id := y*n + x
		id = ((id << 1) | (id >> (b - 1))) & mask
		return id % n, id / n
	})
}

// Tornado shifts each dimension by ceil(n/2)-1, the adversarial pattern for
// rings and meshes.
func Tornado(n int) Pattern {
	shift := (n+1)/2 - 1
	return makePermutation("TOR", n, func(x, y int) (int, int) {
		return (x + shift) % n, (y + shift) % n
	})
}

// Neighbor sends each packet one hop to the right (wrapping), a best-case
// local pattern.
func Neighbor(n int) Pattern {
	return makePermutation("NBR", n, func(x, y int) (int, int) {
		return (x + 1) % n, y
	})
}

func addrBits(n int) int {
	nodes := n * n
	if nodes&(nodes-1) != 0 {
		panic(fmt.Sprintf("traffic: bit patterns need a power-of-two node count, got %d", nodes))
	}
	return bits.TrailingZeros(uint(nodes))
}

// hotspot mixes a background pattern with concentrated traffic to a fixed
// set of hot nodes (e.g. memory controllers).
type hotspot struct {
	name string
	bg   Pattern
	hot  []int
	frac float64
}

// Hotspot sends each packet to one of the hot nodes with probability frac
// and follows the background pattern otherwise. A hot node that is itself a
// source redirects its own hotspot traffic uniformly over the other hot
// nodes, so every source injects the full frac share; with a single hot node
// that node has no other target and its hotspot draws degenerate to dropped
// self-addressed packets (the one case where injected hotspot traffic falls
// short of frac).
func Hotspot(n int, hot []int, frac float64, background Pattern) Pattern {
	if len(hot) == 0 {
		panic("traffic: hotspot needs at least one hot node")
	}
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("traffic: hotspot fraction %g out of range", frac))
	}
	return hotspot{name: fmt.Sprintf("HS%.0f%%", frac*100), bg: background, hot: hot, frac: frac}
}

func (h hotspot) Name() string { return h.name }

func (h hotspot) Dest(src int, rng *stats.RNG) int {
	if rng.Bool(h.frac) {
		d := h.hot[rng.Intn(len(h.hot))]
		if d != src || len(h.hot) == 1 {
			return d
		}
		// The drawn hot node is the source itself: redraw uniformly over the
		// other hot nodes instead of silently dropping the packet, so hot-node
		// sources still inject their full frac share of hotspot traffic.
		j := rng.Intn(len(h.hot) - 1)
		for _, node := range h.hot {
			if node == src {
				continue
			}
			if j == 0 {
				return node
			}
			j--
		}
		return d // unreachable unless hot lists src twice; caller drops it
	}
	return h.bg.Dest(src, rng)
}

// Matrix estimates the node-to-node traffic matrix gamma of a pattern by
// sampling: samples destinations per source, each contributing one unit.
// Deterministic patterns produce exact (scaled) matrices.
func Matrix(n int, p Pattern, samplesPerSource int, rng *stats.RNG) [][]float64 {
	nn := n * n
	g := make([][]float64, nn)
	for s := range g {
		g[s] = make([]float64, nn)
		for k := 0; k < samplesPerSource; k++ {
			d := p.Dest(s, rng)
			if d != s {
				g[s][d]++
			}
		}
	}
	return g
}
