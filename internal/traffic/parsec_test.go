package traffic

import (
	"testing"

	"explink/internal/stats"
)

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 10 {
		t.Fatalf("got %d benchmarks, want 10 (the PARSEC set of Fig. 6)", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		if b.InjRate <= 0 || b.InjRate > 0.2 {
			t.Fatalf("%s: implausible injection rate %g", b.Name, b.InjRate)
		}
		if b.LocalFrac+b.HotFrac+b.PartnerFrac > 1 {
			t.Fatalf("%s: fractions exceed 1", b.Name)
		}
		if b.PartnerFrac > 0 && b.PartnerShift == 0 {
			t.Fatalf("%s: partner traffic with zero shift would self-address", b.Name)
		}
		if b.LongFrac != 0.2 {
			t.Fatalf("%s: long fraction %g, want the paper's 0.2", b.Name, b.LongFrac)
		}
	}
	for _, want := range []string{"blackscholes", "canneal", "x264"} {
		if !names[want] {
			t.Fatalf("missing benchmark %q", want)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	b, err := BenchmarkByName("canneal")
	if err != nil || b.Name != "canneal" {
		t.Fatalf("lookup failed: %v %v", b, err)
	}
	if _, err := BenchmarkByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestParsecPatternDestinations(t *testing.T) {
	n := 8
	for _, b := range Benchmarks() {
		p := b.Pattern(n)
		rng := stats.NewRNG(13)
		hot := map[int]bool{0: true, 7: true, 56: true, 63: true}
		hotCount, total := 0, 20000
		for i := 0; i < total; i++ {
			src := rng.Intn(64)
			d := p.Dest(src, rng)
			if d < 0 || d >= 64 {
				t.Fatalf("%s: destination %d out of range", b.Name, d)
			}
			if hot[d] {
				hotCount++
			}
		}
		frac := float64(hotCount) / float64(total)
		// Hot traffic should be at least the configured fraction (corners
		// also receive local/uniform traffic).
		if frac < b.HotFrac*0.8 {
			t.Fatalf("%s: hotspot fraction %g below configured %g", b.Name, frac, b.HotFrac)
		}
	}
}

func TestParsecLocality(t *testing.T) {
	n := 8
	b := Benchmark{Name: "local", InjRate: 0.01, LocalFrac: 1, Radius: 1, HotFrac: 0, LongFrac: 0.2}
	p := b.Pattern(n)
	rng := stats.NewRNG(17)
	src := 27 // (3,3): interior node, both neighbors in range
	for i := 0; i < 5000; i++ {
		d := p.Dest(src, rng)
		if d == src {
			continue // dropped
		}
		dx, dy := d%n-src%n, d/n-src/n
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy > 1 {
			t.Fatalf("radius-1 locality violated: dest %d from %d", d, src)
		}
	}
}

func TestBenchmarkMix(t *testing.T) {
	b := Benchmarks()[0]
	mix := b.Mix()
	if len(mix) != 2 || mix[0].Bits != 128 || mix[1].Bits != 512 {
		t.Fatalf("mix = %v", mix)
	}
	if mix[0].Frac+mix[1].Frac != 1 {
		t.Fatalf("mix fractions = %v", mix)
	}
}
