package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"explink/internal/stats"
)

func TestUniformRandomExcludesSelf(t *testing.T) {
	p := UniformRandom(8)
	rng := stats.NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 20000; i++ {
		d := p.Dest(17, rng)
		if d == 17 {
			t.Fatal("UR returned the source")
		}
		if d < 0 || d >= 64 {
			t.Fatalf("UR out of range: %d", d)
		}
		seen[d] = true
	}
	if len(seen) != 63 {
		t.Fatalf("UR reached %d destinations, want 63", len(seen))
	}
}

func TestUniformRandomIsUniform(t *testing.T) {
	p := UniformRandom(4)
	rng := stats.NewRNG(2)
	counts := make([]int, 16)
	const trials = 150000
	for i := 0; i < trials; i++ {
		counts[p.Dest(0, rng)]++
	}
	want := float64(trials) / 15
	for d := 1; d < 16; d++ {
		if math.Abs(float64(counts[d])-want) > 0.1*want {
			t.Fatalf("dest %d count %d deviates from %g", d, counts[d], want)
		}
	}
}

func TestTranspose(t *testing.T) {
	p := Transpose(8)
	// (3, 5) -> (5, 3): src 5*8+3=43 -> 3*8+5=29.
	if d := p.Dest(43, nil); d != 29 {
		t.Fatalf("transpose(43) = %d, want 29", d)
	}
	// Diagonal maps to itself (dropped by the injector).
	if d := p.Dest(9, nil); d != 9 {
		t.Fatalf("transpose diagonal = %d", d)
	}
}

func TestBitReverse(t *testing.T) {
	p := BitReverse(8)
	// 6 bits; id 1 = 000001 -> 100000 = 32.
	if d := p.Dest(1, nil); d != 32 {
		t.Fatalf("bitreverse(1) = %d, want 32", d)
	}
	if d := p.Dest(0, nil); d != 0 {
		t.Fatalf("bitreverse(0) = %d", d)
	}
	// Involution property.
	rng := stats.NewRNG(3)
	if err := quick.Check(func(raw uint8) bool {
		src := int(raw) % 64
		return p.Dest(p.Dest(src, rng), rng) == src
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitComplement(t *testing.T) {
	p := BitComplement(8)
	if d := p.Dest(0, nil); d != 63 {
		t.Fatalf("bc(0) = %d", d)
	}
	if d := p.Dest(21, nil); d != 42 {
		t.Fatalf("bc(21) = %d", d)
	}
}

func TestShuffle(t *testing.T) {
	p := Shuffle(8)
	// 6 bits: 100000 (32) -> 000001 (1).
	if d := p.Dest(32, nil); d != 1 {
		t.Fatalf("shuffle(32) = %d", d)
	}
	if d := p.Dest(3, nil); d != 6 {
		t.Fatalf("shuffle(3) = %d", d)
	}
}

func TestTornado(t *testing.T) {
	p := Tornado(8)
	// Shift of ceil(8/2)-1 = 3 in both dims: (0,0) -> (3,3) = 27.
	if d := p.Dest(0, nil); d != 27 {
		t.Fatalf("tornado(0) = %d", d)
	}
}

func TestNeighbor(t *testing.T) {
	p := Neighbor(8)
	if d := p.Dest(0, nil); d != 1 {
		t.Fatalf("neighbor(0) = %d", d)
	}
	if d := p.Dest(7, nil); d != 0 { // wraps within the row
		t.Fatalf("neighbor(7) = %d", d)
	}
}

func TestPermutationsAreValidNodes(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, p := range []Pattern{Transpose(8), BitReverse(8), BitComplement(8), Shuffle(8), Tornado(8), Neighbor(8)} {
		for src := 0; src < 64; src++ {
			d := p.Dest(src, rng)
			if d < 0 || d >= 64 {
				t.Fatalf("%s(%d) = %d out of range", p.Name(), src, d)
			}
		}
	}
}

func TestBitPatternPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BitReverse(6)
}

func TestHotspot(t *testing.T) {
	hot := []int{0, 63}
	p := Hotspot(8, hot, 0.5, UniformRandom(8))
	rng := stats.NewRNG(11)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		d := p.Dest(30, rng)
		if d == 0 || d == 63 {
			hits++
		}
	}
	frac := float64(hits) / trials
	// 50% direct hotspot traffic plus the background's occasional hits.
	if frac < 0.48 || frac > 0.55 {
		t.Fatalf("hotspot fraction = %g", frac)
	}
}

// TestHotspotFromHotSource pins the frac contract for hot-node sources: a
// draw landing on the source redirects to another hot node instead of being
// dropped, so a hot source still injects its full hotspot share.
func TestHotspotFromHotSource(t *testing.T) {
	hot := []int{0, 7, 56, 63}
	p := Hotspot(8, hot, 0.5, UniformRandom(8))
	rng := stats.NewRNG(11)
	hits, self := 0, 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		d := p.Dest(0, rng) // src is itself a hot node
		if d == 0 {
			self++
		}
		if d == 7 || d == 56 || d == 63 {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.48 || frac > 0.56 {
		t.Fatalf("hot-source hotspot fraction = %g, want ~0.5 (plus background hits)", frac)
	}
	// The only self-addressed draws left come from the background pattern,
	// which never returns src for uniform traffic.
	if self != 0 {
		t.Fatalf("%d self-addressed packets from a hot source; redraw should eliminate them", self)
	}
}

// TestHotspotSingleHotNode documents the degenerate case: with one hot node
// there is no other target, so that node's own hotspot draws stay
// self-addressed and are dropped by the caller.
func TestHotspotSingleHotNode(t *testing.T) {
	p := Hotspot(8, []int{5}, 1.0, UniformRandom(8))
	rng := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		if d := p.Dest(5, rng); d != 5 {
			t.Fatalf("single-hot-node source drew %d, want self (dropped)", d)
		}
		if d := p.Dest(9, rng); d != 5 {
			t.Fatalf("non-hot source drew %d, want 5", d)
		}
	}
}

func TestHotspotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty hotspot list")
		}
	}()
	Hotspot(8, nil, 0.5, UniformRandom(8))
}

func TestMatrix(t *testing.T) {
	n := 4
	g := Matrix(n, Transpose(n), 10, stats.NewRNG(1))
	// Transpose: deterministic, 10 units from each off-diagonal node to its
	// mirror, zero elsewhere.
	for s := 0; s < 16; s++ {
		x, y := s%n, s/n
		d := x*n + y
		for j := 0; j < 16; j++ {
			want := 0.0
			if j == d && d != s {
				want = 10
			}
			if g[s][j] != want {
				t.Fatalf("gamma[%d][%d] = %g, want %g", s, j, g[s][j], want)
			}
		}
	}
}

func TestMatrixUniformRoughlyFlat(t *testing.T) {
	n := 4
	g := Matrix(n, UniformRandom(n), 3000, stats.NewRNG(5))
	for s := 0; s < 16; s++ {
		if g[s][s] != 0 {
			t.Fatal("self traffic recorded")
		}
		var sum float64
		for d := 0; d < 16; d++ {
			sum += g[s][d]
		}
		if sum != 3000 {
			t.Fatalf("row %d sums to %g", s, sum)
		}
	}
}
