package traffic

import (
	"fmt"

	"explink/internal/stats"
)

// This file provides synthetic proxies for the ten PARSEC 2.0 benchmarks the
// paper evaluates (Fig. 6). The real traces require gem5 full-system
// simulation of the actual applications — a data gate in this environment —
// so each benchmark is modeled by the aggregate traffic statistics that the
// placement problem actually depends on: injection rate, spatial locality,
// directory/memory-controller hotspotting, and the long/short packet mix.
// The per-benchmark constants below are plausible relative intensities chosen
// to span the range reported in NoC characterization studies (canneal and
// dedup traffic-heavy and irregular; blackscholes and swaptions compute-bound
// and light); they are calibration knobs, not measurements, and DESIGN.md
// documents the substitution.

// Benchmark describes one synthetic application proxy.
type Benchmark struct {
	Name string
	// InjRate is the packet injection rate per node per cycle.
	InjRate float64
	// LocalFrac is the probability a packet goes to a node within Radius
	// (Manhattan), modeling near-neighbor sharing.
	LocalFrac float64
	// Radius bounds local destinations.
	Radius int
	// HotFrac is the probability a packet targets a memory-controller node
	// (the four corners), modeling directory/memory traffic.
	HotFrac float64
	// PartnerFrac is the probability a packet goes to the node's fixed
	// communication partner, modeling structured sharing: pipeline stages
	// (dedup, ferret), producer-consumer rings (x264), and exchange phases.
	PartnerFrac float64
	// PartnerShift defines the partner: node id + PartnerShift mod N.
	PartnerShift int
	// LongFrac is the fraction of long (512-bit) packets; the remainder are
	// short (128-bit). The paper's 1:4 ratio gives 0.2.
	LongFrac float64
}

// Benchmarks returns the ten PARSEC proxies in the order of Fig. 6.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Name: "blackscholes", InjRate: 0.008, LocalFrac: 0.30, Radius: 2, HotFrac: 0.50, PartnerFrac: 0.10, PartnerShift: 1, LongFrac: 0.20},
		{Name: "bodytrack", InjRate: 0.015, LocalFrac: 0.25, Radius: 2, HotFrac: 0.30, PartnerFrac: 0.35, PartnerShift: 28, LongFrac: 0.20},
		{Name: "canneal", InjRate: 0.040, LocalFrac: 0.15, Radius: 2, HotFrac: 0.25, PartnerFrac: 0.10, PartnerShift: 27, LongFrac: 0.20},
		{Name: "dedup", InjRate: 0.030, LocalFrac: 0.15, Radius: 3, HotFrac: 0.25, PartnerFrac: 0.50, PartnerShift: 32, LongFrac: 0.20},
		{Name: "ferret", InjRate: 0.025, LocalFrac: 0.15, Radius: 3, HotFrac: 0.25, PartnerFrac: 0.50, PartnerShift: 36, LongFrac: 0.20},
		{Name: "fluidanimate", InjRate: 0.020, LocalFrac: 0.60, Radius: 2, HotFrac: 0.10, PartnerFrac: 0.20, PartnerShift: 1, LongFrac: 0.20},
		{Name: "raytrace", InjRate: 0.012, LocalFrac: 0.45, Radius: 2, HotFrac: 0.30, PartnerFrac: 0.15, PartnerShift: 2, LongFrac: 0.20},
		{Name: "swaptions", InjRate: 0.006, LocalFrac: 0.30, Radius: 2, HotFrac: 0.45, PartnerFrac: 0.15, PartnerShift: 3, LongFrac: 0.20},
		{Name: "vips", InjRate: 0.022, LocalFrac: 0.30, Radius: 2, HotFrac: 0.25, PartnerFrac: 0.35, PartnerShift: 20, LongFrac: 0.20},
		{Name: "x264", InjRate: 0.028, LocalFrac: 0.40, Radius: 2, HotFrac: 0.15, PartnerFrac: 0.35, PartnerShift: 9, LongFrac: 0.20},
	}
}

// BenchmarkByName looks a proxy up by its PARSEC name.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("traffic: unknown benchmark %q", name)
}

// parsecPattern samples destinations per the benchmark's statistics.
type parsecPattern struct {
	b   Benchmark
	n   int
	hot []int
}

// Pattern instantiates the proxy on an n x n network. Memory controllers sit
// at the four corners.
func (b Benchmark) Pattern(n int) Pattern {
	hot := []int{0, n - 1, n * (n - 1), n*n - 1}
	return parsecPattern{b: b, n: n, hot: hot}
}

func (p parsecPattern) Name() string { return p.b.Name }

func (p parsecPattern) Dest(src int, rng *stats.RNG) int {
	n := p.n
	r := rng.Float64()
	switch {
	case r < p.b.PartnerFrac:
		nodes := n * n
		return (src + p.b.PartnerShift%nodes + nodes) % nodes
	case r < p.b.PartnerFrac+p.b.HotFrac:
		return p.hot[rng.Intn(len(p.hot))]
	case r < p.b.PartnerFrac+p.b.HotFrac+p.b.LocalFrac:
		// Local destination: random offset within the Manhattan radius.
		x, y := src%n, src/n
		for attempt := 0; attempt < 8; attempt++ {
			dx := rng.Intn(2*p.b.Radius+1) - p.b.Radius
			dy := rng.Intn(2*p.b.Radius+1) - p.b.Radius
			abs := func(v int) int {
				if v < 0 {
					return -v
				}
				return v
			}
			if abs(dx)+abs(dy) == 0 || abs(dx)+abs(dy) > p.b.Radius {
				continue
			}
			nx, ny := x+dx, y+dy
			if nx >= 0 && nx < n && ny >= 0 && ny < n {
				return ny*n + nx
			}
		}
		return src // drop if no in-range neighbor was found
	default:
		d := rng.Intn(n*n - 1)
		if d >= src {
			d++
		}
		return d
	}
}

// Mix returns the benchmark's packet-size mix.
func (b Benchmark) Mix() []MixEntry {
	return []MixEntry{
		{Bits: 128, Frac: 1 - b.LongFrac},
		{Bits: 512, Frac: b.LongFrac},
	}
}

// MixEntry mirrors model.PacketClass without importing it, keeping traffic a
// leaf package.
type MixEntry struct {
	Bits int
	Frac float64
}
