package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells and renders them as an aligned plain-text
// table, the output format of every experiment driver.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row. Cells beyond the header width are kept; short rows
// are padded when rendered.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// values render with %.2f, ints with %d, everything else with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// CSV renders the table as comma-separated values (header first), quoting
// cells that contain commas or quotes, for machine-readable experiment
// output.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == cols-1 {
				b.WriteString(cell) // no trailing padding on the last column
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
