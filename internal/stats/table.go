package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells and renders them as an aligned plain-text
// table, the tabular unit of every experiment report. Its fields are exported
// (and JSON-tagged) so a Table round-trips through encoding/json unchanged;
// Report is the usual container.
type Table struct {
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows"`
	// Notes are free-form lines attached to the table, rendered directly
	// under it (e.g. the "best: C=4 ..." summary of a sweep).
	Notes []string `json:"notes,omitempty"`
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row. Cells beyond the header width are kept; short rows
// are padded when rendered.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// values render with %.2f, ints with %d, everything else with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends one note line (rendered under the table).
func (t *Table) AddNote(note string) {
	t.Notes = append(t.Notes, note)
}

// AddNotef appends a formatted note line.
func (t *Table) AddNotef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.Rows) }

// CSV renders the table as comma-separated values (header first), quoting
// cells that contain commas or quotes, for machine-readable experiment
// output. Notes are not part of the CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// String renders the table with aligned columns followed by its notes.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == cols-1 {
				b.WriteString(cell) // no trailing padding on the last column
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		writeBlock(&b, n)
	}
	return b.String()
}

// writeBlock writes s and guarantees it ends with exactly one newline, so
// multi-line notes (heatmaps, diagrams) pass through unchanged.
func writeBlock(b *strings.Builder, s string) {
	b.WriteString(s)
	if !strings.HasSuffix(s, "\n") {
		b.WriteByte('\n')
	}
}
