package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningEmpty(t *testing.T) {
	var s Running
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty Running must report zeros")
	}
}

func TestRunningKnownValues(t *testing.T) {
	var s Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %g, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %g, want %g", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var s Running
		var sum float64
		for _, v := range vals {
			s.Add(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		variance := ss / float64(len(vals)-1)
		return almostEq(s.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEq(s.Variance(), variance, 1e-6*(1+variance))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	if err := quick.Check(func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var s1, s2, all Running
		for _, v := range a {
			s1.Add(v)
			all.Add(v)
		}
		for _, v := range b {
			s2.Add(v)
			all.Add(v)
		}
		s1.Merge(&s2)
		if s1.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return almostEq(s1.Mean(), all.Mean(), 1e-6*(1+math.Abs(all.Mean()))) &&
			almostEq(s1.Variance(), all.Variance(), 1e-5*(1+all.Variance()))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	a.AddN(3.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(3.5)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Fatalf("AddN mismatch: %v vs %v", a, b)
	}
}
