package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningEmpty(t *testing.T) {
	var s Running
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty Running must report zeros")
	}
}

func TestRunningKnownValues(t *testing.T) {
	var s Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %g, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %g, want %g", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var s Running
		var sum float64
		for _, v := range vals {
			s.Add(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		variance := ss / float64(len(vals)-1)
		return almostEq(s.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEq(s.Variance(), variance, 1e-6*(1+variance))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	if err := quick.Check(func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var s1, s2, all Running
		for _, v := range a {
			s1.Add(v)
			all.Add(v)
		}
		for _, v := range b {
			s2.Add(v)
			all.Add(v)
		}
		s1.Merge(&s2)
		if s1.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return almostEq(s1.Mean(), all.Mean(), 1e-6*(1+math.Abs(all.Mean()))) &&
			almostEq(s1.Variance(), all.Variance(), 1e-5*(1+all.Variance()))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunningAddNExactFromEmpty pins the closed-form AddN against the old
// Add loop bit-for-bit on the integer latency values the simulator feeds it:
// from an empty accumulator both produce exactly {n, mean: x, m2: 0}, with no
// floating-point rounding anywhere, for any count.
func TestRunningAddNExactFromEmpty(t *testing.T) {
	for _, x := range []float64{0, 1, 7, 13, 42, 255, 4095, 1e6, 3.5} {
		for _, n := range []int64{1, 2, 3, 10, 1000, 1 << 20} {
			var a, b Running
			a.AddN(x, n)
			loop := n
			if loop > 1000 {
				loop = 1000 // the loop reference is O(n); large n is pinned analytically below
			}
			for i := int64(0); i < loop; i++ {
				b.Add(x)
			}
			if loop == n && a != b {
				t.Fatalf("AddN(%g,%d) = %+v, loop = %+v", x, n, a, b)
			}
			// Closed-form invariants hold exactly even past the loop cutoff.
			if a.Count() != n || a.Mean() != x || a.Variance() != 0 || a.Min() != x || a.Max() != x {
				t.Fatalf("AddN(%g,%d) = %+v, want {n:%d mean:%g m2:0}", x, n, a, n, x)
			}
		}
	}
}

// TestRunningAddNIsBatchMerge pins AddN's semantics on a non-empty
// accumulator: it must be bit-identical to merging a loop-built batch of the
// same samples (the closed-form parallel update), and statistically equal to
// the plain Add loop.
func TestRunningAddNIsBatchMerge(t *testing.T) {
	seedVals := []float64{3, 4, 4, 9, 17}
	for _, x := range []float64{0, 5, 12, 300} {
		for _, n := range []int64{1, 2, 7, 64} {
			var got, want, batch, loop Running
			for _, v := range seedVals {
				got.Add(v)
				want.Add(v)
				loop.Add(v)
			}
			got.AddN(x, n)
			for i := int64(0); i < n; i++ {
				batch.Add(x)
				loop.Add(x)
			}
			want.Merge(&batch)
			if got != want {
				t.Fatalf("AddN(%g,%d) = %+v, Merge(batch) = %+v", x, n, got, want)
			}
			if got.Count() != loop.Count() ||
				!almostEq(got.Mean(), loop.Mean(), 1e-9*(1+math.Abs(loop.Mean()))) ||
				!almostEq(got.Variance(), loop.Variance(), 1e-9*(1+loop.Variance())) ||
				got.Min() != loop.Min() || got.Max() != loop.Max() {
				t.Fatalf("AddN(%g,%d) = %+v diverged from loop %+v", x, n, got, loop)
			}
		}
	}
}

func TestRunningAddNNonPositive(t *testing.T) {
	var s Running
	s.Add(5)
	before := s
	s.AddN(9, 0)
	s.AddN(9, -3)
	if s != before {
		t.Fatalf("AddN with n<=0 mutated state: %+v vs %+v", s, before)
	}
}

// TestRunningMergeNilSafe pins the nil-safe convention from internal/obs:
// nil or empty operands (and a nil receiver) are no-ops, not panics.
func TestRunningMergeNilSafe(t *testing.T) {
	var s Running
	s.Add(2)
	s.Add(4)
	before := s
	s.Merge(nil)
	if s != before {
		t.Fatalf("Merge(nil) mutated state: %+v vs %+v", s, before)
	}
	var empty Running
	s.Merge(&empty)
	if s != before {
		t.Fatalf("Merge(&zero) mutated state: %+v vs %+v", s, before)
	}
	var nilRecv *Running
	nilRecv.Merge(&s) // must not panic
	nilRecv.Merge(nil)
}
