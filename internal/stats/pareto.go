package stats

import "fmt"

// Pareto-dominance utilities over objective vectors (lower is better in
// every dimension). They are the comparator layer under the vector-objective
// placement search: anneal's archive acceptance, core's frontier merge and
// the frontier report table all share these definitions, so "dominates"
// means exactly one thing across the repo.

// Dominates reports whether objective vector a Pareto-dominates b: a is no
// worse in every dimension and strictly better in at least one. Vectors must
// have equal length; mismatched lengths never dominate. Comparisons involving
// NaN are false, so a vector carrying NaN dominates nothing — which keeps the
// relation irreflexive, antisymmetric and transitive for arbitrary float
// inputs (pinned by FuzzDominates).
func Dominates(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	strict := false
	for i := range a {
		if a[i] > b[i] || a[i] != a[i] { // worse, or NaN in a
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// WeaklyDominates reports whether a is no worse than b in every dimension
// (equality allowed everywhere). This is the archive-entry rejection test: a
// candidate weakly dominated by an existing entry adds nothing to a frontier.
func WeaklyDominates(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	for i := range a {
		if a[i] > b[i] || a[i] != a[i] {
			return false
		}
	}
	return true
}

// ParetoFront returns the indices of the non-dominated points, in input
// order. Duplicate vectors do not dominate each other, so every copy of a
// non-dominated point survives; callers that want set semantics dedupe
// afterwards. The O(n²) scan is deliberate — frontier sizes here are tens of
// points, not thousands.
func ParetoFront(points [][]float64) []int {
	var front []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// CompareLex orders objective vectors lexicographically (dimension 0 first),
// the deterministic presentation order of frontier entries. Shorter vectors
// sort before longer ones when equal on the shared prefix.
func CompareLex(a, b []float64) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// FrontierTable renders a set of labelled objective vectors as a report
// table: one row per point with a label column, one %.4g column per
// dimension, and a trailing "front" column marking the Pareto-optimal rows
// with '*'. Rows render in input order; membership is computed here with
// ParetoFront so every frontier table in the repo marks dominance the same
// way.
func FrontierTable(title string, dims []string, labels []string, points [][]float64) *Table {
	header := append([]string{"placement"}, dims...)
	header = append(header, "front")
	t := NewTable(title, header...)
	onFront := make(map[int]bool)
	for _, i := range ParetoFront(points) {
		onFront[i] = true
	}
	for i, p := range points {
		row := make([]string, 0, len(p)+2)
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		row = append(row, label)
		for _, v := range p {
			row = append(row, fmt.Sprintf("%.4g", v))
		}
		mark := ""
		if onFront[i] {
			mark = "*"
		}
		row = append(row, mark)
		t.AddRow(row...)
	}
	return t
}
