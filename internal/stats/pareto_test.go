package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 2}, []float64{2, 3}, true},
		{[]float64{1, 3}, []float64{2, 3}, true},  // equal in one dim, better in the other
		{[]float64{2, 3}, []float64{2, 3}, false}, // equal everywhere
		{[]float64{1, 4}, []float64{2, 3}, false}, // trade-off
		{[]float64{2, 3}, []float64{1, 2}, false},
		{[]float64{1}, []float64{2}, true},
		{[]float64{1, 2}, []float64{1, 2, 3}, false}, // length mismatch
		{nil, nil, false},
		{[]float64{math.NaN(), 1}, []float64{5, 5}, false},
		{[]float64{math.Inf(-1), 1}, []float64{5, 1}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if !WeaklyDominates([]float64{2, 3}, []float64{2, 3}) {
		t.Error("equal vectors should weakly dominate")
	}
	if WeaklyDominates([]float64{2, 4}, []float64{2, 3}) {
		t.Error("worse vector weakly dominates")
	}
}

func TestParetoFront(t *testing.T) {
	points := [][]float64{
		{1, 5}, // front
		{2, 2}, // front
		{3, 3}, // dominated by {2,2}
		{5, 1}, // front
		{1, 5}, // duplicate of a front point: survives
		{6, 6}, // dominated
	}
	got := ParetoFront(points)
	want := []int{0, 1, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParetoFront = %v, want %v", got, want)
	}
	if f := ParetoFront(nil); f != nil {
		t.Fatalf("empty input front = %v", f)
	}
}

func TestCompareLex(t *testing.T) {
	if CompareLex([]float64{1, 2}, []float64{1, 3}) >= 0 {
		t.Error("lex order on second dim")
	}
	if CompareLex([]float64{2}, []float64{1, 9}) <= 0 {
		t.Error("lex order on first dim")
	}
	if CompareLex([]float64{1, 2}, []float64{1, 2}) != 0 {
		t.Error("equal vectors compare non-zero")
	}
	if CompareLex([]float64{1}, []float64{1, 0}) >= 0 {
		t.Error("prefix sorts first")
	}
}

func TestFrontierTable(t *testing.T) {
	tab := FrontierTable("trade-off", []string{"lat", "pow"},
		[]string{"a", "b", "c"},
		[][]float64{{1, 5}, {3, 3}, {2, 2}})
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	out := tab.String()
	if !strings.Contains(out, "front") || !strings.Contains(out, "trade-off") {
		t.Fatalf("missing header/title:\n%s", out)
	}
	// Row b (3,3) is dominated by c (2,2): no marker.
	for _, r := range tab.Rows {
		mark := r[len(r)-1]
		switch r[0] {
		case "a", "c":
			if mark != "*" {
				t.Errorf("row %s not marked on front", r[0])
			}
		case "b":
			if mark != "" {
				t.Errorf("dominated row b marked on front")
			}
		}
	}
}
