package stats

import (
	"strings"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.String() != "histogram: empty" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		p    float64
		want int
	}{{50, 50}, {95, 95}, {99, 99}, {100, 100}, {1, 1}}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("p%g = %d, want %d", c.p, got, c.want)
		}
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %g", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestHistogramSkewed(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 99; i++ {
		h.Add(10)
	}
	h.Add(1000)
	if h.Percentile(50) != 10 {
		t.Fatalf("p50 = %d", h.Percentile(50))
	}
	if h.Percentile(100) != 1000 {
		t.Fatalf("p100 = %d", h.Percentile(100))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 10; i++ {
		a.Add(1)
		b.Add(3)
	}
	a.Merge(b)
	if a.Count() != 20 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Mean() != 2 {
		t.Fatalf("mean = %g", a.Mean())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("String = %q", h.String())
	}
}
