package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.String() != "histogram: empty" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		p    float64
		want int
	}{{50, 50}, {95, 95}, {99, 99}, {100, 100}, {1, 1}}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("p%g = %d, want %d", c.p, got, c.want)
		}
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %g", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
}

// TestHistogramPercentilesNearestRankCeil pins the ⌈p·N/100⌉ rank on totals
// that are not multiples of 100, where the old truncating rank under-read by
// one (e.g. p95 of 10 samples returned the 9th smallest).
func TestHistogramPercentilesNearestRankCeil(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want int // expected value with samples 1..n
	}{
		{10, 95, 10},   // ceil(9.5) = 10; truncation reported 9
		{10, 50, 5},    // ceil(5.0) = 5: exact ranks stay put
		{10, 91, 10},   // ceil(9.1) = 10
		{10, 90, 9},    // ceil(9.0) = 9
		{3, 50, 2},     // ceil(1.5) = 2
		{3, 100, 3},    // full rank
		{7, 99, 7},     // ceil(6.93) = 7
		{1, 99, 1},     // single sample answers every percentile
		{101, 99, 100}, // ceil(99.99) = 100
		{200, 99, 198}, // ceil(198.0) = 198: integer product stays exact
	}
	for _, c := range cases {
		h := NewHistogram()
		for v := 1; v <= c.n; v++ {
			h.Add(v)
		}
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("n=%d p%g = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestHistogramSkewed(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 99; i++ {
		h.Add(10)
	}
	h.Add(1000)
	if h.Percentile(50) != 10 {
		t.Fatalf("p50 = %d", h.Percentile(50))
	}
	if h.Percentile(100) != 1000 {
		t.Fatalf("p100 = %d", h.Percentile(100))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 10; i++ {
		a.Add(1)
		b.Add(3)
	}
	a.Merge(b)
	if a.Count() != 20 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Mean() != 2 {
		t.Fatalf("mean = %g", a.Mean())
	}
}

// TestHistogramZeroValue guards the zero-value contract: a Histogram{} that
// never went through NewHistogram must accept Add and Merge (in either
// direction) instead of panicking on the nil dense slice.
func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	h.Add(4)
	h.Add(histDense + 5) // sparse path
	src := NewHistogram()
	for i := 0; i < 9; i++ {
		src.Add(2)
	}
	h.Merge(src)
	if h.Count() != 11 {
		t.Fatalf("count = %d, want 11", h.Count())
	}
	if got := h.Percentile(50); got != 2 {
		t.Fatalf("p50 = %d, want 2", got)
	}
	if h.Max() != histDense+5 {
		t.Fatalf("max = %d", h.Max())
	}

	// Merging a zero-value operand into a fresh receiver must also work, and
	// merging two zero-value histograms must stay a no-op.
	var a, b Histogram
	a.Merge(&b)
	if a.Count() != 0 {
		t.Fatalf("zero-merge count = %d", a.Count())
	}
	dst := NewHistogram()
	dst.Merge(&h)
	if dst.Count() != 11 {
		t.Fatalf("merged count = %d", dst.Count())
	}
}

// TestHistogramMergeNilSafe pins the nil-safe convention from internal/obs:
// a nil operand or receiver is a no-op, not a panic.
func TestHistogramMergeNilSafe(t *testing.T) {
	h := NewHistogram()
	h.Add(7)
	h.Merge(nil)
	if h.Count() != 1 || h.Percentile(50) != 7 {
		t.Fatalf("Merge(nil) corrupted state: %s", h)
	}
	var nilRecv *Histogram
	nilRecv.Merge(h) // must not panic
	nilRecv.Merge(nil)
}

// TestHistogramPercentileDomain pins the clamping of out-of-domain p: the
// documented contract is 0 < p <= 100, and NaN or out-of-range p previously
// reached int64(math.Ceil(...)) with platform-dependent results.
func TestHistogramPercentileDomain(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 10; v++ {
		h.Add(v)
	}
	cases := []struct {
		name string
		p    float64
		want int
	}{
		{"nan", math.NaN(), 1},
		{"zero", 0, 1},
		{"negative", -5, 1},
		{"neg-inf", math.Inf(-1), 1},
		{"tiny", 1e-300, 1}, // in-domain: rank ceil(>0) = 1
		{"over", 150, 10},
		{"pos-inf", math.Inf(1), 10},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("%s: Percentile(%g) = %d, want %d", c.name, c.p, got, c.want)
		}
	}
	// An empty histogram still answers 0 regardless of p.
	if got := NewHistogram().Percentile(math.NaN()); got != 0 {
		t.Errorf("empty Percentile(NaN) = %d, want 0", got)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("String = %q", h.String())
	}
}
