package stats

import (
	"encoding"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
)

// This file guards the JSON boundary against non-finite floats. encoding/json
// rejects NaN and ±Inf outright (json.UnsupportedValueError), so one poisoned
// float64 — a zero-sample aggregate, a saturation probe that never accepted a
// packet, a drained replica with an empty measurement window — used to fail
// the entire -json or HTTP response it rode in. MarshalSanitized keeps the
// fast path byte-identical to encoding/json and, only when plain marshaling
// fails, re-encodes with every non-finite value replaced by null, reporting
// the JSON paths it nulled so callers can attach the note the data deserves.

// MarshalSanitized marshals v like json.Marshal, replacing non-finite floats
// (NaN, ±Inf) with null when — and only when — plain marshaling fails. The
// returned notes name each replaced value as "<path>: <value>" (e.g.
// "result.avgPacketLatency: NaN"); notes is nil when nothing was replaced,
// in which case the bytes are exactly json.Marshal's.
func MarshalSanitized(v any) ([]byte, []string, error) {
	return marshalSanitized(v, "", "")
}

// MarshalIndentSanitized is MarshalSanitized with json.MarshalIndent framing.
func MarshalIndentSanitized(v any, prefix, indent string) ([]byte, []string, error) {
	return marshalSanitized(v, prefix, indent)
}

func marshalSanitized(v any, prefix, indent string) ([]byte, []string, error) {
	marshal := func(v any) ([]byte, error) {
		if indent == "" && prefix == "" {
			return json.Marshal(v)
		}
		return json.MarshalIndent(v, prefix, indent)
	}
	buf, err := marshal(v)
	if err == nil {
		return buf, nil, nil
	}
	var uv *json.UnsupportedValueError
	if !errors.As(err, &uv) {
		return nil, nil, err
	}
	var notes []string
	tree := sanitizeValue(reflect.ValueOf(v), "", &notes)
	buf, err = marshal(tree)
	if err != nil {
		return nil, nil, err
	}
	return buf, notes, nil
}

// sanitizeValue converts rv into a marshal-safe tree: structurally the same
// document encoding/json would produce, with non-finite floats replaced by
// nil (JSON null) and their paths recorded. It follows encoding/json's
// struct-tag rules (name, omitempty, "-", embedded flattening) closely
// enough for the repo's response types; values with custom marshalers are
// passed through their own MarshalJSON.
func sanitizeValue(rv reflect.Value, path string, notes *[]string) any {
	if !rv.IsValid() {
		return nil
	}
	// Custom marshalers own their encoding; if theirs fails (a non-finite
	// float inside), null the whole value with a note rather than guessing
	// at its internals.
	if rv.CanInterface() {
		switch m := rv.Interface().(type) {
		case json.Marshaler:
			buf, err := m.MarshalJSON()
			if err != nil {
				*notes = append(*notes, fmt.Sprintf("%s: unmarshalable (%v)", pathOrTop(path), err))
				return nil
			}
			return json.RawMessage(buf)
		case encoding.TextMarshaler:
			txt, err := m.MarshalText()
			if err != nil {
				*notes = append(*notes, fmt.Sprintf("%s: unmarshalable (%v)", pathOrTop(path), err))
				return nil
			}
			return string(txt)
		}
	}
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return nil
		}
		return sanitizeValue(rv.Elem(), path, notes)
	case reflect.Float32, reflect.Float64:
		f := rv.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			*notes = append(*notes, fmt.Sprintf("%s: %s", pathOrTop(path), nonFiniteName(f)))
			return nil
		}
		return rv.Interface()
	case reflect.Struct:
		out := make(map[string]any)
		sanitizeStruct(rv, path, out, notes)
		return out
	case reflect.Map:
		if rv.IsNil() {
			return nil
		}
		out := make(map[string]any, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			key := mapKeyString(iter.Key())
			out[key] = sanitizeValue(iter.Value(), joinPath(path, key), notes)
		}
		return out
	case reflect.Slice:
		if rv.IsNil() {
			return nil
		}
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			return rv.Interface() // []byte keeps base64 encoding
		}
		fallthrough
	case reflect.Array:
		out := make([]any, rv.Len())
		for i := range out {
			out[i] = sanitizeValue(rv.Index(i), fmt.Sprintf("%s[%d]", path, i), notes)
		}
		return out
	default:
		if rv.CanInterface() {
			return rv.Interface()
		}
		return nil
	}
}

// sanitizeStruct walks rv's fields into out, flattening anonymous embedded
// structs the way encoding/json does.
func sanitizeStruct(rv reflect.Value, path string, out map[string]any, notes *[]string) {
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := f.Tag.Get("json")
		if tag == "-" {
			continue
		}
		name, opts, _ := strings.Cut(tag, ",")
		fv := rv.Field(i)
		if f.Anonymous && name == "" {
			// Embedded field with no explicit name: flatten structs
			// (dereferencing a non-nil pointer), skip nil pointers.
			ev := fv
			for ev.Kind() == reflect.Pointer {
				if ev.IsNil() {
					ev = reflect.Value{}
					break
				}
				ev = ev.Elem()
			}
			if ev.IsValid() && ev.Kind() == reflect.Struct {
				sanitizeStruct(ev, path, out, notes)
				continue
			}
		}
		if !f.IsExported() {
			continue
		}
		if name == "" {
			name = f.Name
		}
		if strings.Contains(","+opts+",", ",omitempty,") && isEmptyValue(fv) {
			continue
		}
		out[name] = sanitizeValue(fv, joinPath(path, name), notes)
	}
}

// isEmptyValue mirrors encoding/json's omitempty test.
func isEmptyValue(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Array, reflect.Map, reflect.Slice, reflect.String:
		return v.Len() == 0
	case reflect.Bool:
		return !v.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return v.Int() == 0
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return v.Uint() == 0
	case reflect.Float32, reflect.Float64:
		return v.Float() == 0
	case reflect.Interface, reflect.Pointer:
		return v.IsNil()
	}
	return false
}

func mapKeyString(k reflect.Value) string {
	if tm, ok := k.Interface().(encoding.TextMarshaler); ok {
		if txt, err := tm.MarshalText(); err == nil {
			return string(txt)
		}
	}
	switch k.Kind() {
	case reflect.String:
		return k.String()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(k.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return strconv.FormatUint(k.Uint(), 10)
	default:
		return fmt.Sprint(k.Interface())
	}
}

func nonFiniteName(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	default:
		return "-Inf"
	}
}

func joinPath(path, name string) string {
	if path == "" {
		return name
	}
	return path + "." + name
}

func pathOrTop(path string) string {
	if path == "" {
		return "value"
	}
	return path
}
