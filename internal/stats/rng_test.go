package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	first := s.Uint64()
	// Advancing the parent must not change the child's future output.
	r2 := NewRNG(7)
	s2 := r2.Split()
	for i := 0; i < 100; i++ {
		r2.Uint64()
	}
	if got := s2.Uint64(); got != first {
		t.Fatalf("split stream affected by parent: got %d want %d", got, first)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%100) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	for n := 0; n <= 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) fired at rate %g", frac)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(4.0)
	}
	mean := sum / n
	if math.Abs(mean-4.0) > 0.1 {
		t.Fatalf("Exp(4) mean = %g", mean)
	}
}
