package stats

import "math"

// Running accumulates a stream of float64 samples and reports count, mean,
// variance and extrema in O(1) space (Welford's algorithm).
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (s *Running) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN incorporates the same sample value n times in O(1): a batch of n
// equal samples is a Running{n, mean: x, m2: 0}, folded in with the same
// parallel-variance formula Merge uses. From an empty accumulator this is
// bit-identical to calling Add n times (both yield {n, x, 0}); from a
// non-empty one it is the exact closed form of the same update, differing
// from the loop only in floating-point rounding order. n <= 0 is a no-op.
func (s *Running) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	batch := Running{n: n, mean: x, min: x, max: x}
	s.Merge(&batch)
}

// Count returns the number of samples seen.
func (s *Running) Count() int64 { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Running) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (s *Running) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Running) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Running) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Running) Max() float64 { return s.max }

// Merge folds other into s, as if all of other's samples had been added to s.
// A nil or empty operand is a no-op, matching the nil-safe convention of
// internal/obs; a nil receiver is likewise a no-op.
func (s *Running) Merge(other *Running) {
	if s == nil || other == nil || other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	mean := s.mean + d*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}
