package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDominates pins the order-theoretic contract of the dominance
// comparator on arbitrary float vectors (k ∈ {2, 3}, including NaN and ±Inf
// payloads): the relation must be a strict partial order — irreflexive,
// antisymmetric and transitive — and Dominates must imply WeaklyDominates.
// The vector-objective annealer's archive converges only because these hold.
func FuzzDominates(f *testing.F) {
	f.Add([]byte{2, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{3, 0xff, 0xf0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	seed := make([]byte, 1+3*3*8)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		k := 2 + int(data[0])%2 // k in {2, 3}
		data = data[1:]
		vec := func(i int) []float64 {
			v := make([]float64, k)
			for d := 0; d < k; d++ {
				off := (i*k + d) * 8
				if off+8 <= len(data) {
					v[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
				}
			}
			return v
		}
		a, b, c := vec(0), vec(1), vec(2)

		for _, v := range [][]float64{a, b, c} {
			if Dominates(v, v) {
				t.Fatalf("irreflexivity violated: %v dominates itself", v)
			}
		}
		if Dominates(a, b) && Dominates(b, a) {
			t.Fatalf("antisymmetry violated: %v <-> %v", a, b)
		}
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			t.Fatalf("transitivity violated: %v > %v > %v", a, b, c)
		}
		if Dominates(a, b) && !WeaklyDominates(a, b) {
			t.Fatalf("strict without weak dominance: %v vs %v", a, b)
		}
	})
}
