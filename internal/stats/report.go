package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Report is the structured result of one experiment: named tables plus
// free-form note lines and string metadata. It is the single output type of
// every registered experiment driver — JSON-marshalable as-is (the schema is
// exactly the exported fields) and rendered to plain text by the one shared
// renderer below, so drivers assemble data instead of formatting strings.
type Report struct {
	// Name is the registry name of the experiment that produced the report
	// (e.g. "fig5").
	Name string `json:"name"`
	// Title is the one-line description of the experiment.
	Title string `json:"title,omitempty"`
	// Section names the paper section or figure the experiment reproduces.
	Section string `json:"section,omitempty"`
	// Meta carries reproducibility metadata (seed, quick, ...). Values must
	// be deterministic for a given configuration: encoding/json sorts the
	// keys, so equal reports marshal to equal bytes.
	Meta map[string]string `json:"meta,omitempty"`
	// Tables are the report body, rendered in order.
	Tables []*Table `json:"tables"`
	// Notes are trailing lines rendered after every table (headline numbers,
	// interpretation paragraphs).
	Notes []string `json:"notes,omitempty"`
}

// NewReport returns an empty report with the given name.
func NewReport(name string) *Report {
	return &Report{Name: name}
}

// Add appends a table to the report body and returns it for chaining.
func (r *Report) Add(t *Table) *Table {
	r.Tables = append(r.Tables, t)
	return t
}

// Note appends one trailing note line.
func (r *Report) Note(note string) {
	r.Notes = append(r.Notes, note)
}

// Notef appends a formatted trailing note line.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SetMeta records one metadata key; it allocates the map on first use.
func (r *Report) SetMeta(key, value string) {
	if r.Meta == nil {
		r.Meta = make(map[string]string)
	}
	r.Meta[key] = value
}

// MetaKeys returns the metadata keys in sorted (deterministic) order.
func (r *Report) MetaKeys() []string {
	keys := make([]string, 0, len(r.Meta))
	for k := range r.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render is the shared plain-text renderer: each table (with its notes)
// separated by a blank line, then the report-level notes. Equal reports
// render to equal bytes, which is what lets a warm placement-cache run be
// byte-compared against a cold one.
func (r *Report) Render() string {
	var b strings.Builder
	for i, t := range r.Tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		writeBlock(&b, t.String())
	}
	if len(r.Notes) > 0 && len(r.Tables) > 0 {
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		writeBlock(&b, n)
	}
	return b.String()
}

// JSON marshals the report with indentation and a trailing newline, the
// on-disk format of `expbench -json -out <dir>`. Non-finite floats anywhere
// in the report marshal as null instead of failing the whole document (see
// MarshalSanitized); a clean report marshals to exactly json.MarshalIndent's
// bytes.
func (r *Report) JSON() ([]byte, error) {
	buf, _, err := MarshalIndentSanitized(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// ReportsJSON marshals a report list as one indented JSON array with a
// trailing newline, the stdout format of `expbench -json`. A nil or empty
// list marshals as an empty array, never as null; non-finite floats marshal
// as null rather than failing the whole array.
func ReportsJSON(reports []*Report) ([]byte, error) {
	if reports == nil {
		reports = []*Report{}
	}
	buf, _, err := MarshalIndentSanitized(reports, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
