// Package stats provides deterministic randomness, streaming statistics and
// plain-text table/series rendering shared by the optimizer, the simulator
// and the experiment harness.
//
// All randomness in this repository flows through RNG so that every
// experiment is reproducible bit-for-bit from its seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; give each goroutine its own
// stream via Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// mix64 is the splitmix64 finalizer, a strong 64-bit scrambler.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MixSeed hashes the parts into a well-distributed seed. Use it whenever
// deriving per-entity seeds from a base seed plus small integers: splitmix64
// states form a single additive orbit, so seeds that differ by small
// multiples of the golden-ratio increment would produce shifted copies of
// the same stream. Scrambling through the finalizer places derived streams
// at pseudorandom orbit offsets instead.
func MixSeed(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h = mix64(h ^ p)
	}
	return h
}

// Split derives a new independent generator from r. The derived stream is a
// deterministic function of r's current state, and advancing r afterwards
// does not affect it.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping (Lemire). The tiny bias for
	// non-power-of-two n is far below anything our experiments can resolve.
	return int((r.Uint64() >> 11) % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}
