package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram collects integer-valued samples (e.g. packet latencies in cycles)
// and reports exact percentiles. Buckets are sparse, so wide-tailed
// distributions cost only as much memory as their distinct values.
type Histogram struct {
	counts map[int]int64
	total  int64
	sum    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int64)}
}

// Add records one sample with value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
	h.sum += float64(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank definition, or 0 with no samples.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	keys := h.sortedKeys()
	var seen int64
	for _, k := range keys {
		seen += h.counts[k]
		if seen >= rank {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() int {
	keys := h.sortedKeys()
	if len(keys) == 0 {
		return 0
	}
	return keys[len(keys)-1]
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for k, c := range other.counts {
		h.counts[k] += c
	}
	h.total += other.total
	h.sum += other.sum
}

func (h *Histogram) sortedKeys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// String renders a compact summary: count, mean and key percentiles.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "histogram: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f p50=%d p95=%d p99=%d max=%d",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
	return b.String()
}
