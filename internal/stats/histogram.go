package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// histDense is the width of the dense counting array: samples in
// [0, histDense) increment a slice slot instead of a map entry. Packet
// latencies below saturation sit well inside this range, so the per-sample
// cost on the hot path is one array increment.
const histDense = 1 << 12

// Histogram collects integer-valued samples (e.g. packet latencies in cycles)
// and reports exact percentiles. Small non-negative values count into a dense
// array; anything else (a wide tail near saturation) spills into a sparse
// map, so memory stays bounded by histDense plus the distinct tail values.
//
// The zero value is an empty, ready-to-use histogram: Add and Merge size the
// dense array on first use. NewHistogram pre-sizes it so the hot path never
// pays the lazy check's allocation.
type Histogram struct {
	dense  []int64
	sparse map[int]int64
	total  int64
	sum    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{dense: make([]int64, histDense)}
}

// Add records one sample with value v.
func (h *Histogram) Add(v int) {
	if uint(v) < histDense {
		if h.dense == nil {
			h.dense = make([]int64, histDense)
		}
		h.dense[v]++
	} else {
		if h.sparse == nil {
			h.sparse = make(map[int]int64)
		}
		h.sparse[v]++
	}
	h.total++
	h.sum += float64(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// count returns the number of samples with value v.
func (h *Histogram) count(v int) int64 {
	if uint(v) < histDense {
		return h.dense[v]
	}
	return h.sparse[v]
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank definition, or 0 with no samples. The rank is ⌈p·N/100⌉:
// truncating instead would e.g. report the 9th smallest of 10 samples as p95.
// Multiplying before dividing keeps the common integer-p cases exact (99·N is
// representable, 99/100 is not), so ceil never rounds an exact rank up.
// Out-of-domain p is clamped: NaN and p <= 0 report the minimum sample,
// p > 100 the maximum, keeping the float→int conversion below away from the
// platform-dependent behaviour of converting NaN or out-of-range values.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if math.IsNaN(p) || p <= 0 {
		p = 0 // rank clamps to 1 below: the minimum sample
	} else if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p * float64(h.total) / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	keys := h.sortedKeys()
	var seen int64
	for _, k := range keys {
		seen += h.count(k)
		if seen >= rank {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() int {
	keys := h.sortedKeys()
	if len(keys) == 0 {
		return 0
	}
	return keys[len(keys)-1]
}

// Merge folds other into h. A zero-value receiver (or operand) is a valid
// empty histogram, and a nil receiver or operand is a no-op, matching the
// nil-safe convention of internal/obs.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	if other.dense != nil && h.dense == nil {
		h.dense = make([]int64, histDense)
	}
	for v, c := range other.dense {
		h.dense[v] += c
	}
	for v, c := range other.sparse {
		if h.sparse == nil {
			h.sparse = make(map[int]int64)
		}
		h.sparse[v] += c
	}
	h.total += other.total
	h.sum += other.sum
}

func (h *Histogram) sortedKeys() []int {
	keys := make([]int, 0, len(h.sparse)+16)
	for v, c := range h.dense {
		if c != 0 {
			keys = append(keys, v)
		}
	}
	for v := range h.sparse {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	return keys
}

// String renders a compact summary: count, mean and key percentiles.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "histogram: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f p50=%d p95=%d p99=%d max=%d",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
	return b.String()
}
