package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := NewReport("fig0")
	r.Title = "sample experiment"
	r.Section = "§0"
	r.SetMeta("seed", "1")
	r.SetMeta("quick", "true")
	t := r.Add(NewTable("first", "a", "b"))
	t.AddRowf(1, 2.5)
	t.AddNotef("best: %d", 7)
	u := r.Add(NewTable("second", "x"))
	u.AddRow("only")
	r.Notef("headline %.1f%%", 12.34)
	r.Note("multi\nline\n")
	return r
}

func TestReportRender(t *testing.T) {
	out := sampleReport().Render()
	for _, want := range []string{
		"== first ==", "== second ==", "best: 7", "headline 12.3%", "multi\nline\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Table note comes right under its table, before the next table.
	if strings.Index(out, "best: 7") > strings.Index(out, "== second ==") {
		t.Fatalf("table note rendered out of place:\n%s", out)
	}
	// No double blank lines from notes that already end with a newline.
	if strings.Contains(out, "\n\n\n") {
		t.Fatalf("render has runaway blank lines:\n%s", out)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	buf, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, &back) {
		t.Fatalf("round trip changed report:\n%+v\nvs\n%+v", r, &back)
	}
	if back.Render() != r.Render() {
		t.Fatal("round-tripped report renders differently")
	}
	// Marshalling is deterministic (maps are key-sorted by encoding/json).
	buf2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatalf("non-deterministic JSON:\n%s\nvs\n%s", buf, buf2)
	}
}

func TestReportMetaKeysSorted(t *testing.T) {
	r := NewReport("x")
	r.SetMeta("z", "1")
	r.SetMeta("a", "2")
	if got := r.MetaKeys(); !reflect.DeepEqual(got, []string{"a", "z"}) {
		t.Fatalf("meta keys = %v", got)
	}
}

func TestEmptyReportRender(t *testing.T) {
	if out := NewReport("empty").Render(); out != "" {
		t.Fatalf("empty report rendered %q", out)
	}
}
