package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("mesh", "25.90")
	tb.AddRowf("hfb", 21.75)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title in %q", out)
	}
	if !strings.Contains(out, "mesh") || !strings.Contains(out, "21.75") {
		t.Fatalf("missing rows in %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("xxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// The second column must start at the same offset in header and data.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[2], "y") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableRowfTypes(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddRowf(3)
	tb.AddRowf(int64(4))
	tb.AddRowf(2.5)
	tb.AddRowf(true)
	out := tb.String()
	for _, want := range []string{"3", "4", "2.50", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("plain", "1.5")
	tb.AddRow(`quote"inside`, "a,b")
	csv := tb.CSV()
	want := "name,value\nplain,1.5\n\"quote\"\"inside\",\"a,b\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
