package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestMarshalSanitizedCleanIsByteIdentical(t *testing.T) {
	rep := NewReport("fig5")
	rep.Title = "clean"
	tb := rep.Add(NewTable("t", "a", "b"))
	tb.AddRowf(1, 2.5)
	rep.Note("fine")

	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, notes, err := MarshalSanitized(rep)
	if err != nil {
		t.Fatal(err)
	}
	if notes != nil {
		t.Fatalf("clean value produced notes %v", notes)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sanitized bytes differ from json.Marshal:\n%s\nvs\n%s", got, want)
	}

	wantInd, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotInd, notes, err := MarshalIndentSanitized(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if notes != nil || !bytes.Equal(gotInd, wantInd) {
		t.Fatalf("indented sanitized bytes differ (notes %v)", notes)
	}
}

// TestMarshalSanitizedNonFinite is the regression test for the serving-path
// bug this exists to fix: a NaN or ±Inf anywhere in a result used to fail
// the whole JSON document with json.UnsupportedValueError.
func TestMarshalSanitizedNonFinite(t *testing.T) {
	type inner struct {
		Lat  float64   `json:"avgPacketLatency"`
		Thr  float64   `json:"throughput,omitempty"`
		Hops []float64 `json:"hops"`
	}
	type outer struct {
		Name   string             `json:"name"`
		Result inner              `json:"result"`
		ByKey  map[string]float64 `json:"byKey"`
		Skip   float64            `json:"-"`
	}
	v := outer{
		Name:   "probe",
		Result: inner{Lat: math.NaN(), Hops: []float64{1, math.Inf(1), 3}},
		ByKey:  map[string]float64{"neg": math.Inf(-1), "ok": 2},
		Skip:   math.NaN(),
	}

	// Plain marshaling must fail — otherwise this test pins nothing.
	if _, err := json.Marshal(v); err == nil {
		t.Fatal("expected json.Marshal to reject non-finite floats")
	}

	buf, notes, err := MarshalSanitized(v)
	if err != nil {
		t.Fatalf("sanitized marshal failed: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf)
	}
	res := back["result"].(map[string]any)
	if res["avgPacketLatency"] != nil {
		t.Fatalf("NaN survived as %v", res["avgPacketLatency"])
	}
	hops := res["hops"].([]any)
	if hops[0] != 1.0 || hops[1] != nil || hops[2] != 3.0 {
		t.Fatalf("slice sanitization wrong: %v", hops)
	}
	if back["byKey"].(map[string]any)["neg"] != nil {
		t.Fatalf("-Inf survived in map")
	}
	if back["byKey"].(map[string]any)["ok"] != 2.0 {
		t.Fatalf("finite map value lost")
	}
	if _, present := res["throughput"]; present {
		t.Fatalf("omitempty zero field emitted")
	}

	joined := strings.Join(notes, "\n")
	for _, want := range []string{
		"result.avgPacketLatency: NaN",
		"result.hops[1]: +Inf",
		"byKey.neg: -Inf",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "Skip") {
		t.Fatalf("json:\"-\" field reported: %s", joined)
	}
}

func TestReportJSONSurvivesNonFinite(t *testing.T) {
	rep := NewReport("poisoned")
	tb := rep.Add(NewTable("t", "rate", "lat"))
	tb.AddRowf(0.02, math.NaN())

	buf, err := rep.JSON()
	if err != nil {
		t.Fatalf("Report.JSON failed on NaN: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf)
	}
	if back["name"] != "poisoned" {
		t.Fatalf("report content lost: %v", back)
	}

	arr, err := ReportsJSON([]*Report{rep})
	if err != nil {
		t.Fatalf("ReportsJSON failed on NaN: %v", err)
	}
	var list []map[string]any
	if err := json.Unmarshal(arr, &list); err != nil || len(list) != 1 {
		t.Fatalf("invalid JSON array: %v\n%s", err, arr)
	}
}

func TestMarshalSanitizedTopLevelAndPointers(t *testing.T) {
	buf, notes, err := MarshalSanitized(math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "null" || len(notes) != 1 || !strings.Contains(notes[0], "value: +Inf") {
		t.Fatalf("top-level Inf: %s %v", buf, notes)
	}

	f := math.NaN()
	type wrap struct {
		P *float64 `json:"p"`
	}
	buf, notes, err = MarshalSanitized(&wrap{P: &f})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf, []byte(`"p":null`)) || len(notes) != 1 {
		t.Fatalf("pointer NaN: %s %v", buf, notes)
	}
}
