package stats

import (
	"math"
	"testing"
)

// TestMixSeedDecorrelatesStreams is the regression test for a real bug found
// during development: splitmix64 states form a single additive orbit, so
// seeding per-node generators with seed ^ (id+1)*GOLDEN produced streams
// that were shifted copies of each other, synchronizing "independent"
// traffic injectors across the network. Seeds must go through MixSeed.
func TestMixSeedDecorrelatesStreams(t *testing.T) {
	const streams = 16
	const draws = 2000
	seqs := make([][]uint64, streams)
	for i := range seqs {
		r := NewRNG(MixSeed(42, uint64(i)))
		seqs[i] = make([]uint64, draws)
		for k := range seqs[i] {
			seqs[i][k] = r.Uint64()
		}
	}
	// No stream may be a small shift of another: check every pair at every
	// offset up to 64.
	for a := 0; a < streams; a++ {
		for b := a + 1; b < streams; b++ {
			for off := 0; off <= 64; off++ {
				matches := 0
				for k := 0; k+off < draws; k++ {
					if seqs[a][k+off] == seqs[b][k] {
						matches++
					}
				}
				if matches > 2 {
					t.Fatalf("streams %d and %d share %d values at offset %d — orbit correlation",
						a, b, matches, off)
				}
			}
		}
	}
}

func TestMixSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		s := MixSeed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at %d", i)
		}
		seen[s] = true
	}
	if MixSeed(1, 2) == MixSeed(2, 1) {
		t.Fatal("MixSeed is order-insensitive")
	}
	if MixSeed() == 0 {
		t.Fatal("empty MixSeed degenerate")
	}
}

func TestStdDev(t *testing.T) {
	var s Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.StdDev(), want)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	var a, b Running
	a.Merge(&b) // empty into empty
	if a.Count() != 0 {
		t.Fatal("empty merge changed state")
	}
	b.Add(3)
	a.Merge(&b) // into empty
	if a.Count() != 1 || a.Mean() != 3 {
		t.Fatalf("merge into empty: %+v", a)
	}
	var c Running
	a.Merge(&c) // empty into populated
	if a.Count() != 1 {
		t.Fatal("empty merge mutated receiver")
	}
	// Min/max propagate.
	var d Running
	d.Add(-5)
	d.Add(10)
	a.Merge(&d)
	if a.Min() != -5 || a.Max() != 10 {
		t.Fatalf("min/max after merge: %g/%g", a.Min(), a.Max())
	}
}

func TestExpHandlesZeroDraw(t *testing.T) {
	// Exp must survive the u == 0 edge (log(1-0) path) for any stream.
	r := NewRNG(0)
	for i := 0; i < 1000; i++ {
		if v := r.Exp(1); math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
			t.Fatalf("Exp produced %g", v)
		}
	}
}

func TestHistogramPercentileClamps(t *testing.T) {
	h := NewHistogram()
	h.Add(7)
	if h.Percentile(0.0001) != 7 || h.Percentile(100) != 7 {
		t.Fatal("single-sample percentiles must clamp to the sample")
	}
}
