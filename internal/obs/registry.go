package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name/value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind tags how a series is typed in the exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
)

func (k metricKind) String() string {
	if k == kindCounter {
		return "counter"
	}
	return "gauge"
}

// series is one registered time series: a name, rendered label set, and a
// read function evaluated at scrape time.
type series struct {
	name   string
	help   string
	kind   metricKind
	labels string // pre-rendered {k="v",...}, or ""
	read   func() float64
	inst   any // the instrument backing the series, for idempotent re-registration
}

// Registry collects metric series for exposition. All methods are safe for
// concurrent use, and every constructor is idempotent: asking twice for the
// same (name, labels) returns the same instrument, so independent subsystems
// can share a series without coordination. A nil *Registry is a valid
// disabled registry — constructors return nil instruments whose methods
// no-op, and exposition writes nothing.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // key: name + rendered labels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// renderLabels formats a label set in sorted key order with Prometheus
// escaping, so equal sets always collide on the same series key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// register installs (or returns the existing) series for key name+labels.
// make builds the instrument and its read function on first registration.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, mk func() (any, func() float64)) any {
	if r == nil {
		return nil
	}
	rendered := renderLabels(labels)
	key := name + rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: series %s re-registered as %s (was %s)", key, kind, s.kind))
		}
		return s.inst
	}
	inst, read := mk()
	r.series[key] = &series{name: name, help: help, kind: kind, labels: rendered, read: read, inst: inst}
	return inst
}

// Counter returns the counter series name{labels}, creating it on first use.
// Returns nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.register(name, help, kindCounter, labels, func() (any, func() float64) {
		c := &Counter{}
		return c, func() float64 { return float64(c.Value()) }
	})
	if inst == nil {
		return nil
	}
	return inst.(*Counter)
}

// Gauge returns the integer gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.register(name, help, kindGauge, labels, func() (any, func() float64) {
		g := &Gauge{}
		return g, func() float64 { return float64(g.Value()) }
	})
	if inst == nil {
		return nil
	}
	return inst.(*Gauge)
}

// FloatGauge returns the float gauge series name{labels}.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	inst := r.register(name, help, kindGauge, labels, func() (any, func() float64) {
		g := &FloatGauge{}
		return g, func() float64 { return g.Value() }
	})
	if inst == nil {
		return nil
	}
	return inst.(*FloatGauge)
}

// Timer returns the timer behind the counter pair name_total{labels} and
// name_seconds_total{labels}.
func (r *Registry) Timer(name, help string, labels ...Label) *Timer {
	inst := r.register(name+"_total", help+" (observations)", kindCounter, labels, func() (any, func() float64) {
		t := &Timer{}
		return t, func() float64 { return float64(t.Count()) }
	})
	if inst == nil {
		return nil
	}
	t := inst.(*Timer)
	r.register(name+"_seconds_total", help+" (accumulated seconds)", kindCounter, labels, func() (any, func() float64) {
		return t, func() float64 { return t.Total().Seconds() }
	})
	return t
}

// Func registers a gauge series read from a callback at scrape time; the
// callback must be safe for concurrent use. No-op on a nil registry.
func (r *Registry) Func(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func() (any, func() float64) {
		return nil, f
	})
}

// snapshotSeries returns the registered series sorted by name then labels,
// for deterministic exposition.
func (r *Registry) snapshotSeries() []*series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus writes every series in the Prometheus text exposition
// format (sorted by name then labels; HELP/TYPE emitted once per name).
func (r *Registry) WritePrometheus(w io.Writer) error {
	last := ""
	for _, s := range r.snapshotSeries() {
		if s.name != last {
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			last = s.name
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels,
			strconv.FormatFloat(s.read(), 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns every series value keyed by name{labels}, the expvar view
// of the registry.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range r.snapshotSeries() {
		out[s.name+s.labels] = s.read()
	}
	return out
}
