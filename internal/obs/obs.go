// Package obs is a small, dependency-free observability layer: atomic
// counters, gauges and timers collected in a labeled Registry and exposed in
// Prometheus text format, as an expvar snapshot, and over an opt-in debug
// HTTP server (metrics + pprof). It also carries the JSON-lines progress
// event stream used by long registry runs.
//
// The design contract is that instrumentation must cost nothing when
// observability is off. Every instrument is nil-safe: a nil *Registry mints
// nil instruments, and every method on a nil *Counter, *Gauge, *FloatGauge or
// *Timer is a no-op — one predictable branch, zero allocations. Hot paths
// therefore hold possibly-nil instrument pointers and call them
// unconditionally; see the nil-path allocation benchmark in the tests.
//
// Metric naming follows the Prometheus conventions: snake_case names prefixed
// by subsystem (sim_, anneal_, core_, exp_), counters suffixed _total,
// durations in seconds. DESIGN.md §8 documents the full taxonomy.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (atomic, nil-safe).
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer-valued instantaneous metric (atomic, nil-safe).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (useful for in-flight counts). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float64-valued instantaneous metric (atomic, nil-safe).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value. No-op on a nil gauge.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for a nil gauge).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates durations: an observation count and a running total in
// seconds, exposed as the counter pair <name>_total and <name>_seconds_total
// so scrapers can derive both rates and mean latency.
type Timer struct {
	n     atomic.Int64
	nanos atomic.Int64
}

// Observe records one duration. No-op on a nil timer.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.n.Add(1)
	t.nanos.Add(int64(d))
}

// Count returns the number of observations (0 for a nil timer).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Total returns the accumulated duration (0 for a nil timer).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.nanos.Load())
}
