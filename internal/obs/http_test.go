package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServeDebugEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_requests_total", "test counter").Add(12)
	r.Gauge("srv_depth", "test gauge").Set(3)

	ds, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr

	metrics := get(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE srv_requests_total counter",
		"srv_requests_total 12",
		"srv_depth 3",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	vars := get(t, base+"/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(decoded["explink"], &snap); err != nil {
		t.Fatalf("expvar explink: %v", err)
	}
	if snap["srv_requests_total"] != 12 {
		t.Fatalf("expvar snapshot = %v", snap)
	}

	if body := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline endpoint empty")
	}
}

func TestServeDebugSwapsRegistry(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("swap_total", "").Add(1)
	ds1, err := ServeDebug("127.0.0.1:0", r1)
	if err != nil {
		t.Fatal(err)
	}
	ds1.Close()

	// A second server (e.g. a second run in-process) re-points the shared
	// expvar variable instead of panicking on a duplicate Publish.
	r2 := NewRegistry()
	r2.Counter("swap_total", "").Add(2)
	ds2, err := ServeDebug("127.0.0.1:0", r2)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if body := get(t, fmt.Sprintf("http://%s/metrics", ds2.Addr)); !strings.Contains(body, "swap_total 2") {
		t.Fatalf("second registry not served:\n%s", body)
	}
}

func TestServeDebugNilRegistry(t *testing.T) {
	if _, err := ServeDebug("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil registry accepted")
	}
}
