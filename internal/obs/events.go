package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventWriter emits a JSON-lines progress event stream: one self-contained
// JSON object per line, safe for concurrent emitters, flushed per event so a
// tail -f of a long registry run sees experiments start and finish as they
// happen. A nil *EventWriter discards everything, so call sites need no
// enabled-check.
type EventWriter struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // injectable clock for deterministic tests
}

// NewEventWriter streams events to w.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{w: w, now: time.Now}
}

// Emit writes one event line: {"ts":..., "event":..., <fields>}. Reserved
// keys ts/event override same-named fields. Marshal or write failures are
// dropped — the stream is diagnostics, never control flow.
func (e *EventWriter) Emit(event string, fields map[string]any) {
	if e == nil {
		return
	}
	obj := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		obj[k] = v
	}
	obj["event"] = event
	obj["ts"] = e.now().UTC().Format(time.RFC3339Nano)
	buf, err := json.Marshal(obj)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	e.mu.Lock()
	e.w.Write(buf) //nolint:errcheck // diagnostics stream, best effort
	e.mu.Unlock()
}
