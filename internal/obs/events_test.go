package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventWriterLines(t *testing.T) {
	var sb strings.Builder
	ew := NewEventWriter(&sb)
	ew.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	ew.Emit("experiment.start", map[string]any{"name": "fig7"})
	ew.Emit("experiment.finish", map[string]any{"name": "fig7", "seconds": 1.5, "ok": true})

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), sb.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["event"] != "experiment.start" || first["name"] != "fig7" {
		t.Fatalf("line 0 = %v", first)
	}
	if first["ts"] != "2026-08-05T12:00:00Z" {
		t.Fatalf("ts = %v", first["ts"])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["seconds"] != 1.5 || second["ok"] != true {
		t.Fatalf("line 1 = %v", second)
	}
}

func TestEventWriterNil(t *testing.T) {
	var ew *EventWriter
	ew.Emit("anything", map[string]any{"k": "v"}) // must not panic
}

// TestEventWriterConcurrent proves lines never interleave: every emitted
// line parses as standalone JSON even under concurrent writers.
func TestEventWriterConcurrent(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	ew := NewEventWriter(lockedWriter)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ew.Emit("tick", map[string]any{"worker": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	n := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d corrupt: %v: %q", n, err, sc.Text())
		}
		n++
	}
	if n != 800 {
		t.Fatalf("got %d lines, want 800", n)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
