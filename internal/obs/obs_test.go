package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}
	fg := r.FloatGauge("fg", "a float gauge")
	fg.Set(2.5)
	if fg.Value() != 2.5 {
		t.Fatalf("float gauge = %g", fg.Value())
	}
	tm := r.Timer("op", "an op")
	tm.Observe(1500 * time.Millisecond)
	tm.Observe(500 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 2*time.Second {
		t.Fatalf("timer = %d obs %v", tm.Count(), tm.Total())
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", L("k", "v"))
	b := r.Counter("dup_total", "h", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	// Distinct labels are distinct series.
	c := r.Counter("dup_total", "h", L("k", "w"))
	if a == c {
		t.Fatal("different labels must mint a different counter")
	}
	// Label order must not matter.
	g1 := r.Gauge("lbl", "h", L("b", "2"), L("a", "1"))
	g2 := r.Gauge("lbl", "h", L("a", "1"), L("b", "2"))
	if g1 != g2 {
		t.Fatal("label order changed series identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dup_total", "h", L("k", "v"))
}

// TestRegistryConcurrency hammers registration and updates from many
// goroutines; run with -race (the CI does) to prove the registry and the
// instruments are safe for concurrent use.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", "shared").Inc()
				r.Gauge("conc_gauge", "shared").Set(int64(i))
				r.Counter("conc_labeled_total", "per-worker", L("w", string(rune('a'+w)))).Inc()
				if i%50 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "shared").Value(); got != 8*500 {
		t.Fatalf("concurrent counter = %d, want %d", got, 8*500)
	}
	snap := r.Snapshot()
	if snap["conc_total"] != 8*500 {
		t.Fatalf("snapshot = %v", snap["conc_total"])
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte:
// sorted by name then labels, HELP/TYPE once per name, shortest float form.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b help", L("algo", "D&C_SA")).Add(3)
	r.Counter("b_total", "b help", L("algo", "OnlySA")).Add(1)
	r.Gauge("a_gauge", "a help").Set(42)
	r.FloatGauge("c_ratio", "c help").Set(0.125)
	r.Func("d_func", "d help", func() float64 { return 2 })
	r.Timer("e_op", "e ops").Observe(1500 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge a help
# TYPE a_gauge gauge
a_gauge 42
# HELP b_total b help
# TYPE b_total counter
b_total{algo="D&C_SA"} 3
b_total{algo="OnlySA"} 1
# HELP c_ratio c help
# TYPE c_ratio gauge
c_ratio 0.125
# HELP d_func d help
# TYPE d_func gauge
d_func 2
# HELP e_op_seconds_total e ops (accumulated seconds)
# TYPE e_op_seconds_total counter
e_op_seconds_total 1.5
# HELP e_op_total e ops (observations)
# TYPE e_op_total counter
e_op_total 1
`
	if sb.String() != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("p", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "esc_total{p=\"a\\\"b\\\\c\\nd\"} 1\n"
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped exposition = %q, want it to contain %q", sb.String(), want)
	}
}

// TestNilRegistryDisabled pins the disabled fast path: a nil registry mints
// nil instruments, every method no-ops, and exposition is empty.
func TestNilRegistryDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("g", "")
	fg := r.FloatGauge("fg", "")
	tm := r.Timer("t", "")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	fg.Set(1.5)
	tm.Observe(time.Second)
	r.Func("f", "", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || fg.Value() != 0 || tm.Count() != 0 || tm.Total() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, %v", sb.String(), err)
	}
}

// TestNilInstrumentsZeroAlloc asserts the zero-cost-when-disabled contract:
// updating nil instruments performs no heap allocations (the sim hot loop
// relies on this to keep its pinned 0 allocs/op steady state).
func TestNilInstrumentsZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var fg *FloatGauge
	var tm *Timer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
		g.Set(9)
		fg.Set(1.25)
		tm.Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("nil instrument updates allocate %.0f objects/op; want 0", allocs)
	}
}

// BenchmarkNilCounterAdd documents the cost of a disabled counter update (a
// nil check); it must report 0 B/op and 0 allocs/op.
func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledCounterAdd is the enabled-side cost (one atomic add).
func BenchmarkEnabledCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
