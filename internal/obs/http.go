package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// servedRegistry is the registry behind the expvar "explink" variable.
// expvar.Publish is once-per-process (it panics on duplicates), so the
// variable reads through this pointer and ServeDebug swaps it.
var (
	servedRegistry atomic.Pointer[Registry]
	publishOnce    sync.Once
)

// DebugServer is a running debug HTTP endpoint serving /metrics (Prometheus
// text), /debug/vars (expvar, including the registry snapshot under
// "explink"), and the net/http/pprof handlers under /debug/pprof/.
type DebugServer struct {
	// Addr is the resolved listen address (useful with ":0").
	Addr string

	lis net.Listener
	srv *http.Server
}

// ServeDebug starts the debug endpoint on addr (host:port; port 0 picks a
// free port) exposing reg. It returns once the listener is bound; requests
// are served on a background goroutine until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: ServeDebug needs a non-nil registry")
	}
	servedRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("explink", expvar.Func(func() any {
			if r := servedRegistry.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // best effort over HTTP
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	ds := &DebugServer{
		Addr: lis.Addr().String(),
		lis:  lis,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go ds.srv.Serve(lis) //nolint:errcheck // Serve always returns once closed
	return ds, nil
}

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
