package api

import (
	"strings"

	"explink/internal/exp"
)

// SelectExperiments resolves a name list against the experiment registry,
// preserving registry order, deduplicating, and rejecting unknown names with
// a runctl.ErrConfig-typed error. An empty (or nil) list selects every
// registered experiment. It is the one selection path shared by the expbench
// -exp flag and the daemon's /v1/exp endpoint.
func SelectExperiments(names []string) ([]exp.Experiment, error) {
	if len(names) == 0 {
		return exp.All(), nil
	}
	want := map[string]bool{}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if strings.EqualFold(name, "all") {
			return exp.All(), nil
		}
		if _, ok := exp.Lookup(name); !ok {
			return nil, configErr("unknown experiment %q", name)
		}
		want[strings.ToLower(name)] = true
	}
	if len(want) == 0 {
		return nil, configErr("no experiments selected")
	}
	var sel []exp.Experiment
	for _, e := range exp.All() {
		if want[e.Name] {
			sel = append(sel, e)
		}
	}
	return sel, nil
}
