package api

import (
	"encoding/json"
	"io"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/topo"
)

// Solution is the wire form of one placement solution. Its field set and
// JSON tags are the historical `explink -json` schema, now shared by the CLI
// and the daemon so the two emit byte-identical documents for the same solve.
type Solution struct {
	C       int         `json:"c"`
	Width   int         `json:"widthBits"`
	Head    float64     `json:"headLatency"`
	Ser     float64     `json:"serializationLatency"`
	Total   float64     `json:"totalLatency"`
	Evals   int64       `json:"evaluations"`
	Express []topo.Span `json:"expressLinks"`
}

// SolutionOf converts a solver result to its wire form (express links in
// canonical order, exactly what the CLI has always printed).
func SolutionOf(s core.RowSolution) Solution {
	return Solution{
		C: s.C, Width: s.Eval.Width, Head: s.Eval.Head, Ser: s.Eval.Ser,
		Total: s.Eval.Total, Evals: s.Evals, Express: s.Row.Canonical().Express,
	}
}

// SolveResponse is the result of one SolveRequest: the best solution plus
// every per-C solution of the sweep (a single-C solve lists just itself).
type SolveResponse struct {
	Best Solution   `json:"best"`
	All  []Solution `json:"all"`
}

// NewSolveResponse assembles the wire response from solver results.
func NewSolveResponse(best core.RowSolution, all []core.RowSolution) SolveResponse {
	out := SolveResponse{Best: SolutionOf(best)}
	for _, s := range all {
		out.All = append(out.All, SolutionOf(s))
	}
	return out
}

// Encode writes the response as indented JSON with a trailing newline — the
// exact bytes of `explink -json`, which is what makes daemon solve responses
// byte-comparable against CLI output.
func (r SolveResponse) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// EvalRequest asks for the latency of a given placement without solving:
// the analytic row evaluation (uniform replication of the express row), or —
// when Weights is present — the traffic-weighted evaluation of Section 5.6.4
// against a node-level traffic matrix. This is the oracle shape an external
// engine drives over stdio: propose a placement, get cycles back.
type EvalRequest struct {
	// N is the network size (n x n routers).
	N int `json:"n"`
	// C is the link limit the placement claims; widths derive from it.
	C int `json:"c"`
	// Express lists the express spans of the row placement (empty = mesh).
	Express []topo.Span `json:"express,omitempty"`
	// BaseWidth is the C=1 link width in bits; 0 means the paper's 256.
	BaseWidth int `json:"baseWidth,omitempty"`
	// Weights, when present, is the node-level traffic matrix γ (n²×n²,
	// gamma[src][dst] >= 0): the evaluation becomes the γ-weighted mean head
	// latency over the uniform 2D expansion of the row.
	Weights [][]float64 `json:"weights,omitempty"`
}

// Normalize fills defaulted fields in place.
func (r *EvalRequest) Normalize() {
	if r.BaseWidth == 0 {
		r.BaseWidth = 256
	}
}

// Validate rejects malformed requests with runctl.ErrConfig-typed errors.
// Call Normalize first; validation treats the request as complete.
func (r *EvalRequest) Validate() error {
	if r.N < 2 {
		return configErr("network size n=%d must be at least 2", r.N)
	}
	if r.C < 1 {
		return configErr("link limit c=%d must be positive", r.C)
	}
	if r.BaseWidth < 1 {
		return configErr("base width %d bits must be positive", r.BaseWidth)
	}
	row := topo.Row{N: r.N, Express: r.Express}
	if err := row.Validate(r.C); err != nil {
		return configErr("invalid placement: %v", err)
	}
	if r.Weights != nil {
		nn := r.N * r.N
		if len(r.Weights) != nn {
			return configErr("traffic matrix has %d rows, want %d", len(r.Weights), nn)
		}
		for i, wr := range r.Weights {
			if len(wr) != nn {
				return configErr("traffic matrix row %d has %d columns, want %d", i, len(wr), nn)
			}
			for j, v := range wr {
				if v < 0 {
					return configErr("negative traffic %g at (%d,%d)", v, i, j)
				}
			}
		}
	}
	return nil
}

// EvalResponse reports the evaluated latency of one placement, using the
// Solution latency vocabulary (head + serialization = total, in cycles).
type EvalResponse struct {
	C        int     `json:"c"`
	Width    int     `json:"widthBits"`
	Head     float64 `json:"headLatency"`
	Ser      float64 `json:"serializationLatency"`
	Total    float64 `json:"totalLatency"`
	Weighted bool    `json:"weighted,omitempty"`
}

// Eval runs the evaluation described by the (normalized, validated) request.
func (r *EvalRequest) Eval() (EvalResponse, error) {
	cfg := model.DefaultConfig(r.N)
	cfg.BW.BaseWidth = r.BaseWidth
	if err := cfg.Validate(); err != nil {
		return EvalResponse{}, configErr("%v", err)
	}
	row := topo.Row{N: r.N, Express: r.Express}
	var ev model.Eval
	var err error
	if r.Weights == nil {
		ev, err = cfg.EvalRow(row, r.C)
	} else {
		t := topo.Uniform("eval", r.N, row)
		ev, err = core.WeightedLatency(cfg, t, r.C, r.Weights)
	}
	if err != nil {
		return EvalResponse{}, configErr("%v", err)
	}
	return EvalResponse{
		C: ev.C, Width: ev.Width, Head: ev.Head, Ser: ev.Ser, Total: ev.Total,
		Weighted: r.Weights != nil,
	}, nil
}

// Encode writes the response as indented JSON with a trailing newline,
// matching the SolveResponse framing.
func (r EvalResponse) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
