package api

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"explink/internal/core"
	"explink/internal/runctl"
)

func TestParetoRequestNormalizeAndValidate(t *testing.T) {
	r := ParetoRequest{N: 8}
	r.Normalize()
	if r.Seed != 1 || r.BaseWidth != 256 {
		t.Fatalf("defaults wrong: %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := []ParetoRequest{
		{N: 1, BaseWidth: 256},
		{N: 8, C: -1, BaseWidth: 256},
		{N: 8, Objectives: []string{"area"}, BaseWidth: 256},
		{N: 8, Objectives: []string{"latency", "latency"}, BaseWidth: 256},
		{N: 8, Moves: -5, BaseWidth: 256},
		{N: 8, BaseWidth: -1},
		{N: 8, BaseWidth: 256, ArchiveCap: -1},
	}
	for i, r := range bad {
		err := r.Validate()
		if err == nil {
			t.Fatalf("case %d accepted: %+v", i, r)
		}
		if !errors.Is(err, runctl.ErrConfig) {
			t.Fatalf("case %d: error %v is not ErrConfig-typed", i, err)
		}
	}
}

func TestParetoRequestSpec(t *testing.T) {
	r := ParetoRequest{N: 8, Objectives: []string{"power", "latency"}, ArchiveCap: 9}
	spec, err := r.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.Objectives, []core.Objective{core.ObjPower, core.ObjLatency}) {
		t.Fatalf("objective order lost: %v", spec.Objectives)
	}
	if spec.ArchiveCap != 9 {
		t.Fatalf("archive cap lost: %d", spec.ArchiveCap)
	}
	r.Objectives = nil
	spec, err = r.Spec()
	if err != nil || !reflect.DeepEqual(spec.Objectives, core.AllObjectives) {
		t.Fatalf("default objectives: %v, %v", spec.Objectives, err)
	}
}

// TestParetoResponseEncodeStable pins the wire contract: deterministic bytes,
// trailing newline, and the schema fields the daemon/CLI byte-identity
// comparison depends on.
func TestParetoResponseEncodeStable(t *testing.T) {
	req := ParetoRequest{N: 6, C: 2, Moves: 1500}
	req.Normalize()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	f, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) == 0 {
		t.Fatal("empty frontier")
	}
	var a, b bytes.Buffer
	if err := NewParetoResponse(f).Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := NewParetoResponse(f).Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Fatal("missing trailing newline")
	}
	for _, field := range []string{`"objectives"`, `"points"`, `"evaluations"`, `"expressLinks"`, `"widthBits"`} {
		if !bytes.Contains(a.Bytes(), []byte(field)) {
			t.Fatalf("schema field %s missing:\n%s", field, a.String())
		}
	}

	resp := NewParetoResponse(f)
	if len(resp.Points) != len(f.Entries) || resp.Evals != f.Evals {
		t.Fatalf("response shape: %d points / %d evals vs %d / %d",
			len(resp.Points), resp.Evals, len(f.Entries), f.Evals)
	}
	for i, p := range resp.Points {
		e := f.Entries[i]
		if p.C != e.C || !reflect.DeepEqual(p.Objectives, e.Objs) ||
			p.TotalLatency != e.Eval.Total || p.PowerWatts != e.Cost.TotalPower() {
			t.Fatalf("point %d diverges from entry: %+v vs %+v", i, p, e)
		}
	}
}
