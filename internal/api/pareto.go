package api

import (
	"context"
	"encoding/json"
	"io"

	"explink/internal/core"
	"explink/internal/topo"
)

// ParetoRequest asks for a multi-objective placement frontier: the vector
// counterpart of SolveRequest, served at /v1/pareto and by `explink -pareto`.
// Zero values select the same defaults as the explink flags.
type ParetoRequest struct {
	// N is the network size (n x n routers).
	N int `json:"n"`
	// C is the link limit; 0 sweeps every feasible value and merges the
	// per-C archives into one frontier.
	C int `json:"c,omitempty"`
	// Objectives lists the frontier dimensions in order ("latency", "power",
	// "wiring"); empty means all three in canonical order.
	Objectives []string `json:"objectives,omitempty"`
	// Seed is the random seed; 0 means the default seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Moves overrides the SA move budget; 0 keeps the paper's schedule.
	Moves int `json:"moves,omitempty"`
	// BaseWidth is the link width in bits the bisection budget affords at
	// C=1; 0 means the paper's 256.
	BaseWidth int `json:"baseWidth,omitempty"`
	// ArchiveCap bounds the per-C non-dominated archive; 0 means the
	// annealer's default (32).
	ArchiveCap int `json:"archiveCap,omitempty"`
}

// Normalize fills defaulted fields in place, mirroring the explink flag
// defaults. The objective list is left as given — ordering is meaningful and
// core applies the all-dimensions default.
func (r *ParetoRequest) Normalize() {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.BaseWidth == 0 {
		r.BaseWidth = 256
	}
}

// Validate rejects malformed requests with runctl.ErrConfig-typed errors.
// Call Normalize first; validation treats the request as complete.
func (r *ParetoRequest) Validate() error {
	if r.N < 2 {
		return configErr("network size n=%d must be at least 2", r.N)
	}
	if r.C < 0 {
		return configErr("link limit c=%d must be non-negative (0 sweeps all)", r.C)
	}
	if _, err := core.ParseObjectives(r.Objectives); err != nil {
		return configErr("%v", err)
	}
	if r.Moves < 0 {
		return configErr("move budget %d must be non-negative", r.Moves)
	}
	if r.BaseWidth < 1 {
		return configErr("base width %d bits must be positive", r.BaseWidth)
	}
	if r.ArchiveCap < 0 {
		return configErr("archive cap %d must be non-negative", r.ArchiveCap)
	}
	return nil
}

// Spec converts the request's frontier knobs to the core form.
func (r *ParetoRequest) Spec() (core.ParetoSpec, error) {
	objs, err := core.ParseObjectives(r.Objectives)
	if err != nil {
		return core.ParetoSpec{}, configErr("%v", err)
	}
	return core.ParetoSpec{Objectives: objs, ArchiveCap: r.ArchiveCap}, nil
}

// Solve runs the frontier solve described by the (normalized, validated)
// request — the single path shared by cmd/explink and the daemon, so their
// outputs are byte-comparable by construction.
func (r *ParetoRequest) Solve(ctx context.Context, store *core.PlacementStore) (core.Frontier, error) {
	sr := SolveRequest{
		N: r.N, C: r.C, Algo: string(core.DCSA),
		Seed: r.Seed, Moves: r.Moves, BaseWidth: r.BaseWidth,
	}
	s, err := sr.Solver(store)
	if err != nil {
		return core.Frontier{}, err
	}
	spec, err := r.Spec()
	if err != nil {
		return core.Frontier{}, err
	}
	return s.SolvePareto(ctx, r.C, spec)
}

// ParetoPoint is the wire form of one frontier entry: the objective vector
// in response order plus the human-facing breakdown and the placement
// itself.
type ParetoPoint struct {
	C            int         `json:"c"`
	Width        int         `json:"widthBits"`
	Objectives   []float64   `json:"objectives"`
	TotalLatency float64     `json:"totalLatency"`
	PowerWatts   float64     `json:"powerWatts"`
	WireBitUnits float64     `json:"wireBitUnits"`
	Express      []topo.Span `json:"expressLinks"`
}

// ParetoResponse is the result of one ParetoRequest: the dimension names and
// the non-dominated points in the frontier's deterministic order.
type ParetoResponse struct {
	Objectives []string      `json:"objectives"`
	Points     []ParetoPoint `json:"points"`
	Evals      int64         `json:"evaluations"`
}

// NewParetoResponse assembles the wire response from a solved frontier.
func NewParetoResponse(f core.Frontier) ParetoResponse {
	out := ParetoResponse{Evals: f.Evals}
	for _, o := range f.Objectives {
		out.Objectives = append(out.Objectives, string(o))
	}
	for _, e := range f.Entries {
		out.Points = append(out.Points, ParetoPoint{
			C:            e.C,
			Width:        e.Eval.Width,
			Objectives:   e.Objs,
			TotalLatency: e.Eval.Total,
			PowerWatts:   e.Cost.TotalPower(),
			WireBitUnits: e.Cost.WireBitUnits,
			Express:      e.Row.Canonical().Express,
		})
	}
	return out
}

// Encode writes the response as indented JSON with a trailing newline,
// matching the SolveResponse framing — the daemon and `explink -pareto
// -json` emit these exact bytes.
func (r ParetoResponse) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
