package api

import (
	"context"
	"fmt"
	"strings"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/sim"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// Solver builds the placement solver described by a (normalized, validated)
// SolveRequest; store, when non-nil, routes every solve through the shared
// placement cache.
func (r *SolveRequest) Solver(store *core.PlacementStore) (*core.Solver, error) {
	cfg := model.DefaultConfig(r.N)
	cfg.BW.BaseWidth = r.BaseWidth
	if err := cfg.Validate(); err != nil {
		return nil, configErr("%v", err)
	}
	s := core.NewSolver(cfg)
	s.Seed = r.Seed
	s.WorstWeight = r.WorstWeight
	if r.Moves > 0 {
		s.Sched = s.Sched.WithMoves(r.Moves)
	}
	s.Store = store
	return s, nil
}

// Solve runs the solve described by the request: one link limit when C > 0,
// otherwise the full feasible-C sweep. It is the single solve path shared by
// cmd/explink and the daemon, which is what makes their outputs comparable
// byte for byte.
func (r *SolveRequest) Solve(ctx context.Context, store *core.PlacementStore) (core.RowSolution, []core.RowSolution, error) {
	s, err := r.Solver(store)
	if err != nil {
		return core.RowSolution{}, nil, err
	}
	if r.C > 0 {
		best, err := s.SolveRow(ctx, r.C, core.Algorithm(r.Algo))
		if err != nil {
			return core.RowSolution{}, nil, err
		}
		return best, []core.RowSolution{best}, nil
	}
	return s.Optimize(ctx, core.Algorithm(r.Algo))
}

// BuildTopology resolves a topology family name to a concrete topology and
// its link limit. "dcsa" solves an optimized placement first (with the
// paper's default solver configuration at the given seed), routed through
// store when one is attached so repeated requests re-solve nothing.
func BuildTopology(ctx context.Context, name string, n int, seed uint64, store *core.PlacementStore) (topo.Topology, int, error) {
	switch strings.ToLower(name) {
	case "mesh":
		return topo.Mesh(n), 1, nil
	case "fb":
		t := topo.FlattenedButterfly(n)
		return t, t.MaxCrossSection(), nil
	case "hfb":
		t := topo.HFB(n)
		return t, t.MaxCrossSection(), nil
	case "dcsa":
		s := core.NewSolver(model.DefaultConfig(n))
		s.Seed = seed
		s.Store = store
		best, _, err := s.Optimize(ctx, core.DCSA)
		if err != nil {
			return topo.Topology{}, 0, err
		}
		return s.Topology(best), best.C, nil
	default:
		return topo.Topology{}, 0, configErr("unknown topology %q", name)
	}
}

// BuildPattern resolves a traffic-pattern name: a synthetic pattern (rate
// passes through) or a PARSEC benchmark (which carries its own injection
// rate).
func BuildPattern(name string, n int, rate float64) (traffic.Pattern, float64, error) {
	switch strings.ToUpper(name) {
	case "UR":
		return traffic.UniformRandom(n), rate, nil
	case "TP":
		return traffic.Transpose(n), rate, nil
	case "BR":
		return traffic.BitReverse(n), rate, nil
	case "BC":
		return traffic.BitComplement(n), rate, nil
	case "SH":
		return traffic.Shuffle(n), rate, nil
	case "TOR":
		return traffic.Tornado(n), rate, nil
	case "NBR":
		return traffic.Neighbor(n), rate, nil
	case "HOTSPOT":
		hot := []int{0, n - 1, n * (n - 1), n*n - 1}
		return traffic.Hotspot(n, hot, 0.3, traffic.UniformRandom(n)), rate, nil
	}
	b, err := traffic.BenchmarkByName(strings.ToLower(name))
	if err != nil {
		return nil, 0, configErr("unknown pattern %q (synthetic or PARSEC name)", name)
	}
	return b.Pattern(n), b.InjRate, nil
}

// Config builds the simulator configuration described by a (normalized,
// validated) SimRequest, solving the topology first when the family demands
// it. The pattern may override the requested rate (PARSEC benchmarks carry
// their own).
func (r *SimRequest) Config(ctx context.Context, store *core.PlacementStore) (sim.Config, error) {
	tp, c, err := BuildTopology(ctx, r.Topo, r.N, r.Seed, store)
	if err != nil {
		return sim.Config{}, fmt.Errorf("api: topology: %w", err)
	}
	pat, rate, err := BuildPattern(r.Pattern, r.N, r.Rate)
	if err != nil {
		return sim.Config{}, fmt.Errorf("api: pattern: %w", err)
	}
	cfg := sim.NewConfig(tp, c, pat, rate)
	cfg.Seed = r.Seed
	cfg.Warmup, cfg.Measure, cfg.Drain = r.Warmup, r.Measure, r.Drain
	cfg.Audit = r.Audit
	return cfg, nil
}
