package api

import (
	"explink/internal/exp"
	"explink/internal/sim"
	"explink/internal/stats"
)

// SimResponse is the result of one SimRequest. Exactly one of Result,
// Replicas (+Aggregate) or Sweep is populated, matching the request shape.
// Error rides alongside partial data when the run stopped early (drain,
// deadline, deadlock): the embedded results carry their Truncated reasons,
// so a drained daemon still returns everything it measured.
type SimResponse struct {
	// Result is the single-run result (Replicas <= 1, Saturate false).
	Result *sim.Result `json:"result,omitempty"`
	// Replicas are the per-replica results and Aggregate their across-replica
	// summary (Replicas > 1).
	Replicas  []sim.Result `json:"replicas,omitempty"`
	Aggregate *sim.Result  `json:"aggregate,omitempty"`
	// Sweep is the saturation search outcome (Saturate true).
	Sweep *sim.SweepResult `json:"sweep,omitempty"`
	// Error classifies an early stop; partial results above remain valid.
	Error *ErrorBody `json:"error,omitempty"`
}

// Partial reports whether the response carries any measured data, which is
// what decides between "error with partial results" (HTTP 200 + Error) and a
// plain error status.
func (r SimResponse) Partial() bool {
	if r.Result != nil && r.Result.Cycles > 0 {
		return true
	}
	if len(r.Replicas) > 0 || r.Aggregate != nil {
		return true
	}
	return r.Sweep != nil && len(r.Sweep.Points) > 0
}

// ExpOutcome is one experiment's slot in an ExpResult: either a structured
// report or a classified error (e.g. kind "cancelled" with the experiment's
// truncation reason when a drain interrupted the suite).
type ExpOutcome struct {
	Name    string        `json:"name"`
	Section string        `json:"section,omitempty"`
	Seconds float64       `json:"seconds"`
	Report  *stats.Report `json:"report,omitempty"`
	Error   *ErrorBody    `json:"error,omitempty"`
}

// ExpResult is the terminal payload of an experiment-suite run: every
// outcome in registry order plus the failure count. A drained suite reports
// the finished experiments' reports and "cancelled"-kind errors for the
// rest — partial results, never silence.
type ExpResult struct {
	Experiments int          `json:"experiments"`
	Failed      int          `json:"failed"`
	Outcomes    []ExpOutcome `json:"outcomes"`
}

// ExpResultOf converts runner outcomes to the wire form.
func ExpResultOf(results []exp.Outcome) ExpResult {
	out := ExpResult{Experiments: len(results)}
	for _, oc := range results {
		eo := ExpOutcome{Name: oc.Exp.Name, Section: oc.Exp.Section, Seconds: oc.Elapsed.Seconds()}
		if oc.Err != nil {
			out.Failed++
			eo.Error = ErrorBodyOf(oc.Err)
		} else {
			eo.Report = oc.Rep
		}
		out.Outcomes = append(out.Outcomes, eo)
	}
	return out
}
