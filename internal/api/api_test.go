package api

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"explink/internal/core"
	"explink/internal/exp"
	"explink/internal/runctl"
	"explink/internal/topo"
)

func TestSolveRequestNormalizeAndValidate(t *testing.T) {
	r := SolveRequest{N: 8}
	r.Normalize()
	if r.Algo != string(core.DCSA) || r.Seed != 1 || r.BaseWidth != 256 {
		t.Fatalf("defaults wrong: %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := []SolveRequest{
		{N: 1, Algo: "D&C_SA", BaseWidth: 256},
		{N: 8, C: -1, Algo: "D&C_SA", BaseWidth: 256},
		{N: 8, Algo: "magic", BaseWidth: 256},
		{N: 8, Algo: "D&C_SA", Moves: -5, BaseWidth: 256},
		{N: 8, Algo: "D&C_SA", BaseWidth: -1},
		{N: 8, Algo: "D&C_SA", BaseWidth: 256, WorstWeight: 1.5},
	}
	for i, r := range bad {
		err := r.Validate()
		if err == nil {
			t.Fatalf("case %d accepted: %+v", i, r)
		}
		if !errors.Is(err, runctl.ErrConfig) {
			t.Fatalf("case %d: error %v is not ErrConfig-typed", i, err)
		}
	}
}

func TestValidateSimParams(t *testing.T) {
	if err := ValidateSimParams(2000, 10000, 40000, 1, 0.02); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		warmup, measure, drain, replicas int
		rate                             float64
		wantWord                         string
	}{
		{0, 10000, 40000, 1, 0.02, "warmup"},
		{-5, 10000, 40000, 1, 0.02, "warmup"},
		{2000, 0, 40000, 1, 0.02, "measure"},
		{2000, -1, 40000, 1, 0.02, "measure"},
		{2000, 10000, -1, 1, 0.02, "drain"},
		{2000, 10000, 40000, 0, 0.02, "replica"},
		{2000, 10000, 40000, -2, 0.02, "replica"},
		{2000, 10000, 40000, 1, -0.1, "rate"},
		{2000, 10000, 40000, 1, 1.5, "rate"},
	}
	for i, c := range cases {
		err := ValidateSimParams(c.warmup, c.measure, c.drain, c.replicas, c.rate)
		if err == nil {
			t.Fatalf("case %d accepted", i)
		}
		if !errors.Is(err, runctl.ErrConfig) {
			t.Fatalf("case %d: %v is not ErrConfig-typed", i, err)
		}
		if !strings.Contains(err.Error(), c.wantWord) {
			t.Fatalf("case %d: %v does not name %q", i, err, c.wantWord)
		}
	}
}

func TestSimRequestDefaultsMatchExpsimFlags(t *testing.T) {
	r := SimRequest{N: 8}
	r.Normalize()
	if r.Topo != "mesh" || r.Pattern != "UR" || r.Rate != 0.02 || r.Seed != 1 ||
		r.Warmup != 2000 || r.Measure != 10000 || r.Drain != 40000 || r.Replicas != 1 {
		t.Fatalf("defaults diverge from the expsim flag defaults: %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndHTTPStatus(t *testing.T) {
	cases := []struct {
		err    error
		kind   string
		status int
	}{
		{nil, "", http.StatusOK},
		{runctl.ErrConfig, "config", http.StatusBadRequest},
		{runctl.ErrCancelled, "cancelled", http.StatusServiceUnavailable},
		{runctl.ErrDeadlock, "deadlock", http.StatusUnprocessableEntity},
		{runctl.ErrUnstable, "unstable", http.StatusUnprocessableEntity},
		{runctl.ErrAudit, "audit", http.StatusInternalServerError},
		{errors.New("boom"), "internal", http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := Kind(c.err); got != c.kind {
			t.Fatalf("Kind(%v) = %q, want %q", c.err, got, c.kind)
		}
		if got := HTTPStatus(c.err); got != c.status {
			t.Fatalf("HTTPStatus(%v) = %d, want %d", c.err, got, c.status)
		}
	}
	// Wrapped errors classify through errors.Is.
	wrapped := configErr("nested %d", 7)
	if Kind(wrapped) != "config" || HTTPStatus(wrapped) != http.StatusBadRequest {
		t.Fatalf("wrapped config error misclassified: %v", wrapped)
	}
	if ErrorBodyOf(nil) != nil {
		t.Fatal("ErrorBodyOf(nil) != nil")
	}
	if b := ErrorBodyOf(wrapped); b.Kind != "config" || b.Message == "" {
		t.Fatalf("body wrong: %+v", b)
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := SelectExperiments(nil)
	if err != nil || len(all) != len(exp.All()) {
		t.Fatalf("nil selection: %d of %d (%v)", len(all), len(exp.All()), err)
	}
	all, err = SelectExperiments([]string{"fig5", "all"})
	if err != nil || len(all) != len(exp.All()) {
		t.Fatalf("'all' selection: %d (%v)", len(all), err)
	}
	sel, err := SelectExperiments([]string{"fig11", " FIG5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "fig5" || sel[1].Name != "fig11" {
		t.Fatalf("registry order lost: %v", sel)
	}
	if _, err := SelectExperiments([]string{"fig5", "nope"}); !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("unknown name: %v", err)
	}
	if _, err := SelectExperiments([]string{" ", ""}); !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("blank selection: %v", err)
	}
}

func TestEvalRequestUniformAndWeighted(t *testing.T) {
	// A placement the solver itself produced must evaluate identically
	// through the service path.
	req := SolveRequest{N: 6, C: 2}
	req.Normalize()
	best, _, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	er := EvalRequest{N: 6, C: best.C, Express: best.Row.Express}
	er.Normalize()
	if err := er.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := er.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != best.Eval.Total || got.Width != best.Eval.Width {
		t.Fatalf("eval mismatch: %+v vs %+v", got, best.Eval)
	}

	// A uniform traffic matrix goes down the weighted path (Section 5.6.4's
	// machinery over the 2D expansion — a different formulation from the
	// analytic row average, so only shape is asserted here).
	nn := 36
	w := make([][]float64, nn)
	for i := range w {
		w[i] = make([]float64, nn)
		for j := range w[i] {
			if i != j {
				w[i][j] = 1
			}
		}
	}
	er.Weights = w
	if err := er.Validate(); err != nil {
		t.Fatal(err)
	}
	wgot, err := er.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if !wgot.Weighted {
		t.Fatal("weighted flag unset")
	}
	if wgot.Total <= 0 || wgot.Head <= 0 {
		t.Fatalf("weighted eval degenerate: %+v", wgot)
	}

	// Malformed requests are config-typed.
	bad := EvalRequest{N: 6, C: 2, Express: []topo.Span{{From: 0, To: 99}}, BaseWidth: 256}
	if err := bad.Validate(); !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("invalid span: %v", err)
	}
	short := EvalRequest{N: 6, C: 2, BaseWidth: 256, Weights: [][]float64{{1}}}
	if err := short.Validate(); !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("short matrix: %v", err)
	}
}

func TestSolveResponseEncodeStable(t *testing.T) {
	req := SolveRequest{N: 6, C: 2}
	req.Normalize()
	best, all, err := req.Solve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := NewSolveResponse(best, all).Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := NewSolveResponse(best, all).Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Fatal("missing trailing newline")
	}
	if !bytes.Contains(a.Bytes(), []byte(`"expressLinks"`)) {
		t.Fatalf("historical schema field missing:\n%s", a.String())
	}
}

func TestBuildTopologyAndPattern(t *testing.T) {
	for name, wantC := range map[string]int{"mesh": 1, "hfb": 4, "fb": 16} {
		tp, c, err := BuildTopology(context.Background(), name, 8, 1, nil)
		if err != nil || c != wantC {
			t.Fatalf("%s: c=%d err=%v", name, c, err)
		}
		if err := tp.Validate(c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, _, err := BuildTopology(context.Background(), "ring", 8, 1, nil); !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("unknown topology: %v", err)
	}
	if _, _, err := BuildPattern("doom", 8, 0.1); !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("unknown pattern: %v", err)
	}
	pat, rate, err := BuildPattern("canneal", 8, 0.5)
	if err != nil || pat.Name() != "canneal" || rate == 0.5 {
		t.Fatalf("parsec lookup: %v %g %v", pat, rate, err)
	}
}
