package api

import (
	"errors"
	"net/http"

	"explink/internal/runctl"
)

// Kind classifies an error against the runctl taxonomy with a stable wire
// string, so remote clients can branch on outcomes the way local callers use
// errors.Is. A nil error is "" (success); anything outside the taxonomy is
// "internal".
func Kind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, runctl.ErrConfig):
		return "config"
	case errors.Is(err, runctl.ErrCancelled):
		return "cancelled"
	case errors.Is(err, runctl.ErrDeadlock):
		return "deadlock"
	case errors.Is(err, runctl.ErrUnstable):
		return "unstable"
	case errors.Is(err, runctl.ErrAudit):
		return "audit"
	default:
		return "internal"
	}
}

// HTTPStatus maps the runctl error taxonomy onto HTTP statuses:
//
//	nil          -> 200 OK
//	ErrConfig    -> 400 Bad Request           (the request itself is wrong)
//	ErrCancelled -> 503 Service Unavailable   (cut short — e.g. a drain — retryable)
//	ErrDeadlock  -> 422 Unprocessable Entity  (valid request, network deadlocked)
//	ErrUnstable  -> 422 Unprocessable Entity  (valid request, network unstable)
//	ErrAudit     -> 500 Internal Server Error (the engine broke an invariant)
//	other        -> 500 Internal Server Error
func HTTPStatus(err error) int {
	switch Kind(err) {
	case "":
		return http.StatusOK
	case "config":
		return http.StatusBadRequest
	case "cancelled":
		return http.StatusServiceUnavailable
	case "deadlock", "unstable":
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// ErrorBody is the wire form of a failed request, carried in HTTP error
// responses and stdio error replies.
type ErrorBody struct {
	// Kind is the taxonomy class (see Kind).
	Kind string `json:"kind"`
	// Message is the error text.
	Message string `json:"message"`
}

// ErrorBodyOf builds the wire form of err; nil in, nil out.
func ErrorBodyOf(err error) *ErrorBody {
	if err == nil {
		return nil
	}
	return &ErrorBody{Kind: Kind(err), Message: err.Error()}
}
