package api

import (
	"encoding/json"
	"errors"
	"fmt"

	"explink/internal/runctl"
)

// Work-distribution schemas: the wire surface of the sweep fabric
// (internal/fabric). A coordinator decomposes an experiment suite into work
// units and serves them at POST /v1/work/lease, /v1/work/heartbeat and
// /v1/work/complete; workers are thin loops that lease a unit, run it
// through the same experiment registry a local expbench run uses, and stream
// the outcome back. Like every schema in this package, the types are
// versioned under SchemaVersion and validate with runctl.ErrConfig-typed
// rejections.

// Lease statuses returned by WorkLeaseResponse.Status.
const (
	// WorkStatusUnit grants a unit: Unit, Lease and TTLSeconds are set.
	WorkStatusUnit = "unit"
	// WorkStatusWait reports that every remaining unit is leased to someone
	// else; retry after RetrySeconds.
	WorkStatusWait = "wait"
	// WorkStatusDone reports that every unit is terminal; the worker can
	// exit.
	WorkStatusDone = "done"
)

// WorkUnit is one leased shard of a suite on the wire: the experiment to run
// plus the suite-wide fidelity knobs, self-contained so a worker needs no
// other configuration channel.
type WorkUnit struct {
	// Seq is the unit's sequence number in the suite (registry order).
	Seq int `json:"seq"`
	// Name is the experiment registry name (see exp.Lookup).
	Name string `json:"name"`
	// Quick, Seed and Replicas mirror the ExpRequest fields of the suite the
	// unit was decomposed from.
	Quick    bool   `json:"quick,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Replicas int    `json:"replicas,omitempty"`
}

// WorkLeaseRequest asks the coordinator for a unit.
type WorkLeaseRequest struct {
	// Worker self-identifies the requester (hostname:pid style); it labels
	// leases in logs and metrics but carries no authority.
	Worker string `json:"worker,omitempty"`
}

// Normalize fills defaulted fields in place.
func (r *WorkLeaseRequest) Normalize() {
	if r.Worker == "" {
		r.Worker = "anonymous"
	}
}

// Validate rejects malformed requests with runctl.ErrConfig-typed errors.
func (r *WorkLeaseRequest) Validate() error {
	if len(r.Worker) > 256 {
		return configErr("worker id longer than 256 bytes")
	}
	return nil
}

// WorkLeaseResponse answers a lease request. Exactly one of the three
// statuses above is set; SuiteID fingerprints the coordinator's suite so a
// worker pointed at the wrong coordinator fails loudly instead of running
// mismatched units.
type WorkLeaseResponse struct {
	Status string    `json:"status"`
	Unit   *WorkUnit `json:"unit,omitempty"`
	// Lease is the opaque lease id the worker must heartbeat and complete
	// with (WorkStatusUnit only).
	Lease string `json:"lease,omitempty"`
	// TTLSeconds is how long the lease lives without a heartbeat; workers
	// should heartbeat a few times per TTL.
	TTLSeconds float64 `json:"ttlSeconds,omitempty"`
	// RetrySeconds is the suggested poll delay for WorkStatusWait.
	RetrySeconds float64 `json:"retrySeconds,omitempty"`
	// SuiteID is the suite fingerprint (sha256 over the canonical suite
	// preimage).
	SuiteID string `json:"suiteId,omitempty"`
}

// WorkHeartbeatRequest extends a lease.
type WorkHeartbeatRequest struct {
	Lease string `json:"lease"`
}

// Validate rejects malformed requests with runctl.ErrConfig-typed errors.
func (r *WorkHeartbeatRequest) Validate() error {
	if r.Lease == "" {
		return configErr("heartbeat without a lease id")
	}
	return nil
}

// Heartbeat and completion statuses.
const (
	// WorkStatusOK acknowledges a heartbeat: the lease deadline was extended.
	WorkStatusOK = "ok"
	// WorkStatusUnknown reports a lease the coordinator no longer tracks
	// (expired and reassigned, or from a previous coordinator incarnation).
	// The worker should abandon the unit run — its result is no longer
	// wanted from this lease, though a completion will still be accepted if
	// the unit has not finished elsewhere.
	WorkStatusUnknown = "unknown"
	// WorkStatusAccepted acknowledges a completion that was recorded.
	WorkStatusAccepted = "accepted"
	// WorkStatusStale acknowledges a completion for a unit that already
	// finished elsewhere; the result was discarded (results are
	// deterministic, so nothing is lost).
	WorkStatusStale = "stale"
)

// WorkHeartbeatResponse answers a heartbeat.
type WorkHeartbeatResponse struct {
	Status     string  `json:"status"`
	TTLSeconds float64 `json:"ttlSeconds,omitempty"`
}

// WorkCompleteRequest reports one finished unit: either a structured report
// (success) or a classified error. A kind "cancelled" error marks a worker
// drained mid-run — the coordinator re-queues the unit instead of failing
// the suite.
type WorkCompleteRequest struct {
	Lease string `json:"lease,omitempty"`
	Seq   int    `json:"seq"`
	Name  string `json:"name"`
	// Seconds is the unit's wall time on the worker.
	Seconds float64 `json:"seconds,omitempty"`
	// Report is the sanitized stats.Report JSON of a successful run.
	Report json.RawMessage `json:"report,omitempty"`
	// Error classifies a failed run.
	Error *ErrorBody `json:"error,omitempty"`
}

// Validate rejects malformed requests with runctl.ErrConfig-typed errors.
func (r *WorkCompleteRequest) Validate() error {
	if r.Seq < 0 {
		return configErr("unit seq %d must be non-negative", r.Seq)
	}
	if r.Name == "" {
		return configErr("completion without an experiment name")
	}
	if (len(r.Report) == 0) == (r.Error == nil) {
		return configErr("completion must carry exactly one of report or error")
	}
	return nil
}

// WorkCompleteResponse acknowledges a completion. Done lets the completing
// worker exit without another lease round-trip when its unit was the last.
type WorkCompleteResponse struct {
	Status string `json:"status"`
	Done   bool   `json:"done,omitempty"`
}

// Err reconstructs a Go error from a wire ErrorBody, wrapping the matching
// runctl sentinel so errors.Is classification survives the network hop (a
// worker's "cancelled" failure still classifies as runctl.ErrCancelled on
// the coordinator). A nil body returns nil.
func (e *ErrorBody) Err() error {
	if e == nil {
		return nil
	}
	var sentinel error
	switch e.Kind {
	case "config":
		sentinel = runctl.ErrConfig
	case "cancelled":
		sentinel = runctl.ErrCancelled
	case "deadlock":
		sentinel = runctl.ErrDeadlock
	case "unstable":
		sentinel = runctl.ErrUnstable
	case "audit":
		sentinel = runctl.ErrAudit
	default:
		return errors.New(e.Message)
	}
	return fmt.Errorf("%s: %w", e.Message, sentinel)
}
