// Package api is the stable service-facing surface of the repo: the
// request/response schemas, validation rules and typed-error classification
// shared by the command-line tools (cmd/explink, cmd/expsim, cmd/expbench)
// and the placement daemon (cmd/explinkd via internal/serve).
//
// Before this layer each binary parsed and validated its inputs ad hoc; now
// one package owns the entry surface, so a flag set, an HTTP body and a
// stdio JSON line all funnel into the same structs and the same
// runctl.ErrConfig-typed rejections, and the daemon's JSON responses are
// byte-identical to the equivalent CLI output by construction (both sides
// call the same encoders).
//
// Schemas are versioned: SchemaVersion names the wire generation, and every
// HTTP endpoint lives under a matching path prefix (/v1/...). Any change
// that can alter the meaning of an existing field must bump it.
package api

import (
	"fmt"

	"explink/internal/core"
	"explink/internal/runctl"
)

// SchemaVersion names the wire-format generation of every request and
// response type in this package. It doubles as the HTTP path prefix of the
// daemon's endpoints (/v1/solve, /v1/eval, /v1/sim, /v1/exp).
const SchemaVersion = "v1"

// configErr builds a validation error wrapping runctl.ErrConfig, so every
// rejected request classifies as Kind "config" (HTTP 400) via errors.Is
// regardless of which binary rejected it.
func configErr(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), runctl.ErrConfig)
}

// SolveRequest asks for an express-link placement: the paper's end-to-end
// flow (cmd/explink) as a service call. The zero value of every optional
// field selects the same default as the corresponding explink flag, so a
// request {"n":8} and `explink -n 8` describe the same solve.
type SolveRequest struct {
	// N is the network size (n x n routers).
	N int `json:"n"`
	// C is the link limit; 0 sweeps every feasible value and returns the best.
	C int `json:"c,omitempty"`
	// Algo is the placement algorithm: "D&C_SA" (default), "OnlySA" or
	// "InitOnly".
	Algo string `json:"algo,omitempty"`
	// Seed is the random seed; 0 means the default seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Moves overrides the SA move budget; 0 keeps the paper's schedule.
	Moves int `json:"moves,omitempty"`
	// BaseWidth is the link width in bits the bisection budget affords at
	// C=1; 0 means the paper's 256.
	BaseWidth int `json:"baseWidth,omitempty"`
	// WorstWeight blends the worst-case pair latency into the SA objective
	// (0 = the paper's average-only formulation).
	WorstWeight float64 `json:"worstWeight,omitempty"`
}

// Normalize fills defaulted fields in place, mirroring the explink flag
// defaults.
func (r *SolveRequest) Normalize() {
	if r.Algo == "" {
		r.Algo = string(core.DCSA)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.BaseWidth == 0 {
		r.BaseWidth = 256
	}
}

// Validate rejects malformed requests with runctl.ErrConfig-typed errors.
// Call Normalize first; validation treats the request as complete.
func (r *SolveRequest) Validate() error {
	if r.N < 2 {
		return configErr("network size n=%d must be at least 2", r.N)
	}
	if r.C < 0 {
		return configErr("link limit c=%d must be non-negative (0 sweeps all)", r.C)
	}
	switch core.Algorithm(r.Algo) {
	case core.DCSA, core.OnlySA, core.InitOnly:
	default:
		return configErr("unknown algorithm %q (want %s, %s or %s)",
			r.Algo, core.DCSA, core.OnlySA, core.InitOnly)
	}
	if r.Moves < 0 {
		return configErr("move budget %d must be non-negative", r.Moves)
	}
	if r.BaseWidth < 1 {
		return configErr("base width %d bits must be positive", r.BaseWidth)
	}
	if r.WorstWeight < 0 || r.WorstWeight > 1 {
		return configErr("worst-case blend %g out of [0,1]", r.WorstWeight)
	}
	return nil
}

// SimRequest asks for a simulator run — a single operating point, a replica
// group, or a saturation sweep — with the same vocabulary as the expsim
// flags. Zero values select the expsim defaults.
type SimRequest struct {
	// N is the network size (n x n routers).
	N int `json:"n"`
	// Topo is the topology family: "mesh" (default), "hfb", "fb" or "dcsa"
	// (solve an optimized placement first; rides the daemon's shared
	// placement store).
	Topo string `json:"topo,omitempty"`
	// Pattern is the traffic pattern: a synthetic name (UR, TP, BR, BC, SH,
	// TOR, NBR, hotspot) or a PARSEC benchmark name. Default "UR".
	Pattern string `json:"pattern,omitempty"`
	// Rate is the injection rate in packets/node/cycle; 0 means the expsim
	// default 0.02 (PARSEC patterns carry their own rate).
	Rate float64 `json:"rate,omitempty"`
	// Seed drives all randomness; 0 means the default seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Warmup, Measure and Drain are the phase lengths in cycles; zero fields
	// take the expsim defaults (2000, 10000, 40000).
	Warmup  int `json:"warmup,omitempty"`
	Measure int `json:"measure,omitempty"`
	Drain   int `json:"drain,omitempty"`
	// Replicas runs this many decorrelated seed replicas on the batched
	// engine and reports each plus the aggregate; 0 means 1.
	Replicas int `json:"replicas,omitempty"`
	// Saturate searches for the saturation throughput instead of running a
	// single operating point.
	Saturate bool `json:"saturate,omitempty"`
	// Audit enables the per-cycle invariant auditor.
	Audit bool `json:"audit,omitempty"`
}

// Normalize fills defaulted fields in place, mirroring the expsim flag
// defaults.
func (r *SimRequest) Normalize() {
	if r.Topo == "" {
		r.Topo = "mesh"
	}
	if r.Pattern == "" {
		r.Pattern = "UR"
	}
	if r.Rate == 0 {
		r.Rate = 0.02
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Warmup == 0 {
		r.Warmup = 2000
	}
	if r.Measure == 0 {
		r.Measure = 10000
	}
	if r.Drain == 0 {
		r.Drain = 40000
	}
	if r.Replicas == 0 {
		r.Replicas = 1
	}
}

// Validate rejects malformed requests with runctl.ErrConfig-typed errors.
// Call Normalize first; validation treats the request as complete.
func (r *SimRequest) Validate() error {
	if r.N < 2 {
		return configErr("network size n=%d must be at least 2", r.N)
	}
	return ValidateSimParams(r.Warmup, r.Measure, r.Drain, r.Replicas, r.Rate)
}

// ValidateSimParams is the shared fail-fast check over the run-shape
// parameters every simulation entry point accepts (the expsim flags and
// SimRequest fields): phase lengths and the replica count must be positive
// and the injection rate must sit in [0, 1]. Downstream code tolerates some
// of these (a zero measure window divides throughput by zero, a zero replica
// count silently means one), so the boundary rejects them with
// runctl.ErrConfig instead of letting them misbehave later.
func ValidateSimParams(warmup, measure, drain, replicas int, rate float64) error {
	if warmup <= 0 {
		return configErr("warmup %d cycles must be positive", warmup)
	}
	if measure <= 0 {
		return configErr("measure %d cycles must be positive", measure)
	}
	if drain < 0 {
		return configErr("drain %d cycles must be non-negative", drain)
	}
	if replicas <= 0 {
		return configErr("replica count %d must be positive", replicas)
	}
	if rate < 0 || rate > 1 {
		return configErr("injection rate %g out of [0,1]", rate)
	}
	return nil
}

// ExpRequest asks for an experiment-suite run: the expbench entry surface as
// a service call. Experiments stream progress events and return their
// structured reports.
type ExpRequest struct {
	// Experiments selects registry entries by name; empty means every
	// registered experiment.
	Experiments []string `json:"experiments,omitempty"`
	// Quick shrinks budgets for a fast smoke run (the expbench -quick flag).
	Quick bool `json:"quick,omitempty"`
	// Seed is the shared random seed; 0 means the default seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Replicas runs every simulated operating point this many times; 0
	// means 1.
	Replicas int `json:"replicas,omitempty"`
	// Parallel bounds how many experiments run concurrently; 0 means 1.
	Parallel int `json:"parallel,omitempty"`
}

// Normalize fills defaulted fields in place, mirroring the expbench flag
// defaults.
func (r *ExpRequest) Normalize() {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Replicas == 0 {
		r.Replicas = 1
	}
	if r.Parallel == 0 {
		r.Parallel = 1
	}
}

// Validate rejects malformed requests with runctl.ErrConfig-typed errors;
// unknown experiment names are caught by SelectExperiments.
func (r *ExpRequest) Validate() error {
	if r.Replicas <= 0 {
		return configErr("replica count %d must be positive", r.Replicas)
	}
	if r.Parallel <= 0 {
		return configErr("parallelism %d must be positive", r.Parallel)
	}
	return nil
}
