package route

import (
	"fmt"

	"explink/internal/topo"
)

// This file verifies the deadlock-freedom argument of Section 4.5.1: packets
// traverse each dimension monotonically (no U-turns) and turn from X to Y
// only, so the channel dependency graph (CDG) is acyclic. Rather than
// trusting the argument, tests build the CDG induced by the actual routing
// tables and check it for cycles.

// channelID identifies one directed network channel. dim is 0 for X (row)
// channels and 1 for Y (column) channels; line is the row or column index;
// from/to are positions along that line.
type channelID struct {
	dim, line, from, to int
}

type cdg struct {
	adj map[channelID]map[channelID]bool
}

func newCDG() *cdg {
	return &cdg{adj: make(map[channelID]map[channelID]bool)}
}

func (g *cdg) addDep(a, b channelID) {
	if g.adj[a] == nil {
		g.adj[a] = make(map[channelID]bool)
	}
	g.adj[a][b] = true
	if g.adj[b] == nil {
		g.adj[b] = make(map[channelID]bool)
	}
}

// acyclic runs an iterative three-color DFS over the dependency graph.
func (g *cdg) acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[channelID]int, len(g.adj))
	type frame struct {
		node  channelID
		succs []channelID
		idx   int
	}
	for start := range g.adj {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start, succs: keys(g.adj[start])}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx >= len(f.succs) {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			next := f.succs[f.idx]
			f.idx++
			switch color[next] {
			case gray:
				return false
			case white:
				color[next] = gray
				stack = append(stack, frame{node: next, succs: keys(g.adj[next])})
			}
		}
	}
	return true
}

func keys(m map[channelID]bool) []channelID {
	out := make([]channelID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// RowCDGAcyclic builds the CDG induced by the row's routing tables (every
// source-destination pair on the line) and reports whether it is acyclic.
func RowCDGAcyclic(row topo.Row, paths *RowPaths) (bool, error) {
	g := newCDG()
	if err := addLineDeps(g, paths, 0, 0, nil); err != nil {
		return false, err
	}
	return g.acyclic(), nil
}

// addLineDeps walks every routed pair on one line (dim/line identify it) and
// records channel-to-channel dependencies. If tail is non-nil it is invoked
// with the last channel of every path so the caller can chain cross-dimension
// dependencies (the X-to-Y turn).
func addLineDeps(g *cdg, paths *RowPaths, dim, line int, onPath func(src, dst int, chs []channelID)) error {
	for i := 0; i < paths.N; i++ {
		for j := 0; j < paths.N; j++ {
			if i == j {
				continue
			}
			p, err := paths.Path(i, j)
			if err != nil {
				return err
			}
			chs := make([]channelID, 0, len(p)-1)
			for k := 0; k+1 < len(p); k++ {
				chs = append(chs, channelID{dim: dim, line: line, from: p[k], to: p[k+1]})
			}
			for k := 0; k+1 < len(chs); k++ {
				g.addDep(chs[k], chs[k+1])
			}
			if len(chs) > 0 && g.adj[chs[0]] == nil {
				g.adj[chs[0]] = make(map[channelID]bool)
			}
			if onPath != nil {
				onPath(i, j, chs)
			}
		}
	}
	return nil
}

// TopologyCDGAcyclic builds the full 2D channel dependency graph induced by
// XY dimension-order routing with the per-row and per-column tables of the
// topology and reports whether it is acyclic (i.e. routing is deadlock-free).
func TopologyCDGAcyclic(t topo.Topology, p Params) (bool, error) {
	g := newCDG()
	w, h := t.W, t.H

	rowPaths := make([]*RowPaths, h)
	colPaths := make([]*RowPaths, w)
	for y := 0; y < h; y++ {
		rowPaths[y] = Compute(t.Rows[y], p)
	}
	for x := 0; x < w; x++ {
		colPaths[x] = Compute(t.Cols[x], p)
	}

	// Intra-dimension dependencies.
	for y := 0; y < h; y++ {
		if err := addLineDeps(g, rowPaths[y], 0, y, nil); err != nil {
			return false, fmt.Errorf("row %d: %w", y, err)
		}
	}
	for x := 0; x < w; x++ {
		if err := addLineDeps(g, colPaths[x], 1, x, nil); err != nil {
			return false, fmt.Errorf("col %d: %w", x, err)
		}
	}

	// Cross-dimension dependencies: for every (src, dst) with both a
	// horizontal and a vertical component, the last X channel feeds the first
	// Y channel at the turning router.
	for sy := 0; sy < h; sy++ {
		for sx := 0; sx < w; sx++ {
			for dy := 0; dy < h; dy++ {
				for dx := 0; dx < w; dx++ {
					if sx == dx || sy == dy {
						continue
					}
					xPath, err := rowPaths[sy].Path(sx, dx)
					if err != nil {
						return false, err
					}
					yFirst := colPaths[dx].Next[sy][dy]
					lastX := channelID{dim: 0, line: sy, from: xPath[len(xPath)-2], to: dx}
					firstY := channelID{dim: 1, line: dx, from: sy, to: yFirst}
					g.addDep(lastX, firstY)
				}
			}
		}
	}
	return g.acyclic(), nil
}
