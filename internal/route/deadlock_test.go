package route

import (
	"testing"

	"explink/internal/stats"
	"explink/internal/topo"
)

func TestRowCDGAcyclicMesh(t *testing.T) {
	row := topo.MeshRow(8)
	ok, err := RowCDGAcyclic(row, Compute(row, testParams))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("mesh row CDG must be acyclic")
	}
}

func TestRowCDGAcyclicRandom(t *testing.T) {
	rng := stats.NewRNG(71)
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(13)
		row := randomRow(rng, n, 5)
		ok, err := RowCDGAcyclic(row, Compute(row, testParams))
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if !ok {
			t.Fatalf("cyclic CDG for row %v", row)
		}
	}
}

func TestTopologyCDGAcyclic(t *testing.T) {
	for _, tp := range []topo.Topology{
		topo.Mesh(4),
		topo.HFB(8),
		topo.FlattenedButterfly(4),
	} {
		ok, err := TopologyCDGAcyclic(tp, testParams)
		if err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		if !ok {
			t.Fatalf("%s: XY routing produced a cyclic CDG", tp.Name)
		}
	}
}

func TestTopologyCDGAcyclicRandomPlacements(t *testing.T) {
	rng := stats.NewRNG(81)
	for trial := 0; trial < 10; trial++ {
		row := randomRow(rng, 8, 4)
		tp := topo.Uniform("rand", 8, row)
		ok, err := TopologyCDGAcyclic(tp, testParams)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("cyclic CDG for placement %v", row)
		}
	}
}

func TestCDGDetectsCycles(t *testing.T) {
	// Sanity-check the cycle detector itself with a hand-built cycle.
	g := newCDG()
	a := channelID{dim: 0, line: 0, from: 0, to: 1}
	b := channelID{dim: 0, line: 0, from: 1, to: 0}
	g.addDep(a, b)
	g.addDep(b, a)
	if g.acyclic() {
		t.Fatal("cycle not detected")
	}
	g2 := newCDG()
	g2.addDep(a, b)
	if !g2.acyclic() {
		t.Fatal("acyclic graph misreported")
	}
}
