package route

import (
	"testing"

	"explink/internal/stats"
	"explink/internal/topo"
)

// reference recomputes the full-evaluation answers for the incremental
// evaluator's current logical row.
func refMeanMax(row topo.Row) (float64, float64) {
	return NewScratch().MeanMax(row, testParams)
}

func TestIncrementalResetMatchesScratch(t *testing.T) {
	// One evaluator across rows of varying sizes: every Reset must answer
	// exactly like a fresh Scratch, proving buffer reuse leaks no stale state.
	rng := stats.NewRNG(7)
	inc := NewIncremental(testParams)
	s := NewScratch()
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(14)
		c := 1 + rng.Intn(6)
		row := randomRow(rng, n, c)
		inc.Reset(row)
		wantMean, wantMax := s.MeanMax(row, testParams)
		gotMean, gotMax := inc.MeanMax()
		if gotMean != wantMean || gotMax != wantMax {
			t.Fatalf("trial %d (row %v): MeanMax = (%v, %v), want (%v, %v)",
				trial, row, gotMean, gotMax, wantMean, wantMax)
		}
		if got := inc.Mean(); got != wantMean {
			t.Fatalf("trial %d: Mean = %v, want %v", trial, got, wantMean)
		}
	}
}

// applyEdit mirrors one incremental move on a plain span multiset.
func applyEdit(spans []topo.Span, removed, added []topo.Span) []topo.Span {
	out := append([]topo.Span(nil), spans...)
	for _, r := range removed {
		for k, s := range out {
			if s == r {
				out = append(out[:k], out[k+1:]...)
				break
			}
		}
	}
	return append(out, added...)
}

func TestIncrementalFlipRevertCommitMatchesScratch(t *testing.T) {
	// Random walks of single-span flips with random accept/reject decisions:
	// at every step the incremental answers must be bit-identical to a full
	// evaluation of the shadow row, for all three reductions.
	rng := stats.NewRNG(11)
	inc := NewIncremental(testParams)
	s := NewScratch()
	for _, n := range []int{4, 8, 16} {
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = float64((i*13+j*7)%5) + 0.25
			}
		}
		shadow := topo.MeshRow(n)
		inc.Reset(shadow)
		for step := 0; step < 400; step++ {
			sp := topo.Span{From: rng.Intn(n - 2), To: 0}
			sp.To = sp.From + 2 + rng.Intn(n-sp.From-2)
			inc.Flip(sp)
			// Flip toggles presence: a span already in the shadow row is
			// removed, an absent one is added.
			var cand []topo.Span
			if present(shadow.Express, sp) {
				cand = applyEdit(shadow.Express, []topo.Span{sp}, nil)
			} else {
				cand = applyEdit(shadow.Express, nil, []topo.Span{sp})
			}
			candRow := topo.Row{N: n, Express: cand}
			wantMean, wantMax := s.MeanMax(candRow, testParams)
			gotMean, gotMax := inc.MeanMax()
			if gotMean != wantMean || gotMax != wantMax {
				t.Fatalf("n=%d step %d: flip %v: MeanMax = (%v, %v), want (%v, %v)",
					n, step, sp, gotMean, gotMax, wantMean, wantMax)
			}
			if got, want := inc.WeightedMean(w), s.WeightedMean(candRow, testParams, w); got != want {
				t.Fatalf("n=%d step %d: WeightedMean = %v, want %v", n, step, got, want)
			}
			if rng.Bool(0.5) {
				inc.Commit()
				shadow = candRow
			} else {
				inc.Revert()
				wantMean, wantMax = s.MeanMax(shadow, testParams)
				gotMean, gotMax = inc.MeanMax()
				if gotMean != wantMean || gotMax != wantMax {
					t.Fatalf("n=%d step %d: after revert: MeanMax = (%v, %v), want (%v, %v)",
						n, step, gotMean, gotMax, wantMean, wantMax)
				}
			}
		}
	}
}

func present(spans []topo.Span, sp topo.Span) bool {
	for _, s := range spans {
		if s == sp {
			return true
		}
	}
	return false
}

func TestIncrementalUpdateDuplicateSpans(t *testing.T) {
	// Row semantics are a multiset: adding an already-present span must leave
	// all distances unchanged, and removing one instance must restore them.
	inc := NewIncremental(testParams)
	sp := topo.Span{From: 1, To: 5}
	row := topo.Row{N: 8, Express: []topo.Span{sp}}
	inc.Reset(row)
	base, baseMax := inc.MeanMax()
	inc.Update(nil, []topo.Span{sp}) // duplicate add
	if m, mx := inc.MeanMax(); m != base || mx != baseMax {
		t.Fatalf("duplicate add changed MeanMax: (%v, %v) vs (%v, %v)", m, mx, base, baseMax)
	}
	inc.Update([]topo.Span{sp}, nil) // remove one instance; the other remains
	if m, mx := inc.MeanMax(); m != base || mx != baseMax {
		t.Fatalf("removing one duplicate changed MeanMax: (%v, %v) vs (%v, %v)", m, mx, base, baseMax)
	}
	inc.Revert()
	inc.Revert()
	if m, mx := inc.MeanMax(); m != base || mx != baseMax {
		t.Fatalf("revert pair changed MeanMax: (%v, %v) vs (%v, %v)", m, mx, base, baseMax)
	}
}

func TestIncrementalNestedMovesLIFO(t *testing.T) {
	// The D&C and BnB searches stack moves; closing them out of order must
	// restore the exact pre-move answers at every level.
	rng := stats.NewRNG(23)
	inc := NewIncremental(testParams)
	s := NewScratch()
	row := randomRow(rng, 12, 3)
	inc.Reset(row)
	a, b := topo.Span{From: 0, To: 6}, topo.Span{From: 3, To: 11}
	inc.Update(nil, []topo.Span{a})
	inc.Update(nil, []topo.Span{b})
	bothRow := topo.Row{N: 12, Express: append(append([]topo.Span{}, row.Express...), a, b)}
	if got, want := inc.Mean(), s.MeanDist(bothRow, testParams); got != want {
		t.Fatalf("nested adds: Mean = %v, want %v", got, want)
	}
	inc.Revert() // undo b
	oneRow := topo.Row{N: 12, Express: append(append([]topo.Span{}, row.Express...), a)}
	if got, want := inc.Mean(), s.MeanDist(oneRow, testParams); got != want {
		t.Fatalf("after inner revert: Mean = %v, want %v", got, want)
	}
	inc.Commit() // keep a
	if got, want := inc.Mean(), s.MeanDist(oneRow, testParams); got != want {
		t.Fatalf("after commit: Mean = %v, want %v", got, want)
	}
}

func TestIncrementalWeightedFallbacks(t *testing.T) {
	inc := NewIncremental(testParams)
	row := topo.Row{N: 6, Express: []topo.Span{{From: 0, To: 4}}}
	inc.Reset(row)
	mean := inc.Mean()
	if got := inc.WeightedMean(nil); got != mean {
		t.Fatalf("nil weights: %v, want uniform mean %v", got, mean)
	}
	zero := make([][]float64, 6)
	for i := range zero {
		zero[i] = make([]float64, 6)
	}
	if got := inc.WeightedMean(zero); got != mean {
		t.Fatalf("all-zero weights: %v, want uniform mean %v", got, mean)
	}
}

func TestIncrementalPanics(t *testing.T) {
	for name, fn := range map[string]func(inc *Incremental){
		"revert without move": func(inc *Incremental) { inc.Revert() },
		"commit without move": func(inc *Incremental) { inc.Commit() },
		"remove absent span":  func(inc *Incremental) { inc.Update([]topo.Span{{From: 0, To: 5}}, nil) },
		"invalid span":        func(inc *Incremental) { inc.Flip(topo.Span{From: 3, To: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			inc := NewIncremental(testParams)
			inc.Reset(topo.MeshRow(8))
			fn(inc)
		}()
	}
}
