// Package route computes the deterministic, deadlock-free routing the paper
// deploys on express-link rows (Section 4.5.1): per-direction shortest paths
// within a row (or column), next-hop lookup tables for each router (Fig. 3b),
// and channel-dependency-graph checks proving deadlock freedom.
//
// Packets traverse a row monotonically (no U-turns), so the rightward and
// leftward link sets form two DAGs. The paper computes shortest paths with
// Floyd-Warshall run twice, once per direction, masking the opposing edges
// with infinite weight; this package provides that algorithm verbatim plus an
// equivalent O(n·(n+m)) DAG dynamic program used as the fast path. Tests
// assert the two agree.
package route

// Params carries the per-edge cost model of Eq. (1): traversing a hop costs
// PerHop cycles of router pipeline (Tr plus average contention Tc), and each
// unit of link length costs PerUnit cycles (Tl; express links are repeatered,
// so a span of length d costs d·Tl).
type Params struct {
	PerHop  float64
	PerUnit float64
}

// EdgeCost returns the head-latency cost of one hop across a link of the
// given unit length.
func (p Params) EdgeCost(length int) float64 {
	return p.PerHop + float64(length)*p.PerUnit
}
