package route

import (
	"strings"
	"testing"

	"explink/internal/topo"
)

func TestTablesMesh(t *testing.T) {
	row := topo.MeshRow(4)
	tables := Tables(Compute(row, testParams))
	if len(tables) != 4 {
		t.Fatalf("tables = %d", len(tables))
	}
	// On a mesh the next hop is always the adjacent router toward the
	// destination.
	for _, tab := range tables {
		for d, nh := range tab.NextHop {
			switch {
			case d == tab.Router:
				if nh != tab.Router {
					t.Fatalf("self entry of router %d = %d", tab.Router, nh)
				}
			case d > tab.Router:
				if nh != tab.Router+1 {
					t.Fatalf("router %d -> %d via %d", tab.Router, d, nh)
				}
			default:
				if nh != tab.Router-1 {
					t.Fatalf("router %d -> %d via %d", tab.Router, d, nh)
				}
			}
		}
	}
}

func TestTableEntriesBound(t *testing.T) {
	// Section 4.5.2: at most 2(n-1) entries per router across both
	// dimensions, i.e. n-1 per line.
	row := topo.FlatButterflyRow(8)
	for _, tab := range Tables(Compute(row, testParams)) {
		if got := tab.Entries(); got != 7 {
			t.Fatalf("router %d has %d entries, want 7", tab.Router, got)
		}
	}
}

func TestTablesUseExpressLinks(t *testing.T) {
	// Fig. 3(b)'s example: on the optimal P̃(8,4) row, router 0 reaches
	// distant destinations via its express neighbors rather than hop by hop.
	row := topo.NewRow(8,
		topo.Span{From: 0, To: 2}, topo.Span{From: 0, To: 3}, topo.Span{From: 1, To: 3},
		topo.Span{From: 2, To: 5}, topo.Span{From: 3, To: 6}, topo.Span{From: 3, To: 7},
		topo.Span{From: 5, To: 7})
	tables := Tables(Compute(row, testParams))
	r0 := tables[0]
	// Destination 6: the best first hop is the express link to 3 (3+3=6
	// cycles) then 3->6 (3+3): total 12, versus any local start at >= 13.
	if r0.NextHop[6] != 3 {
		t.Fatalf("router 0 -> 6 via %d, want the 0-3 express link", r0.NextHop[6])
	}
}

func TestFormatTables(t *testing.T) {
	out := FormatTables(topo.MeshRow(4), testParams)
	if !strings.Contains(out, "router 0:") || !strings.Contains(out, "max 6 entries") {
		t.Fatalf("format output: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Fatalf("unexpected line count:\n%s", out)
	}
}
