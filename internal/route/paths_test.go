package route

import (
	"math"
	"testing"
	"testing/quick"

	"explink/internal/stats"
	"explink/internal/topo"
)

var testParams = Params{PerHop: 3, PerUnit: 1}

// randomRow builds a random feasible row (duplicated from topo tests to stay
// within this package).
func randomRow(rng *stats.RNG, n, c int) topo.Row {
	r := topo.Row{N: n}
	attempts := rng.Intn(3 * n)
	for i := 0; i < attempts; i++ {
		from := rng.Intn(n - 2)
		maxLen := n - 1 - from
		if maxLen < 2 {
			continue
		}
		to := from + 2 + rng.Intn(maxLen-1)
		cand := r.Add(topo.Span{From: from, To: to})
		if cand.Validate(c) == nil {
			r = cand
		}
	}
	return r
}

func TestMeshRowDistances(t *testing.T) {
	rp := Compute(topo.MeshRow(8), testParams)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			d := math.Abs(float64(i - j))
			want := d * (testParams.PerHop + testParams.PerUnit)
			if rp.Dist[i][j] != want {
				t.Fatalf("mesh dist(%d,%d) = %g, want %g", i, j, rp.Dist[i][j], want)
			}
			if i != j {
				wantHops := int(d)
				if rp.Hops[i][j] != wantHops || rp.Units[i][j] != wantHops {
					t.Fatalf("mesh hops/units(%d,%d) = %d/%d", i, j, rp.Hops[i][j], rp.Units[i][j])
				}
			}
		}
	}
}

func TestFlatButterflyRowDistances(t *testing.T) {
	// On the fully connected row every pair is one hop of Manhattan length
	// |i-j|: latency PerHop + |i-j|·PerUnit.
	rp := Compute(topo.FlatButterflyRow(8), testParams)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			d := math.Abs(float64(i - j))
			want := testParams.PerHop + d*testParams.PerUnit
			if rp.Dist[i][j] != want {
				t.Fatalf("FB dist(%d,%d) = %g, want %g", i, j, rp.Dist[i][j], want)
			}
			if rp.Hops[i][j] != 1 {
				t.Fatalf("FB hops(%d,%d) = %d", i, j, rp.Hops[i][j])
			}
		}
	}
}

func TestExpressLinkUsedWhenBeneficial(t *testing.T) {
	// Row 0-7 with an express 0-7: latency 0->7 should be one hop, 3+7=10,
	// versus 7 hops * 4 = 28 on locals.
	row := topo.NewRow(8, topo.Span{From: 0, To: 7})
	rp := Compute(row, testParams)
	if rp.Dist[0][7] != 10 {
		t.Fatalf("dist(0,7) = %g, want 10", rp.Dist[0][7])
	}
	if rp.Next[0][7] != 7 {
		t.Fatalf("next(0,7) = %d, want 7", rp.Next[0][7])
	}
	// 0 -> 6 must NOT take the express to 7 and come back (no U-turns).
	if rp.Dist[0][6] != 6*4 {
		t.Fatalf("dist(0,6) = %g, want 24 (monotonic rule)", rp.Dist[0][6])
	}
}

func TestPathsAreMonotonic(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(13)
		row := randomRow(rng, n, 4)
		rp := Compute(row, testParams)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				p, err := rp.Path(i, j)
				if err != nil {
					t.Fatalf("path(%d,%d): %v", i, j, err)
				}
				for k := 0; k+1 < len(p); k++ {
					if (j > i && p[k+1] <= p[k]) || (j < i && p[k+1] >= p[k]) {
						t.Fatalf("non-monotonic path %v (row %v)", p, row)
					}
				}
			}
		}
	}
}

func TestNextHopConsistency(t *testing.T) {
	// Bellman consistency: Dist[i][j] == EdgeCost(i, Next) + Dist[Next][j].
	rng := stats.NewRNG(31)
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(13)
		row := randomRow(rng, n, 5)
		rp := Compute(row, testParams)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				nh := rp.Next[i][j]
				length := nh - i
				if length < 0 {
					length = -length
				}
				want := testParams.EdgeCost(length) + rp.Dist[nh][j]
				if math.Abs(rp.Dist[i][j]-want) > 1e-9 {
					t.Fatalf("inconsistent next hop at (%d,%d): %g vs %g", i, j, rp.Dist[i][j], want)
				}
			}
		}
	}
}

func TestDPAgreesWithFloydWarshall(t *testing.T) {
	// Property: the O(n²) DAG DP and the paper's double Floyd-Warshall give
	// identical distances, hop counts may differ only on cost ties.
	if err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(14)
		c := 1 + rng.Intn(6)
		row := randomRow(rng, n, c)
		dp := Compute(row, testParams)
		fw := ComputeFloydWarshall(row, testParams)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(dp.Dist[i][j]-fw.Dist[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDPAgreesWithFWOtherParams(t *testing.T) {
	p := Params{PerHop: 1.5, PerUnit: 0.5}
	rng := stats.NewRNG(77)
	for trial := 0; trial < 50; trial++ {
		row := randomRow(rng, 10, 4)
		dp := Compute(row, p)
		fw := ComputeFloydWarshall(row, p)
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				if math.Abs(dp.Dist[i][j]-fw.Dist[i][j]) > 1e-9 {
					t.Fatalf("mismatch at (%d,%d): %g vs %g (row %v)", i, j, dp.Dist[i][j], fw.Dist[i][j], row)
				}
			}
		}
	}
}

func TestMeanAndMaxDist(t *testing.T) {
	rp := Compute(topo.MeshRow(8), testParams)
	// Mean over 64 ordered pairs: sum |i-j| = 168, times 4, over 64 = 10.5.
	if math.Abs(rp.MeanDist()-10.5) > 1e-9 {
		t.Fatalf("mesh row mean = %g, want 10.5", rp.MeanDist())
	}
	if rp.MaxDist() != 28 {
		t.Fatalf("mesh row max = %g, want 28", rp.MaxDist())
	}
}

func TestExpressNeverHurts(t *testing.T) {
	// Adding an express link can only reduce (or keep) every pair distance.
	rng := stats.NewRNG(55)
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(12)
		base := randomRow(rng, n, 3)
		from := rng.Intn(n - 2)
		to := from + 2 + rng.Intn(n-from-2)
		aug := base.Add(topo.Span{From: from, To: to})
		b := Compute(base, testParams)
		a := Compute(aug, testParams)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a.Dist[i][j] > b.Dist[i][j]+1e-9 {
					t.Fatalf("adding %d-%d increased dist(%d,%d)", from, to, i, j)
				}
			}
		}
	}
}

func TestPathErrors(t *testing.T) {
	rp := Compute(topo.MeshRow(4), testParams)
	if _, err := rp.Path(-1, 2); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := rp.Path(0, 4); err == nil {
		t.Fatal("expected range error")
	}
	p, err := rp.Path(2, 2)
	if err != nil || len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path = %v, %v", p, err)
	}
}

func TestSingleRouterRow(t *testing.T) {
	rp := Compute(topo.MeshRow(1), testParams)
	if rp.Dist[0][0] != 0 || rp.MeanDist() != 0 {
		t.Fatal("singleton row must have zero latency")
	}
}
