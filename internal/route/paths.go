package route

import (
	"fmt"
	"math"

	"explink/internal/topo"
)

// RowPaths holds directional shortest paths for one row placement.
// Dist[i][j] is the head latency from router i to j obeying the
// no-U-turn rule (rightward links only for j > i, leftward only for j < i).
// Next[i][j] is the first hop on that path (Next[i][i] == i). Hops and Units
// record the hop count and total Manhattan length of the chosen path.
type RowPaths struct {
	N     int
	Dist  [][]float64
	Next  [][]int
	Hops  [][]int
	Units [][]int
}

// Compute returns directional shortest paths for the row using a DAG dynamic
// program. Both directions of every link are present, but a path from i to j
// only ever uses links pointing toward j, exactly as the routing rule of
// Section 4.5.1 requires.
func Compute(row topo.Row, p Params) *RowPaths {
	n := row.N
	rp := newRowPaths(n)

	// Incoming rightward edges of v: the local link from v-1 plus every span
	// ending at v. Incoming leftward edges of v: the local link from v+1 plus
	// every span starting at v (traversed To -> From).
	inRight := make([][]int, n)
	inLeft := make([][]int, n)
	for v := 1; v < n; v++ {
		inRight[v] = append(inRight[v], v-1)
	}
	for v := 0; v < n-1; v++ {
		inLeft[v] = append(inLeft[v], v+1)
	}
	for _, s := range row.Canonical().Express {
		inRight[s.To] = append(inRight[s.To], s.From)
		inLeft[s.From] = append(inLeft[s.From], s.To)
	}

	for i := 0; i < n; i++ {
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -1
		}
		rp.Dist[i][i] = 0
		rp.Next[i][i] = i
		// Rightward sweep from source i.
		for v := i + 1; v < n; v++ {
			best := math.Inf(1)
			bestU := -1
			for _, u := range inRight[v] {
				if u < i || math.IsInf(rp.Dist[i][u], 1) {
					continue
				}
				if d := rp.Dist[i][u] + p.EdgeCost(v-u); d < best {
					best, bestU = d, u
				}
			}
			rp.Dist[i][v] = best
			parent[v] = bestU
			if bestU >= 0 {
				rp.Hops[i][v] = rp.Hops[i][bestU] + 1
				rp.Units[i][v] = rp.Units[i][bestU] + (v - bestU)
			}
		}
		// Leftward sweep from source i.
		for v := i - 1; v >= 0; v-- {
			best := math.Inf(1)
			bestU := -1
			for _, u := range inLeft[v] {
				if u > i || math.IsInf(rp.Dist[i][u], 1) {
					continue
				}
				if d := rp.Dist[i][u] + p.EdgeCost(u-v); d < best {
					best, bestU = d, u
				}
			}
			rp.Dist[i][v] = best
			parent[v] = bestU
			if bestU >= 0 {
				rp.Hops[i][v] = rp.Hops[i][bestU] + 1
				rp.Units[i][v] = rp.Units[i][bestU] + (bestU - v)
			}
		}
		// Extract first hops by walking parents back to the source.
		for j := 0; j < n; j++ {
			if j == i || parent[j] < 0 {
				continue
			}
			v := j
			for parent[v] != i {
				v = parent[v]
			}
			rp.Next[i][j] = v
		}
	}
	return rp
}

// ComputeFloydWarshall returns the same directional shortest paths using the
// paper's construction: Floyd-Warshall run twice on the full link graph, once
// with all leftward edges at infinite weight and once with all rightward
// edges at infinite weight. It exists for fidelity and cross-checking; use
// Compute in hot paths.
func ComputeFloydWarshall(row topo.Row, p Params) *RowPaths {
	n := row.N
	right := fwDirection(row, p, true)
	left := fwDirection(row, p, false)
	rp := newRowPaths(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src := right
			if j < i {
				src = left
			}
			rp.Dist[i][j] = src.dist[i][j]
			rp.Next[i][j] = src.next[i][j]
			rp.Hops[i][j] = src.hops[i][j]
			rp.Units[i][j] = src.units[i][j]
		}
		rp.Dist[i][i] = 0
		rp.Next[i][i] = i
		rp.Hops[i][i] = 0
		rp.Units[i][i] = 0
	}
	return rp
}

type fwResult struct {
	dist  [][]float64
	next  [][]int
	hops  [][]int
	units [][]int
}

func fwDirection(row topo.Row, p Params, rightward bool) fwResult {
	n := row.N
	inf := math.Inf(1)
	r := fwResult{
		dist:  make([][]float64, n),
		next:  make([][]int, n),
		hops:  make([][]int, n),
		units: make([][]int, n),
	}
	for i := 0; i < n; i++ {
		r.dist[i] = make([]float64, n)
		r.next[i] = make([]int, n)
		r.hops[i] = make([]int, n)
		r.units[i] = make([]int, n)
		for j := 0; j < n; j++ {
			r.dist[i][j] = inf
			r.next[i][j] = -1
		}
		r.dist[i][i] = 0
		r.next[i][i] = i
	}
	addEdge := func(u, v int) {
		length := v - u
		if length < 0 {
			length = -length
		}
		if w := p.EdgeCost(length); w < r.dist[u][v] {
			r.dist[u][v] = w
			r.next[u][v] = v
			r.hops[u][v] = 1
			r.units[u][v] = length
		}
	}
	for u := 0; u < n-1; u++ {
		if rightward {
			addEdge(u, u+1)
		} else {
			addEdge(u+1, u)
		}
	}
	for _, s := range row.Express {
		if rightward {
			addEdge(s.From, s.To)
		} else {
			addEdge(s.To, s.From)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if math.IsInf(r.dist[i][k], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if d := r.dist[i][k] + r.dist[k][j]; d < r.dist[i][j] {
					r.dist[i][j] = d
					r.next[i][j] = r.next[i][k]
					r.hops[i][j] = r.hops[i][k] + r.hops[k][j]
					r.units[i][j] = r.units[i][k] + r.units[k][j]
				}
			}
		}
	}
	return r
}

func newRowPaths(n int) *RowPaths {
	rp := &RowPaths{
		N:     n,
		Dist:  make([][]float64, n),
		Next:  make([][]int, n),
		Hops:  make([][]int, n),
		Units: make([][]int, n),
	}
	for i := 0; i < n; i++ {
		rp.Dist[i] = make([]float64, n)
		rp.Next[i] = make([]int, n)
		rp.Hops[i] = make([]int, n)
		rp.Units[i] = make([]int, n)
		for j := 0; j < n; j++ {
			rp.Dist[i][j] = math.Inf(1)
			rp.Next[i][j] = -1
		}
	}
	return rp
}

// Path returns the router sequence from i to j (inclusive of both ends).
func (rp *RowPaths) Path(i, j int) ([]int, error) {
	if i < 0 || j < 0 || i >= rp.N || j >= rp.N {
		return nil, fmt.Errorf("route: path endpoints %d,%d out of range", i, j)
	}
	path := []int{i}
	for v := i; v != j; {
		nxt := rp.Next[v][j]
		if nxt < 0 || nxt == v {
			return nil, fmt.Errorf("route: no path from %d to %d (stuck at %d)", i, j, v)
		}
		path = append(path, nxt)
		v = nxt
	}
	return path, nil
}

// MeanDist returns the average of Dist over all N² ordered pairs, including
// the zero i==j diagonal, matching the N·N denominator of Eq. (2).
func (rp *RowPaths) MeanDist() float64 {
	var sum float64
	for i := 0; i < rp.N; i++ {
		for j := 0; j < rp.N; j++ {
			if i != j {
				sum += rp.Dist[i][j]
			}
		}
	}
	return sum / float64(rp.N*rp.N)
}

// MaxDist returns the largest pairwise head latency on the row.
func (rp *RowPaths) MaxDist() float64 {
	m := 0.0
	for i := 0; i < rp.N; i++ {
		for j := 0; j < rp.N; j++ {
			if rp.Dist[i][j] > m {
				m = rp.Dist[i][j]
			}
		}
	}
	return m
}
