package route

import (
	"fmt"

	"explink/internal/topo"
)

// Incremental is a stateful row evaluator for single-span move searches: the
// simulated-annealing connection-matrix walk, the divide-and-conquer
// cross-link scan and the branch-and-bound tree all step between placements
// that differ by a handful of spans. Instead of re-routing all n sources per
// candidate the way Scratch.MeanMax does, an Incremental keeps the full
// directional distance matrix of the current row and, on each move,
// recomputes only the sources whose shortest paths can cross a changed span
// — resuming each directional sweep at the changed region and stopping early
// once the recomputed distances reconverge with the stored ones.
//
// Every value it returns is bit-identical to the corresponding Scratch
// evaluation of the same row (Scratch.MeanMax, Scratch.MeanDist,
// Scratch.WeightedMean): directional shortest distances are unique values
// independent of edge-relaxation order, and the final reductions accumulate
// the stored matrix in exactly Scratch's fixed (source-major, destination
// index) pair order. Searches driven by an Incremental therefore follow
// bit-for-bit the same trajectory as ones paying a full evaluation per move.
//
// Dirty-region invariant (see DESIGN.md §10): a span (a,b) is traversed
// rightward only by sources i <= a and can only alter their distances at
// destinations v >= b; leftward only by sources i >= b at destinations
// v <= a. Pending changed spans are therefore summarized per direction by
// three integers — the affected-source bound, the sweep resume position and
// the reconvergence barrier — and a sync recomputes just those row segments.
//
// An Incremental is not safe for concurrent use; give each goroutine its own.
type Incremental struct {
	n int
	p Params
	// Incoming express edges per router, by direction. The local link from
	// the neighbouring router is implicit: it always exists, so unlike
	// Scratch the sweeps neither store it nor test for unreachable routers —
	// every distance in a contiguous row is finite.
	exRight [][]int
	exLeft  [][]int
	cost    []float64 // cost[d] = p.EdgeCost(d), precomputed per unit length
	dist    []float64 // n x n row-major: dist[i*n+j] = directional shortest i->j

	// Pending dirty region accumulated since the last sync. While dirty,
	// dist rows are stale only inside the region the aggregates describe.
	dirty   bool
	rSrcMax int // rightward: sources 0..rSrcMax may be affected (max From)
	rFrom   int // rightward sweep resume position (min To)
	rTo     int // rightward reconvergence barrier (max To)
	lSrcMin int // leftward: sources lSrcMin..n-1 may be affected (min To)
	lFrom   int // leftward sweep resume position (max From)
	lTo     int // leftward reconvergence barrier (min From)

	// Undo log: a flat edit buffer plus per-open-move edit counts. Moves are
	// closed strictly LIFO by Revert (undo) or Commit (keep).
	edits   []incEdit
	moveLen []int
}

// incEdit records one adjacency mutation of an open move.
type incEdit struct {
	s     topo.Span
	added bool // true if the edit added the span, false if it removed one
}

// NewIncremental returns an evaluator for the given edge-cost model. Call
// Reset before the first query; buffers grow to the largest row seen.
func NewIncremental(p Params) *Incremental { return &Incremental{p: p} }

// N returns the router count of the current row (0 before the first Reset).
func (inc *Incremental) N() int { return inc.n }

// Reset adopts the row as the new current state: it rebuilds the adjacency,
// recomputes the full distance matrix and discards any open moves.
func (inc *Incremental) Reset(row topo.Row) {
	n := row.N
	inc.n = n
	if len(inc.exRight) < n {
		inc.exRight = append(inc.exRight, make([][]int, n-len(inc.exRight))...)
		inc.exLeft = append(inc.exLeft, make([][]int, n-len(inc.exLeft))...)
	}
	for v := 0; v < n; v++ {
		inc.exRight[v] = inc.exRight[v][:0]
		inc.exLeft[v] = inc.exLeft[v][:0]
	}
	for _, s := range row.Express {
		inc.exRight[s.To] = append(inc.exRight[s.To], s.From)
		inc.exLeft[s.From] = append(inc.exLeft[s.From], s.To)
	}
	if len(inc.cost) < n {
		inc.cost = make([]float64, n)
		for d := range inc.cost {
			inc.cost[d] = inc.p.EdgeCost(d)
		}
	}
	if len(inc.dist) < n*n {
		inc.dist = make([]float64, n*n)
	}
	for i := 0; i < n; i++ {
		inc.dist[i*n+i] = 0
		inc.sweepRight(i, i+1, n)
		inc.sweepLeft(i, i-1, -1)
	}
	inc.dirty = false
	inc.edits = inc.edits[:0]
	inc.moveLen = inc.moveLen[:0]
}

// Flip opens a move that toggles the presence of each span in order: a span
// currently in the row is removed (one instance, if it appears several
// times), an absent one is added. Use Update when a move may add a span that
// is already present. The move stays open until Revert undoes it or Commit
// keeps it; open moves close strictly last-in-first-out.
func (inc *Incremental) Flip(spans ...topo.Span) {
	start := len(inc.edits)
	for _, s := range spans {
		inc.edits = append(inc.edits, incEdit{s: s, added: inc.toggle(s)})
	}
	inc.moveLen = append(inc.moveLen, len(inc.edits)-start)
}

// Update opens a move that removes each span in removed (which must be
// present, counting multiplicity) and then adds each span in added
// (duplicates allowed, matching how connection matrices decode). Like Flip
// it is closed by Revert or Commit.
func (inc *Incremental) Update(removed, added []topo.Span) {
	start := len(inc.edits)
	for _, s := range removed {
		inc.remove(s)
		inc.edits = append(inc.edits, incEdit{s: s, added: false})
	}
	for _, s := range added {
		inc.add(s)
		inc.edits = append(inc.edits, incEdit{s: s, added: true})
	}
	inc.moveLen = append(inc.moveLen, len(inc.edits)-start)
}

// Revert undoes the most recent open move.
func (inc *Incremental) Revert() {
	edits := inc.popMove("Revert")
	for k := len(edits) - 1; k >= 0; k-- {
		if edits[k].added {
			inc.remove(edits[k].s)
		} else {
			inc.add(edits[k].s)
		}
	}
	inc.edits = inc.edits[:len(inc.edits)-len(edits)]
}

// Commit accepts the most recent open move, making it part of the current
// state that later Reverts can no longer touch.
func (inc *Incremental) Commit() {
	edits := inc.popMove("Commit")
	inc.edits = inc.edits[:len(inc.edits)-len(edits)]
}

func (inc *Incremental) popMove(op string) []incEdit {
	if len(inc.moveLen) == 0 {
		panic("route: Incremental." + op + " without a matching Flip/Update")
	}
	count := inc.moveLen[len(inc.moveLen)-1]
	inc.moveLen = inc.moveLen[:len(inc.moveLen)-1]
	return inc.edits[len(inc.edits)-count:]
}

// toggle flips the presence of s and reports whether it was added.
func (inc *Incremental) toggle(s topo.Span) bool {
	inc.check(s)
	for _, u := range inc.exRight[s.To] {
		if u == s.From {
			inc.remove(s)
			return false
		}
	}
	inc.add(s)
	return true
}

func (inc *Incremental) add(s topo.Span) {
	inc.check(s)
	inc.markDirty(s)
	inc.exRight[s.To] = append(inc.exRight[s.To], s.From)
	inc.exLeft[s.From] = append(inc.exLeft[s.From], s.To)
}

func (inc *Incremental) remove(s topo.Span) {
	inc.check(s)
	inc.markDirty(s)
	if !cutEdge(inc.exRight, s.To, s.From) || !cutEdge(inc.exLeft, s.From, s.To) {
		panic(fmt.Sprintf("route: Incremental removal of absent span %v", s))
	}
}

// cutEdge removes one instance of value from lists[at]; edge order within a
// list is irrelevant to the min-based sweeps, so the last entry fills the gap.
func cutEdge(lists [][]int, at, value int) bool {
	l := lists[at]
	for k, v := range l {
		if v == value {
			l[k] = l[len(l)-1]
			lists[at] = l[:len(l)-1]
			return true
		}
	}
	return false
}

func (inc *Incremental) check(s topo.Span) {
	if !s.Valid(inc.n) {
		panic(fmt.Sprintf("route: invalid express span %v on row of %d", s, inc.n))
	}
}

// markDirty widens the pending dirty region to cover a changed span. Adding
// and removing dirty the same region: both invalidate exactly the distances
// whose shortest paths could cross the span.
func (inc *Incremental) markDirty(s topo.Span) {
	if !inc.dirty {
		inc.dirty = true
		inc.rSrcMax, inc.rFrom, inc.rTo = s.From, s.To, s.To
		inc.lSrcMin, inc.lFrom, inc.lTo = s.To, s.From, s.From
		return
	}
	inc.rSrcMax = max(inc.rSrcMax, s.From)
	inc.rFrom = min(inc.rFrom, s.To)
	inc.rTo = max(inc.rTo, s.To)
	inc.lSrcMin = min(inc.lSrcMin, s.To)
	inc.lFrom = max(inc.lFrom, s.From)
	inc.lTo = min(inc.lTo, s.From)
}

// sync brings every stale distance row segment up to date with the adjacency.
func (inc *Incremental) sync() {
	if !inc.dirty {
		return
	}
	for i := 0; i <= inc.rSrcMax; i++ {
		inc.sweepRight(i, inc.rFrom, inc.rTo)
	}
	for i := max(inc.lSrcMin, 1); i < inc.n; i++ {
		inc.sweepLeft(i, inc.lFrom, inc.lTo)
	}
	inc.dirty = false
}

// sweepRight recomputes source i's rightward distances from position `from`
// (clamped past the source) to the row end, with Scratch.distRow's exact
// relaxation: the minimum is over the same candidate set with the same
// per-edge cost values (cost[d] is precomputed by the identical expression),
// and min is order-independent, so every stored distance is bit-identical to
// a full evaluation. The local link from v-1 always exists, seeding the
// minimum without Scratch's reachability guard. Positions left of `from` are
// unaffected by pending spans, so their stored values feed the resumed
// recurrence unchanged. The sweep stops at the first position past `barrier`
// (the rightmost changed-span endpoint) that no changed position can still
// reach — from there on every position reproduces its stored value.
func (inc *Incremental) sweepRight(i, from, barrier int) {
	n := inc.n
	row := inc.dist[i*n : i*n+n]
	cost := inc.cost
	// stop is the reconvergence frontier: the sweep may halt at position v
	// once v >= stop, because then every changed position u < v reaches at
	// most position stop <= v directly (locally to u+1, by express to the
	// targets in exLeft[u], which lists u's outgoing rightward spans), so no
	// position beyond v can change. It starts at the barrier — every changed
	// span lands at or before it — and advances as changes are discovered.
	stop := barrier
	for v := max(from, i+1); v < n; v++ {
		best := row[v-1] + cost[1]
		for _, u := range inc.exRight[v] {
			if u < i {
				continue
			}
			if c := row[u] + cost[v-u]; c < best {
				best = c
			}
		}
		if best != row[v] {
			row[v] = best
			if v+1 > stop {
				stop = v + 1
			}
			for _, w := range inc.exLeft[v] {
				if w > stop {
					stop = w
				}
			}
		}
		if v >= stop {
			return
		}
	}
}

// sweepLeft is sweepRight mirrored: it recomputes source i's leftward
// distances from `from` down to 0, stopping once past `barrier` (the leftmost
// changed-span endpoint) with no divergence from the stored values.
func (inc *Incremental) sweepLeft(i, from, barrier int) {
	row := inc.dist[i*inc.n : i*inc.n+inc.n]
	cost := inc.cost
	// Mirrored reconvergence frontier: exRight[v] lists v's outgoing leftward
	// spans (each span (u, v) is traversed leftward from v down to u).
	stop := barrier
	for v := min(from, i-1); v >= 0; v-- {
		best := row[v+1] + cost[1]
		for _, u := range inc.exLeft[v] {
			if u > i {
				continue
			}
			if c := row[u] + cost[u-v]; c < best {
				best = c
			}
		}
		if best != row[v] {
			row[v] = best
			if v-1 < stop {
				stop = v - 1
			}
			for _, w := range inc.exRight[v] {
				if w < stop {
					stop = w
				}
			}
		}
		if v <= stop {
			return
		}
	}
}

// MeanMax returns the mean and maximum directional pair distance of the
// current state, bit-identical to Scratch.MeanMax on the equivalent row: the
// sum accumulates the stored matrix in the same source-major pair order.
func (inc *Incremental) MeanMax() (mean, maxDist float64) {
	inc.sync()
	n := inc.n
	var sum float64
	for i := 0; i < n; i++ {
		row := inc.dist[i*n : i*n+n]
		for j := 0; j < i; j++ {
			sum += row[j]
			if row[j] > maxDist {
				maxDist = row[j]
			}
		}
		for j := i + 1; j < n; j++ {
			sum += row[j]
			if row[j] > maxDist {
				maxDist = row[j]
			}
		}
	}
	return sum / float64(n*n), maxDist
}

// Mean returns the mean directional pair distance of the current state,
// bit-identical to Scratch.MeanDist on the equivalent row.
func (inc *Incremental) Mean() float64 {
	inc.sync()
	n := inc.n
	var sum float64
	for i := 0; i < n; i++ {
		row := inc.dist[i*n : i*n+n]
		for j := 0; j < i; j++ {
			sum += row[j]
		}
		for j := i + 1; j < n; j++ {
			sum += row[j]
		}
	}
	return sum / float64(n*n)
}

// WeightedMean returns the w-weighted mean pair distance of the current
// state with Scratch.WeightedMean's exact accumulation order and nil/all-zero
// fallback contract.
func (inc *Incremental) WeightedMean(w [][]float64) float64 {
	inc.sync()
	n := inc.n
	var sum, num, den float64
	for i := 0; i < n; i++ {
		row := inc.dist[i*n : i*n+n]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sum += row[j]
			if w != nil {
				num += w[i][j] * row[j]
				den += w[i][j]
			}
		}
	}
	if w == nil || den == 0 {
		return sum / float64(n*n)
	}
	return num / den
}
