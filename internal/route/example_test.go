package route_test

import (
	"fmt"

	"explink/internal/route"
	"explink/internal/topo"
)

// Directional shortest paths obey the no-U-turn rule: the packet from 0 to 6
// cannot use the 0-7 express link and come back.
func ExampleCompute() {
	row := topo.NewRow(8, topo.Span{From: 0, To: 7})
	paths := route.Compute(row, route.Params{PerHop: 3, PerUnit: 1})
	fmt.Println("0 -> 7:", paths.Dist[0][7], "cycles (one express hop)")
	fmt.Println("0 -> 6:", paths.Dist[0][6], "cycles (six local hops, no U-turn)")
	p, _ := paths.Path(0, 7)
	fmt.Println("path 0 -> 7:", p)
	// Output:
	// 0 -> 7: 10 cycles (one express hop)
	// 0 -> 6: 24 cycles (six local hops, no U-turn)
	// path 0 -> 7: [0 7]
}
