package route

import (
	"testing"

	"explink/internal/topo"
)

// FuzzIncrementalVsScratch drives an Incremental through the exact move
// pattern the solvers use — connection-matrix bit flips translated to span
// deltas by ConnMatrix.DeltaAt, each then committed or reverted — and pins
// every intermediate Mean/MeanMax/WeightedMean bit-identical to a full
// Scratch evaluation of the decoded row. The ops bytes encode the walk: for
// each byte, the low bits pick the flipped bit index and bit 7 picks
// commit (1) or revert (0).
func FuzzIncrementalVsScratch(f *testing.F) {
	f.Add(uint8(0), []byte{0x00, 0x81, 0x02, 0x83, 0x04})
	f.Add(uint8(4), []byte{0x80, 0x81, 0x82, 0x83, 0x84, 0x05, 0x86})
	f.Add(uint8(8), []byte{0xff, 0x7f, 0x80, 0x00, 0xaa, 0x55, 0x91, 0x13})
	f.Add(uint8(3), []byte{0x90, 0x90, 0x90, 0x21, 0xa1, 0x42, 0xc3})

	sizes := []struct{ n, c int }{
		{4, 2}, {4, 3}, {4, 4},
		{8, 2}, {8, 3}, {8, 4},
		{16, 2}, {16, 3}, {16, 4},
	}
	f.Fuzz(func(t *testing.T, size uint8, ops []byte) {
		sz := sizes[int(size)%len(sizes)]
		n, c := sz.n, sz.c
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = float64((i*29+j*11)%7) + 0.5
			}
		}
		m := topo.NewConnMatrix(n, c)
		inc := NewIncremental(testParams)
		s := NewScratch()
		inc.Reset(m.Row())
		var rem, add []topo.Span
		for step, op := range ops {
			if len(ops) > 64 && step >= 64 {
				break // bound per-input work; depth beyond this adds nothing
			}
			bit := int(op&0x7f) % m.Bits()
			rem, add = m.DeltaAt(bit, rem[:0], add[:0])
			m.FlipAt(bit)
			inc.Update(rem, add)
			row := m.Row()
			wantMean, wantMax := s.MeanMax(row, testParams)
			gotMean, gotMax := inc.MeanMax()
			if gotMean != wantMean || gotMax != wantMax {
				t.Fatalf("step %d flip %d: MeanMax = (%v, %v), want (%v, %v) for row %v",
					step, bit, gotMean, gotMax, wantMean, wantMax, row)
			}
			if got, want := inc.WeightedMean(w), s.WeightedMean(row, testParams, w); got != want {
				t.Fatalf("step %d flip %d: WeightedMean = %v, want %v", step, bit, got, want)
			}
			if op&0x80 != 0 {
				inc.Commit()
			} else {
				m.FlipAt(bit)
				inc.Revert()
				wantMean, wantMax = s.MeanMax(m.Row(), testParams)
				gotMean, gotMax = inc.MeanMax()
				if gotMean != wantMean || gotMax != wantMax {
					t.Fatalf("step %d revert %d: MeanMax = (%v, %v), want (%v, %v)",
						step, bit, gotMean, gotMax, wantMean, wantMax)
				}
			}
		}
	})
}
