package route

import (
	"fmt"
	"strings"

	"explink/internal/topo"
)

// Table is the per-router lookup table of Fig. 3(b): for each destination
// position on the router's row (or column), the next-hop position the packet
// must be forwarded to. The simulator derives its output-port numbers from
// exactly this table; the type exists so tools can display and export the
// hardware contents the paper describes (at most 2(n-1) entries per router).
type Table struct {
	Router int
	// NextHop[d] is the next router position toward destination d on the
	// same line; NextHop[Router] is the router itself.
	NextHop []int
}

// Tables extracts per-router tables from a row's directional shortest paths.
func Tables(paths *RowPaths) []Table {
	out := make([]Table, paths.N)
	for r := 0; r < paths.N; r++ {
		t := Table{Router: r, NextHop: make([]int, paths.N)}
		copy(t.NextHop, paths.Next[r])
		out[r] = t
	}
	return out
}

// Entries returns the number of non-trivial table entries (destinations
// other than the router itself), the quantity the paper bounds by 2(n-1)
// per router when sizing the hardware overhead (Section 4.5.2 counts the X
// and Y tables together).
func (t Table) Entries() int {
	n := 0
	for d, nh := range t.NextHop {
		if d != t.Router && nh >= 0 {
			n++
		}
	}
	return n
}

// String renders one router's table like Fig. 3(b): destination -> next hop.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "router %d:", t.Router)
	for d, nh := range t.NextHop {
		if d == t.Router {
			continue
		}
		fmt.Fprintf(&b, " %d->%d", d, nh)
	}
	return b.String()
}

// FormatTables renders all routing tables of a row placement, one line per
// router, for CLI display and documentation.
func FormatTables(row topo.Row, p Params) string {
	paths := Compute(row, p)
	var b strings.Builder
	fmt.Fprintf(&b, "routing tables for %v (max %d entries per router per dimension)\n",
		row, 2*(row.N-1))
	for _, t := range Tables(paths) {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}
