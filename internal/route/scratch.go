package route

import (
	"math"
	"slices"
	"sync"

	"explink/internal/topo"
)

// Scratch holds reusable buffers for row-path computation so that the
// optimizer hot loops (simulated annealing, divide and conquer, branch and
// bound) evaluate placements without allocating. A Scratch grows lazily to
// the largest row it has seen and is NOT safe for concurrent use: give each
// goroutine (each SA run, each solver line) its own instance, or use the
// pooled package functions MeanDist, MeanMax and WeightedMean.
//
// The *RowPaths returned by ComputeInto is owned by the scratch and is only
// valid until the next ComputeInto call on the same scratch; callers that
// need to keep the tables must copy them.
type Scratch struct {
	inRight [][]int // incoming rightward edges per router, reused across rows
	inLeft  [][]int // incoming leftward edges per router
	dist    []float64
	parent  []int
	spans   []topo.Span // canonical-order span copy for ComputeInto
	rp      *RowPaths
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// ensure grows the per-router buffers to hold rows of n routers.
func (s *Scratch) ensure(n int) {
	if len(s.dist) >= n {
		return
	}
	s.dist = make([]float64, n)
	s.parent = make([]int, n)
	old := len(s.inRight)
	s.inRight = append(s.inRight, make([][]int, n-old)...)
	s.inLeft = append(s.inLeft, make([][]int, n-old)...)
}

// buildAdj fills the incoming-edge lists for the row. When canonical is true
// the express spans are visited in canonical order (matching Compute
// bit-for-bit, including tie-breaks in Next); the fast paths skip the sort
// because shortest-path distances do not depend on edge order.
func (s *Scratch) buildAdj(row topo.Row, canonical bool) {
	n := row.N
	s.ensure(n)
	for v := 0; v < n; v++ {
		s.inRight[v] = s.inRight[v][:0]
		s.inLeft[v] = s.inLeft[v][:0]
	}
	for v := 1; v < n; v++ {
		s.inRight[v] = append(s.inRight[v], v-1)
	}
	for v := 0; v < n-1; v++ {
		s.inLeft[v] = append(s.inLeft[v], v+1)
	}
	spans := row.Express
	if canonical {
		s.spans = append(s.spans[:0], row.Express...)
		slices.SortFunc(s.spans, topo.CompareSpans)
		spans = s.spans
	}
	for _, sp := range spans {
		s.inRight[sp.To] = append(s.inRight[sp.To], sp.From)
		s.inLeft[sp.From] = append(s.inLeft[sp.From], sp.To)
	}
}

// distRow computes the directional shortest distances from source i into
// s.dist[0:n]. Entries on the wrong side of previous sources are never read
// (the sweeps only consult routers between the source and the destination),
// so the buffer needs no clearing between sources.
func (s *Scratch) distRow(i, n int, p Params) {
	d := s.dist
	d[i] = 0
	for v := i + 1; v < n; v++ {
		best := math.Inf(1)
		for _, u := range s.inRight[v] {
			if u < i || math.IsInf(d[u], 1) {
				continue
			}
			if c := d[u] + p.EdgeCost(v-u); c < best {
				best = c
			}
		}
		d[v] = best
	}
	for v := i - 1; v >= 0; v-- {
		best := math.Inf(1)
		for _, u := range s.inLeft[v] {
			if u > i || math.IsInf(d[u], 1) {
				continue
			}
			if c := d[u] + p.EdgeCost(u-v); c < best {
				best = c
			}
		}
		d[v] = best
	}
}

// MeanMax returns MeanDist and MaxDist of the row's directional shortest
// paths without materializing any n x n table: only a single distance row is
// kept, so the evaluation is allocation-free after warm-up. The mean
// accumulates in the same pair order as RowPaths.MeanDist, so the result is
// bit-identical to Compute(row, p).MeanDist().
func (s *Scratch) MeanMax(row topo.Row, p Params) (mean, max float64) {
	n := row.N
	s.buildAdj(row, false)
	var sum float64
	for i := 0; i < n; i++ {
		s.distRow(i, n, p)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := s.dist[j]
			sum += d
			if d > max {
				max = d
			}
		}
	}
	return sum / float64(n*n), max
}

// MeanDist is the mean-only entry point of the fast path.
func (s *Scratch) MeanDist(row topo.Row, p Params) float64 {
	mean, _ := s.MeanMax(row, p)
	return mean
}

// WeightedMean returns the w-weighted average of the row's pair distances,
// Σ w[i][j]·Dist[i][j] / Σ w[i][j], falling back to the uniform mean when w
// is nil or all-zero — the same contract as computing the full tables and
// folding them, but without the n x n allocations.
func (s *Scratch) WeightedMean(row topo.Row, p Params, w [][]float64) float64 {
	n := row.N
	s.buildAdj(row, false)
	var sum, num, den float64
	for i := 0; i < n; i++ {
		s.distRow(i, n, p)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sum += s.dist[j]
			if w != nil {
				num += w[i][j] * s.dist[j]
				den += w[i][j]
			}
		}
	}
	if w == nil || den == 0 {
		return sum / float64(n*n)
	}
	return num / den
}

// ComputeInto computes the full directional shortest-path tables (Dist, Next,
// Hops, Units) into the scratch's reusable RowPaths, producing exactly the
// same tables as Compute. The returned pointer aliases scratch-owned memory;
// see the type comment for the reuse contract.
func (s *Scratch) ComputeInto(row topo.Row, p Params) *RowPaths {
	n := row.N
	s.buildAdj(row, true)
	if s.rp == nil || s.rp.N != n {
		s.rp = newRowPaths(n)
	}
	rp := s.rp
	for i := 0; i < n; i++ {
		parent := s.parent[:n]
		for v := range parent {
			parent[v] = -1
		}
		rp.Dist[i][i] = 0
		rp.Next[i][i] = i
		rp.Hops[i][i] = 0
		rp.Units[i][i] = 0
		for v := i + 1; v < n; v++ {
			best := math.Inf(1)
			bestU := -1
			for _, u := range s.inRight[v] {
				if u < i || math.IsInf(rp.Dist[i][u], 1) {
					continue
				}
				if d := rp.Dist[i][u] + p.EdgeCost(v-u); d < best {
					best, bestU = d, u
				}
			}
			rp.Dist[i][v] = best
			parent[v] = bestU
			if bestU >= 0 {
				rp.Hops[i][v] = rp.Hops[i][bestU] + 1
				rp.Units[i][v] = rp.Units[i][bestU] + (v - bestU)
			}
		}
		for v := i - 1; v >= 0; v-- {
			best := math.Inf(1)
			bestU := -1
			for _, u := range s.inLeft[v] {
				if u > i || math.IsInf(rp.Dist[i][u], 1) {
					continue
				}
				if d := rp.Dist[i][u] + p.EdgeCost(u-v); d < best {
					best, bestU = d, u
				}
			}
			rp.Dist[i][v] = best
			parent[v] = bestU
			if bestU >= 0 {
				rp.Hops[i][v] = rp.Hops[i][bestU] + 1
				rp.Units[i][v] = rp.Units[i][bestU] + (bestU - v)
			}
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if parent[j] < 0 {
				rp.Next[i][j] = -1
				rp.Hops[i][j] = 0
				rp.Units[i][j] = 0
				continue
			}
			v := j
			for parent[v] != i {
				v = parent[v]
			}
			rp.Next[i][j] = v
		}
	}
	return rp
}

// scratchPool backs the package-level convenience evaluators so that callers
// without a natural place to hold a Scratch (e.g. model.RowMean) still run
// allocation-free.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// MeanDist returns Compute(row, p).MeanDist() using a pooled scratch.
func MeanDist(row topo.Row, p Params) float64 {
	s := scratchPool.Get().(*Scratch)
	mean := s.MeanDist(row, p)
	scratchPool.Put(s)
	return mean
}

// MeanMax returns Compute(row, p).MeanDist() and MaxDist() using a pooled
// scratch.
func MeanMax(row topo.Row, p Params) (mean, max float64) {
	s := scratchPool.Get().(*Scratch)
	mean, max = s.MeanMax(row, p)
	scratchPool.Put(s)
	return mean, max
}

// WeightedMean returns the weighted pair-distance average using a pooled
// scratch; see Scratch.WeightedMean for the fallback contract.
func WeightedMean(row topo.Row, p Params, w [][]float64) float64 {
	s := scratchPool.Get().(*Scratch)
	m := s.WeightedMean(row, p, w)
	scratchPool.Put(s)
	return m
}
