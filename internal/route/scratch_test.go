package route

import (
	"math"
	"testing"

	"explink/internal/stats"
	"explink/internal/topo"
)

func TestComputeIntoMatchesCompute(t *testing.T) {
	// One scratch across rows of varying sizes: every table must come back
	// identical to a fresh Compute, proving buffer reuse leaks no stale state.
	rng := stats.NewRNG(101)
	s := NewScratch()
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(14)
		c := 1 + rng.Intn(6)
		row := randomRow(rng, n, c)
		want := Compute(row, testParams)
		got := s.ComputeInto(row, testParams)
		if got.N != want.N {
			t.Fatalf("N = %d, want %d", got.N, want.N)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.Dist[i][j] != want.Dist[i][j] ||
					got.Next[i][j] != want.Next[i][j] ||
					got.Hops[i][j] != want.Hops[i][j] ||
					got.Units[i][j] != want.Units[i][j] {
					t.Fatalf("trial %d: mismatch at (%d,%d): dist %g/%g next %d/%d hops %d/%d units %d/%d (row %v)",
						trial, i, j, got.Dist[i][j], want.Dist[i][j], got.Next[i][j], want.Next[i][j],
						got.Hops[i][j], want.Hops[i][j], got.Units[i][j], want.Units[i][j], row)
				}
			}
		}
	}
}

func TestFastPathAgreesWithFloydWarshall(t *testing.T) {
	// The mean-only fast path must agree with the paper's double
	// Floyd-Warshall construction on randomized rows.
	rng := stats.NewRNG(202)
	s := NewScratch()
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(14)
		c := 1 + rng.Intn(6)
		row := randomRow(rng, n, c)
		fw := ComputeFloydWarshall(row, testParams)
		mean, max := s.MeanMax(row, testParams)
		if math.Abs(mean-fw.MeanDist()) > 1e-9 {
			t.Fatalf("trial %d: mean %g vs FW %g (row %v)", trial, mean, fw.MeanDist(), row)
		}
		if math.Abs(max-fw.MaxDist()) > 1e-9 {
			t.Fatalf("trial %d: max %g vs FW %g (row %v)", trial, max, fw.MaxDist(), row)
		}
		full := s.ComputeInto(row, testParams)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(full.Dist[i][j]-fw.Dist[i][j]) > 1e-9 {
					t.Fatalf("trial %d: ComputeInto dist(%d,%d) = %g, FW %g", trial, i, j, full.Dist[i][j], fw.Dist[i][j])
				}
			}
		}
	}
}

func TestFastPathBitIdenticalToTables(t *testing.T) {
	// Stronger than the FW tolerance check: the fast path accumulates in the
	// same pair order as RowPaths.MeanDist, so the floats must be exactly
	// equal — the SA determinism guarantees rely on this.
	rng := stats.NewRNG(303)
	s := NewScratch()
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(14)
		row := randomRow(rng, n, 4)
		rp := Compute(row, testParams)
		mean, max := s.MeanMax(row, testParams)
		if mean != rp.MeanDist() || max != rp.MaxDist() {
			t.Fatalf("trial %d: fast path (%v, %v) != tables (%v, %v)",
				trial, mean, max, rp.MeanDist(), rp.MaxDist())
		}
		if got := MeanDist(row, testParams); got != mean {
			t.Fatalf("pooled MeanDist %v != scratch %v", got, mean)
		}
		pm, px := MeanMax(row, testParams)
		if pm != mean || px != max {
			t.Fatalf("pooled MeanMax (%v, %v) != scratch (%v, %v)", pm, px, mean, max)
		}
	}
}

func TestWeightedMeanMatchesTables(t *testing.T) {
	rng := stats.NewRNG(404)
	s := NewScratch()
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(14)
		row := randomRow(rng, n, 4)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				if i != j && rng.Bool(0.7) {
					w[i][j] = rng.Float64() * 10
				}
			}
		}
		rp := Compute(row, testParams)
		var num, den float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				num += w[i][j] * rp.Dist[i][j]
				den += w[i][j]
			}
		}
		want := rp.MeanDist()
		if den != 0 {
			want = num / den
		}
		if got := s.WeightedMean(row, testParams, w); got != want {
			t.Fatalf("trial %d: weighted mean %v, want %v", trial, got, want)
		}
		if got := WeightedMean(row, testParams, w); got != want {
			t.Fatalf("trial %d: pooled weighted mean %v, want %v", trial, got, want)
		}
	}
}

func TestWeightedMeanFallbacks(t *testing.T) {
	row := topo.NewRow(8, topo.Span{From: 0, To: 4})
	s := NewScratch()
	mean := s.MeanDist(row, testParams)
	if got := s.WeightedMean(row, testParams, nil); got != mean {
		t.Fatalf("nil weights: %v, want uniform mean %v", got, mean)
	}
	zero := make([][]float64, 8)
	for i := range zero {
		zero[i] = make([]float64, 8)
	}
	if got := s.WeightedMean(row, testParams, zero); got != mean {
		t.Fatalf("all-zero weights: %v, want uniform mean %v", got, mean)
	}
}

func TestScratchAllocationFree(t *testing.T) {
	row := topo.FlatButterflyRow(16)
	s := NewScratch()
	s.MeanDist(row, testParams) // warm the buffers
	if allocs := testing.AllocsPerRun(100, func() {
		s.MeanMax(row, testParams)
	}); allocs != 0 {
		t.Fatalf("MeanMax allocates %.1f times per run", allocs)
	}
	s.ComputeInto(row, testParams)
	if allocs := testing.AllocsPerRun(100, func() {
		s.ComputeInto(row, testParams)
	}); allocs != 0 {
		t.Fatalf("ComputeInto allocates %.1f times per run after warm-up", allocs)
	}
}

func TestScratchSingletonAndMesh(t *testing.T) {
	s := NewScratch()
	if mean, max := s.MeanMax(topo.MeshRow(1), testParams); mean != 0 || max != 0 {
		t.Fatalf("singleton row: mean %v max %v", mean, max)
	}
	mean, max := s.MeanMax(topo.MeshRow(8), testParams)
	if math.Abs(mean-10.5) > 1e-9 || max != 28 {
		t.Fatalf("mesh row: mean %v max %v, want 10.5 / 28", mean, max)
	}
}
