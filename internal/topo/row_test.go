package topo

import (
	"strings"
	"testing"
	"testing/quick"

	"explink/internal/stats"
)

func TestSpanBasics(t *testing.T) {
	s := Span{From: 2, To: 5}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	for k := 0; k < 8; k++ {
		want := k >= 2 && k < 5
		if s.Covers(k) != want {
			t.Fatalf("Covers(%d) = %v", k, s.Covers(k))
		}
	}
	if !s.Valid(8) || s.Valid(5) {
		t.Fatal("Valid bounds wrong")
	}
	if (Span{From: 1, To: 2}).Valid(8) {
		t.Fatal("length-1 span must be invalid")
	}
}

func TestSpanOverlaps(t *testing.T) {
	cases := []struct {
		a, b Span
		want bool
	}{
		{Span{0, 3}, Span{3, 6}, false}, // touching endpoints do not overlap
		{Span{0, 3}, Span{2, 6}, true},
		{Span{0, 6}, Span{2, 4}, true},
		{Span{0, 2}, Span{4, 6}, false},
	}
	for _, c := range cases {
		if c.a.Overlaps(c.b) != c.want || c.b.Overlaps(c.a) != c.want {
			t.Errorf("Overlaps(%v,%v) != %v", c.a, c.b, c.want)
		}
	}
}

func TestMeshRowCrossSections(t *testing.T) {
	r := MeshRow(8)
	for k, c := range r.CrossSections() {
		if c != 1 {
			t.Fatalf("mesh cut %d = %d", k, c)
		}
	}
	if r.MaxCrossSection() != 1 {
		t.Fatal("mesh max cross-section must be 1")
	}
	if err := r.Validate(1); err != nil {
		t.Fatal(err)
	}
}

func TestRowCrossSectionCounts(t *testing.T) {
	// Fig. 1 of the paper: express links on the first row of an 8x8 mesh
	// with cross-section counts 2 2 2 1 2 2 2.
	r := NewRow(8, Span{0, 3}, Span{4, 7})
	want := []int{2, 2, 2, 1, 2, 2, 2}
	got := r.CrossSections()
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("cut %d = %d, want %d (all: %v)", k, got[k], want[k], got)
		}
	}
	if err := r.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(1); err == nil {
		t.Fatal("validate must fail at C=1")
	}
}

func TestNewRowPanicsOnBadSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRow(4, Span{0, 5})
}

func TestRowEqualCanonical(t *testing.T) {
	a := NewRow(8, Span{0, 3}, Span{4, 7})
	b := NewRow(8, Span{4, 7}, Span{0, 3})
	if !a.Equal(b) {
		t.Fatal("order must not matter")
	}
	c := NewRow(8, Span{0, 3})
	if a.Equal(c) {
		t.Fatal("different spans must not be equal")
	}
}

func TestRowAddDoesNotMutate(t *testing.T) {
	a := NewRow(8, Span{0, 3})
	b := a.Add(Span{4, 7})
	if len(a.Express) != 1 || len(b.Express) != 2 {
		t.Fatalf("Add mutated receiver: %v %v", a, b)
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	r := NewRow(8, Span{0, 3}, Span{3, 7})
	got := r.Neighbors(3)
	want := []int{0, 2, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("neighbors(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors(3) = %v, want %v", got, want)
		}
	}
	if r.Degree(0) != 2 { // local to 1 plus express to 3
		t.Fatalf("degree(0) = %d", r.Degree(0))
	}
	// Degree must count distinct neighbors even with duplicate spans.
	d := NewRow(8, Span{0, 3}, Span{0, 3})
	if d.Degree(0) != 2 {
		t.Fatalf("duplicate span degree = %d", d.Degree(0))
	}
}

func TestRowStringAndDiagram(t *testing.T) {
	r := NewRow(8, Span{1, 3})
	if !strings.Contains(r.String(), "1-3") {
		t.Fatalf("String = %q", r.String())
	}
	d := r.Diagram()
	if !strings.Contains(d, "\\") || !strings.Contains(d, "/") {
		t.Fatalf("Diagram = %q", d)
	}
}

// randomRow builds a random feasible row for property tests.
func randomRow(rng *stats.RNG, n, c int) Row {
	r := Row{N: n}
	attempts := rng.Intn(3 * n)
	for i := 0; i < attempts; i++ {
		from := rng.Intn(n - 2)
		maxLen := n - 1 - from
		if maxLen < 2 {
			continue
		}
		to := from + 2 + rng.Intn(maxLen-1)
		cand := r.Add(Span{From: from, To: to})
		if cand.Validate(c) == nil {
			r = cand
		}
	}
	return r
}

func TestRandomRowsAreValid(t *testing.T) {
	rng := stats.NewRNG(1)
	for i := 0; i < 200; i++ {
		n := 4 + rng.Intn(13)
		c := 1 + rng.Intn(6)
		r := randomRow(rng, n, c)
		if err := r.Validate(c); err != nil {
			t.Fatalf("random row invalid: %v", err)
		}
	}
}

func TestCrossSectionConsistency(t *testing.T) {
	// CrossSection(k) must agree with CrossSections()[k] for random rows.
	rng := stats.NewRNG(2)
	if err := quick.Check(func(seed uint64) bool {
		local := stats.NewRNG(seed)
		r := randomRow(local, 8, 4)
		cs := r.CrossSections()
		for k := 0; k < r.N-1; k++ {
			if r.CrossSection(k) != cs[k] {
				return false
			}
		}
		_ = rng
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
