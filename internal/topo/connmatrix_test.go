package topo

import (
	"strings"
	"testing"
	"testing/quick"

	"explink/internal/stats"
)

func TestConnMatrixShape(t *testing.T) {
	m := NewConnMatrix(8, 4)
	if m.N() != 8 || m.C() != 4 || m.Layers() != 3 || m.Bits() != 18 {
		t.Fatalf("shape: n=%d c=%d layers=%d bits=%d", m.N(), m.C(), m.Layers(), m.Bits())
	}
	if NewConnMatrix(8, 1).Bits() != 0 {
		t.Fatal("C=1 must have zero bits")
	}
	if NewConnMatrix(2, 4).Bits() != 0 {
		t.Fatal("n=2 must have zero bits")
	}
}

func TestConnMatrixZeroDecodesToMesh(t *testing.T) {
	m := NewConnMatrix(8, 4)
	if !m.Row().Equal(MeshRow(8)) {
		t.Fatalf("all-zero matrix decoded to %v", m.Row())
	}
}

func TestConnMatrixPaperFig2TopLayer(t *testing.T) {
	// Fig. 2 of the paper (1-based routers): in the top layer the connection
	// points at routers 3, 5, 6, 7 are connected, yielding express links
	// 2-4 and 4-8. In 0-based terms: bits at interior routers 2, 4, 5, 6
	// yield spans 1-3 and 3-7.
	m := NewConnMatrix(8, 4)
	for _, r := range []int{2, 4, 5, 6} {
		m.Set(0, r, true)
	}
	row := m.Row()
	want := NewRow(8, Span{1, 3}, Span{3, 7})
	if !row.Equal(want) {
		t.Fatalf("decoded %v, want %v", row, want)
	}
}

func TestConnMatrixAllOnesLayer(t *testing.T) {
	// A layer with every interior point connected is a single end-to-end
	// express link.
	m := NewConnMatrix(8, 2)
	for r := 1; r <= 6; r++ {
		m.Set(0, r, true)
	}
	want := NewRow(8, Span{0, 7})
	if !m.Row().Equal(want) {
		t.Fatalf("decoded %v", m.Row())
	}
}

func TestConnMatrixUnitSegmentsDropped(t *testing.T) {
	// Alternating bits create length-1 and length-2 segments; the unit ones
	// must be dropped (they would duplicate local links).
	m := NewConnMatrix(6, 2)
	m.Set(0, 1, true) // segment 0-2
	// router 2 disconnected -> segment boundary
	m.Set(0, 3, true) // segment 2-4
	// router 4 disconnected -> unit segment 4-5 dropped
	want := NewRow(6, Span{0, 2}, Span{2, 4})
	if !m.Row().Equal(want) {
		t.Fatalf("decoded %v, want %v", m.Row(), want)
	}
}

func TestConnMatrixDecodeAlwaysValid(t *testing.T) {
	// Property: any bit pattern decodes to a placement within link limit C.
	if err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 4 + rng.Intn(13)
		c := 2 + rng.Intn(5)
		m := NewConnMatrix(n, c)
		m.Randomize(func() bool { return rng.Bool(0.5) })
		return m.Row().Validate(c) == nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConnMatrixFlipAlwaysValid(t *testing.T) {
	// Property: flipping any single bit keeps the decoded placement valid —
	// the guarantee that makes the SA candidate generator never produce
	// infeasible moves (Section 4.4.2).
	rng := stats.NewRNG(99)
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(12)
		c := 2 + rng.Intn(5)
		m := NewConnMatrix(n, c)
		m.Randomize(func() bool { return rng.Bool(0.4) })
		for i := 0; i < m.Bits(); i++ {
			m2 := m.Clone()
			m2.FlipAt(i)
			if err := m2.Row().Validate(c); err != nil {
				t.Fatalf("flip %d broke validity: %v", i, err)
			}
		}
	}
}

func TestMatrixFromRowRoundTrip(t *testing.T) {
	// Property: encode(decode) preserves the placement (though not the bit
	// pattern — layer assignment is not unique).
	if err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 4 + rng.Intn(13)
		c := 2 + rng.Intn(5)
		row := randomRow(rng, n, c)
		m, err := MatrixFromRow(row, c)
		if err != nil {
			return false
		}
		return m.Row().Equal(row)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixFromRowRejectsOverLimit(t *testing.T) {
	row := NewRow(8, Span{0, 4}, Span{1, 5}, Span{2, 6})
	if _, err := MatrixFromRow(row, 2); err == nil {
		t.Fatal("expected error packing 3 overlapping spans at C=2")
	}
}

func TestMatrixFromRowHFB(t *testing.T) {
	row := HFBRow(8)
	m, err := MatrixFromRow(row, row.MaxCrossSection())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Row().Equal(row) {
		t.Fatalf("HFB round trip failed: %v", m.Row())
	}
}

func TestConnMatrixFlipAt(t *testing.T) {
	m := NewConnMatrix(8, 4)
	layer, router := m.FlipAt(7) // second layer, second interior router
	if layer != 1 || router != 2 {
		t.Fatalf("FlipAt(7) = (%d,%d)", layer, router)
	}
	if !m.Connected(1, 2) {
		t.Fatal("bit not set")
	}
	m.FlipAt(7)
	if m.Connected(1, 2) {
		t.Fatal("bit not cleared")
	}
}

func TestConnMatrixString(t *testing.T) {
	m := NewConnMatrix(8, 3)
	m.Set(0, 1, true)
	s := m.String()
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Fatalf("String = %q", s)
	}
}

func TestConnMatrixEqualClone(t *testing.T) {
	m := NewConnMatrix(8, 4)
	m.Set(1, 3, true)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone differs")
	}
	c.FlipAt(0)
	if m.Equal(c) {
		t.Fatal("mutating the clone changed the original view")
	}
}
