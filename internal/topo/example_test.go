package topo_test

import (
	"fmt"

	"explink/internal/topo"
)

// Build a placement by hand and inspect its bandwidth footprint.
func ExampleRow() {
	row := topo.NewRow(8, topo.Span{From: 0, To: 3}, topo.Span{From: 3, To: 7})
	fmt.Println(row)
	fmt.Println("cross-sections:", row.CrossSections())
	fmt.Println("fits C=2:", row.Validate(2) == nil)
	// Output:
	// n=8 express=[0-3 3-7]
	// cross-sections: [2 2 2 2 2 2 2]
	// fits C=2: true
}

// The connection matrix guarantees every bit pattern is a feasible placement.
func ExampleConnMatrix() {
	m := topo.NewConnMatrix(8, 2)
	// Fuse the layer across routers 1..6: one end-to-end express link.
	for r := 1; r <= 6; r++ {
		m.Set(0, r, true)
	}
	fmt.Println(m.Row())
	m.FlipAt(3) // disconnect at router 4: the link splits in two
	fmt.Println(m.Row())
	// Output:
	// n=8 express=[0-7]
	// n=8 express=[0-4 4-7]
}

// Fixed comparison topologies from the paper.
func ExampleHFBRow() {
	hfb := topo.HFBRow(8)
	fmt.Println("spans:", len(hfb.Express), "max cross-section:", hfb.MaxCrossSection())
	fmt.Println("middle cut carries:", hfb.CrossSection(3), "link (the bottleneck)")
	// Output:
	// spans: 6 max cross-section: 4
	// middle cut carries: 1 link (the bottleneck)
}
