package topo

import (
	"testing"
)

func TestFlatButterflyRow(t *testing.T) {
	r := FlatButterflyRow(8)
	// All non-adjacent pairs: C(8,2) - 7 = 21 spans.
	if len(r.Express) != 21 {
		t.Fatalf("FB(8) has %d express spans, want 21", len(r.Express))
	}
	// Eq. 4: the center cut carries n²/4 = 16 links.
	if got := r.CrossSection(3); got != 16 {
		t.Fatalf("FB(8) center cut = %d, want 16", got)
	}
	if r.MaxCrossSection() != CFull(8) {
		t.Fatalf("max cross-section %d != CFull %d", r.MaxCrossSection(), CFull(8))
	}
	// Every router reaches every other in one hop.
	for i := 0; i < 8; i++ {
		if r.Degree(i) != 7 {
			t.Fatalf("FB degree(%d) = %d", i, r.Degree(i))
		}
	}
}

func TestCFull(t *testing.T) {
	cases := map[int]int{4: 4, 8: 16, 16: 64, 5: 6}
	for n, want := range cases {
		if got := CFull(n); got != want {
			t.Errorf("CFull(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLinkLimits(t *testing.T) {
	got := LinkLimits(8)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("LinkLimits(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinkLimits(8) = %v, want %v", got, want)
		}
	}
	got4 := LinkLimits(4)
	if len(got4) != 3 || got4[2] != 4 {
		t.Fatalf("LinkLimits(4) = %v, want [1 2 4]", got4)
	}
	got16 := LinkLimits(16)
	if len(got16) != 7 || got16[6] != 64 {
		t.Fatalf("LinkLimits(16) = %v", got16)
	}
}

func TestHFBRowStructure(t *testing.T) {
	r := HFBRow(8)
	// Two fully connected halves of 4: 2 x (C(4,2)-3) = 2 x 3 = 6 spans.
	if len(r.Express) != 6 {
		t.Fatalf("HFB(8) spans = %d, want 6", len(r.Express))
	}
	// The middle cut carries only the local link (the HFB bottleneck the
	// paper's Section 5.4 blames for its low throughput).
	if got := r.CrossSection(3); got != 1 {
		t.Fatalf("HFB middle cut = %d, want 1", got)
	}
	// Within a half, the center cut of that half carries 1 local + 2x2
	// express = 4 links.
	if got := r.CrossSection(1); got != 4 {
		t.Fatalf("HFB quarter cut = %d, want 4", got)
	}
	if err := r.Validate(4); err != nil {
		t.Fatal(err)
	}
	// No span crosses the middle boundary.
	for _, s := range r.Express {
		if s.Covers(3) {
			t.Fatalf("span %v crosses the quadrant boundary", s)
		}
	}
}

func TestHFBSmallDegeneratesToFB(t *testing.T) {
	if !HFBRow(4).Equal(FlatButterflyRow(4)) {
		t.Fatal("HFB(4) must equal the flattened butterfly")
	}
}

func TestHFB16(t *testing.T) {
	r := HFBRow(16)
	if err := r.Validate(CFull(8)); err != nil {
		t.Fatalf("HFB(16) exceeds quadrant CFull: %v", err)
	}
	if got := r.CrossSection(7); got != 1 {
		t.Fatalf("HFB(16) middle cut = %d", got)
	}
}
