package topo

import (
	"fmt"
	"slices"
	"strings"
)

// Row is a one-dimensional express-link placement over N routers: the N-1
// local links (implicit) plus a multiset of express spans. It is the solution
// representation of problem P̃(n, C) from the paper.
type Row struct {
	N       int
	Express []Span
}

// MeshRow returns the plain row with no express links (link limit C = 1).
func MeshRow(n int) Row {
	return Row{N: n}
}

// NewRow returns a row over n routers with the given express spans. It panics
// if any span is malformed; use Validate for user-input checking.
func NewRow(n int, spans ...Span) Row {
	for _, s := range spans {
		if !s.Valid(n) {
			panic(fmt.Sprintf("topo: invalid span %v on row of %d", s, n))
		}
	}
	r := Row{N: n, Express: slices.Clone(spans)}
	r.sort()
	return r
}

func (r *Row) sort() {
	slices.SortFunc(r.Express, CompareSpans)
}

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	return Row{N: r.N, Express: slices.Clone(r.Express)}
}

// Add returns a copy of the row with one more express span.
func (r Row) Add(s Span) Row {
	c := r.Clone()
	c.Express = append(c.Express, s)
	c.sort()
	return c
}

// CrossSection returns the total link count (local + express) crossing cut k.
func (r Row) CrossSection(k int) int {
	if k < 0 || k >= r.N-1 {
		return 0
	}
	count := 1 // the local link
	for _, s := range r.Express {
		if s.Covers(k) {
			count++
		}
	}
	return count
}

// CrossSections returns the link count at every cut, length N-1.
func (r Row) CrossSections() []int {
	cs := make([]int, maxInt(r.N-1, 0))
	for i := range cs {
		cs[i] = 1
	}
	for _, s := range r.Express {
		for k := s.From; k < s.To; k++ {
			cs[k]++
		}
	}
	return cs
}

// MaxCrossSection returns the maximum link count over all cuts (at least 1
// for N >= 2, 0 for degenerate rows).
func (r Row) MaxCrossSection() int {
	m := 0
	for _, c := range r.CrossSections() {
		if c > m {
			m = c
		}
	}
	return m
}

// Validate checks that the row is a feasible placement under link limit c:
// every span well-formed and every cross-section within the limit
// (constraint (3) of the paper).
func (r Row) Validate(c int) error {
	if r.N < 1 {
		return fmt.Errorf("topo: row must have at least 1 router, got %d", r.N)
	}
	for _, s := range r.Express {
		if !s.Valid(r.N) {
			return fmt.Errorf("topo: invalid span %v on row of %d routers", s, r.N)
		}
	}
	for k, cnt := range r.CrossSections() {
		if cnt > c {
			return fmt.Errorf("topo: cross-section %d has %d links, limit %d", k, cnt, c)
		}
	}
	return nil
}

// Remove returns a copy of the row without the i-th express span (in
// canonical order). The local links always remain, so the row stays
// connected; removing a span can only relax the cross-section constraint.
// It panics if i is out of range.
func (r Row) Remove(i int) Row {
	c := r.Canonical()
	if i < 0 || i >= len(c.Express) {
		panic(fmt.Sprintf("topo: Remove(%d) on row with %d spans", i, len(c.Express)))
	}
	c.Express = append(c.Express[:i], c.Express[i+1:]...)
	return c
}

// Dedupe returns the row with duplicate spans removed. Duplicates can appear
// when decoding connection matrices (two layers carrying the same segment);
// they consume cross-section capacity and crossbar ports without shortening
// any path, so the cleaned row is never worse.
func (r Row) Dedupe() Row {
	c := r.Canonical()
	out := Row{N: c.N}
	for i, s := range c.Express {
		if i > 0 && s == c.Express[i-1] {
			continue
		}
		out.Express = append(out.Express, s)
	}
	return out
}

// Canonical returns the row with spans sorted; two rows describe the same
// placement iff their Canonical forms are Equal.
func (r Row) Canonical() Row {
	c := r.Clone()
	c.sort()
	return c
}

// Equal reports whether two rows describe the same placement (same router
// count and same multiset of spans).
func (r Row) Equal(o Row) bool {
	if r.N != o.N || len(r.Express) != len(o.Express) {
		return false
	}
	a, b := r.Canonical(), o.Canonical()
	for i := range a.Express {
		if a.Express[i] != b.Express[i] {
			return false
		}
	}
	return true
}

// Neighbors returns, for router i, every router directly linked to it
// (by a local or express link), in ascending order without duplicates.
func (r Row) Neighbors(i int) []int {
	set := map[int]bool{}
	if i > 0 {
		set[i-1] = true
	}
	if i < r.N-1 {
		set[i+1] = true
	}
	for _, s := range r.Express {
		if s.From == i {
			set[s.To] = true
		}
		if s.To == i {
			set[s.From] = true
		}
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Degree returns the number of distinct row neighbors of router i, i.e. the
// number of in/out channel pairs the router needs on this dimension.
func (r Row) Degree(i int) int { return len(r.Neighbors(i)) }

// AvgDegree returns the mean router degree on the row, the quantity the paper
// uses in Section 4.6 to argue crossbar static power stays bounded.
func (r Row) AvgDegree() float64 {
	if r.N == 0 {
		return 0
	}
	total := 0
	for i := 0; i < r.N; i++ {
		total += r.Degree(i)
	}
	return float64(total) / float64(r.N)
}

// String renders the row as "n=8 express=[0-3 2-5 ...]".
func (r Row) String() string {
	parts := make([]string, len(r.Express))
	for i, s := range r.Canonical().Express {
		parts[i] = s.String()
	}
	return fmt.Sprintf("n=%d express=[%s]", r.N, strings.Join(parts, " "))
}

// Diagram renders an ASCII picture of the placement: one line of routers and
// one line per express link.
func (r Row) Diagram() string {
	var b strings.Builder
	for i := 0; i < r.N; i++ {
		if i > 0 {
			b.WriteString("--")
		}
		fmt.Fprintf(&b, "%d", i%10)
	}
	b.WriteString("\n")
	for _, s := range r.Canonical().Express {
		line := make([]byte, 3*r.N-2)
		for i := range line {
			line[i] = ' '
		}
		start, end := 3*s.From, 3*s.To
		line[start] = '\\'
		for i := start + 1; i < end; i++ {
			line[i] = '_'
		}
		line[end] = '/'
		b.Write(line)
		b.WriteString("\n")
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
