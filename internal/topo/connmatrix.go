package topo

import (
	"fmt"
	"slices"
	"strings"
)

// ConnMatrix is the paper's connection-matrix search space (Section 4.4.2):
// a binary matrix of size (N-2) x (C-1). One layer of links is reserved for
// the local links, leaving C-1 "express layers". In each layer, every
// interior router (1..N-2) carries one bit: set means the two layer links on
// either side of the router are fused into one longer link (the router is
// bypassed), clear means the layer has endpoints at that router.
//
// Decoding a layer therefore partitions the row into segments; segments of
// length >= 2 become express links, while unit-length segments would merely
// duplicate a local link and are dropped (which is why good placements can
// leave some cross-section bandwidth unused, Section 5.4).
//
// Every bit pattern decodes to a placement that keeps all local links and
// respects the cross-section limit C, so a single-bit flip is always a valid
// simulated-annealing move.
type ConnMatrix struct {
	n, c int
	bits []bool // layer-major: bits[layer*(n-2) + (router-1)]
}

// NewConnMatrix returns the all-zero matrix for P̃(n, C). All-zero decodes to
// the plain mesh row. It panics for n < 2 or C < 1.
func NewConnMatrix(n, c int) *ConnMatrix {
	if n < 2 {
		panic(fmt.Sprintf("topo: connection matrix needs n >= 2, got %d", n))
	}
	if c < 1 {
		panic(fmt.Sprintf("topo: connection matrix needs C >= 1, got %d", c))
	}
	return &ConnMatrix{n: n, c: c, bits: make([]bool, (n-2)*(c-1))}
}

// N returns the router count.
func (m *ConnMatrix) N() int { return m.n }

// C returns the link limit.
func (m *ConnMatrix) C() int { return m.c }

// Layers returns the number of express layers, C-1.
func (m *ConnMatrix) Layers() int { return m.c - 1 }

// Bits returns the total number of connection points, (N-2)·(C-1). This is
// the dimension of the SA move space; it is 0 when C == 1 or N <= 2.
func (m *ConnMatrix) Bits() int { return len(m.bits) }

func (m *ConnMatrix) index(layer, router int) int {
	if layer < 0 || layer >= m.c-1 {
		panic(fmt.Sprintf("topo: layer %d out of range [0,%d)", layer, m.c-1))
	}
	if router < 1 || router > m.n-2 {
		panic(fmt.Sprintf("topo: interior router %d out of range [1,%d]", router, m.n-2))
	}
	return layer*(m.n-2) + (router - 1)
}

// Connected reports the bit for the given express layer (0-based) and
// interior router (1..N-2).
func (m *ConnMatrix) Connected(layer, router int) bool {
	return m.bits[m.index(layer, router)]
}

// Set assigns the bit for the given layer and interior router.
func (m *ConnMatrix) Set(layer, router int, v bool) {
	m.bits[m.index(layer, router)] = v
}

// FlipAt toggles the i-th bit in layer-major order; this is the SA candidate
// move. It returns the layer and router of the flipped connection point.
func (m *ConnMatrix) FlipAt(i int) (layer, router int) {
	m.bits[i] = !m.bits[i]
	return i / (m.n - 2), i%(m.n-2) + 1
}

// Clone returns a deep copy.
func (m *ConnMatrix) Clone() *ConnMatrix {
	return &ConnMatrix{n: m.n, c: m.c, bits: slices.Clone(m.bits)}
}

// Copy overwrites m with src's bits without allocating. It panics if the two
// matrices have different shapes. It lets hot loops keep a best-so-far state
// in a reusable buffer instead of cloning on every improvement.
func (m *ConnMatrix) Copy(src *ConnMatrix) {
	if m.n != src.n || m.c != src.c {
		panic(fmt.Sprintf("topo: Copy of P~(%d,%d) matrix onto P~(%d,%d)", src.n, src.c, m.n, m.c))
	}
	copy(m.bits, src.bits)
}

// DeltaAt reports how Row() would change if the i-th bit (layer-major order,
// as in FlipAt) were toggled from its current value: the spans that would
// disappear and the spans that would appear. The matrix itself is not
// modified. Results are appended to removed and added so callers can reuse
// buffers; at most two spans appear on one side and one on the other.
//
// A flip only reshapes the segment partition of its own layer around the
// flipped router: setting the bit fuses the two adjacent segments into one,
// clearing it splits the enclosing segment in two. Unit-length segments decode
// to no span (they would duplicate a local link), which is why either side of
// the delta can be empty.
func (m *ConnMatrix) DeltaAt(i int, removed, added []Span) (rem, add []Span) {
	layer, router := i/(m.n-2), i%(m.n-2)+1
	// Segment boundaries of the layer are routers with a clear bit, plus the
	// row ends 0 and n-1.
	s := router - 1
	for s > 0 && m.Connected(layer, s) {
		s--
	}
	e := router + 1
	for e < m.n-1 && m.Connected(layer, e) {
		e++
	}
	appendSpan := func(dst []Span, from, to int) []Span {
		if to-from >= 2 {
			dst = append(dst, Span{From: from, To: to})
		}
		return dst
	}
	if m.bits[i] {
		// Set -> clear: the segment [s,e] splits at the router.
		removed = appendSpan(removed, s, e)
		added = appendSpan(added, s, router)
		added = appendSpan(added, router, e)
	} else {
		// Clear -> set: the segments [s,router] and [router,e] fuse.
		removed = appendSpan(removed, s, router)
		removed = appendSpan(removed, router, e)
		added = appendSpan(added, s, e)
	}
	return removed, added
}

// Equal reports whether two matrices have identical shape and bits.
func (m *ConnMatrix) Equal(o *ConnMatrix) bool {
	return m.n == o.n && m.c == o.c && slices.Equal(m.bits, o.bits)
}

// Randomize sets every bit to the result of an independent draw from coin,
// so the caller controls the bias (e.g. a closure returning true with
// probability p). It is used to seed OnlySA with a uniform random state.
func (m *ConnMatrix) Randomize(coin func() bool) {
	for i := range m.bits {
		m.bits[i] = coin()
	}
}

// AppendKey appends a compact byte encoding of the bit pattern to dst and
// returns the extended slice. Two matrices of the same shape have equal keys
// iff they have equal bits, so string(key) serves as a map key for state
// memoization (the SA objective cache).
func (m *ConnMatrix) AppendKey(dst []byte) []byte {
	var acc byte
	for i, b := range m.bits {
		if b {
			acc |= 1 << (i & 7)
		}
		if i&7 == 7 {
			dst = append(dst, acc)
			acc = 0
		}
	}
	if len(m.bits)&7 != 0 {
		dst = append(dst, acc)
	}
	return dst
}

// Row decodes the matrix into its express-link placement. The result always
// satisfies Validate(C).
func (m *ConnMatrix) Row() Row {
	r := Row{N: m.n}
	for layer := 0; layer < m.c-1; layer++ {
		segStart := 0
		for router := 1; router < m.n; router++ {
			interior := router <= m.n-2
			if interior && m.Connected(layer, router) {
				continue // the layer passes through this router
			}
			// The layer has an endpoint here (or we reached the last router).
			if router-segStart >= 2 {
				r.Express = append(r.Express, Span{From: segStart, To: router})
			}
			segStart = router
		}
	}
	r.sort()
	return r
}

// MatrixFromRow encodes a placement into a connection matrix for link limit
// c, assigning spans to layers by greedy interval partitioning (sorted by
// left endpoint, each span goes to the first layer whose last span ends at or
// before the new span's start). Because the row's express cross-sections are
// at most c-1 everywhere, c-1 layers always suffice; an error is returned
// only if the row itself violates the limit.
//
// The round trip MatrixFromRow(m.Row()) == m does not hold bit-for-bit (layer
// assignment is not unique) but Row() of the result always equals the input
// row; the proposed SA relies only on that equivalence.
func MatrixFromRow(r Row, c int) (*ConnMatrix, error) {
	if err := r.Validate(c); err != nil {
		return nil, err
	}
	m := NewConnMatrix(r.N, c)
	spans := r.Canonical().Express
	layerEnd := make([]int, c-1) // rightmost router reached by each layer so far
	for _, s := range spans {
		placed := false
		for l := 0; l < c-1; l++ {
			if layerEnd[l] <= s.From {
				for router := s.From + 1; router <= s.To-1; router++ {
					m.Set(l, router, true)
				}
				layerEnd[l] = s.To
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("topo: could not pack %v into %d layers (row %v)", s, c-1, r)
		}
	}
	return m, nil
}

// String renders the matrix as in Fig. 2(a): one line per layer, '*' for a
// connected point and 'o' for a hole, with column positions for the interior
// routers.
func (m *ConnMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P~(%d,%d) connection matrix (%d layers x %d interior routers)\n",
		m.n, m.c, m.c-1, m.n-2)
	for layer := 0; layer < m.c-1; layer++ {
		fmt.Fprintf(&b, "layer %d: ", layer)
		for router := 1; router <= m.n-2; router++ {
			if m.Connected(layer, router) {
				b.WriteByte('*')
			} else {
				b.WriteByte('o')
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
