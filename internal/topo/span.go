// Package topo defines the topology representations of the express-link
// placement problem: one-dimensional row placements (Section 4.2 of the
// paper), the connection-matrix search space (Section 4.4.2), the fixed
// comparison topologies (mesh, flattened butterfly, hybrid flattened
// butterfly), and the 2D expansion used by the simulator.
//
// Conventions: routers on a row are numbered 0..N-1 left to right.
// Cross-section k (a "cut") lies between routers k and k+1, for
// k in [0, N-2]. Every row implicitly contains the N-1 local links; a
// placement only lists express links (spans of length >= 2).
package topo

import "fmt"

// Span is one bidirectional express link between two non-adjacent routers on
// the same row (or column). From < To and To-From >= 2 for a valid express
// span; length-1 spans would duplicate local links.
type Span struct {
	From, To int
}

// Len returns the span's length in unit links (its Manhattan length).
func (s Span) Len() int { return s.To - s.From }

// Covers reports whether the span crosses cut k (the cross-section between
// routers k and k+1).
func (s Span) Covers(k int) bool { return s.From <= k && k < s.To }

// Overlaps reports whether two spans share at least one cross-section.
// Spans that merely touch at an endpoint do not overlap.
func (s Span) Overlaps(o Span) bool { return s.From < o.To && o.From < s.To }

// Valid reports whether the span is a well-formed express link on a row of
// n routers.
func (s Span) Valid(n int) bool {
	return s.From >= 0 && s.To < n && s.To-s.From >= 2
}

func (s Span) String() string { return fmt.Sprintf("%d-%d", s.From, s.To) }

// CompareSpans orders spans by (From, To), the canonical order used
// throughout the package.
func CompareSpans(a, b Span) int {
	switch {
	case a.From != b.From:
		return a.From - b.From
	default:
		return a.To - b.To
	}
}
