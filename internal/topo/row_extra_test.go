package topo

import "testing"

func TestRowRemove(t *testing.T) {
	r := NewRow(8, Span{From: 0, To: 3}, Span{From: 4, To: 7})
	out := r.Remove(0)
	if len(out.Express) != 1 || out.Express[0] != (Span{From: 4, To: 7}) {
		t.Fatalf("Remove(0) = %v", out)
	}
	if len(r.Express) != 2 {
		t.Fatal("Remove mutated the receiver")
	}
	if err := out.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestRowRemovePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRow(8, Span{From: 0, To: 3}).Remove(1)
}

func TestRowDedupe(t *testing.T) {
	r := NewRow(8, Span{From: 0, To: 3}, Span{From: 0, To: 3}, Span{From: 4, To: 7})
	d := r.Dedupe()
	if len(d.Express) != 2 {
		t.Fatalf("dedupe left %v", d)
	}
	// Deduping never raises a cross-section count.
	for k := 0; k < 7; k++ {
		if d.CrossSection(k) > r.CrossSection(k) {
			t.Fatal("dedupe increased a cross-section")
		}
	}
	// Idempotent.
	if !d.Dedupe().Equal(d) {
		t.Fatal("dedupe not idempotent")
	}
	// Empty row.
	if got := MeshRow(4).Dedupe(); len(got.Express) != 0 {
		t.Fatalf("mesh dedupe = %v", got)
	}
}

func TestAvgDegree(t *testing.T) {
	// Mesh row of n: end routers have 1 neighbor, interior 2: avg = 2(n-1)/n.
	if got := MeshRow(8).AvgDegree(); got != 14.0/8 {
		t.Fatalf("mesh avg degree = %g", got)
	}
	// Fully connected row: every router has n-1 neighbors.
	if got := FlatButterflyRow(8).AvgDegree(); got != 7 {
		t.Fatalf("FB avg degree = %g", got)
	}
	if (Row{}).AvgDegree() != 0 {
		t.Fatal("empty row degree")
	}
	// Section 4.6's observation on the optimal P̃(8,4): average within-row
	// ports stay well below C*k_m = 8; the paper quotes 3.5.
	opt := NewRow(8,
		Span{From: 0, To: 2}, Span{From: 0, To: 3}, Span{From: 1, To: 3},
		Span{From: 2, To: 5}, Span{From: 3, To: 6}, Span{From: 3, To: 7},
		Span{From: 5, To: 7})
	if got := opt.AvgDegree(); got != 3.5 {
		t.Fatalf("P(8,4) avg degree = %g, paper says 3.5", got)
	}
}

func TestConnMatrixConstructorPanics(t *testing.T) {
	for _, tc := range []struct{ n, c int }{{1, 4}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewConnMatrix(%d,%d) did not panic", tc.n, tc.c)
				}
			}()
			NewConnMatrix(tc.n, tc.c)
		}()
	}
}

func TestConnMatrixIndexPanics(t *testing.T) {
	m := NewConnMatrix(8, 4)
	for _, tc := range []struct{ layer, router int }{{-1, 1}, {3, 1}, {0, 0}, {0, 7}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("index(%d,%d) did not panic", tc.layer, tc.router)
				}
			}()
			m.Connected(tc.layer, tc.router)
		}()
	}
}

func TestRowEqualShortcuts(t *testing.T) {
	a := NewRow(8, Span{From: 0, To: 3})
	if a.Equal(NewRow(4)) {
		t.Fatal("different n compared equal")
	}
	if a.Equal(MeshRow(8)) {
		t.Fatal("different span count compared equal")
	}
}

func TestValidateDegenerateRow(t *testing.T) {
	bad := Row{N: 0}
	if bad.Validate(1) == nil {
		t.Fatal("zero-router row accepted")
	}
	if (Row{N: 1}).Validate(1) != nil {
		t.Fatal("single-router row rejected")
	}
}

func TestCrossSectionOutOfRange(t *testing.T) {
	r := MeshRow(4)
	if r.CrossSection(-1) != 0 || r.CrossSection(3) != 0 {
		t.Fatal("out-of-range cuts must report 0")
	}
}
