package topo

import "testing"

func TestRectTopology(t *testing.T) {
	tp := MeshRect(8, 4)
	if tp.W != 8 || tp.H != 4 || tp.NumRouters() != 32 {
		t.Fatalf("shape: %dx%d (%d routers)", tp.W, tp.H, tp.NumRouters())
	}
	if err := tp.Validate(1); err != nil {
		t.Fatal(err)
	}
	// Node id round trip across the rectangle.
	for id := 0; id < 32; id++ {
		x, y := tp.Coords(id)
		if x < 0 || x >= 8 || y < 0 || y >= 4 {
			t.Fatalf("coords(%d) = (%d,%d)", id, x, y)
		}
		if tp.NodeID(x, y) != id {
			t.Fatalf("round trip failed at %d", id)
		}
	}
	// Corner degree: 1 row + 1 column neighbor.
	if d := tp.RouterDegree(0); d != 2 {
		t.Fatalf("corner degree = %d", d)
	}
}

func TestRectWithPlacements(t *testing.T) {
	row := NewRow(8, Span{From: 0, To: 7})
	col := NewRow(4, Span{From: 0, To: 2})
	tp := Rect("r", 8, 4, row, col)
	if err := tp.Validate(2); err != nil {
		t.Fatal(err)
	}
	if tp.MaxCrossSection() != 2 {
		t.Fatalf("max cross-section = %d", tp.MaxCrossSection())
	}
	for y := 0; y < 4; y++ {
		if !tp.Rows[y].Equal(row) {
			t.Fatalf("row %d differs", y)
		}
	}
	for x := 0; x < 8; x++ {
		if !tp.Cols[x].Equal(col) {
			t.Fatalf("col %d differs", x)
		}
	}
}

func TestRectPanicsOnMismatch(t *testing.T) {
	for i, f := range []func(){
		func() { Rect("bad", 8, 4, MeshRow(4), MeshRow(4)) }, // row length wrong
		func() { Rect("bad", 8, 4, MeshRow(8), MeshRow(8)) }, // col length wrong
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNPanicsOnRectangle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N() on a rectangle must panic")
		}
	}()
	MeshRect(8, 4).N()
}

func TestNOnSquare(t *testing.T) {
	if Mesh(8).N() != 8 {
		t.Fatal("square N broken")
	}
}

func TestRectValidateDegenerate(t *testing.T) {
	bad := Topology{Name: "x", W: 0, H: 4}
	if bad.Validate(1) == nil {
		t.Fatal("degenerate size accepted")
	}
}
