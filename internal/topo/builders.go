package topo

// This file provides the fixed comparison topologies the paper evaluates
// against (Section 5.1): the mesh baseline, the flattened butterfly, and the
// hybrid flattened butterfly (HFB) of Fig. 4. All are expressible as row
// placements because each one is identical on every row and column.

// FlatButterflyRow returns the fully connected row of the flattened
// butterfly [17]: an express span between every non-adjacent pair. Its
// maximum cross-section is n²/4 (Eq. 4).
func FlatButterflyRow(n int) Row {
	r := Row{N: n}
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			r.Express = append(r.Express, Span{From: i, To: j})
		}
	}
	return r
}

// HFBRow returns one row of the hybrid flattened butterfly (Fig. 4): the row
// is split into two halves, each half fully connected, and the halves joined
// only by the local link across the middle. HFB exists to scale the flattened
// butterfly beyond 4x4, so for n <= 4 it degenerates to the plain flattened
// butterfly, which is what the paper compares against on 4x4 networks.
func HFBRow(n int) Row {
	if n <= 4 {
		return FlatButterflyRow(n)
	}
	r := Row{N: n}
	half := n / 2
	addFull := func(lo, hi int) { // fully connect routers [lo, hi)
		for i := lo; i < hi; i++ {
			for j := i + 2; j < hi; j++ {
				r.Express = append(r.Express, Span{From: i, To: j})
			}
		}
	}
	addFull(0, half)
	addFull(half, n)
	return r
}

// CFull returns the maximum possible cross-section link count for a fully
// connected row of n routers (Eq. 4): (n/2)·(n - n/2). For even n this is
// n²/4.
func CFull(n int) int {
	h := n / 2
	return h * (n - h)
}

// LinkLimits returns the candidate link-limit values C for an n-router row:
// the powers of two from 1 up to CFull(n), as in Section 4.1 ("the value of C
// can be 1, 2, or 4 for 4x4 networks and 1, 2, 4, 8, or 16 for 8x8").
func LinkLimits(n int) []int {
	var out []int
	for c := 1; c <= CFull(n); c *= 2 {
		out = append(out, c)
	}
	return out
}
