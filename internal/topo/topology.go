package topo

import "fmt"

// Topology is a full W x H network: one row placement per mesh row (its X
// links, W routers each) and one per mesh column (its Y links, H routers
// each). The paper's general-purpose designs replicate a single row solution
// across a square network (the 2D->1D lemma); this type also supports
// rectangular networks (W != H, each dimension solved independently) and the
// per-line placements of the application-specific variant (Section 5.6.4).
//
// Node ids are y*W + x with x in [0, W) and y in [0, H).
type Topology struct {
	Name string
	W, H int   // W columns per row, H rows per column
	Rows []Row // Rows[y] places the X links of mesh row y; len H, each Row.N == W
	Cols []Row // Cols[x] places the Y links of mesh column x; len W, each Row.N == H
}

// N returns the side length of a square topology and panics for rectangular
// ones; it exists for the (common) square-only call sites.
func (t Topology) N() int {
	if t.W != t.H {
		panic(fmt.Sprintf("topo: N() on rectangular %dx%d topology %q", t.W, t.H, t.Name))
	}
	return t.W
}

// Uniform builds a square topology that replicates one row placement across
// all rows and columns, as the lemma in Section 4.2 prescribes.
func Uniform(name string, n int, row Row) Topology {
	if row.N != n {
		panic(fmt.Sprintf("topo: row has %d routers, network needs %d", row.N, n))
	}
	return Rect(name, n, n, row, row)
}

// Rect builds a W x H topology replicating rowPlace across the H rows and
// colPlace across the W columns. rowPlace must span W routers and colPlace H.
func Rect(name string, w, h int, rowPlace, colPlace Row) Topology {
	if rowPlace.N != w {
		panic(fmt.Sprintf("topo: row placement has %d routers, want W=%d", rowPlace.N, w))
	}
	if colPlace.N != h {
		panic(fmt.Sprintf("topo: column placement has %d routers, want H=%d", colPlace.N, h))
	}
	t := Topology{Name: name, W: w, H: h, Rows: make([]Row, h), Cols: make([]Row, w)}
	for y := 0; y < h; y++ {
		t.Rows[y] = rowPlace.Clone()
	}
	for x := 0; x < w; x++ {
		t.Cols[x] = colPlace.Clone()
	}
	return t
}

// Mesh returns the baseline n x n mesh.
func Mesh(n int) Topology { return Uniform("Mesh", n, MeshRow(n)) }

// MeshRect returns a plain w x h mesh.
func MeshRect(w, h int) Topology {
	return Rect(fmt.Sprintf("Mesh%dx%d", w, h), w, h, MeshRow(w), MeshRow(h))
}

// HFB returns the hybrid flattened butterfly on n x n (Fig. 4). Note that the
// 2D HFB of the paper is exactly the row-replicated HFBRow: within each
// quadrant every row segment and column segment is fully connected, and
// quadrants meet through local links only.
func HFB(n int) Topology { return Uniform("HFB", n, HFBRow(n)) }

// FlattenedButterfly returns the full flattened butterfly on n x n.
func FlattenedButterfly(n int) Topology {
	return Uniform("FB", n, FlatButterflyRow(n))
}

// Validate checks structural consistency and that every row and column obeys
// link limit c.
func (t Topology) Validate(c int) error {
	if t.W < 1 || t.H < 1 {
		return fmt.Errorf("topo: topology %q has degenerate size %dx%d", t.Name, t.W, t.H)
	}
	if len(t.Rows) != t.H || len(t.Cols) != t.W {
		return fmt.Errorf("topo: topology %q needs %d rows and %d cols, got %d/%d",
			t.Name, t.H, t.W, len(t.Rows), len(t.Cols))
	}
	for i, r := range t.Rows {
		if r.N != t.W {
			return fmt.Errorf("topo: row %d has %d routers, want %d", i, r.N, t.W)
		}
		if err := r.Validate(c); err != nil {
			return fmt.Errorf("topo: row %d: %w", i, err)
		}
	}
	for i, col := range t.Cols {
		if col.N != t.H {
			return fmt.Errorf("topo: col %d has %d routers, want %d", i, col.N, t.H)
		}
		if err := col.Validate(c); err != nil {
			return fmt.Errorf("topo: col %d: %w", i, err)
		}
	}
	return nil
}

// MaxCrossSection returns the largest cross-section link count over all rows
// and columns — the effective C the topology requires.
func (t Topology) MaxCrossSection() int {
	m := 0
	for _, r := range t.Rows {
		if v := r.MaxCrossSection(); v > m {
			m = v
		}
	}
	for _, c := range t.Cols {
		if v := c.MaxCrossSection(); v > m {
			m = v
		}
	}
	return m
}

// NumRouters returns W·H.
func (t Topology) NumRouters() int { return t.W * t.H }

// NodeID maps coordinates to a router id; x is the column, y the row.
func (t Topology) NodeID(x, y int) int { return y*t.W + x }

// Coords maps a router id back to (x, y).
func (t Topology) Coords(id int) (x, y int) { return id % t.W, id / t.W }

// RouterDegree returns the number of network channels (row + column
// neighbors, excluding the local NI port) at router id.
func (t Topology) RouterDegree(id int) int {
	x, y := t.Coords(id)
	return t.Rows[y].Degree(x) + t.Cols[x].Degree(y)
}

// AvgRouterDegree returns the mean channel degree over all routers, used by
// the power model's crossbar term (Section 4.6).
func (t Topology) AvgRouterDegree() float64 {
	total := 0
	for id := 0; id < t.NumRouters(); id++ {
		total += t.RouterDegree(id)
	}
	return float64(total) / float64(t.NumRouters())
}
