package topo

import (
	"testing"

	"explink/internal/stats"
)

// spanCounts folds a span slice into a multiset.
func spanCounts(spans []Span) map[Span]int {
	m := make(map[Span]int)
	for _, s := range spans {
		m[s]++
	}
	return m
}

// TestDeltaAtMatchesDecode checks DeltaAt against the ground truth on random
// matrices: for every bit, the predicted removed/added spans must be exactly
// the multiset difference between the decoded rows before and after FlipAt.
func TestDeltaAtMatchesDecode(t *testing.T) {
	rng := stats.NewRNG(31)
	for _, tc := range []struct{ n, c int }{{4, 2}, {5, 3}, {8, 4}, {16, 4}, {9, 2}} {
		for trial := 0; trial < 20; trial++ {
			m := NewConnMatrix(tc.n, tc.c)
			m.Randomize(func() bool { return rng.Bool(0.4) })
			for i := 0; i < m.Bits(); i++ {
				before := spanCounts(m.Row().Express)
				removed, added := m.DeltaAt(i, nil, nil)
				if got := spanCounts(m.Row().Express); len(got) != len(before) {
					t.Fatalf("DeltaAt mutated the matrix")
				}
				m.FlipAt(i)
				after := spanCounts(m.Row().Express)
				m.FlipAt(i) // restore
				for _, s := range removed {
					before[s]--
				}
				for _, s := range added {
					before[s]++
				}
				for s, k := range before {
					if k != after[s] {
						t.Fatalf("P~(%d,%d) bit %d: predicted count %d for %v, decode says %d (removed %v added %v)",
							tc.n, tc.c, i, k, s, after[s], removed, added)
					}
				}
				for s, k := range after {
					if k != 0 && before[s] != k {
						t.Fatalf("P~(%d,%d) bit %d: span %v appears %d times after flip but prediction has %d",
							tc.n, tc.c, i, s, k, before[s])
					}
				}
			}
		}
	}
}

// TestDeltaAtAppends checks the buffer-reuse contract: results are appended
// to the passed slices.
func TestDeltaAtAppends(t *testing.T) {
	m := NewConnMatrix(8, 3)
	sentinel := Span{From: 0, To: 7}
	removed, added := m.DeltaAt(2, []Span{sentinel}, []Span{sentinel})
	if len(removed) < 1 || removed[0] != sentinel {
		t.Fatalf("removed lost its prefix: %v", removed)
	}
	if len(added) < 1 || added[0] != sentinel {
		t.Fatalf("added lost its prefix: %v", added)
	}
}

func TestCopy(t *testing.T) {
	rng := stats.NewRNG(5)
	src := NewConnMatrix(8, 4)
	src.Randomize(func() bool { return rng.Bool(0.5) })
	dst := NewConnMatrix(8, 4)
	dst.Copy(src)
	if !dst.Equal(src) {
		t.Fatal("Copy did not replicate bits")
	}
	src.FlipAt(0)
	if dst.Equal(src) {
		t.Fatal("Copy aliases the source bits")
	}
}

func TestCopyShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewConnMatrix(8, 4).Copy(NewConnMatrix(8, 3))
}
