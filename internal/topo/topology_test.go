package topo

import "testing"

func TestUniformTopology(t *testing.T) {
	row := NewRow(8, Span{1, 3})
	tp := Uniform("X", 8, row)
	if err := tp.Validate(2); err != nil {
		t.Fatal(err)
	}
	if tp.NumRouters() != 64 {
		t.Fatalf("routers = %d", tp.NumRouters())
	}
	for y := 0; y < 8; y++ {
		if !tp.Rows[y].Equal(row) {
			t.Fatalf("row %d differs", y)
		}
	}
}

func TestNodeIDCoords(t *testing.T) {
	tp := Mesh(8)
	for id := 0; id < 64; id++ {
		x, y := tp.Coords(id)
		if tp.NodeID(x, y) != id {
			t.Fatalf("coords round trip failed at %d", id)
		}
		if x < 0 || x >= 8 || y < 0 || y >= 8 {
			t.Fatalf("coords out of range: %d -> (%d,%d)", id, x, y)
		}
	}
}

func TestMeshDegrees(t *testing.T) {
	tp := Mesh(4)
	// Corner router 0: one row neighbor + one column neighbor.
	if d := tp.RouterDegree(0); d != 2 {
		t.Fatalf("corner degree = %d", d)
	}
	// Center router (1,1): two row + two column neighbors.
	if d := tp.RouterDegree(tp.NodeID(1, 1)); d != 4 {
		t.Fatalf("center degree = %d", d)
	}
	// Mesh average degree: 2*2*n*(n-1) channel endpoints over n² routers = 3
	// for n=4.
	if avg := tp.AvgRouterDegree(); avg != 3 {
		t.Fatalf("avg degree = %g", avg)
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	tp := Mesh(4)
	tp.Rows = tp.Rows[:3]
	if tp.Validate(1) == nil {
		t.Fatal("missing row not caught")
	}
	tp2 := Mesh(4)
	tp2.Rows[0] = NewRow(4, Span{0, 2})
	if tp2.Validate(1) == nil {
		t.Fatal("over-limit row not caught")
	}
}

func TestUniformPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Uniform("bad", 8, MeshRow(4))
}

func TestHFBTopologyMaxCrossSection(t *testing.T) {
	tp := HFB(8)
	if got := tp.MaxCrossSection(); got != 4 {
		t.Fatalf("HFB(8) max cross-section = %d, want 4", got)
	}
	if err := tp.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenedButterflyTopology(t *testing.T) {
	tp := FlattenedButterfly(4)
	if got := tp.MaxCrossSection(); got != 4 {
		t.Fatalf("FB(4) max cross-section = %d", got)
	}
	// Every router connects to 3 row + 3 column neighbors.
	for id := 0; id < 16; id++ {
		if d := tp.RouterDegree(id); d != 6 {
			t.Fatalf("FB degree(%d) = %d", id, d)
		}
	}
}
