package fabric

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"explink/internal/api"
	"explink/internal/exp"
	"explink/internal/obs"
	"explink/internal/runctl"
)

// unit lifecycle states.
type unitState int

const (
	unitPending unitState = iota // waiting for a worker
	unitLeased                   // handed to a worker, deadline ticking
	unitDone                     // completed with a report
	unitFailed                   // completed with a terminal error
)

// unitSlot is the coordinator's bookkeeping for one unit.
type unitSlot struct {
	unit     exp.Unit
	state    unitState
	lease    string    // current lease id while leased
	worker   string    // who holds / held the lease
	deadline time.Time // lease expiry while leased
	entry    journalEntry
}

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// Suite is the campaign to run (see SuiteOf).
	Suite Suite
	// JournalPath checkpoints completed units; "" disables resumability.
	JournalPath string
	// LeaseTTL is how long a lease survives without a heartbeat (default
	// 15s). Workers heartbeat at TTL/3, so a dead worker costs at most one
	// TTL of latency before its unit is re-issued.
	LeaseTTL time.Duration
	// RetryEvery is the poll delay suggested to workers when every remaining
	// unit is leased (default 500ms).
	RetryEvery time.Duration
	// Events, when non-nil, receives unit lifecycle events as JSON lines.
	Events *obs.EventWriter
	// Reg, when non-nil, receives the coordinator's fabric_* metrics.
	Reg *obs.Registry
}

// Coordinator owns one campaign: it decomposes the suite into units, leases
// them with heartbeat-extended deadlines, reclaims expired leases, journals
// completions, and merges outcomes. All methods are safe for concurrent use;
// the Lease/Heartbeat/Complete triple matches the worker Client interface,
// so in-process workers can drive a Coordinator directly while remote
// workers go through the /v1/work HTTP surface.
type Coordinator struct {
	suite Suite
	sel   []exp.Experiment
	ttl   time.Duration
	retry time.Duration
	epoch string // lease-id nonce: leases never survive a coordinator restart
	ev    *obs.EventWriter
	met   fabricMetrics

	mu        sync.Mutex
	units     []unitSlot
	journal   *journal
	leaseSeq  int64
	remaining int // non-terminal units
	resumed   int // units restored from the journal at open
	done      chan struct{}

	now func() time.Time // injectable clock for tests
}

// fabricMetrics are the coordinator's exported instruments; every field is
// nil-safe, so an unregistered coordinator pays nothing.
type fabricMetrics struct {
	leases    *obs.Counter // fabric_leases_total
	expired   *obs.Counter // fabric_lease_expired_total
	completed *obs.Counter // fabric_completed_total
	failed    *obs.Counter // fabric_failed_total
	requeued  *obs.Counter // fabric_requeued_total
	stale     *obs.Counter // fabric_stale_total
	remaining *obs.Gauge   // fabric_units_remaining
}

// NewCoordinator builds a coordinator for cfg.Suite, resuming from the
// journal when one exists. Resumed units are terminal immediately: they are
// never re-leased, and their results flow into the merged outcome list
// exactly as if they had completed in this incarnation.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	sel, err := cfg.Suite.selection()
	if err != nil {
		return nil, err
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("fabric: empty suite: %w", runctl.ErrConfig)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 500 * time.Millisecond
	}
	j, entries, err := openJournal(cfg.JournalPath, cfg.Suite)
	if err != nil {
		return nil, err
	}
	var nonce [6]byte
	rand.Read(nonce[:])
	c := &Coordinator{
		suite:     cfg.Suite,
		sel:       sel,
		ttl:       cfg.LeaseTTL,
		retry:     cfg.RetryEvery,
		epoch:     hex.EncodeToString(nonce[:]),
		ev:        cfg.Events,
		journal:   j,
		remaining: len(sel),
		done:      make(chan struct{}),
		now:       time.Now,
	}
	if cfg.Reg != nil {
		c.met = fabricMetrics{
			leases:    cfg.Reg.Counter("fabric_leases_total", "work-unit leases granted"),
			expired:   cfg.Reg.Counter("fabric_lease_expired_total", "leases reclaimed after heartbeat loss"),
			completed: cfg.Reg.Counter("fabric_completed_total", "units completed with a report"),
			failed:    cfg.Reg.Counter("fabric_failed_total", "units completed with a terminal error"),
			requeued:  cfg.Reg.Counter("fabric_requeued_total", "units re-queued after a cancelled worker run"),
			stale:     cfg.Reg.Counter("fabric_stale_total", "completions discarded because the unit already finished"),
			remaining: cfg.Reg.Gauge("fabric_units_remaining", "units not yet terminal"),
		}
	}
	c.units = make([]unitSlot, len(sel))
	for i, u := range exp.DecomposeSuite(sel) {
		c.units[i] = unitSlot{unit: u}
	}
	for _, e := range entries {
		slot := &c.units[e.Seq]
		if slot.state == unitDone || slot.state == unitFailed {
			continue // duplicate journal line: first wins
		}
		slot.entry = e
		slot.state = unitDone
		if e.Error != nil {
			slot.state = unitFailed
		}
		c.remaining--
		c.resumed++
	}
	c.met.remaining.Set(int64(c.remaining))
	if c.remaining == 0 {
		close(c.done)
	}
	return c, nil
}

// Suite returns the campaign spec.
func (c *Coordinator) Suite() Suite { return c.suite }

// Resumed reports how many units were restored from the journal at startup.
func (c *Coordinator) Resumed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumed
}

// Counts reports the live unit-state tallies (pending, leased, done, failed).
func (c *Coordinator) Counts() (pending, leased, done, failed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpired()
	for i := range c.units {
		switch c.units[i].state {
		case unitPending:
			pending++
		case unitLeased:
			leased++
		case unitDone:
			done++
		case unitFailed:
			failed++
		}
	}
	return
}

// reclaimExpired returns timed-out leases to the pending pool. Called with
// c.mu held; reclamation is lazy (on lease/heartbeat/count traffic), which
// is enough because a starved pool is always being polled by the workers
// that would drain it.
func (c *Coordinator) reclaimExpired() {
	now := c.now()
	for i := range c.units {
		s := &c.units[i]
		if s.state == unitLeased && now.After(s.deadline) {
			c.met.expired.Inc()
			c.ev.Emit("unit.expired", map[string]any{"seq": s.unit.Seq, "name": s.unit.Exp.Name, "worker": s.worker})
			s.state = unitPending
			s.lease = ""
			s.worker = ""
		}
	}
}

// Lease implements the worker protocol: grant the first pending unit in
// sequence order, say "wait" while everything is leased elsewhere, "done"
// once every unit is terminal.
func (c *Coordinator) Lease(_ context.Context, worker string) (api.WorkLeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpired()
	if c.remaining == 0 {
		return api.WorkLeaseResponse{Status: api.WorkStatusDone, SuiteID: c.suite.Fingerprint()}, nil
	}
	for i := range c.units {
		s := &c.units[i]
		if s.state != unitPending {
			continue
		}
		c.leaseSeq++
		s.state = unitLeased
		s.lease = fmt.Sprintf("%s-%d-%d", c.epoch, s.unit.Seq, c.leaseSeq)
		s.worker = worker
		s.deadline = c.now().Add(c.ttl)
		c.met.leases.Inc()
		c.ev.Emit("unit.lease", map[string]any{"seq": s.unit.Seq, "name": s.unit.Exp.Name, "worker": worker, "lease": s.lease})
		return api.WorkLeaseResponse{
			Status:     api.WorkStatusUnit,
			Unit:       c.suite.unitOf(s.unit),
			Lease:      s.lease,
			TTLSeconds: c.ttl.Seconds(),
			SuiteID:    c.suite.Fingerprint(),
		}, nil
	}
	return api.WorkLeaseResponse{
		Status:       api.WorkStatusWait,
		RetrySeconds: c.retry.Seconds(),
		SuiteID:      c.suite.Fingerprint(),
	}, nil
}

// Heartbeat extends a live lease's deadline. An unknown lease (expired and
// reclaimed, or from a previous coordinator incarnation) tells the worker to
// abandon the run.
func (c *Coordinator) Heartbeat(_ context.Context, lease string) (api.WorkHeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimExpired()
	for i := range c.units {
		s := &c.units[i]
		if s.state == unitLeased && s.lease == lease {
			s.deadline = c.now().Add(c.ttl)
			return api.WorkHeartbeatResponse{Status: api.WorkStatusOK, TTLSeconds: c.ttl.Seconds()}, nil
		}
	}
	return api.WorkHeartbeatResponse{Status: api.WorkStatusUnknown}, nil
}

// Complete records one finished unit. Completion is deliberately
// lease-agnostic: results are deterministic, so a correct result from an
// expired lease is still a correct result — the first completion of a unit
// wins and later ones are acknowledged as stale. A completion whose error
// classifies as cancelled (the worker was drained mid-run, not the
// experiment failing) re-queues the unit instead of failing the suite.
func (c *Coordinator) Complete(_ context.Context, req api.WorkCompleteRequest) (api.WorkCompleteResponse, error) {
	if err := req.Validate(); err != nil {
		return api.WorkCompleteResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Seq >= len(c.units) || c.units[req.Seq].unit.Exp.Name != req.Name {
		return api.WorkCompleteResponse{}, fmt.Errorf(
			"completion for unknown unit %d (%s): %w", req.Seq, req.Name, runctl.ErrConfig)
	}
	s := &c.units[req.Seq]
	if s.state == unitDone || s.state == unitFailed {
		c.met.stale.Inc()
		return api.WorkCompleteResponse{Status: api.WorkStatusStale, Done: c.remaining == 0}, nil
	}
	if req.Error != nil && req.Error.Kind == "cancelled" {
		c.met.requeued.Inc()
		c.ev.Emit("unit.requeue", map[string]any{"seq": s.unit.Seq, "name": s.unit.Exp.Name, "error": req.Error.Message})
		s.state = unitPending
		s.lease = ""
		s.worker = ""
		return api.WorkCompleteResponse{Status: api.WorkStatusAccepted}, nil
	}
	entry := journalEntry{Seq: req.Seq, Name: req.Name, Seconds: req.Seconds, Report: req.Report, Error: req.Error}
	if err := c.journal.append(entry); err != nil {
		// The journal is the resume contract: refuse the completion so the
		// worker retries and the checkpoint never silently loses a unit.
		return api.WorkCompleteResponse{}, err
	}
	s.entry = entry
	s.state = unitDone
	if req.Error != nil {
		s.state = unitFailed
		c.met.failed.Inc()
	} else {
		c.met.completed.Inc()
	}
	s.lease = ""
	c.remaining--
	c.met.remaining.Set(int64(c.remaining))
	c.ev.Emit("unit.complete", map[string]any{
		"seq": s.unit.Seq, "name": s.unit.Exp.Name, "seconds": req.Seconds, "failed": req.Error != nil})
	if c.remaining == 0 {
		close(c.done)
		c.ev.Emit("suite.done", map[string]any{"experiments": len(c.units)})
	}
	return api.WorkCompleteResponse{Status: api.WorkStatusAccepted, Done: c.remaining == 0}, nil
}

// WaitDone blocks until every unit is terminal or ctx dies (returning an
// error matching runctl.ErrCancelled).
func (c *Coordinator) WaitDone(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return runctl.Cancelled(ctx)
	}
}

// Done reports whether every unit is terminal.
func (c *Coordinator) Done() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Outcomes merges the recorded completions into the registry-order outcome
// list a local exp.RunAll would have produced: reports round-trip through
// their journal JSON (deterministically — the report schema is all strings
// and shortest-round-trip floats), errors reconstruct their runctl taxonomy
// classification, and units that never completed fail as cancelled.
func (c *Coordinator) Outcomes() ([]exp.Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	got := make(map[int]exp.Outcome, len(c.units))
	for i := range c.units {
		s := &c.units[i]
		switch s.state {
		case unitDone:
			rep, err := decodeReport(s.entry.Report)
			if err != nil {
				return nil, fmt.Errorf("fabric: unit %d (%s): %w", s.unit.Seq, s.unit.Exp.Name, err)
			}
			got[s.unit.Seq] = exp.Outcome{Rep: rep, Elapsed: time.Duration(s.entry.Seconds * float64(time.Second))}
		case unitFailed:
			got[s.unit.Seq] = exp.Outcome{Err: s.entry.Error.Err(), Elapsed: time.Duration(s.entry.Seconds * float64(time.Second))}
		}
	}
	return exp.MergeOutcomes(exp.DecomposeSuite(c.sel), got), nil
}

// Close releases the journal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journal.Close()
}
