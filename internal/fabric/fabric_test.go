package fabric

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"explink/internal/api"
	"explink/internal/core"
	"explink/internal/exp"
	"explink/internal/runctl"
	"explink/internal/serve"
	"explink/internal/stats"
)

// testSuite is a tiny real suite (the two cheapest experiments): fast enough
// to run for real in end-to-end tests, real enough to exercise the registry.
func testSuite(t *testing.T) Suite {
	t.Helper()
	s, err := SuiteOf([]string{"fig10", "fig12"}, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fakeReport builds a minimal valid completion for the named experiment.
func fakeReport(t *testing.T, name string) []byte {
	t.Helper()
	rep := stats.NewReport(name)
	rep.Note("synthetic")
	raw, _, err := stats.MarshalSanitized(rep)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newTestCoordinator(t *testing.T, journal string) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{Suite: testSuite(t), JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSuiteFingerprint(t *testing.T) {
	a := testSuite(t)
	if a.Fingerprint() != testSuite(t).Fingerprint() {
		t.Fatal("equal suites must fingerprint equally")
	}
	b := a
	b.Quick = false
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fidelity change must change the fingerprint")
	}
	c := a
	c.Seed = 7
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("seed change must change the fingerprint")
	}
}

func TestCoordinatorLeaseCompleteDone(t *testing.T) {
	ctx := context.Background()
	c := newTestCoordinator(t, "")

	// Lease both units: sequence order, distinct leases.
	l0, err := c.Lease(ctx, "w0")
	if err != nil || l0.Status != api.WorkStatusUnit || l0.Unit.Seq != 0 {
		t.Fatalf("first lease = %+v, %v", l0, err)
	}
	if !l0.Unit.Quick || l0.Unit.Seed != 1 || l0.Unit.Replicas != 1 {
		t.Fatalf("unit must carry suite fidelity: %+v", l0.Unit)
	}
	l1, err := c.Lease(ctx, "w1")
	if err != nil || l1.Status != api.WorkStatusUnit || l1.Unit.Seq != 1 {
		t.Fatalf("second lease = %+v, %v", l1, err)
	}
	if l0.Lease == l1.Lease {
		t.Fatal("lease ids must be distinct")
	}

	// Everything leased: a third worker waits.
	l2, err := c.Lease(ctx, "w2")
	if err != nil || l2.Status != api.WorkStatusWait || l2.RetrySeconds <= 0 {
		t.Fatalf("exhausted lease = %+v, %v", l2, err)
	}

	// Heartbeat keeps a live lease, rejects a bogus one.
	if hb, _ := c.Heartbeat(ctx, l0.Lease); hb.Status != api.WorkStatusOK {
		t.Fatalf("heartbeat live lease = %+v", hb)
	}
	if hb, _ := c.Heartbeat(ctx, "nope"); hb.Status != api.WorkStatusUnknown {
		t.Fatalf("heartbeat bogus lease = %+v", hb)
	}

	// Complete both; the second completion reports Done.
	r0, err := c.Complete(ctx, api.WorkCompleteRequest{
		Lease: l0.Lease, Seq: 0, Name: l0.Unit.Name, Seconds: 0.5, Report: fakeReport(t, l0.Unit.Name)})
	if err != nil || r0.Status != api.WorkStatusAccepted || r0.Done {
		t.Fatalf("first complete = %+v, %v", r0, err)
	}
	r1, err := c.Complete(ctx, api.WorkCompleteRequest{
		Lease: l1.Lease, Seq: 1, Name: l1.Unit.Name, Report: fakeReport(t, l1.Unit.Name)})
	if err != nil || r1.Status != api.WorkStatusAccepted || !r1.Done {
		t.Fatalf("last complete = %+v, %v", r1, err)
	}
	if !c.Done() {
		t.Fatal("coordinator must be done after the last completion")
	}
	if l, _ := c.Lease(ctx, "w3"); l.Status != api.WorkStatusDone {
		t.Fatalf("post-done lease = %+v", l)
	}

	// A duplicate completion is acknowledged as stale, not an error.
	rDup, err := c.Complete(ctx, api.WorkCompleteRequest{Seq: 0, Name: l0.Unit.Name, Report: fakeReport(t, l0.Unit.Name)})
	if err != nil || rDup.Status != api.WorkStatusStale {
		t.Fatalf("duplicate complete = %+v, %v", rDup, err)
	}

	// Outcomes merge in registry order with the journaled wall time.
	ocs, err := c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ocs) != 2 || ocs[0].Err != nil || ocs[1].Err != nil {
		t.Fatalf("outcomes = %+v", ocs)
	}
	if ocs[0].Rep.Name != l0.Unit.Name || ocs[0].Elapsed != 500*time.Millisecond {
		t.Fatalf("outcome 0 = %+v", ocs[0])
	}

	// Malformed completions are config errors.
	_, err = c.Complete(ctx, api.WorkCompleteRequest{Seq: 0, Name: l0.Unit.Name})
	if !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("report-less completion error = %v", err)
	}
	_, err = c.Complete(ctx, api.WorkCompleteRequest{Seq: 0, Name: "wrong", Report: fakeReport(t, "wrong")})
	if !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("name-mismatched completion error = %v", err)
	}
}

func TestLeaseExpiryReissue(t *testing.T) {
	ctx := context.Background()
	c := newTestCoordinator(t, "")
	base := time.Now()
	clock := base
	c.now = func() time.Time { return clock }

	l0, _ := c.Lease(ctx, "doomed")
	if l0.Status != api.WorkStatusUnit {
		t.Fatalf("lease = %+v", l0)
	}

	// A heartbeat inside the TTL extends the deadline...
	clock = base.Add(10 * time.Second)
	if hb, _ := c.Heartbeat(ctx, l0.Lease); hb.Status != api.WorkStatusOK {
		t.Fatalf("in-TTL heartbeat = %+v", hb)
	}
	// ...so the unit is still held one original-TTL later.
	clock = base.Add(20 * time.Second)
	if l, _ := c.Lease(ctx, "other"); l.Status != api.WorkStatusUnit && l.Unit != nil && l.Unit.Seq == 0 {
		t.Fatalf("extended lease was reclaimed early: %+v", l)
	}

	// Heartbeats stop; past the deadline the unit is re-issued to a new
	// worker and the dead worker's lease is disowned.
	clock = base.Add(40 * time.Second)
	l1, _ := c.Lease(ctx, "successor")
	if l1.Status != api.WorkStatusUnit || l1.Unit.Seq != 0 {
		t.Fatalf("expired unit not re-issued: %+v", l1)
	}
	if l1.Lease == l0.Lease {
		t.Fatal("re-issue must mint a fresh lease id")
	}
	if hb, _ := c.Heartbeat(ctx, l0.Lease); hb.Status != api.WorkStatusUnknown {
		t.Fatalf("expired lease heartbeat = %+v", hb)
	}

	// The late completion from the doomed worker still lands (results are
	// deterministic, first completion wins).
	r, err := c.Complete(ctx, api.WorkCompleteRequest{Lease: l0.Lease, Seq: 0, Name: l0.Unit.Name, Report: fakeReport(t, l0.Unit.Name)})
	if err != nil || r.Status != api.WorkStatusAccepted {
		t.Fatalf("late completion = %+v, %v", r, err)
	}
	// The successor's duplicate is stale.
	r2, err := c.Complete(ctx, api.WorkCompleteRequest{Lease: l1.Lease, Seq: 0, Name: l1.Unit.Name, Report: fakeReport(t, l1.Unit.Name)})
	if err != nil || r2.Status != api.WorkStatusStale {
		t.Fatalf("successor completion = %+v, %v", r2, err)
	}
}

func TestCancelledCompletionRequeues(t *testing.T) {
	ctx := context.Background()
	c := newTestCoordinator(t, "")
	l0, _ := c.Lease(ctx, "drained")
	r, err := c.Complete(ctx, api.WorkCompleteRequest{
		Lease: l0.Lease, Seq: 0, Name: l0.Unit.Name,
		Error: api.ErrorBodyOf(fmt.Errorf("worker drained: %w", runctl.ErrCancelled))})
	if err != nil || r.Status != api.WorkStatusAccepted || r.Done {
		t.Fatalf("cancelled completion = %+v, %v", r, err)
	}
	// The unit went back to pending: it leases again immediately.
	l1, _ := c.Lease(ctx, "next")
	if l1.Status != api.WorkStatusUnit || l1.Unit.Seq != 0 {
		t.Fatalf("re-queued unit not leased: %+v", l1)
	}

	// A terminal (non-cancelled) failure, by contrast, finishes the unit.
	r2, err := c.Complete(ctx, api.WorkCompleteRequest{
		Lease: l1.Lease, Seq: 0, Name: l1.Unit.Name,
		Error: api.ErrorBodyOf(fmt.Errorf("sim wedged: %w", runctl.ErrDeadlock))})
	if err != nil || r2.Status != api.WorkStatusAccepted {
		t.Fatalf("terminal failure completion = %+v, %v", r2, err)
	}
	if l, _ := c.Lease(ctx, "idle"); l.Status != api.WorkStatusUnit || l.Unit.Seq != 1 {
		t.Fatalf("failed unit must not re-lease (next lease should be unit 1): %+v", l)
	}
	ocs, err := c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ocs[0].Err, runctl.ErrDeadlock) {
		t.Fatalf("failed outcome must reconstruct its taxonomy kind, got %v", ocs[0].Err)
	}
}

func TestJournalResume(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "sweep.jnl")

	// First incarnation completes unit 0, then "crashes" (Close without
	// finishing).
	c1 := newTestCoordinator(t, path)
	l0, _ := c1.Lease(ctx, "w0")
	if _, err := c1.Complete(ctx, api.WorkCompleteRequest{
		Lease: l0.Lease, Seq: 0, Name: l0.Unit.Name, Seconds: 1.5, Report: fakeReport(t, l0.Unit.Name)}); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Second incarnation resumes: unit 0 is terminal, only unit 1 leases.
	c2 := newTestCoordinator(t, path)
	if got := c2.Resumed(); got != 1 {
		t.Fatalf("Resumed() = %d, want 1", got)
	}
	l1, _ := c2.Lease(ctx, "w1")
	if l1.Status != api.WorkStatusUnit || l1.Unit.Seq != 1 {
		t.Fatalf("resumed lease = %+v, want unit 1", l1)
	}
	if r, err := c2.Complete(ctx, api.WorkCompleteRequest{
		Lease: l1.Lease, Seq: 1, Name: l1.Unit.Name, Report: fakeReport(t, l1.Unit.Name)}); err != nil || !r.Done {
		t.Fatalf("finishing completion = %+v, %v", r, err)
	}
	ocs, err := c2.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	if ocs[0].Err != nil || ocs[1].Err != nil {
		t.Fatalf("merged outcomes after resume = %+v", ocs)
	}
	if ocs[0].Elapsed != 1500*time.Millisecond {
		t.Fatalf("resumed outcome lost its wall time: %v", ocs[0].Elapsed)
	}

	// A third incarnation of the finished suite starts done.
	c3 := newTestCoordinator(t, path)
	if !c3.Done() || c3.Resumed() != 2 {
		t.Fatalf("finished journal must resume done (resumed=%d)", c3.Resumed())
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jnl")
	c1 := newTestCoordinator(t, path)
	c1.Close()

	other, err := SuiteOf([]string{"fig10", "fig12"}, false, 1, 1) // quick differs
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewCoordinator(CoordinatorConfig{Suite: other, JournalPath: path})
	if !errors.Is(err, runctl.ErrConfig) {
		t.Fatalf("mismatched journal error = %v, want config", err)
	}
}

// localOutcomes runs the test suite in-process, the reference for merge
// byte-identity.
func localOutcomes(t *testing.T, s Suite) []exp.Outcome {
	t.Helper()
	sel, err := s.selection()
	if err != nil {
		t.Fatal(err)
	}
	store, _ := core.NewPlacementStore("")
	opts := s.options()
	opts.Store = store
	return exp.RunAll(context.Background(), sel, opts, 1, nil)
}

// renderAll is expbench's stdout format, the byte-identity contract.
func renderAll(ocs []exp.Outcome) string {
	var b strings.Builder
	for _, oc := range ocs {
		if oc.Err != nil {
			continue
		}
		fmt.Fprintf(&b, "### %s — %s\n\n%s\n", oc.Exp.Name, oc.Exp.Desc, oc.Rep.Render())
	}
	return b.String()
}

func TestWorkerSweepByteIdenticalToLocalRun(t *testing.T) {
	suite := testSuite(t)
	want := renderAll(localOutcomes(t, suite))
	if want == "" {
		t.Fatal("reference run produced no output")
	}

	c := newTestCoordinator(t, "")
	store, _ := core.NewPlacementStore("")
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &Worker{Client: c, ID: fmt.Sprintf("w%d", i), Store: store}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(context.Background()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	wg.Wait()
	if !c.Done() {
		t.Fatal("suite not done after workers exited")
	}
	ocs, err := c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(ocs); got != want {
		t.Fatalf("fabric output differs from local run:\n--- local ---\n%s\n--- fabric ---\n%s", want, got)
	}
}

func TestHTTPWorkerSweepByteIdenticalToLocalRun(t *testing.T) {
	suite := testSuite(t)
	want := renderAll(localOutcomes(t, suite))

	c := newTestCoordinator(t, "")
	srv := serve.New(serve.Config{Coordinator: c})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	store, _ := core.NewPlacementStore("")
	w := &Worker{Client: &HTTPClient{Base: ts.URL}, ID: "remote", Store: store}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ocs, err := c.Outcomes()
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(ocs); got != want {
		t.Fatalf("HTTP fabric output differs from local run:\n--- local ---\n%s\n--- fabric ---\n%s", want, got)
	}
}

func TestWorkerDrainCompletesAsCancelled(t *testing.T) {
	c := newTestCoordinator(t, "")
	store, _ := core.NewPlacementStore("")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // drained before it starts
	w := &Worker{Client: c, ID: "drained", Store: store}
	if err := w.Run(ctx); !errors.Is(err, runctl.ErrCancelled) {
		t.Fatalf("drained worker error = %v, want cancelled", err)
	}
	// Nothing was consumed: a fresh worker still finds both units pending.
	pending, leased, done, failed := c.Counts()
	if pending != 2 || leased != 0 || done != 0 || failed != 0 {
		t.Fatalf("counts after drained worker = %d/%d/%d/%d", pending, leased, done, failed)
	}
}
