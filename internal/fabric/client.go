package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"explink/internal/api"
)

// HTTPClient is the remote-worker side of the fabric protocol: a Client that
// speaks to a coordinator's /v1/work endpoints over the service layer's
// HTTP/JSON surface. The zero value plus a Base URL is usable.
type HTTPClient struct {
	// Base is the coordinator root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// Lease implements Client.
func (c *HTTPClient) Lease(ctx context.Context, worker string) (api.WorkLeaseResponse, error) {
	var resp api.WorkLeaseResponse
	err := c.post(ctx, "work/lease", api.WorkLeaseRequest{Worker: worker}, &resp)
	return resp, err
}

// Heartbeat implements Client.
func (c *HTTPClient) Heartbeat(ctx context.Context, lease string) (api.WorkHeartbeatResponse, error) {
	var resp api.WorkHeartbeatResponse
	err := c.post(ctx, "work/heartbeat", api.WorkHeartbeatRequest{Lease: lease}, &resp)
	return resp, err
}

// Complete implements Client.
func (c *HTTPClient) Complete(ctx context.Context, req api.WorkCompleteRequest) (api.WorkCompleteResponse, error) {
	var resp api.WorkCompleteResponse
	err := c.post(ctx, "work/complete", req, &resp)
	return resp, err
}

// post runs one JSON round-trip against /<SchemaVersion>/<path>. Non-2xx
// responses carry {"error": {kind, message}} bodies; the kind is mapped back
// onto the runctl sentinels via ErrorBody.Err so callers classify remote
// failures exactly like local ones.
func (c *HTTPClient) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("fabric: encode %s: %w", path, err)
	}
	url := strings.TrimRight(c.Base, "/") + "/" + api.SchemaVersion + "/" + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	res, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", path, err)
	}
	defer res.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(res.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", path, err)
	}
	if res.StatusCode/100 != 2 {
		var eb struct {
			Error *api.ErrorBody `json:"error"`
		}
		if json.Unmarshal(buf, &eb) == nil && eb.Error != nil {
			return fmt.Errorf("fabric: %s: %w", path, eb.Error.Err())
		}
		return fmt.Errorf("fabric: %s: HTTP %d: %s", path, res.StatusCode, strings.TrimSpace(string(buf)))
	}
	if err := json.Unmarshal(buf, out); err != nil {
		return fmt.Errorf("fabric: decode %s: %w", path, err)
	}
	return nil
}
