package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"explink/internal/api"
	"explink/internal/runctl"
)

// The checkpoint journal is an append-only JSON-lines file: one header line
// naming the suite (fingerprint + human-readable spec), then one line per
// completed unit. Append ordering is completion order, not unit order — the
// merge step reorders by Seq. Durability is per-line: every append is
// followed by a Sync, so a coordinator killed between units loses at most
// the unit completing at that instant (which a restart simply re-leases). A
// torn final line — the kill landing mid-write — is detected by JSON parse
// failure and dropped on load.

// journalHeader is the first line of a journal file.
type journalHeader struct {
	Version     string   `json:"version"`
	Fingerprint string   `json:"fingerprint"`
	Experiments []string `json:"experiments"`
	Quick       bool     `json:"quick,omitempty"`
	Seed        uint64   `json:"seed"`
	Replicas    int      `json:"replicas"`
}

// journalEntry is one completed unit. Exactly one of Report or Error is set
// (the same invariant as api.WorkCompleteRequest, which it mirrors).
type journalEntry struct {
	Seq     int             `json:"seq"`
	Name    string          `json:"name"`
	Seconds float64         `json:"seconds,omitempty"`
	Report  json.RawMessage `json:"report,omitempty"`
	Error   *api.ErrorBody  `json:"error,omitempty"`
}

// journal is the coordinator's checkpoint writer. A nil journal (no -journal
// flag) makes every method a no-op: the campaign still runs, it just cannot
// resume.
type journal struct {
	f *os.File
}

// openJournal opens or creates the checkpoint at path and returns the
// already-completed entries. A fresh file gets the suite header; an existing
// file must carry a matching fingerprint — a journal from a different suite
// (or fabric generation) is a config error, never silently merged. Corrupt
// trailing lines (a coordinator killed mid-append) are dropped; corrupt
// interior lines are skipped the same way, costing only a re-run of those
// units.
func openJournal(path string, suite Suite) (*journal, []journalEntry, error) {
	if path == "" {
		return nil, nil, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: journal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal: %w", err)
	}
	j := &journal{f: f}
	if info.Size() == 0 {
		hdr := journalHeader{
			Version:     fabricVersion,
			Fingerprint: suite.Fingerprint(),
			Experiments: suite.Experiments,
			Quick:       suite.Quick,
			Seed:        suite.Seed,
			Replicas:    suite.Replicas,
		}
		if err := j.appendLine(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, nil, nil
	}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 32<<20)
	if !sc.Scan() {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s: unreadable header: %w", path, runctl.ErrConfig)
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s: corrupt header: %v: %w", path, err, runctl.ErrConfig)
	}
	if hdr.Fingerprint != suite.Fingerprint() {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s records a different suite (fingerprint %.12s, want %.12s): %w",
			path, hdr.Fingerprint, suite.Fingerprint(), runctl.ErrConfig)
	}
	var entries []journalEntry
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // torn or corrupt line: drop, the unit re-runs
		}
		if e.Seq < 0 || e.Seq >= len(suite.Experiments) || suite.Experiments[e.Seq] != e.Name {
			continue // entry does not match the suite layout: drop
		}
		if (len(e.Report) == 0) == (e.Error == nil) {
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s: %w", path, err)
	}
	return j, entries, nil
}

// append records one completed unit and syncs it to disk.
func (j *journal) append(e journalEntry) error {
	if j == nil {
		return nil
	}
	return j.appendLine(e)
}

func (j *journal) appendLine(v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("fabric: journal: %w", err)
	}
	if _, err := j.f.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("fabric: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fabric: journal: %w", err)
	}
	return nil
}

// Close releases the journal file.
func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
