package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"explink/internal/api"
	"explink/internal/core"
	"explink/internal/exp"
	"explink/internal/obs"
	"explink/internal/runctl"
	"explink/internal/stats"
)

// Client is the worker's view of a coordinator: the lease/heartbeat/complete
// triple. *Coordinator implements it directly (in-process workers), and
// HTTPClient implements it over the /v1/work endpoints (remote workers) —
// the worker loop cannot tell the difference.
type Client interface {
	Lease(ctx context.Context, worker string) (api.WorkLeaseResponse, error)
	Heartbeat(ctx context.Context, lease string) (api.WorkHeartbeatResponse, error)
	Complete(ctx context.Context, req api.WorkCompleteRequest) (api.WorkCompleteResponse, error)
}

// Worker is one sweep-fabric executor: a thin loop that leases units, runs
// them through the shared experiment registry, and streams outcomes back.
// Zero fields take defaults; Client is required.
type Worker struct {
	// Client reaches the coordinator.
	Client Client
	// ID self-identifies the worker in leases and logs.
	ID string
	// Store is the local placement cache, typically opened on a -cache-dir
	// shared by the whole fleet: content addressing makes every worker's
	// solves visible to every other worker for free.
	Store *core.PlacementStore
	// Events, when non-nil, receives worker lifecycle events as JSON lines.
	Events *obs.EventWriter
	// MaxFailures bounds consecutive coordinator round-trip failures before
	// the worker gives up (default 10; the backoff between attempts makes
	// that roughly half a minute of coordinator absence).
	MaxFailures int
}

// Run leases and executes units until the coordinator reports the suite
// done (nil), ctx dies (an error matching runctl.ErrCancelled — the unit in
// flight completes as cancelled first, so the coordinator re-queues it
// immediately instead of waiting out the lease), or the coordinator stays
// unreachable past MaxFailures.
func (w *Worker) Run(ctx context.Context) error {
	maxFailures := w.MaxFailures
	if maxFailures <= 0 {
		maxFailures = 10
	}
	failures := 0
	for {
		if ctx.Err() != nil {
			return runctl.Cancelled(ctx)
		}
		resp, err := w.Client.Lease(ctx, w.ID)
		if err != nil {
			failures++
			if failures >= maxFailures {
				return fmt.Errorf("fabric: worker %s: coordinator unreachable after %d attempts: %w", w.ID, failures, err)
			}
			if !sleepCtx(ctx, backoff(failures)) {
				return runctl.Cancelled(ctx)
			}
			continue
		}
		failures = 0
		switch resp.Status {
		case api.WorkStatusDone:
			w.Events.Emit("worker.done", map[string]any{"worker": w.ID})
			return nil
		case api.WorkStatusWait:
			delay := time.Duration(resp.RetrySeconds * float64(time.Second))
			if delay <= 0 {
				delay = 500 * time.Millisecond
			}
			if !sleepCtx(ctx, delay) {
				return runctl.Cancelled(ctx)
			}
		case api.WorkStatusUnit:
			done, err := w.runUnit(ctx, resp)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		default:
			return fmt.Errorf("fabric: worker %s: unknown lease status %q", w.ID, resp.Status)
		}
	}
}

// runUnit executes one leased unit under a heartbeat, then reports the
// outcome (retrying the completion RPC — it is the one message that must
// not be lost while the coordinator lives). The bool reports whether the
// coordinator declared the suite done with this completion.
func (w *Worker) runUnit(ctx context.Context, lease api.WorkLeaseResponse) (bool, error) {
	unit := lease.Unit
	w.Events.Emit("worker.unit", map[string]any{"worker": w.ID, "seq": unit.Seq, "name": unit.Name})

	e, ok := exp.Lookup(unit.Name)
	var oc exp.Outcome
	if !ok {
		oc = exp.Outcome{Err: fmt.Errorf("unknown experiment %q: %w", unit.Name, runctl.ErrConfig)}
	} else {
		// The run context is the worker context plus lease loss: when the
		// coordinator no longer recognizes the lease (expired and reassigned,
		// or a coordinator restart), finishing the run would waste work that
		// someone else now owns, so the heartbeat loop cancels it.
		runCtx, cancel := context.WithCancelCause(ctx)
		stopHB := w.startHeartbeat(runCtx, cancel, lease)
		opts := exp.DefaultOptions()
		opts.Quick = unit.Quick
		opts.Seed = unit.Seed
		opts.Replicas = unit.Replicas
		opts.Store = w.Store
		oc = exp.RunUnit(runCtx, exp.Unit{Seq: unit.Seq, Exp: e}, opts)
		stopHB()
		cancel(nil)
	}

	req := api.WorkCompleteRequest{Lease: lease.Lease, Seq: unit.Seq, Name: unit.Name, Seconds: oc.Elapsed.Seconds()}
	if oc.Err != nil {
		req.Error = api.ErrorBodyOf(oc.Err)
	} else {
		raw, _, err := stats.MarshalSanitized(oc.Rep)
		if err != nil {
			req.Error = api.ErrorBodyOf(err)
		} else {
			req.Report = raw
		}
	}

	// The completion retry loop deliberately ignores ctx for a bounded
	// window: a drained worker still wants its cancelled completion
	// delivered so the coordinator re-queues the unit now rather than after
	// a lease timeout.
	var lastErr error
	for attempt := 1; attempt <= 5; attempt++ {
		resp, err := w.Client.Complete(context.Background(), req)
		if err == nil {
			w.Events.Emit("worker.complete", map[string]any{
				"worker": w.ID, "seq": unit.Seq, "name": unit.Name,
				"failed": req.Error != nil, "status": resp.Status})
			return resp.Done, nil
		}
		lastErr = err
		time.Sleep(backoff(attempt))
	}
	return false, fmt.Errorf("fabric: worker %s: completion of unit %d lost: %w", w.ID, unit.Seq, lastErr)
}

// startHeartbeat keeps the lease alive at TTL/3 cadence while the unit runs;
// it cancels the run (cause: cancelled) when the coordinator disowns the
// lease. The returned stop function halts the loop.
func (w *Worker) startHeartbeat(ctx context.Context, cancel context.CancelCauseFunc, lease api.WorkLeaseResponse) func() {
	ttl := time.Duration(lease.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				resp, err := w.Client.Heartbeat(ctx, lease.Lease)
				if err == nil && resp.Status == api.WorkStatusUnknown {
					cancel(fmt.Errorf("fabric: lease %s disowned by coordinator: %w", lease.Lease, runctl.ErrCancelled))
					return
				}
				// Transport errors are tolerated: the lease TTL is the
				// authority on liveness, and a transient coordinator blip
				// should not abort a nearly-finished solve.
			}
		}
	}()
	return func() { close(stop) }
}

// backoff is the retry delay after the attempt-th consecutive failure,
// linear and capped at 5s.
func backoff(attempt int) time.Duration {
	d := time.Duration(attempt) * 500 * time.Millisecond
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// sleepCtx sleeps d or until ctx dies, reporting whether the full sleep
// happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// decodeReport parses a journaled report back into its structured form.
func decodeReport(raw json.RawMessage) (*stats.Report, error) {
	var rep stats.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("corrupt report: %w", err)
	}
	return &rep, nil
}
