// Package fabric is the distributed, resumable sweep layer: it scales an
// experiment-suite run (exp.RunAll) from one process to a coordinator/worker
// fleet without changing what the suite computes.
//
// The coordinator decomposes a suite into work units (exp.DecomposeSuite),
// leases them to workers over the service layer's /v1/work endpoints with
// heartbeat-extended deadlines, journals every completed unit to a
// checkpoint file, and merges results back into the registry-order outcome
// list a local run would have produced — byte-identical output by
// construction, because units are whole experiments and experiment reports
// are deterministic.
//
// Workers are thin loops over the existing internal/api builders: lease a
// unit, run it through the shared experiment registry with a local
// placement store (pointed at a shared -cache-dir, the content-addressed
// SHA-256 keys make cross-worker deduplication free), stream the outcome
// back, repeat. Fault tolerance is lease-based: a worker that dies mid-unit
// stops heartbeating, its lease expires, and the unit is re-issued — the
// failure costs one unit, not the campaign. A killed coordinator resumes
// from its journal with only the unfinished units re-leased; completed
// solves sitting in the shared cache-dir make even re-leased work cheap.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"explink/internal/api"
	"explink/internal/exp"
)

// fabricVersion salts the suite fingerprint: any change to unit
// decomposition or journal semantics that could make an old checkpoint mean
// something different must bump it, so stale journals are rejected instead
// of silently merged.
const fabricVersion = "explink/fabric/v1"

// Suite describes one sweep campaign: which experiments, at what fidelity.
// It mirrors api.ExpRequest (the single-process entry surface) so the two
// stay interchangeable.
type Suite struct {
	// Experiments are the resolved registry names in registry order.
	Experiments []string
	Quick       bool
	Seed        uint64
	Replicas    int
}

// SuiteOf resolves an experiment selection into a Suite, using the same
// selector as the expbench -exp flag and the /v1/exp endpoint, so the fabric
// accepts exactly the names a local run would.
func SuiteOf(names []string, quick bool, seed uint64, replicas int) (Suite, error) {
	sel, err := api.SelectExperiments(names)
	if err != nil {
		return Suite{}, err
	}
	s := Suite{Quick: quick, Seed: seed, Replicas: replicas}
	for _, e := range sel {
		s.Experiments = append(s.Experiments, e.Name)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	return s, nil
}

// selection resolves the suite back to registry entries.
func (s Suite) selection() ([]exp.Experiment, error) {
	return api.SelectExperiments(s.Experiments)
}

// options builds the exp.Options a unit of this suite runs with.
func (s Suite) options() exp.Options {
	opts := exp.DefaultOptions()
	opts.Quick = s.Quick
	opts.Seed = s.Seed
	opts.Replicas = s.Replicas
	return opts
}

// Fingerprint is the canonical identity of a suite: sha256 over a preimage
// covering everything that determines the unit list and its results. Two
// coordinators with the same fingerprint interchangeably own the same
// campaign; a journal records it so a checkpoint can never be replayed into
// a different suite.
func (s Suite) Fingerprint() string {
	var b strings.Builder
	b.WriteString(fabricVersion)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "quick=%t\nseed=%d\nreplicas=%d\nexperiments=%s\n",
		s.Quick, s.Seed, s.Replicas, strings.Join(s.Experiments, ","))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// unitOf builds the wire form of one decomposed unit.
func (s Suite) unitOf(u exp.Unit) *api.WorkUnit {
	return &api.WorkUnit{Seq: u.Seq, Name: u.Exp.Name, Quick: s.Quick, Seed: s.Seed, Replicas: s.Replicas}
}
