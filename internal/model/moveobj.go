package model

import (
	"explink/internal/route"
	"explink/internal/topo"
)

// IncObjective is the move-aware counterpart of RowObjective and
// WeightedRowObjective for connection-matrix searches: it implements the
// annealer's move protocol (anneal.MoveObjective) on top of a
// route.Incremental, so a single-bit candidate re-routes only the sources
// whose shortest paths can cross the changed spans instead of the whole row.
//
// Values are bit-identical to the scratch-backed closures on the decoded row
// — including the optional worst-case blend used by the core solver, computed
// with the same (1-w)·mean + w·max expression — so searches driven by an
// IncObjective follow exactly the same trajectory as full-evaluation runs.
//
// An IncObjective owns routing state and is not safe for concurrent use;
// create one per goroutine (per SA run, per solver line).
type IncObjective struct {
	inc   *route.Incremental
	m     *topo.ConnMatrix // private mirror of the annealer's current state
	w     [][]float64      // traffic weights; nil scores the uniform mean
	worst float64          // worst-case blend weight in [0, 1]; 0 = mean only

	pending  int  // bit index of the open move, if any
	open     bool // strict Flip -> Commit/Revert protocol guard
	rem, add []topo.Span
}

// NewIncObjective returns an incremental objective for the given edge-cost
// model, scoring states by the uniform mean row head latency (RowMean).
func NewIncObjective(p Params) *IncObjective {
	return &IncObjective{inc: route.NewIncremental(p.Route())}
}

// WithWeights switches scoring to the traffic-weighted mean (WeightedRowMean)
// against w, with the same nil/all-zero uniform fallback. It returns the
// receiver for chaining.
func (o *IncObjective) WithWeights(w [][]float64) *IncObjective {
	o.w = w
	return o
}

// WithWorstBlend blends the worst-case pair latency into the score:
// (1-wgt)·mean + wgt·max, the core solver's WorstWeight extension. Values
// outside [0, 1] are clamped. Weighted scoring and the blend are mutually
// exclusive; the blend applies only to the uniform objective.
func (o *IncObjective) WithWorstBlend(wgt float64) *IncObjective {
	if wgt < 0 {
		wgt = 0
	}
	if wgt > 1 {
		wgt = 1
	}
	o.worst = wgt
	return o
}

// Init adopts the matrix as the current state (cloning it — the annealer owns
// the original) and returns its objective value.
func (o *IncObjective) Init(m *topo.ConnMatrix) float64 {
	o.m = m.Clone()
	o.inc.Reset(o.m.Row())
	o.open = false
	return o.score()
}

// Flip applies the single-bit move FlipAt(bit): the mirror matrix computes
// which spans the flip removes and adds (at most two on one side, one on the
// other), and the incremental router's state is updated with just that delta.
func (o *IncObjective) Flip(bit int) {
	if o.open {
		panic("model: IncObjective.Flip with a move already open")
	}
	o.rem, o.add = o.m.DeltaAt(bit, o.rem[:0], o.add[:0])
	o.m.FlipAt(bit)
	o.inc.Update(o.rem, o.add)
	o.pending, o.open = bit, true
}

// Eval returns the objective value of the tracked state, syncing only the
// dirty region accumulated since the last evaluation.
func (o *IncObjective) Eval() float64 { return o.score() }

// Commit accepts the pending move.
func (o *IncObjective) Commit() {
	if !o.open {
		panic("model: IncObjective.Commit without an open move")
	}
	o.inc.Commit()
	o.open = false
}

// Revert undoes the pending move.
func (o *IncObjective) Revert() {
	if !o.open {
		panic("model: IncObjective.Revert without an open move")
	}
	o.m.FlipAt(o.pending)
	o.inc.Revert()
	o.open = false
}

func (o *IncObjective) score() float64 {
	if o.w != nil {
		return o.inc.WeightedMean(o.w)
	}
	if o.worst == 0 {
		return o.inc.Mean()
	}
	mean, max := o.inc.MeanMax()
	return (1-o.worst)*mean + o.worst*max
}
