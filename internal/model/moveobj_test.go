package model_test

import (
	"context"
	"testing"

	"explink/internal/anneal"
	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/stats"
	"explink/internal/topo"
)

// runPair runs the same annealing search twice — once through the full-eval
// Objective path, once through the move-aware IncObjective — from identical
// RNG streams, and asserts the two Results are bit-for-bit identical: same
// objective, same best matrix and row, same eval/accept/memo accounting. This
// is the contract that keeps SA trajectories, memo behavior and
// PlacementStore keys unchanged by the incremental path.
func runPair(t *testing.T, init *topo.ConnMatrix, obj anneal.Objective, mo anneal.MoveObjective, seed uint64) {
	t.Helper()
	sch := anneal.DefaultSchedule().WithMoves(2000)
	full := anneal.Minimize(context.Background(), init, obj, sch, stats.NewRNG(seed), true)
	inc := anneal.MinimizeMove(context.Background(), init, mo, sch, stats.NewRNG(seed), true)
	if full.Obj != inc.Obj {
		t.Fatalf("Obj: full %v, inc %v", full.Obj, inc.Obj)
	}
	if !full.Matrix.Equal(inc.Matrix) {
		t.Fatalf("best matrices differ:\nfull %v\ninc  %v", full.Matrix, inc.Matrix)
	}
	if !full.Row.Equal(inc.Row) {
		t.Fatalf("best rows differ: full %v, inc %v", full.Row, inc.Row)
	}
	if full.Evals != inc.Evals || full.Accepted != inc.Accepted || full.Uphill != inc.Uphill ||
		full.MemoHits != inc.MemoHits || full.MemoMisses != inc.MemoMisses {
		t.Fatalf("accounting differs: full {E:%d A:%d U:%d H:%d M:%d}, inc {E:%d A:%d U:%d H:%d M:%d}",
			full.Evals, full.Accepted, full.Uphill, full.MemoHits, full.MemoMisses,
			inc.Evals, inc.Accepted, inc.Uphill, inc.MemoHits, inc.MemoMisses)
	}
	if len(full.History) != len(inc.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(full.History), len(inc.History))
	}
	for i := range full.History {
		if full.History[i] != inc.History[i] {
			t.Fatalf("history[%d]: full %+v, inc %+v", i, full.History[i], inc.History[i])
		}
	}
}

func randomInit(n, c int, seed uint64) *topo.ConnMatrix {
	m := topo.NewConnMatrix(n, c)
	rng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	m.Randomize(func() bool { return rng.Bool(0.5) })
	return m
}

func TestIncObjectiveBitIdenticalMean(t *testing.T) {
	p := model.DefaultParams()
	for _, size := range []struct{ n, c int }{{4, 2}, {8, 3}, {16, 4}} {
		init := randomInit(size.n, size.c, uint64(size.n))
		runPair(t, init, model.RowObjective(p), model.NewIncObjective(p), 42+uint64(size.n))
	}
}

func TestIncObjectiveBitIdenticalWeighted(t *testing.T) {
	p := model.DefaultParams()
	for _, size := range []struct{ n, c int }{{8, 3}, {16, 4}} {
		w := make([][]float64, size.n)
		for i := range w {
			w[i] = make([]float64, size.n)
			for j := range w[i] {
				w[i][j] = float64((i*31+j*17)%9) * 0.5
			}
		}
		init := randomInit(size.n, size.c, 7*uint64(size.n))
		runPair(t, init, model.WeightedRowObjective(p, w),
			model.NewIncObjective(p).WithWeights(w), 99+uint64(size.n))
	}
}

func TestIncObjectiveBitIdenticalWorstBlend(t *testing.T) {
	p := model.DefaultParams()
	for _, blend := range []float64{0.25, 1} {
		scratch := route.NewScratch()
		rp := p.Route()
		obj := func(r topo.Row) float64 {
			mean, max := scratch.MeanMax(r, rp)
			return (1-blend)*mean + blend*max
		}
		init := randomInit(12, 3, uint64(blend*8))
		runPair(t, init, obj, model.NewIncObjective(p).WithWorstBlend(blend), 7)
	}
}

func TestIncObjectiveProtocolPanics(t *testing.T) {
	p := model.DefaultParams()
	for name, fn := range map[string]func(o *model.IncObjective){
		"flip twice":          func(o *model.IncObjective) { o.Flip(0); o.Flip(1) },
		"commit without flip": func(o *model.IncObjective) { o.Commit() },
		"revert without flip": func(o *model.IncObjective) { o.Revert() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			o := model.NewIncObjective(p)
			o.Init(topo.NewConnMatrix(8, 3))
			fn(o)
		}()
	}
}

// TestIncObjectiveDoesNotRetainInit pins the Init ownership contract: mutating
// the annealer's matrix after Init must not disturb the objective's tracking.
func TestIncObjectiveDoesNotRetainInit(t *testing.T) {
	p := model.DefaultParams()
	m := topo.NewConnMatrix(8, 3)
	o := model.NewIncObjective(p)
	base := o.Init(m)
	m.FlipAt(0) // annealer-side mutation, not announced via Flip
	if got := o.Eval(); got != base {
		t.Fatalf("Eval after external mutation = %v, want %v (matrix retained?)", got, base)
	}
}
