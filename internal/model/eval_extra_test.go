package model

import (
	"math"
	"strings"
	"testing"

	"explink/internal/topo"
)

func TestEvalString(t *testing.T) {
	e := Eval{C: 4, Width: 64, Head: 13.12, Ser: 3.2, Total: 16.32}
	s := e.String()
	for _, want := range []string{"C=4", "64b", "16.32"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Eval.String() = %q", s)
		}
	}
}

func TestPairAndMeanHops(t *testing.T) {
	tp := ComputeTopoPaths(topo.Mesh(4), DefaultParams())
	// Mesh hops are Manhattan distances.
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			sx, sy := src%4, src/4
			dx, dy := dst%4, dst/4
			want := abs(sx-dx) + abs(sy-dy)
			if got := tp.PairHops(src, dst); got != want {
				t.Fatalf("hops(%d,%d) = %d, want %d", src, dst, got, want)
			}
		}
	}
	// Mean over all 256 ordered pairs: 2 * rowMeanDistance where the row
	// mean over 16 pairs is 20/16.
	want := 2 * 20.0 / 16.0
	if got := tp.MeanHops(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean hops = %g, want %g", got, want)
	}
	// Single-hop everywhere on the flattened butterfly (off-diagonal).
	fb := ComputeTopoPaths(topo.FlattenedButterfly(4), DefaultParams())
	if got := fb.PairHops(0, 15); got != 2 { // one row hop + one column hop
		t.Fatalf("FB corner hops = %d", got)
	}
}

func TestEvalTopologyErrors(t *testing.T) {
	cfg := DefaultConfig(8)
	if _, err := cfg.EvalTopology(topo.Mesh(4), 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := cfg.EvalTopology(topo.HFB(8), 1); err == nil {
		t.Fatal("over-limit topology accepted")
	}
	if _, err := cfg.EvalTopology(topo.Mesh(8), 1024); err == nil {
		t.Fatal("infeasible width accepted")
	}
}

func TestMaxZeroLoadErrors(t *testing.T) {
	cfg := DefaultConfig(8)
	if _, err := cfg.MaxZeroLoad(topo.Mesh(8), 1<<20); err == nil {
		t.Fatal("infeasible link limit accepted")
	}
}

func TestFlitsForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FlitsFor(128, 0)
}

func TestValidateMixNegativeFraction(t *testing.T) {
	mix := []PacketClass{{Name: "a", Bits: 64, Frac: -0.1}, {Name: "b", Bits: 64, Frac: 1.1}}
	if ValidateMix(mix) == nil {
		t.Fatal("negative fraction accepted")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
