package model

import (
	"fmt"

	"explink/internal/route"
	"explink/internal/topo"
)

// Config bundles everything needed to score a placement: network size,
// timing constants, packet mix and bisection budget.
type Config struct {
	N      int
	Params Params
	Mix    []PacketClass
	BW     Bandwidth
}

// DefaultConfig returns the paper's evaluation setup (Section 5.1) for an
// n x n network.
func DefaultConfig(n int) Config {
	return Config{
		N:      n,
		Params: DefaultParams(),
		Mix:    DefaultMix(),
		BW:     DefaultBandwidth(),
	}
}

// Validate checks the configuration for consistency.
func (cfg Config) Validate() error {
	if cfg.N < 2 {
		return fmt.Errorf("model: network size %d too small", cfg.N)
	}
	if err := cfg.Params.validate(); err != nil {
		return err
	}
	return ValidateMix(cfg.Mix)
}

// Eval is the scored latency of a placement at one link limit.
type Eval struct {
	C     int     // link limit
	Width int     // link width b in bits
	Head  float64 // L_D,avg: average 2D head latency in cycles
	Ser   float64 // L_S,avg: average serialization latency in cycles
	Total float64 // L_avg = Head + Ser (Eq. 2)
}

func (e Eval) String() string {
	return fmt.Sprintf("C=%d b=%db L_D=%.2f L_S=%.2f L=%.2f", e.C, e.Width, e.Head, e.Ser, e.Total)
}

// RowMean returns the average directional head latency over all n² ordered
// pairs of a single row, the objective of the 1D problem P̃(n, C). It uses the
// pooled mean-only routing fast path; single-goroutine hot loops that want to
// skip the pool handshake should hold a route.Scratch via RowObjective.
func RowMean(row topo.Row, p Params) float64 {
	return route.MeanDist(row, p.Route())
}

// RowObjective returns a closure computing RowMean backed by its own routing
// scratch, for allocation-free evaluation in optimizer inner loops. The
// closure is not safe for concurrent use; create one per goroutine.
func RowObjective(p Params) func(topo.Row) float64 {
	s := route.NewScratch()
	rp := p.Route()
	return func(r topo.Row) float64 { return s.MeanDist(r, rp) }
}

// WeightedRowObjective is the traffic-weighted analogue of RowObjective,
// scoring rows by WeightedRowMean against the fixed weight matrix w. The
// closure owns a routing scratch and is not safe for concurrent use.
func WeightedRowObjective(p Params, w [][]float64) func(topo.Row) float64 {
	s := route.NewScratch()
	rp := p.Route()
	return func(r topo.Row) float64 { return s.WeightedMean(r, rp, w) }
}

// EvalRow scores a row placement replicated over the whole n x n network at
// link limit c. By Eq. (5), with identical rows and columns the 2D average
// head latency is twice the row average.
func (cfg Config) EvalRow(row topo.Row, c int) (Eval, error) {
	if row.N != cfg.N {
		return Eval{}, fmt.Errorf("model: row of %d routers on %dx%d network", row.N, cfg.N, cfg.N)
	}
	if err := row.Validate(c); err != nil {
		return Eval{}, err
	}
	w, err := cfg.BW.Width(c)
	if err != nil {
		return Eval{}, err
	}
	head := 2 * RowMean(row, cfg.Params)
	ser := Serialization(cfg.Mix, w)
	return Eval{C: c, Width: w, Head: head, Ser: ser, Total: head + ser}, nil
}

// TopoPaths caches the per-row and per-column directional shortest paths of
// a topology, from which all 2D pair latencies derive.
type TopoPaths struct {
	T    topo.Topology
	Rows []*route.RowPaths
	Cols []*route.RowPaths
}

// ComputeTopoPaths builds the routing for every row and column.
func ComputeTopoPaths(t topo.Topology, p Params) *TopoPaths {
	tp := &TopoPaths{T: t, Rows: make([]*route.RowPaths, t.H), Cols: make([]*route.RowPaths, t.W)}
	rp := p.Route()
	for y := 0; y < t.H; y++ {
		tp.Rows[y] = route.Compute(t.Rows[y], rp)
	}
	for x := 0; x < t.W; x++ {
		tp.Cols[x] = route.Compute(t.Cols[x], rp)
	}
	return tp
}

// PairHead returns the 2D head latency from node src to node dst under XY
// routing: the horizontal leg on the source row plus the vertical leg on the
// destination column (Section 4.2's decomposition at the turning router).
func (tp *TopoPaths) PairHead(src, dst int) float64 {
	sx, sy := tp.T.Coords(src)
	dx, dy := tp.T.Coords(dst)
	return tp.Rows[sy].Dist[sx][dx] + tp.Cols[dx].Dist[sy][dy]
}

// PairHops returns the hop count of the 2D path from src to dst.
func (tp *TopoPaths) PairHops(src, dst int) int {
	sx, sy := tp.T.Coords(src)
	dx, dy := tp.T.Coords(dst)
	return tp.Rows[sy].Hops[sx][dx] + tp.Cols[dx].Hops[sy][dy]
}

// MeanHead returns the 2D average head latency over all N²·N² ordered node
// pairs (Eq. 2 numerator over N·N).
func (tp *TopoPaths) MeanHead() float64 {
	n := tp.T.NumRouters()
	var sum float64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				sum += tp.PairHead(s, d)
			}
		}
	}
	return sum / float64(n*n)
}

// MaxHead returns the worst-case zero-load head latency over all node pairs.
func (tp *TopoPaths) MaxHead() float64 {
	n := tp.T.NumRouters()
	m := 0.0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if h := tp.PairHead(s, d); h > m {
				m = h
			}
		}
	}
	return m
}

// MeanHops returns the average 2D hop count over all ordered pairs.
func (tp *TopoPaths) MeanHops() float64 {
	n := tp.T.NumRouters()
	var sum float64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				sum += float64(tp.PairHops(s, d))
			}
		}
	}
	return sum / float64(n*n)
}

// EvalTopology scores a full (possibly non-uniform) topology at link limit c
// by exhaustive pairwise evaluation. For uniform topologies it agrees with
// EvalRow, which tests assert.
func (cfg Config) EvalTopology(t topo.Topology, c int) (Eval, error) {
	if t.W != cfg.N || t.H != cfg.N {
		return Eval{}, fmt.Errorf("model: topology %dx%d on config for %dx%d", t.W, t.H, cfg.N, cfg.N)
	}
	return cfg.EvalRectTopology(t, c)
}

// EvalRectTopology scores a topology of any W x H shape at link limit c; the
// config's N is not consulted (its timing, mix and bandwidth are). The
// bisection constraint still fixes one link width for the whole chip.
func (cfg Config) EvalRectTopology(t topo.Topology, c int) (Eval, error) {
	if err := t.Validate(c); err != nil {
		return Eval{}, err
	}
	w, err := cfg.BW.Width(c)
	if err != nil {
		return Eval{}, err
	}
	tp := ComputeTopoPaths(t, cfg.Params)
	head := tp.MeanHead()
	ser := Serialization(cfg.Mix, w)
	return Eval{C: c, Width: w, Head: head, Ser: ser, Total: head + ser}, nil
}

// MaxZeroLoad returns the worst-case zero-load packet latency (Table 2):
// the maximum pairwise head latency plus the mix-average serialization.
func (cfg Config) MaxZeroLoad(t topo.Topology, c int) (float64, error) {
	w, err := cfg.BW.Width(c)
	if err != nil {
		return 0, err
	}
	zeroLoad := cfg.Params
	zeroLoad.Contention = 0
	tp := ComputeTopoPaths(t, zeroLoad)
	return tp.MaxHead() + Serialization(cfg.Mix, w), nil
}

// WeightedRowMean returns the traffic-weighted average head latency of a row,
// Σ γ(a,b)·L_D(a,b) / Σ γ(a,b), the application-specific objective of
// Section 5.6.4. A nil or all-zero weight matrix falls back to the uniform
// mean. It uses the pooled mean-only routing fast path.
func WeightedRowMean(row topo.Row, p Params, w [][]float64) float64 {
	return route.WeightedMean(row, p.Route(), w)
}
