package model

import "fmt"

// PacketClass describes one packet type in the traffic mix: short packets
// (read requests, write acks) and long packets (read replies, write data).
type PacketClass struct {
	Name string
	// Bits is the packet size S_k.
	Bits int
	// Frac is p_k, the fraction of packets of this class; fractions over a
	// mix sum to 1.
	Frac float64
}

// DefaultMix returns the paper's packet population (Section 5.1): long
// 512-bit packets to short 128-bit packets at a 1:4 ratio, following the
// empirical characterization in [19].
func DefaultMix() []PacketClass {
	return []PacketClass{
		{Name: "short", Bits: 128, Frac: 0.8},
		{Name: "long", Bits: 512, Frac: 0.2},
	}
}

// ValidateMix checks packet classes are well-formed and fractions sum to ~1.
func ValidateMix(mix []PacketClass) error {
	if len(mix) == 0 {
		return fmt.Errorf("model: empty packet mix")
	}
	sum := 0.0
	for _, c := range mix {
		if c.Bits <= 0 {
			return fmt.Errorf("model: packet class %q has non-positive size %d", c.Name, c.Bits)
		}
		if c.Frac < 0 {
			return fmt.Errorf("model: packet class %q has negative fraction %g", c.Name, c.Frac)
		}
		sum += c.Frac
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("model: packet mix fractions sum to %g, want 1", sum)
	}
	return nil
}

// FlitsFor returns the number of flits needed to carry a packet of the given
// size on links of widthBits (⌈S/b⌉).
func FlitsFor(packetBits, widthBits int) int {
	if widthBits <= 0 {
		panic("model: non-positive link width")
	}
	return (packetBits + widthBits - 1) / widthBits
}

// Serialization returns L_S,avg in cycles for the mix at the given link
// width: Σ p_k·⌈S_k/b⌉. The paper counts the full flit count as the
// serialization term (Fig. 1: a two-flit packet has two cycles of
// serialization latency).
func Serialization(mix []PacketClass, widthBits int) float64 {
	var s float64
	for _, c := range mix {
		s += c.Frac * float64(FlitsFor(c.Bits, widthBits))
	}
	return s
}

// MeanPacketBits returns the average packet size of the mix.
func MeanPacketBits(mix []PacketClass) float64 {
	var s float64
	for _, c := range mix {
		s += c.Frac * float64(c.Bits)
	}
	return s
}

// MeanFlits returns the average flits per packet at the given width.
func MeanFlits(mix []PacketClass, widthBits int) float64 {
	var s float64
	for _, c := range mix {
		s += c.Frac * float64(FlitsFor(c.Bits, widthBits))
	}
	return s
}
