package model

import (
	"math"
	"testing"
	"testing/quick"

	"explink/internal/stats"
	"explink/internal/topo"
)

func TestFlitsFor(t *testing.T) {
	cases := []struct{ bits, width, want int }{
		{512, 256, 2}, {128, 256, 1}, {512, 128, 4}, {128, 128, 1},
		{512, 512, 1}, {100, 64, 2}, {1, 256, 1},
	}
	for _, c := range cases {
		if got := FlitsFor(c.bits, c.width); got != c.want {
			t.Errorf("FlitsFor(%d,%d) = %d, want %d", c.bits, c.width, got, c.want)
		}
	}
}

func TestSerializationDefaults(t *testing.T) {
	mix := DefaultMix()
	// Link limit C with 256-bit base: width 256/C.
	cases := []struct {
		width int
		want  float64
	}{
		{256, 0.8*1 + 0.2*2}, // 1.2
		{128, 0.8*1 + 0.2*4}, // 1.6
		{64, 0.8*2 + 0.2*8},  // 3.2
		{32, 0.8*4 + 0.2*16}, // 6.4
		{16, 0.8*8 + 0.2*32}, // 12.8
		{512, 0.8*1 + 0.2*1}, // 1.0
	}
	for _, c := range cases {
		if got := Serialization(mix, c.width); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Serialization(width=%d) = %g, want %g", c.width, got, c.want)
		}
	}
}

func TestValidateMix(t *testing.T) {
	if err := ValidateMix(DefaultMix()); err != nil {
		t.Fatal(err)
	}
	if ValidateMix(nil) == nil {
		t.Fatal("empty mix accepted")
	}
	if ValidateMix([]PacketClass{{Name: "x", Bits: 0, Frac: 1}}) == nil {
		t.Fatal("zero-size class accepted")
	}
	if ValidateMix([]PacketClass{{Name: "x", Bits: 64, Frac: 0.5}}) == nil {
		t.Fatal("fractions not summing to 1 accepted")
	}
}

func TestBandwidthWidths(t *testing.T) {
	bw := DefaultBandwidth()
	cases := map[int]int{1: 256, 2: 128, 4: 64, 8: 32, 16: 16, 32: 8, 64: 4}
	for c, want := range cases {
		got, err := bw.Width(c)
		if err != nil {
			t.Fatalf("Width(%d): %v", c, err)
		}
		if got != want {
			t.Errorf("Width(%d) = %d, want %d", c, got, want)
		}
	}
	if _, err := bw.Width(128); err == nil {
		t.Fatal("width below minimum accepted")
	}
	if _, err := bw.Width(0); err == nil {
		t.Fatal("C=0 accepted")
	}
}

func TestBandwidthCap(t *testing.T) {
	bw := Bandwidth{BaseWidth: 1024, MaxWidth: 512, MinWidth: 4}
	w, err := bw.Width(1)
	if err != nil || w != 512 {
		t.Fatalf("capped width = %d, %v", w, err)
	}
	w, err = bw.Width(2)
	if err != nil || w != 512 {
		t.Fatalf("width(2) = %d", w)
	}
	w, err = bw.Width(4)
	if err != nil || w != 256 {
		t.Fatalf("width(4) = %d", w)
	}
}

func TestFeasibleLimits(t *testing.T) {
	bw := DefaultBandwidth()
	got := bw.FeasibleLimits(topo.LinkLimits(16))
	// 16x16 allows C up to 64 (width 4 = minimum).
	if len(got) != 7 || got[6] != 64 {
		t.Fatalf("feasible limits = %v", got)
	}
	bwNarrow := Bandwidth{BaseWidth: 256, MaxWidth: 512, MinWidth: 32}
	got = bwNarrow.FeasibleLimits(topo.LinkLimits(16))
	if len(got) != 4 || got[3] != 8 {
		t.Fatalf("narrow feasible limits = %v", got)
	}
}

func TestEvalRowMesh8(t *testing.T) {
	cfg := DefaultConfig(8)
	e, err := cfg.EvalRow(topo.MeshRow(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Row mean 10.5 (tested in route), doubled for 2D, plus L_S = 1.2.
	if math.Abs(e.Head-21) > 1e-9 {
		t.Fatalf("head = %g, want 21", e.Head)
	}
	if math.Abs(e.Ser-1.2) > 1e-9 {
		t.Fatalf("ser = %g, want 1.2", e.Ser)
	}
	if math.Abs(e.Total-22.2) > 1e-9 {
		t.Fatalf("total = %g, want 22.2", e.Total)
	}
	if e.Width != 256 {
		t.Fatalf("width = %d", e.Width)
	}
}

func TestEvalRowRejectsBad(t *testing.T) {
	cfg := DefaultConfig(8)
	if _, err := cfg.EvalRow(topo.MeshRow(4), 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	over := topo.NewRow(8, topo.Span{From: 0, To: 4})
	if _, err := cfg.EvalRow(over, 1); err == nil {
		t.Fatal("over-limit row accepted")
	}
}

func TestEvalTopologyMatchesEvalRow(t *testing.T) {
	// Property: for uniform topologies the exhaustive 2D evaluation equals
	// the 2x row shortcut of Eq. (5).
	if err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 4 + rng.Intn(5)
		c := 2 + rng.Intn(3)
		row := randomValidRow(rng, n, c)
		cfg := DefaultConfig(n)
		er, err1 := cfg.EvalRow(row, c)
		et, err2 := cfg.EvalTopology(topo.Uniform("t", n, row), c)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(er.Head-et.Head) < 1e-9 && er.Ser == et.Ser
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxZeroLoadMesh(t *testing.T) {
	cfg := DefaultConfig(8)
	got, err := cfg.MaxZeroLoad(topo.Mesh(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corner to corner: 14 hops * (3+1) = 56, plus 1.2 serialization.
	if math.Abs(got-57.2) > 1e-9 {
		t.Fatalf("max zero load = %g, want 57.2", got)
	}
}

func TestMaxZeroLoadIgnoresContention(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Params.Contention = 5
	got, err := cfg.MaxZeroLoad(topo.Mesh(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-57.2) > 1e-9 {
		t.Fatalf("zero-load latency must ignore contention, got %g", got)
	}
}

func TestTopologyOrderingTable2(t *testing.T) {
	// Table 2's qualitative result: worst-case latency HFB < Mesh on 8x8.
	cfg := DefaultConfig(8)
	mesh, _ := cfg.MaxZeroLoad(topo.Mesh(8), 1)
	hfb, _ := cfg.MaxZeroLoad(topo.HFB(8), 4)
	if hfb >= mesh {
		t.Fatalf("HFB worst case %g not better than mesh %g", hfb, mesh)
	}
}

func TestWeightedRowMean(t *testing.T) {
	row := topo.MeshRow(4)
	p := DefaultParams()
	uniform := WeightedRowMean(row, p, nil)
	// Weight matrix with all ones must (almost) reproduce the unweighted
	// mean, scaled by the diagonal convention: MeanDist divides by n², the
	// weighted version divides by the weight sum over i != j.
	w := make([][]float64, 4)
	for i := range w {
		w[i] = make([]float64, 4)
		for j := range w[i] {
			if i != j {
				w[i][j] = 1
			}
		}
	}
	weighted := WeightedRowMean(row, p, w)
	wantRatio := 16.0 / 12.0 // n² pairs vs n(n-1) pairs
	if math.Abs(weighted-uniform*wantRatio) > 1e-9 {
		t.Fatalf("weighted = %g, uniform = %g", weighted, uniform)
	}
	// Concentrating all weight on one pair returns exactly that pair's cost.
	w2 := make([][]float64, 4)
	for i := range w2 {
		w2[i] = make([]float64, 4)
	}
	w2[0][3] = 1
	if got := WeightedRowMean(row, p, w2); math.Abs(got-12) > 1e-9 {
		t.Fatalf("point weight = %g, want 12", got)
	}
	// All-zero weights fall back to the uniform mean.
	w3 := make([][]float64, 4)
	for i := range w3 {
		w3[i] = make([]float64, 4)
	}
	if got := WeightedRowMean(row, p, w3); math.Abs(got-uniform) > 1e-9 {
		t.Fatalf("zero weights = %g, want %g", got, uniform)
	}
}

func TestMeanPacketBitsAndFlits(t *testing.T) {
	mix := DefaultMix()
	if got := MeanPacketBits(mix); math.Abs(got-(0.8*128+0.2*512)) > 1e-12 {
		t.Fatalf("mean bits = %g", got)
	}
	if got := MeanFlits(mix, 256); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("mean flits = %g", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(1)
	if bad.Validate() == nil {
		t.Fatal("n=1 accepted")
	}
	neg := DefaultConfig(8)
	neg.Params.RouterDelay = -1
	if neg.Validate() == nil {
		t.Fatal("negative Tr accepted")
	}
}

func randomValidRow(rng *stats.RNG, n, c int) topo.Row {
	r := topo.Row{N: n}
	for i := 0; i < 2*n; i++ {
		from := rng.Intn(n - 2)
		maxLen := n - 1 - from
		if maxLen < 2 {
			continue
		}
		to := from + 2 + rng.Intn(maxLen-1)
		cand := r.Add(topo.Span{From: from, To: to})
		if cand.Validate(c) == nil {
			r = cand
		}
	}
	return r
}
