// Package model implements the paper's analytical latency model (Section 2.2
// and 3): head latency L_D from hop counts, Manhattan link lengths and
// per-hop contention (Eq. 1), serialization latency L_S from the packet mix
// and the link width (Eq. 2), the bisection-bandwidth constraint that couples
// link limit C to link width b (Eq. 3, Section 4.1), and the 2D-from-1D
// average of Eq. 5.
package model

import (
	"fmt"

	"explink/internal/route"
)

// Params are the timing constants of Eq. (1).
type Params struct {
	// RouterDelay is Tr: cycles a flit spends in the router pipeline per hop.
	// The paper assumes a canonical 3-stage router.
	RouterDelay float64
	// LinkDelay is Tl: cycles per unit of link length. Express links are
	// segmented into unit-length repeatered wires, so a span of length d
	// costs d·Tl.
	LinkDelay float64
	// Contention is Tc: the average per-hop contention delay. It is near
	// zero at the low loads of general-purpose CMPs (Section 2.2); the
	// simulator measures the loaded value.
	Contention float64
}

// DefaultParams returns the constants used throughout the evaluation:
// a 3-stage router (Tr = 3), unit link delay (Tl = 1) and zero modeled
// contention (Tc = 0); loaded experiments get Tc from the simulator.
func DefaultParams() Params {
	return Params{RouterDelay: 3, LinkDelay: 1, Contention: 0}
}

// Route converts the timing constants into per-edge routing costs.
func (p Params) Route() route.Params {
	return route.Params{PerHop: p.RouterDelay + p.Contention, PerUnit: p.LinkDelay}
}

func (p Params) validate() error {
	if p.RouterDelay < 0 || p.LinkDelay < 0 || p.Contention < 0 {
		return fmt.Errorf("model: negative timing parameter: %+v", p)
	}
	return nil
}
