package model

import "fmt"

// Bandwidth captures the bisection-bandwidth constraint of Eq. (3):
// b·c·n <= B. Rather than carrying B in Gb/s, we parameterize by the link
// width the budget affords at C = 1 (BaseWidth = B/(n·f) bits); the paper's
// default configuration has 256-bit links on the baseline mesh, and the
// bandwidth study of Fig. 11 scales BaseWidth from 128 to 1024 (2 KGb/s to
// 8 KGb/s at 1 GHz on an 8x8 network).
type Bandwidth struct {
	// BaseWidth is the flit width in bits the bisection budget affords when
	// each cross-section carries a single link (C = 1).
	BaseWidth int
	// MaxWidth caps the useful flit width; widths beyond the longest packet
	// waste wires. 512 bits (the long-packet size) by default.
	MaxWidth int
	// MinWidth is the narrowest implementable link, 4 bits by default.
	MinWidth int
}

// DefaultBandwidth returns the paper's default budget: 256-bit baseline
// links, widths capped to the 512-bit long packet, and at least 4-bit links.
func DefaultBandwidth() Bandwidth {
	return Bandwidth{BaseWidth: 256, MaxWidth: 512, MinWidth: 4}
}

// Width returns the link width b for link limit c: min(MaxWidth, BaseWidth/c).
// It returns an error when the budget cannot support c links of MinWidth.
func (b Bandwidth) Width(c int) (int, error) {
	if c < 1 {
		return 0, fmt.Errorf("model: link limit must be >= 1, got %d", c)
	}
	w := b.BaseWidth / c
	if w > b.MaxWidth {
		w = b.MaxWidth
	}
	if w < b.MinWidth {
		return 0, fmt.Errorf("model: link limit %d needs width %d below minimum %d", c, w, b.MinWidth)
	}
	return w, nil
}

// FeasibleLimits filters candidate link limits to those the budget supports.
func (b Bandwidth) FeasibleLimits(candidates []int) []int {
	var out []int
	for _, c := range candidates {
		if _, err := b.Width(c); err == nil {
			out = append(out, c)
		}
	}
	return out
}
