package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"explink/internal/model"
	"explink/internal/topo"
)

// storeVersion salts every cache key with the placement-code generation: any
// change to the solvers that can alter a solution for the same inputs must
// bump it, so stale on-disk artifacts from an older binary become misses
// instead of silently wrong answers.
const storeVersion = "explink/placement/v1"

// StoredPlacement is the cacheable outcome of one placement solve — the
// uniform row solve behind SolveRow/Optimize, or one weighted line solve
// behind SolveWeighted. Everything in it round-trips through encoding/json
// bit-identically (spans are ints; float64 marshals shortest-round-trip), so
// a cache hit reproduces the original solution exactly.
type StoredPlacement struct {
	Algo    Algorithm   `json:"algo"`
	C       int         `json:"c"`
	N       int         `json:"n"`
	Express []topo.Span `json:"express,omitempty"`
	Eval    model.Eval  `json:"eval"`
	Evals   int64       `json:"evals"`
	// Objs is the canonical objective vector of a frontier entry (ParetoSA
	// solves only); Count is the archive size recorded by a frontier meta
	// entry. Both are omitempty so scalar entries keep their pre-frontier
	// bytes and addresses.
	Objs  []float64 `json:"objs,omitempty"`
	Count int       `json:"count,omitempty"`
}

// Row reconstructs the placement row.
func (sp StoredPlacement) Row() topo.Row {
	return topo.Row{N: sp.N, Express: sp.Express}
}

// RowSolution reconstructs the full uniform-row solution.
func (sp StoredPlacement) RowSolution() RowSolution {
	return RowSolution{Algo: sp.Algo, C: sp.C, Row: sp.Row(), Eval: sp.Eval, Evals: sp.Evals}
}

func storedFromSolution(sol RowSolution) StoredPlacement {
	sp := StoredPlacement{Algo: sol.Algo, C: sol.C, N: sol.Row.N, Eval: sol.Eval, Evals: sol.Evals}
	if len(sol.Row.Express) > 0 {
		sp.Express = sol.Row.Express
	}
	return sp
}

// StoreCounters is a snapshot of a store's effectiveness counters.
type StoreCounters struct {
	// Solves counts cache misses that ran a real solve (each distinct key is
	// solved at most once per store thanks to single-flight deduplication).
	Solves int64 `json:"solves"`
	// Hits counts solves answered from memory, including callers that waited
	// on an in-flight computation of the same key.
	Hits int64 `json:"hits"`
	// DiskHits counts solves answered from the on-disk cache (a warm
	// -cache-dir run reports Solves == 0 and DiskHits > 0).
	DiskHits int64 `json:"diskHits"`
	// Swept counts stale temp files removed when the store was opened —
	// leftovers of atomic writes interrupted by a kill.
	Swept int64 `json:"swept,omitempty"`
}

func (c StoreCounters) String() string {
	s := fmt.Sprintf("solves=%d hits=%d disk=%d", c.Solves, c.Hits, c.DiskHits)
	if c.Swept > 0 {
		s += fmt.Sprintf(" swept=%d", c.Swept)
	}
	return s
}

// PlacementStore is a content-addressed cache of placement solves shared by
// every experiment: the canonical key covers everything that determines a
// solution (network size, link limit, bandwidth budget, packet mix, timing
// parameters, objective weights, algorithm, seed and annealing budget), so
// two solves with the same key are bit-identical and the second one can be
// answered from the store.
//
// The store is an in-memory map with optional on-disk persistence (one JSON
// file per key under Dir). Lookups of a key being computed block until the
// computation finishes (single-flight), which is what makes a parallel
// `expbench -exp all` issue each distinct solve exactly once. Corrupt or
// mismatched disk entries are treated as misses, never as errors. All methods
// are safe for concurrent use.
type PlacementStore struct {
	dir string

	mu       sync.Mutex
	mem      map[string]StoredPlacement
	inflight map[string]chan struct{}
	counters StoreCounters
}

// NewPlacementStore returns a store; dir == "" keeps it memory-only, any
// other value also persists entries under dir (created if missing). Opening
// a persistent store sweeps temp files left behind by interrupted writes
// (see sweepTemp); the count lands in Counters().Swept.
func NewPlacementStore(dir string) (*PlacementStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: placement store dir: %w", err)
		}
	}
	st := &PlacementStore{
		dir:      dir,
		mem:      make(map[string]StoredPlacement),
		inflight: make(map[string]chan struct{}),
	}
	st.counters.Swept = sweepTemp(dir, tempSweepAge)
	return st, nil
}

// tempSweepAge guards the open-time sweep: only temp files at least this old
// are removed, so a concurrent store writing into the same directory never
// loses an in-progress file to another process's open.
const tempSweepAge = time.Hour

// sweepTemp removes stale "<addr>.tmp*" files under dir — the debris of
// saveDisk's atomic write pattern when the process is killed between
// CreateTemp and Rename. Returns how many files were removed; every failure
// mode (unreadable dir, vanished file) is skipped silently, matching the
// cache's best-effort persistence.
func sweepTemp(dir string, minAge time.Duration) int64 {
	if dir == "" {
		return 0
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-minAge)
	var swept int64
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			swept++
		}
	}
	return swept
}

// Dir returns the on-disk directory, or "" for a memory-only store.
func (st *PlacementStore) Dir() string { return st.dir }

// Counters returns a snapshot of the effectiveness counters.
func (st *PlacementStore) Counters() StoreCounters {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.counters
}

// Len returns the number of cached entries in memory.
func (st *PlacementStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.mem)
}

// GetOrCompute answers the canonical key from cache, or runs compute exactly
// once per key (concurrent callers of the same key wait and share the
// result). A failed compute caches nothing — the error propagates to every
// waiter and a later call retries, so a cancelled run never poisons the
// store. The bool reports whether the result came from cache.
func (st *PlacementStore) GetOrCompute(key string, compute func() (StoredPlacement, error)) (StoredPlacement, bool, error) {
	addr := keyAddress(key)
	st.mu.Lock()
	for {
		if sp, ok := st.mem[addr]; ok {
			st.counters.Hits++
			st.mu.Unlock()
			return sp, true, nil
		}
		fl, ok := st.inflight[addr]
		if !ok {
			break
		}
		// Someone is solving this key right now: wait, then re-check. If the
		// compute failed nothing was cached and we take over.
		st.mu.Unlock()
		<-fl
		st.mu.Lock()
	}
	// Register the in-flight marker before touching the disk, then do every
	// read/write outside the mutex: a slow disk (or N workers hammering one
	// shared -cache-dir over NFS) must stall only callers of this key, never
	// every concurrent memory hit. Same-key callers wait on fl as usual.
	fl := make(chan struct{})
	st.inflight[addr] = fl
	st.mu.Unlock()

	if sp, ok := st.loadDisk(addr, key); ok {
		st.mu.Lock()
		st.mem[addr] = sp
		delete(st.inflight, addr)
		st.counters.Hits++
		st.counters.DiskHits++
		close(fl)
		st.mu.Unlock()
		return sp, true, nil
	}

	st.mu.Lock()
	st.counters.Solves++
	st.mu.Unlock()

	sp, err := compute()

	if err == nil {
		st.saveDisk(addr, key, sp)
	}
	st.mu.Lock()
	delete(st.inflight, addr)
	if err == nil {
		st.mem[addr] = sp
	}
	close(fl)
	st.mu.Unlock()
	if err != nil {
		return StoredPlacement{}, false, err
	}
	return sp, false, nil
}

// keyAddress derives the content address (SHA-256 of the canonical key
// preimage) used as map key and disk file name.
func keyAddress(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// diskEntry is the persisted form: the full key preimage rides along so a
// load can verify the entry answers exactly the question being asked (guards
// against truncated writes, manual edits and — in principle — collisions).
type diskEntry struct {
	Key       string          `json:"key"`
	Placement StoredPlacement `json:"placement"`
}

func (st *PlacementStore) path(addr string) string {
	return filepath.Join(st.dir, addr+".json")
}

// loadDisk reads and validates one entry; every failure mode is a miss.
// Called without st.mu (it touches only the immutable dir), so slow disk
// reads never block concurrent memory hits.
func (st *PlacementStore) loadDisk(addr, key string) (StoredPlacement, bool) {
	if st.dir == "" {
		return StoredPlacement{}, false
	}
	buf, err := os.ReadFile(st.path(addr))
	if err != nil {
		return StoredPlacement{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(buf, &e); err != nil {
		return StoredPlacement{}, false
	}
	if e.Key != key {
		return StoredPlacement{}, false
	}
	sp := e.Placement
	if sp.N < 1 || sp.C < 1 || sp.Evals < 0 || sp.Count < 0 {
		return StoredPlacement{}, false
	}
	if err := sp.Row().Validate(sp.C); err != nil {
		return StoredPlacement{}, false
	}
	return sp, true
}

// saveDisk persists one entry atomically (write to a temp file, then
// rename); persistence failures are ignored — the cache is an accelerator,
// not a system of record. Called without st.mu: the temp-file + rename
// pattern is already safe against concurrent writers of the same address
// (including other processes sharing the directory), and keeping the write
// off the lock keeps one slow disk from serializing the whole store.
func (st *PlacementStore) saveDisk(addr, key string, sp StoredPlacement) {
	if st.dir == "" {
		return
	}
	buf, err := json.MarshalIndent(diskEntry{Key: key, Placement: sp}, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(st.dir, addr+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(buf, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), st.path(addr)); err != nil {
		os.Remove(tmp.Name())
	}
}

// ---- canonical key derivation ----

// fnum formats a float with the shortest representation that round-trips,
// so the preimage is canonical for every representable value.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// configKey writes the solver-wide key fields shared by row and line solves:
// everything on the Solver that can change a solution. Workers is explicitly
// excluded — output is bit-identical for any worker count.
func (s *Solver) configKey(b *strings.Builder) {
	b.WriteString(storeVersion)
	b.WriteByte('\n')
	fmt.Fprintf(b, "n=%d\n", s.Cfg.N)
	fmt.Fprintf(b, "params=%s,%s,%s\n",
		fnum(s.Cfg.Params.RouterDelay), fnum(s.Cfg.Params.LinkDelay), fnum(s.Cfg.Params.Contention))
	b.WriteString("mix=")
	for i, c := range s.Cfg.Mix {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(b, "%s:%d:%s", c.Name, c.Bits, fnum(c.Frac))
	}
	b.WriteByte('\n')
	fmt.Fprintf(b, "bw=%d,%d,%d\n", s.Cfg.BW.BaseWidth, s.Cfg.BW.MaxWidth, s.Cfg.BW.MinWidth)
	fmt.Fprintf(b, "worst=%s\n", fnum(s.WorstWeight))
	fmt.Fprintf(b, "seed=%d\n", s.Seed)
	fmt.Fprintf(b, "sched=%s,%d,%d,%s,%d\n",
		fnum(s.Sched.T0), s.Sched.Moves, s.Sched.CoolEvery, fnum(s.Sched.CoolDiv), s.Sched.StopAfterNoImprove)
}

// rowKey is the canonical preimage for the uniform row solve P̃(n, C).
func (s *Solver) rowKey(c int, algo Algorithm) string {
	var b strings.Builder
	s.configKey(&b)
	fmt.Fprintf(&b, "kind=row\nalgo=%s\nc=%d\n", algo, c)
	return b.String()
}

// lineKey is the canonical preimage for one weighted line solve of
// SolveWeighted: the row key plus the line's weight matrix and its RNG salt
// (two lines with identical weights still draw from distinct streams, so the
// salt is part of what determines the output).
func (s *Solver) lineKey(c int, algo Algorithm, w [][]float64, salt int64) string {
	var b strings.Builder
	s.configKey(&b)
	fmt.Fprintf(&b, "kind=line\nalgo=%s\nc=%d\nsalt=%d\nweights=", algo, c, salt)
	for i, row := range w {
		if i > 0 {
			b.WriteByte(';')
		}
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(fnum(v))
		}
	}
	b.WriteByte('\n')
	return b.String()
}
