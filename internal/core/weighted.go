package core

import (
	"fmt"

	"explink/internal/anneal"
	"explink/internal/dnc"
	"explink/internal/model"
	"explink/internal/topo"
)

// This file implements the application-specific design of Section 5.6.4:
// when the traffic matrix γ is known, the head-latency objective becomes
// Σ γij·L_D(i,j) / Σ γij, which still decomposes into independent row and
// column problems — but each row and column now has its own weights, so
// P̃(n, C) is solved per line instead of once.

// TrafficWeights are the per-line pairwise weights derived from a node-level
// traffic matrix under XY routing.
type TrafficWeights struct {
	N    int
	RowW [][][]float64 // RowW[y][a][b]: traffic entering row y at column a bound for column b
	ColW [][][]float64 // ColW[x][ya][yb]: traffic turning into column x at row ya bound for row yb
}

// WeightsFromMatrix decomposes a node-to-node traffic matrix gamma (indexed
// by node id, gamma[src][dst] >= 0) into per-row and per-column pair weights.
// Under XY routing a packet from (sx, sy) to (dx, dy) traverses row sy from
// column sx to dx, then column dx from row sy to dy.
func WeightsFromMatrix(n int, gamma [][]float64) (TrafficWeights, error) {
	nn := n * n
	if len(gamma) != nn {
		return TrafficWeights{}, fmt.Errorf("core: traffic matrix is %d rows, want %d", len(gamma), nn)
	}
	w := TrafficWeights{N: n, RowW: zero3(n), ColW: zero3(n)}
	for src := 0; src < nn; src++ {
		if len(gamma[src]) != nn {
			return TrafficWeights{}, fmt.Errorf("core: traffic row %d has %d cols, want %d", src, len(gamma[src]), nn)
		}
		sx, sy := src%n, src/n
		for dst := 0; dst < nn; dst++ {
			g := gamma[src][dst]
			if g == 0 || src == dst {
				continue
			}
			if g < 0 {
				return TrafficWeights{}, fmt.Errorf("core: negative traffic %g at (%d,%d)", g, src, dst)
			}
			dx, dy := dst%n, dst/n
			if sx != dx {
				w.RowW[sy][sx][dx] += g
			}
			if sy != dy {
				w.ColW[dx][sy][dy] += g
			}
		}
	}
	return w, nil
}

func zero3(n int) [][][]float64 {
	out := make([][][]float64, n)
	for i := range out {
		out[i] = make([][]float64, n)
		for j := range out[i] {
			out[i][j] = make([]float64, n)
		}
	}
	return out
}

// SolveWeighted optimizes every row and column against its own traffic
// weights at link limit c and returns the resulting (generally non-uniform)
// topology. Lines with no traffic at all keep the unweighted solution.
func (s *Solver) SolveWeighted(c int, w TrafficWeights, algo Algorithm) (topo.Topology, error) {
	n := s.Cfg.N
	if w.N != n {
		return topo.Topology{}, fmt.Errorf("core: weights for n=%d on solver n=%d", w.N, n)
	}
	if _, err := s.Cfg.BW.Width(c); err != nil {
		return topo.Topology{}, err
	}
	t := topo.Topology{Name: fmt.Sprintf("AppSpec(C=%d)", c), W: n, H: n,
		Rows: make([]topo.Row, n), Cols: make([]topo.Row, n)}
	for y := 0; y < n; y++ {
		row, err := s.solveLine(c, algo, w.RowW[y], int64(y))
		if err != nil {
			return topo.Topology{}, fmt.Errorf("core: row %d: %w", y, err)
		}
		t.Rows[y] = row
	}
	for x := 0; x < n; x++ {
		col, err := s.solveLine(c, algo, w.ColW[x], int64(n+x))
		if err != nil {
			return topo.Topology{}, fmt.Errorf("core: col %d: %w", x, err)
		}
		t.Cols[x] = col
	}
	return t, nil
}

// solveLine solves one weighted P̃(n, C) instance. The divide-and-conquer
// initialization stays unweighted (it is a structural heuristic); the SA
// refinement uses the weighted objective, exactly as Section 5.6.4 notes that
// "the proposed divide-and-conquer method ... and the cleverly-designed
// connection matrix ... are still applicable".
func (s *Solver) solveLine(c int, algo Algorithm, w [][]float64, salt int64) (topo.Row, error) {
	n := s.Cfg.N
	obj := func(r topo.Row) float64 { return model.WeightedRowMean(r, s.Cfg.Params, w) }

	var init topo.Row
	switch algo {
	case DCSA, InitOnly:
		init = dnc.Initial(n, c, s.Cfg.Params).Row
		if algo == InitOnly {
			return init, nil
		}
	case OnlySA:
		init = topo.MeshRow(n)
	default:
		return topo.Row{}, fmt.Errorf("core: unknown algorithm %q", algo)
	}
	m, err := topo.MatrixFromRow(init, c)
	if err != nil {
		return topo.Row{}, err
	}
	rng := s.rngFor(c, algo, uint64(salt)+1)
	if algo == OnlySA {
		m.Randomize(func() bool { return rng.Bool(0.5) })
	}
	res := anneal.Minimize(m, obj, s.Sched, rng, false)
	if obj(init) < res.Obj {
		return init, nil
	}
	return res.Row.Canonical(), nil
}

// WeightedLatency scores a topology against a node-level traffic matrix:
// the γ-weighted mean of pairwise head latencies plus the serialization
// latency at the width implied by c. It is the application-specific analogue
// of Config.EvalTopology.
func WeightedLatency(cfg model.Config, t topo.Topology, c int, gamma [][]float64) (model.Eval, error) {
	width, err := cfg.BW.Width(c)
	if err != nil {
		return model.Eval{}, err
	}
	if err := t.Validate(c); err != nil {
		return model.Eval{}, err
	}
	tp := model.ComputeTopoPaths(t, cfg.Params)
	nn := t.NumRouters()
	var num, den float64
	for src := 0; src < nn; src++ {
		for dst := 0; dst < nn; dst++ {
			if src == dst {
				continue
			}
			g := gamma[src][dst]
			if g == 0 {
				continue
			}
			num += g * tp.PairHead(src, dst)
			den += g
		}
	}
	head := 0.0
	if den > 0 {
		head = num / den
	}
	ser := model.Serialization(cfg.Mix, width)
	return model.Eval{C: c, Width: width, Head: head, Ser: ser, Total: head + ser}, nil
}
