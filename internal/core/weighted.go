package core

import (
	"context"
	"fmt"
	"time"

	"explink/internal/anneal"
	"explink/internal/dnc"
	"explink/internal/model"
	"explink/internal/runctl"
	"explink/internal/topo"
)

// This file implements the application-specific design of Section 5.6.4:
// when the traffic matrix γ is known, the head-latency objective becomes
// Σ γij·L_D(i,j) / Σ γij, which still decomposes into independent row and
// column problems — but each row and column now has its own weights, so
// P̃(n, C) is solved per line instead of once.

// TrafficWeights are the per-line pairwise weights derived from a node-level
// traffic matrix under XY routing.
type TrafficWeights struct {
	N    int
	RowW [][][]float64 // RowW[y][a][b]: traffic entering row y at column a bound for column b
	ColW [][][]float64 // ColW[x][ya][yb]: traffic turning into column x at row ya bound for row yb
}

// WeightsFromMatrix decomposes a node-to-node traffic matrix gamma (indexed
// by node id, gamma[src][dst] >= 0) into per-row and per-column pair weights.
// Under XY routing a packet from (sx, sy) to (dx, dy) traverses row sy from
// column sx to dx, then column dx from row sy to dy.
func WeightsFromMatrix(n int, gamma [][]float64) (TrafficWeights, error) {
	nn := n * n
	if len(gamma) != nn {
		return TrafficWeights{}, fmt.Errorf("core: traffic matrix is %d rows, want %d", len(gamma), nn)
	}
	w := TrafficWeights{N: n, RowW: zero3(n), ColW: zero3(n)}
	for src := 0; src < nn; src++ {
		if len(gamma[src]) != nn {
			return TrafficWeights{}, fmt.Errorf("core: traffic row %d has %d cols, want %d", src, len(gamma[src]), nn)
		}
		sx, sy := src%n, src/n
		for dst := 0; dst < nn; dst++ {
			g := gamma[src][dst]
			if g == 0 || src == dst {
				continue
			}
			if g < 0 {
				return TrafficWeights{}, fmt.Errorf("core: negative traffic %g at (%d,%d)", g, src, dst)
			}
			dx, dy := dst%n, dst/n
			if sx != dx {
				w.RowW[sy][sx][dx] += g
			}
			if sy != dy {
				w.ColW[dx][sy][dy] += g
			}
		}
	}
	return w, nil
}

func zero3(n int) [][][]float64 {
	out := make([][][]float64, n)
	for i := range out {
		out[i] = make([][]float64, n)
		for j := range out[i] {
			out[i][j] = make([]float64, n)
		}
	}
	return out
}

// WeightedSolution is the outcome of the application-specific flow: the
// per-line optimized (generally non-uniform) topology plus the Fig. 7-style
// evaluation accounting that SolveRow reports for the unweighted problem.
type WeightedSolution struct {
	Topology topo.Topology
	RowEvals []int64 // placement evaluations spent on each row line
	ColEvals []int64 // placement evaluations spent on each column line
	Evals    int64   // total across all 2n lines
}

// SolveWeighted optimizes every row and column against its own traffic
// weights at link limit c. Lines with no traffic at all keep the unweighted
// solution. The 2n line problems are independent (each has its own rngFor
// salt) and run on a worker pool bounded by s.Workers, so the result is
// bit-identical for any worker count; on failure all per-line errors are
// aggregated into the returned error. Cancelling ctx fails every unfinished
// line with runctl.ErrCancelled.
func (s *Solver) SolveWeighted(ctx context.Context, c int, w TrafficWeights, algo Algorithm) (WeightedSolution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := s.Cfg.N
	if w.N != n {
		return WeightedSolution{}, fmt.Errorf("core: weights for n=%d on solver n=%d", w.N, n)
	}
	if _, err := s.Cfg.BW.Width(c); err != nil {
		return WeightedSolution{}, err
	}
	sol := WeightedSolution{
		Topology: topo.Topology{Name: fmt.Sprintf("AppSpec(C=%d)", c), W: n, H: n,
			Rows: make([]topo.Row, n), Cols: make([]topo.Row, n)},
		RowEvals: make([]int64, n),
		ColEvals: make([]int64, n),
	}
	err := forEachIndex(ctx, 2*n, s.Workers, func(i int) error {
		if i < n {
			row, evals, err := s.solveLine(ctx, c, algo, w.RowW[i], int64(i))
			if err != nil {
				return fmt.Errorf("core: row %d: %w", i, err)
			}
			sol.Topology.Rows[i], sol.RowEvals[i] = row, evals
			return nil
		}
		x := i - n
		col, evals, err := s.solveLine(ctx, c, algo, w.ColW[x], int64(n+x))
		if err != nil {
			return fmt.Errorf("core: col %d: %w", x, err)
		}
		sol.Topology.Cols[x], sol.ColEvals[x] = col, evals
		return nil
	})
	if err != nil {
		return WeightedSolution{}, err
	}
	for i := 0; i < n; i++ {
		sol.Evals += sol.RowEvals[i] + sol.ColEvals[i]
	}
	return sol, nil
}

// solveLine solves one weighted line instance, routing through the placement
// store when one is attached: the cache key extends the row key with the
// line's weight matrix and RNG salt, so lines of different benchmarks (or
// different lines of one benchmark) never alias while a repeated benchmark
// run is answered without re-annealing.
func (s *Solver) solveLine(ctx context.Context, c int, algo Algorithm, w [][]float64, salt int64) (topo.Row, int64, error) {
	if s.Store == nil {
		return s.solveLineUncached(ctx, c, algo, w, salt)
	}
	sp, _, err := s.Store.GetOrCompute(s.lineKey(c, algo, w, salt), func() (StoredPlacement, error) {
		row, evals, err := s.solveLineUncached(ctx, c, algo, w, salt)
		if err != nil {
			return StoredPlacement{}, err
		}
		stored := StoredPlacement{Algo: algo, C: c, N: row.N, Evals: evals}
		if len(row.Express) > 0 {
			stored.Express = row.Express
		}
		return stored, nil
	})
	if err != nil {
		return topo.Row{}, 0, err
	}
	return sp.Row(), sp.Evals, nil
}

// solveLineUncached solves one weighted P̃(n, C) instance, returning the placement and
// the evaluations spent. The divide-and-conquer initialization stays
// unweighted (it is a structural heuristic); the SA refinement uses the
// weighted objective, exactly as Section 5.6.4 notes that "the proposed
// divide-and-conquer method ... and the cleverly-designed connection matrix
// ... are still applicable".
func (s *Solver) solveLineUncached(ctx context.Context, c int, algo Algorithm, w [][]float64, salt int64) (topo.Row, int64, error) {
	t0 := time.Now()
	n := s.Cfg.N

	var init topo.Row
	var evals int64
	switch algo {
	case DCSA, InitOnly:
		ir := dnc.Initial(n, c, s.Cfg.Params)
		init, evals = ir.Row, ir.Evals
		if algo == InitOnly {
			observeSolve("line", c, evals, time.Since(t0))
			return init, evals, nil
		}
	case OnlySA:
		init = topo.MeshRow(n)
	default:
		return topo.Row{}, 0, fmt.Errorf("core: unknown algorithm %q", algo)
	}
	m, err := topo.MatrixFromRow(init, c)
	if err != nil {
		return topo.Row{}, 0, err
	}
	rng := s.rngFor(c, algo, uint64(salt)+1)
	if algo == OnlySA {
		m.Randomize(func() bool { return rng.Bool(0.5) })
	}
	// The true starting state is the matrix as the annealer sees it — for
	// OnlySA the randomized matrix, not the mesh it was built from — so the
	// final fallback compares against exactly that state. The annealer's
	// best-so-far tracking already starts there, so the guard only fires if
	// that invariant is ever broken.
	start := m.Row()
	startObj := model.WeightedRowMean(start, s.Cfg.Params, w)
	evals++
	mo := model.NewIncObjective(s.Cfg.Params).WithWeights(w)
	res := anneal.MinimizeMove(ctx, m, mo, s.Sched, rng, false)
	evals += res.Evals
	if ctx.Err() != nil {
		return topo.Row{}, evals, runctl.Cancelled(ctx)
	}
	observeSolve("line", c, evals, time.Since(t0))
	if startObj < res.Obj {
		return start, evals, nil
	}
	return res.Row.Canonical(), evals, nil
}

// WeightedLatency scores a topology against a node-level traffic matrix:
// the γ-weighted mean of pairwise head latencies plus the serialization
// latency at the width implied by c. It is the application-specific analogue
// of Config.EvalTopology.
func WeightedLatency(cfg model.Config, t topo.Topology, c int, gamma [][]float64) (model.Eval, error) {
	width, err := cfg.BW.Width(c)
	if err != nil {
		return model.Eval{}, err
	}
	if err := t.Validate(c); err != nil {
		return model.Eval{}, err
	}
	tp := model.ComputeTopoPaths(t, cfg.Params)
	nn := t.NumRouters()
	var num, den float64
	for src := 0; src < nn; src++ {
		for dst := 0; dst < nn; dst++ {
			if src == dst {
				continue
			}
			g := gamma[src][dst]
			if g == 0 {
				continue
			}
			num += g * tp.PairHead(src, dst)
			den += g
		}
	}
	head := 0.0
	if den > 0 {
		head = num / den
	}
	ser := model.Serialization(cfg.Mix, width)
	return model.Eval{C: c, Width: width, Head: head, Ser: ser, Total: head + ser}, nil
}
