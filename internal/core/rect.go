package core

import (
	"context"
	"fmt"

	"explink/internal/dnc"
	"explink/internal/model"
	"explink/internal/topo"
)

// This file extends the paper's square formulation to rectangular W x H
// networks. The 2D->1D lemma carries over unchanged: with dimension-order
// routing, horizontal traffic sees only the row placement (W routers) and
// vertical traffic only the column placement (H routers), so the two
// one-dimensional problems P̃(W, C) and P̃(H, C) are solved independently and
// the average head latency is rowMean + colMean.

// RectSolution is an optimized rectangular design.
type RectSolution struct {
	W, H  int
	C     int
	Row   topo.Row // X placement, W routers
	Col   topo.Row // Y placement, H routers
	Eval  model.Eval
	Evals int64
}

// RectSolver optimizes rectangular networks. Timing, packet mix and
// bandwidth come from Base (whose N is ignored).
type RectSolver struct {
	W, H int
	Base *Solver
}

// NewRectSolver returns a solver for a W x H network with the paper's
// defaults.
func NewRectSolver(w, h int) *RectSolver {
	return &RectSolver{W: w, H: h, Base: NewSolver(model.DefaultConfig(maxInt(w, h)))}
}

// SolveRect solves both dimensions at link limit c. Cancellation follows
// SolveRow: a cut-short line fails with runctl.ErrCancelled.
func (rs *RectSolver) SolveRect(ctx context.Context, c int, algo Algorithm) (RectSolution, error) {
	if rs.W < 2 || rs.H < 2 {
		return RectSolution{}, fmt.Errorf("core: rectangular network needs both sides >= 2, got %dx%d", rs.W, rs.H)
	}
	if _, err := rs.Base.Cfg.BW.Width(c); err != nil {
		return RectSolution{}, err
	}
	row, evalsRow, err := rs.solveLine(ctx, rs.W, c, algo, 0)
	if err != nil {
		return RectSolution{}, fmt.Errorf("core: rows: %w", err)
	}
	col, evalsCol := row, evalsRow
	if rs.H != rs.W {
		col, evalsCol, err = rs.solveLine(ctx, rs.H, c, algo, 1)
		if err != nil {
			return RectSolution{}, fmt.Errorf("core: cols: %w", err)
		}
	}
	t := topo.Rect(fmt.Sprintf("%s(%dx%d,C=%d)", algo, rs.W, rs.H, c), rs.W, rs.H, row, col)
	ev, err := rs.Base.Cfg.EvalRectTopology(t, c)
	if err != nil {
		return RectSolution{}, err
	}
	return RectSolution{W: rs.W, H: rs.H, C: c, Row: row, Col: col, Eval: ev,
		Evals: evalsRow + evalsCol}, nil
}

// solveLine optimizes one dimension of the rectangle.
func (rs *RectSolver) solveLine(ctx context.Context, n, c int, algo Algorithm, salt uint64) (topo.Row, int64, error) {
	s := *rs.Base // shallow copy so the per-line config tweak stays local
	s.Cfg.N = n
	s.Seed = rs.Base.Seed + salt // distinct but deterministic per dimension
	switch algo {
	case DCSA, OnlySA:
		sol, err := s.SolveRow(ctx, c, algo)
		if err != nil {
			return topo.Row{}, 0, err
		}
		return sol.Row, sol.Evals, nil
	case InitOnly:
		res := dnc.Initial(n, c, s.Cfg.Params)
		return res.Row, res.Evals, nil
	default:
		return topo.Row{}, 0, fmt.Errorf("core: unknown algorithm %q", algo)
	}
}

// OptimizeRect sweeps every feasible link limit and returns the best design
// plus all per-C solutions.
func (rs *RectSolver) OptimizeRect(ctx context.Context, algo Algorithm) (RectSolution, []RectSolution, error) {
	// The binding cross-section is on the longer dimension; sweep its limits.
	limits := rs.Base.Cfg.BW.FeasibleLimits(topo.LinkLimits(maxInt(rs.W, rs.H)))
	if len(limits) == 0 {
		return RectSolution{}, nil, fmt.Errorf("core: no feasible link limits for %dx%d", rs.W, rs.H)
	}
	var all []RectSolution
	var best RectSolution
	for i, c := range limits {
		sol, err := rs.SolveRect(ctx, c, algo)
		if err != nil {
			return RectSolution{}, nil, err
		}
		all = append(all, sol)
		if i == 0 || sol.Eval.Total < best.Eval.Total {
			best = sol
		}
	}
	return best, all, nil
}

// Topology expands a rectangular solution into its full network.
func (rs *RectSolver) Topology(sol RectSolution) topo.Topology {
	return topo.Rect(fmt.Sprintf("D&C_SA(%dx%d,C=%d)", sol.W, sol.H, sol.C),
		sol.W, sol.H, sol.Row, sol.Col)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
