// Package core implements the paper's primary contribution end to end: given
// a network size and a bisection-bandwidth budget, it enumerates the feasible
// link limits C (Section 4.1), solves the one-dimensional placement problem
// P̃(n, C) for each — with the divide-and-conquer initial solution feeding
// the connection-matrix simulated annealing (D&C_SA), or with a random
// initial state (the OnlySA ablation) — and picks the C whose placement
// minimizes the overall average packet latency L_avg = L_D,avg + L_S,avg.
//
// It also implements the application-specific variant of Section 5.6.4,
// which re-optimizes each row and column against a measured traffic matrix.
package core

import (
	"context"
	"fmt"
	"time"

	"explink/internal/anneal"
	"explink/internal/dnc"
	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/runctl"
	"explink/internal/stats"
	"explink/internal/topo"
)

// Algorithm selects the placement strategy.
type Algorithm string

const (
	// DCSA is the proposed scheme: divide-and-conquer initial solution plus
	// connection-matrix simulated annealing.
	DCSA Algorithm = "D&C_SA"
	// OnlySA is the ablation: the same annealing from a random initial state.
	OnlySA Algorithm = "OnlySA"
	// InitOnly stops after the divide-and-conquer initial solution; it
	// exposes the quality of I(n, C) alone.
	InitOnly Algorithm = "InitOnly"
)

// Solver configures the optimization.
type Solver struct {
	Cfg   model.Config
	Sched anneal.Schedule
	Seed  uint64
	// WorstWeight blends the worst-case pair latency into the SA objective:
	// 0 (the paper's formulation) minimizes the average alone; 1 minimizes
	// the worst pair alone. Intermediate values trade the two, an extension
	// useful when tail latency matters (Table 2's metric).
	WorstWeight float64
	// Workers bounds how many sub-problems Optimize (one per feasible C) and
	// SolveWeighted (one per row/column line) solve concurrently; <= 0 uses
	// GOMAXPROCS. Every sub-problem draws from its own rngFor stream, so the
	// output is bit-identical for any worker count, including 1.
	Workers int
	// Store, when non-nil, routes every row and weighted-line solve through
	// a shared content-addressed placement cache: a repeated solve with the
	// same canonical key (n, C, bandwidth, mix, params, weights, algorithm,
	// seed, schedule) returns the cached, bit-identical solution instead of
	// re-running SA. Workers is not part of the key — output never depends
	// on it.
	Store *PlacementStore
}

// NewSolver returns a solver with the paper's default SA schedule.
func NewSolver(cfg model.Config) *Solver {
	return &Solver{Cfg: cfg, Sched: anneal.DefaultSchedule(), Seed: 1}
}

// RowSolution is the outcome of solving P̃(n, C) for one link limit.
type RowSolution struct {
	Algo  Algorithm
	C     int
	Row   topo.Row
	Eval  model.Eval // full-network latency of the replicated placement
	Evals int64      // total placement evaluations (initial generation + SA)
}

func (r RowSolution) String() string {
	return fmt.Sprintf("%s %v -> %v (%d evals)", r.Algo, r.Row, r.Eval, r.Evals)
}

// rowObjective builds the SA objective: the average row head latency, with
// an optional worst-case blend (see Solver.WorstWeight). The returned closure
// owns a routing scratch, so it evaluates without allocating but must stay on
// a single goroutine; SolveRow builds one per invocation.
func (s *Solver) rowObjective() func(topo.Row) float64 {
	w := s.WorstWeight
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	if w == 0 {
		return model.RowObjective(s.Cfg.Params)
	}
	scratch := route.NewScratch()
	rp := s.Cfg.Params.Route()
	return func(r topo.Row) float64 {
		mean, max := scratch.MeanMax(r, rp)
		return (1-w)*mean + w*max
	}
}

// moveObjective is rowObjective's move-aware counterpart for the annealer's
// incremental path; it scores states bit-identically to rowObjective on the
// decoded row (model.IncObjective's contract), so MinimizeMove results match
// Minimize-with-rowObjective results bit for bit. Like the closure it owns
// routing state and must stay on one goroutine.
func (s *Solver) moveObjective() *model.IncObjective {
	return model.NewIncObjective(s.Cfg.Params).WithWorstBlend(s.WorstWeight)
}

// rng derives a deterministic stream per (C, algorithm, salt) so solutions
// for different limits and lines are independent yet reproducible.
func (s *Solver) rngFor(c int, algo Algorithm, salt uint64) *stats.RNG {
	parts := []uint64{s.Seed, uint64(c), salt}
	for _, b := range []byte(algo) {
		parts = append(parts, uint64(b))
	}
	return stats.NewRNG(stats.MixSeed(parts...))
}

func (s *Solver) rng(c int, algo Algorithm) *stats.RNG { return s.rngFor(c, algo, 0) }

// SolveRow solves P̃(n, C) with the chosen algorithm and scores the resulting
// placement on the full network. Cancelling ctx cuts the annealing short and
// fails the solve with an error matching runctl.ErrCancelled — a truncated
// search result would silently misrank the link limits in Optimize. With a
// Store attached the solve is answered from the cache when possible; errors
// (including cancellation) are never cached.
func (s *Solver) SolveRow(ctx context.Context, c int, algo Algorithm) (RowSolution, error) {
	if s.Store == nil {
		return s.solveRowUncached(ctx, c, algo)
	}
	sp, _, err := s.Store.GetOrCompute(s.rowKey(c, algo), func() (StoredPlacement, error) {
		sol, err := s.solveRowUncached(ctx, c, algo)
		if err != nil {
			return StoredPlacement{}, err
		}
		return storedFromSolution(sol), nil
	})
	if err != nil {
		return RowSolution{}, err
	}
	return sp.RowSolution(), nil
}

func (s *Solver) solveRowUncached(ctx context.Context, c int, algo Algorithm) (RowSolution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if err := s.Cfg.Validate(); err != nil {
		return RowSolution{}, err
	}
	if _, err := s.Cfg.BW.Width(c); err != nil {
		return RowSolution{}, err
	}
	n := s.Cfg.N

	var row topo.Row
	var evals int64
	switch algo {
	case DCSA, InitOnly:
		init := dnc.Initial(n, c, s.Cfg.Params)
		evals = init.Evals
		row = init.Row
		if algo == DCSA {
			m, err := topo.MatrixFromRow(init.Row, c)
			if err != nil {
				return RowSolution{}, fmt.Errorf("core: encoding initial solution: %w", err)
			}
			// The annealer tracks best-so-far starting from the initial
			// state, so its result is never worse than the D&C placement
			// under the active objective.
			res := anneal.MinimizeMove(ctx, m, s.moveObjective(), s.Sched, s.rng(c, algo), false)
			evals += res.Evals
			row = res.Row
		}
	case OnlySA:
		m := topo.NewConnMatrix(n, c)
		rng := s.rng(c, algo)
		m.Randomize(func() bool { return rng.Bool(0.5) })
		res := anneal.MinimizeMove(ctx, m, s.moveObjective(), s.Sched, rng, false)
		evals = res.Evals
		row = res.Row
	default:
		return RowSolution{}, fmt.Errorf("core: unknown algorithm %q", algo)
	}
	if ctx.Err() != nil {
		return RowSolution{}, fmt.Errorf("core: C=%d solve interrupted after %d evals: %w",
			c, evals, runctl.Cancelled(ctx))
	}

	row = row.Dedupe() // duplicate spans add ports, never shorten paths
	ev, err := s.Cfg.EvalRow(row, c)
	if err != nil {
		return RowSolution{}, fmt.Errorf("core: solution infeasible at C=%d: %w", c, err)
	}
	observeSolve("row", c, evals, time.Since(start))
	return RowSolution{Algo: algo, C: c, Row: row, Eval: ev, Evals: evals}, nil
}

// Optimize sweeps every feasible link limit, solves each, and returns the
// best solution along with all per-C solutions (the D&C_SA curve of Fig. 5).
// The per-C sub-problems are independent and run on a worker pool bounded by
// s.Workers; output is bit-identical to a sequential sweep. On failure all
// per-C errors are aggregated into the returned error; cancellation of ctx
// fails every unfinished sub-problem with runctl.ErrCancelled.
func (s *Solver) Optimize(ctx context.Context, algo Algorithm) (RowSolution, []RowSolution, error) {
	limits := s.Cfg.BW.FeasibleLimits(topo.LinkLimits(s.Cfg.N))
	if len(limits) == 0 {
		return RowSolution{}, nil, fmt.Errorf("core: no feasible link limits for n=%d", s.Cfg.N)
	}
	all := make([]RowSolution, len(limits))
	err := forEachIndex(ctx, len(limits), s.Workers, func(i int) error {
		sol, err := s.SolveRow(ctx, limits[i], algo)
		if err != nil {
			return fmt.Errorf("core: C=%d: %w", limits[i], err)
		}
		all[i] = sol
		return nil
	})
	if err != nil {
		return RowSolution{}, nil, err
	}
	best := all[0]
	for _, sol := range all[1:] {
		if sol.Eval.Total < best.Eval.Total {
			best = sol
		}
	}
	return best, all, nil
}

// Topology expands a row solution into the full network by the 2D->1D lemma.
func (s *Solver) Topology(sol RowSolution) topo.Topology {
	name := fmt.Sprintf("%s(C=%d)", sol.Algo, sol.C)
	return topo.Uniform(name, s.Cfg.N, sol.Row)
}
