package core

import (
	"context"
	"math"
	"testing"

	"explink/internal/model"
	"explink/internal/topo"
)

// skewedTraffic builds a traffic matrix where every node talks only to the
// node mirrored across its row (same row, opposite column).
func skewedTraffic(n int) [][]float64 {
	nn := n * n
	g := make([][]float64, nn)
	for s := range g {
		g[s] = make([]float64, nn)
		x, y := s%n, s/n
		d := y*n + (n - 1 - x)
		if d != s {
			g[s][d] = 1
		}
	}
	return g
}

func TestWeightsFromMatrix(t *testing.T) {
	n := 4
	g := skewedTraffic(n)
	w, err := WeightsFromMatrix(n, g)
	if err != nil {
		t.Fatal(err)
	}
	// All traffic is horizontal: column weights must be zero.
	for x := 0; x < n; x++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if w.ColW[x][a][b] != 0 {
					t.Fatalf("unexpected column traffic at col %d (%d->%d)", x, a, b)
				}
			}
		}
	}
	// Each row has one unit from column a to column n-1-a.
	for y := 0; y < n; y++ {
		for a := 0; a < n; a++ {
			want := 1.0
			if a == n-1-a {
				want = 0
			}
			if w.RowW[y][a][n-1-a] != want {
				t.Fatalf("row %d weight (%d->%d) = %g", y, a, n-1-a, w.RowW[y][a][n-1-a])
			}
		}
	}
}

func TestWeightsFromMatrixErrors(t *testing.T) {
	if _, err := WeightsFromMatrix(4, make([][]float64, 3)); err == nil {
		t.Fatal("bad shape accepted")
	}
	g := skewedTraffic(2)
	g[0][3] = -1
	if _, err := WeightsFromMatrix(2, g); err == nil {
		t.Fatal("negative traffic accepted")
	}
	ragged := make([][]float64, 4)
	for i := range ragged {
		ragged[i] = make([]float64, 3)
	}
	if _, err := WeightsFromMatrix(2, ragged); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestSolveWeightedImprovesOnGeneric(t *testing.T) {
	// Section 5.6.4: with traffic known in advance, the weighted re-solve
	// must cut the weighted latency further than the general-purpose
	// placement does. Mirror traffic stresses long row hauls, which the
	// uniform objective under-weights.
	n := 8
	cfg := model.DefaultConfig(n)
	s := NewSolver(cfg)
	g := skewedTraffic(n)
	w, err := WeightsFromMatrix(n, g)
	if err != nil {
		t.Fatal(err)
	}
	const c = 4

	generic, err := s.SolveRow(context.Background(), c, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	genericTopo := s.Topology(generic)
	genericEval, err := WeightedLatency(cfg, genericTopo, c, g)
	if err != nil {
		t.Fatal(err)
	}

	app, err := s.SolveWeighted(context.Background(), c, w, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if app.Evals <= 0 || len(app.RowEvals) != n || len(app.ColEvals) != n {
		t.Fatalf("missing evaluation accounting: %+v", app)
	}
	for i := 0; i < n; i++ {
		if app.RowEvals[i] <= 0 || app.ColEvals[i] <= 0 {
			t.Fatalf("line %d reported no evaluations", i)
		}
	}
	appEval, err := WeightedLatency(cfg, app.Topology, c, g)
	if err != nil {
		t.Fatal(err)
	}
	if appEval.Total > genericEval.Total+1e-9 {
		t.Fatalf("app-specific %g worse than generic %g", appEval.Total, genericEval.Total)
	}
	// For mirror traffic the improvement should be clearly visible.
	if appEval.Head >= genericEval.Head {
		t.Fatalf("no head-latency gain: %g vs %g", appEval.Head, genericEval.Head)
	}
}

func TestSolveWeightedValid(t *testing.T) {
	n := 8
	s := NewSolver(model.DefaultConfig(n))
	s.Sched = s.Sched.WithMoves(1000)
	w, err := WeightsFromMatrix(n, skewedTraffic(n))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.SolveWeighted(context.Background(), 4, w, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Topology.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWeightedErrors(t *testing.T) {
	s := solver8()
	w := TrafficWeights{N: 4}
	if _, err := s.SolveWeighted(context.Background(), 4, w, DCSA); err == nil {
		t.Fatal("size mismatch accepted")
	}
	w8, _ := WeightsFromMatrix(8, skewedTraffic(8))
	if _, err := s.SolveWeighted(context.Background(), 1024, w8, DCSA); err == nil {
		t.Fatal("bad link limit accepted")
	}
	if _, err := s.SolveWeighted(context.Background(), 4, w8, Algorithm("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestWeightedLatencyUniformTrafficMatchesEval(t *testing.T) {
	// With uniform all-pairs traffic the weighted latency must equal the
	// unweighted topology evaluation up to the diagonal convention: Eval
	// divides by N², the weighted version by the number of weighted pairs.
	n := 4
	cfg := model.DefaultConfig(n)
	nn := n * n
	g := make([][]float64, nn)
	for i := range g {
		g[i] = make([]float64, nn)
		for j := range g[i] {
			if i != j {
				g[i][j] = 1
			}
		}
	}
	tp := topo.Mesh(n)
	we, err := WeightedLatency(cfg, tp, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	ue, err := cfg.EvalTopology(tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(nn*nn) / float64(nn*(nn-1))
	if math.Abs(we.Head-ue.Head*ratio) > 1e-9 {
		t.Fatalf("weighted head %g vs scaled unweighted %g", we.Head, ue.Head*ratio)
	}
}
