package core

import (
	"context"
	"math"
	"testing"

	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/topo"
)

func TestSolveRectBasic(t *testing.T) {
	rs := NewRectSolver(8, 4)
	sol, err := rs.SolveRect(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Row.N != 8 || sol.Col.N != 4 {
		t.Fatalf("line lengths: row %d col %d", sol.Row.N, sol.Col.N)
	}
	tp := rs.Topology(sol)
	if err := tp.Validate(4); err != nil {
		t.Fatal(err)
	}
	if tp.NumRouters() != 32 {
		t.Fatalf("routers = %d", tp.NumRouters())
	}
	// The rectangular lemma: 2D mean head = rowMean + colMean.
	rowMean := model.RowMean(sol.Row, rs.Base.Cfg.Params)
	colMean := model.RowMean(sol.Col, rs.Base.Cfg.Params)
	if math.Abs(sol.Eval.Head-(rowMean+colMean)) > 1e-9 {
		t.Fatalf("head %g != rowMean %g + colMean %g", sol.Eval.Head, rowMean, colMean)
	}
}

func TestSolveRectBeatsRectMesh(t *testing.T) {
	rs := NewRectSolver(8, 4)
	best, all, err := rs.OptimizeRect(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no solutions")
	}
	meshEval, err := rs.Base.Cfg.EvalRectTopology(topo.MeshRect(8, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Eval.Total >= meshEval.Total {
		t.Fatalf("rect optimum %.2f not below mesh %.2f", best.Eval.Total, meshEval.Total)
	}
}

func TestSolveRectSquareMatchesSquareSolver(t *testing.T) {
	rs := NewRectSolver(8, 8)
	rectSol, err := rs.SolveRect(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	sq := NewSolver(model.DefaultConfig(8))
	sqSol, err := sq.SolveRow(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same dimension, same algorithm: identical placements.
	if !rectSol.Row.Equal(sqSol.Row) {
		t.Fatalf("square-as-rect diverged: %v vs %v", rectSol.Row, sqSol.Row)
	}
	if math.Abs(rectSol.Eval.Total-sqSol.Eval.Total) > 1e-9 {
		t.Fatalf("evals differ: %g vs %g", rectSol.Eval.Total, sqSol.Eval.Total)
	}
}

func TestSolveRectDeadlockFree(t *testing.T) {
	rs := NewRectSolver(8, 4)
	sol, err := rs.SolveRect(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := route.TopologyCDGAcyclic(rs.Topology(sol), rs.Base.Cfg.Params.Route())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rectangular topology has a cyclic CDG")
	}
}

func TestSolveRectErrors(t *testing.T) {
	if _, err := NewRectSolver(1, 8).SolveRect(context.Background(), 2, DCSA); err == nil {
		t.Fatal("degenerate width accepted")
	}
	if _, err := NewRectSolver(8, 4).SolveRect(context.Background(), 1024, DCSA); err == nil {
		t.Fatal("bad limit accepted")
	}
	if _, err := NewRectSolver(8, 4).SolveRect(context.Background(), 2, Algorithm("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSolveRectInitOnly(t *testing.T) {
	rs := NewRectSolver(8, 4)
	sol, err := rs.SolveRect(context.Background(), 2, InitOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Topology(sol).Validate(2); err != nil {
		t.Fatal(err)
	}
}
