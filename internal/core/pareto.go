package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"explink/internal/anneal"
	"explink/internal/dnc"
	"explink/internal/model"
	"explink/internal/power"
	"explink/internal/runctl"
	"explink/internal/stats"
	"explink/internal/topo"
)

// Multi-objective placement search: SolvePareto runs the archive-based
// vector annealer (anneal.MinimizePareto) over {latency, power, wiring}
// instead of collapsing everything into one scalar, and returns the
// non-dominated frontier across link limits. The scalar SolveRow/Optimize
// path is untouched — it stays the k=1 special case.

// ParetoSA labels frontier solves in results and cache keys. It is a
// distinct Algorithm so frontier artifacts can never alias scalar ones.
const ParetoSA Algorithm = "ParetoSA"

// Objective names one frontier dimension. Values are wire-stable: they
// appear in API requests, cache-key preimages and report tables.
type Objective string

const (
	// ObjLatency is the paper's L_avg in cycles: 2·row head mean plus the
	// mix-average serialization at the C-dependent link width.
	ObjLatency Objective = "latency"
	// ObjPower is the sim-free placement power in watts: component static
	// power plus wiring leakage (power.PlacementCost.TotalPower).
	ObjPower Objective = "power"
	// ObjWiring is the wire demand in bit-units (power.PlacementCost.
	// WireBitUnits) — the floorplanner's cost, independent of leakage
	// coefficients.
	ObjWiring Objective = "wiring"
)

// AllObjectives is the canonical dimension order; an empty objective list
// means all of these.
var AllObjectives = []Objective{ObjLatency, ObjPower, ObjWiring}

// ParseObjectives canonicalizes an objective-name list: empty input means
// AllObjectives; unknown names and duplicates are errors. The returned slice
// is always a fresh copy in caller order.
func ParseObjectives(names []string) ([]Objective, error) {
	if len(names) == 0 {
		return append([]Objective(nil), AllObjectives...), nil
	}
	out := make([]Objective, 0, len(names))
	seen := make(map[Objective]bool, len(names))
	for _, name := range names {
		o := Objective(strings.TrimSpace(name))
		switch o {
		case ObjLatency, ObjPower, ObjWiring:
		default:
			return nil, fmt.Errorf("core: unknown objective %q (have latency, power, wiring)", name)
		}
		if seen[o] {
			return nil, fmt.Errorf("core: duplicate objective %q", o)
		}
		seen[o] = true
		out = append(out, o)
	}
	return out, nil
}

// ParetoSpec configures a frontier solve.
type ParetoSpec struct {
	// Objectives are the frontier dimensions in order; empty means
	// AllObjectives.
	Objectives []Objective
	// ArchiveCap bounds the per-C non-dominated archive; <= 0 means
	// anneal.DefaultArchiveCap.
	ArchiveCap int
	// Power supplies the sim-free cost coefficients; the zero value means
	// power.DefaultModel().
	Power power.Model
}

// resolved returns the spec with every default applied; all cache keys and
// solves derive from the resolved form.
func (sp ParetoSpec) resolved() (ParetoSpec, error) {
	out := sp
	var err error
	if out.Objectives, err = ParseObjectives(objectiveNames(sp.Objectives)); err != nil {
		return ParetoSpec{}, err
	}
	if out.ArchiveCap <= 0 {
		out.ArchiveCap = anneal.DefaultArchiveCap
	}
	if out.Power == (power.Model{}) {
		out.Power = power.DefaultModel()
	}
	return out, nil
}

func objectiveNames(objs []Objective) []string {
	if len(objs) == 0 {
		return nil
	}
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = string(o)
	}
	return out
}

// FrontierEntry is one non-dominated placement.
type FrontierEntry struct {
	C    int
	Row  topo.Row
	Eval model.Eval          // latency breakdown at this C's width
	Cost power.PlacementCost // sim-free power/wiring breakdown
	Objs []float64           // objective vector, Frontier.Objectives order
}

// Frontier is the outcome of a Pareto solve: mutually non-dominated entries
// in deterministic order — lexicographic by objective vector, then by C,
// then by placement — deduped, with every Objs recomputed canonically from
// the entry's deduped row.
type Frontier struct {
	Objectives []Objective
	Entries    []FrontierEntry
	Evals      int64 // total placement evaluations across all C
}

// paretoVector adapts the objective dimensions to the annealer's
// VectorMoveObjective protocol. The latency dimension rides on the PR 7
// incremental router (model.IncObjective); power and wiring decode the
// mirror matrix and price it with the closed-form evaluator — sim-free, so
// every dimension is cheap inside the move loop. Not safe for concurrent
// use; one per solve.
type paretoVector struct {
	dims    []Objective
	inc     *model.IncObjective // nil when latency is not a dimension
	m       *topo.ConnMatrix    // private mirror for the power dimensions
	pending int
	width   int
	ser     float64 // serialization latency, constant at fixed C
	pm      power.Model
}

func newParetoVector(dims []Objective, p model.Params, pm power.Model, width int, ser float64) *paretoVector {
	v := &paretoVector{dims: dims, width: width, ser: ser, pm: pm}
	for _, d := range dims {
		if d == ObjLatency {
			v.inc = model.NewIncObjective(p)
		}
	}
	return v
}

func (v *paretoVector) K() int { return len(v.dims) }

func (v *paretoVector) Init(m *topo.ConnMatrix, dst []float64) {
	v.m = m.Clone()
	var rowMean float64
	if v.inc != nil {
		rowMean = v.inc.Init(m)
	}
	v.fill(dst, rowMean)
}

func (v *paretoVector) Flip(bit int) {
	if v.inc != nil {
		v.inc.Flip(bit)
	}
	v.m.FlipAt(bit)
	v.pending = bit
}

func (v *paretoVector) Eval(dst []float64) {
	var rowMean float64
	if v.inc != nil {
		rowMean = v.inc.Eval()
	}
	v.fill(dst, rowMean)
}

func (v *paretoVector) Commit() {
	if v.inc != nil {
		v.inc.Commit()
	}
}

func (v *paretoVector) Revert() {
	if v.inc != nil {
		v.inc.Revert()
	}
	v.m.FlipAt(v.pending)
}

// fill writes the objective vector of the tracked state. The placement cost
// is computed at most once per call even when both power and wiring are
// dimensions.
func (v *paretoVector) fill(dst []float64, rowMean float64) {
	var cost power.PlacementCost
	haveCost := false
	for i, d := range v.dims {
		switch d {
		case ObjLatency:
			dst[i] = 2*rowMean + v.ser
		default:
			if !haveCost {
				cost = v.pm.PlacementCost(v.m.Row(), v.width)
				haveCost = true
			}
			if d == ObjPower {
				dst[i] = cost.TotalPower()
			} else {
				dst[i] = cost.WireBitUnits
			}
		}
	}
}

// objsFor recomputes the canonical objective vector of a finished entry from
// its deduped row — the same values the move loop saw (duplicate spans never
// change any dimension), but derived from the durable representation.
func objsFor(dims []Objective, ev model.Eval, cost power.PlacementCost) []float64 {
	out := make([]float64, len(dims))
	for i, d := range dims {
		switch d {
		case ObjLatency:
			out[i] = ev.Total
		case ObjPower:
			out[i] = cost.TotalPower()
		default:
			out[i] = cost.WireBitUnits
		}
	}
	return out
}

// paretoScales derives the per-dimension acceptance scales from the initial
// state: each dimension is normalized by the ratio of its initial value to
// dimension 0's, so one temperature schedule (tuned in cycles of ΔL) spans
// units from watts to bit-units. Deterministic — a pure function of the
// initial vector — and irrelevant for k=1 (all scales 1 when the ratio
// guard trips or dims match).
func paretoScales(init []float64) []float64 {
	scales := make([]float64, len(init))
	for d := range scales {
		scales[d] = 1
		if init[0] > 0 && init[d] > 0 {
			scales[d] = init[d] / init[0]
		}
	}
	return scales
}

// SolvePareto runs the multi-objective placement search. c > 0 solves one
// link limit; c <= 0 sweeps every feasible limit (the Optimize analogue) on
// the solver's worker pool and merges the per-C archives into one frontier.
// With a Store attached every frontier entry is cached individually under a
// frontier-salted key (see paretoKey), so a warm re-run solves nothing.
func (s *Solver) SolvePareto(ctx context.Context, c int, spec ParetoSpec) (Frontier, error) {
	rspec, err := spec.resolved()
	if err != nil {
		return Frontier{}, err
	}
	if err := s.Cfg.Validate(); err != nil {
		return Frontier{}, err
	}
	if c > 0 {
		entries, evals, err := s.solveParetoC(ctx, c, rspec)
		if err != nil {
			return Frontier{}, err
		}
		return finishFrontier(rspec.Objectives, entries, evals), nil
	}

	limits := s.Cfg.BW.FeasibleLimits(topo.LinkLimits(s.Cfg.N))
	if len(limits) == 0 {
		return Frontier{}, fmt.Errorf("core: no feasible link limits for n=%d", s.Cfg.N)
	}
	perC := make([][]FrontierEntry, len(limits))
	perEvals := make([]int64, len(limits))
	err = forEachIndex(ctx, len(limits), s.Workers, func(i int) error {
		entries, evals, err := s.solveParetoC(ctx, limits[i], rspec)
		if err != nil {
			return fmt.Errorf("core: C=%d: %w", limits[i], err)
		}
		perC[i], perEvals[i] = entries, evals
		return nil
	})
	if err != nil {
		return Frontier{}, err
	}
	var merged []FrontierEntry
	var evals int64
	for i := range perC {
		merged = append(merged, perC[i]...)
		evals += perEvals[i]
	}
	return finishFrontier(rspec.Objectives, merged, evals), nil
}

// finishFrontier filters the merged entries to the non-dominated set, sorts
// them deterministically and drops exact duplicates.
func finishFrontier(dims []Objective, entries []FrontierEntry, evals int64) Frontier {
	points := make([][]float64, len(entries))
	for i := range entries {
		points[i] = entries[i].Objs
	}
	kept := make([]FrontierEntry, 0, len(entries))
	for _, i := range stats.ParetoFront(points) {
		kept = append(kept, entries[i])
	}
	sort.Slice(kept, func(a, b int) bool {
		if cmp := stats.CompareLex(kept[a].Objs, kept[b].Objs); cmp != 0 {
			return cmp < 0
		}
		if kept[a].C != kept[b].C {
			return kept[a].C < kept[b].C
		}
		return kept[a].Row.String() < kept[b].Row.String()
	})
	out := kept[:0]
	for i, e := range kept {
		if i > 0 {
			prev := out[len(out)-1]
			if prev.C == e.C && stats.CompareLex(prev.Objs, e.Objs) == 0 && prev.Row.Equal(e.Row) {
				continue
			}
		}
		out = append(out, e)
	}
	return Frontier{Objectives: dims, Entries: out, Evals: evals}
}

// solveParetoC answers one link limit's archive, through the store when one
// is attached. The cache layout is one meta entry (archive size + evals)
// plus one entry per archived placement, all under the frontier-salted base
// key; the real anneal runs at most once per process even when several
// cached pieces are missing or corrupt (sync.Once), and a warm store
// answers everything without solving.
func (s *Solver) solveParetoC(ctx context.Context, c int, spec ParetoSpec) ([]FrontierEntry, int64, error) {
	if s.Store == nil {
		return s.solveParetoUncached(ctx, c, spec)
	}
	base := s.paretoKey(c, spec)
	var once sync.Once
	var computed []FrontierEntry
	var computedEvals int64
	var computeErr error
	run := func() {
		computed, computedEvals, computeErr = s.solveParetoUncached(ctx, c, spec)
	}

	meta, _, err := s.Store.GetOrCompute(base+"frontier=meta\n", func() (StoredPlacement, error) {
		once.Do(run)
		if computeErr != nil {
			return StoredPlacement{}, computeErr
		}
		return StoredPlacement{
			Algo:  ParetoSA,
			C:     c,
			N:     s.Cfg.N,
			Evals: computedEvals,
			Count: len(computed),
		}, nil
	})
	if err != nil {
		return nil, 0, err
	}

	entries := make([]FrontierEntry, meta.Count)
	for i := 0; i < meta.Count; i++ {
		i := i
		sp, _, err := s.Store.GetOrCompute(base+fmt.Sprintf("frontier=entry:%d\n", i), func() (StoredPlacement, error) {
			once.Do(run)
			if computeErr != nil {
				return StoredPlacement{}, computeErr
			}
			if i >= len(computed) {
				return StoredPlacement{}, fmt.Errorf("core: frontier entry %d beyond recomputed archive of %d (stale meta)", i, len(computed))
			}
			e := computed[i]
			sp := StoredPlacement{
				Algo:  ParetoSA,
				C:     c,
				N:     s.Cfg.N,
				Eval:  e.Eval,
				Evals: computedEvals,
				Objs:  e.Objs,
			}
			if len(e.Row.Express) > 0 {
				sp.Express = e.Row.Express
			}
			return sp, nil
		})
		if err != nil {
			return nil, 0, err
		}
		entries[i] = s.frontierEntryFromStored(sp, spec)
	}
	return entries, meta.Evals, nil
}

// frontierEntryFromStored rebuilds an entry from its cached form; the
// placement cost is cheap and derived, so it is recomputed rather than
// persisted.
func (s *Solver) frontierEntryFromStored(sp StoredPlacement, spec ParetoSpec) FrontierEntry {
	row := sp.Row()
	return FrontierEntry{
		C:    sp.C,
		Row:  row,
		Eval: sp.Eval,
		Cost: spec.Power.PlacementCost(row, sp.Eval.Width),
		Objs: sp.Objs,
	}
}

// solveParetoUncached runs one link limit's archive anneal: D&C initial
// solution (the DCSA anchor), vector annealing, then per-entry dedupe,
// feasibility scoring and canonical objective recomputation. Entries return
// sorted lexicographically by objective vector.
func (s *Solver) solveParetoUncached(ctx context.Context, c int, spec ParetoSpec) ([]FrontierEntry, int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	width, err := s.Cfg.BW.Width(c)
	if err != nil {
		return nil, 0, err
	}
	n := s.Cfg.N
	ser := model.Serialization(s.Cfg.Mix, width)

	init := dnc.Initial(n, c, s.Cfg.Params)
	evals := init.Evals
	m, err := topo.MatrixFromRow(init.Row, c)
	if err != nil {
		return nil, 0, fmt.Errorf("core: encoding initial solution: %w", err)
	}

	vo := newParetoVector(spec.Objectives, s.Cfg.Params, spec.Power, width, ser)
	initObjs := make([]float64, vo.K())
	vo.Init(m, initObjs)
	opts := anneal.ParetoOpts{ArchiveCap: spec.ArchiveCap, Scales: paretoScales(initObjs)}

	res := anneal.MinimizePareto(ctx, m, newParetoVector(spec.Objectives, s.Cfg.Params, spec.Power, width, ser),
		opts, s.Sched, s.rng(c, ParetoSA))
	evals += res.Evals
	if ctx.Err() != nil {
		return nil, 0, fmt.Errorf("core: C=%d pareto solve interrupted after %d evals: %w",
			c, evals, runctl.Cancelled(ctx))
	}

	entries := make([]FrontierEntry, 0, len(res.Entries))
	for _, e := range res.Entries {
		row := e.Row.Dedupe()
		dup := false
		for _, prev := range entries {
			if prev.Row.Equal(row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ev, err := s.Cfg.EvalRow(row, c)
		if err != nil {
			return nil, 0, fmt.Errorf("core: archived placement infeasible at C=%d: %w", c, err)
		}
		cost := spec.Power.PlacementCost(row, width)
		entries = append(entries, FrontierEntry{
			C:    c,
			Row:  row,
			Eval: ev,
			Cost: cost,
			Objs: objsFor(spec.Objectives, ev, cost),
		})
	}
	sort.Slice(entries, func(a, b int) bool {
		if cmp := stats.CompareLex(entries[a].Objs, entries[b].Objs); cmp != 0 {
			return cmp < 0
		}
		return entries[a].Row.String() < entries[b].Row.String()
	})
	return entries, evals, nil
}

// paretoKey is the canonical cache-key base for one link limit's frontier:
// the solver-wide configKey plus everything else a frontier solve depends on
// — the algorithm label, C, the objective list and archive cap, and the
// power-model coefficients the power/wiring dimensions price with. Entry and
// meta keys append their own "frontier=..." suffix, so frontier artifacts
// can never collide with scalar row/line entries (different kind=) or with
// each other.
func (s *Solver) paretoKey(c int, spec ParetoSpec) string {
	var b strings.Builder
	s.configKey(&b)
	fmt.Fprintf(&b, "kind=pareto\nalgo=%s\nc=%d\narchive=%d\n", ParetoSA, c, spec.ArchiveCap)
	b.WriteString("objectives=")
	for i, o := range spec.Objectives {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(o))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "power=%s,%s,%s,%s,%d,%s\n",
		fnum(spec.Power.Static.BufPerBit), fnum(spec.Power.Static.XbarPerBK2),
		fnum(spec.Power.Static.OtherPerPort), fnum(spec.Power.Static.OtherBase),
		spec.Power.BufBitsPerRouter, fnum(spec.Power.WirePerBitUnit))
	return b.String()
}
