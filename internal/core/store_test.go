package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"explink/internal/model"
	"explink/internal/runctl"
	"explink/internal/stats"
)

func quickSolver(n int) *Solver {
	s := NewSolver(model.DefaultConfig(n))
	s.Sched = s.Sched.WithMoves(800)
	return s
}

// Every input the issue names for the canonical key — n, C, seed, budget
// (Quick schedules), method and packet mix — must produce a distinct key, or
// the cache would alias solves that can differ.
func TestStoreKeyCanonicalization(t *testing.T) {
	base := func() *Solver { return quickSolver(8) }
	mutations := map[string]func() (s *Solver, c int, algo Algorithm){
		"base":     func() (*Solver, int, Algorithm) { return base(), 4, DCSA },
		"n":        func() (*Solver, int, Algorithm) { return quickSolver(16), 4, DCSA },
		"c":        func() (*Solver, int, Algorithm) { return base(), 2, DCSA },
		"algo":     func() (*Solver, int, Algorithm) { return base(), 4, OnlySA },
		"initonly": func() (*Solver, int, Algorithm) { return base(), 4, InitOnly },
		"seed": func() (*Solver, int, Algorithm) {
			s := base()
			s.Seed = 2
			return s, 4, DCSA
		},
		"budget": func() (*Solver, int, Algorithm) {
			s := base()
			s.Sched = s.Sched.WithMoves(1500) // the Quick-vs-full budget split
			return s, 4, DCSA
		},
		"stop": func() (*Solver, int, Algorithm) {
			s := base()
			s.Sched.StopAfterNoImprove = 1000 // fig12's convergence measurement
			return s, 4, DCSA
		},
		"mix": func() (*Solver, int, Algorithm) {
			s := base()
			s.Cfg.Mix = []model.PacketClass{{Name: "uni", Bits: 256, Frac: 1}}
			return s, 4, DCSA
		},
		"bw": func() (*Solver, int, Algorithm) {
			s := base()
			s.Cfg.BW.BaseWidth = 1024 // fig11's bandwidth scenarios
			return s, 4, DCSA
		},
		"worst": func() (*Solver, int, Algorithm) {
			s := base()
			s.WorstWeight = 0.5
			return s, 4, DCSA
		},
		"params": func() (*Solver, int, Algorithm) {
			s := base()
			s.Cfg.Params.RouterDelay = 4
			return s, 4, DCSA
		},
	}
	seen := map[string]string{}
	for name, mk := range mutations {
		s, c, algo := mk()
		key := s.rowKey(c, algo)
		if prev, dup := seen[key]; dup {
			t.Fatalf("key for %q aliases %q:\n%s", name, prev, key)
		}
		seen[key] = name
	}
	// Workers must NOT be part of the key: output is worker-count invariant.
	a, b := base(), base()
	b.Workers = 1
	if a.rowKey(4, DCSA) != b.rowKey(4, DCSA) {
		t.Fatal("Workers leaked into the cache key")
	}
}

func TestStoreLineKeyDistinctFromRowAndWeights(t *testing.T) {
	s := quickSolver(8)
	w0 := make([][]float64, 8)
	w1 := make([][]float64, 8)
	for i := range w0 {
		w0[i] = make([]float64, 8)
		w1[i] = make([]float64, 8)
	}
	w1[0][7] = 1.5
	keys := []string{
		s.rowKey(4, DCSA),
		s.lineKey(4, DCSA, w0, 0),
		s.lineKey(4, DCSA, w0, 1), // same weights, different line salt
		s.lineKey(4, DCSA, w1, 0), // same salt, different weights
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[i] == keys[j] {
				t.Fatalf("keys %d and %d alias:\n%s", i, j, keys[i])
			}
		}
	}
}

func TestStoreSecondSolveIsBitIdenticalHit(t *testing.T) {
	st, err := NewPlacementStore("")
	if err != nil {
		t.Fatal(err)
	}
	s := quickSolver(8)
	s.Store = st
	first, err := s.SolveRow(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.Solves != 1 || c.Hits != 0 {
		t.Fatalf("after first solve: %v", c)
	}
	second, err := s.SolveRow(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache hit not bit-identical:\n%v\nvs\n%v", first, second)
	}
	if c := st.Counters(); c.Solves != 1 || c.Hits != 1 {
		t.Fatalf("after second solve: %v", c)
	}
	// The cached solution matches what an uncached solver produces.
	bare := quickSolver(8)
	want, err := bare.SolveRow(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("stored solve diverged from uncached solve:\n%v\nvs\n%v", first, want)
	}
}

func TestStoreDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := quickSolver(8)
	s.Store = st
	cold, _, err := s.Optimize(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	solves := st.Counters().Solves
	if solves == 0 {
		t.Fatal("no solves recorded")
	}

	// A fresh store over the same directory answers everything from disk.
	warm, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := quickSolver(8)
	s2.Store = warm
	hot, _, err := s2.Optimize(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if c := warm.Counters(); c.Solves != 0 || c.DiskHits != solves {
		t.Fatalf("warm run should be disk-only: %v (cold solves %d)", c, solves)
	}
	if !reflect.DeepEqual(cold, hot) {
		t.Fatalf("disk round trip not bit-identical:\n%v\nvs\n%v", cold, hot)
	}
}

// Corrupt on-disk entries must count as misses (recompute), never as errors.
func TestStoreCorruptDiskEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	st, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := quickSolver(8)
	s.Store = st
	want, err := s.SolveRow(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files = %v, err = %v", files, err)
	}

	corruptions := map[string]string{
		"garbage":   "{not json",
		"wrong key": `{"key":"somebody else's question","placement":{"algo":"D&C_SA","c":4,"n":8,"evals":1}}`,
		"bad row":   `{"key":"%KEY%","placement":{"algo":"D&C_SA","c":4,"n":8,"express":[{"From":0,"To":99}],"evals":1}}`,
		"empty":     "",
	}
	key := s.rowKey(4, DCSA)
	for name, content := range corruptions {
		body := content
		if body != "" {
			body = replaceAll(body, "%KEY%", key)
		}
		if err := os.WriteFile(files[0], []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewPlacementStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		s3 := quickSolver(8)
		s3.Store = fresh
		got, err := s3.SolveRow(context.Background(), 4, DCSA)
		if err != nil {
			t.Fatalf("%s: corrupt entry surfaced as error: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: recompute after corruption diverged", name)
		}
		if c := fresh.Counters(); c.Solves != 1 || c.DiskHits != 0 {
			t.Fatalf("%s: corrupt entry should be a miss: %v", name, c)
		}
	}
}

// Concurrent solves of the same key must collapse to one real solve.
func TestStoreSingleFlight(t *testing.T) {
	st, err := NewPlacementStore("")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]RowSolution, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := quickSolver(8)
			s.Store = st
			results[i], errs[i] = s.SolveRow(context.Background(), 4, DCSA)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("goroutine %d saw a different solution", i)
		}
	}
	if c := st.Counters(); c.Solves != 1 || c.Hits != goroutines-1 {
		t.Fatalf("single-flight violated: %v", c)
	}
}

// A cancelled solve must not poison the cache: the error propagates, nothing
// is stored, and a later solve succeeds.
func TestStoreFailedComputeNotCached(t *testing.T) {
	st, err := NewPlacementStore("")
	if err != nil {
		t.Fatal(err)
	}
	s := quickSolver(8)
	s.Store = st
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveRow(ctx, 4, DCSA); !errors.Is(err, runctl.ErrCancelled) {
		t.Fatalf("cancelled solve returned %v", err)
	}
	if st.Len() != 0 {
		t.Fatalf("failed solve was cached (%d entries)", st.Len())
	}
	if _, err := s.SolveRow(context.Background(), 4, DCSA); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if st.Len() != 1 {
		t.Fatalf("retry not cached (%d entries)", st.Len())
	}
}

// SolveWeighted routes per-line solves through the store: a repeated call is
// answered without new solves and reproduces the solution exactly.
func TestStoreWeightedLineReuse(t *testing.T) {
	st, err := NewPlacementStore("")
	if err != nil {
		t.Fatal(err)
	}
	s := quickSolver(8)
	s.Store = st
	gamma := make([][]float64, 64)
	for i := range gamma {
		gamma[i] = make([]float64, 64)
	}
	rng := stats.NewRNG(7)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if i != j && rng.Bool(0.2) {
				gamma[i][j] = float64(1 + rng.Intn(4))
			}
		}
	}
	w, err := WeightsFromMatrix(8, gamma)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.SolveWeighted(context.Background(), 4, w, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	solves := st.Counters().Solves
	if solves != 16 { // 2n line problems on an 8x8 network
		t.Fatalf("line solves = %d, want 16", solves)
	}
	second, err := s.SolveWeighted(context.Background(), 4, w, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.Solves != solves {
		t.Fatalf("repeat run issued new solves: %v", c)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("weighted reuse not bit-identical")
	}
}

func replaceAll(s, old, new string) string {
	for {
		i := indexOf(s, old)
		if i < 0 {
			return s
		}
		s = s[:i] + new + s[i+len(old):]
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestStoreSweepsStaleTempFiles pins the open-time sweep: temp files older
// than the age guard (the debris of saveDisk writes interrupted by a kill)
// are removed and counted, while fresh temp files and real entries survive.
func TestStoreSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()

	stale := filepath.Join(dir, "deadbeef.tmp123456")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tempSweepAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "cafebabe.tmp999")
	if err := os.WriteFile(fresh, []byte("in-progress"), 0o644); err != nil {
		t.Fatal(err)
	}
	entry := filepath.Join(dir, "0123abcd.json")
	if err := os.WriteFile(entry, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Counters().Swept; got != 1 {
		t.Fatalf("Swept = %d, want 1", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived the sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file removed: %v", err)
	}
	if _, err := os.Stat(entry); err != nil {
		t.Fatalf("real cache entry removed: %v", err)
	}

	// The counter string mentions sweeps only when something was swept, so
	// the long-standing "solves=0 hits=..." grep contracts keep matching.
	if s := st.Counters().String(); !strings.Contains(s, "swept=1") {
		t.Fatalf("counters string %q missing swept count", s)
	}
	clean, err := NewPlacementStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s := clean.Counters().String(); strings.Contains(s, "swept") {
		t.Fatalf("clean store advertises sweeps: %q", s)
	}

	// A memory-only store has nothing to sweep.
	mem, err := NewPlacementStore("")
	if err != nil {
		t.Fatal(err)
	}
	if mem.Counters().Swept != 0 {
		t.Fatal("memory-only store reported sweeps")
	}
}

// TestStoreCrossProcessSharedDir models N worker processes sharing one
// -cache-dir (the sweep fabric's deployment shape) with two independent
// store instances over one directory: concurrent GetOrCompute of the same
// key must both succeed with bit-identical results (single-flight is
// per-process, so each store may solve once — but the atomic temp+rename
// write keeps the disk entry valid under the collision), and a third store
// opening the directory afterwards must answer purely from disk.
func TestStoreCrossProcessSharedDir(t *testing.T) {
	dir := t.TempDir()
	solve := func(st *PlacementStore) (RowSolution, error) {
		s := quickSolver(6)
		s.Store = st
		return s.SolveRow(context.Background(), 3, DCSA)
	}

	stA, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg   sync.WaitGroup
		sols [2]RowSolution
		errs [2]error
	)
	for i, st := range []*PlacementStore{stA, stB} {
		wg.Add(1)
		go func(i int, st *PlacementStore) {
			defer wg.Done()
			sols[i], errs[i] = solve(st)
		}(i, st)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(sols[0], sols[1]) {
		t.Fatalf("stores disagree:\n%+v\n%+v", sols[0], sols[1])
	}
	for i, st := range []*PlacementStore{stA, stB} {
		if c := st.Counters(); c.Solves > 1 {
			t.Fatalf("store %d solved %d times", i, c.Solves)
		}
	}

	stC, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solve(stC)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol, sols[0]) {
		t.Fatalf("disk round-trip disagrees:\n%+v\n%+v", sol, sols[0])
	}
	if c := stC.Counters(); c.Solves != 0 || c.DiskHits != 1 {
		t.Fatalf("third store did not answer from disk: %v", c)
	}
}

// TestStoreDiskProbeDoesNotBlockMemoryHits pins the lock scope of the
// store's disk path: while one key's compute (registered in-flight, mutex
// released) is stalled, memory hits on other keys must complete immediately.
func TestStoreDiskProbeDoesNotBlockMemoryHits(t *testing.T) {
	st, err := NewPlacementStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seed := StoredPlacement{Algo: DCSA, C: 1, N: 4, Eval: model.Eval{}, Evals: 1}
	if _, _, err := st.GetOrCompute("hot", func() (StoredPlacement, error) { return seed, nil }); err != nil {
		t.Fatal(err)
	}

	enterSlow := make(chan struct{})
	releaseSlow := make(chan struct{})
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		st.GetOrCompute("cold", func() (StoredPlacement, error) {
			close(enterSlow)
			<-releaseSlow
			return seed, nil
		})
	}()
	<-enterSlow

	// The cold key's compute holds no lock: hot hits must not queue behind it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, cached, err := st.GetOrCompute("hot", nil); err != nil || !cached {
			t.Errorf("hot hit failed: cached=%v err=%v", cached, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("memory hit blocked behind an in-flight compute")
	}
	close(releaseSlow)
	<-slowDone
}
