package core

import (
	"context"
	"fmt"
	"testing"

	"explink/internal/dnc"
	"explink/internal/model"
)

// BenchmarkSolveRow times the end-to-end P̃(n, C) solve (D&C initial solution
// plus the full default SA schedule) that Optimize runs once per feasible link
// limit — the solver-side hot path named by BENCH_solver.json. No placement
// store is attached, so every iteration pays the real search.
func BenchmarkSolveRow(b *testing.B) {
	for _, size := range []struct{ n, c int }{{8, 3}, {16, 4}, {32, 4}} {
		b.Run(fmt.Sprintf("dcsa/n%d_C%d", size.n, size.c), func(b *testing.B) {
			s := NewSolver(model.DefaultConfig(size.n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.SolveRow(context.Background(), size.c, DCSA); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDnC times the divide-and-conquer initial-solution generator alone:
// its cost is dominated by the O(n²) single-cross-link scan per combine step,
// each candidate of which differs from the base placement by exactly one span.
func BenchmarkDnC(b *testing.B) {
	for _, size := range []struct{ n, c int }{{16, 4}, {32, 4}, {64, 4}} {
		b.Run(fmt.Sprintf("n%d_C%d", size.n, size.c), func(b *testing.B) {
			p := model.DefaultParams()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dnc.Initial(size.n, size.c, p)
			}
		})
	}
}

// BenchmarkSolveWeighted times one weighted line solve (the SolveWeighted
// unit of work) against a skewed traffic matrix, covering the weighted
// objective variant of the hot path.
func BenchmarkSolveWeighted(b *testing.B) {
	const n, c = 16, 4
	s := NewSolver(model.DefaultConfig(n))
	gamma := make([][]float64, n*n)
	for i := range gamma {
		gamma[i] = make([]float64, n*n)
		for j := range gamma[i] {
			if i != j {
				gamma[i][j] = float64((i*31+j*17)%7) + 1
			}
		}
	}
	w, err := WeightsFromMatrix(n, gamma)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.solveLine(context.Background(), c, DCSA, w.RowW[3], 3); err != nil {
			b.Fatal(err)
		}
	}
}
