package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"explink/internal/model"
)

func TestForEachIndexAggregatesErrors(t *testing.T) {
	err := forEachIndex(context.Background(), 5, 3, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("errors swallowed")
	}
	for _, want := range []string{"boom 1", "boom 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregated error %q missing %q", err, want)
		}
	}
	if err := forEachIndex(context.Background(), 0, 4, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatalf("empty index space returned %v", err)
	}
	if err := forEachIndex(context.Background(), 3, 1, func(int) error { return nil }); err != nil {
		t.Fatalf("sequential path returned %v", err)
	}
}

func TestOptimizeParallelBitIdentical(t *testing.T) {
	// The hard determinism contract of the parallel sweep: any worker count
	// must reproduce the single-worker result byte for byte, including the
	// evaluation counts (each sub-problem has its own rngFor stream).
	for _, algo := range []Algorithm{DCSA, OnlySA} {
		seq := solver8()
		seq.Workers = 1
		seq.Sched = seq.Sched.WithMoves(2000)
		par := solver8()
		par.Workers = 8
		par.Sched = par.Sched.WithMoves(2000)

		seqBest, seqAll, err := seq.Optimize(context.Background(), algo)
		if err != nil {
			t.Fatal(err)
		}
		parBest, parAll, err := par.Optimize(context.Background(), algo)
		if err != nil {
			t.Fatal(err)
		}
		if len(seqAll) != len(parAll) {
			t.Fatalf("%s: %d vs %d solutions", algo, len(seqAll), len(parAll))
		}
		for i := range seqAll {
			if !seqAll[i].Row.Equal(parAll[i].Row) {
				t.Fatalf("%s: C=%d placement diverged:\n%v\n%v", algo, seqAll[i].C, seqAll[i].Row, parAll[i].Row)
			}
			if seqAll[i].Eval != parAll[i].Eval {
				t.Fatalf("%s: C=%d eval diverged: %v vs %v", algo, seqAll[i].C, seqAll[i].Eval, parAll[i].Eval)
			}
			if seqAll[i].Evals != parAll[i].Evals {
				t.Fatalf("%s: C=%d eval count diverged: %d vs %d", algo, seqAll[i].C, seqAll[i].Evals, parAll[i].Evals)
			}
		}
		if !seqBest.Row.Equal(parBest.Row) || seqBest.C != parBest.C {
			t.Fatalf("%s: best diverged: %v vs %v", algo, seqBest, parBest)
		}
	}
}

func TestSolveWeightedParallelBitIdentical(t *testing.T) {
	n := 8
	w, err := WeightsFromMatrix(n, skewedTraffic(n))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) *Solver {
		s := NewSolver(model.DefaultConfig(n))
		s.Sched = s.Sched.WithMoves(1000)
		s.Workers = workers
		return s
	}
	seq, err := mk(1).SolveWeighted(context.Background(), 4, w, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mk(8).SolveWeighted(context.Background(), 4, w, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Evals != par.Evals {
		t.Fatalf("total evals diverged: %d vs %d", seq.Evals, par.Evals)
	}
	for i := 0; i < n; i++ {
		if !seq.Topology.Rows[i].Equal(par.Topology.Rows[i]) {
			t.Fatalf("row %d diverged:\n%v\n%v", i, seq.Topology.Rows[i], par.Topology.Rows[i])
		}
		if !seq.Topology.Cols[i].Equal(par.Topology.Cols[i]) {
			t.Fatalf("col %d diverged:\n%v\n%v", i, seq.Topology.Cols[i], par.Topology.Cols[i])
		}
		if seq.RowEvals[i] != par.RowEvals[i] || seq.ColEvals[i] != par.ColEvals[i] {
			t.Fatalf("line %d eval counts diverged: %d/%d vs %d/%d",
				i, seq.RowEvals[i], seq.ColEvals[i], par.RowEvals[i], par.ColEvals[i])
		}
	}
}

func TestSolveWeightedOnlySAUsesRandomizedStart(t *testing.T) {
	// Regression for the fallback bug: the OnlySA ablation's true initial
	// state is the randomized matrix, so the mesh row must never leak into
	// its output just because the mesh happens to beat an annealed-from-
	// random line. A short schedule makes weak SA results likely; the result
	// must still be a valid C-feasible topology with per-line accounting.
	n := 8
	w, err := WeightsFromMatrix(n, skewedTraffic(n))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(model.DefaultConfig(n))
	s.Sched = s.Sched.WithMoves(20)
	sol, err := s.SolveWeighted(context.Background(), 4, w, OnlySA)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Topology.Validate(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Each line spends: 1 start eval + (1 + moves) annealer queries.
		want := int64(1 + 1 + 20)
		if sol.RowEvals[i] != want || sol.ColEvals[i] != want {
			t.Fatalf("line %d evals = %d/%d, want %d", i, sol.RowEvals[i], sol.ColEvals[i], want)
		}
	}
}
