package core

import (
	"context"
	"math"
	"testing"

	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/topo"
)

func solver8() *Solver {
	return NewSolver(model.DefaultConfig(8))
}

func TestSolveRowDCSA(t *testing.T) {
	s := solver8()
	sol, err := s.SolveRow(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Row.Validate(4); err != nil {
		t.Fatal(err)
	}
	mesh, _ := s.Cfg.EvalRow(topo.MeshRow(8), 1)
	if sol.Eval.Total >= mesh.Total {
		t.Fatalf("D&C_SA at C=4 (%g) did not beat mesh (%g)", sol.Eval.Total, mesh.Total)
	}
	if sol.Evals <= 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestSolveRowAlgorithms(t *testing.T) {
	s := solver8()
	for _, algo := range []Algorithm{DCSA, OnlySA, InitOnly} {
		sol, err := s.SolveRow(context.Background(), 4, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if sol.Algo != algo || sol.C != 4 {
			t.Fatalf("%s: bad metadata %+v", algo, sol)
		}
		if err := sol.Row.Validate(4); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestSolveRowErrors(t *testing.T) {
	s := solver8()
	if _, err := s.SolveRow(context.Background(), 4, Algorithm("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := s.SolveRow(context.Background(), 1024, DCSA); err == nil {
		t.Fatal("infeasible link limit accepted")
	}
}

func TestOptimizeDCSA8(t *testing.T) {
	s := solver8()
	best, all, err := s.Optimize(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 { // C in {1,2,4,8,16}
		t.Fatalf("got %d solutions: %v", len(all), all)
	}
	mesh := all[0] // C=1 is the mesh
	if !mesh.Row.Equal(topo.MeshRow(8)) {
		t.Fatalf("C=1 solution is not the mesh: %v", mesh.Row)
	}
	// Headline claim (Section 5.2): substantial latency reduction vs mesh on
	// 8x8. The paper reports 23.5% with simulated contention; the pure
	// zero-load model should show a comparable scale.
	reduction := 1 - best.Eval.Total/mesh.Eval.Total
	if reduction < 0.10 {
		t.Fatalf("best %v only reduces mesh latency by %.1f%%", best, reduction*100)
	}
	// The best C should be an intermediate value: neither the mesh (C=1) nor
	// the maximally sliced C=16 whose serialization dominates.
	if best.C == 1 || best.C == 16 {
		t.Fatalf("unexpected best link limit C=%d", best.C)
	}
}

func TestOptimizeBeatsHFB8(t *testing.T) {
	s := solver8()
	best, _, err := s.Optimize(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	hfbRow := topo.HFBRow(8)
	hfb, err := s.Cfg.EvalRow(hfbRow, hfbRow.MaxCrossSection())
	if err != nil {
		t.Fatal(err)
	}
	if best.Eval.Total >= hfb.Total {
		t.Fatalf("D&C_SA (%g) did not beat HFB (%g)", best.Eval.Total, hfb.Total)
	}
}

func TestDCSANotWorseThanInitOnly(t *testing.T) {
	s := solver8()
	for _, c := range []int{2, 4, 8} {
		init, err := s.SolveRow(context.Background(), c, InitOnly)
		if err != nil {
			t.Fatal(err)
		}
		full, err := s.SolveRow(context.Background(), c, DCSA)
		if err != nil {
			t.Fatal(err)
		}
		if full.Eval.Total > init.Eval.Total+1e-9 {
			t.Fatalf("C=%d: SA refinement made things worse: %g > %g",
				c, full.Eval.Total, init.Eval.Total)
		}
	}
}

func TestSolverDeterministic(t *testing.T) {
	a, _, err := solver8().Optimize(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := solver8().Optimize(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Row.Equal(b.Row) || a.Eval.Total != b.Eval.Total {
		t.Fatal("Optimize is not deterministic")
	}
}

func TestSeedChangesOnlySAOutcome(t *testing.T) {
	s1 := solver8()
	s2 := solver8()
	s2.Seed = 99
	a, err := s1.SolveRow(context.Background(), 8, OnlySA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.SolveRow(context.Background(), 8, OnlySA)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds explore differently; rows usually differ. Equal totals
	// are possible (both may reach the optimum), so only require that the
	// search ran at all.
	if a.Evals == 0 || b.Evals == 0 {
		t.Fatal("searches did not run")
	}
}

func TestTopologyExpansion(t *testing.T) {
	s := solver8()
	sol, err := s.SolveRow(context.Background(), 4, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	tp := s.Topology(sol)
	if err := tp.Validate(4); err != nil {
		t.Fatal(err)
	}
	// The expanded topology must be deadlock-free under XY routing.
	ok, err := route.TopologyCDGAcyclic(tp, s.Cfg.Params.Route())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("optimized topology has a cyclic channel dependency graph")
	}
	// And its exhaustive 2D evaluation must match the row shortcut.
	ev, err := s.Cfg.EvalTopology(tp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.Total-sol.Eval.Total) > 1e-9 {
		t.Fatalf("2D eval %g != row eval %g", ev.Total, sol.Eval.Total)
	}
}

func TestOptimize4x4(t *testing.T) {
	s := NewSolver(model.DefaultConfig(4))
	best, all, err := s.Optimize(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 { // C in {1,2,4}
		t.Fatalf("solutions: %v", all)
	}
	mesh := all[0]
	if best.Eval.Total >= mesh.Eval.Total {
		t.Fatal("no improvement on 4x4")
	}
}

func TestOptimize16x16Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("16x16 sweep in short mode")
	}
	s := NewSolver(model.DefaultConfig(16))
	s.Sched = s.Sched.WithMoves(2000)
	best, all, err := s.Optimize(context.Background(), DCSA)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 { // C in {1..64}
		t.Fatalf("got %d solutions", len(all))
	}
	mesh := all[0]
	reduction := 1 - best.Eval.Total/mesh.Eval.Total
	// Paper: 36.4% vs mesh on 16x16 (with contention); require the same
	// order of magnitude from the analytic model.
	if reduction < 0.2 {
		t.Fatalf("16x16 reduction only %.1f%%", reduction*100)
	}
}

func TestWorstWeightReducesWorstCase(t *testing.T) {
	// Extension: blending the worst pair into the objective must not yield a
	// design with a worse maximum zero-load latency than the pure-average
	// design, and typically improves it.
	avgSolver := solver8()
	tailSolver := solver8()
	tailSolver.WorstWeight = 1
	const c = 4
	avgSol, err := avgSolver.SolveRow(context.Background(), c, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	tailSol, err := tailSolver.SolveRow(context.Background(), c, DCSA)
	if err != nil {
		t.Fatal(err)
	}
	avgWorst, err := avgSolver.Cfg.MaxZeroLoad(avgSolver.Topology(avgSol), c)
	if err != nil {
		t.Fatal(err)
	}
	tailWorst, err := tailSolver.Cfg.MaxZeroLoad(tailSolver.Topology(tailSol), c)
	if err != nil {
		t.Fatal(err)
	}
	if tailWorst > avgWorst+1e-9 {
		t.Fatalf("worst-case objective produced worse tail: %.2f vs %.2f", tailWorst, avgWorst)
	}
	// And the average-optimal design must not lose on its own metric.
	if avgSol.Eval.Total > tailSol.Eval.Total+1e-9 {
		t.Fatalf("average objective lost on averages: %.2f vs %.2f", avgSol.Eval.Total, tailSol.Eval.Total)
	}
}

func TestWorstWeightClamped(t *testing.T) {
	s := solver8()
	s.WorstWeight = 7 // clamped to 1 internally
	if _, err := s.SolveRow(context.Background(), 2, DCSA); err != nil {
		t.Fatal(err)
	}
	s.WorstWeight = -3 // clamped to 0
	if _, err := s.SolveRow(context.Background(), 2, DCSA); err != nil {
		t.Fatal(err)
	}
}
