package core_test

import (
	"context"
	"fmt"

	"explink/internal/core"
	"explink/internal/model"
)

// The paper's end-to-end flow: sweep every feasible link limit on an 8x8
// network and pick the design minimizing L_avg = L_D + L_S.
func ExampleSolver_Optimize() {
	solver := core.NewSolver(model.DefaultConfig(8))
	best, all, err := solver.Optimize(context.Background(), core.DCSA)
	if err != nil {
		panic(err)
	}
	for _, sol := range all {
		marker := "  "
		if sol.C == best.C {
			marker = "->"
		}
		fmt.Printf("%s C=%-2d width=%3db  L_avg=%.2f\n", marker, sol.C, sol.Eval.Width, sol.Eval.Total)
	}
	// Output:
	//    C=1  width=256b  L_avg=22.20
	//    C=2  width=128b  L_avg=16.98
	// -> C=4  width= 64b  L_avg=16.32
	//    C=8  width= 32b  L_avg=18.40
	//    C=16 width= 16b  L_avg=23.49
}

// Rectangular platforms solve each dimension independently.
func ExampleRectSolver_SolveRect() {
	rs := core.NewRectSolver(8, 4)
	sol, err := rs.SolveRect(context.Background(), 4, core.DCSA)
	if err != nil {
		panic(err)
	}
	fmt.Printf("8x4 at C=4: L_avg=%.2f (row spans=%d, col spans=%d)\n",
		sol.Eval.Total, len(sol.Row.Express), len(sol.Col.Express))
	// Output:
	// 8x4 at C=4: L_avg=13.26 (row spans=7, col spans=3)
}
