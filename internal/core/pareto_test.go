package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
)

func paretoSolver8() *Solver {
	s := NewSolver(model.DefaultConfig(8))
	s.Sched = s.Sched.WithMoves(1500)
	return s
}

func TestParseObjectives(t *testing.T) {
	all, err := ParseObjectives(nil)
	if err != nil || !reflect.DeepEqual(all, AllObjectives) {
		t.Fatalf("empty list: %v, %v", all, err)
	}
	all[0] = ObjWiring
	if AllObjectives[0] != ObjLatency {
		t.Fatal("ParseObjectives aliases AllObjectives")
	}
	got, err := ParseObjectives([]string{" power ", "latency"})
	if err != nil || !reflect.DeepEqual(got, []Objective{ObjPower, ObjLatency}) {
		t.Fatalf("trimmed order-preserving parse: %v, %v", got, err)
	}
	if _, err := ParseObjectives([]string{"latency", "latency"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := ParseObjectives([]string{"area"}); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

// TestSolveParetoSingleC pins the frontier contract at one link limit:
// non-empty, mutually non-dominated, lexicographically sorted, every entry
// feasible with canonical Objs matching its Eval/Cost, and the latency end
// of the frontier at least as good as the mesh.
func TestSolveParetoSingleC(t *testing.T) {
	s := paretoSolver8()
	f, err := s.SolvePareto(context.Background(), 4, ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Objectives, AllObjectives) {
		t.Fatalf("objectives = %v", f.Objectives)
	}
	if len(f.Entries) == 0 || f.Evals <= 0 {
		t.Fatalf("empty frontier: %d entries, %d evals", len(f.Entries), f.Evals)
	}
	for i, e := range f.Entries {
		if e.C != 4 {
			t.Errorf("entry %d: C = %d", i, e.C)
		}
		if err := e.Row.Validate(e.C); err != nil {
			t.Errorf("entry %d infeasible: %v", i, err)
		}
		want := objsFor(f.Objectives, e.Eval, e.Cost)
		if !reflect.DeepEqual(e.Objs, want) {
			t.Errorf("entry %d: Objs %v != canonical %v", i, e.Objs, want)
		}
		if i > 0 && stats.CompareLex(f.Entries[i-1].Objs, e.Objs) >= 0 {
			t.Errorf("entries not sorted at %d", i)
		}
		for j, o := range f.Entries {
			if i != j && stats.Dominates(o.Objs, e.Objs) {
				t.Errorf("entry %d dominated by %d", i, j)
			}
		}
	}
	mesh, _ := s.Cfg.EvalRow(topo.MeshRow(8), 1)
	if best := f.Entries[0]; best.Objs[0] >= mesh.Total {
		t.Errorf("frontier's best latency %g not below mesh %g", best.Objs[0], mesh.Total)
	}
}

// TestSolveParetoSweep: c <= 0 sweeps every feasible limit and the merged
// frontier spans more than one C (the cross-C trade-off the experiment
// renders), independent of worker count.
func TestSolveParetoSweep(t *testing.T) {
	s := paretoSolver8()
	f, err := s.SolvePareto(context.Background(), 0, ParetoSpec{Objectives: []Objective{ObjLatency, ObjPower}})
	if err != nil {
		t.Fatal(err)
	}
	cs := map[int]bool{}
	for _, e := range f.Entries {
		cs[e.C] = true
		if len(e.Objs) != 2 {
			t.Fatalf("entry has %d dims, want 2", len(e.Objs))
		}
	}
	if len(cs) < 2 {
		t.Errorf("merged frontier covers only %v", cs)
	}

	s2 := paretoSolver8()
	s2.Workers = 1
	f2, err := s2.SolvePareto(context.Background(), 0, ParetoSpec{Objectives: []Objective{ObjLatency, ObjPower}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, f2) {
		t.Error("frontier depends on worker count")
	}
}

// TestSolveParetoDeterminism: two independent solvers, same seed — deep
// equal frontiers.
func TestSolveParetoDeterminism(t *testing.T) {
	f1, err := paretoSolver8().SolvePareto(context.Background(), 3, ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := paretoSolver8().SolvePareto(context.Background(), 3, ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("same-seed frontiers differ")
	}
	s3 := paretoSolver8()
	s3.Seed = 99
	f3, err := s3.SolvePareto(context.Background(), 3, ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(f1.Entries, f3.Entries) {
		t.Error("different seeds produced identical frontiers (suspicious)")
	}
}

// TestSolveParetoStoreWarm pins the satellite cache contract: a second
// solver over the same disk store answers the whole frontier without a
// single solve, bit-identically.
func TestSolveParetoStoreWarm(t *testing.T) {
	dir := t.TempDir()
	cold, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := paretoSolver8()
	s.Store = cold
	f1, err := s.SolvePareto(context.Background(), 0, ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Counters().Solves == 0 {
		t.Fatal("cold run solved nothing")
	}

	warm, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := paretoSolver8()
	s2.Store = warm
	f2, err := s2.SolvePareto(context.Background(), 0, ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Counters(); got.Solves != 0 || got.DiskHits == 0 {
		t.Fatalf("warm run not served from disk: %v", got)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("warm frontier differs from cold")
	}
}

// TestSolveParetoStoreCorruptEntry: deleting one per-entry file from the
// disk store forces exactly one re-anneal, and the re-derived entry matches
// the original.
func TestSolveParetoStoreCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	cold, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := paretoSolver8()
	s.Store = cold
	f1, err := s.SolvePareto(context.Background(), 4, ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Remove the entry file for index 0 (identified by its key preimage).
	spec, _ := ParetoSpec{}.resolved()
	base := s.paretoKey(4, spec)
	victim := keyAddress(base + "frontier=entry:0\n")
	removeStoreFile(t, dir, victim)

	warm, err := NewPlacementStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := paretoSolver8()
	s2.Store = warm
	f2, err := s2.SolvePareto(context.Background(), 4, ParetoSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Counters().Solves; got != 1 {
		t.Fatalf("corrupt entry should cost exactly one solve, got %d", got)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("recovered frontier differs")
	}
}

// TestParetoKeySeparation: frontier keys never collide with scalar row keys
// and respond to every spec knob.
func TestParetoKeySeparation(t *testing.T) {
	s := paretoSolver8()
	spec, _ := ParetoSpec{}.resolved()
	base := s.paretoKey(4, spec)
	if !strings.Contains(base, "kind=pareto\n") || strings.Contains(s.rowKey(4, DCSA), "kind=pareto") {
		t.Fatal("kind separation broken")
	}
	spec2 := spec
	spec2.ArchiveCap = 7
	if s.paretoKey(4, spec2) == base {
		t.Error("archive cap not in key")
	}
	spec3 := spec
	spec3.Objectives = []Objective{ObjLatency, ObjPower}
	if s.paretoKey(4, spec3) == base {
		t.Error("objective list not in key")
	}
	spec4 := spec
	spec4.Power.WirePerBitUnit *= 2
	if s.paretoKey(4, spec4) == base {
		t.Error("power coefficients not in key")
	}
}

func removeStoreFile(t *testing.T, dir, addr string) {
	t.Helper()
	path := filepath.Join(dir, addr+".json")
	if err := os.Remove(path); err != nil {
		t.Fatalf("removing %s: %v", path, err)
	}
}
