package core

import (
	"strconv"
	"sync/atomic"
	"time"

	"explink/internal/obs"
)

// metricSet holds the solver's exported instruments. Timers are minted per
// (kind, C) on demand through the registry (idempotent get-or-create), so the
// per-C solve timings the evaluation normalizes against (Fig. 7/12's
// machine-independent cost axis) are visible live without pre-declaring every
// link limit.
type metricSet struct {
	reg   *obs.Registry
	evals *obs.Counter // core_evals_total
}

var coreMet atomic.Pointer[metricSet]

// EnableMetrics registers the solver's metrics on reg and turns on collection
// for every subsequent row or weighted-line solve. A nil registry disables
// metrics again.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		coreMet.Store(nil)
		return
	}
	coreMet.Store(&metricSet{
		reg:   reg,
		evals: reg.Counter("core_evals_total", "placement evaluations spent across solves (D&C initial + SA)"),
	})
}

// observeSolve records one finished solve: its evaluation count and a wall
// timer on the core_solve{kind,c} pair. Called only on the cold path (a real
// solve runs thousands of routing evaluations; one map lookup is noise).
func observeSolve(kind string, c int, evals int64, d time.Duration) {
	m := coreMet.Load()
	if m == nil {
		return
	}
	m.evals.Add(evals)
	m.reg.Timer("core_solve", "placement solve wall time",
		obs.L("kind", kind), obs.L("c", strconv.Itoa(c))).Observe(d)
}

// Register exports the store's effectiveness counters on reg as live gauges
// (core_store_solves, core_store_hits, core_store_disk_hits, core_store_len),
// read from the mutex-protected counters at scrape time.
func (st *PlacementStore) Register(reg *obs.Registry) {
	if st == nil || reg == nil {
		return
	}
	reg.Func("core_store_solves", "placement-store cache misses that ran a real solve",
		func() float64 { return float64(st.Counters().Solves) })
	reg.Func("core_store_hits", "placement-store solves answered from memory",
		func() float64 { return float64(st.Counters().Hits) })
	reg.Func("core_store_disk_hits", "placement-store solves answered from the on-disk cache",
		func() float64 { return float64(st.Counters().DiskHits) })
	reg.Func("core_store_len", "placement-store entries held in memory",
		func() float64 { return float64(st.Len()) })
}
