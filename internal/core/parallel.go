package core

import (
	"errors"
	"runtime"
	"sync"
)

// forEachIndex runs fn(i) for every i in [0, n) on a bounded worker pool, in
// the style of sim.RunMany. Results must be written to index-addressed slots
// by fn, so the output is bit-identical for any worker count; all errors are
// collected in index order and aggregated with errors.Join (nil when every
// call succeeds). workers <= 0 uses GOMAXPROCS.
func forEachIndex(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return errors.Join(errs...)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errors.Join(errs...)
}
