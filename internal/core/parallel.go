package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"explink/internal/runctl"
)

// forEachIndex runs fn(i) for every i in [0, n) on a bounded worker pool, in
// the style of sim.RunMany. Results must be written to index-addressed slots
// by fn, so the output is bit-identical for any worker count; all errors are
// collected in index order and aggregated with errors.Join (nil when every
// call succeeds). Cancelling ctx stops dispatching; every index not yet
// started fails with an error matching runctl.ErrCancelled. workers <= 0
// uses GOMAXPROCS.
func forEachIndex(ctx context.Context, n, workers int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	notStarted := func(i int) error {
		return fmt.Errorf("core: sub-problem %d not started: %w", i, runctl.Cancelled(ctx))
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				errs[i] = notStarted(i)
				continue
			}
			errs[i] = fn(i)
		}
		return errors.Join(errs...)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = notStarted(j)
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return errors.Join(errs...)
}
