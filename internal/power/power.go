// Package power is an analytical NoC power model standing in for DSENT
// (Section 4.6 and 5.5 of the paper). Dynamic power converts the simulator's
// datapath activity counters into energy: each buffer write/read, crossbar
// traversal and unit-length link traversal costs a per-bit energy, and each
// allocation a per-op energy. Static power is structural: input buffers
// scale with total buffered bits (held equal across schemes), the crossbar
// with b·k² (link width times port count squared), and the remaining logic
// with the port count.
//
// The absolute constants are calibrated to 32 nm-class publications so that
// a loaded 8x8 mesh lands near the paper's operating point (static roughly
// two-thirds of total power); the paper's claims under test are relative,
// not absolute.
package power

import (
	"fmt"

	"explink/internal/sim"
	"explink/internal/topo"
)

// Energies are per-operation dynamic energies in picojoules.
type Energies struct {
	BufWritePerBit    float64 // pJ per bit written into an input buffer
	BufReadPerBit     float64 // pJ per bit read out
	XbarPerBit        float64 // pJ per bit through the crossbar
	LinkPerBitPerUnit float64 // pJ per bit per unit-length wire segment
	AllocPerOp        float64 // pJ per VC or switch allocation
}

// DefaultEnergies returns 32 nm-class per-op energies.
func DefaultEnergies() Energies {
	return Energies{
		BufWritePerBit:    0.022,
		BufReadPerBit:     0.014,
		XbarPerBit:        0.024,
		LinkPerBitPerUnit: 0.040,
		AllocPerOp:        1.0,
	}
}

// StaticParams are structural leakage coefficients in watts.
type StaticParams struct {
	BufPerBit    float64 // W per buffered bit
	XbarPerBK2   float64 // W per (width bit x ports²)
	OtherPerPort float64 // W per router port
	OtherBase    float64 // W per router, fixed
}

// DefaultStatic returns coefficients that put an 8x8 mesh (5-port routers,
// 256-bit datapath, 20480 buffered bits per router) near 1.2 W of network
// static power split roughly 0.55/0.35/0.30 across buffer/crossbar/other, in
// line with Fig. 10's breakdown.
func DefaultStatic() StaticParams {
	return StaticParams{
		BufPerBit:    4.2e-7,
		XbarPerBK2:   8.5e-7,
		OtherPerPort: 0.00047,
		OtherBase:    0.0,
	}
}

// StaticBreakdown is network-wide static power in watts by component.
type StaticBreakdown struct {
	Buffer   float64
	Crossbar float64
	Other    float64
}

func (s StaticBreakdown) Total() float64 { return s.Buffer + s.Crossbar + s.Other }

// Static computes the network's static power for a topology at the given
// link width, with the fixed per-router buffer budget of Section 4.6. Ports
// count the network channels plus the injection/ejection pair; the crossbar
// term b·k² uses each router's own k, so placements with fatter routers pay
// quadratically — the effect the paper argues stays small because good
// placements keep the average port count sub-linear in C.
func Static(t topo.Topology, widthBits, bufBitsPerRouter int, p StaticParams) StaticBreakdown {
	var out StaticBreakdown
	for id := 0; id < t.NumRouters(); id++ {
		k := t.RouterDegree(id) + 1 // input ports: channels + injection
		out.Buffer += float64(bufBitsPerRouter) * p.BufPerBit
		out.Crossbar += float64(widthBits) * float64(k*k) * p.XbarPerBK2
		out.Other += p.OtherBase + p.OtherPerPort*float64(2*k) // in + out ports
	}
	return out
}

// DynamicBreakdown is network-wide dynamic power in watts by component.
type DynamicBreakdown struct {
	Buffer float64
	Xbar   float64
	Link   float64
	Alloc  float64
}

func (d DynamicBreakdown) Total() float64 { return d.Buffer + d.Xbar + d.Link + d.Alloc }

// Dynamic converts activity counts over a cycle span into average dynamic
// power at the given clock frequency.
func Dynamic(counts sim.Counts, widthBits int, cycles int64, freqGHz float64, e Energies) (DynamicBreakdown, error) {
	if cycles <= 0 || freqGHz <= 0 {
		return DynamicBreakdown{}, fmt.Errorf("power: need positive cycles (%d) and frequency (%g)", cycles, freqGHz)
	}
	w := float64(widthBits)
	pj := DynamicBreakdown{
		Buffer: (float64(counts.BufferWrites)*e.BufWritePerBit + float64(counts.BufferReads)*e.BufReadPerBit) * w,
		Xbar:   float64(counts.SwitchTraversals) * e.XbarPerBit * w,
		Link:   float64(counts.LinkFlitUnits) * e.LinkPerBitPerUnit * w,
		Alloc:  float64(counts.VCAllocs+counts.SwitchTraversals) * e.AllocPerOp,
	}
	// pJ over (cycles / f GHz) ns: pJ/ns = mW.
	scale := freqGHz / float64(cycles) * 1e-3
	pj.Buffer *= scale
	pj.Xbar *= scale
	pj.Link *= scale
	pj.Alloc *= scale
	return pj, nil
}

// Report is a full power estimate for one simulated run.
type Report struct {
	Topology string
	Dynamic  DynamicBreakdown
	Static   StaticBreakdown
}

// Total returns dynamic plus static power in watts.
func (r Report) Total() float64 { return r.Dynamic.Total() + r.Static.Total() }

func (r Report) String() string {
	return fmt.Sprintf("%s: dyn=%.3fW (buf %.3f xbar %.3f link %.3f alloc %.3f) static=%.3fW (buf %.3f xbar %.3f other %.3f) total=%.3fW",
		r.Topology, r.Dynamic.Total(), r.Dynamic.Buffer, r.Dynamic.Xbar, r.Dynamic.Link, r.Dynamic.Alloc,
		r.Static.Total(), r.Static.Buffer, r.Static.Crossbar, r.Static.Other, r.Total())
}

// Model bundles the coefficients and clock for repeated estimates.
type Model struct {
	Energies Energies
	Static   StaticParams
	FreqGHz  float64
	// BufBitsPerRouter mirrors the simulator's equal-buffer rule.
	BufBitsPerRouter int
	// WirePerBitUnit is the static wiring coefficient used by PlacementCost:
	// watts per wire bit per unit-length channel segment.
	WirePerBitUnit float64
}

// DefaultModel returns the calibrated 1 GHz model with the simulator's
// default buffer budget.
func DefaultModel() Model {
	return Model{
		Energies:         DefaultEnergies(),
		Static:           DefaultStatic(),
		FreqGHz:          1.0,
		BufBitsPerRouter: sim.DefaultBufBits,
		WirePerBitUnit:   DefaultWirePerBitUnit,
	}
}

// Estimate produces a power report for a finished simulation run.
func (m Model) Estimate(t topo.Topology, widthBits int, res sim.Result) (Report, error) {
	dyn, err := Dynamic(res.Counts, widthBits, res.Cycles, m.FreqGHz, m.Energies)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Topology: t.Name,
		Dynamic:  dyn,
		Static:   Static(t, widthBits, m.BufBitsPerRouter, m.Static),
	}, nil
}
