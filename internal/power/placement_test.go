package power

import (
	"math"
	"strings"
	"testing"

	"explink/internal/topo"
)

// TestPlacementCostMatchesStatic pins the closed form against the per-router
// sum: for any row, PlacementCost's static terms must equal
// Static(topo.Uniform(...)) up to float rounding.
func TestPlacementCostMatchesStatic(t *testing.T) {
	m := DefaultModel()
	rows := []topo.Row{
		topo.MeshRow(8),
		topo.NewRow(8, topo.Span{From: 0, To: 3}, topo.Span{From: 3, To: 7}),
		topo.NewRow(8, topo.Span{From: 0, To: 7}, topo.Span{From: 2, To: 5}, topo.Span{From: 1, To: 6}),
		topo.HFBRow(8),
		topo.MeshRow(16),
		topo.NewRow(4, topo.Span{From: 0, To: 2}),
	}
	for _, row := range rows {
		got := m.PlacementCost(row, 256)
		want := Static(topo.Uniform("x", row.N, row), 256, m.BufBitsPerRouter, m.Static)
		check := func(name string, g, w float64) {
			if w == 0 {
				if g != 0 {
					t.Errorf("%v %s: got %v want 0", row, name, g)
				}
				return
			}
			if rel := math.Abs(g-w) / math.Abs(w); rel > 1e-9 {
				t.Errorf("%v %s: got %v want %v (rel %g)", row, name, g, w, rel)
			}
		}
		check("buffer", got.Static.Buffer, want.Buffer)
		check("crossbar", got.Static.Crossbar, want.Crossbar)
		check("other", got.Static.Other, want.Other)
	}
}

// TestPlacementCostWiring pins the wiring definition: local links plus
// distinct express span lengths, replicated over 2n lines, with exact
// duplicates and length-1 spans contributing nothing (they add no channel —
// same rule Degree uses).
func TestPlacementCostWiring(t *testing.T) {
	m := DefaultModel()

	mesh := m.PlacementCost(topo.MeshRow(8), 256)
	if want := 2 * 8 * 7; mesh.WireUnits != want {
		t.Errorf("mesh wire units = %d, want %d", mesh.WireUnits, want)
	}
	if want := float64(2*8*7) * 256; mesh.WireBitUnits != want {
		t.Errorf("mesh wire bit-units = %v, want %v", mesh.WireBitUnits, want)
	}
	if want := mesh.WireBitUnits * m.WirePerBitUnit; mesh.Wiring != want {
		t.Errorf("mesh wiring = %v, want %v", mesh.Wiring, want)
	}

	// 7 local + spans 3 and 4 long: 14 units per line.
	spans := m.PlacementCost(topo.NewRow(8,
		topo.Span{From: 0, To: 3}, topo.Span{From: 3, To: 7}), 256)
	if want := 2 * 8 * 14; spans.WireUnits != want {
		t.Errorf("express wire units = %d, want %d", spans.WireUnits, want)
	}

	// A duplicate span adds no wiring (and a degenerate length-1 span — not
	// constructible via NewRow but defended against — adds none either).
	dup := m.PlacementCost(topo.Row{N: 8, Express: []topo.Span{
		{From: 0, To: 3}, {From: 3, To: 7},
		{From: 0, To: 3}, {From: 4, To: 5}}}, 256)
	if dup.WireUnits != spans.WireUnits {
		t.Errorf("duplicate/length-1 spans changed wiring: %d vs %d", dup.WireUnits, spans.WireUnits)
	}

	if total := mesh.TotalPower(); total != mesh.Static.Total()+mesh.Wiring {
		t.Errorf("TotalPower = %v, want %v", total, mesh.Static.Total()+mesh.Wiring)
	}
	if s := mesh.String(); !strings.Contains(s, "wiring=") || !strings.Contains(s, "static=") {
		t.Errorf("String missing components: %s", s)
	}
}

// TestPlacementCostMonotone: longer express spans cost strictly more power
// and wiring than the bare mesh — the trade-off axis the Pareto search
// exposes.
func TestPlacementCostMonotone(t *testing.T) {
	m := DefaultModel()
	mesh := m.PlacementCost(topo.MeshRow(8), 256)
	express := m.PlacementCost(topo.NewRow(8, topo.Span{From: 0, To: 7}), 256)
	if express.TotalPower() <= mesh.TotalPower() {
		t.Errorf("express placement not costlier: %v vs %v", express.TotalPower(), mesh.TotalPower())
	}
	if express.WireUnits <= mesh.WireUnits {
		t.Errorf("express wiring not larger: %d vs %d", express.WireUnits, mesh.WireUnits)
	}
	if express.Static.Crossbar <= mesh.Static.Crossbar {
		t.Errorf("express crossbar not larger")
	}
	if express.Static.Buffer != mesh.Static.Buffer {
		t.Errorf("buffer static must stay equal across schemes: %v vs %v",
			express.Static.Buffer, mesh.Static.Buffer)
	}
}
