package power

import (
	"context"
	"math"
	"strings"
	"testing"

	"explink/internal/model"
	"explink/internal/sim"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func TestStaticMeshCalibration(t *testing.T) {
	s := Static(topo.Mesh(8), 256, sim.DefaultBufBits, DefaultStatic())
	// Calibration targets from the package comment.
	if math.Abs(s.Buffer-0.55) > 0.05 {
		t.Fatalf("buffer static = %g, want ~0.55", s.Buffer)
	}
	if math.Abs(s.Crossbar-0.35) > 0.08 {
		t.Fatalf("crossbar static = %g, want ~0.35", s.Crossbar)
	}
	if math.Abs(s.Total()-1.2) > 0.2 {
		t.Fatalf("total static = %g, want ~1.2", s.Total())
	}
}

func TestBufferStaticEqualAcrossSchemes(t *testing.T) {
	// Section 4.6: identical buffer budgets mean identical buffer leakage.
	mesh := Static(topo.Mesh(8), 256, sim.DefaultBufBits, DefaultStatic())
	hfb := Static(topo.HFB(8), 64, sim.DefaultBufBits, DefaultStatic())
	if mesh.Buffer != hfb.Buffer {
		t.Fatalf("buffer static differs: %g vs %g", mesh.Buffer, hfb.Buffer)
	}
}

func TestCrossbarStaticStaysBounded(t *testing.T) {
	// The paper's argument: with express links, width shrinks by C while
	// ports grow sub-linearly, so crossbar static stays comparable. Check
	// HFB(8) at C=4 against the mesh.
	p := DefaultStatic()
	mesh := Static(topo.Mesh(8), 256, sim.DefaultBufBits, p)
	hfb := Static(topo.HFB(8), 64, sim.DefaultBufBits, p)
	ratio := hfb.Crossbar / mesh.Crossbar
	if ratio > 1.5 || ratio < 0.2 {
		t.Fatalf("crossbar ratio HFB/mesh = %g, should be comparable", ratio)
	}
	// Total static across schemes stays within ~20%, as Fig. 9 shows.
	if r := hfb.Total() / mesh.Total(); r < 0.8 || r > 1.25 {
		t.Fatalf("total static ratio = %g", r)
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	counts := sim.Counts{BufferWrites: 1000, BufferReads: 1000, SwitchTraversals: 1000, LinkFlitUnits: 1000, VCAllocs: 100}
	d1, err := Dynamic(counts, 256, 10000, 1.0, DefaultEnergies())
	if err != nil {
		t.Fatal(err)
	}
	counts2 := counts
	counts2.BufferWrites *= 2
	counts2.BufferReads *= 2
	counts2.SwitchTraversals *= 2
	counts2.LinkFlitUnits *= 2
	counts2.VCAllocs *= 2
	d2, err := Dynamic(counts2, 256, 10000, 1.0, DefaultEnergies())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2.Total()-2*d1.Total()) > 1e-9 {
		t.Fatalf("dynamic power not linear in activity: %g vs %g", d2.Total(), 2*d1.Total())
	}
}

func TestDynamicErrors(t *testing.T) {
	if _, err := Dynamic(sim.Counts{}, 256, 0, 1, DefaultEnergies()); err == nil {
		t.Fatal("zero cycles accepted")
	}
	if _, err := Dynamic(sim.Counts{}, 256, 100, 0, DefaultEnergies()); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

// runFor runs a short simulation and estimates power.
func runFor(t *testing.T, tp topo.Topology, c int, rate float64) Report {
	t.Helper()
	cfg := sim.NewConfig(tp, c, traffic.UniformRandom(tp.N()), rate)
	cfg.Warmup = 500
	cfg.Measure = 4000
	cfg.Drain = 20000
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w, err := model.DefaultBandwidth().Width(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DefaultModel().Estimate(tp, w, res)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestStaticDominatesAtLowLoad(t *testing.T) {
	// Section 5.5: static power is about two-thirds of the total at typical
	// (low) application loads.
	rep := runFor(t, topo.Mesh(8), 1, 0.02)
	frac := rep.Static.Total() / rep.Total()
	if frac < 0.5 || frac > 0.9 {
		t.Fatalf("static fraction = %g, want roughly 2/3", frac)
	}
}

func TestReportString(t *testing.T) {
	rep := runFor(t, topo.Mesh(4), 1, 0.01)
	s := rep.String()
	for _, want := range []string{"dyn=", "static=", "total="} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string missing %q: %s", want, s)
		}
	}
}

func TestEnergyMetrics(t *testing.T) {
	rep := runFor(t, topo.Mesh(8), 1, 0.02)
	cfg := sim.NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.02)
	cfg.Warmup, cfg.Measure, cfg.Drain = 500, 4000, 20000
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	e, err := DefaultModel().EnergyOf(rep, res)
	if err != nil {
		t.Fatal(err)
	}
	if e.TotalJoules <= 0 || e.PerPacketNanojoules <= 0 || e.PerFlitNanojoules <= 0 || e.EDP <= 0 {
		t.Fatalf("degenerate energy: %+v", e)
	}
	// A packet has at least one flit, so per-packet energy >= per-flit.
	if e.PerPacketNanojoules < e.PerFlitNanojoules {
		t.Fatalf("per-packet %.3f below per-flit %.3f", e.PerPacketNanojoules, e.PerFlitNanojoules)
	}
	if e.String() == "" {
		t.Fatal("empty string")
	}
}

func TestEnergyOfErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.EnergyOf(Report{}, sim.Result{}); err == nil {
		t.Fatal("zero-cycle run accepted")
	}
	if _, err := m.EnergyOf(Report{}, sim.Result{Cycles: 100}); err == nil {
		t.Fatal("zero-traffic run accepted")
	}
}
