// External test package: these tests drive the power model with placements
// produced by internal/core, which itself imports internal/power (the
// frontier's sim-free cost dimensions) — an in-package test would be an
// import cycle.
package power_test

import (
	"context"
	"testing"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/power"
	"explink/internal/sim"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// runSolved simulates a topology at the given rate and estimates its power.
func runSolved(t *testing.T, tp topo.Topology, c int, rate float64) (power.Report, sim.Result) {
	t.Helper()
	cfg := sim.NewConfig(tp, c, traffic.UniformRandom(8), rate)
	cfg.Warmup, cfg.Measure, cfg.Drain = 500, 4000, 20000
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w, err := model.DefaultBandwidth().Width(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := power.DefaultModel().Estimate(tp, w, res)
	if err != nil {
		t.Fatal(err)
	}
	return rep, res
}

func TestExpressReducesDynamicPower(t *testing.T) {
	// Fewer hops -> less switching activity -> lower dynamic power
	// (Section 4.6). Compare an optimized placement against the mesh at the
	// same offered load.
	solver := core.NewSolver(model.DefaultConfig(8))
	sol, err := solver.SolveRow(context.Background(), 4, core.DCSA)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := runSolved(t, solver.Topology(sol), 4, 0.02)
	mesh, _ := runSolved(t, topo.Mesh(8), 1, 0.02)
	if opt.Dynamic.Total() >= mesh.Dynamic.Total() {
		t.Fatalf("optimized dynamic %.3fW not below mesh %.3fW",
			opt.Dynamic.Total(), mesh.Dynamic.Total())
	}
}

func TestExpressImprovesEDP(t *testing.T) {
	// The optimized design should win on energy-delay product: lower latency
	// and lower dynamic power at similar static power.
	solver := core.NewSolver(model.DefaultConfig(8))
	sol, err := solver.SolveRow(context.Background(), 4, core.DCSA)
	if err != nil {
		t.Fatal(err)
	}
	edpOf := func(tp topo.Topology, c int) float64 {
		rep, res := runSolved(t, tp, c, 0.02)
		e, err := power.DefaultModel().EnergyOf(rep, res)
		if err != nil {
			t.Fatal(err)
		}
		return e.EDP
	}
	meshEDP := edpOf(topo.Mesh(8), 1)
	optEDP := edpOf(solver.Topology(sol), 4)
	if optEDP >= meshEDP {
		t.Fatalf("optimized EDP %.2f not below mesh %.2f", optEDP, meshEDP)
	}
}
