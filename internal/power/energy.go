package power

import (
	"fmt"

	"explink/internal/sim"
)

// Energy summarizes the energy efficiency of one simulated run, the figures
// of merit used when comparing NoC designs beyond raw wattage.
type Energy struct {
	// TotalJoules is power integrated over the simulated interval.
	TotalJoules float64
	// PerPacketNanojoules and PerFlitNanojoules amortize the total over the
	// delivered traffic.
	PerPacketNanojoules float64
	PerFlitNanojoules   float64
	// EDP is the energy-delay product per packet in nanojoule-nanoseconds:
	// per-packet energy times average packet latency. Lower is better;
	// designs can trade energy against latency, and EDP scores the balance.
	EDP float64
}

func (e Energy) String() string {
	return fmt.Sprintf("E=%.4gJ (%.3f nJ/pkt, %.3f nJ/flit, EDP %.2f nJ*ns)",
		e.TotalJoules, e.PerPacketNanojoules, e.PerFlitNanojoules, e.EDP)
}

// EnergyOf converts a power report plus the run it came from into energy
// metrics. It returns an error when the run delivered no traffic.
func (m Model) EnergyOf(rep Report, res sim.Result) (Energy, error) {
	if res.Cycles <= 0 || m.FreqGHz <= 0 {
		return Energy{}, fmt.Errorf("power: energy needs positive cycles and frequency")
	}
	if res.Counts.PacketsEjected == 0 || res.Counts.FlitsEjected == 0 {
		return Energy{}, fmt.Errorf("power: no delivered traffic to amortize energy over")
	}
	seconds := float64(res.Cycles) / (m.FreqGHz * 1e9)
	total := rep.Total() * seconds
	perPkt := total / float64(res.Counts.PacketsEjected) * 1e9 // nJ
	perFlit := total / float64(res.Counts.FlitsEjected) * 1e9
	latencyNS := res.AvgPacketLatency / m.FreqGHz
	return Energy{
		TotalJoules:         total,
		PerPacketNanojoules: perPkt,
		PerFlitNanojoules:   perFlit,
		EDP:                 perPkt * latencyNS,
	}, nil
}
