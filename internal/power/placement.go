package power

import (
	"fmt"

	"explink/internal/topo"
)

// Sim-free per-placement cost: the static power and wiring cost of the
// uniform replication of one row placement, computed in closed form from the
// row's degree profile. This is what makes power and wiring cheap enough to
// sit inside the annealer's move loop as objective dimensions — no topology
// materialization, no simulation, O(n) per evaluation.

// DefaultWirePerBitUnit is the static wiring coefficient of DefaultModel:
// watts of repeater/driver leakage per wire bit per unit-length (one mesh
// hop) segment, 32 nm-class global wiring. At 256-bit links it prices the
// 8x8 mesh's 112 channel segments near 0.1 W — a visible but not dominant
// dimension, matching the paper's argument that wiring stays secondary until
// express spans get long.
const DefaultWirePerBitUnit = 3.5e-6

// PlacementCost is the analytical cost of one row placement replicated
// across an n x n network (the lemma of Section 4.2): component static power
// plus the wiring of every channel in both dimensions.
type PlacementCost struct {
	Static StaticBreakdown // watts, network-wide

	// WireUnits counts distinct unit-length channel segments over the whole
	// network: each of the 2n replicated lines contributes its local links
	// plus the spanned length of each distinct express channel.
	WireUnits int
	// WireBitUnits is WireUnits times the link width — the wire count a
	// floorplanner would route.
	WireBitUnits float64
	// Wiring is the wiring static power in watts: WireBitUnits times the
	// model's WirePerBitUnit.
	Wiring float64
}

// TotalPower returns static plus wiring power in watts.
func (c PlacementCost) TotalPower() float64 { return c.Static.Total() + c.Wiring }

func (c PlacementCost) String() string {
	return fmt.Sprintf("static=%.3fW (buf %.3f xbar %.3f other %.3f) wiring=%.3fW (%d units, %.0f bit-units) total=%.3fW",
		c.Static.Total(), c.Static.Buffer, c.Static.Crossbar, c.Static.Other,
		c.Wiring, c.WireUnits, c.WireBitUnits, c.TotalPower())
}

// wireUnitsRow returns the distinct unit-length segments of one line: the
// n-1 local links plus the length of every distinct express span. Exact
// duplicates and length-1 spans add no segment — mirroring Row.Degree, which
// counts distinct neighbors, so wiring and crossbar cost always agree on
// which channels exist.
func wireUnitsRow(r topo.Row) int {
	units := r.N - 1
	if len(r.Express) == 0 {
		return units
	}
	seen := make(map[topo.Span]bool, len(r.Express))
	for _, s := range r.Express {
		if s.To-s.From <= 1 || seen[s] {
			continue
		}
		seen[s] = true
		units += s.To - s.From
	}
	return units
}

// PlacementCost evaluates the sim-free cost of replicating row uniformly on
// a row.N x row.N network at the given link width.
//
// The static terms are the closed form of Static(topo.Uniform(...)): with
// e_i = row.Degree(i), S1 = Σe_i and S2 = Σe_i², a router at (x, y) has
// k = e_x + e_y + 1 ports, so Σk = 2n·S1 + n² and Σk² = 2n·S2 + 2·S1² +
// 4n·S1 + n². Values agree with the per-router sum to float rounding
// (pinned within 1e-9 relative by TestPlacementCostMatchesStatic).
func (m Model) PlacementCost(row topo.Row, widthBits int) PlacementCost {
	n := row.N
	s1, s2 := 0, 0
	for i := 0; i < n; i++ {
		e := row.Degree(i)
		s1 += e
		s2 += e * e
	}
	sumK := 2*n*s1 + n*n
	sumK2 := 2*n*s2 + 2*s1*s1 + 4*n*s1 + n*n

	var c PlacementCost
	c.Static.Buffer = float64(n*n) * float64(m.BufBitsPerRouter) * m.Static.BufPerBit
	c.Static.Crossbar = float64(widthBits) * float64(sumK2) * m.Static.XbarPerBK2
	c.Static.Other = float64(n*n)*m.Static.OtherBase + m.Static.OtherPerPort*float64(2*sumK)

	c.WireUnits = 2 * n * wireUnitsRow(row)
	c.WireBitUnits = float64(c.WireUnits) * float64(widthBits)
	c.Wiring = c.WireBitUnits * m.WirePerBitUnit
	return c
}
