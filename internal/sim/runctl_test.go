package sim

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"explink/internal/topo"
	"explink/internal/traffic"
)

// TestRunDeadlinePartialResult checks the context contract on Run: a run cut
// short by a deadline returns the partial measurements it accumulated along
// with an error matching both ErrCancelled and the context's cause.
func TestRunDeadlinePartialResult(t *testing.T) {
	cfg := NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.05)
	cfg.Warmup = 100
	cfg.Measure = 1 << 30 // would run for days without the deadline
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the deadline cause preserved", err)
	}
	if res.Cycles == 0 {
		t.Fatal("no partial result: zero cycles simulated before the deadline")
	}
	if res.Truncated != TruncatedCancelled {
		t.Fatalf("Truncated = %q, want %q", res.Truncated, TruncatedCancelled)
	}
	if res.Drained {
		t.Fatal("a cancelled run must not claim to have drained")
	}
}

// TestRunManyAggMidBatchCancel cancels a single-worker batch while its first
// (deliberately endless) run is in flight and checks the partial-results
// contract: the in-flight run returns its partial Result with a cancellation
// error, and every run never dispatched fails with its own indexed error, so
// the joined error accounts for the whole batch.
func TestRunManyAggMidBatchCancel(t *testing.T) {
	mk := func(measure int) Config {
		cfg := NewConfig(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
		cfg.Warmup, cfg.Measure, cfg.Drain = 100, measure, 1000
		return cfg
	}
	cfgs := []Config{mk(1 << 30), mk(500), mk(500), mk(500)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	results, _, err := RunManyAgg(ctx, cfgs, 1)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("err %T is not a joined error", err)
	}
	if n := len(joined.Unwrap()); n != len(cfgs) {
		t.Fatalf("joined error has %d members, want %d (one per failed run)", n, len(cfgs))
	}
	if len(results) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(results), len(cfgs))
	}
	// The in-flight run kept its partial measurements; the undispatched runs
	// stayed zero.
	if results[0].Cycles == 0 || results[0].Truncated != TruncatedCancelled {
		t.Fatalf("in-flight run lost its partial result: %+v", results[0])
	}
	for i := 1; i < len(results); i++ {
		if results[i].Cycles != 0 {
			t.Fatalf("run %d should never have started, got %d cycles", i, results[i].Cycles)
		}
	}
}

// TestBatchMidRunCancel cancels a seed sweep running on the batched engine
// (all replicas start immediately, unlike the pool's dispatch queue) and
// checks the same partial-results contract: one indexed ErrCancelled error
// per replica, and every replica keeps the partial Result measured so far.
func TestBatchMidRunCancel(t *testing.T) {
	cfg := NewConfig(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	cfg.Warmup, cfg.Measure, cfg.Drain = 100, 1<<30, 1000 // endless measurement
	cfgs := ReplicaConfigs(cfg, 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	results, _, err := RunManyAgg(ctx, cfgs, 2)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("err %T is not a joined error", err)
	}
	if n := len(joined.Unwrap()); n != len(cfgs) {
		t.Fatalf("joined error has %d members, want %d (every replica was in flight)", n, len(cfgs))
	}
	if len(results) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(results), len(cfgs))
	}
	for i, r := range results {
		if r.Truncated != TruncatedCancelled {
			t.Fatalf("replica %d Truncated = %q, want %q", i, r.Truncated, TruncatedCancelled)
		}
		if r.Cycles == 0 {
			t.Fatalf("replica %d lost its partial result: %+v", i, r)
		}
		if r.Drained {
			t.Fatalf("replica %d claims to have drained after cancellation", i)
		}
	}
}

// TestFindSaturationReplicas runs the saturation search with replicated
// probes and checks it still finds a knee on the batched path.
func TestFindSaturationReplicas(t *testing.T) {
	base := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0)
	base.Warmup, base.Measure, base.Drain = 300, 1500, 5000
	opts := DefaultSaturationOpts()
	opts.Refine = 2
	opts.Replicas = 3
	sr, err := FindSaturation(context.Background(), base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Saturation <= 0 || sr.SatRate <= 0 {
		t.Fatalf("no saturation point found: %+v", sr)
	}
	if sr.SimCycles == 0 {
		t.Fatal("replicated sweep reported no simulated cycles")
	}
	for i := 1; i < len(sr.Points); i++ {
		if sr.Points[i-1].Rate > sr.Points[i].Rate {
			t.Fatalf("points out of order at %d: %+v", i, sr.Points)
		}
	}
}

// TestFindSaturationPointsSorted checks that the sweep's data points come
// back sorted by offered rate even though refinement probes rates out of
// order, and that the reported saturation point is itself among the points.
func TestFindSaturationPointsSorted(t *testing.T) {
	base := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0)
	base.Warmup, base.Measure, base.Drain = 300, 1500, 5000
	opts := DefaultSaturationOpts()
	opts.Start = 0.02
	opts.Factor = 2
	opts.Refine = 3 // bisection visits rates between earlier coarse probes
	res, err := FindSaturation(context.Background(), base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(res.Points, func(i, j int) bool {
		return res.Points[i].Rate < res.Points[j].Rate
	}) {
		rates := make([]float64, len(res.Points))
		for i, p := range res.Points {
			rates[i] = p.Rate
		}
		t.Fatalf("points not sorted by rate: %v", rates)
	}
	found := false
	for _, p := range res.Points {
		if p.Rate == res.SatRate {
			found = true
			if p.Result.ThroughputPackets != res.Saturation {
				t.Fatalf("saturation %.5f disagrees with its own point %.5f",
					res.Saturation, p.Result.ThroughputPackets)
			}
			if !p.Result.Drained {
				t.Fatal("the reported stable point did not drain")
			}
		}
	}
	if !found {
		t.Fatalf("SatRate %.4f not among the %d probed points", res.SatRate, len(res.Points))
	}
}

// stallNetwork advances a simulator until traffic is in flight, then revokes
// every credit in the system: no router-to-router or NI injection channel can
// ever move a flit again, which is indistinguishable from a routing deadlock.
func stallNetwork(t *testing.T, s *Simulator) {
	t.Helper()
	for i := 0; i < 500 && s.inFlightFlits == 0; i++ {
		s.step()
		s.now++
	}
	if s.inFlightFlits == 0 {
		t.Fatal("no traffic in flight after 500 warmup cycles")
	}
	for _, r := range s.routers {
		for oi := range r.out {
			op := &r.out[oi]
			if op.isEject {
				continue
			}
			for v := range op.credits {
				op.credits[v] = 0
			}
		}
	}
	for _, ni := range s.nis {
		for v := range ni.credits {
			ni.credits[v] = 0
		}
	}
}

// TestDeadlockDiagnostics starves a healthy network of credits and checks
// that Run reports a typed *DeadlockError whose dump names the blocked
// routers, ports and VCs and the zero credit each is waiting on.
func TestDeadlockDiagnostics(t *testing.T) {
	cfg := NewConfig(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.10)
	cfg.Warmup, cfg.Measure, cfg.Drain = 300, 2000, 20000
	cfg.ProgressTimeout = 100
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stallNetwork(t, s)
	res, err := s.Run(context.Background())
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err %T does not unwrap to *DeadlockError", err)
	}
	if de.Stall <= int64(cfg.ProgressTimeout) {
		t.Fatalf("stall %d not past the %d-cycle timeout", de.Stall, cfg.ProgressTimeout)
	}
	if !strings.Contains(de.Report, "blocked input VCs") {
		t.Fatalf("report missing the summary header:\n%s", de.Report)
	}
	if !strings.Contains(de.Report, "credits=0") {
		t.Fatalf("report does not name the exhausted credits:\n%s", de.Report)
	}
	if !strings.Contains(de.Report, "router ") {
		t.Fatalf("report does not name any blocked router:\n%s", de.Report)
	}
	if !res.DeadlockSuspected || res.Truncated != TruncatedDeadlock {
		t.Fatalf("partial result not flagged: suspected=%v truncated=%q",
			res.DeadlockSuspected, res.Truncated)
	}
}

// auditSim builds an audited 4x4 simulator, advances it far enough for
// traffic to flow through every invariant sweep, and asserts the healthy
// engine passes the audit before the caller injects a fault.
func auditSim(t *testing.T) *Simulator {
	t.Helper()
	cfg := NewConfig(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	cfg.Warmup, cfg.Measure, cfg.Drain = 300, 2000, 10000
	cfg.Audit = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		s.step()
		if err := s.audit.check(s.now); err != nil {
			t.Fatalf("healthy engine failed audit at cycle %d: %v", s.now, err)
		}
		s.now++
	}
	if s.inFlightFlits == 0 {
		t.Fatal("no traffic in flight: the conservation sweeps saw an idle network")
	}
	return s
}

// mutateCredit seeds a one-off credit fault (an extra free credit on the
// first non-eject output port of router 5) and returns a description of the
// mutated channel.
func mutateCredit(t *testing.T, s *Simulator) {
	t.Helper()
	r := s.routers[5]
	for oi := range r.out {
		if r.out[oi].isEject {
			continue
		}
		r.out[oi].credits[0]++
		return
	}
	t.Fatal("router 5 has no network output port")
}

// TestAuditDetectsCreditFault seeds a single spurious credit into a healthy
// audited run and checks the auditor fails fast with the violated invariant
// and cycle. This is the mutation test for the credit-conservation sweep: if
// the auditor ever goes soft, this test rots first.
func TestAuditDetectsCreditFault(t *testing.T) {
	s := auditSim(t)
	mutateCredit(t, s)
	err := s.audit.check(s.now)
	if err == nil {
		t.Fatal("auditor accepted a corrupted credit count")
	}
	if !errors.Is(err, ErrAudit) {
		t.Fatalf("err = %v, want ErrAudit", err)
	}
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("err %T does not unwrap to *AuditError", err)
	}
	if ae.Invariant != "credit-conservation" {
		t.Fatalf("invariant = %q, want credit-conservation", ae.Invariant)
	}
	if ae.Cycle != s.now {
		t.Fatalf("cycle = %d, want %d", ae.Cycle, s.now)
	}
	if !strings.Contains(ae.Detail, "router 5") {
		t.Fatalf("detail does not name the faulty router: %s", ae.Detail)
	}
}

// TestAuditDetectsFlitLoss corrupts the in-flight flit counter and checks
// the flit-conservation sweep catches it.
func TestAuditDetectsFlitLoss(t *testing.T) {
	s := auditSim(t)
	s.inFlightFlits--
	err := s.audit.check(s.now)
	if !errors.Is(err, ErrAudit) {
		t.Fatalf("err = %v, want ErrAudit", err)
	}
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("err %T does not unwrap to *AuditError", err)
	}
	if ae.Invariant != "flit-conservation" {
		t.Fatalf("invariant = %q, want flit-conservation", ae.Invariant)
	}
}

// TestRunStopsOnAuditViolation checks the Run-level plumbing: a violation
// mid-run truncates the simulation with TruncatedAudit and surfaces the
// typed error, rather than silently producing numbers from a corrupt engine.
func TestRunStopsOnAuditViolation(t *testing.T) {
	s := auditSim(t)
	mutateCredit(t, s)
	res, err := s.Run(context.Background())
	if !errors.Is(err, ErrAudit) {
		t.Fatalf("err = %v, want ErrAudit", err)
	}
	if res.Truncated != TruncatedAudit {
		t.Fatalf("Truncated = %q, want %q", res.Truncated, TruncatedAudit)
	}
	if res.Drained {
		t.Fatal("an aborted run must not claim to have drained")
	}
}

// TestConfigTypedErrors pins the typed validation errors: a negative flit
// width (zero means "derive from BW") and a malformed trace must both be
// matchable with ErrConfig.
func TestConfigTypedErrors(t *testing.T) {
	cfg := NewConfig(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	cfg.WidthBits = -128
	if _, err := New(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("WidthBits<0: err = %v, want ErrConfig", err)
	}
	bad := &Trace{W: 0, H: 4}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero-width trace: err = %v, want ErrConfig", err)
	}
}
