package sim

import (
	"fmt"
	"sort"
	"strings"
)

// ChannelStat reports one directed network channel's traffic over a run.
type ChannelStat struct {
	// SrcX, SrcY, DstX, DstY identify the channel's endpoints.
	SrcX, SrcY, DstX, DstY int
	// Length is the channel's Manhattan length in unit segments.
	Length int
	// Flits is the number of flits that traversed the channel.
	Flits int64
	// Utilization is Flits divided by the cycles of the whole run — the
	// fraction of cycles the channel carried a flit.
	Utilization float64
}

func (c ChannelStat) String() string {
	return fmt.Sprintf("(%d,%d)->(%d,%d) len=%d flits=%d util=%.3f",
		c.SrcX, c.SrcY, c.DstX, c.DstY, c.Length, c.Flits, c.Utilization)
}

// ChannelStats returns per-channel traffic statistics sorted by descending
// utilization. It exposes exactly the effect Section 5.4 discusses: the
// HFB's inter-quadrant local links saturate while express capacity idles,
// whereas optimized placements spread load more evenly.
func (s *Simulator) ChannelStats() []ChannelStat {
	cycles := s.now
	if cycles <= 0 {
		cycles = 1
	}
	out := make([]ChannelStat, 0, len(s.channels))
	for _, ch := range s.channels {
		src := ch.src
		dst := ch.dst
		out = append(out, ChannelStat{
			SrcX: src.x, SrcY: src.y, DstX: dst.x, DstY: dst.y,
			Length:      int(ch.lenUnits),
			Flits:       ch.flits,
			Utilization: float64(ch.flits) / float64(cycles),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flits != out[j].Flits {
			return out[i].Flits > out[j].Flits
		}
		a, b := out[i], out[j]
		ka := [4]int{a.SrcY, a.SrcX, a.DstY, a.DstX}
		kb := [4]int{b.SrcY, b.SrcX, b.DstY, b.DstX}
		for k := range ka {
			if ka[k] != kb[k] {
				return ka[k] < kb[k]
			}
		}
		return false
	})
	return out
}

// UtilizationSummary condenses channel statistics into the numbers the
// bottleneck analysis needs.
type UtilizationSummary struct {
	Channels int
	MaxUtil  float64
	MeanUtil float64
	// Gini is a [0,1] inequality measure of per-channel load: 0 means all
	// channels equally loaded, values near 1 mean a few channels carry
	// nearly everything (a bottlenecked design).
	Gini float64
}

func (u UtilizationSummary) String() string {
	return fmt.Sprintf("channels=%d max=%.3f mean=%.3f gini=%.3f",
		u.Channels, u.MaxUtil, u.MeanUtil, u.Gini)
}

// Summarize computes the utilization summary of a finished run.
func (s *Simulator) Summarize() UtilizationSummary {
	stats := s.ChannelStats()
	var out UtilizationSummary
	out.Channels = len(stats)
	if len(stats) == 0 {
		return out
	}
	loads := make([]float64, len(stats))
	var sum float64
	for i, c := range stats {
		loads[i] = c.Utilization
		sum += c.Utilization
		if c.Utilization > out.MaxUtil {
			out.MaxUtil = c.Utilization
		}
	}
	out.MeanUtil = sum / float64(len(stats))
	// Gini over sorted loads.
	sort.Float64s(loads)
	if sum > 0 {
		var cum float64
		for i, l := range loads {
			cum += float64(i+1) * l
		}
		n := float64(len(loads))
		out.Gini = (2*cum - (n+1)*sum) / (n * sum)
	}
	return out
}

// TopChannels renders the k busiest channels for diagnostics.
func (s *Simulator) TopChannels(k int) string {
	stats := s.ChannelStats()
	if k > len(stats) {
		k = len(stats)
	}
	var b strings.Builder
	for i := 0; i < k; i++ {
		b.WriteString(stats[i].String())
		b.WriteString("\n")
	}
	return b.String()
}
