package sim

import (
	"context"
	"math"
	"testing"

	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// pairPattern injects only at Src, always toward Dst; every other node stays
// silent (Dest == src drops the packet).
type pairPattern struct{ Src, Dst int }

func (p pairPattern) Name() string { return "pair" }
func (p pairPattern) Dest(src int, _ *stats.RNG) int {
	if src == p.Src {
		return p.Dst
	}
	return src
}

func quickCfg(t topo.Topology, c int, pat traffic.Pattern, rate float64) Config {
	cfg := NewConfig(t, c, pat, rate)
	cfg.Warmup = 500
	cfg.Measure = 4000
	cfg.Drain = 20000
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestZeroLoadMatchesModel(t *testing.T) {
	// A single corner-to-corner flow on a 4x4 mesh with one packet class:
	// the median zero-load packet latency must equal the analytic value
	// exactly: head (6 hops * 3 + 6 units = 24) + stages (3) + flits + 1.
	for _, tc := range []struct {
		bits, flits int
	}{
		{512, 2}, {128, 1},
	} {
		cfg := quickCfg(topo.Mesh(4), 1, pairPattern{Src: 0, Dst: 15}, 0.002)
		cfg.Mix = []model.PacketClass{{Name: "only", Bits: tc.bits, Frac: 1}}
		cfg.Measure = 20000
		res := mustRun(t, cfg)
		if res.MeasuredPackets == 0 {
			t.Fatal("no packets measured")
		}
		want := 24 + 3 + tc.flits + 1
		if got := res.P95Latency; got != want {
			t.Fatalf("bits=%d: p95 latency = %d, want %d (res: %v)", tc.bits, got, want, res)
		}
		if res.AvgHops != 6 {
			t.Fatalf("hops = %g, want 6", res.AvgHops)
		}
		if res.AvgContentionPerHop > 0.02 {
			t.Fatalf("contention = %g at zero load", res.AvgContentionPerHop)
		}
	}
}

func TestZeroLoadExpressMatchesModel(t *testing.T) {
	// Express row 0-7 on an 8x8 network: the 0 -> 7 flow in row 0 takes one
	// hop of length 7: head = 3 + 7 = 10, so latency = 10 + 3 + flits + 1.
	row := topo.NewRow(8, topo.Span{From: 0, To: 7})
	tp := topo.Uniform("express", 8, row)
	cfg := quickCfg(tp, 2, pairPattern{Src: 0, Dst: 7}, 0.002)
	cfg.Mix = []model.PacketClass{{Name: "only", Bits: 128, Frac: 1}}
	cfg.Measure = 20000
	res := mustRun(t, cfg)
	want := 10 + 3 + 1 + 1
	if got := res.P95Latency; got != want {
		t.Fatalf("latency = %d, want %d (%v)", got, want, res)
	}
	if res.AvgHops != 1 {
		t.Fatalf("hops = %g, want 1", res.AvgHops)
	}
}

func TestConservationAndDrain(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatalf("low-load run did not drain: %v", res)
	}
	if res.Counts.PacketsInjected != res.Counts.PacketsEjected {
		t.Fatalf("packet conservation violated: %d in, %d out",
			res.Counts.PacketsInjected, res.Counts.PacketsEjected)
	}
	if res.Counts.FlitsInjected != res.Counts.FlitsEjected {
		t.Fatalf("flit conservation violated: %d in, %d out",
			res.Counts.FlitsInjected, res.Counts.FlitsEjected)
	}
	if s.InFlight() != 0 {
		t.Fatalf("flits left in network: %d", s.InFlight())
	}
	if res.Counts.BufferWrites != res.Counts.BufferReads {
		t.Fatalf("buffer writes %d != reads %d", res.Counts.BufferWrites, res.Counts.BufferReads)
	}
}

func TestUniformRandomZeroLoadAverage(t *testing.T) {
	// At very low load the average network latency must approach the
	// analytic zero-load mean over source!=dest pairs.
	n := 8
	cfg := quickCfg(topo.Mesh(n), 1, traffic.UniformRandom(n), 0.003)
	res := mustRun(t, cfg)
	p := model.Params{RouterDelay: 3, LinkDelay: 1}
	tp := model.ComputeTopoPaths(topo.Mesh(n), p)
	nn := float64(n * n)
	meanHeadNoDiag := tp.MeanHead() * (nn * nn) / (nn * (nn - 1))
	ideal := meanHeadNoDiag + 3 + model.MeanFlits(model.DefaultMix(), 256)
	if math.Abs(res.AvgNetLatency-ideal) > 1.0 {
		t.Fatalf("avg net latency %.2f, ideal %.2f (%v)", res.AvgNetLatency, ideal, res)
	}
	if res.AvgContentionPerHop > 0.2 {
		t.Fatalf("contention %.2f at near-zero load", res.AvgContentionPerHop)
	}
}

func TestHopsMatchRouting(t *testing.T) {
	// Deterministic transpose traffic: measured mean hops must equal the
	// analytic hop count averaged over the transpose pairs.
	n := 4
	pat := traffic.Transpose(n)
	cfg := quickCfg(topo.Mesh(n), 1, pat, 0.01)
	res := mustRun(t, cfg)
	p := model.Params{RouterDelay: 3, LinkDelay: 1}
	tp := model.ComputeTopoPaths(topo.Mesh(n), p)
	var want, cnt float64
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			src, dst := y*n+x, x*n+y
			if src == dst {
				continue
			}
			want += float64(tp.PairHops(src, dst))
			cnt++
		}
	}
	want /= cnt
	// Sources inject slightly different packet counts (Bernoulli draws), so
	// the measured average is per-packet rather than per-pair; allow a small
	// sampling tolerance.
	if math.Abs(res.AvgHops-want) > 0.05 {
		t.Fatalf("hops = %g, want %g", res.AvgHops, want)
	}
}

func TestExpressReducesLatency(t *testing.T) {
	n := 8
	mesh := quickCfg(topo.Mesh(n), 1, traffic.UniformRandom(n), 0.005)
	meshRes := mustRun(t, mesh)
	hfb := quickCfg(topo.HFB(n), 4, traffic.UniformRandom(n), 0.005)
	hfbRes := mustRun(t, hfb)
	if hfbRes.AvgNetLatency >= meshRes.AvgNetLatency {
		t.Fatalf("HFB %.2f not faster than mesh %.2f", hfbRes.AvgNetLatency, meshRes.AvgNetLatency)
	}
	if hfbRes.AvgHops >= meshRes.AvgHops {
		t.Fatalf("HFB hops %.2f not fewer than mesh %.2f", hfbRes.AvgHops, meshRes.AvgHops)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		cfg := quickCfg(topo.HFB(8), 4, traffic.UniformRandom(8), 0.02)
		cfg.Seed = 12345
		return mustRun(t, cfg)
	}
	a, b := run(), run()
	if a.WithoutTiming() != b.WithoutTiming() {
		t.Fatalf("non-deterministic results:\n%v\n%v", a, b)
	}
}

func TestSeedMatters(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	cfg.Seed = 1
	a := mustRun(t, cfg)
	cfg.Seed = 2
	b := mustRun(t, cfg)
	if a.Counts.PacketsInjected == b.Counts.PacketsInjected && a.AvgPacketLatency == b.AvgPacketLatency {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestHighLoadNoDeadlock(t *testing.T) {
	// Saturating an express topology must never trip the deadlock watchdog:
	// routing is provably acyclic, so traffic keeps moving even when
	// congested (the run may legitimately fail to drain).
	for _, tc := range []struct {
		name string
		tp   topo.Topology
		c    int
	}{
		{"mesh", topo.Mesh(4), 1},
		{"fb", topo.FlattenedButterfly(4), 4},
		{"hfb8", topo.HFB(8), 4},
	} {
		cfg := quickCfg(tc.tp, tc.c, traffic.UniformRandom(tc.tp.N()), 0.5)
		cfg.Measure = 3000
		cfg.Drain = 3000
		res := mustRun(t, cfg)
		if res.DeadlockSuspected {
			t.Fatalf("%s: deadlock suspected under load: %v", tc.name, res)
		}
		if res.Counts.PacketsEjected == 0 {
			t.Fatalf("%s: nothing moved", tc.name)
		}
	}
}

func TestTornadoAndPatternsRun(t *testing.T) {
	n := 8
	for _, pat := range []traffic.Pattern{
		traffic.Transpose(n), traffic.BitReverse(n), traffic.BitComplement(n),
		traffic.Shuffle(n), traffic.Tornado(n), traffic.Neighbor(n),
		traffic.Hotspot(n, []int{0, 63}, 0.2, traffic.UniformRandom(n)),
	} {
		cfg := quickCfg(topo.Mesh(n), 1, pat, 0.01)
		cfg.Measure = 2000
		res := mustRun(t, cfg)
		if !res.Drained || res.MeasuredPackets == 0 {
			t.Fatalf("%s: %v", pat.Name(), res)
		}
	}
}

func TestEqualBufferBudget(t *testing.T) {
	// Section 4.6: schemes get identical total buffer bits. Depth must adapt
	// to port count and width.
	cfg := NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.01)
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if d := cfg.vcDepth(5); d != 4 { // 20480 / (5*4*256)
		t.Fatalf("mesh depth = %d, want 4", d)
	}
	cfg2 := NewConfig(topo.HFB(8), 4, traffic.UniformRandom(8), 0.01)
	if err := cfg2.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg2.WidthBits != 64 {
		t.Fatalf("HFB width = %d", cfg2.WidthBits)
	}
	// 8 in-ports at 64 bits: 20480/(8*4*64) = 10 flits.
	if d := cfg2.vcDepth(8); d != 10 {
		t.Fatalf("HFB depth = %d, want 10", d)
	}
	if d := cfg2.vcDepth(1000); d != 2 {
		t.Fatalf("depth floor = %d, want 2", d)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.01)
	bad.InjectionRate = 2
	if _, err := New(bad); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	bad2 := NewConfig(topo.Mesh(8), 1, nil, 0.01)
	if _, err := New(bad2); err == nil {
		t.Fatal("nil pattern accepted")
	}
	bad3 := NewConfig(topo.HFB(8), 1, traffic.UniformRandom(8), 0.01) // HFB needs C=4
	if _, err := New(bad3); err == nil {
		t.Fatal("topology over link limit accepted")
	}
	bad4 := NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.01)
	bad4.Measure = 0
	if _, err := New(bad4); err == nil {
		t.Fatal("zero measure window accepted")
	}
}

func TestZeroRate(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0)
	res := mustRun(t, cfg)
	if res.Counts.PacketsInjected != 0 || !res.Drained {
		t.Fatalf("zero-rate run: %v", res)
	}
}

func TestSerializationVisibleInSim(t *testing.T) {
	// Same topology at narrower width: long packets take more flits, so the
	// measured latency grows by the extra serialization.
	pat := pairPattern{Src: 0, Dst: 15}
	wide := quickCfg(topo.Mesh(4), 1, pat, 0.002)
	wide.Mix = []model.PacketClass{{Name: "long", Bits: 512, Frac: 1}}
	wide.Measure = 10000
	wres := mustRun(t, wide)

	narrow := quickCfg(topo.Mesh(4), 1, pat, 0.002)
	narrow.Mix = []model.PacketClass{{Name: "long", Bits: 512, Frac: 1}}
	narrow.WidthBits = 64 // 8 flits per packet
	narrow.Measure = 10000
	nres := mustRun(t, narrow)

	if diff := nres.P95Latency - wres.P95Latency; diff != 6 {
		t.Fatalf("serialization delta = %d, want 6 (8 flits vs 2)", diff)
	}
}

func TestThroughputOrdering(t *testing.T) {
	// Fig. 8(b): mesh sustains more uniform-random load than the flattened
	// butterfly at the same bisection budget (express links trade throughput
	// for latency). Use a small network to keep the sweep fast.
	if testing.Short() {
		t.Skip("saturation sweep in short mode")
	}
	opts := DefaultSaturationOpts()
	opts.Start = 0.01
	base := func(t4 topo.Topology, c int) Config {
		cfg := NewConfig(t4, c, traffic.UniformRandom(4), 0)
		cfg.Warmup = 500
		cfg.Measure = 3000
		cfg.Drain = 8000
		return cfg
	}
	mesh, err := FindSaturation(context.Background(), base(topo.Mesh(4), 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := FindSaturation(context.Background(), base(topo.FlattenedButterfly(4), 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Saturation <= fb.Saturation {
		t.Fatalf("mesh throughput %.4f not above FB %.4f", mesh.Saturation, fb.Saturation)
	}
}

func TestActivityCountsScaleWithLoad(t *testing.T) {
	lo := mustRun(t, quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.01))
	hi := mustRun(t, quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05))
	if hi.Counts.SwitchTraversals <= lo.Counts.SwitchTraversals {
		t.Fatal("switch activity did not grow with load")
	}
	if hi.Counts.LinkFlitUnits <= lo.Counts.LinkFlitUnits {
		t.Fatal("link activity did not grow with load")
	}
}

func TestVCFIFO(t *testing.T) {
	q := newVCFIFO(3)
	if q.front() != nil {
		t.Fatal("front of empty queue")
	}
	for i := 0; i < 3; i++ {
		q.push(bufEntry{readyAt: int64(i)})
	}
	if q.len() != 3 || q.cap() != 3 {
		t.Fatalf("len/cap = %d/%d", q.len(), q.cap())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("overflow not caught")
			}
		}()
		q.push(bufEntry{})
	}()
	for i := 0; i < 3; i++ {
		if e := q.pop(); e.readyAt != int64(i) {
			t.Fatalf("pop %d = %d", i, e.readyAt)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("underflow not caught")
			}
		}()
		q.pop()
	}()
}

func TestDebugString(t *testing.T) {
	s, err := New(quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if s.DebugString() == "" || s.Now() != 0 {
		t.Fatal("debug accessors broken")
	}
}
