package sim

import (
	"context"
	"testing"

	"explink/internal/model"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func TestConcentrationZeroLoadRemote(t *testing.T) {
	// 4x4 mesh with 2 cores per router: core 0 (router 0) to core 31
	// (router 15). Router path unchanged by concentration: head 24, so
	// latency = 24 + 3 + flits + 1.
	cfg := quickCfg(topo.Mesh(4), 1, pairPattern{Src: 0, Dst: 31}, 0.002)
	cfg.Concentration = 2
	cfg.Mix = []model.PacketClass{{Name: "only", Bits: 128, Frac: 1}}
	cfg.Measure = 20000
	res := mustRun(t, cfg)
	want := 24 + 3 + 1 + 1
	if res.P95Latency != want {
		t.Fatalf("remote latency %d, want %d (%v)", res.P95Latency, want, res)
	}
}

func TestConcentrationSameRouterCores(t *testing.T) {
	// Cores 0 and 1 share router 0: the packet only crosses that router's
	// switch — zero network hops, latency = 0 + 3 + flits + 1.
	cfg := quickCfg(topo.Mesh(4), 1, pairPattern{Src: 0, Dst: 1}, 0.002)
	cfg.Concentration = 2
	cfg.Mix = []model.PacketClass{{Name: "only", Bits: 128, Frac: 1}}
	cfg.Measure = 20000
	res := mustRun(t, cfg)
	want := 0 + 3 + 1 + 1
	if res.P95Latency != want {
		t.Fatalf("same-router latency %d, want %d (%v)", res.P95Latency, want, res)
	}
	if res.AvgHops != 0 {
		t.Fatalf("hops = %g, want 0", res.AvgHops)
	}
	if res.AvgContentionPerHop > 0.02 {
		t.Fatalf("contention %g", res.AvgContentionPerHop)
	}
}

func TestConcentrationConservation(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandomN(4*4*4), 0.01)
	cfg.Concentration = 4
	res := mustRun(t, cfg)
	if !res.Drained {
		t.Fatalf("concentrated run did not drain: %v", res)
	}
	if res.Counts.FlitsInjected != res.Counts.FlitsEjected {
		t.Fatal("flit conservation violated")
	}
	if res.MeasuredPackets == 0 {
		t.Fatal("no traffic")
	}
}

func TestConcentrationSaturatesEarlierPerCore(t *testing.T) {
	// With 4 cores per router the same per-core rate offers 4x the load to
	// each router: the concentrated network must congest at a per-core rate
	// where the plain one is still comfortable.
	at := func(k int, rate float64) Result {
		n := 4
		pat := traffic.UniformRandomN(n * n * k)
		cfg := quickCfg(topo.Mesh(n), 1, pat, rate)
		cfg.Concentration = k
		cfg.Measure = 3000
		cfg.Drain = 6000
		return mustRun(t, cfg)
	}
	plain := at(1, 0.10)
	conc := at(4, 0.10)
	if conc.AvgPacketLatency <= plain.AvgPacketLatency {
		t.Fatalf("concentration did not increase congestion: %.2f vs %.2f",
			conc.AvgPacketLatency, plain.AvgPacketLatency)
	}
}

func TestConcentrationTraceRoundTrip(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandomN(32), 0.01)
	cfg.Concentration = 2
	cfg.RecordTrace = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := s.RecordedTrace()
	if tr.K != 2 {
		t.Fatalf("trace K = %d", tr.K)
	}
	replay := quickCfg(topo.Mesh(4), 1, nil, 0)
	replay.Concentration = 2
	replay.Trace = tr
	s2, err := New(replay)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts != orig.Counts {
		t.Fatalf("concentrated replay diverged")
	}
	// Replaying at the wrong concentration must be rejected.
	bad := quickCfg(topo.Mesh(4), 1, nil, 0)
	bad.Trace = tr
	if _, err := New(bad); err == nil {
		t.Fatal("trace concentration mismatch accepted")
	}
}

func TestConcentrationValidation(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.01)
	cfg.Concentration = 99
	if _, err := New(cfg); err == nil {
		t.Fatal("absurd concentration accepted")
	}
}

func TestConcentratedFlattenedButterflyBeatsMesh(t *testing.T) {
	// The flattened butterfly of [17] in its original form: 64 cores as a
	// 4x4 network of concentration-4 routers with full row/column
	// connectivity. At low load it must beat the 64-core mesh on latency —
	// the result that motivated express-link topologies in the first place.
	fbCfg := quickCfg(topo.FlattenedButterfly(4), 4, traffic.UniformRandomN(64), 0.01)
	fbCfg.Concentration = 4
	fb := mustRun(t, fbCfg)

	meshCfg := quickCfg(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.01)
	mesh := mustRun(t, meshCfg)

	if !fb.Drained || !mesh.Drained {
		t.Fatalf("runs unhealthy: fb=%v mesh=%v", fb.Drained, mesh.Drained)
	}
	if fb.AvgPacketLatency >= mesh.AvgPacketLatency {
		t.Fatalf("concentrated FB %.2f not below 64-core mesh %.2f",
			fb.AvgPacketLatency, mesh.AvgPacketLatency)
	}
	if fb.AvgHops >= mesh.AvgHops {
		t.Fatalf("FB hops %.2f not below mesh %.2f", fb.AvgHops, mesh.AvgHops)
	}
}
