package sim

// packet is one network packet; flits reference it.
type packet struct {
	id       int64
	src, dst int
	flits    int   // number of flits at the configured width
	class    int   // index into Config.Mix
	created  int64 // cycle the NI generated it
	injected int64 // cycle the head flit entered the first router buffer
	done     int64 // cycle the tail flit reached the destination NI
	ejected  int   // flits delivered to the destination NI so far
	hops     int   // router-to-router hops taken by the head flit
	measured bool  // created inside the measurement window
	yx       bool  // route Y-first (O1TURN's second class); false = XY
}

// flit is one flow-control unit of a packet.
type flit struct {
	pkt *packet
	seq int32
}

func (f flit) isHead() bool { return f.seq == 0 }
func (f flit) isTail() bool { return int(f.seq) == f.pkt.flits-1 }

// bufEntry is a buffered flit plus the cycle it becomes eligible for switch
// allocation (modeling the router pipeline stages ahead of ST).
type bufEntry struct {
	f       flit
	readyAt int64
}

// vcFIFO is a fixed-capacity ring buffer of flits, one per virtual channel.
type vcFIFO struct {
	buf   []bufEntry
	head  int
	count int
}

func newVCFIFO(depth int) vcFIFO {
	return vcFIFO{buf: make([]bufEntry, depth)}
}

func (q *vcFIFO) push(e bufEntry) {
	if q.count == len(q.buf) {
		panic("sim: VC buffer overflow — credit flow control violated")
	}
	i := q.head + q.count
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = e
	q.count++
}

func (q *vcFIFO) front() *bufEntry {
	if q.count == 0 {
		return nil
	}
	return &q.buf[q.head]
}

func (q *vcFIFO) pop() bufEntry {
	if q.count == 0 {
		panic("sim: pop from empty VC buffer")
	}
	e := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.count--
	return e
}

func (q *vcFIFO) len() int { return q.count }
func (q *vcFIFO) cap() int { return len(q.buf) }
