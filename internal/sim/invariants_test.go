package sim

import (
	"context"
	"testing"

	"explink/internal/stats"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// randomFeasibleRow builds a random placement within link limit c (mirrors
// the helper in the route tests).
func randomFeasibleRow(rng *stats.RNG, n, c int) topo.Row {
	r := topo.Row{N: n}
	for i := 0; i < 2*n; i++ {
		from := rng.Intn(n - 2)
		maxLen := n - 1 - from
		if maxLen < 2 {
			continue
		}
		to := from + 2 + rng.Intn(maxLen-1)
		cand := r.Add(topo.Span{From: from, To: to})
		if cand.Validate(c) == nil {
			r = cand
		}
	}
	return r
}

// TestRandomPlacementInvariants is the simulator's broad property test:
// for random feasible placements under random loads, every run must conserve
// flits, stay deadlock-free, and never deliver a measured packet faster than
// the zero-load pipeline allows.
func TestRandomPlacementInvariants(t *testing.T) {
	rng := stats.NewRNG(2024)
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(3)
		c := 2 + rng.Intn(3)
		row := randomFeasibleRow(rng, n, c)
		tp := topo.Uniform("rand", n, row)
		rate := 0.005 + rng.Float64()*0.05
		cfg := quickCfg(tp, c, traffic.UniformRandom(n), rate)
		cfg.Measure = 2000
		cfg.Seed = rng.Uint64()
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, row, err)
		}
		fasterThanLight := 0
		s.onPacketDone = func(src, dst, flits, hops int, netLat, ideal float64) {
			if netLat < ideal-1e-9 {
				fasterThanLight++
			}
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.DeadlockSuspected {
			t.Fatalf("trial %d: deadlock on %v", trial, row)
		}
		if fasterThanLight > 0 {
			t.Fatalf("trial %d: %d packets beat the zero-load bound on %v", trial, fasterThanLight, row)
		}
		if res.Drained && res.Counts.FlitsInjected != res.Counts.FlitsEjected {
			t.Fatalf("trial %d: conservation violated", trial)
		}
		if res.Drained && s.InFlight() != 0 {
			t.Fatalf("trial %d: drained with %d flits in flight", trial, s.InFlight())
		}
	}
}

// TestRandomPlacementZeroLoadMatchesModel sweeps random placements at
// near-zero load and requires the measured mean network latency to sit on
// the analytic prediction.
func TestRandomPlacementZeroLoadMatchesModel(t *testing.T) {
	rng := stats.NewRNG(777)
	for trial := 0; trial < 4; trial++ {
		n := 6 + rng.Intn(3)
		c := 2 + rng.Intn(3)
		row := randomFeasibleRow(rng, n, c)
		tp := topo.Uniform("rand", n, row)
		cfg := quickCfg(tp, c, traffic.UniformRandom(n), 0.003)
		cfg.Seed = rng.Uint64()
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sumIdeal, count float64
		s.onPacketDone = func(src, dst, flits, hops int, netLat, ideal float64) {
			sumIdeal += ideal
			count++
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if count == 0 {
			t.Fatalf("trial %d: no packets", trial)
		}
		meanIdeal := sumIdeal / count
		if res.AvgNetLatency < meanIdeal-1e-9 || res.AvgNetLatency > meanIdeal+1.5 {
			t.Fatalf("trial %d (%v): measured %.2f vs ideal %.2f", trial, row, res.AvgNetLatency, meanIdeal)
		}
	}
}
