package sim

// This file implements the batched replica engine: many simulations of the
// same configuration, differing only by seed, run over one shared immutable
// network description (netShared). The split is structure-of-arrays at the
// fleet level — seed-independent columns (routing tables, link enumeration,
// ideal-latency matrices, mix tables) are built once and shared read-only,
// while each replica's mutable state lives in its own contiguous arenas —
// so R replicas cost one construction plus R instantiations, and a stepping
// replica touches no other replica's memory.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"explink/internal/stats"
)

// Batch is a set of replica simulations of one configuration that differ
// only by seed. Create with NewBatch, run once with Run; like Simulator it
// is not reusable.
type Batch struct {
	shared *netShared
	sims   []*Simulator
}

// NewBatch builds one replica per seed over a single shared network
// description. Each replica is bit-identical to New(cfg with that Seed):
// construction order, arena layout and PRNG streams all match the single-run
// path, which the golden-fixture harness pins.
func NewBatch(cfg Config, seeds []uint64) (*Batch, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: batch needs at least one seed: %w", ErrConfig)
	}
	sh, err := newShared(cfg)
	if err != nil {
		return nil, err
	}
	b := &Batch{shared: sh, sims: make([]*Simulator, len(seeds))}
	for i, seed := range seeds {
		b.sims[i] = sh.instantiate(seed)
	}
	return b, nil
}

// Replicas returns the batch's simulators in seed order, for inspection
// after Run (utilization heatmaps, channel stats, recorded traces).
func (b *Batch) Replicas() []*Simulator { return b.sims }

// batchChunk is how many cycles a replica advances per scheduling turn: a
// multiple of the run loop's context-poll cadence, small enough that
// cancellation latency and load balance stay comparable to the worker-pool
// path, large enough that one replica's working set is reused for thousands
// of allocator visits before the next replica evicts it.
const batchChunk = 4 * (ctxCheckMask + 1)

// Run steps every replica to completion and returns per-replica results in
// seed order plus the batch's aggregate throughput. workers <= 0 uses
// GOMAXPROCS; replicas are owned by workers in round-robin stride, and each
// worker interleaves its replicas in batchChunk-cycle slices, so results are
// bit-identical to running each replica alone regardless of worker count.
//
// The partial-results contract matches RunMany: the result slice always has
// one entry per seed, failed replicas (deadlock, audit, cancellation)
// contribute an error wrapped with their replica index to the joined error,
// and a replica's WallTime is the batch elapsed time at its finish.
func (b *Batch) Run(ctx context.Context, workers int) ([]Result, Agg, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	r := len(b.sims)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r {
		workers = r
	}
	results := make([]Result, r)
	errs := make([]error, r)
	met := simMet.Load()
	if met != nil {
		met.batchReplicas.Set(int64(r))
		met.batchActive.Add(int64(r))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := make([]int, 0, (r+workers-1)/workers)
			for i := w; i < r; i += workers {
				own = append(own, i)
				if s := b.sims[i]; s.met != nil {
					s.met.runsStarted.Inc()
				}
			}
			for len(own) > 0 {
				live := own[:0]
				for _, i := range own {
					s := b.sims[i]
					if !s.advance(ctx, batchChunk) {
						live = append(live, i)
						continue
					}
					results[i] = s.finish(start)
					if err := s.runErr; err != nil {
						errs[i] = fmt.Errorf("sim: run %d: %w", i, err)
					}
					if met != nil {
						met.batchActive.Add(-1)
					}
				}
				own = live
			}
		}(w)
	}
	wg.Wait()

	var agg Agg
	for i := range results {
		if errs[i] == nil {
			agg.SimCycles += results[i].Cycles
		}
	}
	agg.WallTime = time.Since(start)
	if sec := agg.WallTime.Seconds(); sec > 0 {
		agg.CyclesPerSec = float64(agg.SimCycles) / sec
	}
	if met != nil {
		met.batchCyclesPerSec.Set(agg.CyclesPerSec)
	}
	return results, agg, errors.Join(errs...)
}

// ReplicaSeeds derives r decorrelated seeds from a base seed: the first
// replica keeps the base seed (so replica 0 reproduces the single-run
// result exactly) and the rest are split off with stats.MixSeed.
func ReplicaSeeds(base uint64, r int) []uint64 {
	seeds := make([]uint64, r)
	for i := range seeds {
		if i == 0 {
			seeds[i] = base
			continue
		}
		seeds[i] = stats.MixSeed(base, uint64(i))
	}
	return seeds
}

// ReplicaConfigs expands cfg into r copies differing only by Seed, seeded by
// ReplicaSeeds — the shape RunManyAgg detects and routes to the batch engine.
func ReplicaConfigs(cfg Config, r int) []Config {
	seeds := ReplicaSeeds(cfg.Seed, r)
	cfgs := make([]Config, r)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = seeds[i]
	}
	return cfgs
}

// AggregateReplicas folds per-replica results of one operating point into a
// single summary Result: means of the latency, hop and throughput figures,
// maxima of the tail latencies, sums of the cycle and packet counts, Drained
// only if every replica drained and DeadlockSuspected if any replica
// suspects one. Non-summary fields (topology, pattern, rate, truncation)
// come from the first result. Empty input yields the zero Result.
func AggregateReplicas(results []Result) Result {
	if len(results) == 0 {
		return Result{}
	}
	out := results[0]
	for _, r := range results[1:] {
		out.Cycles += r.Cycles
		out.MeasuredPackets += r.MeasuredPackets
		out.AvgPacketLatency += r.AvgPacketLatency
		out.AvgNetLatency += r.AvgNetLatency
		out.AvgHops += r.AvgHops
		out.AvgContentionPerHop += r.AvgContentionPerHop
		out.ThroughputPackets += r.ThroughputPackets
		out.ThroughputFlits += r.ThroughputFlits
		out.WallTime += r.WallTime
		if r.P95Latency > out.P95Latency {
			out.P95Latency = r.P95Latency
		}
		if r.P99Latency > out.P99Latency {
			out.P99Latency = r.P99Latency
		}
		if r.MaxLatency > out.MaxLatency {
			out.MaxLatency = r.MaxLatency
		}
		out.Drained = out.Drained && r.Drained
		out.DeadlockSuspected = out.DeadlockSuspected || r.DeadlockSuspected
		out.Counts.BufferWrites += r.Counts.BufferWrites
		out.Counts.BufferReads += r.Counts.BufferReads
		out.Counts.SwitchTraversals += r.Counts.SwitchTraversals
		out.Counts.LinkFlitUnits += r.Counts.LinkFlitUnits
		out.Counts.VCAllocs += r.Counts.VCAllocs
		out.Counts.CreditsSent += r.Counts.CreditsSent
		out.Counts.PacketsInjected += r.Counts.PacketsInjected
		out.Counts.PacketsEjected += r.Counts.PacketsEjected
		out.Counts.FlitsInjected += r.Counts.FlitsInjected
		out.Counts.FlitsEjected += r.Counts.FlitsEjected
	}
	n := float64(len(results))
	out.AvgPacketLatency /= n
	out.AvgNetLatency /= n
	out.AvgHops /= n
	out.AvgContentionPerHop /= n
	out.ThroughputPackets /= n
	out.ThroughputFlits /= n
	if sec := out.WallTime.Seconds(); sec > 0 {
		out.CyclesPerSec = float64(out.Cycles) / sec
	}
	return out
}

// RunManyReplicatedAgg runs every config `replicas` times with decorrelated
// seeds (ReplicaSeeds) and returns one AggregateReplicas summary per config.
// replicas <= 1 is exactly RunManyAgg. Each config's replica group is a
// seed-only sweep, so it runs on the batch engine; a group whose runs fail
// contributes one error wrapped with its config index.
func RunManyReplicatedAgg(ctx context.Context, cfgs []Config, replicas, workers int) ([]Result, Agg, error) {
	if replicas <= 1 {
		return RunManyAgg(ctx, cfgs, workers)
	}
	start := time.Now()
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var agg Agg
	for i, cfg := range cfgs {
		reps, a, err := RunManyAgg(ctx, ReplicaConfigs(cfg, replicas), workers)
		agg.SimCycles += a.SimCycles
		if err != nil {
			errs[i] = fmt.Errorf("sim: config %d: %w", i, err)
			continue
		}
		results[i] = AggregateReplicas(reps)
	}
	agg.WallTime = time.Since(start)
	if sec := agg.WallTime.Seconds(); sec > 0 {
		agg.CyclesPerSec = float64(agg.SimCycles) / sec
	}
	return results, agg, errors.Join(errs...)
}
