package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEntry is one injected packet of a recorded workload.
type TraceEntry struct {
	Cycle int64 `json:"cycle"`
	Src   int   `json:"src"`
	Dst   int   `json:"dst"`
	Bits  int   `json:"bits"`
}

// Trace is a recorded packet workload: the trace-driven analogue of a
// synthetic pattern, playing the role of gem5's application traces. Replaying
// a trace through New/Run is fully deterministic: the datapath contains no
// randomness once destinations, sizes and injection times are fixed.
type Trace struct {
	W int `json:"w"`
	H int `json:"h"`
	// K is the concentration the trace was recorded at (0 means 1).
	K       int          `json:"k,omitempty"`
	Entries []TraceEntry `json:"entries"`
	// Name optionally labels the workload (e.g. the file it was loaded
	// from); replay results report Pattern as "trace(Name)" when set.
	Name string `json:"name,omitempty"`
}

func (tr *Trace) concentration() int {
	if tr.K < 1 {
		return 1
	}
	return tr.K
}

// Validate checks the trace dimensions and that entries are sorted by cycle
// with in-range nodes and positive sizes. Every rejection wraps ErrConfig.
func (tr *Trace) Validate() error {
	if tr.W < 1 || tr.H < 1 || tr.K < 0 {
		return fmt.Errorf("sim: trace dimensions %dx%dx%d: %w", tr.W, tr.H, tr.K, ErrConfig)
	}
	nodes := tr.W * tr.H * tr.concentration()
	var prev int64 = -1
	for i, e := range tr.Entries {
		if e.Cycle < prev {
			return fmt.Errorf("sim: trace entry %d out of order (cycle %d after %d): %w", i, e.Cycle, prev, ErrConfig)
		}
		prev = e.Cycle
		if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes {
			return fmt.Errorf("sim: trace entry %d has out-of-range nodes (%d -> %d): %w", i, e.Src, e.Dst, ErrConfig)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("sim: trace entry %d is self-addressed: %w", i, ErrConfig)
		}
		if e.Bits <= 0 {
			// A non-positive size would make flitsForBits produce zero or
			// negative flit counts at replay time.
			return fmt.Errorf("sim: trace entry %d has size %d bits: %w", i, e.Bits, ErrConfig)
		}
	}
	return nil
}

// Sort orders entries by cycle (stable, preserving same-cycle order).
func (tr *Trace) Sort() {
	sort.SliceStable(tr.Entries, func(i, j int) bool {
		return tr.Entries[i].Cycle < tr.Entries[j].Cycle
	})
}

// Save writes the trace as JSON.
func (tr *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// LoadTrace reads a JSON trace and validates it.
func LoadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("sim: decoding trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// replayTrace injects every entry scheduled for the current cycle. It is
// called once per cycle instead of the random generators when Config.Trace
// is set.
func (s *Simulator) replayTrace() {
	tr := s.cfg.Trace
	for s.traceIdx < len(tr.Entries) && tr.Entries[s.traceIdx].Cycle == s.now {
		e := tr.Entries[s.traceIdx]
		s.traceIdx++
		ni := s.nis[e.Src]
		s.nextPktID++
		p := s.takePacket()
		p.id = s.nextPktID
		p.src = e.Src
		p.dst = e.Dst
		p.flits = flitsForBits(e.Bits, s.cfg.WidthBits)
		p.created = s.now
		p.injected = -1
		p.measured = s.now >= s.warmEnd && s.now < s.measEnd
		if s.cfg.Routing == RoutingO1Turn {
			p.yx = ni.rng.Bool(0.5)
		}
		if p.measured {
			s.taggedCreated++
		}
		s.counts.PacketsInjected++
		s.counts.FlitsInjected += int64(p.flits)
		s.enqueue(ni, p)
	}
}

func flitsForBits(bits, width int) int {
	return (bits + width - 1) / width
}
