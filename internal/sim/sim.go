package sim

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"explink/internal/runctl"
	"explink/internal/stats"
)

// b2i maps a dimension-order flag to a routeTabs index.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Simulator is one instantiated simulation. Create with New, run once with
// Run; it is not reusable or safe for concurrent use.
type Simulator struct {
	cfg   Config
	w, h  int
	k     int // cores per router (concentration)
	nodes int // total cores

	routers  []*router
	nis      []*nodeIface
	channels []*channel

	idealHead   [][]float64
	idealHeadYX [][]float64 // only populated under O1TURN routing
	mixCum      []float64
	mixFlits    []int

	now           int64
	counts        Counts
	col           *collector
	rng           *stats.RNG
	nextPktID     int64
	inFlightFlits int64
	lastProgress  int64
	taggedCreated int64
	taggedDone    int64
	warmEnd       int64
	measEnd       int64
	hardEnd       int64
	deadlock      bool
	truncated     TruncateReason

	// Terminal run state, latched by advance: once finished is set the run
	// loop never re-enters, drained records a clean drain and runErr the
	// failure (deadlock, audit, cancellation) if any. Splitting the loop
	// into budgeted advance calls is what lets sim.Batch interleave many
	// replicas on one goroutine without changing any replica's cycle
	// sequence.
	finished bool
	drained  bool
	runErr   error

	// audit is the opt-in per-cycle invariant auditor (Config.Audit); nil in
	// normal runs, where its only cost is one nil check per switch grant.
	audit *auditor

	// met is the process metric set captured at New (nil when metrics are
	// disabled). Run publishes deltas on its housekeeping cadence; pubCycle,
	// pubCounts and watchdogArmed track what was last published.
	met           *metricSet
	pubCycle      int64
	pubCounts     Counts
	watchdogArmed bool

	inCand []int  // scratch: per-inPort chosen VC during switch allocation
	outReq []int  // scratch: output ports with at least one nomination
	vcMask uint64 // low cfg.VCs bits set; masks rotated occupancy words

	// Active-set bitmaps. Each tracks exactly the components that can make
	// progress — channels holding flits, routers with occupied buffers, NIs
	// with queued flits — so step touches only those instead of scanning
	// every component each cycle. Bit i of word w covers component index
	// w*64+i, and scanning words in order visits components in ascending
	// index order, which is observable: delivery order decides
	// pipeline-bypass hits and packet-id assignment, and ejection order
	// decides the float accumulation order of the collectors. Activation is
	// an idempotent bit set; a component leaves when a step phase finds it
	// drained. Credit drains only touch their own counters, so the two
	// credit work lists are plain unordered slices.
	chAct      []uint64
	rtrAct     []uint64
	niAct      []uint64
	creditOuts []*outPort
	creditNIs  []*nodeIface

	// pktFree recycles packet objects: a packet returns to the list when its
	// tail flit ejects (after all statistics are recorded), and generate /
	// replayTrace reuse it for the next packet. In steady state the in-flight
	// population is stable, so no packet is ever heap-allocated.
	pktFree []*packet

	traceIdx int          // replay cursor into cfg.Trace.Entries
	recorded []TraceEntry // captured workload when cfg.RecordTrace

	// onPacketDone, when set, observes every completed measured packet
	// (testing/diagnostics hook).
	onPacketDone func(src, dst, flits, hops int, netLat, ideal float64)
	// onGrant, when set, observes every switch traversal (diagnostics).
	onGrant func(now int64, routerID, pi, vi int, f flit)
}

// New builds a simulator for the config. The config is validated and
// defaulted; New returns an error rather than panicking on bad input.
// Internally it is the shared-description path used by sim.Batch with a
// single replica: newShared builds the seed-independent network description,
// instantiate carves the replica's mutable state over it.
func New(cfg Config) (*Simulator, error) {
	sh, err := newShared(cfg)
	if err != nil {
		return nil, err
	}
	return sh.instantiate(sh.cfg.Seed), nil
}

// ctxCheckMask throttles the context poll in the run loop: the context is
// consulted when the low bits of the cycle counter are zero, i.e. every 512
// cycles (well under a millisecond of wall time at engine speed), so
// deadlines land promptly without a per-cycle branch cost.
const ctxCheckMask = 512 - 1

// Run executes the whole simulation and returns its measurements. The
// context bounds the run: on cancellation or deadline expiry Run stops
// within a few hundred cycles and returns the partial Result measured so far
// (Truncated = TruncatedCancelled) alongside an error matching ErrCancelled.
//
// A run that makes no progress for Config.ProgressTimeout cycles while
// traffic is in flight returns its partial Result with a *DeadlockError
// (matching ErrDeadlock) whose report names every blocked router, port and
// VC and the credit each is waiting on. With Config.Audit set, the first
// violated engine invariant fails the run with an *AuditError (matching
// ErrAudit). In both cases Result.Truncated records why the run ended early;
// a run that merely hits the Drain-cycle cutoff still returns a nil error
// with Truncated = TruncatedDrainLimit.
func (s *Simulator) Run(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if s.met != nil {
		s.met.runsStarted.Inc()
	}
	for !s.advance(ctx, 1<<62) {
	}
	return s.finish(start), s.runErr
}

// advance executes up to budget cycles of the run loop and reports whether
// the run has ended (drained, drain-limit truncation, deadlock, audit
// failure or cancellation). The terminal outcome is latched in s.drained,
// s.truncated and s.runErr; once finished, further calls return true without
// touching the engine. Budget boundaries are invisible to the simulation:
// advancing in chunks executes exactly the same cycle sequence as one
// unbounded call, which is the single-run-equivalence contract sim.Batch
// relies on to interleave replicas.
func (s *Simulator) advance(ctx context.Context, budget int64) bool {
	if s.finished {
		return true
	}
	limit := s.now + budget
	for {
		if s.now >= s.measEnd && s.taggedDone == s.taggedCreated && s.inFlightFlits == 0 {
			s.drained = true
			s.finished = true
			return true
		}
		if s.now >= s.hardEnd {
			s.truncated = TruncatedDrainLimit
			s.finished = true
			return true
		}
		if stall := s.now - s.lastProgress; s.inFlightFlits > 0 && stall > int64(s.cfg.ProgressTimeout) {
			s.deadlock = true
			s.truncated = TruncatedDeadlock
			s.runErr = &DeadlockError{Cycle: s.now, Stall: stall, Report: s.deadlockReport()}
			s.finished = true
			return true
		}
		if s.now&ctxCheckMask == 0 {
			if ctx.Err() != nil {
				s.truncated = TruncatedCancelled
				s.runErr = fmt.Errorf("sim: run cancelled at cycle %d: %w", s.now, runctl.Cancelled(ctx))
				s.finished = true
				return true
			}
			if s.met != nil {
				s.publishObs()
			}
		}
		if s.now >= limit {
			return false
		}
		s.step()
		if s.audit != nil {
			if err := s.audit.check(s.now); err != nil {
				s.truncated = TruncatedAudit
				s.runErr = err
				s.finished = true
				return true
			}
		}
		s.now++
	}
}

// finish stamps wall-clock timing onto the terminal Result and publishes the
// final metric deltas. start is when this run — or the batch interleaving it
// — began, so under sim.Batch a replica's WallTime is the batch elapsed time
// at its finish, not its exclusive CPU time.
func (s *Simulator) finish(start time.Time) Result {
	res := s.result(s.drained)
	res.WallTime = time.Since(start)
	if sec := res.WallTime.Seconds(); sec > 0 {
		res.CyclesPerSec = float64(res.Cycles) / sec
	}
	if s.met != nil {
		s.publishObs()
		s.met.runsFinished.Inc()
		s.met.runTime.Observe(res.WallTime)
		s.met.cyclesPerSec.Set(res.CyclesPerSec)
		if s.truncated == TruncatedDeadlock {
			s.met.watchdogFired.Inc()
		}
	}
	return res
}

func (s *Simulator) result(drained bool) Result {
	patName := "trace"
	if s.cfg.Pattern != nil {
		patName = s.cfg.Pattern.Name()
	} else if s.cfg.Trace != nil && s.cfg.Trace.Name != "" {
		patName = fmt.Sprintf("trace(%s)", s.cfg.Trace.Name)
	}
	r := Result{
		Topology:          s.cfg.Topo.Name,
		Pattern:           patName,
		InjRate:           s.cfg.InjectionRate,
		Cycles:            s.now,
		MeasuredPackets:   s.col.latency.Count(),
		Drained:           drained,
		DeadlockSuspected: s.deadlock,
		Truncated:         s.truncated,
		Counts:            s.counts,
	}
	r.AvgPacketLatency = s.col.latency.Mean()
	r.AvgNetLatency = s.col.netLatency.Mean()
	r.P95Latency = s.col.latency.Percentile(95)
	r.P99Latency = s.col.latency.Percentile(99)
	r.MaxLatency = s.col.latency.Max()
	r.AvgHops = s.col.hops.Mean()
	r.AvgContentionPerHop = s.col.contention.Mean()
	denom := float64(s.nodes) * float64(s.cfg.Measure)
	r.ThroughputPackets = float64(s.col.ejectedInWindow) / denom
	r.ThroughputFlits = float64(s.col.flitsInWindow) / denom
	return r
}

// step advances one cycle: (1) deliver flits and credits due now, (2) NIs
// generate and inject, (3) routers route, allocate VCs and arbitrate the
// switch. All effects of phase 3 land at strictly later cycles, so the
// sequential router order cannot leak same-cycle causality.
//
// Each phase walks an active-set work list instead of every component; the
// lists hold exactly the components the replaced full scans would have found
// work at, in the same order, so results are bit-identical (see DESIGN.md §5).
func (s *Simulator) step() {
	now := s.now

	// Flit deliveries due now, in channel-index order. Grants activate
	// channels for the next cycle; a channel's bit clears when it empties.
	// No delivery pushes onto a channel, so snapshotting each word is safe.
	// Channels whose earliest flit is still mid-wire keep their bit but
	// skip the ring entirely (nextAt caches the front's due time).
	for wi, w := range s.chAct {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			w &= w - 1
			ch := s.channels[wi<<6+tz]
			if ch.nextAt > now {
				continue
			}
			for {
				d, ok := ch.popReady(now)
				if !ok {
					break
				}
				s.deliverFlit(ch.dst, ch.dstPort, d, now)
			}
			if ch.q.len() == 0 {
				s.chAct[wi] &^= 1 << uint(tz)
				ch.q.shrinkIfDrained()
			}
		}
	}

	// Credit returns due now. Each drain only increments its own credit
	// counters, so these lists are unordered; a queue leaves when empty.
	outs := s.creditOuts
	live := 0
	for _, op := range outs {
		op.drainCredits(now)
		if op.creditQ.len() > 0 {
			outs[live] = op
			live++
		} else {
			op.creditActive = false
			op.creditQ.shrinkIfDrained()
		}
	}
	s.creditOuts = outs[:live]
	cnis := s.creditNIs
	live = 0
	for _, ni := range cnis {
		ni.drainCredits(now)
		if ni.creditQ.len() > 0 {
			cnis[live] = ni
			live++
		} else {
			ni.creditActive = false
			ni.creditQ.shrinkIfDrained()
		}
	}
	s.creditNIs = cnis[:live]

	// Traffic generation. Every NI draws its injection coin every cycle —
	// the per-cycle, per-NI RNG order is part of the bit-identity contract,
	// so this scan must never be active-set filtered.
	if injecting := now < s.measEnd; injecting {
		if s.cfg.Trace != nil {
			s.replayTrace()
		} else if s.cfg.InjectionRate > 0 {
			for _, ni := range s.nis {
				if ni.rng.Bool(s.cfg.InjectionRate) {
					s.generate(ni)
				}
			}
		}
	}

	// Injection from NIs with queued flits, in NI-id order (packet-id
	// assignment and per-router bypass checks observe it). Generation above
	// has already set the bits of any NI that gained flits this cycle.
	for wi, w := range s.niAct {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			w &= w - 1
			ni := s.nis[wi<<6+tz]
			if _, ok := ni.inject(now, s); ok {
				s.inFlightFlits++
				s.lastProgress = now
			}
			if ni.queued() == 0 {
				s.niAct[wi] &^= 1 << uint(tz)
				ni.srcQ.shrinkIfDrained()
			}
		}
	}

	// Router pipelines, in router-id order. Every set bit marks a router
	// with occupied > 0 (the guard of the full scan this replaces), and
	// routers never activate each other within this phase — grants land at
	// strictly later cycles — so clearing drained bits while scanning a
	// snapshot of each word is safe. A router sleeping until wakeAt keeps
	// its bit (the auditor's active-set invariant is occupied ⇒ marked) but
	// skips the allocator: routerCycle proved those cycles are no-ops.
	for wi, w := range s.rtrAct {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			w &= w - 1
			r := s.routers[wi<<6+tz]
			if r.wakeAt > now {
				continue
			}
			s.routerCycle(r)
			if r.occupied == 0 {
				s.rtrAct[wi] &^= 1 << uint(tz)
			}
		}
	}
}

// takePacket pops a recycled packet from the free list (zeroed), or
// allocates one while the in-flight population is still growing.
func (s *Simulator) takePacket() *packet {
	if n := len(s.pktFree) - 1; n >= 0 {
		p := s.pktFree[n]
		s.pktFree[n] = nil
		s.pktFree = s.pktFree[:n]
		*p = packet{}
		return p
	}
	return new(packet)
}

// enqueue pushes a packet's flits into the NI source queue and puts the NI
// on the injection work list.
func (s *Simulator) enqueue(ni *nodeIface, p *packet) {
	ni.pushFlits(p)
	s.niAct[uint(ni.id)>>6] |= 1 << (uint(ni.id) & 63)
}

// queueCredit schedules a credit return on an upstream output port and puts
// the port on the pending-credit work list.
func (s *Simulator) queueCredit(op *outPort, e creditEvt) {
	op.creditQ.push(e)
	if !op.creditActive {
		op.creditActive = true
		s.creditOuts = append(s.creditOuts, op)
	}
}

// queueNICredit schedules a credit return to an NI injection queue.
func (s *Simulator) queueNICredit(ni *nodeIface, e creditEvt) {
	ni.creditQ.push(e)
	if !ni.creditActive {
		ni.creditActive = true
		s.creditNIs = append(s.creditNIs, ni)
	}
}

// generate creates one packet at the NI per the traffic pattern and mix.
func (s *Simulator) generate(ni *nodeIface) {
	dst := s.cfg.Pattern.Dest(ni.id, ni.rng)
	if dst == ni.id || dst < 0 || dst >= s.nodes {
		return // self-addressed traffic is dropped (see package traffic)
	}
	class := len(s.mixCum) - 1
	u := ni.rng.Float64()
	for i, c := range s.mixCum {
		if u < c {
			class = i
			break
		}
	}
	s.nextPktID++
	p := s.takePacket()
	p.id = s.nextPktID
	p.src = ni.id
	p.dst = dst
	p.flits = s.mixFlits[class]
	p.class = class
	p.created = s.now
	p.injected = -1
	p.measured = s.now >= s.warmEnd && s.now < s.measEnd
	if s.cfg.Routing == RoutingO1Turn {
		p.yx = ni.rng.Bool(0.5)
	}
	if p.measured {
		s.taggedCreated++
	}
	s.counts.PacketsInjected++
	s.counts.FlitsInjected += int64(p.flits)
	if s.cfg.RecordTrace {
		s.recorded = append(s.recorded, TraceEntry{
			Cycle: s.now, Src: p.src, Dst: p.dst, Bits: s.cfg.Mix[class].Bits,
		})
	}
	s.enqueue(ni, p)
}

// RecordedTrace returns the workload captured during a run with RecordTrace
// set (nil otherwise). The trace replays deterministically through a fresh
// simulator with Config.Trace.
func (s *Simulator) RecordedTrace() *Trace {
	if !s.cfg.RecordTrace {
		return nil
	}
	return &Trace{W: s.cfg.Topo.W, H: s.cfg.Topo.H, K: s.k, Entries: s.recorded}
}

// vcClass returns the half-open VC index range a packet may use: the full
// range under dimension-order routing, or the class partition under O1TURN.
func (s *Simulator) vcClass(yx bool) (lo, hi int) {
	if s.cfg.Routing != RoutingO1Turn {
		return 0, s.cfg.VCs
	}
	half := s.cfg.VCs / 2
	if yx {
		return half, s.cfg.VCs
	}
	return 0, half
}

// deliverFlit writes a flit into a router input buffer at the given arrival
// cycle.
func (s *Simulator) deliverFlit(r *router, port int, d delivery, arrival int64) {
	ip := &r.in[port]
	readyAt := arrival + int64(s.cfg.RouterStages-1)
	if s.cfg.PipelineBypass && r.occupied == 0 {
		readyAt = arrival // idle router: skip straight to switch traversal
	}
	vc := &ip.vcs[d.vc]
	if vc.fifo.len() == 0 {
		vc.frontReady = readyAt
		if vc.outPort < 0 || vc.outVC < 0 {
			ip.pend |= 1 << uint(d.vc) // new front needing route or VC
		}
	}
	vc.fifo.push(bufEntry{f: d.f, readyAt: readyAt})
	r.occupied++
	ip.occ |= 1 << uint(d.vc)
	if !r.wide {
		r.portOcc |= 1 << uint(port)
	}
	r.wakeAt = 0 // a new arrival invalidates any cached no-op window
	s.rtrAct[uint(r.id)>>6] |= 1 << (uint(r.id) & 63)
	s.counts.BufferWrites++
	if d.f.isHead() && ip.ni != nil && d.f.pkt.injected < 0 {
		d.f.pkt.injected = arrival
	}
}

// routerCycle performs route computation, VC allocation and switch
// allocation for one router in one cycle.
//
// The pass over input ports fuses RC/VA with the input stage of switch
// allocation. Fusing is order-equivalent to a two-pass structure because a
// port's nomination eligibility reads only its own VCs' route state (written
// by its own RC/VA, which still precedes it) plus output credits, which
// RC/VA never touches. All loops iterate occupancy bitmasks instead of every
// port and VC; the bit orders reproduce the full scans exactly — ascending
// for ports and RC/VA, rotated-by-round-robin-pointer for the nomination and
// grant stages, where rotating a mask right by rr makes trailing-zero order
// equal to (rr+k)%n order.
func (s *Simulator) routerCycle(r *router) {
	if r.wide {
		s.routerCycleWide(r)
		return
	}
	now := s.now

	// Solo fast path: exactly one occupied VC in the whole router — the
	// overwhelmingly common case below saturation, where a single packet
	// streams through. The full allocator's rotations and two-stage
	// arbitration collapse to a direct grant: with one candidate, every
	// round-robin scan selects it, and the only persistent updates the
	// general path would make are exactly the ones below (RC/VA state, the
	// VCAllocs count, op.rrIn before the grant, and grantSwitch's effects).
	if pm := r.portOcc; pm&(pm-1) == 0 {
		pi := bits.TrailingZeros64(pm)
		ip := &r.in[pi]
		if occ := ip.occ; occ&(occ-1) == 0 {
			vi := bits.TrailingZeros64(occ)
			vc := &ip.vcs[vi]
			if ip.pend != 0 { // pend ⊆ occ, so pend == occ here
				s.routeAndAllocVC(r, ip, pi, vi, vc)
			}
			if vc.outPort >= 0 && vc.outVC >= 0 {
				if vc.frontReady > now {
					// Routed, allocated, waiting only on the pipeline:
					// every cycle before frontReady is provably a no-op.
					r.wakeAt = vc.frontReady
					return
				}
				op := &r.out[vc.outPort]
				if op.isEject || op.credits[vc.outVC] > 0 {
					op.rrIn = pi + 1
					if op.rrIn == len(r.in) {
						op.rrIn = 0
					}
					s.grantSwitch(r, pi, vi)
				}
			}
			return
		}
	}

	s.outReq = s.outReq[:0]
	var nomMask uint64 // ports whose inCand entry is a live nomination
	sleepOK := true    // no occupied VC blocked on anything but time
	minReady := int64(1<<63 - 1)
	for pm := r.portOcc; pm != 0; pm &= pm - 1 {
		pi := bits.TrailingZeros64(pm)
		ip := &r.in[pi]
		occ := ip.occ

		// Route computation + VC allocation for every pending buffer front.
		// Both are modeled as instantaneous here; their pipeline cost is the
		// readyAt eligibility delay applied at buffer write. A VC leaves the
		// pending mask once fully assigned; a failed VC allocation keeps it
		// pending for a retry next cycle.
		for m := ip.pend; m != 0; m &= m - 1 {
			vi := bits.TrailingZeros64(m)
			s.routeAndAllocVC(r, ip, pi, vi, &ip.vcs[vi])
		}

		// Switch allocation, stage 1: the port nominates its first eligible
		// VC in round-robin order from rrVC. The skip reasons double as the
		// wake-skip classification: a VC blocked only on its pipeline
		// readyAt contributes a wake time; any other blocker (VC allocation
		// retry, exhausted credits) can clear without the clock advancing,
		// so it forbids sleeping.
		if occ&(occ-1) == 0 {
			// One occupied VC: the rotated scan below would visit exactly
			// this VC, so run its body directly without the rotation.
			vi := bits.TrailingZeros64(occ)
			vc := &ip.vcs[vi]
			if vc.outPort < 0 || vc.outVC < 0 {
				sleepOK = false
				continue
			}
			if vc.frontReady > now {
				if vc.frontReady < minReady {
					minReady = vc.frontReady
				}
				continue
			}
			op := &r.out[vc.outPort]
			if !op.isEject && op.credits[vc.outVC] <= 0 {
				sleepOK = false
				continue
			}
			s.inCand[pi] = vi
			nomMask |= 1 << uint(pi)
			if !op.reqd {
				op.reqd = true
				s.outReq = append(s.outReq, int(vc.outPort))
			}
			continue
		}
		nv := uint(len(ip.vcs))
		rr := uint(ip.rrVC)
		rot := (occ>>rr | occ<<(nv-rr)) & s.vcMask
		for m := rot; m != 0; m &= m - 1 {
			vi := ip.rrVC + bits.TrailingZeros64(m)
			if vi >= int(nv) {
				vi -= int(nv)
			}
			vc := &ip.vcs[vi]
			if vc.outPort < 0 || vc.outVC < 0 {
				sleepOK = false
				continue
			}
			if vc.frontReady > now {
				if vc.frontReady < minReady {
					minReady = vc.frontReady
				}
				continue
			}
			op := &r.out[vc.outPort]
			if !op.isEject && op.credits[vc.outVC] <= 0 {
				sleepOK = false
				continue
			}
			s.inCand[pi] = vi
			nomMask |= 1 << uint(pi)
			if !op.reqd {
				op.reqd = true
				s.outReq = append(s.outReq, int(vc.outPort))
			}
			break
		}
	}

	// With no nominations anywhere and every occupied VC waiting only on its
	// pipeline, the cycles up to the earliest readyAt are proven no-ops.
	if nomMask == 0 {
		if sleepOK && minReady != 1<<63-1 {
			r.wakeAt = minReady
		}
		return
	}

	// Stage 2: each requested output port grants one nominating input, in
	// round-robin order from rrIn over the nominating ports. The pending
	// flags set in stage 1 are cleared here, so they are always all-false
	// between routerCycle calls; a granted port's nomination bit is cleared
	// the way the scan version invalidates its inCand entry.
	ni := len(r.in)
	for _, oi := range s.outReq {
		op := &r.out[oi]
		op.reqd = false
		rr := uint(op.rrIn)
		rot := (nomMask>>rr | nomMask<<(uint(ni)-rr)) & r.inMask
		for m := rot; m != 0; m &= m - 1 {
			pi := op.rrIn + bits.TrailingZeros64(m)
			if pi >= ni {
				pi -= ni
			}
			vi := s.inCand[pi]
			if r.in[pi].vcs[vi].outPort != int32(oi) {
				continue
			}
			nomMask &^= 1 << uint(pi)
			op.rrIn = pi + 1
			if op.rrIn == ni {
				op.rrIn = 0
			}
			s.grantSwitch(r, pi, vi)
			break
		}
	}
}

// routeAndAllocVC performs route computation and VC allocation for the front
// flit of one pending VC, clearing its pend bit once fully assigned. A failed
// VC allocation leaves the bit set for a retry next cycle.
func (s *Simulator) routeAndAllocVC(r *router, ip *inPort, pi, vi int, vc *vcState) {
	fe := vc.fifo.front()
	if fe.f.isHead() && vc.outPort < 0 {
		p := fe.f.pkt
		if tab := r.routeTabs[b2i(p.yx)]; tab != nil {
			vc.outPort = tab[p.dst]
		} else {
			vc.outPort = r.routeFlit(p.dst, s.w, s.k, p.yx)
		}
	}
	if vc.outPort >= 0 && vc.outVC < 0 {
		op := &r.out[vc.outPort]
		lo, hi := s.vcClass(fe.f.pkt.yx)
		span := hi - lo
		for k := 0; k < span; k++ {
			cand := op.rrVC + k
			if cand >= span {
				cand -= span
			}
			cand += lo
			if op.holder[cand] < 0 {
				op.holder[cand] = int32(pi)<<16 | int32(vi)
				vc.outVC = int32(cand)
				op.rrVC = cand - lo + 1
				if op.rrVC == span {
					op.rrVC = 0
				}
				s.counts.VCAllocs++
				break
			}
		}
	}
	if vc.outVC >= 0 {
		ip.pend &^= 1 << uint(vi)
	}
}

// routerCycleWide is routerCycle for routers with more input ports than the
// occupancy mask holds: the same fused allocator, but walking every port and
// scanning inCand directly during the grant stage. Reached only far beyond
// paper-scale port counts; TestWidePathMatchesMasked pins its equivalence.
func (s *Simulator) routerCycleWide(r *router) {
	now := s.now
	s.outReq = s.outReq[:0]
	for pi := range r.in {
		ip := &r.in[pi]
		s.inCand[pi] = -1
		occ := ip.occ
		if occ == 0 {
			continue
		}
		for m := ip.pend; m != 0; m &= m - 1 {
			vi := bits.TrailingZeros64(m)
			vc := &ip.vcs[vi]
			fe := vc.fifo.front()
			if fe.f.isHead() && vc.outPort < 0 {
				p := fe.f.pkt
				if tab := r.routeTabs[b2i(p.yx)]; tab != nil {
					vc.outPort = tab[p.dst]
				} else {
					vc.outPort = r.routeFlit(p.dst, s.w, s.k, p.yx)
				}
			}
			if vc.outPort >= 0 && vc.outVC < 0 {
				op := &r.out[vc.outPort]
				lo, hi := s.vcClass(fe.f.pkt.yx)
				span := hi - lo
				for k := 0; k < span; k++ {
					cand := op.rrVC + k
					if cand >= span {
						cand -= span
					}
					cand += lo
					if op.holder[cand] < 0 {
						op.holder[cand] = int32(pi)<<16 | int32(vi)
						vc.outVC = int32(cand)
						op.rrVC = cand - lo + 1
						if op.rrVC == span {
							op.rrVC = 0
						}
						s.counts.VCAllocs++
						break
					}
				}
			}
			if vc.outVC >= 0 {
				ip.pend &^= 1 << uint(vi)
			}
		}
		nv := len(ip.vcs)
		for k := 0; k < nv; k++ {
			vi := (ip.rrVC + k) % nv
			if occ>>uint(vi)&1 == 0 {
				continue
			}
			vc := &ip.vcs[vi]
			if vc.frontReady > now || vc.outPort < 0 || vc.outVC < 0 {
				continue
			}
			op := &r.out[vc.outPort]
			if !op.isEject && op.credits[vc.outVC] <= 0 {
				continue
			}
			s.inCand[pi] = vi
			if !op.reqd {
				op.reqd = true
				s.outReq = append(s.outReq, int(vc.outPort))
			}
			break
		}
	}
	for _, oi := range s.outReq {
		op := &r.out[oi]
		op.reqd = false
		ni := len(r.in)
		for k := 0; k < ni; k++ {
			pi := (op.rrIn + k) % ni
			vi := s.inCand[pi]
			if vi < 0 || r.in[pi].vcs[vi].outPort != int32(oi) {
				continue
			}
			s.inCand[pi] = -1
			op.rrIn = (pi + 1) % ni
			s.grantSwitch(r, pi, vi)
			break
		}
	}
}

// grantSwitch moves the winning flit across the crossbar into its output
// channel (or to the ejection sink), returns a credit upstream, and releases
// the output VC on tail flits.
func (s *Simulator) grantSwitch(r *router, pi, vi int) {
	now := s.now
	ip := &r.in[pi]
	vc := &ip.vcs[vi]
	fe := vc.fifo.pop()
	f := fe.f
	r.occupied--
	if vc.fifo.len() == 0 {
		ip.occ &^= 1 << uint(vi)
		if ip.occ == 0 && !r.wide {
			r.portOcc &^= 1 << uint(pi)
		}
	} else {
		vc.frontReady = vc.fifo.front().readyAt
		if f.isTail() {
			ip.pend |= 1 << uint(vi) // the next packet's head is now at front
		}
	}
	ip.rrVC = vi + 1
	if ip.rrVC == len(ip.vcs) {
		ip.rrVC = 0
	}
	s.counts.BufferReads++
	s.counts.SwitchTraversals++
	s.lastProgress = now
	if s.onGrant != nil {
		s.onGrant(now, r.id, pi, vi, f)
	}

	// Credit back to whoever feeds this input buffer.
	if ip.upOut != nil {
		s.queueCredit(ip.upOut, creditEvt{at: now + ip.upLatency, vc: vi})
		s.counts.CreditsSent++
	} else if ip.ni != nil {
		s.queueNICredit(ip.ni, creditEvt{at: now + 1, vc: vi})
		s.counts.CreditsSent++
	}

	op := &r.out[vc.outPort]
	if op.isEject {
		s.eject(f, now+2) // ST plus the one-cycle local link to the NI
	} else {
		if f.isHead() {
			f.pkt.hops++
			if s.audit != nil {
				s.audit.noteGrant(now, r, op, f.pkt)
			}
		}
		op.credits[vc.outVC]--
		op.ch.push(delivery{at: now + 1 + op.ch.latency, f: f, vc: int(vc.outVC)})
		s.chAct[uint(op.ch.idx)>>6] |= 1 << (uint(op.ch.idx) & 63)
		op.ch.flits++
		s.counts.LinkFlitUnits += op.ch.lenUnits
	}

	if f.isTail() {
		op.holder[vc.outVC] = -1
		vc.outPort, vc.outVC = -1, -1
	}
}

// eject delivers a flit to the destination NI at cycle t and completes the
// packet on its tail.
func (s *Simulator) eject(f flit, t int64) {
	s.counts.FlitsEjected++
	s.inFlightFlits--
	p := f.pkt
	p.ejected++
	if t >= s.warmEnd && t < s.measEnd {
		s.col.flitsInWindow++
	}
	if p.ejected < p.flits {
		return
	}
	p.done = t
	s.counts.PacketsEjected++
	if t >= s.warmEnd && t < s.measEnd {
		s.col.ejectedInWindow++
	}
	if p.measured {
		s.taggedDone++
		lat := int(t - p.created)
		s.col.latency.Add(lat)
		if p.injected >= 0 {
			netLat := float64(t - p.injected)
			s.col.netLatency.Add(netLat)
			ideal := s.idealNetLatency(p)
			hops := p.hops
			if hops < 1 {
				hops = 1
			}
			extra := netLat - ideal
			if extra < 0 {
				extra = 0
			}
			s.col.contention.Add(extra / float64(hops))
			if s.onPacketDone != nil {
				s.onPacketDone(p.src, p.dst, p.flits, p.hops, netLat, ideal)
			}
		}
		s.col.hops.Add(float64(p.hops))
	}
	// The tail has ejected and every statistic is recorded: the simulator
	// owns the packet again and may hand it to the next generate call.
	s.pktFree = append(s.pktFree, p)
}

// idealNetLatency is the zero-load network latency of a packet: head latency
// along its path, plus ejection pipeline and local link, plus pipelined
// serialization of the remaining flits. The constant matches the timing
// convention in the package comment; TestZeroLoadMatchesModel pins it.
func (s *Simulator) idealNetLatency(p *packet) float64 {
	head := s.idealHead[p.src][p.dst]
	if p.yx && s.idealHeadYX != nil {
		head = s.idealHeadYX[p.src][p.dst]
	}
	return head + float64(s.cfg.RouterStages-1) + 2 + float64(p.flits-1)
}

// InFlight reports flits currently inside routers and channels (for tests).
func (s *Simulator) InFlight() int64 { return s.inFlightFlits }

// Now reports the current simulation cycle (for tests).
func (s *Simulator) Now() int64 { return s.now }

// DebugString summarizes the built network.
func (s *Simulator) DebugString() string {
	chFlits := 0
	for _, ch := range s.channels {
		chFlits += ch.inFlight()
	}
	return fmt.Sprintf("sim{%s %dx%d routers=%d channels=%d width=%db cycle=%d inflight=%d chflits=%d}",
		s.cfg.Topo.Name, s.w, s.h, len(s.routers), len(s.channels), s.cfg.WidthBits, s.now, s.inFlightFlits, chFlits)
}
