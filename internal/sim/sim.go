package sim

import (
	"fmt"

	"explink/internal/model"
	"explink/internal/stats"
)

// Simulator is one instantiated simulation. Create with New, run once with
// Run; it is not reusable or safe for concurrent use.
type Simulator struct {
	cfg   Config
	w, h  int
	k     int // cores per router (concentration)
	nodes int // total cores

	routers  []*router
	nis      []*nodeIface
	channels []*channel

	idealHead   [][]float64
	idealHeadYX [][]float64 // only populated under O1TURN routing
	mixCum      []float64
	mixFlits    []int

	now           int64
	counts        Counts
	col           *collector
	rng           *stats.RNG
	nextPktID     int64
	inFlightFlits int64
	lastProgress  int64
	taggedCreated int64
	taggedDone    int64
	warmEnd       int64
	measEnd       int64
	hardEnd       int64
	deadlock      bool

	inCand []int // scratch: per-inPort chosen VC during switch allocation
	outReq []int // scratch: output ports with at least one nomination

	traceIdx int          // replay cursor into cfg.Trace.Entries
	recorded []TraceEntry // captured workload when cfg.RecordTrace

	// onPacketDone, when set, observes every completed measured packet
	// (testing/diagnostics hook).
	onPacketDone func(src, dst, flits, hops int, netLat, ideal float64)
	// onGrant, when set, observes every switch traversal (diagnostics).
	onGrant func(now int64, routerID, pi, vi int, f flit)
}

// New builds a simulator for the config. The config is validated and
// defaulted; New returns an error rather than panicking on bad input.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg: cfg,
		col: newCollector(),
		rng: stats.NewRNG(cfg.Seed),
	}
	s.buildNetwork()

	s.mixCum = make([]float64, len(cfg.Mix))
	s.mixFlits = make([]int, len(cfg.Mix))
	cum := 0.0
	for i, c := range cfg.Mix {
		cum += c.Frac
		s.mixCum[i] = cum
		s.mixFlits[i] = model.FlitsFor(c.Bits, cfg.WidthBits)
	}
	s.warmEnd = int64(cfg.Warmup)
	s.measEnd = int64(cfg.Warmup + cfg.Measure)
	s.hardEnd = s.measEnd + int64(cfg.Drain)
	s.lastProgress = 0
	return s, nil
}

// Run executes the whole simulation and returns its measurements.
func (s *Simulator) Run() (Result, error) {
	drained := false
	for {
		if s.now >= s.measEnd && s.taggedDone == s.taggedCreated && s.inFlightFlits == 0 {
			drained = true
			break
		}
		if s.now >= s.hardEnd {
			break
		}
		if s.inFlightFlits > 0 && s.now-s.lastProgress > int64(s.cfg.ProgressTimeout) {
			s.deadlock = true
			break
		}
		s.step()
		s.now++
	}
	return s.result(drained), nil
}

func (s *Simulator) result(drained bool) Result {
	patName := "trace"
	if s.cfg.Pattern != nil {
		patName = s.cfg.Pattern.Name()
	}
	r := Result{
		Topology:          s.cfg.Topo.Name,
		Pattern:           patName,
		InjRate:           s.cfg.InjectionRate,
		Cycles:            s.now,
		MeasuredPackets:   s.col.latency.Count(),
		Drained:           drained,
		DeadlockSuspected: s.deadlock,
		Counts:            s.counts,
	}
	r.AvgPacketLatency = s.col.latency.Mean()
	r.AvgNetLatency = s.col.netLatency.Mean()
	r.P95Latency = s.col.latency.Percentile(95)
	r.P99Latency = s.col.latency.Percentile(99)
	r.MaxLatency = s.col.latency.Max()
	r.AvgHops = s.col.hops.Mean()
	r.AvgContentionPerHop = s.col.contention.Mean()
	denom := float64(s.nodes) * float64(s.cfg.Measure)
	r.ThroughputPackets = float64(s.col.ejectedInWindow) / denom
	r.ThroughputFlits = float64(s.col.flitsInWindow) / denom
	return r
}

// step advances one cycle: (1) deliver flits and credits due now, (2) NIs
// generate and inject, (3) routers route, allocate VCs and arbitrate the
// switch. All effects of phase 3 land at strictly later cycles, so the
// sequential router order cannot leak same-cycle causality.
func (s *Simulator) step() {
	now := s.now

	for _, ch := range s.channels {
		for {
			d, ok := ch.popReady(now)
			if !ok {
				break
			}
			s.deliverFlit(ch.dst, ch.dstPort, d, now)
		}
	}
	for _, r := range s.routers {
		for oi := range r.out {
			r.out[oi].drainCredits(now)
		}
	}
	for _, ni := range s.nis {
		ni.drainCredits(now)
	}

	if injecting := now < s.measEnd; injecting {
		if s.cfg.Trace != nil {
			s.replayTrace()
		} else if s.cfg.InjectionRate > 0 {
			for _, ni := range s.nis {
				if ni.rng.Bool(s.cfg.InjectionRate) {
					s.generate(ni)
				}
			}
		}
	}
	for _, ni := range s.nis {
		if _, ok := ni.inject(now, s); ok {
			s.inFlightFlits++
			s.lastProgress = now
		}
	}

	for _, r := range s.routers {
		if r.occupied > 0 {
			s.routerCycle(r)
		}
	}
}

// generate creates one packet at the NI per the traffic pattern and mix.
func (s *Simulator) generate(ni *nodeIface) {
	dst := s.cfg.Pattern.Dest(ni.id, ni.rng)
	if dst == ni.id || dst < 0 || dst >= s.nodes {
		return // self-addressed traffic is dropped (see package traffic)
	}
	class := len(s.mixCum) - 1
	u := ni.rng.Float64()
	for i, c := range s.mixCum {
		if u < c {
			class = i
			break
		}
	}
	s.nextPktID++
	p := &packet{
		id:       s.nextPktID,
		src:      ni.id,
		dst:      dst,
		flits:    s.mixFlits[class],
		class:    class,
		created:  s.now,
		injected: -1,
		measured: s.now >= s.warmEnd && s.now < s.measEnd,
	}
	if s.cfg.Routing == RoutingO1Turn {
		p.yx = ni.rng.Bool(0.5)
	}
	if p.measured {
		s.taggedCreated++
	}
	s.counts.PacketsInjected++
	s.counts.FlitsInjected += int64(p.flits)
	if s.cfg.RecordTrace {
		s.recorded = append(s.recorded, TraceEntry{
			Cycle: s.now, Src: p.src, Dst: p.dst, Bits: s.cfg.Mix[class].Bits,
		})
	}
	ni.pushFlits(p)
}

// RecordedTrace returns the workload captured during a run with RecordTrace
// set (nil otherwise). The trace replays deterministically through a fresh
// simulator with Config.Trace.
func (s *Simulator) RecordedTrace() *Trace {
	if !s.cfg.RecordTrace {
		return nil
	}
	return &Trace{W: s.cfg.Topo.W, H: s.cfg.Topo.H, K: s.k, Entries: s.recorded}
}

// vcClass returns the half-open VC index range a packet may use: the full
// range under dimension-order routing, or the class partition under O1TURN.
func (s *Simulator) vcClass(yx bool) (lo, hi int) {
	if s.cfg.Routing != RoutingO1Turn {
		return 0, s.cfg.VCs
	}
	half := s.cfg.VCs / 2
	if yx {
		return half, s.cfg.VCs
	}
	return 0, half
}

// deliverFlit writes a flit into a router input buffer at the given arrival
// cycle.
func (s *Simulator) deliverFlit(r *router, port int, d delivery, arrival int64) {
	ip := &r.in[port]
	readyAt := arrival + int64(s.cfg.RouterStages-1)
	if s.cfg.PipelineBypass && r.occupied == 0 {
		readyAt = arrival // idle router: skip straight to switch traversal
	}
	ip.vcs[d.vc].fifo.push(bufEntry{f: d.f, readyAt: readyAt})
	r.occupied++
	ip.buffered++
	s.counts.BufferWrites++
	if d.f.isHead() && ip.ni != nil && d.f.pkt.injected < 0 {
		d.f.pkt.injected = arrival
	}
}

// routerCycle performs route computation, VC allocation and switch
// allocation for one router in one cycle.
func (s *Simulator) routerCycle(r *router) {
	now := s.now

	// Route computation + VC allocation for every head flit at a buffer
	// front. Both are modeled as instantaneous here; their pipeline cost is
	// the readyAt eligibility delay applied at buffer write.
	for pi := range r.in {
		ip := &r.in[pi]
		if ip.buffered == 0 {
			continue
		}
		for vi := range ip.vcs {
			vc := &ip.vcs[vi]
			fe := vc.fifo.front()
			if fe == nil {
				continue
			}
			if fe.f.isHead() && vc.outPort < 0 {
				vc.outPort = r.routeFlit(fe.f.pkt.dst, s.w, s.k, fe.f.pkt.yx)
			}
			if vc.outPort >= 0 && vc.outVC < 0 {
				op := &r.out[vc.outPort]
				lo, hi := s.vcClass(fe.f.pkt.yx)
				span := hi - lo
				for k := 0; k < span; k++ {
					cand := lo + (op.rrVC+k)%span
					if op.holder[cand] < 0 {
						op.holder[cand] = int32(pi)<<16 | int32(vi)
						vc.outVC = int32(cand)
						op.rrVC = (cand - lo + 1) % span
						s.counts.VCAllocs++
						break
					}
				}
			}
		}
	}

	// Switch allocation, stage 1: each input port nominates one eligible VC.
	s.outReq = s.outReq[:0]
	for pi := range r.in {
		ip := &r.in[pi]
		s.inCand[pi] = -1
		if ip.buffered == 0 {
			continue
		}
		nv := len(ip.vcs)
		for k := 0; k < nv; k++ {
			vi := (ip.rrVC + k) % nv
			vc := &ip.vcs[vi]
			fe := vc.fifo.front()
			if fe == nil || fe.readyAt > now || vc.outPort < 0 || vc.outVC < 0 {
				continue
			}
			op := &r.out[vc.outPort]
			if !op.isEject && op.credits[vc.outVC] <= 0 {
				continue
			}
			s.inCand[pi] = vi
			if !containsInt(s.outReq, int(vc.outPort)) {
				s.outReq = append(s.outReq, int(vc.outPort))
			}
			break
		}
	}

	// Stage 2: each requested output port grants one nominating input.
	for _, oi := range s.outReq {
		op := &r.out[oi]
		ni := len(r.in)
		for k := 0; k < ni; k++ {
			pi := (op.rrIn + k) % ni
			vi := s.inCand[pi]
			if vi < 0 || r.in[pi].vcs[vi].outPort != int32(oi) {
				continue
			}
			s.inCand[pi] = -1
			op.rrIn = (pi + 1) % ni
			s.grantSwitch(r, pi, vi)
			break
		}
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// grantSwitch moves the winning flit across the crossbar into its output
// channel (or to the ejection sink), returns a credit upstream, and releases
// the output VC on tail flits.
func (s *Simulator) grantSwitch(r *router, pi, vi int) {
	now := s.now
	ip := &r.in[pi]
	vc := &ip.vcs[vi]
	fe := vc.fifo.pop()
	f := fe.f
	r.occupied--
	ip.buffered--
	ip.rrVC = (vi + 1) % len(ip.vcs)
	s.counts.BufferReads++
	s.counts.SwitchTraversals++
	s.lastProgress = now
	if s.onGrant != nil {
		s.onGrant(now, r.id, pi, vi, f)
	}

	// Credit back to whoever feeds this input buffer.
	if ip.upOut != nil {
		ip.upOut.pushCredit(creditEvt{at: now + ip.upLatency, vc: vi})
		s.counts.CreditsSent++
	} else if ip.ni != nil {
		ip.ni.creditQ = append(ip.ni.creditQ, creditEvt{at: now + 1, vc: vi})
		s.counts.CreditsSent++
	}

	op := &r.out[vc.outPort]
	if op.isEject {
		s.eject(f, now+2) // ST plus the one-cycle local link to the NI
	} else {
		if f.isHead() {
			f.pkt.hops++
		}
		op.credits[vc.outVC]--
		op.ch.push(delivery{at: now + 1 + op.ch.latency, f: f, vc: int(vc.outVC)})
		op.ch.flits++
		s.counts.LinkFlitUnits += op.ch.lenUnits
	}

	if f.isTail() {
		op.holder[vc.outVC] = -1
		vc.outPort, vc.outVC = -1, -1
	}
}

// eject delivers a flit to the destination NI at cycle t and completes the
// packet on its tail.
func (s *Simulator) eject(f flit, t int64) {
	s.counts.FlitsEjected++
	s.inFlightFlits--
	p := f.pkt
	p.ejected++
	if t >= s.warmEnd && t < s.measEnd {
		s.col.flitsInWindow++
	}
	if p.ejected < p.flits {
		return
	}
	p.done = t
	s.counts.PacketsEjected++
	if t >= s.warmEnd && t < s.measEnd {
		s.col.ejectedInWindow++
	}
	if !p.measured {
		return
	}
	s.taggedDone++
	lat := int(t - p.created)
	s.col.latency.Add(lat)
	if p.injected >= 0 {
		netLat := float64(t - p.injected)
		s.col.netLatency.Add(netLat)
		ideal := s.idealNetLatency(p)
		hops := p.hops
		if hops < 1 {
			hops = 1
		}
		extra := netLat - ideal
		if extra < 0 {
			extra = 0
		}
		s.col.contention.Add(extra / float64(hops))
		if s.onPacketDone != nil {
			s.onPacketDone(p.src, p.dst, p.flits, p.hops, netLat, ideal)
		}
	}
	s.col.hops.Add(float64(p.hops))
}

// idealNetLatency is the zero-load network latency of a packet: head latency
// along its path, plus ejection pipeline and local link, plus pipelined
// serialization of the remaining flits. The constant matches the timing
// convention in the package comment; TestZeroLoadMatchesModel pins it.
func (s *Simulator) idealNetLatency(p *packet) float64 {
	head := s.idealHead[p.src][p.dst]
	if p.yx && s.idealHeadYX != nil {
		head = s.idealHeadYX[p.src][p.dst]
	}
	return head + float64(s.cfg.RouterStages-1) + 2 + float64(p.flits-1)
}

// InFlight reports flits currently inside routers and channels (for tests).
func (s *Simulator) InFlight() int64 { return s.inFlightFlits }

// Now reports the current simulation cycle (for tests).
func (s *Simulator) Now() int64 { return s.now }

// DebugString summarizes the built network.
func (s *Simulator) DebugString() string {
	chFlits := 0
	for _, ch := range s.channels {
		chFlits += ch.inFlight()
	}
	return fmt.Sprintf("sim{%s %dx%d routers=%d channels=%d width=%db cycle=%d inflight=%d chflits=%d}",
		s.cfg.Topo.Name, s.w, s.h, len(s.routers), len(s.channels), s.cfg.WidthBits, s.now, s.inFlightFlits, chFlits)
}
