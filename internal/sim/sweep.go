package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// SweepPoint is one injection-rate sample of a load-latency curve.
type SweepPoint struct {
	Rate   float64
	Result Result
}

// SweepResult is a load-latency curve plus the detected saturation
// throughput (Fig. 8b's metric: accepted packets per node per cycle at the
// highest stable load).
type SweepResult struct {
	// Points is the probed load-latency curve, sorted by ascending Rate
	// (bisection probes land between the coarse samples, not after them).
	Points     []SweepPoint
	Saturation float64 // accepted packets/node/cycle at the last stable point
	SatRate    float64 // offered rate of that point

	// SimCycles, WallTime and CyclesPerSec report the sweep's aggregate
	// simulation throughput over every probed rate.
	SimCycles    int64
	WallTime     time.Duration
	CyclesPerSec float64
}

// SaturationOpts controls the throughput search.
type SaturationOpts struct {
	// Start is the first offered rate; Factor multiplies the rate between
	// coarse steps; MaxRate bounds the search.
	Start, Factor, MaxRate float64
	// LatencyLimit declares saturation when the average packet latency
	// exceeds LatencyLimit times the zero-load latency.
	LatencyLimit float64
	// Refine bisection steps between the last stable and first saturated
	// rate.
	Refine int
	// Replicas runs every probe as this many seed replicas on the batch
	// engine and aggregates them (AggregateReplicas): a probe is stable only
	// if every replica drained without a deadlock, so the detected knee is
	// robust to a lucky seed. 0 or 1 probes once with the base seed, which
	// is bit-identical to the pre-replica behaviour.
	Replicas int
}

// DefaultSaturationOpts matches common NoC methodology: latency blowing past
// 4x zero-load (or failure to drain) marks saturation.
func DefaultSaturationOpts() SaturationOpts {
	return SaturationOpts{Start: 0.005, Factor: 1.5, MaxRate: 1.0, LatencyLimit: 4, Refine: 4}
}

// FindSaturation sweeps the offered load upward until the network saturates,
// then bisects to locate the knee. The base config's InjectionRate is
// ignored; everything else (topology, pattern, seed, phases) is reused.
//
// A probe run that trips the deadlock detector is a legitimate data point —
// it means the rate is past saturation — so it lands on the curve instead of
// failing the sweep. Cancelling ctx aborts the search with an error matching
// ErrCancelled; the points probed so far are returned alongside it.
func FindSaturation(ctx context.Context, base Config, opts SaturationOpts) (sr SweepResult, err error) {
	if opts.Start <= 0 || opts.Factor <= 1 || opts.MaxRate <= 0 {
		return SweepResult{}, fmt.Errorf("sim: bad saturation options %+v", opts)
	}
	defer func() {
		// Bisection appends its mid-rate probes after the coarse samples;
		// restore rate order so Points is a plottable curve even when the
		// sweep returns early with partial results.
		sort.SliceStable(sr.Points, func(i, j int) bool {
			return sr.Points[i].Rate < sr.Points[j].Rate
		})
		if sec := sr.WallTime.Seconds(); sec > 0 {
			sr.CyclesPerSec = float64(sr.SimCycles) / sec
		}
	}()
	runAt := func(rate float64) (Result, error) {
		cfg := base
		cfg.InjectionRate = rate
		if opts.Replicas > 1 {
			results, agg, err := RunManyAgg(ctx, ReplicaConfigs(cfg, opts.Replicas), 0)
			res := AggregateReplicas(results)
			sr.SimCycles += agg.SimCycles
			sr.WallTime += agg.WallTime
			if err != nil && errors.Is(err, ErrDeadlock) &&
				!errors.Is(err, ErrCancelled) && !errors.Is(err, ErrAudit) && !errors.Is(err, ErrConfig) {
				// Only deadlocks among the replica failures: a saturation
				// signal, not a sweep failure. DeadlockSuspected is set on
				// the aggregate, so stable() rejects the point.
				err = nil
			}
			return res, err
		}
		s, err := New(cfg)
		if err != nil {
			return Result{}, err
		}
		res, err := s.Run(ctx)
		sr.SimCycles += res.Cycles
		sr.WallTime += res.WallTime
		if errors.Is(err, ErrDeadlock) {
			// The probe deadlocked: not a sweep failure but the clearest
			// possible saturation signal. DeadlockSuspected is set on the
			// result, so stable() rejects the point.
			err = nil
		}
		return res, err
	}

	zero, err := runAt(opts.Start)
	if err != nil {
		return sr, err
	}
	sr.Points = append(sr.Points, SweepPoint{Rate: opts.Start, Result: zero})
	if !zero.Drained || zero.MeasuredPackets == 0 {
		return sr, fmt.Errorf("sim: network unstable at the probe rate %g: %w", opts.Start, ErrUnstable)
	}
	zeroLat := zero.AvgPacketLatency
	stable := func(r Result) bool {
		return r.Drained && !r.DeadlockSuspected && r.AvgPacketLatency <= opts.LatencyLimit*zeroLat
	}

	lastGood, lastGoodThr := opts.Start, zero.ThroughputPackets
	firstBad := 0.0
	for rate := opts.Start; rate < opts.MaxRate; {
		rate *= opts.Factor
		if rate > opts.MaxRate {
			// Clamp the final coarse step so the cap itself is probed; a pure
			// geometric sweep can jump straight over MaxRate and report a
			// network that only saturates near the cap as "never saturated"
			// with a stale throughput from a much lower rate.
			rate = opts.MaxRate
		}
		res, err := runAt(rate)
		if err != nil {
			return sr, err
		}
		sr.Points = append(sr.Points, SweepPoint{Rate: rate, Result: res})
		if stable(res) {
			lastGood, lastGoodThr = rate, res.ThroughputPackets
			continue
		}
		firstBad = rate
		break
	}
	if firstBad == 0 {
		// Never saturated within MaxRate; report the best stable point.
		sr.Saturation, sr.SatRate = lastGoodThr, lastGood
		return sr, nil
	}
	lo, hi := lastGood, firstBad
	for i := 0; i < opts.Refine; i++ {
		mid := (lo + hi) / 2
		res, err := runAt(mid)
		if err != nil {
			return sr, err
		}
		sr.Points = append(sr.Points, SweepPoint{Rate: mid, Result: res})
		if stable(res) {
			lo, lastGoodThr = mid, res.ThroughputPackets
		} else {
			hi = mid
		}
	}
	sr.Saturation, sr.SatRate = lastGoodThr, lo
	return sr, nil
}
