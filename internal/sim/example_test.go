package sim_test

import (
	"context"
	"fmt"

	"explink/internal/sim"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// Run the cycle-accurate simulator on an 8x8 mesh under light uniform
// traffic and read out the headline metrics.
func ExampleSimulator_Run() {
	cfg := sim.NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.01)
	cfg.Warmup, cfg.Measure, cfg.Drain = 1000, 5000, 20000
	s, err := sim.New(cfg)
	if err != nil {
		panic(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("drained:", res.Drained)
	fmt.Println("deadlock:", res.DeadlockSuspected)
	fmt.Println("conserved:", res.Counts.FlitsInjected == res.Counts.FlitsEjected)
	fmt.Println("contention below 1 cycle/hop:", res.AvgContentionPerHop < 1)
	// Output:
	// drained: true
	// deadlock: false
	// conserved: true
	// contention below 1 cycle/hop: true
}
