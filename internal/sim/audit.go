package sim

// This file implements the opt-in per-cycle invariant auditor (Config.Audit)
// and the deadlock diagnostic dump. The auditor re-derives, from first
// principles, the conservation laws the credit-based wormhole engine must
// uphold every cycle, and fails the run fast on the first violation:
//
//   - flit conservation: every flit ever generated is in a source queue, in
//     flight inside the network, or ejected — nothing is created or lost;
//   - credit conservation: for every channel (router-to-router and the NI
//     injection link), free credits plus occupied downstream slots plus
//     in-flight flits and in-flight credit returns equal the buffer depth;
//   - active-set consistency: the occupancy bitmasks and work lists of the
//     event-driven engine (see DESIGN.md §5) agree with the actual buffer
//     state, so no component with work pending can be skipped;
//   - route monotonicity: every hop moves a head flit strictly closer to its
//     destination along the dimension order in force (X before Y under DOR,
//     reversed for O1TURN's YX class), which excludes U-turns by construction.
//
// With Audit unset none of this code runs: the auditor pointer is nil, the
// single nil check in grantSwitch is the only cost, and results are
// bit-identical to an unaudited run (the auditor only reads engine state).

import (
	"fmt"
	"strings"
)

// auditVCCap bounds the per-VC scratch used to bucket in-flight queue entries
// by VC; normalize enforces VCs <= 64.
const auditVCCap = 64

type auditor struct {
	s *Simulator
	// err latches the first violation observed by the grant-time route check;
	// check reports it ahead of the conservation sweeps.
	err error
	// perVC is scratch for bucketing channel/credit queue entries by VC.
	perVC [auditVCCap]int
}

func newAuditor(s *Simulator) *auditor { return &auditor{s: s} }

func (a *auditor) fail(now int64, invariant, format string, args ...any) error {
	return &AuditError{Cycle: now, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
}

// check runs every invariant sweep for the cycle that just completed. It is
// called from Run after step, before the cycle counter advances.
func (a *auditor) check(now int64) error {
	if a.err != nil {
		return a.err
	}
	if err := a.checkFlitConservation(now); err != nil {
		return err
	}
	if err := a.checkCreditConservation(now); err != nil {
		return err
	}
	return a.checkActiveSets(now)
}

// checkFlitConservation verifies injected = queued-at-source + in-flight +
// ejected, using the engine's own counters against a recount of the source
// queues.
func (a *auditor) checkFlitConservation(now int64) error {
	s := a.s
	var queued int64
	for _, ni := range s.nis {
		queued += int64(ni.srcQ.len())
	}
	if got := queued + s.inFlightFlits + s.counts.FlitsEjected; got != s.counts.FlitsInjected {
		return a.fail(now, "flit-conservation",
			"injected=%d but source-queued=%d + in-flight=%d + ejected=%d = %d",
			s.counts.FlitsInjected, queued, s.inFlightFlits, s.counts.FlitsEjected, got)
	}
	return nil
}

// checkCreditConservation verifies, for every channel and every VC, that
// free upstream credits + occupied downstream buffer slots + flits still on
// the wire + credit returns still in flight add up to the downstream buffer
// depth. It covers both router-to-router channels and the NI injection link.
func (a *auditor) checkCreditConservation(now int64) error {
	s := a.s
	vcs := s.cfg.VCs
	for _, r := range s.routers {
		for oi := range r.out {
			op := &r.out[oi]
			if op.isEject {
				continue // the ejection sink never backpressures
			}
			dstIn := &op.ch.dst.in[op.ch.dstPort]
			onWire := a.perVC[:vcs]
			for i := range onWire {
				onWire[i] = 0
			}
			for i := 0; i < op.ch.q.len(); i++ {
				onWire[op.ch.q.at(i).vc]++
			}
			for i := 0; i < op.creditQ.len(); i++ {
				onWire[op.creditQ.at(i).vc]++ // credit in flight holds a slot too
			}
			for v := 0; v < vcs; v++ {
				depth := dstIn.vcs[v].fifo.cap()
				got := op.credits[v] + dstIn.vcs[v].fifo.len() + onWire[v]
				if got != depth {
					return a.fail(now, "credit-conservation",
						"router %d out[%d] -> router %d in[%d] vc%d: credits=%d + buffered=%d + in-flight=%d != depth %d",
						r.id, oi, op.ch.dst.id, op.ch.dstPort, v,
						op.credits[v], dstIn.vcs[v].fifo.len(), onWire[v], depth)
				}
			}
		}
	}
	for _, ni := range s.nis {
		ip := &ni.injector.in[ni.inPort]
		onWire := a.perVC[:vcs]
		for i := range onWire {
			onWire[i] = 0
		}
		for i := 0; i < ni.creditQ.len(); i++ {
			onWire[ni.creditQ.at(i).vc]++
		}
		for v := 0; v < vcs; v++ {
			depth := ip.vcs[v].fifo.cap()
			got := ni.credits[v] + ip.vcs[v].fifo.len() + onWire[v]
			if got != depth {
				return a.fail(now, "credit-conservation",
					"NI %d -> router %d in[%d] vc%d: credits=%d + buffered=%d + in-flight=%d != depth %d",
					ni.id, ni.injector.id, ni.inPort, v,
					ni.credits[v], ip.vcs[v].fifo.len(), onWire[v], depth)
			}
		}
	}
	return nil
}

// checkActiveSets verifies the event-driven engine's occupancy bitmasks and
// work lists against the actual buffer state: a component holding work must
// be discoverable by the next step, and every occupancy bit must match its
// FIFO.
func (a *auditor) checkActiveSets(now int64) error {
	s := a.s
	for _, r := range s.routers {
		total := 0
		for pi := range r.in {
			ip := &r.in[pi]
			for vi := range ip.vcs {
				n := ip.vcs[vi].fifo.len()
				total += n
				if occ := ip.occ>>uint(vi)&1 == 1; occ != (n > 0) {
					return a.fail(now, "active-set",
						"router %d in[%d] vc%d: occ bit %v but %d buffered flits", r.id, pi, vi, occ, n)
				}
			}
			if ip.pend&^ip.occ != 0 {
				return a.fail(now, "active-set",
					"router %d in[%d]: pending mask %b not a subset of occupancy %b", r.id, pi, ip.pend, ip.occ)
			}
			if !r.wide {
				if set := r.portOcc>>uint(pi)&1 == 1; set != (ip.occ != 0) {
					return a.fail(now, "active-set",
						"router %d: portOcc bit %d is %v but port occupancy is %b", r.id, pi, set, ip.occ)
				}
			}
		}
		if total != r.occupied {
			return a.fail(now, "active-set",
				"router %d: occupied=%d but buffers hold %d flits", r.id, r.occupied, total)
		}
		if r.occupied > 0 && s.rtrAct[uint(r.id)>>6]>>(uint(r.id)&63)&1 == 0 {
			return a.fail(now, "active-set",
				"router %d holds %d flits but is not on the router active set", r.id, r.occupied)
		}
	}
	for _, ch := range s.channels {
		if ch.q.len() > 0 && s.chAct[uint(ch.idx)>>6]>>(uint(ch.idx)&63)&1 == 0 {
			return a.fail(now, "active-set",
				"channel %d (router %d -> %d) holds %d flits but is not on the channel active set",
				ch.idx, ch.src.id, ch.dst.id, ch.q.len())
		}
	}
	for _, ni := range s.nis {
		if ni.srcQ.len() > 0 && s.niAct[uint(ni.id)>>6]>>(uint(ni.id)&63)&1 == 0 {
			return a.fail(now, "active-set",
				"NI %d queues %d flits but is not on the injection active set", ni.id, ni.srcQ.len())
		}
		if ni.creditQ.len() > 0 && !ni.creditActive {
			return a.fail(now, "active-set",
				"NI %d has %d pending credits but is not credit-active", ni.id, ni.creditQ.len())
		}
	}
	for _, r := range s.routers {
		for oi := range r.out {
			op := &r.out[oi]
			if op.creditQ.len() > 0 && !op.creditActive {
				return a.fail(now, "active-set",
					"router %d out[%d] has %d pending credits but is not credit-active", r.id, oi, op.creditQ.len())
			}
		}
	}
	return nil
}

// noteGrant is the grant-time route-monotonicity check: called from
// grantSwitch (audit mode only) when a head flit crosses to a network
// channel. Every hop must move strictly toward the destination along the
// packet's dimension order — X fully resolved before any Y movement under
// DOR, the reverse for O1TURN's YX class — which also excludes U-turns.
func (a *auditor) noteGrant(now int64, r *router, op *outPort, p *packet) {
	if a.err != nil {
		return
	}
	s := a.s
	next := op.ch.dst
	dr := p.dst / s.k
	dx, dy := dr%s.w, dr/s.w
	switch {
	case next.y == r.y: // X move
		if p.yx && r.y != dy {
			a.err = a.fail(now, "route-monotonicity",
				"pkt %d (%d->%d, YX) moved in X at router %d before finishing Y (y=%d, want %d)",
				p.id, p.src, p.dst, r.id, r.y, dy)
			return
		}
		if absInt(dx-next.x) >= absInt(dx-r.x) {
			a.err = a.fail(now, "route-monotonicity",
				"pkt %d (%d->%d) hop router %d -> %d moves away from column %d",
				p.id, p.src, p.dst, r.id, next.id, dx)
		}
	case next.x == r.x: // Y move
		if !p.yx && r.x != dx {
			a.err = a.fail(now, "route-monotonicity",
				"pkt %d (%d->%d, XY) moved in Y at router %d before finishing X (x=%d, want %d)",
				p.id, p.src, p.dst, r.id, r.x, dx)
			return
		}
		if absInt(dy-next.y) >= absInt(dy-r.y) {
			a.err = a.fail(now, "route-monotonicity",
				"pkt %d (%d->%d) hop router %d -> %d moves away from row %d",
				p.id, p.src, p.dst, r.id, next.id, dy)
		}
	default:
		a.err = a.fail(now, "route-monotonicity",
			"pkt %d (%d->%d) hop router %d -> %d changes both dimensions",
			p.id, p.src, p.dst, r.id, next.id)
	}
}

// deadlockReportMax caps the per-VC lines in a deadlock dump; the full count
// is always reported in the header.
const deadlockReportMax = 16

// deadlockReport names every input VC holding buffered traffic at the moment
// a deadlock was suspected: the packet at its front, the output it is routed
// to, and the downstream credit it is waiting on. The dump is the diagnostic
// payload of DeadlockError.
func (s *Simulator) deadlockReport() string {
	var b strings.Builder
	blocked := 0
	for _, r := range s.routers {
		for pi := range r.in {
			ip := &r.in[pi]
			for vi := range ip.vcs {
				vc := &ip.vcs[vi]
				if vc.fifo.len() == 0 {
					continue
				}
				blocked++
				if blocked > deadlockReportMax {
					continue
				}
				fe := vc.fifo.front()
				p := fe.f.pkt
				fmt.Fprintf(&b, "  router %d@(%d,%d) in[%d] vc%d: pkt %d (%d->%d) flit %d/%d",
					r.id, r.x, r.y, pi, vi, p.id, p.src, p.dst, fe.f.seq+1, p.flits)
				switch {
				case vc.outPort < 0:
					b.WriteString(" awaiting route computation\n")
				case vc.outVC < 0:
					fmt.Fprintf(&b, " awaiting a VC on out[%d]\n", vc.outPort)
				default:
					op := &r.out[vc.outPort]
					fmt.Fprintf(&b, " -> out[%d] vc%d credits=%d\n",
						vc.outPort, vc.outVC, op.credits[vc.outVC])
				}
			}
		}
	}
	var queued int64
	for _, ni := range s.nis {
		queued += int64(ni.srcQ.len())
	}
	header := fmt.Sprintf("%d blocked input VCs, %d flits in flight, %d flits queued at NIs",
		blocked, s.inFlightFlits, queued)
	if blocked > deadlockReportMax {
		fmt.Fprintf(&b, "  ... and %d more blocked VCs\n", blocked-deadlockReportMax)
	}
	return header + "\n" + strings.TrimRight(b.String(), "\n")
}
