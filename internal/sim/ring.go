package sim

// This file holds the allocation-discipline queue primitive of the
// active-set engine: power-of-two ring buffers whose backing arrays are
// reused across a whole run (replacing the grow-forever append/head-index
// queues).

const (
	// ringInitCap is the capacity a ring starts with on first use and returns
	// to after a cap-bounded reset. Sixteen slots cover every queue's steady
	// state at paper-typical loads without growth.
	ringInitCap = 16
	// ringShrinkCap bounds retained capacity: a ring that drains empty with a
	// larger backing array (a burst near saturation) is reset so the burst
	// doesn't pin memory for the rest of the run.
	ringShrinkCap = 2048
)

// The three ring types below are one growable circular FIFO with a
// power-of-two backing array, stamped out per element type. The zero value
// is ready to use; the first push allocates ringInitCap slots, and popped
// slots are zeroed so queued packet references don't outlive the flit. They
// are deliberately concrete copies of one another rather than a generic
// ring[T]: the pushes and pops run hundreds of times per simulated cycle,
// and Go's gcshape generics compile them as out-of-line dictionary calls
// where these monomorphic methods inline away.

type delivRing struct {
	buf  []delivery
	head int
	n    int
}

func (r *delivRing) len() int { return r.n }

func (r *delivRing) push(v delivery) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *delivRing) grow() {
	if len(r.buf) == 0 {
		r.buf = make([]delivery, ringInitCap)
		return
	}
	nb := make([]delivery, len(r.buf)*2)
	m := copy(nb, r.buf[r.head:])
	copy(nb[m:], r.buf[:r.head])
	r.buf, r.head = nb, 0
}

// front returns the oldest element; only valid when len() > 0.
func (r *delivRing) front() *delivery { return &r.buf[r.head] }

// at returns the i-th queued element in FIFO order without popping it; only
// valid for i < len(). Used by the invariant auditor to count in-flight
// entries without disturbing the queue.
func (r *delivRing) at(i int) *delivery { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *delivRing) popFront() delivery {
	v := r.buf[r.head]
	r.buf[r.head] = delivery{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// shrinkIfDrained applies the cap-bounded reset: an empty ring whose backing
// array grew past ringShrinkCap drops it and starts over at ringInitCap.
func (r *delivRing) shrinkIfDrained() {
	if r.n == 0 && len(r.buf) > ringShrinkCap {
		r.buf = make([]delivery, ringInitCap)
		r.head = 0
	}
}

type credRing struct {
	buf  []creditEvt
	head int
	n    int
}

func (r *credRing) len() int { return r.n }

func (r *credRing) push(v creditEvt) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *credRing) grow() {
	if len(r.buf) == 0 {
		r.buf = make([]creditEvt, ringInitCap)
		return
	}
	nb := make([]creditEvt, len(r.buf)*2)
	m := copy(nb, r.buf[r.head:])
	copy(nb[m:], r.buf[:r.head])
	r.buf, r.head = nb, 0
}

func (r *credRing) front() *creditEvt { return &r.buf[r.head] }

// at returns the i-th queued element in FIFO order without popping it; only
// valid for i < len(). Used by the invariant auditor.
func (r *credRing) at(i int) *creditEvt { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *credRing) popFront() creditEvt {
	v := r.buf[r.head]
	r.buf[r.head] = creditEvt{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

func (r *credRing) shrinkIfDrained() {
	if r.n == 0 && len(r.buf) > ringShrinkCap {
		r.buf = make([]creditEvt, ringInitCap)
		r.head = 0
	}
}

type flitRing struct {
	buf  []flit
	head int
	n    int
}

func (r *flitRing) len() int { return r.n }

func (r *flitRing) push(v flit) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *flitRing) grow() {
	if len(r.buf) == 0 {
		r.buf = make([]flit, ringInitCap)
		return
	}
	nb := make([]flit, len(r.buf)*2)
	m := copy(nb, r.buf[r.head:])
	copy(nb[m:], r.buf[:r.head])
	r.buf, r.head = nb, 0
}

func (r *flitRing) front() *flit { return &r.buf[r.head] }

func (r *flitRing) popFront() flit {
	v := r.buf[r.head]
	r.buf[r.head] = flit{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

func (r *flitRing) shrinkIfDrained() {
	if r.n == 0 && len(r.buf) > ringShrinkCap {
		r.buf = make([]flit, ringInitCap)
		r.head = 0
	}
}
