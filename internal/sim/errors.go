package sim

import (
	"fmt"

	"explink/internal/runctl"
)

// The run-control sentinels are defined in internal/runctl (shared with the
// optimizer packages) and re-exported here so simulator callers match them as
// sim.ErrX. All of them are classified with errors.Is:
//
//	res, err := s.Run(ctx)
//	switch {
//	case errors.Is(err, sim.ErrCancelled): // ctx deadline/cancel; res is partial
//	case errors.Is(err, sim.ErrDeadlock):  // no progress; err carries a dump
//	case errors.Is(err, sim.ErrAudit):     // Config.Audit caught a violation
//	}
var (
	ErrCancelled = runctl.ErrCancelled
	ErrDeadlock  = runctl.ErrDeadlock
	ErrUnstable  = runctl.ErrUnstable
	ErrAudit     = runctl.ErrAudit
	ErrConfig    = runctl.ErrConfig
)

// DeadlockError is returned by Run on deadlock suspicion. Beyond matching
// ErrDeadlock, it carries the cycle the run gave up at and a diagnostic dump
// naming the blocked routers, ports and VCs and the credit each is waiting
// on (see Simulator.deadlockReport).
type DeadlockError struct {
	Cycle  int64  // cycle the run stopped at
	Stall  int64  // cycles since the last flit movement
	Report string // per-VC dump of blocked traffic
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: %v at cycle %d (no progress for %d cycles)\n%s",
		ErrDeadlock, e.Cycle, e.Stall, e.Report)
}

func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// AuditError is returned by Run when Config.Audit is set and a per-cycle
// invariant check fails. The run fails fast: Cycle is the first cycle on
// which Invariant did not hold.
type AuditError struct {
	Cycle     int64
	Invariant string // "flit-conservation", "credit-conservation", "active-set", "route-monotonicity"
	Detail    string
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("sim: audit: %s violated at cycle %d: %s", e.Invariant, e.Cycle, e.Detail)
}

func (e *AuditError) Unwrap() error { return ErrAudit }
