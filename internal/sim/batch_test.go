package sim

import (
	"context"
	"os"
	"testing"

	"explink/internal/topo"
	"explink/internal/traffic"
)

func TestReplicaSeeds(t *testing.T) {
	seeds := ReplicaSeeds(7, 4)
	if len(seeds) != 4 {
		t.Fatalf("len = %d", len(seeds))
	}
	if seeds[0] != 7 {
		t.Fatalf("replica 0 must keep the base seed, got %d", seeds[0])
	}
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d in %v", s, seeds)
		}
		seen[s] = true
	}
	cfgs := ReplicaConfigs(quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02), 3)
	if _, _, ok := seedVariants(cfgs); !ok {
		t.Fatal("ReplicaConfigs output not detected as a seed sweep")
	}
}

func TestAggregateReplicas(t *testing.T) {
	if got := AggregateReplicas(nil); got != (Result{}) {
		t.Fatalf("empty aggregate = %+v", got)
	}
	a := Result{Topology: "m", Cycles: 100, AvgPacketLatency: 10, ThroughputPackets: 0.25,
		P99Latency: 40, MeasuredPackets: 50, Drained: true}
	b := Result{Topology: "m", Cycles: 200, AvgPacketLatency: 30, ThroughputPackets: 0.75,
		P99Latency: 80, MeasuredPackets: 70, Drained: true, DeadlockSuspected: true}
	got := AggregateReplicas([]Result{a, b})
	if got.Cycles != 300 || got.MeasuredPackets != 120 {
		t.Fatalf("sums wrong: %+v", got)
	}
	if got.AvgPacketLatency != 20 || got.ThroughputPackets != 0.5 {
		t.Fatalf("means wrong: %+v", got)
	}
	if got.P99Latency != 80 {
		t.Fatalf("tail max wrong: %+v", got)
	}
	if !got.Drained || !got.DeadlockSuspected {
		t.Fatalf("flag folding wrong: %+v", got)
	}
	c := Result{Drained: false}
	if AggregateReplicas([]Result{a, c}).Drained {
		t.Fatal("Drained must require every replica to drain")
	}
}

// TestBatchMatchesSingleRuns is the batch engine's core contract: every
// replica of a Batch produces exactly the Result its seed produces through
// the ordinary New+Run path.
func TestBatchMatchesSingleRuns(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	cfg.Measure = 2000
	seeds := ReplicaSeeds(cfg.Seed, 5)
	b, err := NewBatch(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	got, agg, err := b.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.SimCycles == 0 || agg.CyclesPerSec == 0 {
		t.Fatalf("empty aggregate: %+v", agg)
	}
	for i, seed := range seeds {
		single := cfg
		single.Seed = seed
		s, err := New(single)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got[i].WithoutTiming() != want.WithoutTiming() {
			t.Fatalf("replica %d (seed %d) diverged from single run:\n%v\n%v", i, seed, got[i], want)
		}
	}
}

func TestNewBatchRejectsBadInput(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
	if _, err := NewBatch(cfg, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	cfg.InjectionRate = 7
	if _, err := NewBatch(cfg, []uint64{1, 2}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunManyReplicatedAgg(t *testing.T) {
	mk := func(rate float64) Config {
		cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), rate)
		cfg.Measure = 1500
		return cfg
	}
	cfgs := []Config{mk(0.02), mk(0.04)}
	results, agg, err := RunManyReplicatedAgg(context.Background(), cfgs, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want one aggregate per config", len(results))
	}
	for i, r := range results {
		if r.MeasuredPackets == 0 || !r.Drained {
			t.Fatalf("config %d aggregate empty: %+v", i, r)
		}
	}
	if agg.SimCycles == 0 {
		t.Fatalf("aggregate cycles missing: %+v", agg)
	}
	// replicas <= 1 must be plain RunManyAgg.
	one, _, err := RunManyReplicatedAgg(context.Background(), cfgs[:1], 1, 0)
	if err != nil || len(one) != 1 || one[0].MeasuredPackets == 0 {
		t.Fatalf("single-replica path: %v %v", one, err)
	}
}

// TestBatchSteadyStateZeroAllocs extends the single-run zero-alloc guarantee
// to the batched path: once every replica is in steady state, interleaved
// advance calls must not allocate.
func TestBatchSteadyStateZeroAllocs(t *testing.T) {
	cfg := NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.05)
	cfg.Seed = 1
	cfg.Measure = 1 << 30
	b, err := NewBatch(cfg, ReplicaSeeds(cfg.Seed, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, s := range b.sims {
		if s.advance(ctx, 3000) {
			t.Fatal("replica finished during warmup")
		}
	}
	avg := testing.AllocsPerRun(300, func() {
		for _, s := range b.sims {
			s.advance(ctx, 1)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state batch advance allocates %.2f allocs/cycle, want 0", avg)
	}
}

// batchBenchCfg is the ISSUE's reference operating point: 8x8 mesh,
// uniform-random traffic at 0.05 flits/node/cycle, quick phase lengths.
func batchBenchCfg() Config {
	cfg := NewConfig(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.05)
	cfg.Seed = 1
	cfg.Warmup, cfg.Measure, cfg.Drain = 500, 2000, 10000
	return cfg
}

func benchReplicas(b *testing.B, runner func(ctx context.Context, cfgs []Config) (Agg, error)) {
	cfgs := ReplicaConfigs(batchBenchCfg(), 8)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var agg Agg
	for i := 0; i < b.N; i++ {
		var err error
		agg, err = runner(ctx, cfgs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds() / float64(b.N); sec > 0 {
		b.ReportMetric(float64(agg.SimCycles)/sec, "agg-cycles/sec")
	}
}

// BenchmarkRunManyAggBatch8 and BenchmarkRunManyAggPool8 compare the batched
// replica engine against the per-run worker pool at R=8 on the reference
// operating point; agg-cycles/sec is the headline metric of BENCH_sim.json.
func BenchmarkRunManyAggBatch8(b *testing.B) {
	benchReplicas(b, func(ctx context.Context, cfgs []Config) (Agg, error) {
		_, agg, err := RunManyAgg(ctx, cfgs, 0)
		return agg, err
	})
}

func BenchmarkRunManyAggPool8(b *testing.B) {
	benchReplicas(b, func(ctx context.Context, cfgs []Config) (Agg, error) {
		_, agg, err := runManyPool(ctx, cfgs, 0)
		return agg, err
	})
}

// TestBatchThroughputAtLeastPool is the CI bench smoke: on the reference
// operating point the batched path must not be slower than the worker pool
// it replaced. Gated behind EXPLINK_BENCH_SMOKE=1 because wall-clock
// assertions are meaningless under an arbitrarily loaded test host.
func TestBatchThroughputAtLeastPool(t *testing.T) {
	if os.Getenv("EXPLINK_BENCH_SMOKE") == "" {
		t.Skip("set EXPLINK_BENCH_SMOKE=1 to run the throughput smoke test")
	}
	cfgs := ReplicaConfigs(batchBenchCfg(), 8)
	ctx := context.Background()
	best := func(run func() (Agg, error)) float64 {
		m := 0.0
		for i := 0; i < 3; i++ {
			agg, err := run()
			if err != nil {
				t.Fatal(err)
			}
			if agg.CyclesPerSec > m {
				m = agg.CyclesPerSec
			}
		}
		return m
	}
	// Interleave the two paths so host throttling hits both alike.
	var pool, batch float64
	for i := 0; i < 3; i++ {
		p := best(func() (Agg, error) { _, agg, err := runManyPool(ctx, cfgs, 0); return agg, err })
		bt := best(func() (Agg, error) { _, agg, err := RunManyAgg(ctx, cfgs, 0); return agg, err })
		if p > pool {
			pool = p
		}
		if bt > batch {
			batch = bt
		}
	}
	t.Logf("pool %.0f agg-cycles/sec, batch %.0f agg-cycles/sec (%.2fx)", pool, batch, batch/pool)
	// The two paths measure at parity on wall-clock; the batch engine's wins
	// are allocations (-65%) and construction sharing. Allow a 10% noise band
	// so host jitter cannot flake the smoke while a real regression still trips.
	if batch < 0.9*pool {
		t.Fatalf("batched RunManyAgg slower than the worker pool: %.0f < 0.9*%.0f agg-cycles/sec", batch, pool)
	}
}
