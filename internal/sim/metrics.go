package sim

import (
	"fmt"
	"time"

	"explink/internal/stats"
)

// Counts aggregates datapath activity over a whole run; the power model
// converts these to dynamic energy (Section 4.6).
type Counts struct {
	BufferWrites     int64 // flit writes into input buffers
	BufferReads      int64 // flit reads out of input buffers
	SwitchTraversals int64 // crossbar passes
	LinkFlitUnits    int64 // flit-hops weighted by wire length in unit segments
	VCAllocs         int64 // successful VC allocations
	CreditsSent      int64 // credit flits on reverse channels
	PacketsInjected  int64
	PacketsEjected   int64
	FlitsInjected    int64
	FlitsEjected     int64
}

// TruncateReason classifies why a run ended before draining naturally; the
// empty value means the run drained. It lets callers of Run distinguish a
// clean result from a partial one without re-deriving the cause from flags.
type TruncateReason string

const (
	// TruncatedNone: the run drained every tagged packet.
	TruncatedNone TruncateReason = ""
	// TruncatedDrainLimit: the Drain-cycle cutoff expired with traffic still
	// in flight (Run still returns a nil error; Drained is false).
	TruncatedDrainLimit TruncateReason = "drain-limit"
	// TruncatedCancelled: the run's context was cancelled or its deadline
	// expired; Run returned an error matching ErrCancelled.
	TruncatedCancelled TruncateReason = "cancelled"
	// TruncatedDeadlock: no flit moved for ProgressTimeout cycles; Run
	// returned a *DeadlockError.
	TruncatedDeadlock TruncateReason = "deadlock"
	// TruncatedAudit: Config.Audit detected an invariant violation; Run
	// returned an *AuditError.
	TruncatedAudit TruncateReason = "audit"
)

// Result reports the measured behaviour of one simulation run. Latency
// statistics cover packets created during the measurement window; throughput
// counts every ejection inside the window.
type Result struct {
	Topology string
	Pattern  string
	InjRate  float64

	Cycles int64 // total simulated cycles

	// Packet latency: creation at the source NI to tail arrival at the
	// destination NI (includes source queueing and serialization).
	AvgPacketLatency float64
	// Network latency: head flit entering the first router to tail arrival.
	AvgNetLatency float64
	P95Latency    int
	P99Latency    int
	MaxLatency    int

	AvgHops float64
	// AvgContentionPerHop is the mean queueing delay per hop beyond the
	// zero-load pipeline latency — the empirical Tc of Section 2.2.
	AvgContentionPerHop float64

	// Throughput in accepted packets (and flits) per node per cycle during
	// the measurement window.
	ThroughputPackets float64
	ThroughputFlits   float64

	MeasuredPackets   int64
	Drained           bool
	DeadlockSuspected bool
	// Truncated records why the run stopped before draining; empty for a
	// clean run. omitempty keeps drained fixtures byte-identical to the
	// pre-run-control engine.
	Truncated TruncateReason `json:",omitempty"`

	// WallTime is the host wall-clock duration of Run, and CyclesPerSec the
	// resulting simulated-cycles-per-second rate. Both describe the machine,
	// not the network: they are the only non-deterministic Result fields,
	// and the golden bit-identity fixtures exclude them.
	WallTime     time.Duration
	CyclesPerSec float64

	Counts Counts
}

// WithoutTiming returns the result with the wall-clock measurement fields
// zeroed. Two runs of the same config are bit-identical under this view;
// use it when comparing results for determinism.
func (r Result) WithoutTiming() Result {
	r.WallTime = 0
	r.CyclesPerSec = 0
	return r
}

func (r Result) String() string {
	s := fmt.Sprintf("%s/%s rate=%.4f: lat=%.2f (net %.2f, p99 %d) hops=%.2f tc=%.2f thr=%.4f pkt/node/cy drained=%v",
		r.Topology, r.Pattern, r.InjRate, r.AvgPacketLatency, r.AvgNetLatency,
		r.P99Latency, r.AvgHops, r.AvgContentionPerHop, r.ThroughputPackets, r.Drained)
	if r.Truncated != TruncatedNone {
		s += fmt.Sprintf(" truncated=%s", r.Truncated)
	}
	return s
}

// collector accumulates per-packet statistics during a run.
type collector struct {
	latency         *stats.Histogram // packet latency (created -> done)
	netLatency      stats.Running
	hops            stats.Running
	contention      stats.Running
	ejectedInWindow int64 // packets
	flitsInWindow   int64
}

func newCollector() *collector {
	return &collector{latency: stats.NewHistogram()}
}
