package sim

import (
	"context"
	"strings"
	"testing"

	"explink/internal/topo"
	"explink/internal/traffic"
)

func TestRunManyMatchesSequential(t *testing.T) {
	var cfgs []Config
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
		cfg.Seed = seed
		cfg.Measure = 2000
		cfgs = append(cfgs, cfg)
	}
	par, err := RunMany(context.Background(), cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if par[i].WithoutTiming() != seq.WithoutTiming() {
			t.Fatalf("run %d diverged between parallel and sequential:\n%v\n%v", i, par[i], seq)
		}
	}
}

// TestSeedVariantsDetection pins when RunManyAgg routes to the batch engine:
// two or more configs that differ only by Seed qualify; anything else —
// a single config, or any other field differing — takes the worker pool.
func TestSeedVariantsDetection(t *testing.T) {
	base := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
	a, b := base, base
	a.Seed, b.Seed = 3, 9
	seeds, shared, ok := seedVariants([]Config{a, b})
	if !ok || len(seeds) != 2 || seeds[0] != 3 || seeds[1] != 9 {
		t.Fatalf("seed sweep not detected: %v %v", seeds, ok)
	}
	if shared.Seed != 3 {
		t.Fatalf("base config seed = %d, want the first config's", shared.Seed)
	}
	if _, _, ok := seedVariants([]Config{a}); ok {
		t.Fatal("single config must not batch")
	}
	c := b
	c.InjectionRate += 0.01
	if _, _, ok := seedVariants([]Config{a, c}); ok {
		t.Fatal("configs differing beyond Seed must not batch")
	}
	d := b
	d.Pattern = traffic.Transpose(4)
	if _, _, ok := seedVariants([]Config{a, d}); ok {
		t.Fatal("different patterns must not batch")
	}
}

// TestRunManyAggBatchMatchesPool drives the same seed sweep through the
// batched path (RunManyAgg's auto-selection) and the worker pool, and
// requires bit-identical per-replica results.
func TestRunManyAggBatchMatchesPool(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.03)
	cfg.Measure = 2000
	cfgs := ReplicaConfigs(cfg, 5)
	batch, _, err := RunManyAgg(context.Background(), cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	pool, _, err := runManyPool(context.Background(), cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if batch[i].WithoutTiming() != pool[i].WithoutTiming() {
			t.Fatalf("replica %d diverged between batch and pool:\n%v\n%v", i, batch[i], pool[i])
		}
	}
}

// TestRunManyAggBatchBadConfigJoin: a seed sweep whose shared config is
// invalid cannot build a batch; the pool fallback must preserve the
// partial-results contract of one indexed error per run.
func TestRunManyAggBatchBadConfigJoin(t *testing.T) {
	bad := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
	bad.InjectionRate = 7
	results, _, err := RunManyAgg(context.Background(), ReplicaConfigs(bad, 3), 2)
	if err == nil {
		t.Fatal("invalid batch config not reported")
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, want := range []string{"run 0", "run 1", "run 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error %q missing %q", err, want)
		}
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	good := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
	bad := good
	bad.InjectionRate = 7
	if _, err := RunMany(context.Background(), []Config{good, bad}, 2); err == nil {
		t.Fatal("bad config error not propagated")
	}
}

func TestRunManyAggregatesAllErrors(t *testing.T) {
	// Every failed run must be visible in the joined error, not only the
	// lowest-index one, and successful runs must still return real results.
	good := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
	bad1 := good
	bad1.InjectionRate = 7
	bad2 := good
	bad2.InjectionRate = -1
	results, err := RunMany(context.Background(), []Config{good, bad1, bad2}, 2)
	if err == nil {
		t.Fatal("errors swallowed")
	}
	for _, want := range []string{"run 1", "run 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregated error %q missing %q", err, want)
		}
	}
	if len(results) != 3 {
		t.Fatalf("partial results truncated: %d entries", len(results))
	}
	if results[0].MeasuredPackets == 0 {
		t.Fatal("successful run lost its result")
	}
}

func TestRunManyEmptyAndDefaults(t *testing.T) {
	res, err := RunMany(context.Background(), nil, 0)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty RunMany: %v %v", res, err)
	}
	one := []Config{quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.01)}
	res, err = RunMany(context.Background(), one, 0)
	if err != nil || len(res) != 1 || res[0].MeasuredPackets == 0 {
		t.Fatalf("single RunMany: %v %v", res, err)
	}
}

func TestChannelStats(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := s.ChannelStats()
	// A 4x4 mesh has 2*2*n*(n-1) = 48 directed channels.
	if len(stats) != 48 {
		t.Fatalf("channels = %d, want 48", len(stats))
	}
	var total int64
	for _, c := range stats {
		if c.Utilization < 0 || c.Utilization > 1 {
			t.Fatalf("utilization out of range: %v", c)
		}
		if c.Length != 1 {
			t.Fatalf("mesh channel with length %d", c.Length)
		}
		total += c.Flits
	}
	if total == 0 {
		t.Fatal("no channel traffic recorded")
	}
	// Sorted descending.
	for i := 1; i < len(stats); i++ {
		if stats[i].Flits > stats[i-1].Flits {
			t.Fatal("channel stats not sorted")
		}
	}
	sum := s.Summarize()
	if sum.Channels != 48 || sum.MaxUtil < sum.MeanUtil || sum.Gini < 0 || sum.Gini > 1 {
		t.Fatalf("summary broken: %+v", sum)
	}
	if s.TopChannels(3) == "" {
		t.Fatal("TopChannels empty")
	}
}

func TestHFBBottleneckVisible(t *testing.T) {
	// Section 5.4: the HFB's inter-quadrant boundary links are its
	// bottleneck. Under uniform traffic the HFB's load distribution must be
	// markedly more unequal than the mesh's, and its busiest channels must
	// be boundary-crossing locals.
	run := func(tp topo.Topology, c int) *Simulator {
		cfg := quickCfg(tp, c, traffic.UniformRandom(8), 0.05)
		cfg.Measure = 4000
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return s
	}
	hfb := run(topo.HFB(8), 4)
	mesh := run(topo.Mesh(8), 1)
	hsum, msum := hfb.Summarize(), mesh.Summarize()
	if hsum.Gini <= msum.Gini {
		t.Fatalf("HFB load inequality (%.3f) not above mesh (%.3f)", hsum.Gini, msum.Gini)
	}
	// The single busiest HFB channel crosses a quadrant boundary (between
	// positions 3 and 4 in X or Y).
	top := hfb.ChannelStats()[0]
	crossesX := (top.SrcX == 3 && top.DstX == 4) || (top.SrcX == 4 && top.DstX == 3)
	crossesY := (top.SrcY == 3 && top.DstY == 4) || (top.SrcY == 4 && top.DstY == 3)
	if !crossesX && !crossesY {
		t.Fatalf("busiest HFB channel %v does not cross the quadrant boundary", top)
	}
}

func TestUtilizationHeatmap(t *testing.T) {
	cfg := quickCfg(topo.HFB(8), 4, traffic.UniformRandom(8), 0.05)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	hm := s.UtilizationHeatmap()
	lines := 0
	for _, line := range splitLines(hm) {
		if len(line) > 0 && (line[0] == '.' || line[0] == '-' || line[0] == '+' || line[0] == '#' || line[0] == '@') {
			lines++
			if len(line) != 2*8-1 {
				t.Fatalf("heatmap row width %d: %q", len(line), line)
			}
		}
	}
	if lines != 8 {
		t.Fatalf("heatmap has %d grid rows:\n%s", lines, hm)
	}
	// The network peak must appear as at least one '@'.
	if !containsByte(hm, '@') {
		t.Fatalf("no peak cell in heatmap:\n%s", hm)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func containsByte(s string, b byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return true
		}
	}
	return false
}

func TestResultAndChannelStrings(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
	stats := s.ChannelStats()
	if len(stats) == 0 || stats[0].String() == "" {
		t.Fatal("empty channel string")
	}
	if shadeFor(0.3) != '+' || shadeFor(0.95) != '@' || shadeFor(0.15) != '-' || shadeFor(0.6) != '#' {
		t.Fatal("shade scale broken")
	}
}
