// External test package: the benchmark setup solves a placement through
// internal/core, which transitively imports internal/sim (via the power
// model) — an in-package test would be an import cycle. Stepping uses the
// StepForTest hook from export_test.go.
package sim_test

import (
	"context"
	"sync"
	"testing"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/sim"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// dcsaTopo8 solves the paper's 8x8 placement once (deterministic at seed 1);
// the solve happens in benchmark setup, outside the timed region.
var dcsaOnce struct {
	sync.Once
	tp  topo.Topology
	c   int
	err error
}

func dcsaTopo8(tb testing.TB) (topo.Topology, int) {
	dcsaOnce.Do(func() {
		s := core.NewSolver(model.DefaultConfig(8))
		s.Seed = 1
		best, _, err := s.Optimize(context.Background(), core.DCSA)
		if err != nil {
			dcsaOnce.err = err
			return
		}
		dcsaOnce.tp, dcsaOnce.c = s.Topology(best), best.C
	})
	if dcsaOnce.err != nil {
		tb.Fatal(dcsaOnce.err)
	}
	return dcsaOnce.tp, dcsaOnce.c
}

// steadySim builds a simulator stepped past warmup into steady state, with an
// effectively infinite measurement window so injection never stops.
func steadySim(tb testing.TB, tp topo.Topology, c int, rate float64, warmCycles int) *sim.Simulator {
	cfg := sim.NewConfig(tp, c, traffic.UniformRandom(8), rate)
	cfg.Seed = 1
	cfg.Measure = 1 << 30
	s, err := sim.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < warmCycles; i++ {
		s.StepForTest()
	}
	return s
}

func benchStep(b *testing.B, tp topo.Topology, c int, rate float64) {
	s := steadySim(b, tp, c, rate, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepForTest()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "cycles/sec")
	}
}

// BenchmarkStep8x8UR measures the per-cycle cost of the simulator core on an
// 8x8 network under uniform-random traffic: ns/op is wall time per simulated
// cycle. "low" is the paper-typical 0.05 flits/node/cycle operating point,
// "high" is near saturation.
func BenchmarkStep8x8UR(b *testing.B) {
	mesh := topo.Mesh(8)
	b.Run("mesh/low", func(b *testing.B) { benchStep(b, mesh, 1, 0.05) })
	b.Run("mesh/high", func(b *testing.B) { benchStep(b, mesh, 1, 0.25) })
	dcsa, c := dcsaTopo8(b)
	b.Run("dcsa/low", func(b *testing.B) { benchStep(b, dcsa, c, 0.05) })
	b.Run("dcsa/high", func(b *testing.B) { benchStep(b, dcsa, c, 0.25) })
}

// BenchmarkRun4x4UR measures a whole short simulation (New+Run), covering
// construction, warmup, measurement and drain.
func BenchmarkRun4x4UR(b *testing.B) {
	cfg := sim.NewConfig(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	cfg.Seed = 1
	cfg.Warmup, cfg.Measure, cfg.Drain = 200, 1000, 3000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStepSteadyStateZeroAllocs pins the tentpole's allocation contract: once
// the engine reaches steady state at a paper-typical load, stepping the
// simulator performs zero heap allocations (packets come from the free list,
// all queues reuse their rings). AllocsPerRun truncates, so a rare histogram
// bucket for a newly seen latency value does not flake the assertion.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	s := steadySim(t, topo.Mesh(8), 1, 0.05, 5000)
	allocs := testing.AllocsPerRun(300, func() {
		s.StepForTest()
	})
	if allocs != 0 {
		t.Fatalf("steady-state step allocates %.0f objects/cycle; want 0", allocs)
	}
}
