package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// RunMany executes one simulation per config concurrently and returns the
// results in input order. Each simulation is fully independent (its own
// simulator, PRNG streams and statistics), so the output is bit-identical to
// running them sequentially. workers <= 0 uses GOMAXPROCS.
//
// Partial-results contract: the returned slice always has len(cfgs) entries.
// When the error is non-nil it aggregates every failed run (errors.Join, each
// wrapped with its run index); the result slots of failed runs are
// zero-valued and indistinguishable from a real zero Result, so callers must
// not consume results[i] without first checking the error.
func RunMany(cfgs []Config, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s, err := New(cfgs[i])
				if err == nil {
					results[i], err = s.Run()
				}
				if err != nil {
					errs[i] = fmt.Errorf("sim: run %d: %w", i, err)
				}
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errors.Join(errs...)
}
