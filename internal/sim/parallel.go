package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Agg reports a batch's aggregate simulation throughput: how many simulated
// cycles the batch covered and how fast the host chewed through them. Failed
// runs contribute no cycles.
type Agg struct {
	SimCycles    int64         // total simulated cycles across successful runs
	WallTime     time.Duration // wall-clock duration of the whole batch
	CyclesPerSec float64       // SimCycles / WallTime
}

func (a Agg) String() string {
	return fmt.Sprintf("%d cycles in %v (%.0f cycles/sec)",
		a.SimCycles, a.WallTime.Round(time.Millisecond), a.CyclesPerSec)
}

// RunMany executes one simulation per config concurrently and returns the
// results in input order. Each simulation is fully independent (its own
// simulator, PRNG streams and statistics), so the output is bit-identical to
// running them sequentially. workers <= 0 uses GOMAXPROCS.
//
// Partial-results contract: the returned slice always has len(cfgs) entries.
// When the error is non-nil it aggregates every failed run (errors.Join, each
// wrapped with its run index); the result slots of failed runs are
// zero-valued and indistinguishable from a real zero Result, so callers must
// not consume results[i] without first checking the error.
func RunMany(cfgs []Config, workers int) ([]Result, error) {
	results, _, err := RunManyAgg(cfgs, workers)
	return results, err
}

// RunManyAgg is RunMany plus the batch's aggregate simulated-cycles/sec, so
// sweeps can report simulation throughput alongside their results.
func RunManyAgg(cfgs []Config, workers int) ([]Result, Agg, error) {
	start := time.Now()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s, err := New(cfgs[i])
				if err == nil {
					results[i], err = s.Run()
				}
				if err != nil {
					errs[i] = fmt.Errorf("sim: run %d: %w", i, err)
				}
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var agg Agg
	for i := range results {
		if errs[i] == nil {
			agg.SimCycles += results[i].Cycles
		}
	}
	agg.WallTime = time.Since(start)
	if sec := agg.WallTime.Seconds(); sec > 0 {
		agg.CyclesPerSec = float64(agg.SimCycles) / sec
	}
	return results, agg, errors.Join(errs...)
}
