package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"explink/internal/runctl"
)

// Agg reports a batch's aggregate simulation throughput: how many simulated
// cycles the batch covered and how fast the host chewed through them. Failed
// runs contribute no cycles.
type Agg struct {
	SimCycles    int64         // total simulated cycles across successful runs
	WallTime     time.Duration // wall-clock duration of the whole batch
	CyclesPerSec float64       // SimCycles / WallTime
}

func (a Agg) String() string {
	return fmt.Sprintf("%d cycles in %v (%.0f cycles/sec)",
		a.SimCycles, a.WallTime.Round(time.Millisecond), a.CyclesPerSec)
}

// RunMany executes one simulation per config concurrently and returns the
// results in input order. Each simulation is fully independent (its own
// simulator, PRNG streams and statistics), so the output is bit-identical to
// running them sequentially. workers <= 0 uses GOMAXPROCS.
//
// Cancelling ctx stops dispatching new runs and interrupts in-flight ones;
// every run cut short contributes an error matching ErrCancelled.
//
// Partial-results contract: the returned slice always has len(cfgs) entries.
// When the error is non-nil it aggregates every failed run (errors.Join, each
// wrapped with its run index). A failed slot holds whatever partial Result its
// run produced before stopping (check Truncated), or the zero Result if the
// run never started, so callers must not consume results[i] without first
// checking the error.
func RunMany(ctx context.Context, cfgs []Config, workers int) ([]Result, error) {
	results, _, err := RunManyAgg(ctx, cfgs, workers)
	return results, err
}

// RunManyAgg is RunMany plus the batch's aggregate simulated-cycles/sec, so
// sweeps can report simulation throughput alongside their results.
//
// When every config is identical except for Seed — the replica-sweep shape —
// the runs are routed to the batch engine (sim.Batch): one shared immutable
// network description, per-replica mutable state, same per-run results and
// error wrapping. Anything else, including a batch whose shared config fails
// validation, takes the worker pool below so per-index errors are preserved.
func RunManyAgg(ctx context.Context, cfgs []Config, workers int) ([]Result, Agg, error) {
	if seeds, base, ok := seedVariants(cfgs); ok {
		if b, err := NewBatch(base, seeds); err == nil {
			return b.Run(ctx, workers)
		}
	}
	return runManyPool(ctx, cfgs, workers)
}

// seedVariants reports whether cfgs is a replica sweep: at least two configs
// that are deeply equal once their Seeds are normalized. Patterns, traces
// and mixes compare by value (reflect.DeepEqual), so sharing the same
// Pattern object and constructing equal ones both qualify.
func seedVariants(cfgs []Config) ([]uint64, Config, bool) {
	if len(cfgs) < 2 {
		return nil, Config{}, false
	}
	base := cfgs[0]
	seeds := make([]uint64, len(cfgs))
	seeds[0] = base.Seed
	for i := 1; i < len(cfgs); i++ {
		c := cfgs[i]
		seeds[i] = c.Seed
		c.Seed = base.Seed
		if !reflect.DeepEqual(c, base) {
			return nil, Config{}, false
		}
	}
	return seeds, base, true
}

// runManyPool is the general path: one simulator per config, built and run
// inside a bounded worker pool.
func runManyPool(ctx context.Context, cfgs []Config, workers int) ([]Result, Agg, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s, err := New(cfgs[i])
				if err == nil {
					results[i], err = s.Run(ctx)
				}
				if err != nil {
					errs[i] = fmt.Errorf("sim: run %d: %w", i, err)
				}
			}
		}()
	}
dispatch:
	for i := range cfgs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Stop handing out work; everything not yet dispatched fails
			// uniformly so the joined error accounts for the whole batch.
			for j := i; j < len(cfgs); j++ {
				errs[j] = fmt.Errorf("sim: run %d not started: %w", j, runctl.Cancelled(ctx))
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	var agg Agg
	for i := range results {
		if errs[i] == nil {
			agg.SimCycles += results[i].Cycles
		}
	}
	agg.WallTime = time.Since(start)
	if sec := agg.WallTime.Seconds(); sec > 0 {
		agg.CyclesPerSec = float64(agg.SimCycles) / sec
	}
	return results, agg, errors.Join(errs...)
}
