package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// RunMany executes one simulation per config concurrently and returns the
// results in input order. Each simulation is fully independent (its own
// simulator, PRNG streams and statistics), so the output is bit-identical to
// running them sequentially. workers <= 0 uses GOMAXPROCS.
func RunMany(cfgs []Config, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s, err := New(cfgs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = s.Run()
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sim: run %d: %w", i, err)
		}
	}
	return results, nil
}
