package sim

import (
	"testing"

	"explink/internal/model"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func TestO1TurnRuns(t *testing.T) {
	cfg := quickCfg(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.02)
	cfg.Routing = RoutingO1Turn
	res := mustRun(t, cfg)
	if !res.Drained || res.DeadlockSuspected {
		t.Fatalf("O1TURN run unhealthy: %v", res)
	}
	if res.Counts.PacketsInjected != res.Counts.PacketsEjected {
		t.Fatal("conservation violated under O1TURN")
	}
}

func TestO1TurnMatchesXYAtLowLoad(t *testing.T) {
	// Section 4.2: the difference between DOR and adaptive routing is
	// negligible at low loads. Both modes must agree within a few percent.
	base := quickCfg(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.02)
	xy := mustRun(t, base)
	o1cfg := base
	o1cfg.Routing = RoutingO1Turn
	o1 := mustRun(t, o1cfg)
	diff := (o1.AvgPacketLatency - xy.AvgPacketLatency) / xy.AvgPacketLatency
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("XY %.2f vs O1TURN %.2f: %.1f%% apart", xy.AvgPacketLatency, o1.AvgPacketLatency, 100*diff)
	}
}

func TestO1TurnZeroLoadPairLatency(t *testing.T) {
	// A single flow on a mesh has identical XY and YX path lengths, so the
	// zero-load latency must match DOR exactly.
	cfg := quickCfg(topo.Mesh(4), 1, pairPattern{Src: 0, Dst: 15}, 0.002)
	cfg.Routing = RoutingO1Turn
	cfg.Mix = []model.PacketClass{{Name: "only", Bits: 128, Frac: 1}}
	cfg.Measure = 20000
	res := mustRun(t, cfg)
	want := 24 + 3 + 1 + 1
	if res.P95Latency != want {
		t.Fatalf("O1TURN zero-load latency %d, want %d", res.P95Latency, want)
	}
	if res.AvgContentionPerHop > 0.02 {
		t.Fatalf("contention %.3f at zero load", res.AvgContentionPerHop)
	}
}

func TestO1TurnNoDeadlockUnderLoad(t *testing.T) {
	// The VC class partition must keep the CDG acyclic even saturated, on
	// express topologies too.
	for _, tc := range []struct {
		tp topo.Topology
		c  int
	}{
		{topo.Mesh(4), 1},
		{topo.HFB(8), 4},
	} {
		cfg := quickCfg(tc.tp, tc.c, traffic.UniformRandom(tc.tp.N()), 0.5)
		cfg.Routing = RoutingO1Turn
		cfg.Measure = 3000
		cfg.Drain = 3000
		res := mustRun(t, cfg)
		if res.DeadlockSuspected {
			t.Fatalf("%s: deadlock under O1TURN", tc.tp.Name)
		}
	}
}

func TestO1TurnRequiresTwoVCs(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.02)
	cfg.Routing = RoutingO1Turn
	cfg.VCs = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("O1TURN with one VC accepted")
	}
}

func TestO1TurnImprovesTransposeThroughput(t *testing.T) {
	// Transpose concentrates XY traffic on few columns; O1TURN's path
	// diversity is the classic fix. At a rate above XY's transpose
	// saturation, O1TURN must deliver lower latency or strictly more
	// throughput.
	if testing.Short() {
		t.Skip("throughput comparison in short mode")
	}
	base := quickCfg(topo.Mesh(8), 1, traffic.Transpose(8), 0.12)
	base.Measure = 4000
	base.Drain = 8000
	xy := mustRun(t, base)
	o1cfg := base
	o1cfg.Routing = RoutingO1Turn
	o1 := mustRun(t, o1cfg)
	if o1.ThroughputPackets <= xy.ThroughputPackets && o1.AvgPacketLatency >= xy.AvgPacketLatency {
		t.Fatalf("O1TURN no better on transpose: xy thr=%.4f lat=%.1f, o1 thr=%.4f lat=%.1f",
			xy.ThroughputPackets, xy.AvgPacketLatency, o1.ThroughputPackets, o1.AvgPacketLatency)
	}
}

func TestBypassZeroLoadLatency(t *testing.T) {
	// With bypassing, every hop of an isolated packet costs 1+L instead of
	// 3+L: the corner-to-corner 4x4 flow drops from 24 to 12 cycles of head
	// latency. End-to-end: head 12 + eject(1+... the ejection hop also
	// bypasses) — pin the measured value and its distance below the
	// non-bypass run.
	mk := func(bypass bool) Result {
		cfg := quickCfg(topo.Mesh(4), 1, pairPattern{Src: 0, Dst: 15}, 0.002)
		cfg.Mix = []model.PacketClass{{Name: "only", Bits: 128, Frac: 1}}
		cfg.PipelineBypass = bypass
		cfg.Measure = 20000
		return mustRun(t, cfg)
	}
	plain := mk(false)
	byp := mk(true)
	// 6 hops save 2 cycles each, and the ejection pipeline saves 2 more.
	wantDelta := 6*2 + 2
	if got := plain.P95Latency - byp.P95Latency; got != wantDelta {
		t.Fatalf("bypass saved %d cycles, want %d (plain %d, bypass %d)",
			got, wantDelta, plain.P95Latency, byp.P95Latency)
	}
}

func TestBypassDegradesUnderLoad(t *testing.T) {
	// The bypass only fires at idle routers, so its relative benefit must
	// shrink as load grows.
	latAt := func(rate float64, bypass bool) float64 {
		cfg := quickCfg(topo.Mesh(8), 1, traffic.UniformRandom(8), rate)
		cfg.PipelineBypass = bypass
		cfg.Measure = 3000
		return mustRun(t, cfg).AvgPacketLatency
	}
	lowGain := latAt(0.005, false) - latAt(0.005, true)
	highGain := latAt(0.15, false) - latAt(0.15, true)
	if highGain >= lowGain {
		t.Fatalf("bypass gain did not shrink with load: low %.2f, high %.2f", lowGain, highGain)
	}
}
