// Package sim is a from-scratch cycle-accurate network-on-chip simulator,
// standing in for the gem5+GARNET infrastructure of the paper's evaluation
// (Section 5.1). It models the canonical router the paper assumes: a 3-stage
// credit-based wormhole pipeline with virtual channels, table-driven
// dimension-order routing with express links, repeatered multi-cycle express
// channels, and per-node network interfaces with source queues.
//
// Timing convention (validated against the analytic model by tests): a flit
// written into an input buffer at cycle t becomes eligible for switch
// allocation at t + (RouterStages - 1); winning at cycle s it is delivered
// into the next input buffer at s + 1 + L for a link of length L. The
// minimum per-hop head latency is therefore RouterStages + L cycles, matching
// Eq. (1)'s H·Tr + D·Tl with Tr = RouterStages and Tl = 1.
package sim

import (
	"fmt"

	"explink/internal/model"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// RoutingMode selects the routing algorithm.
type RoutingMode int

const (
	// RoutingXY is the paper's dimension-order routing: X first, then Y.
	RoutingXY RoutingMode = iota
	// RoutingO1Turn randomizes each packet between XY and YX, with the
	// virtual channels partitioned into two classes (lower half for XY,
	// upper half for YX) so the channel dependency graph stays acyclic.
	// It implements the adaptive-vs-DOR comparison of Section 4.2.
	RoutingO1Turn
)

// Config describes one simulation run.
type Config struct {
	// Topo is the network under test.
	Topo topo.Topology
	// LinkLimit is the cross-section budget C the topology was designed for;
	// it determines the link width through BW when WidthBits is zero.
	LinkLimit int
	// WidthBits is the flit width b. Zero means derive from BW and LinkLimit.
	WidthBits int
	// BW is the bisection budget (defaults to the paper's 256-bit baseline).
	BW model.Bandwidth
	// Mix is the packet-size population (defaults to the paper's 1:4 mix).
	Mix []model.PacketClass
	// RouterStages is the router pipeline depth in cycles (default 3).
	RouterStages int
	// VCs is the number of virtual channels per input port (default 4).
	VCs int
	// BufBitsPerRouter is the total input buffering per router in bits; it is
	// held constant across schemes per Section 4.6 (default 5·4·4·256 =
	// 20480: a mesh router with 4-flit-deep VCs).
	BufBitsPerRouter int
	// InjectionRate is the packet injection rate per node per cycle.
	InjectionRate float64
	// Pattern chooses packet destinations.
	Pattern traffic.Pattern
	// Seed drives all randomness in the run.
	Seed uint64
	// Warmup, Measure and Drain are the phase lengths in cycles: statistics
	// cover packets created during the measurement window; after it, the
	// simulator stops injecting and runs up to Drain extra cycles to flush
	// tagged packets.
	Warmup, Measure, Drain int
	// ProgressTimeout flags a suspected deadlock when no flit moves for this
	// many cycles while traffic is in flight (default 10000).
	ProgressTimeout int
	// Routing selects dimension-order (default) or O1TURN routing.
	Routing RoutingMode
	// PipelineBypass lets a flit arriving at an idle router skip the
	// pipeline stages ahead of switch traversal, modeling virtual express
	// channel-style bypassing (Section 2.1's alternative to physical express
	// links). Per-hop latency drops from RouterStages+L to 1+L when the
	// bypass hits; any contention disables it.
	PipelineBypass bool
	// Trace replaces random traffic generation with a recorded workload:
	// each entry is injected at its cycle regardless of Pattern and
	// InjectionRate. RecordTrace captures the generated workload of this run
	// for later replay; retrieve it with Simulator.RecordedTrace.
	Trace       *Trace
	RecordTrace bool
	// Audit enables the per-cycle invariant auditor: after every cycle the
	// simulator re-derives flit conservation, per-channel credit
	// conservation, active-set/occupancy consistency and route monotonicity
	// from the raw engine state, and Run fails fast with an *AuditError
	// (matching ErrAudit) naming the first violated invariant and the cycle.
	// Auditing only reads engine state, so audited results are bit-identical
	// to unaudited ones; it costs roughly an extra network sweep per cycle.
	Audit bool
	// Concentration is the number of cores sharing each router (default 1).
	// The flattened butterfly of [17] concentrates several cores per router
	// to shrink the network; with Concentration k, every router gets k
	// injection and k ejection ports, node ids range over k·W·H cores, and
	// core c attaches to router c/k. Traffic patterns must be built for the
	// core count (e.g. traffic.UniformRandomN(k*w*h)); geometric patterns
	// like transpose assume one core per router.
	Concentration int
}

// DefaultBufBits is the default per-router buffering budget: the baseline
// mesh router's 5 ports x 4 VCs x 4-flit-deep x 256-bit buffers.
const DefaultBufBits = 5 * 4 * 4 * 256

// NewConfig returns a simulation config with the paper's defaults for the
// given topology, link limit, traffic pattern and injection rate.
func NewConfig(t topo.Topology, linkLimit int, pat traffic.Pattern, rate float64) Config {
	return Config{
		Topo:             t,
		LinkLimit:        linkLimit,
		BW:               model.DefaultBandwidth(),
		Mix:              model.DefaultMix(),
		RouterStages:     3,
		VCs:              4,
		BufBitsPerRouter: DefaultBufBits,
		InjectionRate:    rate,
		Pattern:          pat,
		Seed:             1,
		Warmup:           2000,
		Measure:          10000,
		Drain:            30000,
		ProgressTimeout:  10000,
	}
}

// normalize validates the config and fills derived fields, returning the
// flit width and per-VC buffer depth (in flits) for a router with the given
// number of input ports.
func (c *Config) normalize() error {
	if c.Topo.W < 2 || c.Topo.H < 2 {
		return fmt.Errorf("sim: topology too small (%dx%d)", c.Topo.W, c.Topo.H)
	}
	if c.LinkLimit < 1 {
		return fmt.Errorf("sim: link limit %d", c.LinkLimit)
	}
	if err := c.Topo.Validate(c.LinkLimit); err != nil {
		return err
	}
	if c.BW == (model.Bandwidth{}) {
		c.BW = model.DefaultBandwidth()
	}
	if c.WidthBits == 0 {
		w, err := c.BW.Width(c.LinkLimit)
		if err != nil {
			return err
		}
		c.WidthBits = w
	}
	if c.WidthBits <= 0 {
		// Flit counts divide by the width (flitsForBits, model.FlitsFor): a
		// zero or negative width would divide by zero during trace replay or
		// produce packets with no flits.
		return fmt.Errorf("sim: flit width %d bits must be positive: %w", c.WidthBits, ErrConfig)
	}
	if len(c.Mix) == 0 {
		c.Mix = model.DefaultMix()
	}
	if err := model.ValidateMix(c.Mix); err != nil {
		return err
	}
	if c.RouterStages < 1 {
		c.RouterStages = 3
	}
	if c.VCs < 1 {
		c.VCs = 4
	}
	if c.VCs > 64 {
		// The allocator tracks per-port VC occupancy in a 64-bit mask.
		return fmt.Errorf("sim: %d VCs exceeds the supported maximum of 64", c.VCs)
	}
	if c.BufBitsPerRouter <= 0 {
		c.BufBitsPerRouter = DefaultBufBits
	}
	if c.InjectionRate < 0 || c.InjectionRate > 1 {
		return fmt.Errorf("sim: injection rate %g out of [0,1]", c.InjectionRate)
	}
	if c.Trace != nil {
		k := c.Concentration
		if k == 0 {
			k = 1
		}
		if c.Trace.W != c.Topo.W || c.Trace.H != c.Topo.H || c.Trace.concentration() != k {
			return fmt.Errorf("sim: trace for %dx%dx%d replayed on %dx%dx%d",
				c.Trace.W, c.Trace.H, c.Trace.concentration(), c.Topo.W, c.Topo.H, k)
		}
		if err := c.Trace.Validate(); err != nil {
			return err
		}
	} else if c.Pattern == nil {
		return fmt.Errorf("sim: no traffic pattern")
	}
	if c.Warmup < 0 || c.Measure <= 0 || c.Drain < 0 {
		return fmt.Errorf("sim: bad phase lengths warmup=%d measure=%d drain=%d", c.Warmup, c.Measure, c.Drain)
	}
	if c.ProgressTimeout <= 0 {
		c.ProgressTimeout = 10000
	}
	if c.Routing == RoutingO1Turn && c.VCs < 2 {
		return fmt.Errorf("sim: O1TURN needs at least 2 VCs to partition, got %d", c.VCs)
	}
	if c.Concentration == 0 {
		c.Concentration = 1
	}
	if c.Concentration < 1 || c.Concentration > 16 {
		return fmt.Errorf("sim: concentration %d out of [1,16]", c.Concentration)
	}
	return nil
}

// vcDepth returns the per-VC buffer depth in flits for a router with inPorts
// input ports, derived from the fixed per-router bit budget (Section 4.6:
// "we configure the buffer size of each router to be the same for all
// schemes"). At least 2 flits to keep wormhole flow control live.
func (c *Config) vcDepth(inPorts int) int {
	d := c.BufBitsPerRouter / (inPorts * c.VCs * c.WidthBits)
	if d < 2 {
		d = 2
	}
	return d
}
