package sim

// This file implements the router microarchitecture of Fig. 3: input-buffered
// virtual-channel routers with a lookup-table routing unit, separable
// round-robin VC and switch allocators, and credit-based wormhole flow
// control. Express topologies simply give routers more, narrower ports.

type delivery struct {
	at int64
	f  flit
	vc int
}

type creditEvt struct {
	at int64
	vc int
}

// channel is one directed network link. Express channels have latency equal
// to their Manhattan length (they are segmented into unit-length repeatered
// wires, Section 2.2).
type channel struct {
	latency  int64
	lenUnits int64
	src      *router
	dst      *router
	dstPort  int
	flits    int64      // total flits carried (utilization accounting)
	q        []delivery // FIFO ordered by delivery time
	qHead    int
}

func (ch *channel) push(d delivery) { ch.q = append(ch.q, d) }

// popReady removes and returns the next flit due at or before now.
func (ch *channel) popReady(now int64) (delivery, bool) {
	if ch.qHead >= len(ch.q) {
		return delivery{}, false
	}
	if ch.q[ch.qHead].at > now {
		return delivery{}, false
	}
	d := ch.q[ch.qHead]
	ch.q[ch.qHead] = delivery{} // drop the packet reference
	ch.qHead++
	if ch.qHead == len(ch.q) {
		ch.q = ch.q[:0]
		ch.qHead = 0
	}
	return d, true
}

func (ch *channel) inFlight() int { return len(ch.q) - ch.qHead }

// outPort is one router output: either a network channel or the ejection
// port to the local NI.
type outPort struct {
	ch      *channel // nil for the ejection port
	isEject bool
	credits []int   // free downstream buffer slots per VC
	holder  []int32 // which input VC holds each output VC: inPort<<16|vc, -1 free
	creditQ []creditEvt
	cqHead  int
	rrIn    int // round-robin pointer for the output stage of the allocator
	rrVC    int // round-robin pointer for VC allocation
}

func (o *outPort) pushCredit(e creditEvt) { o.creditQ = append(o.creditQ, e) }

func (o *outPort) drainCredits(now int64) {
	for o.cqHead < len(o.creditQ) && o.creditQ[o.cqHead].at <= now {
		o.credits[o.creditQ[o.cqHead].vc]++
		o.cqHead++
	}
	if o.cqHead == len(o.creditQ) {
		o.creditQ = o.creditQ[:0]
		o.cqHead = 0
	}
}

// vcState is one virtual channel of an input port: its flit FIFO plus the
// route of the packet currently flowing through it.
type vcState struct {
	fifo    vcFIFO
	outPort int32 // -1: head needs route computation
	outVC   int32 // -1: needs VC allocation
}

// inPort is one router input: the injection port (from the local NI) or the
// receiving end of a network channel.
type inPort struct {
	vcs       []vcState
	upOut     *outPort // upstream output port for credit returns (nil if injection)
	upLatency int64
	ni        *nodeIface // non-nil for the injection port
	rrVC      int        // round-robin pointer for the input stage of the allocator
	buffered  int        // flits across this port's VCs; empty ports are skipped
}

// router is one network node's switch.
type router struct {
	id       int
	x, y     int
	in       []inPort
	out      []outPort
	occupied int // buffered flits across all input VCs; idle routers are skipped

	// Routing tables (Fig. 3b): next-hop positions along the row/column and
	// the output port reaching each neighbor.
	rowNext [][]int // rowNext[from][toCol] = next column
	colNext [][]int
	rowOut  []int32 // rowOut[col] = out port index to row neighbor at col, -1 none
	colOut  []int32
}

// routeFlit implements the two-table lookup of Section 4.5.2: XY order, X
// table while the column differs, then the Y table, then ejection. With
// yx set (O1TURN's second class) the dimension order is reversed. dst is a
// core id; with concentration k, out ports [0, k) are the per-core ejection
// ports of the destination router.
func (r *router) routeFlit(dst, w, k int, yx bool) int32 {
	dr := dst / k
	dx, dy := dr%w, dr/w
	if yx {
		if dy != r.y {
			return r.colOut[r.colNext[r.y][dy]]
		}
		if dx != r.x {
			return r.rowOut[r.rowNext[r.x][dx]]
		}
		return int32(dst % k)
	}
	if dx != r.x {
		return r.rowOut[r.rowNext[r.x][dx]]
	}
	if dy != r.y {
		return r.colOut[r.colNext[r.y][dy]]
	}
	return int32(dst % k)
}
