package sim

// This file implements the router microarchitecture of Fig. 3: input-buffered
// virtual-channel routers with a lookup-table routing unit, separable
// round-robin VC and switch allocators, and credit-based wormhole flow
// control. Express topologies simply give routers more, narrower ports.

type delivery struct {
	at int64
	f  flit
	vc int
}

type creditEvt struct {
	at int64
	vc int
}

// channel is one directed network link. Express channels have latency equal
// to their Manhattan length (they are segmented into unit-length repeatered
// wires, Section 2.2).
type channel struct {
	// nextAt caches the front delivery's due time while the queue is
	// non-empty (pushes carry monotonically increasing due times, so the
	// front only changes on push-to-empty and pop). The delivery phase
	// checks it instead of touching the ring storage of channels whose
	// flits are still in flight.
	nextAt   int64
	latency  int64
	lenUnits int64
	idx      int // position in Simulator.channels: the deterministic delivery order
	src      *router
	dst      *router
	dstPort  int
	flits    int64     // total flits carried (utilization accounting)
	q        delivRing // FIFO ordered by delivery time
}

func (ch *channel) push(d delivery) {
	if ch.q.len() == 0 {
		ch.nextAt = d.at
	}
	ch.q.push(d)
}

// popReady removes and returns the next flit due at or before now.
func (ch *channel) popReady(now int64) (delivery, bool) {
	if ch.q.len() == 0 || ch.q.front().at > now {
		return delivery{}, false
	}
	d := ch.q.popFront()
	if ch.q.len() > 0 {
		ch.nextAt = ch.q.front().at
	}
	return d, true
}

func (ch *channel) inFlight() int { return ch.q.len() }

// outPort is one router output: either a network channel or the ejection
// port to the local NI.
type outPort struct {
	ch           *channel // nil for the ejection port
	isEject      bool
	credits      []int   // free downstream buffer slots per VC
	holder       []int32 // which input VC holds each output VC: inPort<<16|vc, -1 free
	creditQ      credRing
	rrIn         int  // round-robin pointer for the output stage of the allocator
	rrVC         int  // round-robin pointer for VC allocation
	reqd         bool // nominated this cycle; cleared during the grant pass
	creditActive bool // on the simulator's pending-credit work list
}

func (o *outPort) drainCredits(now int64) {
	for o.creditQ.len() > 0 && o.creditQ.front().at <= now {
		o.credits[o.creditQ.popFront().vc]++
	}
}

// vcState is one virtual channel of an input port: its flit FIFO plus the
// route of the packet currently flowing through it.
type vcState struct {
	fifo vcFIFO
	// frontReady caches fifo.front().readyAt (maintained on every push to an
	// empty FIFO and every pop), so the per-cycle switch-allocation
	// eligibility check never touches the FIFO storage.
	frontReady int64
	outPort    int32 // -1: head needs route computation
	outVC      int32 // -1: needs VC allocation
}

// inPort is one router input: the injection port (from the local NI) or the
// receiving end of a network channel.
type inPort struct {
	vcs       []vcState
	upOut     *outPort // upstream output port for credit returns (nil if injection)
	upLatency int64
	ni        *nodeIface // non-nil for the injection port
	rrVC      int        // round-robin pointer for the input stage of the allocator
	// occ has bit v set iff vcs[v] holds at least one flit; the allocator
	// iterates set bits instead of scanning every VC. pend (a subset of occ)
	// has bit v set iff the front flit of vcs[v] still needs route
	// computation or VC allocation: mid-packet VCs drop out of the RC/VA
	// loop entirely, which only ever did work on pending fronts.
	occ  uint64
	pend uint64
}

// router is one network node's switch.
type router struct {
	id       int
	x, y     int
	in       []inPort
	out      []outPort
	occupied int // buffered flits across all input VCs; idle routers are skipped

	// portOcc has bit p set iff in[p] buffers at least one flit, letting the
	// allocator visit only non-empty ports. Routers with more input ports
	// than the mask width (wide == true, beyond any paper-scale
	// configuration) skip the mask and take routerCycleWide's scan path.
	portOcc uint64
	inMask  uint64 // low len(in) bits set; masks rotated nomination words
	wide    bool

	// wakeAt lets step skip this router's allocator entirely until the given
	// cycle. routerCycle sets it only when it can prove every earlier cycle
	// is a no-op: no VC was nominated this cycle, and every occupied VC is
	// fully routed and VC-allocated, blocked solely on its front flit's
	// pipeline readyAt — so until the earliest readyAt, re-running the
	// allocator would change no state. Any flit delivery resets it to 0,
	// because a new arrival can need route computation before the cached
	// wake time. Routers on the wide scan path never set it.
	wakeAt int64

	// Routing tables (Fig. 3b): next-hop positions along the row/column and
	// the output port reaching each neighbor.
	rowNext [][]int // rowNext[from][toCol] = next column
	colNext [][]int
	rowOut  []int32 // rowOut[col] = out port index to row neighbor at col, -1 none
	colOut  []int32

	// routeTabs flattens the two-table walk into one dst -> outPort lookup,
	// indexed by dimension order (0 = XY, 1 = YX). Built at New time from
	// routeFlit whenever the footprint is small (always, at paper-scale
	// sizes); nil tables fall back to the two-table walk.
	routeTabs [2][]int32
}

// routeFlit implements the two-table lookup of Section 4.5.2: XY order, X
// table while the column differs, then the Y table, then ejection. With
// yx set (O1TURN's second class) the dimension order is reversed. dst is a
// core id; with concentration k, out ports [0, k) are the per-core ejection
// ports of the destination router.
func (r *router) routeFlit(dst, w, k int, yx bool) int32 {
	dr := dst / k
	dx, dy := dr%w, dr/w
	if yx {
		if dy != r.y {
			return r.colOut[r.colNext[r.y][dy]]
		}
		if dx != r.x {
			return r.rowOut[r.rowNext[r.x][dx]]
		}
		return int32(dst % k)
	}
	if dx != r.x {
		return r.rowOut[r.rowNext[r.x][dx]]
	}
	if dy != r.y {
		return r.colOut[r.colNext[r.y][dy]]
	}
	return int32(dst % k)
}
