package sim

import (
	"fmt"
	"strings"
)

// UtilizationHeatmap renders an ASCII picture of per-link load: one cell per
// router, with the utilization of the busiest channel touching each router
// mapped to a shade. It makes bottlenecks (like the HFB's quadrant boundary)
// visible at a glance in terminal output.
//
// Shades: '.' < 10%, '-' < 25%, '+' < 50%, '#' < 75%, '@' >= 75% of the
// network's busiest channel.
func (s *Simulator) UtilizationHeatmap() string {
	peak := make([]float64, s.nodes)
	maxUtil := 0.0
	for _, c := range s.ChannelStats() {
		for _, id := range []int{c.SrcY*s.w + c.SrcX, c.DstY*s.w + c.DstX} {
			if c.Utilization > peak[id] {
				peak[id] = c.Utilization
			}
		}
		if c.Utilization > maxUtil {
			maxUtil = c.Utilization
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "per-router peak link utilization (network max %.3f):\n", maxUtil)
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			rel := 0.0
			if maxUtil > 0 {
				rel = peak[y*s.w+x] / maxUtil
			}
			b.WriteByte(shadeFor(rel))
			if x+1 < s.w {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shadeFor(rel float64) byte {
	switch {
	case rel < 0.10:
		return '.'
	case rel < 0.25:
		return '-'
	case rel < 0.50:
		return '+'
	case rel < 0.75:
		return '#'
	default:
		return '@'
	}
}
