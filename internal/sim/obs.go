package sim

import (
	"math/bits"
	"sync/atomic"

	"explink/internal/obs"
)

// metricSet holds the simulator's exported instruments. One set is shared by
// every Simulator in the process: counters aggregate across concurrent runs,
// gauges reflect the most recently published snapshot. All instruments are
// nil-safe, but the engine additionally gates every publish on a single
// `met == nil` check so a disabled build pays nothing at all.
type metricSet struct {
	cyclesWarmup  *obs.Counter // sim_cycles_total{phase="warmup"}
	cyclesMeasure *obs.Counter // sim_cycles_total{phase="measure"}
	cyclesDrain   *obs.Counter // sim_cycles_total{phase="drain"}

	flitsInjected  *obs.Counter // sim_flits_injected_total
	flitsDelivered *obs.Counter // sim_flits_delivered_total
	pktsInjected   *obs.Counter // sim_packets_injected_total
	pktsDelivered  *obs.Counter // sim_packets_delivered_total

	runsStarted  *obs.Counter // sim_runs_started_total
	runsFinished *obs.Counter // sim_runs_finished_total
	runTime      *obs.Timer   // sim_run_total / sim_run_seconds_total

	watchdogArmed *obs.Counter // sim_deadlock_watchdog_armed_total
	watchdogFired *obs.Counter // sim_deadlock_watchdog_fired_total

	activeChannels *obs.Gauge // sim_active_channels
	activeRouters  *obs.Gauge // sim_active_routers
	activeNIs      *obs.Gauge // sim_active_nis
	inFlight       *obs.Gauge // sim_in_flight_flits

	cyclesPerSec *obs.FloatGauge // sim_cycles_per_sec

	batchReplicas     *obs.Gauge      // sim_batch_replicas
	batchActive       *obs.Gauge      // sim_batch_replicas_active
	batchCyclesPerSec *obs.FloatGauge // sim_batch_cycles_per_sec
}

// simMet is the process-wide metric set; nil (the default) disables all
// simulator instrumentation.
var simMet atomic.Pointer[metricSet]

// EnableMetrics registers the simulator's metrics on reg and turns on
// periodic publication for every subsequent Run. Publication happens on the
// run loop's existing 512-cycle housekeeping cadence, so the per-cycle hot
// path is untouched: steady-state stepping stays allocation-free and within
// noise of the uninstrumented engine. A nil registry disables metrics again.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		simMet.Store(nil)
		return
	}
	m := &metricSet{
		cyclesWarmup:   reg.Counter("sim_cycles_total", "simulated cycles by phase", obs.L("phase", "warmup")),
		cyclesMeasure:  reg.Counter("sim_cycles_total", "simulated cycles by phase", obs.L("phase", "measure")),
		cyclesDrain:    reg.Counter("sim_cycles_total", "simulated cycles by phase", obs.L("phase", "drain")),
		flitsInjected:  reg.Counter("sim_flits_injected_total", "flits injected into the network"),
		flitsDelivered: reg.Counter("sim_flits_delivered_total", "flits ejected at their destination NI"),
		pktsInjected:   reg.Counter("sim_packets_injected_total", "packets created at source NIs"),
		pktsDelivered:  reg.Counter("sim_packets_delivered_total", "packets fully ejected"),
		runsStarted:    reg.Counter("sim_runs_started_total", "simulation runs started"),
		runsFinished:   reg.Counter("sim_runs_finished_total", "simulation runs finished (any outcome)"),
		runTime:        reg.Timer("sim_run", "simulation run wall time"),
		watchdogArmed:  reg.Counter("sim_deadlock_watchdog_armed_total", "stall episodes that crossed half the deadlock timeout"),
		watchdogFired:  reg.Counter("sim_deadlock_watchdog_fired_total", "deadlock detector firings"),
		activeChannels: reg.Gauge("sim_active_channels", "channels on the active set at last publish"),
		activeRouters:  reg.Gauge("sim_active_routers", "routers on the active set at last publish"),
		activeNIs:      reg.Gauge("sim_active_nis", "NIs on the active set at last publish"),
		inFlight:       reg.Gauge("sim_in_flight_flits", "flits inside routers and channels at last publish"),
		cyclesPerSec:   reg.FloatGauge("sim_cycles_per_sec", "simulated cycles per wall second of the last finished run"),

		batchReplicas:     reg.Gauge("sim_batch_replicas", "replicas in the most recently started batch"),
		batchActive:       reg.Gauge("sim_batch_replicas_active", "batch replicas currently running"),
		batchCyclesPerSec: reg.FloatGauge("sim_batch_cycles_per_sec", "aggregate simulated cycles per wall second of the last finished batch"),
	}
	simMet.Store(m)
}

// popcount sums the set bits of an active-set bitmap.
func popcount(words []uint64) int64 {
	var n int64
	for _, w := range words {
		n += int64(bits.OnesCount64(w))
	}
	return n
}

// phaseSplit attributes the half-open cycle window [from, to) to the warmup,
// measurement and drain phases. Windows are tiny (the publish cadence), so
// exact clamping is cheaper than tracking a phase cursor.
func (s *Simulator) phaseSplit(from, to int64) (warm, meas, drain int64) {
	clamp := func(lo, hi int64) int64 {
		if hi < lo {
			return 0
		}
		return hi - lo
	}
	warm = clamp(max(from, 0), min(to, s.warmEnd))
	meas = clamp(max(from, s.warmEnd), min(to, s.measEnd))
	drain = clamp(max(from, s.measEnd), to)
	return
}

// publishObs pushes the delta since the last publish into the shared metric
// set. Called from Run on the 512-cycle housekeeping cadence and once at run
// end; never from step, so benchmarks that drive step directly see no change.
func (s *Simulator) publishObs() {
	m := s.met
	warm, meas, drain := s.phaseSplit(s.pubCycle, s.now)
	m.cyclesWarmup.Add(warm)
	m.cyclesMeasure.Add(meas)
	m.cyclesDrain.Add(drain)
	s.pubCycle = s.now

	m.flitsInjected.Add(s.counts.FlitsInjected - s.pubCounts.FlitsInjected)
	m.flitsDelivered.Add(s.counts.FlitsEjected - s.pubCounts.FlitsEjected)
	m.pktsInjected.Add(s.counts.PacketsInjected - s.pubCounts.PacketsInjected)
	m.pktsDelivered.Add(s.counts.PacketsEjected - s.pubCounts.PacketsEjected)
	s.pubCounts = s.counts

	m.activeChannels.Set(popcount(s.chAct))
	m.activeRouters.Set(popcount(s.rtrAct))
	m.activeNIs.Set(popcount(s.niAct))
	m.inFlight.Set(s.inFlightFlits)

	// Watchdog arming: count one episode each time a stall crosses half the
	// deadlock timeout with traffic in flight; progress rearms the edge.
	stalled := s.inFlightFlits > 0 && s.now-s.lastProgress > int64(s.cfg.ProgressTimeout)/2
	if stalled && !s.watchdogArmed {
		m.watchdogArmed.Inc()
	}
	s.watchdogArmed = stalled
}
