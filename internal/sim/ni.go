package sim

import (
	"explink/internal/stats"
)

// nodeIface is the per-node network interface: it generates packets per the
// traffic pattern, queues their flits in an unbounded source queue, feeds
// them into the router's injection port under credit flow control (one flit
// per cycle over a one-cycle local link), and sinks ejected flits.
type nodeIface struct {
	id  int
	rng *stats.RNG

	srcQ         flitRing
	curVC        int // VC carrying the packet currently streaming, -1 if none
	credits      []int
	creditQ      credRing
	injector     *router
	inPort       int  // index of the injection inPort on the router
	creditActive bool // on the simulator's pending-credit work list
}

func (ni *nodeIface) queued() int { return ni.srcQ.len() }

func (ni *nodeIface) pushFlits(p *packet) {
	for s := 0; s < p.flits; s++ {
		ni.srcQ.push(flit{pkt: p, seq: int32(s)})
	}
}

func (ni *nodeIface) drainCredits(now int64) {
	for ni.creditQ.len() > 0 && ni.creditQ.front().at <= now {
		ni.credits[ni.creditQ.popFront().vc]++
	}
}

// inject tries to send the head flit of the source queue into the router's
// injection buffer. It returns the sent flit and true on success. The NI
// performs its own VC selection: a head flit claims a VC that currently has
// buffer space; subsequent flits of the packet follow on the same VC
// (wormhole ordering).
func (ni *nodeIface) inject(now int64, s *Simulator) (flit, bool) {
	if ni.srcQ.len() == 0 {
		return flit{}, false
	}
	f := *ni.srcQ.front()
	if f.isHead() && ni.curVC < 0 {
		// Claim a VC with at least one free slot from the packet's routing
		// class, round-robin from the packet id for determinism without bias.
		lo, hi := s.vcClass(f.pkt.yx)
		span := hi - lo
		start := int(f.pkt.id) % span
		for k := 0; k < span; k++ {
			vc := lo + (start+k)%span
			if ni.credits[vc] > 0 {
				ni.curVC = vc
				break
			}
		}
	}
	if ni.curVC < 0 || ni.credits[ni.curVC] <= 0 {
		return flit{}, false
	}
	vc := ni.curVC
	ni.credits[vc]--
	ni.srcQ.popFront()
	if f.isTail() {
		ni.curVC = -1
	}
	// One-cycle local link into the router's injection buffer.
	s.deliverFlit(ni.injector, ni.inPort, delivery{at: now + 1, f: f, vc: vc}, now+1)
	return f, true
}
