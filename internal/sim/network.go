package sim

import (
	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/stats"
	"explink/internal/topo"
)

// maxMaskPorts bounds the input-port occupancy bitmask: routers with more
// input ports take routerCycleWide's scan path instead. A variable (always 64
// in production) so tests can force the scan path on small networks.
var maxMaskPorts = 64

// buildNetwork instantiates routers, channels, NIs and routing tables from
// the topology. Duplicate parallel spans are dropped: the deterministic
// routing tables would never spread load across them, so they only waste
// ports.
func (s *Simulator) buildNetwork() {
	t := s.cfg.Topo
	w, h := t.W, t.H
	k := s.cfg.Concentration
	routers := t.NumRouters()
	s.w, s.h = w, h
	s.k = k
	s.nodes = routers * k // cores

	// Zero-contention routing parameters: the tables must match the analytic
	// model's paths.
	rp := route.Params{PerHop: float64(s.cfg.RouterStages), PerUnit: 1}
	rowPaths := make([]*route.RowPaths, h)
	colPaths := make([]*route.RowPaths, w)
	rows := make([]rowLinks, h)
	cols := make([]rowLinks, w)
	for y := 0; y < h; y++ {
		r := t.Rows[y].Dedupe()
		rowPaths[y] = route.Compute(r, rp)
		rows[y] = linksOf(r)
	}
	for x := 0; x < w; x++ {
		c := t.Cols[x].Dedupe()
		colPaths[x] = route.Compute(c, rp)
		cols[x] = linksOf(c)
	}

	// Pass 0: enumerate the link set in its canonical creation order (router
	// id ascending, row neighbors then column neighbors, ascending position)
	// and size every component store. Routers, ports, channels, VC states and
	// flit buffers are then carved out of one contiguous backing array per
	// kind, so the allocator's per-cycle walk (router -> inPort -> vcState ->
	// bufEntry) stays within a few hot cache lines instead of chasing
	// pointers across scattered heap objects. The subslices are created empty
	// with exact capacity, so the append-style construction below fills them
	// in place and every pointer into a store stays valid.
	type linkRec struct{ src, dst, length int }
	var links []linkRec
	outCount := make([]int, routers)
	inCount := make([]int, routers)
	for id := 0; id < routers; id++ {
		outCount[id] += k
		inCount[id] += k
		x, y := id%w, id/w
		for _, nb := range rows[y].neighbors[x] {
			links = append(links, linkRec{id, y*w + nb, absInt(nb - x)})
			outCount[id]++
			inCount[y*w+nb]++
		}
		for _, nb := range cols[x].neighbors[y] {
			links = append(links, linkRec{id, nb*w + x, absInt(nb - y)})
			outCount[id]++
			inCount[nb*w+x]++
		}
	}
	vcs := s.cfg.VCs
	totOut, totIn, totBuf := 0, 0, 0
	for id := 0; id < routers; id++ {
		totOut += outCount[id]
		totIn += inCount[id]
		totBuf += inCount[id] * vcs * s.cfg.vcDepth(inCount[id])
	}
	routerStore := make([]router, routers)
	chStore := make([]channel, len(links))
	outStore := make([]outPort, totOut)
	inStore := make([]inPort, totIn)
	vcStore := make([]vcState, totIn*vcs)
	bufStore := make([]bufEntry, totBuf)
	credStore := make([]int, totOut*vcs)
	holdStore := negOnes(totOut * vcs)
	niStore := make([]nodeIface, s.nodes)
	niCredStore := make([]int, s.nodes*vcs)

	s.routers = make([]*router, routers)
	s.nis = make([]*nodeIface, s.nodes)
	s.channels = make([]*channel, 0, len(links))
	outOff, inOff := 0, 0
	for id := 0; id < routers; id++ {
		x, y := id%w, id/w
		r := &routerStore[id]
		*r = router{
			id: id, x: x, y: y,
			rowNext: rowPaths[y].Next,
			colNext: colPaths[x].Next,
			rowOut:  negOnes(w),
			colOut:  negOnes(h),
			out:     outStore[outOff : outOff : outOff+outCount[id]],
			in:      inStore[inOff : inOff : inOff+inCount[id]],
		}
		outOff += outCount[id]
		inOff += inCount[id]
		s.routers[id] = r
	}

	// First pass: create output ports and channels; remember, per router, the
	// incoming channels so input ports can be sized afterwards.
	type incoming struct {
		ch *channel
	}
	incomingOf := make([][]incoming, routers)
	chIdx := 0
	addLink := func(src, dst int, length int) {
		sr := s.routers[src]
		ch := &chStore[chIdx]
		chIdx++
		*ch = channel{latency: int64(length), lenUnits: int64(length), src: sr, dst: s.routers[dst],
			idx: len(s.channels)}
		sr.out = append(sr.out, outPort{ch: ch})
		s.channels = append(s.channels, ch)
		incomingOf[dst] = append(incomingOf[dst], incoming{ch: ch})
	}
	for id := 0; id < routers; id++ {
		r := s.routers[id]
		// out[0..k) are the per-core ejection ports.
		for slot := 0; slot < k; slot++ {
			r.out = append(r.out, outPort{isEject: true})
		}
		// Row (X) neighbors, then column (Y) neighbors, in ascending position.
		for _, nb := range rows[r.y].neighbors[r.x] {
			r.rowOut[nb] = int32(len(r.out))
			addLink(id, r.y*w+nb, absInt(nb-r.x))
		}
		for _, nb := range cols[r.x].neighbors[r.y] {
			r.colOut[nb] = int32(len(r.out))
			addLink(id, nb*w+r.x, absInt(nb-r.y))
		}
	}

	// The row/column tables are complete: flatten them into per-router
	// dst -> outPort lookups unless the network is so large the tables would
	// dominate memory (paper-scale networks are nowhere near the cutoff).
	// Under DOR only the XY table is ever consulted, so the YX slot aliases
	// it rather than baking routes no packet takes.
	if routers*s.nodes <= 1<<22 {
		xyStore := make([]int32, routers*s.nodes)
		var yxStore []int32
		if s.cfg.Routing == RoutingO1Turn {
			yxStore = make([]int32, routers*s.nodes)
		}
		for _, r := range s.routers {
			xy := xyStore[r.id*s.nodes : (r.id+1)*s.nodes]
			for dst := range xy {
				xy[dst] = r.routeFlit(dst, w, k, false)
			}
			r.routeTabs[0], r.routeTabs[1] = xy, xy
			if yxStore != nil {
				yx := yxStore[r.id*s.nodes : (r.id+1)*s.nodes]
				for dst := range yx {
					yx[dst] = r.routeFlit(dst, w, k, true)
				}
				r.routeTabs[1] = yx
			}
		}
	}

	// Second pass: input ports (injection first, then one per incoming
	// channel) with depths from the fixed per-router buffer budget, and the
	// matching credit counters on the upstream output ports.
	vcOff, bufOff := 0, 0
	for id := 0; id < routers; id++ {
		r := s.routers[id]
		numIn := k + len(incomingOf[id])
		depth := s.cfg.vcDepth(numIn)
		takeIn := func(upLat int64, ni *nodeIface) {
			vcl := vcStore[vcOff : vcOff+vcs : vcOff+vcs]
			vcOff += vcs
			bufs := bufStore[bufOff : bufOff+vcs*depth]
			bufOff += vcs * depth
			r.in = append(r.in, makeInPort(vcl, bufs, depth, upLat, ni))
		}

		for slot := 0; slot < k; slot++ {
			core := id*k + slot
			ni := &niStore[core]
			*ni = nodeIface{
				id:       core,
				rng:      stats.NewRNG(stats.MixSeed(s.cfg.Seed, uint64(core))),
				curVC:    -1,
				credits:  niCredStore[core*vcs : (core+1)*vcs : (core+1)*vcs],
				injector: r,
				inPort:   slot,
			}
			for v := range ni.credits {
				ni.credits[v] = depth
			}
			s.nis[core] = ni
			takeIn(0, ni)
		}
		for _, inc := range incomingOf[id] {
			takeIn(inc.ch.latency, nil)
			inc.ch.dstPort = len(r.in) - 1
		}
	}

	// Third pass: wire credit returns and credit counters now that both
	// sides exist, size ejection ports, and fix each router's allocator path
	// (occupancy-mask fast path vs. the wide scan).
	credOff := 0
	for id := 0; id < routers; id++ {
		r := s.routers[id]
		if n := len(r.in); n > maxMaskPorts || n > 64 {
			r.wide = true
		} else {
			r.inMask = uint64(1)<<uint(n) - 1
		}
		for oi := range r.out {
			op := &r.out[oi]
			op.credits = credStore[credOff : credOff+vcs : credOff+vcs]
			op.holder = holdStore[credOff : credOff+vcs : credOff+vcs]
			credOff += vcs
			if op.isEject {
				for v := range op.credits {
					op.credits[v] = 1 << 30 // the NI sink never backpressures
				}
				continue
			}
			dst := op.ch.dst
			dstIn := &dst.in[op.ch.dstPort]
			dstIn.upOut = op
			for v := range op.credits {
				op.credits[v] = dstIn.vcs[v].fifo.cap()
			}
		}
	}
	// Preallocate all inner-loop scratch: allocator scratch, the double-
	// buffered active work lists (each bounded by its component count), and
	// a starter packet free list. After this, steady-state step never grows
	// a slice.
	s.inCand = make([]int, s.maxInPorts())
	s.outReq = make([]int, 0, s.maxOutPorts())
	s.vcMask = uint64(1)<<uint(s.cfg.VCs) - 1 // VCs <= 64 enforced by normalize
	numCh := len(s.channels)
	s.chAct = make([]uint64, (numCh+63)/64)
	s.rtrAct = make([]uint64, (routers+63)/64)
	s.niAct = make([]uint64, (s.nodes+63)/64)
	s.creditOuts = make([]*outPort, 0, totOut)
	s.creditNIs = make([]*nodeIface, 0, s.nodes)
	s.pktFree = make([]*packet, 0, 64)

	// Ideal pairwise head latencies for the contention metric (XY order, and
	// the YX mirror when O1TURN is enabled).
	p := model.Params{RouterDelay: float64(s.cfg.RouterStages), LinkDelay: 1, Contention: 0}
	tp := model.ComputeTopoPaths(t, p)
	cores := s.nodes
	s.idealHead = make([][]float64, cores)
	for src := 0; src < cores; src++ {
		s.idealHead[src] = make([]float64, cores)
		for dst := 0; dst < cores; dst++ {
			s.idealHead[src][dst] = tp.PairHead(src/k, dst/k)
		}
	}
	if s.cfg.Routing == RoutingO1Turn {
		s.idealHeadYX = make([][]float64, cores)
		for src := 0; src < cores; src++ {
			s.idealHeadYX[src] = make([]float64, cores)
			sr := src / k
			sx, sy := sr%w, sr/w
			for dst := 0; dst < cores; dst++ {
				dr := dst / k
				dx, dy := dr%w, dr/w
				s.idealHeadYX[src][dst] = colPaths[sx].Dist[sy][dy] + rowPaths[dy].Dist[sx][dx]
			}
		}
	}
}

func makeInPort(vcl []vcState, bufs []bufEntry, depth int, upLat int64, ni *nodeIface) inPort {
	ip := inPort{vcs: vcl, upLatency: upLat, ni: ni}
	for v := range ip.vcs {
		ip.vcs[v] = vcState{
			fifo:    vcFIFO{buf: bufs[v*depth : (v+1)*depth : (v+1)*depth]},
			outPort: -1, outVC: -1,
		}
	}
	return ip
}

// rowLinks caches, per position on a line, the sorted distinct neighbors.
type rowLinks struct {
	neighbors [][]int
}

func linksOf(r topo.Row) rowLinks {
	nb := make([][]int, r.N)
	for i := 0; i < r.N; i++ {
		nb[i] = r.Neighbors(i)
	}
	return rowLinks{neighbors: nb}
}

func negOnes(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (s *Simulator) maxInPorts() int {
	m := 0
	for _, r := range s.routers {
		if len(r.in) > m {
			m = len(r.in)
		}
	}
	return m
}

func (s *Simulator) maxOutPorts() int {
	m := 0
	for _, r := range s.routers {
		if len(r.out) > m {
			m = len(r.out)
		}
	}
	return m
}
