package sim

import (
	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/stats"
	"explink/internal/topo"
)

// maxMaskPorts bounds the input-port occupancy bitmask: routers with more
// input ports take routerCycleWide's scan path instead. A variable (always 64
// in production) so tests can force the scan path on small networks.
var maxMaskPorts = 64

// linkRec describes one directed link of the canonical link enumeration:
// router id ascending, row neighbors then column neighbors, ascending
// position. srcPort / dstPort are the out/in port indices the link occupies
// at its endpoints (both after the k ejection/injection ports).
type linkRec struct {
	src, dst, length int
	srcPort, dstPort int
}

// netShared is everything about a built network that does not depend on the
// seed: the link enumeration, routing tables, ideal-latency matrices, packet
// mix tables, buffer sizing and phase boundaries. It is immutable once built
// and safe for concurrent reads, so one netShared can instantiate any number
// of replica Simulators — differing only by Config.Seed — that share it (the
// structure-of-arrays split behind sim.Batch: shared immutable columns here,
// per-replica mutable state in each Simulator's own arenas).
type netShared struct {
	cfg     Config // normalized; Seed is overridden per replica
	w, h    int
	k       int // cores per router (concentration)
	nodes   int // total cores
	routers int

	rowPaths []*route.RowPaths
	colPaths []*route.RowPaths

	links             []linkRec
	outCount, inCount []int // ports per router, ejection/injection included
	depthOf           []int // per-VC buffer depth per router
	totOut, totIn     int
	totBuf            int
	maxIn, maxOut     int
	rowOutTab         [][]int32 // rowOutTab[id][col] = out port to row neighbor, -1 none
	colOutTab         [][]int32
	routeXY, routeYX  []int32 // flattened dst->outPort tables, nil over the size cutoff
	idealHead         [][]float64
	idealHeadYX       [][]float64 // only populated under O1TURN routing
	mixCum            []float64
	mixFlits          []int
	warmEnd, measEnd  int64
	hardEnd           int64
}

// newShared validates and defaults the config, then builds the shared
// network description. Duplicate parallel spans are dropped: the
// deterministic routing tables would never spread load across them, so they
// only waste ports.
func newShared(cfg Config) (*netShared, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := cfg.Topo
	w, h := t.W, t.H
	k := cfg.Concentration
	routers := t.NumRouters()
	sh := &netShared{
		cfg: cfg, w: w, h: h, k: k,
		nodes: routers * k, routers: routers,
	}

	// Zero-contention routing parameters: the tables must match the analytic
	// model's paths.
	rp := route.Params{PerHop: float64(cfg.RouterStages), PerUnit: 1}
	sh.rowPaths = make([]*route.RowPaths, h)
	sh.colPaths = make([]*route.RowPaths, w)
	rows := make([]rowLinks, h)
	cols := make([]rowLinks, w)
	for y := 0; y < h; y++ {
		r := t.Rows[y].Dedupe()
		sh.rowPaths[y] = route.Compute(r, rp)
		rows[y] = linksOf(r)
	}
	for x := 0; x < w; x++ {
		c := t.Cols[x].Dedupe()
		sh.colPaths[x] = route.Compute(c, rp)
		cols[x] = linksOf(c)
	}

	// Enumerate the link set in its canonical creation order and assign every
	// link its port indices at both endpoints: out ports are the k ejection
	// ports followed by this router's outgoing links in enumeration order, in
	// ports the k injection ports followed by incoming links in global
	// arrival (enumeration) order.
	sh.outCount = make([]int, routers)
	sh.inCount = make([]int, routers)
	sh.rowOutTab = make([][]int32, routers)
	sh.colOutTab = make([][]int32, routers)
	for id := 0; id < routers; id++ {
		sh.outCount[id] = k
		sh.inCount[id] = k
		sh.rowOutTab[id] = negOnes(w)
		sh.colOutTab[id] = negOnes(h)
	}
	for id := 0; id < routers; id++ {
		x, y := id%w, id/w
		for _, nb := range rows[y].neighbors[x] {
			dst := y*w + nb
			sh.rowOutTab[id][nb] = int32(sh.outCount[id])
			sh.links = append(sh.links, linkRec{
				src: id, dst: dst, length: absInt(nb - x),
				srcPort: sh.outCount[id], dstPort: sh.inCount[dst],
			})
			sh.outCount[id]++
			sh.inCount[dst]++
		}
		for _, nb := range cols[x].neighbors[y] {
			dst := nb*w + x
			sh.colOutTab[id][nb] = int32(sh.outCount[id])
			sh.links = append(sh.links, linkRec{
				src: id, dst: dst, length: absInt(nb - y),
				srcPort: sh.outCount[id], dstPort: sh.inCount[dst],
			})
			sh.outCount[id]++
			sh.inCount[dst]++
		}
	}
	vcs := cfg.VCs
	sh.depthOf = make([]int, routers)
	for id := 0; id < routers; id++ {
		sh.totOut += sh.outCount[id]
		sh.totIn += sh.inCount[id]
		sh.depthOf[id] = cfg.vcDepth(sh.inCount[id])
		sh.totBuf += sh.inCount[id] * vcs * sh.depthOf[id]
		if sh.inCount[id] > sh.maxIn {
			sh.maxIn = sh.inCount[id]
		}
		if sh.outCount[id] > sh.maxOut {
			sh.maxOut = sh.outCount[id]
		}
	}

	// The row/column tables are complete: flatten them into per-router
	// dst -> outPort lookups unless the network is so large the tables would
	// dominate memory (paper-scale networks are nowhere near the cutoff).
	// Under DOR only the XY table is ever consulted, so the YX slot aliases
	// it rather than baking routes no packet takes.
	if routers*sh.nodes <= 1<<22 {
		sh.routeXY = make([]int32, routers*sh.nodes)
		if cfg.Routing == RoutingO1Turn {
			sh.routeYX = make([]int32, routers*sh.nodes)
		}
		for id := 0; id < routers; id++ {
			xy := sh.routeXY[id*sh.nodes : (id+1)*sh.nodes]
			for dst := range xy {
				xy[dst] = sh.routeOf(id, dst, false)
			}
			if sh.routeYX != nil {
				yx := sh.routeYX[id*sh.nodes : (id+1)*sh.nodes]
				for dst := range yx {
					yx[dst] = sh.routeOf(id, dst, true)
				}
			}
		}
	}

	// Packet-size mix lookup tables.
	sh.mixCum = make([]float64, len(cfg.Mix))
	sh.mixFlits = make([]int, len(cfg.Mix))
	cum := 0.0
	for i, c := range cfg.Mix {
		cum += c.Frac
		sh.mixCum[i] = cum
		sh.mixFlits[i] = model.FlitsFor(c.Bits, cfg.WidthBits)
	}
	sh.warmEnd = int64(cfg.Warmup)
	sh.measEnd = int64(cfg.Warmup + cfg.Measure)
	sh.hardEnd = sh.measEnd + int64(cfg.Drain)

	// Ideal pairwise head latencies for the contention metric (XY order, and
	// the YX mirror when O1TURN is enabled).
	p := model.Params{RouterDelay: float64(cfg.RouterStages), LinkDelay: 1, Contention: 0}
	tp := model.ComputeTopoPaths(t, p)
	cores := sh.nodes
	sh.idealHead = make([][]float64, cores)
	for src := 0; src < cores; src++ {
		sh.idealHead[src] = make([]float64, cores)
		for dst := 0; dst < cores; dst++ {
			sh.idealHead[src][dst] = tp.PairHead(src/k, dst/k)
		}
	}
	if cfg.Routing == RoutingO1Turn {
		sh.idealHeadYX = make([][]float64, cores)
		for src := 0; src < cores; src++ {
			sh.idealHeadYX[src] = make([]float64, cores)
			sr := src / k
			sx, sy := sr%w, sr/w
			for dst := 0; dst < cores; dst++ {
				dr := dst / k
				dx, dy := dr%w, dr/w
				sh.idealHeadYX[src][dst] = sh.colPaths[sx].Dist[sy][dy] + sh.rowPaths[dy].Dist[sx][dx]
			}
		}
	}
	return sh, nil
}

// routeOf mirrors router.routeFlit over the shared tables, so the flattened
// route tables can be baked once per network instead of once per replica.
func (sh *netShared) routeOf(id, dst int, yx bool) int32 {
	w, k := sh.w, sh.k
	x, y := id%w, id/w
	dr := dst / k
	dx, dy := dr%w, dr/w
	if yx {
		if dy != y {
			return sh.colOutTab[id][sh.colPaths[x].Next[y][dy]]
		}
		if dx != x {
			return sh.rowOutTab[id][sh.rowPaths[y].Next[x][dx]]
		}
		return int32(dst % k)
	}
	if dx != x {
		return sh.rowOutTab[id][sh.rowPaths[y].Next[x][dx]]
	}
	if dy != y {
		return sh.colOutTab[id][sh.colPaths[x].Next[y][dy]]
	}
	return int32(dst % k)
}

// instantiate builds one runnable replica over the shared network
// description, seeded with the given seed. All mutable state — routers,
// ports, channels, VC states, flit buffers, credit counters, NIs — is carved
// out of fresh contiguous backing arrays (one per kind, replica-major), so a
// replica stepping touches only its own few hot cache lines; everything
// seed-independent (routing tables, ideal-latency matrices, mix tables) is
// referenced from the shared side. The wiring order matches the original
// single-run construction exactly, so instantiate(cfg.Seed) is bit-identical
// to the pre-split New.
func (sh *netShared) instantiate(seed uint64) *Simulator {
	cfg := sh.cfg
	cfg.Seed = seed
	s := &Simulator{
		cfg:         cfg,
		col:         newCollector(),
		rng:         stats.NewRNG(seed),
		w:           sh.w,
		h:           sh.h,
		k:           sh.k,
		nodes:       sh.nodes,
		idealHead:   sh.idealHead,
		idealHeadYX: sh.idealHeadYX,
		mixCum:      sh.mixCum,
		mixFlits:    sh.mixFlits,
		warmEnd:     sh.warmEnd,
		measEnd:     sh.measEnd,
		hardEnd:     sh.hardEnd,
	}
	routers, vcs, k := sh.routers, cfg.VCs, sh.k
	routerStore := make([]router, routers)
	chStore := make([]channel, len(sh.links))
	outStore := make([]outPort, sh.totOut)
	inStore := make([]inPort, sh.totIn)
	vcStore := make([]vcState, sh.totIn*vcs)
	bufStore := make([]bufEntry, sh.totBuf)
	credStore := make([]int, sh.totOut*vcs)
	holdStore := negOnes(sh.totOut * vcs)
	niStore := make([]nodeIface, sh.nodes)
	niCredStore := make([]int, sh.nodes*vcs)

	s.routers = make([]*router, routers)
	s.nis = make([]*nodeIface, sh.nodes)
	s.channels = make([]*channel, len(sh.links))
	outOff, inOff := 0, 0
	for id := 0; id < routers; id++ {
		r := &routerStore[id]
		*r = router{
			id: id, x: id % sh.w, y: id / sh.w,
			rowNext: sh.rowPaths[id/sh.w].Next,
			colNext: sh.colPaths[id%sh.w].Next,
			rowOut:  sh.rowOutTab[id],
			colOut:  sh.colOutTab[id],
			out:     outStore[outOff : outOff+sh.outCount[id] : outOff+sh.outCount[id]],
			in:      inStore[inOff : inOff+sh.inCount[id] : inOff+sh.inCount[id]],
		}
		outOff += sh.outCount[id]
		inOff += sh.inCount[id]
		if sh.routeXY != nil {
			xy := sh.routeXY[id*sh.nodes : (id+1)*sh.nodes]
			r.routeTabs[0], r.routeTabs[1] = xy, xy
			if sh.routeYX != nil {
				r.routeTabs[1] = sh.routeYX[id*sh.nodes : (id+1)*sh.nodes]
			}
		}
		if n := sh.inCount[id]; n > maxMaskPorts || n > 64 {
			r.wide = true
		} else {
			r.inMask = uint64(1)<<uint(n) - 1
		}
		for oi := 0; oi < k; oi++ {
			r.out[oi].isEject = true
		}
		s.routers[id] = r
	}
	for li := range sh.links {
		lr := &sh.links[li]
		ch := &chStore[li]
		*ch = channel{
			latency: int64(lr.length), lenUnits: int64(lr.length), idx: li,
			src: s.routers[lr.src], dst: s.routers[lr.dst], dstPort: lr.dstPort,
		}
		s.channels[li] = ch
		s.routers[lr.src].out[lr.srcPort].ch = ch
	}

	// Input ports: injection first, then one per incoming channel, with
	// depths from the fixed per-router buffer budget. VC states and flit
	// buffers are carved router-by-router in port order, matching the
	// original construction's arena layout.
	vcOff, bufOff := 0, 0
	for id := 0; id < routers; id++ {
		r := s.routers[id]
		depth := sh.depthOf[id]
		for pi := range r.in {
			vcl := vcStore[vcOff : vcOff+vcs : vcOff+vcs]
			vcOff += vcs
			bufs := bufStore[bufOff : bufOff+vcs*depth]
			bufOff += vcs * depth
			var ni *nodeIface
			if pi < k {
				core := id*k + pi
				ni = &niStore[core]
				*ni = nodeIface{
					id:       core,
					rng:      stats.NewRNG(stats.MixSeed(seed, uint64(core))),
					curVC:    -1,
					credits:  niCredStore[core*vcs : (core+1)*vcs : (core+1)*vcs],
					injector: r,
					inPort:   pi,
				}
				for v := range ni.credits {
					ni.credits[v] = depth
				}
				s.nis[core] = ni
			}
			r.in[pi] = makeInPort(vcl, bufs, depth, 0, ni)
		}
	}
	for li := range sh.links {
		lr := &sh.links[li]
		s.routers[lr.dst].in[lr.dstPort].upLatency = int64(lr.length)
	}

	// Wire credit returns and credit counters now that both sides exist, and
	// size ejection ports.
	credOff := 0
	for id := 0; id < routers; id++ {
		r := s.routers[id]
		for oi := range r.out {
			op := &r.out[oi]
			op.credits = credStore[credOff : credOff+vcs : credOff+vcs]
			op.holder = holdStore[credOff : credOff+vcs : credOff+vcs]
			credOff += vcs
			if op.isEject {
				for v := range op.credits {
					op.credits[v] = 1 << 30 // the NI sink never backpressures
				}
				continue
			}
			dst := op.ch.dst
			dstIn := &dst.in[op.ch.dstPort]
			dstIn.upOut = op
			for v := range op.credits {
				op.credits[v] = dstIn.vcs[v].fifo.cap()
			}
		}
	}

	// Preallocate all inner-loop scratch: allocator scratch, the double-
	// buffered active work lists (each bounded by its component count), and
	// a starter packet free list. After this, steady-state step never grows
	// a slice.
	s.inCand = make([]int, sh.maxIn)
	s.outReq = make([]int, 0, sh.maxOut)
	s.vcMask = uint64(1)<<uint(vcs) - 1 // VCs <= 64 enforced by normalize
	s.chAct = make([]uint64, (len(sh.links)+63)/64)
	s.rtrAct = make([]uint64, (routers+63)/64)
	s.niAct = make([]uint64, (sh.nodes+63)/64)
	s.creditOuts = make([]*outPort, 0, sh.totOut)
	s.creditNIs = make([]*nodeIface, 0, sh.nodes)
	s.pktFree = make([]*packet, 0, 64)

	if cfg.Audit {
		s.audit = newAuditor(s)
	}
	s.met = simMet.Load()
	return s
}

func makeInPort(vcl []vcState, bufs []bufEntry, depth int, upLat int64, ni *nodeIface) inPort {
	ip := inPort{vcs: vcl, upLatency: upLat, ni: ni}
	for v := range ip.vcs {
		ip.vcs[v] = vcState{
			fifo:    vcFIFO{buf: bufs[v*depth : (v+1)*depth : (v+1)*depth]},
			outPort: -1, outVC: -1,
		}
	}
	return ip
}

// rowLinks caches, per position on a line, the sorted distinct neighbors.
type rowLinks struct {
	neighbors [][]int
}

func linksOf(r topo.Row) rowLinks {
	nb := make([][]int, r.N)
	for i := 0; i < r.N; i++ {
		nb[i] = r.Neighbors(i)
	}
	return rowLinks{neighbors: nb}
}

func negOnes(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
