package sim

import (
	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/stats"
	"explink/internal/topo"
)

// buildNetwork instantiates routers, channels, NIs and routing tables from
// the topology. Duplicate parallel spans are dropped: the deterministic
// routing tables would never spread load across them, so they only waste
// ports.
func (s *Simulator) buildNetwork() {
	t := s.cfg.Topo
	w, h := t.W, t.H
	k := s.cfg.Concentration
	routers := t.NumRouters()
	s.w, s.h = w, h
	s.k = k
	s.nodes = routers * k // cores

	// Zero-contention routing parameters: the tables must match the analytic
	// model's paths.
	rp := route.Params{PerHop: float64(s.cfg.RouterStages), PerUnit: 1}
	rowPaths := make([]*route.RowPaths, h)
	colPaths := make([]*route.RowPaths, w)
	rows := make([]rowLinks, h)
	cols := make([]rowLinks, w)
	for y := 0; y < h; y++ {
		r := t.Rows[y].Dedupe()
		rowPaths[y] = route.Compute(r, rp)
		rows[y] = linksOf(r)
	}
	for x := 0; x < w; x++ {
		c := t.Cols[x].Dedupe()
		colPaths[x] = route.Compute(c, rp)
		cols[x] = linksOf(c)
	}

	s.routers = make([]*router, routers)
	s.nis = make([]*nodeIface, s.nodes)
	for id := 0; id < routers; id++ {
		x, y := id%w, id/w
		r := &router{
			id: id, x: x, y: y,
			rowNext: rowPaths[y].Next,
			colNext: colPaths[x].Next,
			rowOut:  negOnes(w),
			colOut:  negOnes(h),
		}
		s.routers[id] = r
	}

	// First pass: create output ports and channels; remember, per router, the
	// incoming channels so input ports can be sized afterwards.
	type incoming struct {
		ch *channel
	}
	incomingOf := make([][]incoming, routers)
	addLink := func(src, dst int, length int) {
		sr := s.routers[src]
		ch := &channel{latency: int64(length), lenUnits: int64(length), src: sr, dst: s.routers[dst]}
		op := outPort{ch: ch}
		sr.out = append(sr.out, op)
		s.channels = append(s.channels, ch)
		incomingOf[dst] = append(incomingOf[dst], incoming{ch: ch})
	}
	for id := 0; id < routers; id++ {
		r := s.routers[id]
		// out[0..k) are the per-core ejection ports.
		for slot := 0; slot < k; slot++ {
			r.out = append(r.out, outPort{isEject: true})
		}
		// Row (X) neighbors, then column (Y) neighbors, in ascending position.
		for _, nb := range rows[r.y].neighbors[r.x] {
			r.rowOut[nb] = int32(len(r.out))
			addLink(id, r.y*w+nb, absInt(nb-r.x))
		}
		for _, nb := range cols[r.x].neighbors[r.y] {
			r.colOut[nb] = int32(len(r.out))
			addLink(id, nb*w+r.x, absInt(nb-r.y))
		}
	}

	// Second pass: input ports (injection first, then one per incoming
	// channel) with depths from the fixed per-router buffer budget, and the
	// matching credit counters on the upstream output ports.
	for id := 0; id < routers; id++ {
		r := s.routers[id]
		numIn := k + len(incomingOf[id])
		depth := s.cfg.vcDepth(numIn)
		r.in = make([]inPort, 0, numIn)

		for slot := 0; slot < k; slot++ {
			core := id*k + slot
			ni := &nodeIface{
				id:       core,
				rng:      stats.NewRNG(stats.MixSeed(s.cfg.Seed, uint64(core))),
				curVC:    -1,
				credits:  make([]int, s.cfg.VCs),
				injector: r,
				inPort:   slot,
			}
			for v := range ni.credits {
				ni.credits[v] = depth
			}
			s.nis[core] = ni
			r.in = append(r.in, makeInPort(s.cfg.VCs, depth, nil, 0, ni))
		}
		for _, inc := range incomingOf[id] {
			r.in = append(r.in, makeInPort(s.cfg.VCs, depth, nil, inc.ch.latency, nil))
			inc.ch.dstPort = len(r.in) - 1
		}
	}

	// Third pass: wire credit returns and credit counters now that both
	// sides exist, and size ejection ports.
	for id := 0; id < routers; id++ {
		r := s.routers[id]
		for oi := range r.out {
			op := &r.out[oi]
			if op.isEject {
				op.credits = make([]int, s.cfg.VCs)
				op.holder = negOnes32(s.cfg.VCs)
				for v := range op.credits {
					op.credits[v] = 1 << 30 // the NI sink never backpressures
				}
				continue
			}
			dst := op.ch.dst
			dstIn := &dst.in[op.ch.dstPort]
			dstIn.upOut = op
			op.credits = make([]int, s.cfg.VCs)
			op.holder = negOnes32(s.cfg.VCs)
			for v := range op.credits {
				op.credits[v] = dstIn.vcs[v].fifo.cap()
			}
		}
	}
	s.inCand = make([]int, s.maxInPorts())

	// Ideal pairwise head latencies for the contention metric (XY order, and
	// the YX mirror when O1TURN is enabled).
	p := model.Params{RouterDelay: float64(s.cfg.RouterStages), LinkDelay: 1, Contention: 0}
	tp := model.ComputeTopoPaths(t, p)
	cores := s.nodes
	s.idealHead = make([][]float64, cores)
	for src := 0; src < cores; src++ {
		s.idealHead[src] = make([]float64, cores)
		for dst := 0; dst < cores; dst++ {
			s.idealHead[src][dst] = tp.PairHead(src/k, dst/k)
		}
	}
	if s.cfg.Routing == RoutingO1Turn {
		s.idealHeadYX = make([][]float64, cores)
		for src := 0; src < cores; src++ {
			s.idealHeadYX[src] = make([]float64, cores)
			sr := src / k
			sx, sy := sr%w, sr/w
			for dst := 0; dst < cores; dst++ {
				dr := dst / k
				dx, dy := dr%w, dr/w
				s.idealHeadYX[src][dst] = colPaths[sx].Dist[sy][dy] + rowPaths[dy].Dist[sx][dx]
			}
		}
	}
}

func makeInPort(vcs, depth int, up *outPort, upLat int64, ni *nodeIface) inPort {
	ip := inPort{vcs: make([]vcState, vcs), upOut: up, upLatency: upLat, ni: ni}
	for v := range ip.vcs {
		ip.vcs[v] = vcState{fifo: newVCFIFO(depth), outPort: -1, outVC: -1}
	}
	return ip
}

// rowLinks caches, per position on a line, the sorted distinct neighbors.
type rowLinks struct {
	neighbors [][]int
}

func linksOf(r topo.Row) rowLinks {
	nb := make([][]int, r.N)
	for i := 0; i < r.N; i++ {
		nb[i] = r.Neighbors(i)
	}
	return rowLinks{neighbors: nb}
}

func negOnes(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

func negOnes32(n int) []int32 { return negOnes(n) }

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (s *Simulator) maxInPorts() int {
	m := 0
	for _, r := range s.routers {
		if len(r.in) > m {
			m = len(r.in)
		}
	}
	return m
}
