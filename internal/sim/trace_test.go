package sim

import (
	"bytes"
	"context"
	"testing"

	"explink/internal/topo"
	"explink/internal/traffic"
)

func TestTraceRecordReplayIdentical(t *testing.T) {
	// Record a random run, then replay the trace: the datapath is
	// deterministic once the workload is fixed, so every statistic must
	// match exactly.
	cfg := quickCfg(topo.HFB(8), 4, traffic.UniformRandom(8), 0.02)
	cfg.RecordTrace = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := s.RecordedTrace()
	if tr == nil || len(tr.Entries) == 0 {
		t.Fatal("nothing recorded")
	}
	if int64(len(tr.Entries)) != orig.Counts.PacketsInjected {
		t.Fatalf("recorded %d entries, injected %d", len(tr.Entries), orig.Counts.PacketsInjected)
	}

	replayCfg := quickCfg(topo.HFB(8), 4, nil, 0)
	replayCfg.Trace = tr
	s2, err := New(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if replay.AvgPacketLatency != orig.AvgPacketLatency ||
		replay.Counts != orig.Counts ||
		replay.MeasuredPackets != orig.MeasuredPackets {
		t.Fatalf("replay diverged:\norig   %+v\nreplay %+v", orig, replay)
	}
}

func TestTraceSaveLoad(t *testing.T) {
	tr := &Trace{W: 4, H: 4, Entries: []TraceEntry{
		{Cycle: 1, Src: 0, Dst: 5, Bits: 128},
		{Cycle: 3, Src: 2, Dst: 9, Bits: 512},
	}}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 4 || got.H != 4 || len(got.Entries) != 2 || got.Entries[1] != tr.Entries[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestTraceValidate(t *testing.T) {
	bad := []Trace{
		{W: 4, H: 4, Entries: []TraceEntry{{Cycle: 5, Src: 0, Dst: 1, Bits: 128}, {Cycle: 1, Src: 0, Dst: 1, Bits: 128}}}, // unordered
		{W: 4, H: 4, Entries: []TraceEntry{{Cycle: 1, Src: 0, Dst: 16, Bits: 128}}},                                       // dst out of range
		{W: 4, H: 4, Entries: []TraceEntry{{Cycle: 1, Src: 3, Dst: 3, Bits: 128}}},                                        // self
		{W: 4, H: 4, Entries: []TraceEntry{{Cycle: 1, Src: 0, Dst: 1, Bits: 0}}},                                          // zero size
	}
	for i, tr := range bad {
		if tr.Validate() == nil {
			t.Fatalf("bad trace %d accepted", i)
		}
	}
}

func TestTraceSort(t *testing.T) {
	tr := &Trace{W: 4, H: 4, Entries: []TraceEntry{
		{Cycle: 3, Src: 0, Dst: 1, Bits: 128},
		{Cycle: 1, Src: 2, Dst: 3, Bits: 128},
	}}
	tr.Sort()
	if tr.Entries[0].Cycle != 1 {
		t.Fatalf("not sorted: %+v", tr.Entries)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceReplayDeterministicLatency(t *testing.T) {
	// A hand-built two-packet trace on a 4x4 mesh: zero-load latencies are
	// exactly predictable (head 0->15: 24 cycles + 3 + flits + 1).
	tr := &Trace{W: 4, H: 4, Entries: []TraceEntry{
		{Cycle: 600, Src: 0, Dst: 15, Bits: 128},
		{Cycle: 900, Src: 15, Dst: 0, Bits: 512},
	}}
	cfg := quickCfg(topo.Mesh(4), 1, nil, 0)
	cfg.Trace = tr
	res := mustRun(t, cfg)
	if res.MeasuredPackets != 2 {
		t.Fatalf("measured %d packets", res.MeasuredPackets)
	}
	// Short packet: 24+3+1+1 = 29; long: 24+3+2+1 = 30.
	if res.MaxLatency != 30 || res.AvgPacketLatency != 29.5 {
		t.Fatalf("latencies unexpected: max=%d avg=%g", res.MaxLatency, res.AvgPacketLatency)
	}
}

func TestTraceSizeMismatchRejected(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, nil, 0)
	cfg.Trace = &Trace{W: 8, H: 8}
	if _, err := New(cfg); err == nil {
		t.Fatal("trace/topology size mismatch accepted")
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadTrace(bytes.NewBufferString(`{"w":4,"h":4,"entries":[{"cycle":1,"src":0,"dst":99,"bits":128}]}`)); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestRecordedTraceNilWithoutFlag(t *testing.T) {
	cfg := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.01)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.RecordedTrace() != nil {
		t.Fatal("trace returned without RecordTrace")
	}
}
