package sim

import (
	"context"
	"testing"

	"explink/internal/topo"
	"explink/internal/traffic"
)

func TestFindSaturationOptionsValidation(t *testing.T) {
	base := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0)
	for _, opts := range []SaturationOpts{
		{Start: 0, Factor: 2, MaxRate: 1},
		{Start: 0.01, Factor: 1, MaxRate: 1},
		{Start: 0.01, Factor: 2, MaxRate: 0},
	} {
		if _, err := FindSaturation(context.Background(), base, opts); err == nil {
			t.Fatalf("bad opts accepted: %+v", opts)
		}
	}
}

func TestFindSaturationFindsKnee(t *testing.T) {
	base := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0)
	base.Warmup, base.Measure, base.Drain = 300, 2000, 5000
	opts := DefaultSaturationOpts()
	opts.Start = 0.02
	opts.Factor = 2
	opts.Refine = 2
	res, err := FindSaturation(context.Background(), base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("sweep only sampled %d points", len(res.Points))
	}
	// A 4x4 mesh saturates well below 1 packet/node/cycle and well above the
	// probe rate.
	if res.Saturation <= 0.02 || res.Saturation >= 0.8 {
		t.Fatalf("implausible saturation %.4f", res.Saturation)
	}
	if res.SatRate < res.Saturation*0.5 {
		t.Fatalf("offered rate %.4f inconsistent with accepted %.4f", res.SatRate, res.Saturation)
	}
}

func TestFindSaturationProbesMaxRateExactly(t *testing.T) {
	// Regression: with Start=0.02 and Factor=2 the geometric sweep visits
	// 0.04 and then 0.08 > MaxRate=0.05, so the cap itself was never probed
	// and a stable network was reported with the stale 0.04 throughput. The
	// clamped sweep must land its final coarse step exactly on MaxRate.
	base := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0)
	base.Warmup, base.Measure, base.Drain = 300, 1500, 5000
	opts := DefaultSaturationOpts()
	opts.Start = 0.02
	opts.Factor = 2
	opts.MaxRate = 0.05
	res, err := FindSaturation(context.Background(), base, opts)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Points[len(res.Points)-1]
	if last.Rate != opts.MaxRate {
		t.Fatalf("final probe at %g, want exactly MaxRate %g", last.Rate, opts.MaxRate)
	}
	// A 4x4 mesh is stable well above 0.05, so the best stable point is the
	// cap itself, not a lower stale rate.
	if res.SatRate != opts.MaxRate {
		t.Fatalf("reported rate %g, want %g", res.SatRate, opts.MaxRate)
	}
	if res.Saturation <= 0 {
		t.Fatalf("no throughput at the cap: %+v", res)
	}
}

func TestFindSaturationNeverSaturates(t *testing.T) {
	// With MaxRate below the network's knee the sweep must report the best
	// stable point rather than failing.
	base := quickCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0)
	base.Warmup, base.Measure, base.Drain = 300, 1500, 5000
	opts := DefaultSaturationOpts()
	opts.Start = 0.01
	opts.Factor = 2
	opts.MaxRate = 0.04
	res, err := FindSaturation(context.Background(), base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturation <= 0 {
		t.Fatalf("no stable point reported: %+v", res)
	}
}
