package sim

// StepForTest advances the engine exactly one cycle outside the Run loop — a
// hook for external test packages (sim_test) that also need internal/core,
// which transitively imports this package; an in-package test importing core
// would be an import cycle.
func (s *Simulator) StepForTest() {
	s.step()
	s.now++
}
