package sim

import (
	"context"
	"math"
	"testing"

	"explink/internal/model"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func TestRectangularZeroLoad(t *testing.T) {
	// A 8x4 mesh, corner to corner: 7 X hops + 3 Y hops = 10 hops, head
	// 10*(3+1) = 40; latency = 40 + 3 + flits + 1.
	tp := topo.MeshRect(8, 4)
	dst := tp.NodeID(7, 3)
	cfg := quickCfg(tp, 1, pairPattern{Src: 0, Dst: dst}, 0.002)
	cfg.Mix = []model.PacketClass{{Name: "only", Bits: 128, Frac: 1}}
	cfg.Measure = 20000
	res := mustRun(t, cfg)
	want := 40 + 3 + 1 + 1
	if res.P95Latency != want {
		t.Fatalf("rect zero-load latency %d, want %d (%v)", res.P95Latency, want, res)
	}
	if res.AvgHops != 10 {
		t.Fatalf("hops = %g", res.AvgHops)
	}
}

func TestRectangularConservation(t *testing.T) {
	tp := topo.MeshRect(6, 3)
	cfg := quickCfg(tp, 1, traffic.UniformRandomRect(6, 3), 0.02)
	res := mustRun(t, cfg)
	if !res.Drained {
		t.Fatalf("rect run did not drain: %v", res)
	}
	if res.Counts.FlitsInjected != res.Counts.FlitsEjected {
		t.Fatal("flit conservation violated on rectangle")
	}
	if res.MeasuredPackets == 0 {
		t.Fatal("no traffic measured")
	}
}

func TestRectangularExpressSim(t *testing.T) {
	// Express links on the long dimension only: latency must drop vs the
	// plain rectangle, and the sim must agree with the analytic model at
	// near-zero load.
	row := topo.NewRow(8, topo.Span{From: 0, To: 4}, topo.Span{From: 4, To: 7})
	tp := topo.Rect("rect-express", 8, 4, row, topo.MeshRow(4))
	cfg := quickCfg(tp, 2, traffic.UniformRandomRect(8, 4), 0.004)
	res := mustRun(t, cfg)

	plain := quickCfg(topo.MeshRect(8, 4), 1, traffic.UniformRandomRect(8, 4), 0.004)
	plainRes := mustRun(t, plain)
	if res.AvgNetLatency >= plainRes.AvgNetLatency {
		t.Fatalf("express rect %.2f not faster than mesh rect %.2f",
			res.AvgNetLatency, plainRes.AvgNetLatency)
	}

	// Analytic cross-check of the mean head latency.
	p := model.Params{RouterDelay: 3, LinkDelay: 1}
	paths := model.ComputeTopoPaths(tp, p)
	nodes := float64(tp.NumRouters())
	meanNoDiag := paths.MeanHead() * nodes * nodes / (nodes * (nodes - 1))
	ideal := meanNoDiag + 3 + model.MeanFlits(model.DefaultMix(), 128)
	if math.Abs(res.AvgNetLatency-ideal) > 1.0 {
		t.Fatalf("sim %.2f vs analytic %.2f", res.AvgNetLatency, ideal)
	}
}

func TestRectangularTraceRoundTrip(t *testing.T) {
	tp := topo.MeshRect(4, 6)
	cfg := quickCfg(tp, 1, traffic.UniformRandomRect(4, 6), 0.02)
	cfg.RecordTrace = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := s.RecordedTrace()
	if tr.W != 4 || tr.H != 6 {
		t.Fatalf("trace shape %dx%d", tr.W, tr.H)
	}
	replayCfg := quickCfg(tp, 1, nil, 0)
	replayCfg.Trace = tr
	s2, err := New(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if replay.Counts != orig.Counts {
		t.Fatalf("rect replay diverged:\n%+v\n%+v", orig.Counts, replay.Counts)
	}
}
