package sim

import (
	"reflect"
	"testing"
)

// TestWidePathMatchesMasked pins the equivalence of the two allocator
// implementations: forcing maxMaskPorts to zero makes every router take
// routerCycleWide's full-scan path, which must produce bit-identical results
// to the default bitmask-driven path across the whole golden fixture matrix.
func TestWidePathMatchesMasked(t *testing.T) {
	masked := runGolden(t, false)

	old := maxMaskPorts
	maxMaskPorts = 0
	defer func() { maxMaskPorts = old }()
	wide := runGolden(t, false)

	if len(masked) != len(wide) {
		t.Fatalf("case count mismatch: %d masked vs %d wide", len(masked), len(wide))
	}
	for name, want := range masked {
		got, ok := wide[name]
		if !ok {
			t.Errorf("%s: missing from wide-path run", name)
			continue
		}
		if !reflect.DeepEqual(got.WithoutTiming(), want.WithoutTiming()) {
			t.Errorf("%s: wide path diverged\nmasked: %+v\nwide:   %+v",
				name, want.WithoutTiming(), got.WithoutTiming())
		}
	}
}
