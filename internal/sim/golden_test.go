package sim

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"explink/internal/topo"
	"explink/internal/traffic"
)

// The golden fixtures pin the simulator's exact behaviour: every Result field
// and every Counts field of the matrix below was recorded from the seed
// engine (pre-active-set), and any engine change must reproduce them bit for
// bit. Regenerate only on an intentional semantic change:
//
//	go test ./internal/sim -run TestGoldenBitIdentity -update
var updateGolden = flag.Bool("update", false, "rewrite testdata golden fixtures")

const goldenFile = "testdata/golden_results.json"

// expressTopo8 is a fixed D&C_SA-style 8x8 express placement (the C=4 row the
// solver produces for the paper's default config at seed 1), hardcoded so the
// fixtures do not depend on the optimizer.
func expressTopo8() (topo.Topology, int) {
	row := topo.NewRow(8,
		topo.Span{From: 0, To: 2}, topo.Span{From: 0, To: 4},
		topo.Span{From: 1, To: 5}, topo.Span{From: 2, To: 4},
		topo.Span{From: 4, To: 6}, topo.Span{From: 4, To: 7},
		topo.Span{From: 5, To: 7})
	return topo.Uniform("Express8", 8, row), 4
}

func goldenCfg(t topo.Topology, c int, pat traffic.Pattern, rate float64) Config {
	cfg := NewConfig(t, c, pat, rate)
	cfg.Seed = 7
	cfg.Warmup, cfg.Measure, cfg.Drain = 300, 1500, 4000
	return cfg
}

// goldenCases enumerates the fixture matrix: 4x4/8x8 mesh and express
// topologies under UR, transpose and hotspot traffic, DOR and O1TURN routing,
// with and without pipeline bypass and concentration.
func goldenCases() map[string]Config {
	express8, c8 := expressTopo8()
	hot8 := traffic.Hotspot(8, []int{0, 7, 56, 63}, 0.3, traffic.UniformRandom(8))

	cases := map[string]Config{}
	add := func(name string, cfg Config, mut func(*Config)) {
		if mut != nil {
			mut(&cfg)
		}
		cases[name] = cfg
	}

	add("mesh4-ur-xy", goldenCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05), nil)
	add("mesh4-ur-xy-bypass", goldenCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05),
		func(c *Config) { c.PipelineBypass = true })
	add("mesh4-tp-o1turn", goldenCfg(topo.Mesh(4), 1, traffic.Transpose(4), 0.04),
		func(c *Config) { c.Routing = RoutingO1Turn })
	add("mesh8-ur-xy", goldenCfg(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.05), nil)
	add("mesh8-ur-o1turn", goldenCfg(topo.Mesh(8), 1, traffic.UniformRandom(8), 0.05),
		func(c *Config) { c.Routing = RoutingO1Turn })
	add("mesh8-tp-xy", goldenCfg(topo.Mesh(8), 1, traffic.Transpose(8), 0.03), nil)
	add("mesh8-hotspot-xy", goldenCfg(topo.Mesh(8), 1, hot8, 0.02), nil)
	add("mesh8-hotspot-o1turn-bypass", goldenCfg(topo.Mesh(8), 1, hot8, 0.02),
		func(c *Config) { c.Routing = RoutingO1Turn; c.PipelineBypass = true })
	add("express8-ur-xy", goldenCfg(express8, c8, traffic.UniformRandom(8), 0.05), nil)
	add("express8-ur-o1turn", goldenCfg(express8, c8, traffic.UniformRandom(8), 0.05),
		func(c *Config) { c.Routing = RoutingO1Turn })
	add("express8-tp-xy-bypass", goldenCfg(express8, c8, traffic.Transpose(8), 0.03),
		func(c *Config) { c.PipelineBypass = true })
	add("express8-hotspot-o1turn", goldenCfg(express8, c8, hot8, 0.02),
		func(c *Config) { c.Routing = RoutingO1Turn })
	add("hfb8-ur-xy", goldenCfg(topo.HFB(8), topo.HFB(8).MaxCrossSection(), traffic.UniformRandom(8), 0.05), nil)
	add("mesh4-k2-ur-xy", goldenCfg(topo.Mesh(4), 1, traffic.UniformRandomN(32), 0.03),
		func(c *Config) { c.Concentration = 2 })
	add("express8-k2-ur-o1turn", goldenCfg(express8, c8, traffic.UniformRandomN(128), 0.02),
		func(c *Config) { c.Concentration = 2; c.Routing = RoutingO1Turn })
	return cases
}

// runGolden executes every fixture case, including the trace record/replay
// pair, and returns name -> Result. With audit set every run re-verifies the
// engine's conservation invariants each cycle; because the auditor only reads
// state, the results must stay bit-identical either way.
func runGolden(t *testing.T, audit bool) map[string]Result {
	t.Helper()
	out := map[string]Result{}
	for name, cfg := range goldenCases() {
		cfg.Audit = audit
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = res
	}

	// Trace replay: record a workload, then replay it through a fresh
	// simulator (with and without O1TURN's per-packet class redraw).
	record := func(name string, cfg Config) *Trace {
		cfg.RecordTrace = true
		cfg.Audit = audit
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = res
		return s.RecordedTrace()
	}
	replay := func(name string, cfg Config, tr *Trace) {
		cfg.Trace = tr
		cfg.Audit = audit
		cfg.Pattern = nil
		cfg.InjectionRate = 0
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = res
	}

	mesh4 := goldenCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	tr := record("mesh4-ur-record", mesh4)
	replay("mesh4-trace-replay", mesh4, tr)

	express8, c8 := expressTopo8()
	e8 := goldenCfg(express8, c8, traffic.UniformRandom(8), 0.04)
	e8.Routing = RoutingO1Turn
	tr8 := record("express8-o1turn-record", e8)
	replay("express8-trace-replay-o1turn", e8, tr8)
	return out
}

// comparable strips the non-deterministic wall-clock fields (absent in the
// seed engine, populated after the active-set rework) and flattens the rest
// to a JSON map, so fixture comparison covers every remaining field exactly.
func comparableResult(t *testing.T, v any) map[string]any {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "WallTime")
	delete(m, "CyclesPerSec")
	return m
}

// compareGolden checks a fixture map against the recorded golden file.
func compareGolden(t *testing.T, got map[string]Result) {
	t.Helper()
	raw, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("missing fixtures (run with -update to record): %v", err)
	}
	var want map[string]map[string]any
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("fixture count %d, case count %d", len(want), len(got))
	}
	for name, res := range got {
		wantRes, ok := want[name]
		if !ok {
			t.Errorf("%s: no fixture recorded", name)
			continue
		}
		gotRes := comparableResult(t, res)
		if !reflect.DeepEqual(gotRes, wantRes) {
			gj, _ := json.MarshalIndent(gotRes, "", "  ")
			wj, _ := json.MarshalIndent(wantRes, "", "  ")
			t.Errorf("%s: result diverged from seed engine\n got: %s\nwant: %s", name, gj, wj)
		}
	}
}

func TestGoldenBitIdentity(t *testing.T) {
	got := runGolden(t, false)

	if *updateGolden {
		norm := map[string]map[string]any{}
		for name, res := range got {
			norm[name] = comparableResult(t, res)
		}
		raw, err := json.MarshalIndent(norm, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fixtures to %s", len(norm), goldenFile)
		return
	}

	compareGolden(t, got)
}

// runGoldenBatch mirrors runGolden over the batched replica engine: every
// fixture config runs as replica 0 of a two-replica Batch (the second
// replica uses an unrelated seed), so the comparison proves batch replicas
// are bit-identical to the recorded single-run fixtures — shared network
// description, interleaved advance scheduling and all.
func runGoldenBatch(t *testing.T) map[string]Result {
	t.Helper()
	runBatch := func(name string, cfg Config) (Result, *Simulator) {
		t.Helper()
		b, err := NewBatch(cfg, []uint64{cfg.Seed, cfg.Seed ^ 0x9e3779b97f4a7c15})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results, _, err := b.Run(context.Background(), 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return results[0], b.Replicas()[0]
	}
	out := map[string]Result{}
	for name, cfg := range goldenCases() {
		out[name], _ = runBatch(name, cfg)
	}

	record := func(name string, cfg Config) *Trace {
		cfg.RecordTrace = true
		res, s := runBatch(name, cfg)
		out[name] = res
		return s.RecordedTrace()
	}
	replay := func(name string, cfg Config, tr *Trace) {
		cfg.Trace = tr
		cfg.Pattern = nil
		cfg.InjectionRate = 0
		out[name], _ = runBatch(name, cfg)
	}

	mesh4 := goldenCfg(topo.Mesh(4), 1, traffic.UniformRandom(4), 0.05)
	tr := record("mesh4-ur-record", mesh4)
	replay("mesh4-trace-replay", mesh4, tr)

	express8, c8 := expressTopo8()
	e8 := goldenCfg(express8, c8, traffic.UniformRandom(8), 0.04)
	e8.Routing = RoutingO1Turn
	tr8 := record("express8-o1turn-record", e8)
	replay("express8-trace-replay-o1turn", e8, tr8)
	return out
}

// TestGoldenBatchBitIdentity runs the whole fixture matrix in batch mode and
// compares against the same golden file as the single-run test. Like the
// audit variant it never rewrites fixtures: batch mode is a consumer of the
// recorded truth.
func TestGoldenBatchBitIdentity(t *testing.T) {
	compareGolden(t, runGoldenBatch(t))
}

// TestGoldenBitIdentityAudit reruns the full fixture matrix with the
// invariant auditor enabled. It proves two things at once: the auditor is a
// pure observer (every Result is still bit-identical to the recorded seed
// fixtures), and nineteen diverse engine configurations uphold every
// conservation invariant on every cycle. It never rewrites the fixtures,
// even under -update: the audited run is a consumer of the golden file, not
// a producer.
func TestGoldenBitIdentityAudit(t *testing.T) {
	compareGolden(t, runGolden(t, true))
}
