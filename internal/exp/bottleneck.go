package exp

import (
	"fmt"
	"strings"

	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/traffic"
)

// BottleneckRow summarizes one design's channel-load distribution.
type BottleneckRow struct {
	Scheme  string
	Summary sim.UtilizationSummary
	Top     []sim.ChannelStat
	Latency float64
	Heatmap string
}

// BottleneckResult supports the Section 5.4 discussion quantitatively: the
// HFB's throughput loss comes from its inter-quadrant bottleneck links,
// while good placement spreads load (and hence recovers bandwidth).
type BottleneckResult struct {
	N    int
	Rate float64
	Rows []BottleneckRow
}

// Bottleneck runs uniform traffic at a moderate load through all three
// designs and reports each one's channel-utilization distribution.
func Bottleneck(o Options) (BottleneckResult, error) {
	const n = 8
	schemes, err := o.schemes(n)
	if err != nil {
		return BottleneckResult{}, err
	}
	out := BottleneckResult{N: n, Rate: 0.05}
	for _, sch := range schemes {
		cfg := sim.NewConfig(sch.Topo, sch.C, traffic.UniformRandom(n), out.Rate)
		o.simPhases(&cfg)
		s, err := sim.New(cfg)
		if err != nil {
			return out, err
		}
		res, err := s.Run(o.ctx())
		if err != nil {
			return out, err
		}
		top := s.ChannelStats()
		if len(top) > 3 {
			top = top[:3]
		}
		out.Rows = append(out.Rows, BottleneckRow{
			Scheme:  sch.Name,
			Summary: s.Summarize(),
			Top:     top,
			Latency: res.AvgPacketLatency,
			Heatmap: s.UtilizationHeatmap(),
		})
	}
	return out, nil
}

// Report formats the bottleneck analysis.
func (r BottleneckResult) Report() *stats.Report {
	rep := stats.NewReport("bottleneck")
	t := rep.Add(stats.NewTable(
		fmt.Sprintf("Bottleneck analysis (Section 5.4): channel load distribution, %dx%d UR at %.2f", r.N, r.N, r.Rate),
		"scheme", "channels", "max util", "mean util", "load gini", "latency"))
	for _, row := range r.Rows {
		t.AddRow(row.Scheme,
			fmt.Sprintf("%d", row.Summary.Channels),
			fmt.Sprintf("%.3f", row.Summary.MaxUtil),
			fmt.Sprintf("%.3f", row.Summary.MeanUtil),
			fmt.Sprintf("%.3f", row.Summary.Gini),
			fmt.Sprintf("%.2f", row.Latency))
	}
	for _, row := range r.Rows {
		var b strings.Builder
		fmt.Fprintf(&b, "%s busiest channels:\n", row.Scheme)
		for _, c := range row.Top {
			fmt.Fprintf(&b, "  %s\n", c.String())
		}
		fmt.Fprintf(&b, "%s %s", row.Scheme, row.Heatmap)
		t.AddNote(b.String())
	}
	t.AddNote("the HFB's hottest links sit on the quadrant boundary — the bottleneck the\n" +
		"paper blames for its sub-half-mesh throughput in Fig. 8(b).")
	return rep
}
