package exp

import (
	"fmt"

	"explink/internal/core"
	"explink/internal/stats"
	"explink/internal/topo"
)

// Fig5Point is one x-position of the Fig. 5 curves: all schemes evaluated at
// one link limit C.
type Fig5Point struct {
	C      int
	Width  int
	DCSA   float64 // D&C_SA total latency
	OnlySA float64
	HeadD  float64 // L_D component of D&C_SA
	SerD   float64 // L_S component
}

// Fig5Size is the full curve set for one network size.
type Fig5Size struct {
	N      int
	Mesh   float64 // fixed design point
	HFB    float64 // fixed design point (at its own C)
	HFBC   int
	Points []Fig5Point
	BestC  int
	BestL  float64
}

// Fig5Result reproduces Figure 5: average packet latency as a function of
// link limit C on 4x4, 8x8 and 16x16 networks.
type Fig5Result struct {
	Sizes []Fig5Size
}

// Fig5 computes the latency-vs-C curves analytically (zero-load model; the
// paper's simulated curves add a small uniform contention term that shifts
// but does not reshape them).
func Fig5(o Options) (Fig5Result, error) {
	sizes := []int{4, 8, 16}
	if o.Quick {
		sizes = []int{4, 8}
	}
	var out Fig5Result
	for _, n := range sizes {
		s := o.solverFor(n)

		meshEval, err := s.Cfg.EvalRow(topo.MeshRow(n), 1)
		if err != nil {
			return out, err
		}
		_, hfb, err := hfbEval(s.Cfg)
		if err != nil {
			return out, err
		}
		size := Fig5Size{N: n, Mesh: meshEval.Total, HFB: hfb.Total, HFBC: hfb.C}

		_, dcsaAll, err := s.Optimize(o.ctx(), core.DCSA)
		if err != nil {
			return out, err
		}
		_, onlyAll, err := s.Optimize(o.ctx(), core.OnlySA)
		if err != nil {
			return out, err
		}
		for i, sol := range dcsaAll {
			p := Fig5Point{
				C:      sol.C,
				Width:  sol.Eval.Width,
				DCSA:   sol.Eval.Total,
				OnlySA: onlyAll[i].Eval.Total,
				HeadD:  sol.Eval.Head,
				SerD:   sol.Eval.Ser,
			}
			size.Points = append(size.Points, p)
			if size.BestL == 0 || p.DCSA < size.BestL {
				size.BestL, size.BestC = p.DCSA, p.C
			}
		}
		out.Sizes = append(out.Sizes, size)
	}
	return out, nil
}

// Report formats the curves as one table per network size, with the
// Section 5.2 headline reductions as report notes.
func (r Fig5Result) Report() *stats.Report {
	rep := stats.NewReport("fig5")
	for _, s := range r.Sizes {
		t := rep.Add(stats.NewTable(
			fmt.Sprintf("Fig.5 (%dx%d): avg packet latency vs link limit C [Mesh=%.2f, HFB(C=%d)=%.2f]",
				s.N, s.N, s.Mesh, s.HFBC, s.HFB),
			"C", "width(b)", "D&C_SA", "OnlySA", "L_D", "L_S"))
		for _, p := range s.Points {
			t.AddRowf(p.C, p.Width, p.DCSA, p.OnlySA, p.HeadD, p.SerD)
		}
		t.AddNotef("best: C=%d L=%.2f (%.1f%% vs Mesh, %.1f%% vs HFB)",
			s.BestC, s.BestL, pct(s.Mesh, s.BestL), pct(s.HFB, s.BestL))
	}
	for _, h := range r.Headlines() {
		rep.Notef("headline %dx%d: %.1f%% vs Mesh, %.1f%% vs HFB, OnlySA +%.1f%%",
			h.N, h.N, h.VsMesh, h.VsHFB, h.OnlySAOver)
	}
	return rep
}

// Headline extracts the Section 5.2 comparison numbers from the Fig. 5 data:
// percentage latency reduction of D&C_SA over Mesh and HFB per network size,
// plus the D&C_SA-vs-OnlySA gap.
type Headline struct {
	N          int
	VsMesh     float64 // % reduction of D&C_SA vs mesh
	VsHFB      float64
	OnlySAOver float64 // % by which OnlySA exceeds D&C_SA at the best C
}

// Headlines computes the headline reductions from a Fig. 5 result.
func (r Fig5Result) Headlines() []Headline {
	var out []Headline
	for _, s := range r.Sizes {
		h := Headline{N: s.N, VsMesh: pct(s.Mesh, s.BestL), VsHFB: pct(s.HFB, s.BestL)}
		for _, p := range s.Points {
			if p.C == s.BestC && s.BestL > 0 {
				h.OnlySAOver = 100 * (p.OnlySA - p.DCSA) / p.DCSA
			}
		}
		out = append(out, h)
	}
	return out
}
