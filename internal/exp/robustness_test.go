package exp

import (
	"testing"
)

func TestRobustness(t *testing.T) {
	r, err := Robustness(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	prev := r.Intact
	for _, p := range r.Points {
		// Failures can only hurt, and the damage grows with the failure
		// count.
		if p.Mean < r.Intact-1e-9 {
			t.Fatalf("%d failures improved latency: %.2f < intact %.2f", p.Failures, p.Mean, r.Intact)
		}
		if p.Mean < prev-1e-9 {
			t.Fatalf("damage not monotone: %.2f after %.2f", p.Mean, prev)
		}
		if p.Worst < p.Mean-1e-9 {
			t.Fatalf("worst %.2f below mean %.2f", p.Worst, p.Mean)
		}
		// And the damaged design never falls below the locals-only floor.
		if p.Worst > r.Mesh+1e-9 {
			t.Fatalf("%d failures (%.2f) exceeded the locals-only floor %.2f", p.Failures, p.Worst, r.Mesh)
		}
		prev = p.Mean
	}
}

func TestBottleneck(t *testing.T) {
	r, err := Bottleneck(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var mesh, hfb, dcsa BottleneckRow
	for _, row := range r.Rows {
		switch row.Scheme {
		case "Mesh":
			mesh = row
		case "HFB":
			hfb = row
		case "D&C_SA":
			dcsa = row
		}
	}
	// Section 5.4's mechanism: HFB concentrates load far more than the mesh;
	// the optimized design sits in between (or better).
	if hfb.Summary.Gini <= mesh.Summary.Gini {
		t.Fatalf("HFB gini %.3f not above mesh %.3f", hfb.Summary.Gini, mesh.Summary.Gini)
	}
	if dcsa.Summary.Gini >= hfb.Summary.Gini {
		t.Fatalf("D&C_SA gini %.3f not below HFB %.3f", dcsa.Summary.Gini, hfb.Summary.Gini)
	}
}
