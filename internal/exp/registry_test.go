package exp

import (
	"bufio"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"explink/internal/core"
	"explink/internal/stats"
)

// testStore is shared by every test in the package: placements already solved
// by an earlier test are answered from cache, which keeps the suite fast
// without changing any result (cached solves are bit-identical).
var testStore, _ = core.NewPlacementStore("")

// quickOpts is QuickOptions plus the shared test store.
func quickOpts() Options {
	o := QuickOptions()
	o.Store = testStore
	return o
}

// TestRegistryQuickRun is the one table-driven smoke test for the whole
// suite: every registered experiment runs in quick mode, produces a
// non-trivial report that round-trips through JSON, and renders identically
// across two same-seed runs.
func TestRegistryQuickRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			rep, err := e.Run(quickOpts())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Name != e.Name {
				t.Fatalf("report name %q != experiment name %q", rep.Name, e.Name)
			}
			if rep.Title != e.Desc || rep.Section != e.Section {
				t.Fatalf("report identity not stamped: %+v", rep)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("report has no tables")
			}
			for _, tab := range rep.Tables {
				if tab.NumRows() == 0 {
					t.Fatalf("table %q is empty", tab.Title)
				}
			}
			out := rep.Render()
			if out == "" {
				t.Fatal("empty render")
			}

			// JSON round trip: the structured result survives marshalling and
			// renders to the same text.
			buf, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			var back stats.Report
			if err := json.Unmarshal(buf, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, &back) {
				t.Fatalf("JSON round trip changed the report:\n%+v\nvs\n%+v", rep, &back)
			}
			if back.Render() != out {
				t.Fatal("round-tripped report renders differently")
			}

			// Determinism: a second same-seed run renders byte-identically.
			rep2, err := e.Run(quickOpts())
			if err != nil {
				t.Fatal(err)
			}
			if rep2.Render() != out {
				t.Fatalf("same-seed rerun rendered differently:\n%s\nvs\n%s", out, rep2.Render())
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := Lookup("fig5"); !ok {
		t.Fatal("fig5 not found")
	}
	if e, ok := Lookup("FIG5"); !ok || e.Name != "fig5" {
		t.Fatal("lookup is not case-insensitive")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus name resolved")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if e.Name == "" || e.Desc == "" || e.Section == "" || e.Run == nil {
			t.Fatalf("incomplete registration: %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

// TestRegistryMatchesPackageDoc keeps the experiment index in the package
// documentation in lockstep with the registry: same names, same order, same
// one-line descriptions.
func TestRegistryMatchesPackageDoc(t *testing.T) {
	f, err := os.Open("exp.go")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	type entry struct{ name, desc string }
	var doc []entry
	in := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "package ") {
			break
		}
		if strings.Contains(line, "Experiment index:") {
			in = true
			continue
		}
		if !in {
			continue
		}
		// Index entries are tab-indented comment lines: "//\tname  desc".
		body, ok := strings.CutPrefix(line, "//\t")
		if !ok {
			continue
		}
		name, desc, ok := strings.Cut(body, " ")
		if !ok {
			continue
		}
		doc = append(doc, entry{name, strings.TrimSpace(desc)})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	reg := All()
	if len(doc) != len(reg) {
		t.Fatalf("doc index has %d entries, registry has %d", len(doc), len(reg))
	}
	for i, e := range reg {
		if doc[i].name != e.Name {
			t.Fatalf("doc index entry %d is %q, registry says %q", i, doc[i].name, e.Name)
		}
		if doc[i].desc != e.Desc {
			t.Fatalf("%s: doc desc %q != registry desc %q", e.Name, doc[i].desc, e.Desc)
		}
	}
}
