package exp

import (
	"fmt"
	"strings"

	"explink/internal/power"
	"explink/internal/stats"
)

// Fig9Cell is one benchmark x scheme power estimate.
type Fig9Cell struct {
	Benchmark string
	Scheme    string
	Report    power.Report
}

// Fig9Result reproduces Figure 9 (router power per PARSEC benchmark,
// static + dynamic, normalized to the mesh total) and carries the data for
// Figure 10 (static breakdown).
type Fig9Result struct {
	N       int
	Schemes []Scheme
	Names   []string
	Cells   [][]Fig9Cell // [benchmark][scheme]
}

// Fig9 estimates power from fresh simulation runs (it shares the Fig. 6
// grid; pass an existing Fig6Result to Fig9FromRuns to avoid re-simulating).
func Fig9(o Options) (Fig9Result, error) {
	f6, err := Fig6(o)
	if err != nil {
		return Fig9Result{}, err
	}
	return Fig9FromRuns(f6)
}

// Fig9FromRuns converts a Fig. 6 simulation grid into power estimates.
func Fig9FromRuns(f6 Fig6Result) (Fig9Result, error) {
	m := power.DefaultModel()
	out := Fig9Result{N: f6.N, Schemes: f6.Schemes, Names: f6.Names}
	for _, row := range f6.Cells {
		var prow []Fig9Cell
		for _, cell := range row {
			rep, err := m.Estimate(cell.Scheme.Topo, cell.Scheme.Width, cell.Result)
			if err != nil {
				return out, err
			}
			rep.Topology = cell.Scheme.Name
			prow = append(prow, Fig9Cell{Benchmark: cell.Benchmark, Scheme: cell.Scheme.Name, Report: rep})
		}
		out.Cells = append(out.Cells, prow)
	}
	return out, nil
}

// AverageTotals returns per-scheme (dynamic, static, total) watts averaged
// over benchmarks.
func (r Fig9Result) AverageTotals() (dyn, stat, total []float64) {
	k := len(r.Schemes)
	dyn, stat, total = make([]float64, k), make([]float64, k), make([]float64, k)
	for _, row := range r.Cells {
		for i, c := range row {
			dyn[i] += c.Report.Dynamic.Total()
			stat[i] += c.Report.Static.Total()
			total[i] += c.Report.Total()
		}
	}
	for i := 0; i < k; i++ {
		n := float64(len(r.Cells))
		dyn[i] /= n
		stat[i] /= n
		total[i] /= n
	}
	return dyn, stat, total
}

// Report formats the normalized power table of Fig. 9.
func (r Fig9Result) Report() *stats.Report {
	rep := stats.NewReport("fig9")
	header := []string{"benchmark"}
	for _, s := range r.Schemes {
		header = append(header, s.Name+"(s)", s.Name+"(d)")
	}
	t := rep.Add(stats.NewTable(
		fmt.Sprintf("Fig.9 (%dx%d): router power per benchmark, normalized to the Mesh total", r.N, r.N),
		header...))
	for bi, row := range r.Cells {
		meshTotal := row[0].Report.Total()
		cells := []string{r.Names[bi]}
		for _, c := range row {
			cells = append(cells,
				fmt.Sprintf("%.3f", c.Report.Static.Total()/meshTotal),
				fmt.Sprintf("%.3f", c.Report.Dynamic.Total()/meshTotal))
		}
		t.AddRow(cells...)
	}
	dyn, stat, total := r.AverageTotals()
	var b strings.Builder
	b.WriteString("average watts: ")
	for i, s := range r.Schemes {
		fmt.Fprintf(&b, "%s dyn=%.3f static=%.3f total=%.3f", s.Name, dyn[i], stat[i], total[i])
		if i+1 < len(r.Schemes) {
			b.WriteString(" | ")
		}
	}
	t.AddNote(b.String())
	if len(total) == 3 {
		t.AddNotef("total power: D&C_SA vs Mesh %.1f%%, vs HFB %.1f%%; dynamic: vs Mesh %.1f%%, vs HFB %.1f%%",
			pct(total[0], total[2]), pct(total[1], total[2]),
			pct(dyn[0], dyn[2]), pct(dyn[1], dyn[2]))
	}
	return rep
}

// Fig10Result reproduces Figure 10: the router static power breakdown
// (buffer / crossbar / other) per scheme, in watts.
type Fig10Result struct {
	Schemes []string
	Buffer  []float64
	Xbar    []float64
	Other   []float64
}

// Fig10 computes the structural static breakdown; no simulation is needed.
func Fig10(o Options) (Fig10Result, error) {
	schemes, err := o.schemes(8)
	if err != nil {
		return Fig10Result{}, err
	}
	m := power.DefaultModel()
	var out Fig10Result
	for _, s := range schemes {
		br := power.Static(s.Topo, s.Width, m.BufBitsPerRouter, m.Static)
		out.Schemes = append(out.Schemes, s.Name)
		out.Buffer = append(out.Buffer, br.Buffer)
		out.Xbar = append(out.Xbar, br.Crossbar)
		out.Other = append(out.Other, br.Other)
	}
	return out, nil
}

// Report formats the breakdown table.
func (r Fig10Result) Report() *stats.Report {
	rep := stats.NewReport("fig10")
	t := rep.Add(stats.NewTable("Fig.10 (8x8): router static power breakdown (W, network total)",
		"scheme", "buffer", "crossbar", "other", "total"))
	for i, s := range r.Schemes {
		total := r.Buffer[i] + r.Xbar[i] + r.Other[i]
		t.AddRow(s,
			fmt.Sprintf("%.3f", r.Buffer[i]),
			fmt.Sprintf("%.3f", r.Xbar[i]),
			fmt.Sprintf("%.3f", r.Other[i]),
			fmt.Sprintf("%.3f", total))
	}
	return rep
}
