package exp

import (
	"context"
	"fmt"

	"explink/internal/runctl"
)

// Unit is one schedulable shard of an experiment suite: the granularity the
// sweep fabric leases to workers. A unit is currently one registered
// experiment — the natural shard, because every experiment is independent
// (they share work only through the content-addressed placement store, which
// deduplicates across units wherever they run) and because suite output is
// assembled per experiment, so per-experiment shards merge back into a
// report byte-identical to a local run by construction. Finer decomposition
// (sweep points, saturation probes) would slot in here as additional Units
// whose results a merge step folds into one Outcome.
type Unit struct {
	// Seq is the unit's position in the suite's registry-order result list;
	// merged outcomes land at out[Seq].
	Seq int
	// Exp is the experiment this unit runs.
	Exp Experiment
}

// DecomposeSuite splits a selected suite into leasable units in registry
// order. The decomposition is deterministic: the same selection always
// yields the same unit list with the same sequence numbers, which is what
// lets a checkpoint journal name units by Seq across coordinator restarts.
func DecomposeSuite(sel []Experiment) []Unit {
	units := make([]Unit, len(sel))
	for i, e := range sel {
		units[i] = Unit{Seq: i, Exp: e}
	}
	return units
}

// RunUnit executes one unit with the same scheduling path RunAll uses for a
// whole suite (a one-experiment pool), so a unit run on a remote worker
// reports the same outcome shape — and the same cancellation contract — as
// the experiment would have locally.
func RunUnit(ctx context.Context, u Unit, opts Options) Outcome {
	return RunAll(ctx, []Experiment{u.Exp}, opts, 1, nil)[0]
}

// MergeOutcomes assembles per-unit outcomes back into the registry-order
// slice RunAll would have produced locally. Units without a result (the
// suite was abandoned before they completed) fail with an error matching
// runctl.ErrCancelled, mirroring how a cancelled local suite fills its
// unstarted slots.
func MergeOutcomes(units []Unit, got map[int]Outcome) []Outcome {
	out := make([]Outcome, len(units))
	for i, u := range units {
		if oc, ok := got[u.Seq]; ok {
			oc.Exp = u.Exp
			out[i] = oc
			continue
		}
		out[i] = Outcome{Exp: u.Exp, Err: fmt.Errorf("unit %d (%s) never completed: %w", u.Seq, u.Exp.Name, runctl.ErrCancelled)}
	}
	return out
}
