package exp

import (
	"fmt"

	"explink/internal/core"
	"explink/internal/stats"
	"explink/internal/topo"
)

// Table2Row is the worst-case zero-load latency of the three topologies at
// one network size.
type Table2Row struct {
	N     int
	Mesh  float64
	HFB   float64
	DCSA  float64
	BestC int // link limit of the D&C_SA design used
}

// Table2Result reproduces Table 2: maximum zero-load packet latency between
// any two routers, for Mesh, HFB and the best D&C_SA placement on 4x4, 8x8
// and 16x16 networks.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 computes the worst cases analytically (they are zero-load by
// definition).
func Table2(o Options) (Table2Result, error) {
	sizes := []int{4, 8, 16}
	if o.Quick {
		sizes = []int{4, 8}
	}
	var out Table2Result
	for _, n := range sizes {
		s := o.solverFor(n)
		cfg := s.Cfg

		mesh, err := cfg.MaxZeroLoad(topo.Mesh(n), 1)
		if err != nil {
			return out, err
		}
		hfbRow := topo.HFBRow(n)
		hfbC := hfbRow.MaxCrossSection()
		hfb, err := cfg.MaxZeroLoad(topo.Uniform("HFB", n, hfbRow), hfbC)
		if err != nil {
			return out, err
		}
		// Table 2 reports the worst case, so pick the per-C D&C_SA design
		// that minimizes it (the average-optimal design can have a longer
		// worst pair, especially on small networks).
		_, all, err := s.Optimize(o.ctx(), core.DCSA)
		if err != nil {
			return out, err
		}
		dcsa, bestC := 0.0, 0
		for _, sol := range all {
			w, err := cfg.MaxZeroLoad(s.Topology(sol), sol.C)
			if err != nil {
				return out, err
			}
			if bestC == 0 || w < dcsa {
				dcsa, bestC = w, sol.C
			}
		}
		out.Rows = append(out.Rows, Table2Row{N: n, Mesh: mesh, HFB: hfb, DCSA: dcsa, BestC: bestC})
	}
	return out, nil
}

// Report formats the table in the paper's layout (topologies as rows).
func (r Table2Result) Report() *stats.Report {
	rep := stats.NewReport("table2")
	header := []string{"Topology"}
	for _, row := range r.Rows {
		header = append(header, fmt.Sprintf("%dx%d", row.N, row.N))
	}
	t := rep.Add(stats.NewTable("Table 2: maximum zero-load packet latency (cycles)", header...))
	mesh := []string{"Mesh"}
	hfb := []string{"HFB"}
	dcsa := []string{"D&C_SA"}
	for _, row := range r.Rows {
		mesh = append(mesh, fmt.Sprintf("%.1f", row.Mesh))
		hfb = append(hfb, fmt.Sprintf("%.1f", row.HFB))
		dcsa = append(dcsa, fmt.Sprintf("%.1f (C=%d)", row.DCSA, row.BestC))
	}
	t.AddRow(mesh...)
	t.AddRow(hfb...)
	t.AddRow(dcsa...)
	return rep
}
