package exp

import (
	"fmt"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
)

// Fig11Point is one (C, latency) sample of a bandwidth scenario.
type Fig11Point struct {
	C     int
	Width int
	DCSA  float64
}

// Fig11Scenario is the latency-vs-C curve at one bisection budget.
type Fig11Scenario struct {
	Label     string
	BaseWidth int // link width the budget affords at C=1
	Mesh      float64
	HFB       float64
	Points    []Fig11Point
	BestL     float64
	BestC     int
}

// Fig11Result reproduces Figure 11: the impact of the bisection bandwidth
// budget (2 KGb/s vs 8 KGb/s at 1 GHz on 8x8, i.e. 256-bit vs 1024-bit base
// width) on the mesh and on express-link placements.
type Fig11Result struct {
	Scenarios []Fig11Scenario
}

// Fig11 runs the sweep at both budgets.
func Fig11(o Options) (Fig11Result, error) {
	const n = 8
	scenarios := []struct {
		label string
		base  int
	}{
		{"2KGb/s", 256},
		{"8KGb/s", 1024},
	}
	var out Fig11Result
	for _, sc := range scenarios {
		s := o.solverFor(n)
		s.Cfg.BW = model.Bandwidth{BaseWidth: sc.base, MaxWidth: 512, MinWidth: 4}

		mesh, err := s.Cfg.EvalRow(topo.MeshRow(n), 1)
		if err != nil {
			return out, err
		}
		_, hfb, err := hfbEval(s.Cfg)
		if err != nil {
			return out, err
		}
		best, all, err := s.Optimize(o.ctx(), core.DCSA)
		if err != nil {
			return out, err
		}
		scen := Fig11Scenario{
			Label: sc.label, BaseWidth: sc.base,
			Mesh: mesh.Total, HFB: hfb.Total,
			BestL: best.Eval.Total, BestC: best.C,
		}
		for _, sol := range all {
			scen.Points = append(scen.Points, Fig11Point{C: sol.C, Width: sol.Eval.Width, DCSA: sol.Eval.Total})
		}
		out.Scenarios = append(out.Scenarios, scen)
	}
	return out, nil
}

// Report formats one table per bandwidth scenario plus the comparison the
// paper calls out (how much each design improves when bandwidth quadruples).
func (r Fig11Result) Report() *stats.Report {
	rep := stats.NewReport("fig11")
	for _, sc := range r.Scenarios {
		t := rep.Add(stats.NewTable(
			fmt.Sprintf("Fig.11 (8x8, %s bisection, base width %db): latency vs C [Mesh=%.2f, HFB=%.2f]",
				sc.Label, sc.BaseWidth, sc.Mesh, sc.HFB),
			"C", "width(b)", "D&C_SA"))
		for _, p := range sc.Points {
			t.AddRowf(p.C, p.Width, p.DCSA)
		}
		t.AddNotef("best: C=%d L=%.2f", sc.BestC, sc.BestL)
	}
	if len(r.Scenarios) == 2 {
		lo, hi := r.Scenarios[0], r.Scenarios[1]
		rep.Notef("bandwidth 4x: mesh %.2f -> %.2f (%.1f%%), D&C_SA %.2f -> %.2f (%.1f%%)",
			lo.Mesh, hi.Mesh, pct(lo.Mesh, hi.Mesh),
			lo.BestL, hi.BestL, pct(lo.BestL, hi.BestL))
	}
	return rep
}
