// Package exp contains one driver per table and figure of the paper's
// evaluation (Section 5). Each driver computes the same rows/series the
// paper plots and renders them as plain-text tables; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Experiment index:
//
//	Fig5      latency vs link limit C (Mesh, HFB, OnlySA, D&C_SA, L_D, L_S)
//	Fig6      per-PARSEC-benchmark latency on 8x8 (simulated)
//	Fig7      placement quality vs normalized runtime (D&C_SA vs OnlySA)
//	Fig8      synthetic-traffic latency and saturation throughput (simulated)
//	Fig9      router power per benchmark (simulated + power model)
//	Fig10     router static power breakdown
//	Fig11     impact of bisection bandwidth (2KGb/s vs 8KGb/s)
//	Fig12     D&C_SA vs exhaustive optimal (latency and runtime ratio)
//	Table2    maximum zero-load latency
//	AppSpec   application-specific re-optimization (Section 5.6.4)
//	Headline  the Section 5.2 reduction percentages
package exp

import (
	"context"

	"explink/internal/anneal"
	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/topo"
)

// Options tunes experiment fidelity. Quick shrinks budgets and network sizes
// so the whole suite runs in seconds (used by tests); the default
// configuration reproduces the paper's operating points.
type Options struct {
	Quick bool
	Seed  uint64
	// Ctx bounds every solver and simulation run the experiment issues; nil
	// means context.Background(). Cancellation surfaces as an error matching
	// runctl.ErrCancelled from whichever driver was interrupted.
	Ctx context.Context
	// Audit runs every simulation with the per-cycle invariant auditor
	// enabled (sim.Config.Audit); results are bit-identical, just slower.
	Audit bool
}

// DefaultOptions runs experiments at full fidelity.
func DefaultOptions() Options { return Options{Seed: 1} }

// QuickOptions runs reduced-size experiments for tests.
func QuickOptions() Options { return Options{Quick: true, Seed: 1} }

// ctx returns the run context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// solverFor builds a solver for an n x n network with the experiment's SA
// budget.
func (o Options) solverFor(n int) *core.Solver {
	s := core.NewSolver(model.DefaultConfig(n))
	s.Seed = o.Seed
	if o.Quick {
		s.Sched = s.Sched.WithMoves(1500)
	} else {
		s.Sched = anneal.DefaultSchedule()
	}
	return s
}

// hfbEval scores the hybrid flattened butterfly at its own link budget.
func hfbEval(cfg model.Config) (topo.Row, model.Eval, error) {
	row := topo.HFBRow(cfg.N)
	c := row.MaxCrossSection()
	ev, err := cfg.EvalRow(row, c)
	return row, ev, err
}

// pct returns the percentage reduction of b relative to a.
func pct(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (1 - b/a)
}
