// Package exp contains one driver per table and figure of the paper's
// evaluation (Section 5). Each driver computes the same rows/series the
// paper plots and returns them as a structured stats.Report (named tables
// plus notes and metadata) rendered by the shared stats renderer;
// EXPERIMENTS.md records the paper-vs-measured comparison. Drivers are
// registered declaratively — see All and Lookup in registry.go.
//
// Experiment index:
//
//	fig5        latency vs link limit C (Mesh, HFB, OnlySA, D&C_SA, L_D, L_S)
//	fig6        per-PARSEC-benchmark latency on 8x8 (simulated)
//	fig7        placement quality vs normalized runtime
//	fig8        synthetic traffic latency and throughput (simulated)
//	fig9        router power per benchmark (simulated + power model)
//	fig10       router static power breakdown
//	fig11       impact of bisection bandwidth (2K vs 8K Gb/s)
//	fig12       D&C_SA vs exhaustive optimal
//	table2      maximum zero-load packet latency
//	appspec     application-specific re-optimization (Section 5.6.4)
//	abgen       ablation: connection-matrix vs naive SA candidate generator (Section 4.4.2)
//	abroute     ablation: XY vs O1TURN routing (Section 4.2)
//	abbypass    ablation: physical express links vs pipeline bypass (Section 2.1)
//	bottleneck  channel-load analysis behind Fig. 8b's throughput gap (Section 5.4)
//	robust      extension: latency degradation under express-link failures
//	loadlat     load-latency curves connecting Fig. 8a and Fig. 8b
//	microarch   router sensitivity: VC count (Section 2.2) and buffer budget (Section 4.6)
//	frontier    extension: {L_avg x power} placement frontier across C
package exp

import (
	"context"

	"explink/internal/anneal"
	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/topo"
)

// Options tunes experiment fidelity. Quick shrinks budgets and network sizes
// so the whole suite runs in seconds (used by tests); the default
// configuration reproduces the paper's operating points.
type Options struct {
	Quick bool
	Seed  uint64
	// Ctx bounds every solver and simulation run the experiment issues; nil
	// means context.Background(). Cancellation surfaces as an error matching
	// runctl.ErrCancelled from whichever driver was interrupted.
	Ctx context.Context
	// Audit runs every simulation with the per-cycle invariant auditor
	// enabled (sim.Config.Audit); results are bit-identical, just slower.
	Audit bool
	// Store, when non-nil, is attached to every solver the experiments build,
	// so placement solves shared across experiments (and across repeated runs
	// with an on-disk store) are computed exactly once. Results are
	// bit-identical with or without a store.
	Store *core.PlacementStore
	// Replicas runs every simulated operating point this many times with
	// decorrelated seeds and reports the across-replica aggregate
	// (sim.AggregateReplicas). Replica groups ride the batched replica
	// engine, so the extra samples share one network construction. 0 or 1
	// keeps the single-seed behaviour bit-identical.
	Replicas int
}

// DefaultOptions runs experiments at full fidelity.
func DefaultOptions() Options { return Options{Seed: 1} }

// QuickOptions runs reduced-size experiments for tests.
func QuickOptions() Options { return Options{Quick: true, Seed: 1} }

// ctx returns the run context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// solverFor builds a solver for an n x n network with the experiment's SA
// budget, routed through the shared placement store when one is set.
func (o Options) solverFor(n int) *core.Solver {
	s := core.NewSolver(model.DefaultConfig(n))
	s.Seed = o.Seed
	if o.Quick {
		s.Sched = s.Sched.WithMoves(1500)
	} else {
		s.Sched = anneal.DefaultSchedule()
	}
	s.Store = o.Store
	return s
}

// hfbEval scores the hybrid flattened butterfly at its own link budget.
func hfbEval(cfg model.Config) (topo.Row, model.Eval, error) {
	row := topo.HFBRow(cfg.N)
	c := row.MaxCrossSection()
	ev, err := cfg.EvalRow(row, c)
	return row, ev, err
}

// pct returns the percentage reduction of b relative to a.
func pct(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (1 - b/a)
}
