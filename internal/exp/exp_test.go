package exp

import (
	"testing"
)

func TestFig5(t *testing.T) {
	r, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != 2 {
		t.Fatalf("quick fig5 sizes = %d", len(r.Sizes))
	}
	for _, s := range r.Sizes {
		if len(s.Points) == 0 {
			t.Fatalf("n=%d: no points", s.N)
		}
		// The C=1 point is the mesh itself.
		if s.Points[0].C != 1 || s.Points[0].DCSA != s.Mesh {
			t.Fatalf("n=%d: C=1 point %v != mesh %v", s.N, s.Points[0].DCSA, s.Mesh)
		}
		// L_S grows monotonically with C while L_D shrinks (the tension the
		// paper's Fig. 5 visualizes).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].SerD <= s.Points[i-1].SerD {
				t.Fatalf("n=%d: L_S not increasing at C=%d", s.N, s.Points[i].C)
			}
			if s.Points[i].HeadD > s.Points[i-1].HeadD+1e-9 {
				t.Fatalf("n=%d: L_D increased at C=%d", s.N, s.Points[i].C)
			}
		}
		// Best point beats both fixed designs on 8x8.
		if s.N == 8 {
			if s.BestL >= s.Mesh || s.BestL >= s.HFB {
				t.Fatalf("8x8 best %g vs mesh %g hfb %g", s.BestL, s.Mesh, s.HFB)
			}
			if s.BestC == 1 || s.BestC == 16 {
				t.Fatalf("8x8 best C = %d, expected intermediate", s.BestC)
			}
		}
	}
}

func TestFig5Headlines(t *testing.T) {
	r, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	hs := r.Headlines()
	if len(hs) != len(r.Sizes) {
		t.Fatalf("headlines = %v", hs)
	}
	for _, h := range hs {
		if h.VsMesh <= 0 {
			t.Fatalf("n=%d: no reduction vs mesh (%g%%)", h.N, h.VsMesh)
		}
	}
	// Paper Section 5.2: ~23.5% vs mesh on 8x8 (simulated); the analytic
	// model should land in the same band.
	for _, h := range hs {
		if h.N == 8 && (h.VsMesh < 15 || h.VsMesh > 40) {
			t.Fatalf("8x8 reduction vs mesh = %.1f%%, out of the plausible band", h.VsMesh)
		}
	}
}

func TestFig7(t *testing.T) {
	r, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 1 {
		t.Fatalf("quick fig7 curves = %d", len(r.Curves))
	}
	c := r.Curves[0]
	if c.InitEvals <= 0 {
		t.Fatal("no init evals")
	}
	prevD, prevO := 1e18, 1e18
	for _, p := range c.Points {
		// Both curves are monotone non-increasing in budget (best-so-far).
		if p.DCSA > prevD+1e-9 || p.OnlySA > prevO+1e-9 {
			t.Fatalf("budget %g: quality regressed (%g/%g after %g/%g)", p.Budget, p.DCSA, p.OnlySA, prevD, prevO)
		}
		prevD, prevO = p.DCSA, p.OnlySA
	}
	// At the largest budget the initialized search must be at least
	// competitive with the random-start search (SA is stochastic, so allow a
	// sliver; the decisive gap the paper shows appears on 16x16, covered by
	// the full-fidelity bench).
	last := c.Points[len(c.Points)-1]
	if last.DCSA > last.OnlySA*1.02 {
		t.Fatalf("final budget: D&C_SA %g well above OnlySA %g", last.DCSA, last.OnlySA)
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 2 {
		t.Fatalf("scenarios = %d", len(r.Scenarios))
	}
	lo, hi := r.Scenarios[0], r.Scenarios[1]
	// Section 5.6.2: the mesh gains only a little from 4x bandwidth; good
	// express placement exploits it much more.
	meshGain := pct(lo.Mesh, hi.Mesh)
	dcsaGain := pct(lo.BestL, hi.BestL)
	if meshGain < 0 || meshGain > 10 {
		t.Fatalf("mesh gain = %.1f%%, expected small", meshGain)
	}
	if dcsaGain <= meshGain {
		t.Fatalf("D&C_SA gain %.1f%% not above mesh gain %.1f%%", dcsaGain, meshGain)
	}
}

func TestFig12(t *testing.T) {
	r, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 4 {
		t.Fatalf("quick fig12 cases = %d", len(r.Cases))
	}
	for _, c := range r.Cases {
		if c.GapPct < -1e-9 {
			t.Fatalf("P(%d,%d): D&C_SA beat the 'optimal' baseline by %.2f%% — optimality bug", c.N, c.C, -c.GapPct)
		}
		// Fig. 12's message: near-optimal results (small gaps).
		if c.GapPct > 5 {
			t.Fatalf("P(%d,%d): gap %.2f%% too large", c.N, c.C, c.GapPct)
		}
		if c.OptEvals <= 0 || c.DCSAEvals <= 0 {
			t.Fatalf("P(%d,%d): missing eval counts", c.N, c.C)
		}
	}
}

func TestTable2(t *testing.T) {
	r, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Paper Table 2 ordering: D&C_SA <= HFB < Mesh. On 4x4 the search
		// space is so small that the best D&C_SA worst case ties the
		// flattened butterfly; larger networks beat it strictly.
		if !(row.DCSA <= row.HFB+1e-9 && row.HFB < row.Mesh) {
			t.Fatalf("%dx%d ordering violated: dcsa=%g hfb=%g mesh=%g",
				row.N, row.N, row.DCSA, row.HFB, row.Mesh)
		}
		if row.N >= 8 && row.DCSA >= row.HFB {
			t.Fatalf("%dx%d: D&C_SA worst case %g did not beat HFB %g", row.N, row.N, row.DCSA, row.HFB)
		}
	}
}

func TestAppSpec(t *testing.T) {
	r, err := AppSpec(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("quick appspec rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ExtraPct < -1e-6 {
			t.Fatalf("%s: app-specific made things worse (%.2f%%)", row.Benchmark, row.ExtraPct)
		}
	}
	if r.Avg <= 0 {
		t.Fatalf("no average gain: %g", r.Avg)
	}
}
