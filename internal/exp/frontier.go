package exp

import (
	"fmt"

	"explink/internal/core"
	"explink/internal/power"
	"explink/internal/stats"
	"explink/internal/topo"
)

// FrontierPoint is one non-dominated placement of the merged cross-C
// frontier, with its objective vector in experiment order.
type FrontierPoint struct {
	C       int
	Width   int // link width in bits at this C
	Express string
	Objs    []float64
}

// FrontierResult is an extension experiment (not in the paper): the scalar
// objective optimizes L_avg alone, but every extra express link also costs
// static power, so the interesting design space is the {L_avg x power}
// trade-off across link limits. The result is the merged Pareto frontier over
// every feasible C, with the plain mesh as the zero-express reference point.
type FrontierResult struct {
	N          int
	Objectives []core.Objective
	Mesh       []float64 // the mesh baseline's objective vector (C=1, full width)
	Points     []FrontierPoint
	Evals      int64
}

// Frontier sweeps every feasible link limit through the multi-objective
// annealer and merges the per-C archives into one {L_avg x power} frontier.
func Frontier(o Options) (FrontierResult, error) {
	n := 8
	if o.Quick {
		n = 6
	}
	s := o.solverFor(n)
	spec := core.ParetoSpec{Objectives: []core.Objective{core.ObjLatency, core.ObjPower}}
	f, err := s.SolvePareto(o.ctx(), 0, spec)
	if err != nil {
		return FrontierResult{}, err
	}

	out := FrontierResult{N: n, Objectives: f.Objectives, Evals: f.Evals}
	for _, e := range f.Entries {
		out.Points = append(out.Points, FrontierPoint{
			C: e.C, Width: e.Eval.Width, Express: e.Row.String(), Objs: e.Objs,
		})
	}

	// Mesh reference: local links only at C=1's full width, scored by the
	// same analytic evaluator and sim-free power model as the frontier dims.
	mesh := topo.MeshRow(n)
	ev, err := s.Cfg.EvalRow(mesh, 1)
	if err != nil {
		return FrontierResult{}, err
	}
	cost := power.DefaultModel().PlacementCost(mesh, ev.Width)
	out.Mesh = []float64{ev.Total, cost.TotalPower()}
	return out, nil
}

// Report formats the frontier study: the mesh baseline and every frontier
// point through the shared dominance-marking table.
func (r FrontierResult) Report() *stats.Report {
	rep := stats.NewReport("frontier")
	dims := make([]string, len(r.Objectives))
	for i, o := range r.Objectives {
		dims[i] = string(o)
	}
	labels := []string{fmt.Sprintf("mesh (C=1) %s", topo.MeshRow(r.N).String())}
	points := [][]float64{r.Mesh}
	for _, p := range r.Points {
		labels = append(labels, fmt.Sprintf("C=%d %s", p.C, p.Express))
		points = append(points, p.Objs)
	}
	t := rep.Add(stats.FrontierTable(
		fmt.Sprintf("Extension: {L_avg x power} placement frontier across C on %dx%d", r.N, r.N),
		dims, labels, points))
	t.AddNotef("%d non-dominated placements over all feasible C; %d annealer evaluations; power is the sim-free placement model (static + wiring)",
		len(r.Points), r.Evals)
	return rep
}
