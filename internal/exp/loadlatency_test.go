package exp

import (
	"testing"
)

func TestLoadLatency(t *testing.T) {
	r, err := LoadLatency(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 || len(r.Schemes) != 3 {
		t.Fatalf("grid %dx%d", len(r.Points), len(r.Schemes))
	}
	// At the lowest rate everyone is stable and D&C_SA is fastest.
	first := r.Points[0]
	for i, ok := range first.Stable {
		if !ok {
			t.Fatalf("%s unstable at the probe rate", r.Schemes[i])
		}
	}
	if !(first.Latencies[2] < first.Latencies[0] && first.Latencies[2] < first.Latencies[1]) {
		t.Fatalf("low-load ordering wrong: %v", first.Latencies)
	}
	// Latency must not decrease with load for any scheme while stable.
	for si := range r.Schemes {
		prev := 0.0
		for _, p := range r.Points {
			if !p.Stable[si] {
				break
			}
			if p.Latencies[si] < prev-0.5 { // small simulator noise allowed
				t.Fatalf("%s: latency dropped with load: %v", r.Schemes[si], p)
			}
			prev = p.Latencies[si]
		}
	}
}

func TestMicroarch(t *testing.T) {
	r, err := Microarch(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.VCs) != 2 || len(r.Buffers) != 2 {
		t.Fatalf("quick microarch: %d VC points, %d buffer points", len(r.VCs), len(r.Buffers))
	}
	// Zero-load latency barely moves with either knob (a few percent).
	for _, set := range [][]MicroarchPoint{r.VCs, r.Buffers} {
		base := set[0].Latency
		for _, p := range set {
			if p.Latency < base*0.9 || p.Latency > base*1.1 {
				t.Fatalf("light-load latency sensitive to %s: %.2f vs %.2f", p.Label, p.Latency, base)
			}
		}
	}
	// More VCs must not hurt the loaded latency.
	if last := r.VCs[len(r.VCs)-1]; last.LoadedLat > r.VCs[0].LoadedLat*1.05 {
		t.Fatalf("more VCs worsened loaded latency: %v vs %v", last, r.VCs[0])
	}
}
