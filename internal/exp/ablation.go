package exp

import (
	"fmt"

	"explink/internal/anneal"
	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
)

// This file holds ablation studies for the design choices the paper argues
// for in prose but does not plot:
//
//   - AblationGenerator: the connection-matrix candidate generator vs the
//     naive raw-space generator (Section 4.4.2's motivation);
//   - AblationRouting / AblationBypass live in ablation_sim.go and exercise
//     the Section 4.2 routing justification and the Section 2.1 virtual
//     express channel comparison inside the simulator.

// GeneratorPoint compares the two candidate generators at one move budget.
type GeneratorPoint struct {
	Moves        int
	MatrixObj    float64 // best row-mean latency via connection-matrix SA
	NaiveObj     float64 // best via naive raw-space SA
	NaiveInvalid float64 // fraction of naive moves that were infeasible
	MatrixEvals  int64
	NaiveEvals   int64
}

// GeneratorResult is the full ablation for one P̃(n, C).
type GeneratorResult struct {
	N, C   int
	Points []GeneratorPoint
}

// AblationGenerator anneals P̃(n, C) with both candidate generators from the
// same mesh start across a ladder of move budgets, reporting quality and the
// naive generator's infeasible-move rate.
func AblationGenerator(o Options) (GeneratorResult, error) {
	n, c := 16, 8
	budgets := []int{100, 1000, 10000}
	if o.Quick {
		budgets = []int{100, 1000}
	}
	p := model.DefaultParams()
	obj := func(r topo.Row) float64 { return model.RowMean(r, p) }
	out := GeneratorResult{N: n, C: c}
	for _, moves := range budgets {
		sch := anneal.DefaultSchedule().WithMoves(moves)

		m := topo.NewConnMatrix(n, c)
		mres := anneal.Minimize(o.ctx(), m, obj, sch, stats.NewRNG(stats.MixSeed(o.Seed, 1, uint64(moves))), false)

		nres := anneal.MinimizeNaive(topo.MeshRow(n), c, obj, sch,
			stats.NewRNG(stats.MixSeed(o.Seed, 2, uint64(moves))))

		out.Points = append(out.Points, GeneratorPoint{
			Moves:        moves,
			MatrixObj:    mres.Obj,
			NaiveObj:     nres.Obj,
			NaiveInvalid: float64(nres.Invalid) / float64(nres.Moves),
			MatrixEvals:  mres.Evals,
			NaiveEvals:   nres.Evals,
		})
	}
	return out, nil
}

// Report formats the generator ablation.
func (r GeneratorResult) Report() *stats.Report {
	rep := stats.NewReport("abgen")
	t := rep.Add(stats.NewTable(
		fmt.Sprintf("Ablation (Section 4.4.2): candidate generators on P(%d,%d), row-mean head latency", r.N, r.C),
		"moves", "matrix SA", "naive SA", "naive invalid %", "matrix evals", "naive evals"))
	for _, p := range r.Points {
		t.AddRowf(p.Moves, p.MatrixObj, p.NaiveObj,
			fmt.Sprintf("%.1f", 100*p.NaiveInvalid), p.MatrixEvals, p.NaiveEvals)
	}
	t.AddNote("every connection-matrix move is feasible by construction; the naive raw-space\n" +
		"generator wastes the printed fraction of its budget on infeasible candidates.")
	return rep
}
