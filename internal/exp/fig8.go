package exp

import (
	"fmt"
	"runtime"
	"sync"

	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/traffic"
)

// Fig8Cell is one traffic-pattern x scheme measurement: latency at a light
// representative load and the saturation throughput.
type Fig8Cell struct {
	Pattern    string
	Scheme     string
	Latency    float64 // avg packet latency at the probe rate
	Saturation float64 // accepted packets/node/cycle at saturation
}

// Fig8Result reproduces Figure 8: network latency (a) and throughput (b) for
// uniform-random, transpose and bit-reverse traffic on the 8x8 network.
type Fig8Result struct {
	N         int
	ProbeRate float64
	Patterns  []string
	Schemes   []string
	Cells     [][]Fig8Cell // [pattern][scheme]
}

// Fig8 runs the latency probes and saturation sweeps.
func Fig8(o Options) (Fig8Result, error) {
	const n = 8
	schemes, err := o.schemes(n)
	if err != nil {
		return Fig8Result{}, err
	}
	patterns := []traffic.Pattern{
		traffic.UniformRandom(n), traffic.Transpose(n), traffic.BitReverse(n),
	}
	out := Fig8Result{N: n, ProbeRate: 0.02}
	for _, s := range schemes {
		out.Schemes = append(out.Schemes, s.Name)
	}

	satOpts := sim.DefaultSaturationOpts()
	satOpts.Replicas = o.Replicas
	if o.Quick {
		satOpts.Refine = 2
		satOpts.Start = 0.01
		satOpts.Factor = 2
	}

	// Each (pattern, scheme) cell runs its probe and its saturation sweep
	// independently; fan the grid out across goroutines.
	type job struct{ pi, si int }
	var jobs []job
	for pi := range patterns {
		out.Patterns = append(out.Patterns, patterns[pi].Name())
		out.Cells = append(out.Cells, make([]Fig8Cell, len(schemes)))
		for si := range schemes {
			jobs = append(jobs, job{pi, si})
		}
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for ji, j := range jobs {
		wg.Add(1)
		go func(ji int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pat, sch := patterns[j.pi], schemes[j.si]
			cfg := sim.NewConfig(sch.Topo, sch.C, pat, out.ProbeRate)
			o.simPhases(&cfg)
			if o.Quick {
				cfg.Warmup, cfg.Measure, cfg.Drain = 300, 1500, 6000
			}
			probe, _, err := sim.RunManyReplicatedAgg(o.ctx(), []sim.Config{cfg}, o.Replicas, 0)
			if err != nil {
				errs[ji] = err
				return
			}
			res := probe[0]
			sweep, err := sim.FindSaturation(o.ctx(), cfg, satOpts)
			if err != nil {
				errs[ji] = fmt.Errorf("fig8 %s/%s saturation: %w", pat.Name(), sch.Name, err)
				return
			}
			out.Cells[j.pi][j.si] = Fig8Cell{
				Pattern:    pat.Name(),
				Scheme:     sch.Name,
				Latency:    res.AvgPacketLatency,
				Saturation: sweep.Saturation,
			}
		}(ji, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Averages returns the per-scheme latency and throughput averaged over
// patterns (the "Avg" bars of Fig. 8).
func (r Fig8Result) Averages() (lat, thr []float64) {
	lat = make([]float64, len(r.Schemes))
	thr = make([]float64, len(r.Schemes))
	for _, row := range r.Cells {
		for i, c := range row {
			lat[i] += c.Latency
			thr[i] += c.Saturation
		}
	}
	for i := range lat {
		lat[i] /= float64(len(r.Cells))
		thr[i] /= float64(len(r.Cells))
	}
	return lat, thr
}

// Report formats the two panels as tables.
func (r Fig8Result) Report() *stats.Report {
	rep := stats.NewReport("fig8")
	latT := stats.NewTable(
		fmt.Sprintf("Fig.8a (%dx%d): avg packet latency at rate %.3f (cycles, simulated)", r.N, r.N, r.ProbeRate),
		append([]string{"pattern"}, r.Schemes...)...)
	thrT := stats.NewTable(
		fmt.Sprintf("Fig.8b (%dx%d): saturation throughput (packets/node/cycle)", r.N, r.N),
		append([]string{"pattern"}, r.Schemes...)...)
	for pi, row := range r.Cells {
		lat := []string{r.Patterns[pi]}
		thr := []string{r.Patterns[pi]}
		for _, c := range row {
			lat = append(lat, fmt.Sprintf("%.2f", c.Latency))
			thr = append(thr, fmt.Sprintf("%.4f", c.Saturation))
		}
		latT.AddRow(lat...)
		thrT.AddRow(thr...)
	}
	avgLat, avgThr := r.Averages()
	latRow, thrRow := []string{"Avg"}, []string{"Avg"}
	for i := range r.Schemes {
		latRow = append(latRow, fmt.Sprintf("%.2f", avgLat[i]))
		thrRow = append(thrRow, fmt.Sprintf("%.4f", avgThr[i]))
	}
	latT.AddRow(latRow...)
	thrT.AddRow(thrRow...)
	rep.Add(latT)
	rep.Add(thrT)
	return rep
}
