package exp

import (
	"fmt"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// AppSpecRow is the application-specific comparison for one benchmark: the
// traffic-weighted latency of the general-purpose placement versus the
// placement re-optimized with the benchmark's traffic matrix.
type AppSpecRow struct {
	Benchmark   string
	Generic     float64 // weighted latency of the general-purpose D&C_SA design
	AppSpecific float64 // weighted latency after per-row/column re-optimization
	ExtraPct    float64 // additional reduction from knowing the traffic
	Evals       int64   // placement evaluations spent, the Fig. 7 runtime unit
}

// AppSpecResult reproduces Section 5.6.4: with traffic statistics collected
// in advance (here: sampled from the benchmark's proxy pattern, standing in
// for the paper's profiling run on the baseline mesh), per-row/column
// re-optimization reduces latency further than the traffic-oblivious design.
type AppSpecResult struct {
	N    int
	C    int
	Rows []AppSpecRow
	Avg  float64
}

// AppSpec runs the flow for every PARSEC proxy (three in quick mode).
func AppSpec(o Options) (AppSpecResult, error) {
	const n = 8
	s := o.solverFor(n)
	best, _, err := s.Optimize(o.ctx(), core.DCSA)
	if err != nil {
		return AppSpecResult{}, err
	}
	genericTopo := s.Topology(best)
	out := AppSpecResult{N: n, C: best.C}

	benches := traffic.Benchmarks()
	samples := 4000
	if o.Quick {
		benches = benches[:3]
		samples = 1000
	}
	limits := s.Cfg.BW.FeasibleLimits(topo.LinkLimits(n))
	if o.Quick {
		limits = []int{best.C}
	}
	for _, b := range benches {
		rng := stats.NewRNG(stats.MixSeed(o.Seed, 0xa99, uint64(len(b.Name))))
		gamma := traffic.Matrix(n, b.Pattern(n), samples, rng)
		w, err := core.WeightsFromMatrix(n, gamma)
		if err != nil {
			return out, err
		}
		genericEval, err := core.WeightedLatency(s.Cfg, genericTopo, best.C, gamma)
		if err != nil {
			return out, err
		}
		// With the traffic known, the scheme is free to re-pick the link
		// limit as well: sweep C and keep the best weighted design.
		var appEval model.Eval
		var evals int64
		for i, c := range limits {
			sol, err := s.SolveWeighted(o.ctx(), c, w, core.DCSA)
			if err != nil {
				return out, err
			}
			evals += sol.Evals
			ev, err := core.WeightedLatency(s.Cfg, sol.Topology, c, gamma)
			if err != nil {
				return out, err
			}
			if i == 0 || ev.Total < appEval.Total {
				appEval = ev
			}
		}
		row := AppSpecRow{
			Benchmark:   b.Name,
			Generic:     genericEval.Total,
			AppSpecific: appEval.Total,
			ExtraPct:    pct(genericEval.Total, appEval.Total),
			Evals:       evals,
		}
		out.Rows = append(out.Rows, row)
		out.Avg += row.ExtraPct
	}
	out.Avg /= float64(len(out.Rows))
	return out, nil
}

// Report formats the per-benchmark comparison.
func (r AppSpecResult) Report() *stats.Report {
	rep := stats.NewReport("appspec")
	t := rep.Add(stats.NewTable(
		fmt.Sprintf("Section 5.6.4 (%dx%d, C=%d): application-specific re-optimization", r.N, r.N, r.C),
		"benchmark", "generic L", "app-specific L", "extra reduction %", "evals"))
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprintf("%.2f", row.Generic),
			fmt.Sprintf("%.2f", row.AppSpecific),
			fmt.Sprintf("%.1f", row.ExtraPct),
			fmt.Sprintf("%d", row.Evals))
	}
	t.AddNotef("average additional reduction: %.1f%% (paper: 18.1%%)", r.Avg)
	return rep
}
