package exp

import (
	"fmt"

	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/traffic"
)

// LoadPoint is one offered-rate sample of the load-latency curves.
type LoadPoint struct {
	Rate      float64
	Latencies []float64 // one per scheme; NaN-free, 0 marks an unstable point
	Stable    []bool
}

// LoadLatencyResult is the classic NoC load-latency figure for the three
// designs: flat latency at low load, then the hockey-stick as each design
// approaches its saturation point. The paper reports only the two endpoints
// (Fig. 8a's low-load latency and Fig. 8b's saturation throughput); this
// driver produces the full curve connecting them.
type LoadLatencyResult struct {
	N       int
	Pattern string
	Schemes []string
	Points  []LoadPoint
}

// LoadLatency sweeps uniform-random offered load across all three designs.
func LoadLatency(o Options) (LoadLatencyResult, error) {
	const n = 8
	schemes, err := o.schemes(n)
	if err != nil {
		return LoadLatencyResult{}, err
	}
	rates := []float64{0.01, 0.02, 0.04, 0.06, 0.09, 0.12, 0.16, 0.20, 0.26, 0.32}
	if o.Quick {
		rates = []float64{0.01, 0.06, 0.12}
	}
	out := LoadLatencyResult{N: n, Pattern: "UR"}
	for _, s := range schemes {
		out.Schemes = append(out.Schemes, s.Name)
	}
	var cfgs []sim.Config
	for _, rate := range rates {
		for _, sch := range schemes {
			cfg := sim.NewConfig(sch.Topo, sch.C, traffic.UniformRandom(n), rate)
			o.simPhases(&cfg)
			if o.Quick {
				cfg.Warmup, cfg.Measure, cfg.Drain = 300, 1500, 6000
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, _, err := sim.RunManyReplicatedAgg(o.ctx(), cfgs, o.Replicas, 0)
	if err != nil {
		return out, err
	}
	i := 0
	for _, rate := range rates {
		p := LoadPoint{Rate: rate}
		for range schemes {
			res := results[i]
			i++
			p.Latencies = append(p.Latencies, res.AvgPacketLatency)
			p.Stable = append(p.Stable, res.Drained && !res.DeadlockSuspected)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Report formats the curves as a table; unstable points are marked.
func (r LoadLatencyResult) Report() *stats.Report {
	rep := stats.NewReport("loadlat")
	t := rep.Add(stats.NewTable(
		fmt.Sprintf("Load-latency curves (%dx%d, %s): avg packet latency vs offered rate", r.N, r.N, r.Pattern),
		append([]string{"rate"}, r.Schemes...)...))
	for _, p := range r.Points {
		row := []string{fmt.Sprintf("%.3f", p.Rate)}
		for i, l := range p.Latencies {
			cell := fmt.Sprintf("%.2f", l)
			if !p.Stable[i] {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.AddNote("* network past saturation at this offered load (did not drain)")
	return rep
}
