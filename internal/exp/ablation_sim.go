package exp

import (
	"fmt"

	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/traffic"
)

// RoutingPoint compares XY and O1TURN routing on one topology at one load.
type RoutingPoint struct {
	Scheme  string
	Rate    float64
	XYLat   float64
	O1Lat   float64
	DiffPct float64 // (O1 - XY)/XY latency difference
}

// RoutingResult reproduces the Section 4.2 justification: "the overall
// performance difference between XY and adaptive routing is less than 1%"
// at application loads.
type RoutingResult struct {
	N      int
	Points []RoutingPoint
}

// AblationRouting simulates Mesh and the optimized placement under both
// routing modes at light and moderate loads.
func AblationRouting(o Options) (RoutingResult, error) {
	const n = 8
	schemes, err := o.schemes(n)
	if err != nil {
		return RoutingResult{}, err
	}
	rates := []float64{0.02, 0.05}
	if o.Quick {
		rates = []float64{0.02}
	}
	out := RoutingResult{N: n}
	for _, sch := range []Scheme{schemes[0], schemes[2]} { // Mesh and D&C_SA
		for _, rate := range rates {
			run := func(mode sim.RoutingMode) (float64, error) {
				cfg := sim.NewConfig(sch.Topo, sch.C, traffic.UniformRandom(n), rate)
				o.simPhases(&cfg)
				cfg.Routing = mode
				s, err := sim.New(cfg)
				if err != nil {
					return 0, err
				}
				res, err := s.Run(o.ctx())
				if err != nil {
					return 0, err
				}
				if res.DeadlockSuspected {
					return 0, fmt.Errorf("deadlock under %v on %s", mode, sch.Name)
				}
				return res.AvgPacketLatency, nil
			}
			xy, err := run(sim.RoutingXY)
			if err != nil {
				return out, err
			}
			o1, err := run(sim.RoutingO1Turn)
			if err != nil {
				return out, err
			}
			out.Points = append(out.Points, RoutingPoint{
				Scheme: sch.Name, Rate: rate, XYLat: xy, O1Lat: o1,
				DiffPct: 100 * (o1 - xy) / xy,
			})
		}
	}
	return out, nil
}

// Report formats the routing ablation.
func (r RoutingResult) Report() *stats.Report {
	rep := stats.NewReport("abroute")
	t := rep.Add(stats.NewTable(
		fmt.Sprintf("Ablation (Section 4.2): XY vs O1TURN routing on %dx%d, UR traffic", r.N, r.N),
		"scheme", "rate", "XY latency", "O1TURN latency", "diff %"))
	for _, p := range r.Points {
		t.AddRow(p.Scheme, fmt.Sprintf("%.3f", p.Rate),
			fmt.Sprintf("%.2f", p.XYLat), fmt.Sprintf("%.2f", p.O1Lat),
			fmt.Sprintf("%+.2f", p.DiffPct))
	}
	t.AddNote("the paper adopts dimension-order routing because this difference is negligible\nat application loads (Section 4.2).")
	return rep
}

// BypassPoint compares the four designs at one offered load.
type BypassPoint struct {
	Name      string
	Latencies []float64 // one per rate
}

// BypassResult contrasts physical express links against virtual express
// channel-style pipeline bypassing on the plain mesh — the Section 2.1
// virtual-vs-physical discussion ("two categories ... that are equally
// competitive"). At near-zero load an idealized bypass keeps full-width
// links and no serialization penalty, so the bypassed mesh can even beat
// the express design; as load grows, busy routers disable the bypass while
// physical links keep working, and the express design takes over.
type BypassResult struct {
	N      int
	Rates  []float64
	Points []BypassPoint
}

// AblationBypass simulates four designs under uniform traffic at a light
// and a loaded injection rate.
func AblationBypass(o Options) (BypassResult, error) {
	const n = 8
	schemes, err := o.schemes(n)
	if err != nil {
		return BypassResult{}, err
	}
	mesh, dcsa := schemes[0], schemes[2]
	out := BypassResult{N: n, Rates: []float64{0.02, 0.12}}
	for _, tc := range []struct {
		name   string
		scheme Scheme
		bypass bool
	}{
		{"Mesh", mesh, false},
		{"Mesh+bypass (VEC-like)", mesh, true},
		{"D&C_SA", dcsa, false},
		{"D&C_SA+bypass", dcsa, true},
	} {
		p := BypassPoint{Name: tc.name}
		for _, rate := range out.Rates {
			cfg := sim.NewConfig(tc.scheme.Topo, tc.scheme.C, traffic.UniformRandom(n), rate)
			o.simPhases(&cfg)
			cfg.PipelineBypass = tc.bypass
			s, err := sim.New(cfg)
			if err != nil {
				return out, err
			}
			res, err := s.Run(o.ctx())
			if err != nil {
				return out, err
			}
			p.Latencies = append(p.Latencies, res.AvgPacketLatency)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Report formats the bypass ablation.
func (r BypassResult) Report() *stats.Report {
	rep := stats.NewReport("abbypass")
	header := []string{"design"}
	for _, rate := range r.Rates {
		header = append(header, fmt.Sprintf("latency @ %.2f", rate))
	}
	t := rep.Add(stats.NewTable(
		fmt.Sprintf("Ablation (Section 2.1): physical express links vs pipeline bypass (%dx%d, UR)", r.N, r.N),
		header...))
	for _, p := range r.Points {
		row := []string{p.Name}
		for _, l := range p.Latencies {
			row = append(row, fmt.Sprintf("%.2f", l))
		}
		t.AddRow(row...)
	}
	t.AddNote("an idealized bypass keeps 256-bit links (no serialization penalty), so at\n" +
		"near-zero load it rivals physical express links — the virtual-vs-physical\n" +
		"tie of Section 2.1. Under load the bypass fades (busy routers disable it)\n" +
		"while express links keep their advantage; the two techniques compose.")
	return rep
}
