package exp

import (
	"fmt"

	"explink/internal/bnb"
	"explink/internal/core"
	"explink/internal/stats"
)

// Fig12Case is one problem instance compared against the exhaustive optimum.
type Fig12Case struct {
	N, C         int
	DCSALatency  float64 // full-network L_avg of the D&C_SA placement
	OptLatency   float64 // L_avg of the exhaustive optimum
	GapPct       float64 // how far D&C_SA is above optimal, in %
	DCSAEvals    int64
	OptEvals     int64
	RuntimeRatio float64 // exhaustive evals / D&C_SA evals
}

// Fig12Result reproduces Figure 12: D&C_SA latency versus the optimal
// solution from exhaustive branch-and-bound, plus their runtime ratio, for
// P(4,2), P(8,2), P(8,3), P(8,4) and P(16,2).
type Fig12Result struct {
	Cases []Fig12Case
}

// Fig12 runs the comparison. The expensive P(16,2) instance is skipped in
// quick mode.
func Fig12(o Options) (Fig12Result, error) {
	instances := []struct{ n, c int }{{4, 2}, {8, 2}, {8, 3}, {8, 4}, {16, 2}}
	if o.Quick {
		instances = instances[:4]
	}
	var out Fig12Result
	for _, in := range instances {
		s := o.solverFor(in.n)
		// The runtime comparison measures D&C_SA until convergence (the
		// paper does not charge it the full fixed move budget): stop the
		// annealer after a quiet stretch.
		s.Sched.StopAfterNoImprove = 1000
		sol, err := s.SolveRow(o.ctx(), in.c, core.DCSA)
		if err != nil {
			return out, err
		}
		// Latency reference: the strongly-pruned branch and bound. Runtime
		// reference: the paper's plain exhaustive search with feasibility
		// pruning only, which visits every valid placement.
		opt := bnb.OptimalRow(in.n, in.c, s.Cfg.Params)
		raw := bnb.ExhaustiveRaw(in.n, in.c, s.Cfg.Params)
		optEval, err := s.Cfg.EvalRow(opt.Row, in.c)
		if err != nil {
			return out, err
		}
		c := Fig12Case{
			N: in.n, C: in.c,
			DCSALatency: sol.Eval.Total,
			OptLatency:  optEval.Total,
			DCSAEvals:   sol.Evals,
			OptEvals:    raw.Evals,
		}
		if c.OptLatency > 0 {
			c.GapPct = 100 * (c.DCSALatency - c.OptLatency) / c.OptLatency
		}
		if c.DCSAEvals > 0 {
			c.RuntimeRatio = float64(c.OptEvals) / float64(c.DCSAEvals)
		}
		out.Cases = append(out.Cases, c)
	}
	return out, nil
}

// Report formats the comparison as a table.
func (r Fig12Result) Report() *stats.Report {
	rep := stats.NewReport("fig12")
	t := rep.Add(stats.NewTable("Fig.12: D&C_SA vs exhaustive optimal",
		"P(n,C)", "D&C_SA L", "optimal L", "gap %", "D&C_SA evals", "opt evals", "runtime ratio"))
	for _, c := range r.Cases {
		t.AddRowf(fmt.Sprintf("P(%d,%d)", c.N, c.C), c.DCSALatency, c.OptLatency,
			fmt.Sprintf("%.2f", c.GapPct), c.DCSAEvals, c.OptEvals,
			fmt.Sprintf("%.1fx", c.RuntimeRatio))
	}
	return rep
}
