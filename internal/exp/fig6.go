package exp

import (
	"fmt"

	"explink/internal/core"
	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/topo"
	"explink/internal/traffic"
)

// Scheme is one topology under test in the simulated experiments.
type Scheme struct {
	Name  string
	Topo  topo.Topology
	C     int
	Width int
}

// schemes returns the paper's three comparison designs for an n x n network:
// Mesh, HFB, and the best D&C_SA placement.
func (o Options) schemes(n int) ([]Scheme, error) {
	s := o.solverFor(n)
	best, _, err := s.Optimize(o.ctx(), core.DCSA)
	if err != nil {
		return nil, err
	}
	hfbRow := topo.HFBRow(n)
	hfbC := hfbRow.MaxCrossSection()
	widthOf := func(c int) int {
		w, err := s.Cfg.BW.Width(c)
		if err != nil {
			return 0
		}
		return w
	}
	return []Scheme{
		{Name: "Mesh", Topo: topo.Mesh(n), C: 1, Width: widthOf(1)},
		{Name: "HFB", Topo: topo.Uniform("HFB", n, hfbRow), C: hfbC, Width: widthOf(hfbC)},
		{Name: "D&C_SA", Topo: topo.Uniform("D&C_SA", n, best.Row), C: best.C, Width: widthOf(best.C)},
	}, nil
}

// simPhases applies quick-mode cycle budgets and the option-level simulation
// switches.
func (o Options) simPhases(cfg *sim.Config) {
	if o.Quick {
		cfg.Warmup, cfg.Measure, cfg.Drain = 500, 2000, 10000
	} else {
		cfg.Warmup, cfg.Measure, cfg.Drain = 2000, 10000, 40000
	}
	cfg.Seed = o.Seed
	cfg.Audit = o.Audit
}

// Fig6Cell is one benchmark x scheme measurement.
type Fig6Cell struct {
	Benchmark string
	Scheme    Scheme
	Result    sim.Result
}

// Fig6Result reproduces Figure 6: cycle-accurate average packet latency of
// every PARSEC benchmark proxy on the 8x8 network for Mesh, HFB and D&C_SA.
type Fig6Result struct {
	N       int
	Schemes []Scheme
	Cells   [][]Fig6Cell // [benchmark][scheme]
	Names   []string
}

// Fig6 runs the full benchmark x topology grid.
func Fig6(o Options) (Fig6Result, error) {
	const n = 8
	schemes, err := o.schemes(n)
	if err != nil {
		return Fig6Result{}, err
	}
	benches := traffic.Benchmarks()
	if o.Quick {
		benches = benches[:3]
	}
	out := Fig6Result{N: n, Schemes: schemes}

	// Build the whole benchmark x scheme grid of configs and run it in
	// parallel; each cell is an independent, seeded simulation.
	var cfgs []sim.Config
	for _, b := range benches {
		for _, sch := range schemes {
			cfg := sim.NewConfig(sch.Topo, sch.C, b.Pattern(n), b.InjRate)
			o.simPhases(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	results, _, err := sim.RunManyReplicatedAgg(o.ctx(), cfgs, o.Replicas, 0)
	if err != nil {
		return out, fmt.Errorf("fig6: %w", err)
	}
	i := 0
	for _, b := range benches {
		var row []Fig6Cell
		for _, sch := range schemes {
			res := results[i]
			i++
			res.Topology = sch.Name
			row = append(row, Fig6Cell{Benchmark: b.Name, Scheme: sch, Result: res})
		}
		out.Cells = append(out.Cells, row)
		out.Names = append(out.Names, b.Name)
	}
	return out, nil
}

// Average returns the per-scheme latency averaged over benchmarks.
func (r Fig6Result) Average() []float64 {
	avg := make([]float64, len(r.Schemes))
	for _, row := range r.Cells {
		for i, c := range row {
			avg[i] += c.Result.AvgPacketLatency
		}
	}
	for i := range avg {
		avg[i] /= float64(len(r.Cells))
	}
	return avg
}

// Report formats the per-benchmark latency table.
func (r Fig6Result) Report() *stats.Report {
	rep := stats.NewReport("fig6")
	header := []string{"benchmark"}
	for _, s := range r.Schemes {
		header = append(header, fmt.Sprintf("%s(C=%d)", s.Name, s.C))
	}
	header = append(header, "D&C_SA vs Mesh %")
	t := rep.Add(stats.NewTable(fmt.Sprintf("Fig.6 (%dx%d): avg packet latency per PARSEC benchmark (cycles, simulated)", r.N, r.N), header...))
	for bi, row := range r.Cells {
		cells := []string{r.Names[bi]}
		for _, c := range row {
			cells = append(cells, fmt.Sprintf("%.2f", c.Result.AvgPacketLatency))
		}
		cells = append(cells, fmt.Sprintf("%.1f", pct(row[0].Result.AvgPacketLatency, row[len(row)-1].Result.AvgPacketLatency)))
		t.AddRow(cells...)
	}
	avg := r.Average()
	avgRow := []string{"average"}
	for _, a := range avg {
		avgRow = append(avgRow, fmt.Sprintf("%.2f", a))
	}
	avgRow = append(avgRow, fmt.Sprintf("%.1f", pct(avg[0], avg[len(avg)-1])))
	t.AddRow(avgRow...)
	return rep
}
