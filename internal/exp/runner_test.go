package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"explink/internal/core"
	"explink/internal/obs"
	"explink/internal/runctl"
	"explink/internal/stats"
)

func mustLookup(t *testing.T, names ...string) []Experiment {
	t.Helper()
	sel := make([]Experiment, 0, len(names))
	for _, name := range names {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("unknown experiment %q", name)
		}
		sel = append(sel, e)
	}
	return sel
}

// The runner keeps results in registry order, shares one placement store
// across experiments, and reports per-experiment errors without dropping the
// successes.
func TestRunAllOrderAndCache(t *testing.T) {
	sel := mustLookup(t, "fig5", "table2")
	store, err := core.NewPlacementStore("")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Store = store
	results := RunAll(context.Background(), sel, opts, 2, nil)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, oc := range results {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Exp.Name, oc.Err)
		}
		if oc.Exp.Name != sel[i].Name || oc.Rep.Name != sel[i].Name {
			t.Fatalf("slot %d holds %s/%s, want %s", i, oc.Exp.Name, oc.Rep.Name, sel[i].Name)
		}
		if !strings.Contains(oc.Rep.Render(), "==") {
			t.Fatalf("%s: suspicious render", oc.Exp.Name)
		}
	}
	c := store.Counters()
	if c.Solves == 0 {
		t.Fatal("no solves recorded")
	}
	// fig5 and table2 sweep the same link limits on the same sizes: the
	// second experiment must reuse the first one's solves.
	if c.Hits == 0 {
		t.Fatalf("experiments did not share the cache: %v", c)
	}
}

func TestRunAllCancelled(t *testing.T) {
	sel := mustLookup(t, "fig5")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := RunAll(ctx, sel, QuickOptions(), 1, nil)
	if results[0].Err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(results[0].Err, runctl.ErrCancelled) {
		t.Fatalf("error not in the cancellation taxonomy: %v", results[0].Err)
	}
}

// RunAll publishes scheduling counters and emits a parseable event stream:
// suite.start, one start/finish pair per experiment, suite.finish.
func TestRunAllMetricsAndEvents(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	var buf bytes.Buffer
	ev := obs.NewEventWriter(&buf)
	sel := mustLookup(t, "table2")
	results := RunAll(context.Background(), sel, QuickOptions(), 1, ev)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"exp_started_total":  1,
		"exp_finished_total": 1,
		"exp_failed_total":   0,
		"exp_inflight":       0,
		"exp_queued":         0,
		"exp_run_total":      1,
		"exp_suite_total":    1,
	} {
		if got := snap[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d event lines, want 4:\n%s", len(lines), buf.String())
	}
	var seq []string
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable event %q: %v", line, err)
		}
		seq = append(seq, m["event"].(string))
	}
	want := []string{"suite.start", "experiment.start", "experiment.finish", "suite.finish"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("event sequence = %v, want %v", seq, want)
		}
	}
}

// TestRunAllCancelledZeroRuns pins the cancellation contract: with the suite
// context already dead, RunAll must fail every experiment quickly without
// calling a single Run — no worker slot may be spent starting work the
// caller no longer wants. This is the fast-drain path the sweep fabric's
// workers rely on.
func TestRunAllCancelledZeroRuns(t *testing.T) {
	var runs atomic.Int64
	sel := make([]Experiment, 8)
	for i := range sel {
		sel[i] = Experiment{
			Name: fmt.Sprintf("fake%d", i),
			Run: func(Options) (*stats.Report, error) {
				runs.Add(1)
				return stats.NewReport("fake"), nil
			},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := RunAll(ctx, sel, Options{}, 2, nil)
	if got := runs.Load(); got != 0 {
		t.Fatalf("%d experiments ran after cancel, want 0", got)
	}
	for i, oc := range results {
		if oc.Err == nil || !errors.Is(oc.Err, runctl.ErrCancelled) {
			t.Fatalf("slot %d: error %v, want ErrCancelled", i, oc.Err)
		}
		if oc.Exp.Name != sel[i].Name {
			t.Fatalf("slot %d holds %s, want %s", i, oc.Exp.Name, sel[i].Name)
		}
	}
}

// A cancel landing mid-suite fails everything still queued without starting
// it: only the experiments that held a slot before the cancel ever run, and
// the scheduling gauges return to zero.
func TestRunAllCancelMidSuiteDrainsQueueFast(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	ctx, cancel := context.WithCancel(context.Background())
	var runs atomic.Int64
	release := make(chan struct{})
	running := make(chan struct{}, 16)
	sel := make([]Experiment, 6)
	for i := range sel {
		sel[i] = Experiment{
			Name: fmt.Sprintf("fake%d", i),
			Run: func(Options) (*stats.Report, error) {
				runs.Add(1)
				running <- struct{}{}
				<-release
				return stats.NewReport("fake"), nil
			},
		}
	}
	done := make(chan []Outcome, 1)
	go func() { done <- RunAll(ctx, sel, Options{}, 2, nil) }()
	<-running
	<-running // both slots busy, four experiments queued
	cancel()
	close(release)
	results := <-done
	if got := runs.Load(); got != 2 {
		t.Fatalf("%d experiments ran, want exactly the 2 in flight at cancel", got)
	}
	cancelled := 0
	for _, oc := range results {
		if oc.Err != nil && errors.Is(oc.Err, runctl.ErrCancelled) {
			cancelled++
		}
	}
	if cancelled < 4 {
		t.Fatalf("%d experiments cancelled, want at least the 4 queued", cancelled)
	}
	snap := reg.Snapshot()
	for _, g := range []string{"exp_queued", "exp_inflight"} {
		if v := snap[g]; v != 0 {
			t.Fatalf("%s = %v after suite end, want 0", g, v)
		}
	}
}
