package exp

import (
	"errors"
	"fmt"

	"explink/internal/sim"
	"explink/internal/stats"
	"explink/internal/traffic"
)

// MicroarchPoint is one configuration of the router sensitivity study.
type MicroarchPoint struct {
	Label     string
	Latency   float64 // avg packet latency at the light probe rate
	LoadedLat float64 // at the loaded probe rate
	Drained   bool    // loaded run drained?
}

// MicroarchResult studies the router parameters the paper fixes in prose:
// Section 2.2 credits "multiple virtual channels per link" for keeping
// head-of-line blocking low, and Section 4.6 pins the total buffer budget so
// no scheme gets an unfair buffering advantage. This driver sweeps both on
// the optimized design.
type MicroarchResult struct {
	N         int
	LightRate float64
	LoadRate  float64
	VCs       []MicroarchPoint
	Buffers   []MicroarchPoint
}

// Microarch sweeps VC counts and buffer budgets on the 8x8 D&C_SA design.
func Microarch(o Options) (MicroarchResult, error) {
	const n = 8
	schemes, err := o.schemes(n)
	if err != nil {
		return MicroarchResult{}, err
	}
	dcsa := schemes[2]
	out := MicroarchResult{N: n, LightRate: 0.02, LoadRate: 0.15}

	vcCounts := []int{1, 2, 4, 8}
	budgets := []int{sim.DefaultBufBits / 4, sim.DefaultBufBits / 2, sim.DefaultBufBits, 2 * sim.DefaultBufBits}
	if o.Quick {
		vcCounts = []int{1, 4}
		budgets = []int{sim.DefaultBufBits / 2, sim.DefaultBufBits}
	}

	run := func(mut func(*sim.Config)) (light, loaded float64, drained bool, err error) {
		mk := func(rate float64) (sim.Result, error) {
			cfg := sim.NewConfig(dcsa.Topo, dcsa.C, traffic.UniformRandom(n), rate)
			o.simPhases(&cfg)
			if o.Quick {
				cfg.Warmup, cfg.Measure, cfg.Drain = 300, 1500, 6000
			}
			mut(&cfg)
			s, err := sim.New(cfg)
			if err != nil {
				return sim.Result{}, err
			}
			return s.Run(o.ctx())
		}
		lres, err := mk(out.LightRate)
		if err != nil {
			return 0, 0, false, err
		}
		hres, err := mk(out.LoadRate)
		if err != nil && !errors.Is(err, sim.ErrDeadlock) {
			// A deadlock at the loaded probe is itself a data point (the run
			// simply reports Drained=false); any other failure aborts.
			return 0, 0, false, err
		}
		return lres.AvgPacketLatency, hres.AvgPacketLatency, hres.Drained, nil
	}

	for _, vcs := range vcCounts {
		v := vcs
		light, loaded, drained, err := run(func(c *sim.Config) { c.VCs = v })
		if err != nil {
			return out, fmt.Errorf("microarch VCs=%d: %w", v, err)
		}
		out.VCs = append(out.VCs, MicroarchPoint{
			Label: fmt.Sprintf("%d VCs", v), Latency: light, LoadedLat: loaded, Drained: drained,
		})
	}
	for _, bits := range budgets {
		bb := bits
		light, loaded, drained, err := run(func(c *sim.Config) { c.BufBitsPerRouter = bb })
		if err != nil {
			return out, fmt.Errorf("microarch buf=%d: %w", bb, err)
		}
		out.Buffers = append(out.Buffers, MicroarchPoint{
			Label: fmt.Sprintf("%d bits", bb), Latency: light, LoadedLat: loaded, Drained: drained,
		})
	}
	return out, nil
}

// Report formats both sweeps.
func (r MicroarchResult) Report() *stats.Report {
	rep := stats.NewReport("microarch")
	add := func(title string, pts []MicroarchPoint) {
		t := rep.Add(stats.NewTable(title, "config",
			fmt.Sprintf("latency @ %.2f", r.LightRate),
			fmt.Sprintf("latency @ %.2f", r.LoadRate), "loaded run drained"))
		for _, p := range pts {
			t.AddRow(p.Label, fmt.Sprintf("%.2f", p.Latency),
				fmt.Sprintf("%.2f", p.LoadedLat), fmt.Sprintf("%v", p.Drained))
		}
	}
	add(fmt.Sprintf("Router sensitivity (%dx%d D&C_SA): virtual channels (Section 2.2)", r.N, r.N), r.VCs)
	add("Router sensitivity: total buffer budget per router (Section 4.6)", r.Buffers)
	rep.Note("zero-load latency is insensitive to both knobs; they matter under load,\n" +
		"which is why the paper equalizes buffering across schemes and assumes\n" +
		"multiple VCs when arguing contention stays low.")
	return rep
}
