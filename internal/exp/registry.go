package exp

import (
	"strconv"
	"strings"

	"explink/internal/stats"
)

// Reporter is what every experiment result implements: a conversion to the
// shared structured report, rendered by stats.Report.Render. Drivers carry no
// formatting logic beyond building tables and notes.
type Reporter interface {
	Report() *stats.Report
}

// Experiment is one registered entry of the suite: a stable name (the -exp
// argument of cmd/expbench), a one-line description, the paper section it
// reproduces, and the runner.
type Experiment struct {
	Name    string
	Desc    string
	Section string
	Run     func(Options) (*stats.Report, error)
}

// reg adapts a typed driver to the registry: the driver returns its result
// struct, the adapter converts it to a report and stamps the registry
// identity and run metadata onto it.
func reg[R Reporter](name, desc, section string, run func(Options) (R, error)) Experiment {
	return Experiment{
		Name:    name,
		Desc:    desc,
		Section: section,
		Run: func(o Options) (*stats.Report, error) {
			r, err := run(o)
			if err != nil {
				return nil, err
			}
			rep := r.Report()
			rep.Name = name
			rep.Title = desc
			rep.Section = section
			rep.SetMeta("seed", strconv.FormatUint(o.Seed, 10))
			rep.SetMeta("quick", strconv.FormatBool(o.Quick))
			return rep, nil
		},
	}
}

// registry lists every experiment in presentation order. The package doc's
// experiment index mirrors this table verbatim (enforced by a test).
var registry = []Experiment{
	reg("fig5", "latency vs link limit C (Mesh, HFB, OnlySA, D&C_SA, L_D, L_S)", "Section 5.2", Fig5),
	reg("fig6", "per-PARSEC-benchmark latency on 8x8 (simulated)", "Section 5.3", Fig6),
	reg("fig7", "placement quality vs normalized runtime", "Section 5.3", Fig7),
	reg("fig8", "synthetic traffic latency and throughput (simulated)", "Section 5.4", Fig8),
	reg("fig9", "router power per benchmark (simulated + power model)", "Section 5.5", Fig9),
	reg("fig10", "router static power breakdown", "Section 5.5", Fig10),
	reg("fig11", "impact of bisection bandwidth (2K vs 8K Gb/s)", "Section 5.6", Fig11),
	reg("fig12", "D&C_SA vs exhaustive optimal", "Section 5.6", Fig12),
	reg("table2", "maximum zero-load packet latency", "Section 5.2", Table2),
	reg("appspec", "application-specific re-optimization (Section 5.6.4)", "Section 5.6.4", AppSpec),
	reg("abgen", "ablation: connection-matrix vs naive SA candidate generator (Section 4.4.2)", "Section 4.4.2", AblationGenerator),
	reg("abroute", "ablation: XY vs O1TURN routing (Section 4.2)", "Section 4.2", AblationRouting),
	reg("abbypass", "ablation: physical express links vs pipeline bypass (Section 2.1)", "Section 2.1", AblationBypass),
	reg("bottleneck", "channel-load analysis behind Fig. 8b's throughput gap (Section 5.4)", "Section 5.4", Bottleneck),
	reg("robust", "extension: latency degradation under express-link failures", "extension", Robustness),
	reg("loadlat", "load-latency curves connecting Fig. 8a and Fig. 8b", "extension", LoadLatency),
	reg("microarch", "router sensitivity: VC count (Section 2.2) and buffer budget (Section 4.6)", "Sections 2.2 and 4.6", Microarch),
	reg("frontier", "extension: {L_avg x power} placement frontier across C", "extension", Frontier),
}

// All returns the registered experiments in presentation order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by name (case-insensitive).
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.Name, name) {
			return e, true
		}
	}
	return Experiment{}, false
}
