package exp

import (
	"testing"
)

func TestFig6(t *testing.T) {
	r, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 3 || len(r.Schemes) != 3 {
		t.Fatalf("quick fig6 grid = %dx%d", len(r.Cells), len(r.Schemes))
	}
	for bi, row := range r.Cells {
		for _, c := range row {
			if c.Result.MeasuredPackets == 0 {
				t.Fatalf("%s/%s: no packets", c.Benchmark, c.Scheme.Name)
			}
			if c.Result.DeadlockSuspected {
				t.Fatalf("%s/%s: deadlock", c.Benchmark, c.Scheme.Name)
			}
		}
		// D&C_SA must beat the mesh on every benchmark (Fig. 6's message).
		mesh, dcsa := row[0].Result.AvgPacketLatency, row[2].Result.AvgPacketLatency
		if dcsa >= mesh {
			t.Fatalf("%s: D&C_SA %.2f not below mesh %.2f", r.Names[bi], dcsa, mesh)
		}
	}
	avg := r.Average()
	if !(avg[2] < avg[1] && avg[1] < avg[0]) {
		t.Fatalf("average ordering violated: mesh=%.2f hfb=%.2f dcsa=%.2f", avg[0], avg[1], avg[2])
	}
}

func TestFig8(t *testing.T) {
	r, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 3 {
		t.Fatalf("patterns = %d", len(r.Cells))
	}
	lat, thr := r.Averages()
	// Fig. 8a: D&C_SA has the lowest average latency.
	if !(lat[2] < lat[0] && lat[2] < lat[1]) {
		t.Fatalf("latency ordering: mesh=%.2f hfb=%.2f dcsa=%.2f", lat[0], lat[1], lat[2])
	}
	// Fig. 8b: Mesh has the highest throughput; D&C_SA recovers bandwidth
	// the HFB wastes.
	if !(thr[0] > thr[2] && thr[2] > thr[1]) {
		t.Fatalf("throughput ordering: mesh=%.4f hfb=%.4f dcsa=%.4f", thr[0], thr[1], thr[2])
	}
}

func TestFig9And10(t *testing.T) {
	f6, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig9FromRuns(f6)
	if err != nil {
		t.Fatal(err)
	}
	dyn, stat, total := r.AverageTotals()
	// Fig. 9's claims: dynamic power of D&C_SA below mesh; static power
	// similar across schemes; static dominates at these loads.
	if dyn[2] >= dyn[0] {
		t.Fatalf("dynamic: dcsa %.3f not below mesh %.3f", dyn[2], dyn[0])
	}
	for i := 1; i < 3; i++ {
		ratio := stat[i] / stat[0]
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("static power diverged: scheme %d ratio %.2f", i, ratio)
		}
	}
	for i := 0; i < 3; i++ {
		if stat[i] < dyn[i] {
			t.Fatalf("scheme %d: static %.3f below dynamic %.3f at PARSEC loads", i, stat[i], dyn[i])
		}
	}
	_ = total

	f10, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Equal buffer budgets: identical buffer leakage across schemes.
	if f10.Buffer[0] != f10.Buffer[1] || f10.Buffer[1] != f10.Buffer[2] {
		t.Fatalf("buffer static differs: %v", f10.Buffer)
	}
}
