package exp

import (
	"testing"
)

func TestAblationGenerator(t *testing.T) {
	r, err := AblationGenerator(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// The naive generator must waste a visible share of its budget.
		if p.NaiveInvalid < 0.1 {
			t.Fatalf("moves=%d: naive invalid fraction %.2f implausibly low", p.Moves, p.NaiveInvalid)
		}
		// Its evaluation count is its budget minus the waste.
		if p.NaiveEvals >= int64(p.Moves) {
			t.Fatalf("moves=%d: naive evals %d not reduced by waste", p.Moves, p.NaiveEvals)
		}
		// The matrix generator spends (almost) every move on an evaluation.
		if p.MatrixEvals < int64(p.Moves) {
			t.Fatalf("moves=%d: matrix evals %d below budget", p.Moves, p.MatrixEvals)
		}
	}
	// At the largest budget the matrix space should not lose.
	last := r.Points[len(r.Points)-1]
	if last.MatrixObj > last.NaiveObj*1.03 {
		t.Fatalf("matrix %g clearly worse than naive %g", last.MatrixObj, last.NaiveObj)
	}
}

func TestAblationRouting(t *testing.T) {
	r, err := AblationRouting(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 { // 2 schemes x 1 rate in quick mode
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// Section 4.2: the difference is small at application loads. Allow
		// a few percent of simulator noise.
		if p.DiffPct > 6 || p.DiffPct < -6 {
			t.Fatalf("%s at %.3f: XY vs O1TURN differ by %.1f%%", p.Scheme, p.Rate, p.DiffPct)
		}
	}
}

func TestAblationBypass(t *testing.T) {
	r, err := AblationBypass(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	byName := map[string][]float64{}
	for _, p := range r.Points {
		byName[p.Name] = p.Latencies
	}
	const lo, hi = 0, 1
	// Bypassing must help the mesh at low load.
	if byName["Mesh+bypass (VEC-like)"][lo] >= byName["Mesh"][lo] {
		t.Fatalf("bypass did not help the mesh: %v", byName)
	}
	// Under load the physical express design must beat the bypassed mesh —
	// the crossover that motivates physical express links.
	if byName["D&C_SA"][hi] >= byName["Mesh+bypass (VEC-like)"][hi] {
		t.Fatalf("no crossover under load: D&C_SA %.2f vs bypassed mesh %.2f",
			byName["D&C_SA"][hi], byName["Mesh+bypass (VEC-like)"][hi])
	}
	// The combined design must be at least as good as plain D&C_SA at both
	// loads.
	for i := range r.Rates {
		if byName["D&C_SA+bypass"][i] > byName["D&C_SA"][i]+1e-9 {
			t.Fatalf("bypass hurt the express design at rate %.2f", r.Rates[i])
		}
	}
}
